// Package mobility provides deterministic device movement models over
// geographic space. Each model is a pure function of time once
// constructed: Position(t) can be sampled at any granularity without
// maintaining state, which keeps the simulators O(events) and allows
// the same device to be queried independently by different probes.
//
// The models map to the populations the paper contrasts:
//
//   - Stationary: smart meters and POS terminals — fixed location with
//     occasional cell-reselection jitter (§5.3 notes some apparent
//     movement is "likely due to cell reselection, rather than actual
//     movements").
//   - Commuter: smartphones and wearables — home/work pendulum with a
//     diurnal schedule.
//   - Vehicular: connected cars — sustained movement over long
//     distances (Fig. 12 shows car mobility ≈ smartphone mobility).
//   - Waypoint: generic random-waypoint wandering for feature phones
//     and tail devices.
package mobility

import (
	"math"
	"time"

	"whereroam/internal/geo"
	"whereroam/internal/rng"
)

// Model yields a device position at any instant.
type Model interface {
	// Position returns the device location at t.
	Position(t time.Time) geo.Point
}

// kmPerDegLat is the approximate latitude degree length.
const kmPerDegLat = 111.2

// offsetKm displaces p by (dxKm, dyKm) east/north.
func offsetKm(p geo.Point, dxKm, dyKm float64) geo.Point {
	lat := p.Lat + dyKm/kmPerDegLat
	lonScale := kmPerDegLat * math.Cos(p.Lat*math.Pi/180)
	if lonScale < 1 {
		lonScale = 1
	}
	return geo.Point{Lat: lat, Lon: p.Lon + dxKm/lonScale}
}

// hash01 maps (seed, bucket) to a uniform [0,1) value without
// consuming stream state, so Position stays a pure function.
func hash01(seed, bucket uint64) float64 {
	z := seed ^ bucket*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Stationary is a device that never moves, modulo rare reselection
// jitter to a pseudo-position up to JitterKm away.
type Stationary struct {
	Home geo.Point
	// JitterKm is how far the apparent position moves during a
	// reselection episode.
	JitterKm float64
	// ReselectProb is the probability that any given hour falls in a
	// reselection episode.
	ReselectProb float64
	seed         uint64
}

// NewStationary draws a stationary model: the home point is placed
// within spreadKm of centre.
func NewStationary(src *rng.Source, centre geo.Point, spreadKm float64) *Stationary {
	return &Stationary{
		Home:         offsetKm(centre, (src.Float64()*2-1)*spreadKm, (src.Float64()*2-1)*spreadKm),
		JitterKm:     1.5,
		ReselectProb: 0.01,
		seed:         src.Uint64(),
	}
}

// Position implements Model.
func (s *Stationary) Position(t time.Time) geo.Point {
	hour := uint64(t.Unix() / 3600)
	if hash01(s.seed, hour) < s.ReselectProb {
		ang := 2 * math.Pi * hash01(s.seed^0xabcd, hour)
		return offsetKm(s.Home, s.JitterKm*math.Cos(ang), s.JitterKm*math.Sin(ang))
	}
	return s.Home
}

// Commuter pendulums between a home and a work location on a weekday
// schedule.
type Commuter struct {
	Home geo.Point
	Work geo.Point
	seed uint64
}

// NewCommuter draws a commuter: home within spreadKm of centre, work
// 2–15 km from home.
func NewCommuter(src *rng.Source, centre geo.Point, spreadKm float64) *Commuter {
	home := offsetKm(centre, (src.Float64()*2-1)*spreadKm, (src.Float64()*2-1)*spreadKm)
	d := 2 + 13*src.Float64()
	ang := 2 * math.Pi * src.Float64()
	return &Commuter{
		Home: home,
		Work: offsetKm(home, d*math.Cos(ang), d*math.Sin(ang)),
		seed: src.Uint64(),
	}
}

// Position implements Model. Weekdays 09:00–17:00 are spent at work,
// 08:00–09:00 and 17:00–18:00 in transit (linear interpolation),
// everything else at home; weekends wander near home.
func (c *Commuter) Position(t time.Time) geo.Point {
	wd := t.Weekday()
	if wd == time.Saturday || wd == time.Sunday {
		hour := uint64(t.Unix() / 3600)
		ang := 2 * math.Pi * hash01(c.seed, hour)
		d := 3 * hash01(c.seed^0x5555, hour)
		return offsetKm(c.Home, d*math.Cos(ang), d*math.Sin(ang))
	}
	h := float64(t.Hour()) + float64(t.Minute())/60
	switch {
	case h < 8 || h >= 18:
		return c.Home
	case h < 9:
		return lerp(c.Home, c.Work, h-8)
	case h < 17:
		return c.Work
	default:
		return lerp(c.Work, c.Home, h-17)
	}
}

func lerp(a, b geo.Point, f float64) geo.Point {
	return geo.Point{Lat: a.Lat + (b.Lat-a.Lat)*f, Lon: a.Lon + (b.Lon-a.Lon)*f}
}

// Vehicular is sustained movement: the device drives legs of tens of
// kilometres, bouncing inside a box around its base so multi-day
// simulations stay within the host country's sector lattice.
type Vehicular struct {
	Base    geo.Point
	RangeKm float64 // half-width of the operating box
	SpeedKm float64 // average speed in km/h
	seed    uint64
}

// NewVehicular draws a vehicle operating within rangeKm of centre.
func NewVehicular(src *rng.Source, centre geo.Point, rangeKm float64) *Vehicular {
	return &Vehicular{
		Base:    centre,
		RangeKm: rangeKm,
		SpeedKm: 40 + 50*src.Float64(),
		seed:    src.Uint64(),
	}
}

// Position implements Model. The trajectory folds a constant-speed
// 1-D walk onto independent x/y axes (triangle waves with
// pseudo-random phase per axis), which produces long straight legs
// with direction reversals — adequate for sector-churn purposes.
func (v *Vehicular) Position(t time.Time) geo.Point {
	elapsed := float64(t.Unix()) / 3600 // hours
	dist := elapsed * v.SpeedKm
	period := 4 * v.RangeKm
	fold := func(x float64) float64 {
		m := math.Mod(x, period)
		if m < 0 {
			m += period
		}
		if m > period/2 {
			m = period - m
		}
		return m - v.RangeKm // [-RangeKm, RangeKm]
	}
	phaseX := period * hash01(v.seed, 1)
	phaseY := period * hash01(v.seed, 2)
	// Different axis speeds avoid closed orbits.
	return offsetKm(v.Base, fold(dist*0.83+phaseX), fold(dist*0.59+phaseY))
}

// Waypoint wanders between random waypoints drawn per epoch.
type Waypoint struct {
	Centre   geo.Point
	RadiusKm float64
	EpochH   float64 // hours per waypoint epoch
	seed     uint64
}

// NewWaypoint draws a random-waypoint wanderer around centre.
func NewWaypoint(src *rng.Source, centre geo.Point, radiusKm float64) *Waypoint {
	return &Waypoint{Centre: centre, RadiusKm: radiusKm, EpochH: 6, seed: src.Uint64()}
}

// Position implements Model: it interpolates between the epoch's
// endpoint waypoints.
func (w *Waypoint) Position(t time.Time) geo.Point {
	eh := w.EpochH * 3600
	epoch := uint64(float64(t.Unix()) / eh)
	frac := math.Mod(float64(t.Unix()), eh) / eh
	from := w.waypoint(epoch)
	to := w.waypoint(epoch + 1)
	return lerp(from, to, frac)
}

func (w *Waypoint) waypoint(epoch uint64) geo.Point {
	ang := 2 * math.Pi * hash01(w.seed, epoch)
	d := w.RadiusKm * math.Sqrt(hash01(w.seed^0x7777, epoch))
	return offsetKm(w.Centre, d*math.Cos(ang), d*math.Sin(ang))
}
