package mobility

import (
	"testing"
	"time"

	"whereroam/internal/geo"
	"whereroam/internal/rng"
)

var centre = geo.Point{Lat: 51.5, Lon: -0.1}

func sampleDay(m Model, day time.Time, stepMin int) []geo.Visit {
	var visits []geo.Visit
	for min := 0; min < 24*60; min += stepMin {
		visits = append(visits, geo.Visit{
			At:     m.Position(day.Add(time.Duration(min) * time.Minute)),
			Weight: float64(stepMin),
		})
	}
	return visits
}

func TestModelsDeterministic(t *testing.T) {
	build := func() []Model {
		src := rng.New(42)
		return []Model{
			NewStationary(src.Split("s"), centre, 20),
			NewCommuter(src.Split("c"), centre, 20),
			NewVehicular(src.Split("v"), centre, 80),
			NewWaypoint(src.Split("w"), centre, 10),
		}
	}
	a, b := build(), build()
	ts := time.Date(2019, 4, 8, 13, 37, 0, 0, time.UTC)
	for i := range a {
		for h := 0; h < 48; h++ {
			q := ts.Add(time.Duration(h) * time.Hour)
			if a[i].Position(q) != b[i].Position(q) {
				t.Fatalf("model %d not deterministic at %v", i, q)
			}
		}
	}
}

func TestPositionIsPure(t *testing.T) {
	src := rng.New(7)
	m := NewVehicular(src, centre, 50)
	q := time.Date(2019, 4, 9, 10, 0, 0, 0, time.UTC)
	p1 := m.Position(q)
	// Querying other instants must not perturb the original answer.
	for h := 0; h < 100; h++ {
		m.Position(q.Add(time.Duration(h) * time.Minute))
	}
	if m.Position(q) != p1 {
		t.Fatal("Position must be a pure function of time")
	}
}

func TestStationaryStaysPut(t *testing.T) {
	src := rng.New(1)
	day := time.Date(2019, 4, 8, 0, 0, 0, 0, time.UTC)
	for dev := 0; dev < 20; dev++ {
		m := NewStationary(src.SplitN("dev", uint64(dev)), centre, 30)
		g := geo.Gyration(sampleDay(m, day, 10))
		// §5.3: stationary devices should sit well under 1 km of
		// gyration even with reselection jitter.
		if g > 1.0 {
			t.Errorf("stationary device %d gyration = %.2f km", dev, g)
		}
	}
}

func TestStationaryJitterHappens(t *testing.T) {
	src := rng.New(2)
	m := NewStationary(src, centre, 10)
	m.ReselectProb = 0.5 // crank it up to make the test cheap
	moved := false
	day := time.Date(2019, 4, 8, 0, 0, 0, 0, time.UTC)
	for h := 0; h < 48; h++ {
		if m.Position(day.Add(time.Duration(h)*time.Hour)) != m.Home {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("reselection jitter never produced an off-home position")
	}
}

func TestCommuterSchedule(t *testing.T) {
	src := rng.New(3)
	m := NewCommuter(src, centre, 20)
	monday := time.Date(2019, 4, 8, 0, 0, 0, 0, time.UTC)
	if m.Position(monday.Add(3*time.Hour)) != m.Home {
		t.Error("3am should be at home")
	}
	if m.Position(monday.Add(12*time.Hour)) != m.Work {
		t.Error("noon should be at work")
	}
	if m.Position(monday.Add(22*time.Hour)) != m.Home {
		t.Error("10pm should be at home")
	}
	mid := m.Position(monday.Add(8*time.Hour + 30*time.Minute))
	if mid == m.Home || mid == m.Work {
		t.Error("8:30am should be in transit")
	}
}

func TestCommuterGyrationExceedsStationary(t *testing.T) {
	src := rng.New(4)
	day := time.Date(2019, 4, 9, 0, 0, 0, 0, time.UTC) // Tuesday
	comm := NewCommuter(src.Split("c"), centre, 20)
	stat := NewStationary(src.Split("s"), centre, 20)
	gc := geo.Gyration(sampleDay(comm, day, 10))
	gs := geo.Gyration(sampleDay(stat, day, 10))
	if gc <= gs {
		t.Errorf("commuter gyration %.2f should exceed stationary %.2f", gc, gs)
	}
	if gc < 0.5 {
		t.Errorf("commuter gyration %.2f km implausibly small", gc)
	}
}

func TestVehicularCoversDistance(t *testing.T) {
	src := rng.New(5)
	m := NewVehicular(src, centre, 80)
	day := time.Date(2019, 4, 10, 0, 0, 0, 0, time.UTC)
	g := geo.Gyration(sampleDay(m, day, 10))
	// Fig. 12: connected cars show smartphone-like or larger
	// mobility; a day of driving should cover tens of km.
	if g < 10 {
		t.Errorf("vehicular gyration = %.2f km, want > 10", g)
	}
	// And it must stay inside its operating box (plus slack).
	for h := 0; h < 24*7; h++ {
		p := m.Position(day.Add(time.Duration(h) * time.Hour))
		if d := geo.DistanceKm(p, m.Base); d > 80*1.6 {
			t.Fatalf("vehicle escaped its box: %.1f km from base", d)
		}
	}
}

func TestWaypointBounded(t *testing.T) {
	src := rng.New(6)
	m := NewWaypoint(src, centre, 10)
	day := time.Date(2019, 4, 8, 0, 0, 0, 0, time.UTC)
	for h := 0; h < 24*14; h++ {
		p := m.Position(day.Add(time.Duration(h) * time.Hour))
		if d := geo.DistanceKm(p, centre); d > 11 {
			t.Fatalf("waypoint wanderer left its radius: %.1f km", d)
		}
	}
}

func TestWaypointMoves(t *testing.T) {
	src := rng.New(8)
	m := NewWaypoint(src, centre, 10)
	day := time.Date(2019, 4, 8, 0, 0, 0, 0, time.UTC)
	distinct := map[geo.Point]bool{}
	for h := 0; h < 24; h++ {
		distinct[m.Position(day.Add(time.Duration(h)*time.Hour))] = true
	}
	if len(distinct) < 12 {
		t.Errorf("wanderer visited only %d distinct positions in a day", len(distinct))
	}
}

func TestMobilityOrdering(t *testing.T) {
	// The core paper ordering (Fig. 8 and 12): stationary meters ≪
	// commuting smartphones ≲ vehicles.
	src := rng.New(9)
	day := time.Date(2019, 4, 9, 0, 0, 0, 0, time.UTC)
	avg := func(mk func(i uint64) Model) float64 {
		total := 0.0
		const n = 10
		for i := uint64(0); i < n; i++ {
			total += geo.Gyration(sampleDay(mk(i), day, 15))
		}
		return total / n
	}
	meters := avg(func(i uint64) Model { return NewStationary(src.SplitN("m", i), centre, 30) })
	phones := avg(func(i uint64) Model { return NewCommuter(src.SplitN("p", i), centre, 30) })
	cars := avg(func(i uint64) Model { return NewVehicular(src.SplitN("v", i), centre, 80) })
	if !(meters < phones && phones < cars) {
		t.Errorf("gyration ordering broken: meters=%.2f phones=%.2f cars=%.2f", meters, phones, cars)
	}
}

func BenchmarkVehicularPosition(b *testing.B) {
	m := NewVehicular(rng.New(1), centre, 80)
	ts := time.Date(2019, 4, 10, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Position(ts.Add(time.Duration(i) * time.Minute))
	}
}
