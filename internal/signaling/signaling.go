// Package signaling models the control-plane transactions the paper's
// M2M dataset is built from (§3.1): mobility-management procedures
// between a device, a visited network and its home network, with a
// per-transaction result.
//
// A transaction is the paper's record schema verbatim: anonymized
// device ID, timestamp, SIM MCC-MNC, visited MCC-MNC, message type
// (authentication, update location, cancel location, ...) and a
// message result (OK, RoamingNotAllowed, UnknownSubscription, ...).
//
// The package also provides two codecs: a fixed-width binary wire
// format with a preallocated streaming decoder (the gopacket
// DecodingLayerParser idiom — decode into caller-owned memory, no
// allocation per record) and a CSV form for interchange.
package signaling

import (
	"fmt"
	"strconv"
	"time"

	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

// Procedure is a mobility-management message type.
type Procedure uint8

// Procedures captured by the monitoring probes. The M2M platform
// probe sees Authentication/UpdateLocation/CancelLocation (§3.3); the
// MNO-side probe additionally sees Attach/Detach/RoutingAreaUpdate
// (§7.1).
const (
	ProcUnknown Procedure = iota
	ProcAuthentication
	ProcUpdateLocation
	ProcCancelLocation
	ProcAttach
	ProcDetach
	ProcRoutingAreaUpdate
)

var procNames = [...]string{
	"Unknown", "Authentication", "UpdateLocation", "CancelLocation",
	"Attach", "Detach", "RoutingAreaUpdate",
}

func (p Procedure) String() string {
	if int(p) < len(procNames) {
		return procNames[p]
	}
	return "proc(" + strconv.Itoa(int(p)) + ")"
}

// ParseProcedure parses the String form.
func ParseProcedure(s string) (Procedure, error) {
	for i, n := range procNames {
		if n == s {
			return Procedure(i), nil
		}
	}
	return ProcUnknown, fmt.Errorf("signaling: unknown procedure %q", s)
}

// Result is the outcome reported for a transaction.
type Result uint8

// Results as the paper's datasets name them.
const (
	ResultOK Result = iota
	ResultRoamingNotAllowed
	ResultUnknownSubscription
	ResultFeatureUnsupported
	ResultNetworkFailure
	ResultCongestion
)

var resultNames = [...]string{
	"OK", "RoamingNotAllowed", "UnknownSubscription",
	"FeatureUnsupported", "NetworkFailure", "Congestion",
}

func (r Result) String() string {
	if int(r) < len(resultNames) {
		return resultNames[r]
	}
	return "result(" + strconv.Itoa(int(r)) + ")"
}

// ParseResult parses the String form.
func ParseResult(s string) (Result, error) {
	for i, n := range resultNames {
		if n == s {
			return Result(i), nil
		}
	}
	return 0, fmt.Errorf("signaling: unknown result %q", s)
}

// OK reports whether the result indicates success.
func (r Result) OK() bool { return r == ResultOK }

// Transaction is one signaling record.
type Transaction struct {
	Device    identity.DeviceID
	Time      time.Time
	SIM       mccmnc.PLMN // home network of the SIM
	Visited   mccmnc.PLMN // network the device attempted to use
	Procedure Procedure
	Result    Result
	RAT       radio.RAT
}

// Roaming reports whether the transaction was generated while the
// device was outside its SIM's home country.
func (tx Transaction) Roaming() bool {
	return !mccmnc.SameCountry(tx.SIM, tx.Visited)
}

// String renders a compact single-line debug form.
func (tx Transaction) String() string {
	return fmt.Sprintf("%s %s %s->%s %s %s %s",
		tx.Time.UTC().Format(time.RFC3339), tx.Device, tx.SIM, tx.Visited,
		tx.RAT, tx.Procedure, tx.Result)
}
