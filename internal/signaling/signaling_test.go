package signaling

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

func sampleTx(i int) Transaction {
	return Transaction{
		Device:    identity.DeviceID(0x1000 + i),
		Time:      time.Date(2018, 11, 19, 0, 0, i, 0, time.UTC),
		SIM:       mccmnc.MustParse("21407"),
		Visited:   mccmnc.MustParse("50501"),
		Procedure: ProcUpdateLocation,
		Result:    ResultOK,
		RAT:       radio.RAT4G,
	}
}

func TestProcedureStrings(t *testing.T) {
	for p := ProcUnknown; p <= ProcRoutingAreaUpdate; p++ {
		s := p.String()
		got, err := ParseProcedure(s)
		if err != nil || got != p {
			t.Errorf("procedure %d: %q -> %v, %v", p, s, got, err)
		}
	}
	if _, err := ParseProcedure("Bogus"); err == nil {
		t.Error("ParseProcedure should reject unknown names")
	}
}

func TestResultStrings(t *testing.T) {
	for r := ResultOK; r <= ResultCongestion; r++ {
		s := r.String()
		got, err := ParseResult(s)
		if err != nil || got != r {
			t.Errorf("result %d: %q -> %v, %v", r, s, got, err)
		}
	}
	if !ResultOK.OK() || ResultRoamingNotAllowed.OK() {
		t.Error("OK() wrong")
	}
}

func TestRoaming(t *testing.T) {
	tx := sampleTx(0)
	if !tx.Roaming() {
		t.Error("ES SIM on AU network should be roaming")
	}
	tx.Visited = mccmnc.MustParse("21401") // another ES operator
	if tx.Roaming() {
		t.Error("ES SIM on ES network is not (international) roaming")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	txs := make([]Transaction, 100)
	for i := range txs {
		txs[i] = sampleTx(i)
		txs[i].Procedure = Procedure(1 + i%6)
		txs[i].Result = Result(i % 6)
		txs[i].RAT = radio.RAT(1 + i%3)
	}
	if err := WriteAll(&buf, txs); err != nil {
		t.Fatal(err)
	}
	wantLen := headerSize + len(txs)*recordSize
	if buf.Len() != wantLen {
		t.Fatalf("stream length = %d, want %d", buf.Len(), wantLen)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(txs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(txs))
	}
	for i := range txs {
		if !got[i].Time.Equal(txs[i].Time) {
			t.Fatalf("record %d time: %v != %v", i, got[i].Time, txs[i].Time)
		}
		got[i].Time = txs[i].Time // normalize monotonic clock / location
		if got[i] != txs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], txs[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(dev uint64, nanos int64, proc, res, rat uint8) bool {
		tx := Transaction{
			Device:    identity.DeviceID(dev),
			Time:      time.Unix(0, nanos%(1<<60)).UTC(),
			SIM:       mccmnc.MustParse("20404"),
			Visited:   mccmnc.MustParse("23410"),
			Procedure: Procedure(proc % 7),
			Result:    Result(res % 6),
			RAT:       radio.RAT(rat % 4),
		}
		var buf [recordSize]byte
		tx.MarshalInto(buf[:])
		var got Transaction
		if err := got.UnmarshalFrom(buf[:]); err != nil {
			return false
		}
		return got.Device == tx.Device && got.Time.Equal(tx.Time) &&
			got.SIM == tx.SIM && got.Visited == tx.Visited &&
			got.Procedure == tx.Procedure && got.Result == tx.Result && got.RAT == tx.RAT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryDetectsCorruption(t *testing.T) {
	tx := sampleTx(1)
	var buf [recordSize]byte
	tx.MarshalInto(buf[:])
	for i := 0; i < recordSize; i++ {
		c := buf
		c[i] ^= 0xff
		var got Transaction
		if err := got.UnmarshalFrom(c[:]); err == nil {
			// Flipping the checksum bytes themselves must also fail.
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
}

func TestBinaryTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []Transaction{sampleTx(0), sampleTx(1)}); err != nil {
		t.Fatal(err)
	}
	// Chop mid-record.
	cut := buf.Bytes()[:buf.Len()-10]
	_, err := ReadAll(bytes.NewReader(cut))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation error = %v", err)
	}
}

func TestBinaryBadMagicAndVersion(t *testing.T) {
	var tx Transaction
	r := NewReader(strings.NewReader("NOPE\x01\x20"))
	if err := r.Read(&tx); err != ErrBadMagic {
		t.Errorf("bad magic error = %v", err)
	}
	r = NewReader(strings.NewReader(magic + "\x07\x20"))
	if err := r.Read(&tx); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version error = %v", err)
	}
}

func TestEmptyStream(t *testing.T) {
	got, err := ReadAll(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v, %d records", err, len(got))
	}
}

func TestReaderCounts(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		tx := sampleTx(i)
		if err := w.Write(&tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5 {
		t.Errorf("writer count = %d", w.Count())
	}
	r := NewReader(&buf)
	var tx Transaction
	for {
		if err := r.Read(&tx); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if r.Count() != 5 {
		t.Errorf("reader count = %d", r.Count())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	txs := make([]Transaction, 50)
	for i := range txs {
		txs[i] = sampleTx(i)
		txs[i].Procedure = Procedure(1 + i%6)
		txs[i].Result = Result(i % 6)
	}
	for i := range txs {
		if err := w.Write(&txs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewCSVReader(&buf)
	for i := range txs {
		var got Transaction
		if err := r.Read(&got); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !got.Time.Equal(txs[i].Time) {
			t.Fatalf("row %d time mismatch", i)
		}
		got.Time = txs[i].Time
		if got != txs[i] {
			t.Fatalf("row %d: %+v != %+v", i, got, txs[i])
		}
	}
	var tail Transaction
	if err := r.Read(&tail); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	rows := []string{
		"time,device,sim,visited,rat,procedure,result",
		"not-a-time,0000000000000001,21407,23410,1,Attach,OK",
	}
	r := NewCSVReader(strings.NewReader(strings.Join(rows, "\n")))
	var tx Transaction
	if err := r.Read(&tx); err == nil {
		t.Fatal("malformed time accepted")
	}
	rows[1] = "2019-04-05T00:00:00Z,0000000000000001,21407,23410,9,Attach,OK"
	r = NewCSVReader(strings.NewReader(strings.Join(rows, "\n")))
	if err := r.Read(&tx); err == nil {
		t.Fatal("out-of-range RAT accepted")
	}
	rows[1] = "2019-04-05T00:00:00Z,0000000000000001,21407,23410,1,Warp,OK"
	r = NewCSVReader(strings.NewReader(strings.Join(rows, "\n")))
	if err := r.Read(&tx); err == nil {
		t.Fatal("unknown procedure accepted")
	}
}

func TestMarshalIntoNoAlloc(t *testing.T) {
	tx := sampleTx(0)
	var buf [recordSize]byte
	allocs := testing.AllocsPerRun(1000, func() {
		tx.MarshalInto(buf[:])
		var got Transaction
		if err := got.UnmarshalFrom(buf[:]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("marshal+unmarshal allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkMarshal(b *testing.B) {
	tx := sampleTx(0)
	var buf [recordSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx.MarshalInto(buf[:])
	}
}

func BenchmarkUnmarshalPreallocated(b *testing.B) {
	tx := sampleTx(0)
	var buf [recordSize]byte
	tx.MarshalInto(buf[:])
	var got Transaction
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := got.UnmarshalFrom(buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamRead(b *testing.B) {
	var buf bytes.Buffer
	txs := make([]Transaction, 10000)
	for i := range txs {
		txs[i] = sampleTx(i)
	}
	if err := WriteAll(&buf, txs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		var tx Transaction
		for {
			if err := r.Read(&tx); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
