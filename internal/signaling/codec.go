package signaling

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

// Binary wire format
//
// A stream is a 6-byte header ("WRTX" magic, version, record size)
// followed by fixed 32-byte records. Fixed width keeps encoding and
// decoding allocation-free and lets readers seek by record index.
//
//	offset  size  field
//	0       8     device ID (big endian)
//	8       8     time, Unix nanoseconds (big endian, two's complement)
//	16      2     SIM MCC
//	18      2     SIM MNC
//	20      1     SIM MNC length
//	21      2     visited MCC
//	23      2     visited MNC
//	25      1     visited MNC length
//	26      1     procedure
//	27      1     result
//	28      1     RAT
//	29      1     reserved (0)
//	30      2     additive checksum of bytes [0,30)
const (
	recordSize  = 32
	magic       = "WRTX"
	wireVersion = 1
	headerSize  = len(magic) + 2
)

// Wire errors.
var (
	ErrBadMagic    = errors.New("signaling: bad stream magic")
	ErrBadVersion  = errors.New("signaling: unsupported wire version")
	ErrBadChecksum = errors.New("signaling: record checksum mismatch")
	ErrTruncated   = errors.New("signaling: truncated record")
)

// MarshalInto encodes the transaction into buf, which must be at
// least 32 bytes, and returns the number of bytes written. It never
// allocates.
func (tx *Transaction) MarshalInto(buf []byte) int {
	_ = buf[recordSize-1]
	binary.BigEndian.PutUint64(buf[0:8], uint64(tx.Device))
	binary.BigEndian.PutUint64(buf[8:16], uint64(tx.Time.UnixNano()))
	binary.BigEndian.PutUint16(buf[16:18], tx.SIM.MCC)
	binary.BigEndian.PutUint16(buf[18:20], tx.SIM.MNC)
	buf[20] = tx.SIM.MNCLen
	binary.BigEndian.PutUint16(buf[21:23], tx.Visited.MCC)
	binary.BigEndian.PutUint16(buf[23:25], tx.Visited.MNC)
	buf[25] = tx.Visited.MNCLen
	buf[26] = byte(tx.Procedure)
	buf[27] = byte(tx.Result)
	buf[28] = byte(tx.RAT)
	buf[29] = 0
	binary.BigEndian.PutUint16(buf[30:32], checksum(buf[:30]))
	return recordSize
}

// UnmarshalFrom decodes a record from buf into the receiver without
// allocating. It verifies the checksum.
func (tx *Transaction) UnmarshalFrom(buf []byte) error {
	if len(buf) < recordSize {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(buf[30:32]) != checksum(buf[:30]) {
		return ErrBadChecksum
	}
	tx.Device = identity.DeviceID(binary.BigEndian.Uint64(buf[0:8]))
	tx.Time = time.Unix(0, int64(binary.BigEndian.Uint64(buf[8:16]))).UTC()
	tx.SIM = mccmnc.PLMN{
		MCC:    binary.BigEndian.Uint16(buf[16:18]),
		MNC:    binary.BigEndian.Uint16(buf[18:20]),
		MNCLen: buf[20],
	}
	tx.Visited = mccmnc.PLMN{
		MCC:    binary.BigEndian.Uint16(buf[21:23]),
		MNC:    binary.BigEndian.Uint16(buf[23:25]),
		MNCLen: buf[25],
	}
	tx.Procedure = Procedure(buf[26])
	tx.Result = Result(buf[27])
	tx.RAT = radio.RAT(buf[28])
	return nil
}

func checksum(b []byte) uint16 {
	var s uint16
	for _, c := range b {
		s += uint16(c)
	}
	return s
}

// Writer streams transactions in the binary wire format.
type Writer struct {
	w      *bufio.Writer
	buf    [recordSize]byte
	wrote  int
	header bool
}

// NewWriter returns a Writer targeting w. The stream header is
// emitted lazily before the first record.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// Write appends one transaction to the stream.
func (w *Writer) Write(tx *Transaction) error {
	if !w.header {
		var h [headerSize]byte
		copy(h[:], magic)
		h[4] = wireVersion
		h[5] = recordSize
		if _, err := w.w.Write(h[:]); err != nil {
			return fmt.Errorf("signaling: writing header: %w", err)
		}
		w.header = true
	}
	tx.MarshalInto(w.buf[:])
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return fmt.Errorf("signaling: writing record %d: %w", w.wrote, err)
	}
	w.wrote++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.wrote }

// Flush drains buffered records to the underlying writer. Callers
// must Flush before closing the destination.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams transactions from the binary wire format, decoding
// into caller-owned memory (the DecodingLayerParser idiom: the hot
// loop performs no allocation).
type Reader struct {
	r      *bufio.Reader
	buf    [recordSize]byte
	read   int
	header bool
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Read decodes the next record into tx. It returns io.EOF at a clean
// end of stream and ErrTruncated for a partial trailing record.
func (r *Reader) Read(tx *Transaction) error {
	if !r.header {
		var h [headerSize]byte
		if _, err := io.ReadFull(r.r, h[:]); err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("signaling: reading header: %w", err)
		}
		if string(h[:4]) != magic {
			return ErrBadMagic
		}
		if h[4] != wireVersion {
			return fmt.Errorf("%w: %d", ErrBadVersion, h[4])
		}
		if h[5] != recordSize {
			return fmt.Errorf("signaling: record size %d, want %d", h[5], recordSize)
		}
		r.header = true
	}
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return ErrTruncated
		}
		return fmt.Errorf("signaling: reading record %d: %w", r.read, err)
	}
	if err := tx.UnmarshalFrom(r.buf[:]); err != nil {
		return fmt.Errorf("record %d: %w", r.read, err)
	}
	r.read++
	return nil
}

// Count returns the number of records successfully read.
func (r *Reader) Count() int { return r.read }

// ReadAll decodes an entire stream. Unlike the streaming Read path it
// allocates the result slice; it exists for small files and for the
// codec ablation benchmark (per-record allocation vs preallocated
// decode).
func ReadAll(r io.Reader) ([]Transaction, error) {
	rd := NewReader(r)
	var out []Transaction
	for {
		var tx Transaction
		err := rd.Read(&tx)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, tx)
	}
}

// WriteAll encodes all transactions to w and flushes.
func WriteAll(w io.Writer, txs []Transaction) error {
	wr := NewWriter(w)
	for i := range txs {
		if err := wr.Write(&txs[i]); err != nil {
			return err
		}
	}
	return wr.Flush()
}
