package signaling

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

func TestAVPRoundTrip(t *testing.T) {
	var buf []byte
	tx := sampleTx(7)
	buf = AppendAVPMessage(buf, &tx)
	if len(buf)%4 != 0 {
		t.Errorf("message length %d not 4-byte aligned", len(buf))
	}
	var got Transaction
	n, err := DecodeAVPMessage(buf, &got)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if !got.Time.Equal(tx.Time) {
		t.Fatal("time mismatch")
	}
	got.Time = tx.Time
	if got != tx {
		t.Fatalf("round trip: %+v != %+v", got, tx)
	}
}

func TestAVPRoundTripProperty(t *testing.T) {
	f := func(dev uint64, nanos int64, proc, res, rat uint8) bool {
		tx := Transaction{
			Device:    identity.DeviceID(dev),
			Time:      time.Unix(0, nanos%(1<<60)).UTC(),
			SIM:       mccmnc.MustParse("334020"),
			Visited:   mccmnc.MustParse("21407"),
			Procedure: Procedure(proc % 7),
			Result:    Result(res % 6),
			RAT:       radio.RAT(rat % 5),
		}
		buf := AppendAVPMessage(nil, &tx)
		var got Transaction
		if _, err := DecodeAVPMessage(buf, &got); err != nil {
			return false
		}
		return got.Device == tx.Device && got.Time.Equal(tx.Time) &&
			got.SIM == tx.SIM && got.Visited == tx.Visited &&
			got.Procedure == tx.Procedure && got.Result == tx.Result && got.RAT == tx.RAT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAVPStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewAVPWriter(&buf)
	txs := make([]Transaction, 500)
	for i := range txs {
		txs[i] = sampleTx(i)
		txs[i].Procedure = Procedure(1 + i%6)
		if err := w.Write(&txs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 500 {
		t.Fatalf("writer count = %d", w.Count())
	}
	r := NewAVPReader(&buf)
	for i := range txs {
		var got Transaction
		if err := r.Read(&got); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Device != txs[i].Device || got.Procedure != txs[i].Procedure {
			t.Fatalf("message %d mismatch", i)
		}
	}
	var tail Transaction
	if err := r.Read(&tail); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if r.Count() != 500 {
		t.Errorf("reader count = %d", r.Count())
	}
}

// appendRawAVP builds one AVP by hand for the extension tests.
func appendRawAVP(dst []byte, code uint32, flags byte, data []byte) []byte {
	ln := avpHeaderLen + len(data)
	var hdr [avpHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], code)
	hdr[4] = flags
	hdr[5] = byte(ln >> 16)
	hdr[6] = byte(ln >> 8)
	hdr[7] = byte(ln)
	dst = append(dst, hdr[:]...)
	dst = append(dst, data...)
	for (len(data))%4 != 0 {
		dst = append(dst, 0)
		data = append(data, 0)
	}
	return dst
}

func patchLength(msg []byte) {
	binary.BigEndian.PutUint32(msg[4:8], uint32(len(msg)))
}

func TestAVPSkipsUnknownOptional(t *testing.T) {
	tx := sampleTx(1)
	msg := AppendAVPMessage(nil, &tx)
	// Graft an unknown, non-mandatory AVP into the body and re-patch
	// the message length.
	msg = appendRawAVP(msg, 9999, 0, []byte{0xde, 0xad})
	patchLength(msg)
	var got Transaction
	if _, err := DecodeAVPMessage(msg, &got); err != nil {
		t.Fatalf("unknown optional AVP should be skipped: %v", err)
	}
	if got.Device != tx.Device {
		t.Error("payload lost around unknown AVP")
	}
}

func TestAVPRejectsUnknownMandatory(t *testing.T) {
	tx := sampleTx(1)
	msg := AppendAVPMessage(nil, &tx)
	msg = appendRawAVP(msg, 9999, avpFlagMandatory, []byte{1})
	patchLength(msg)
	var got Transaction
	if _, err := DecodeAVPMessage(msg, &got); !errors.Is(err, ErrAVPMandatory) {
		t.Fatalf("err = %v, want ErrAVPMandatory", err)
	}
}

func TestAVPRejectsMissingRequired(t *testing.T) {
	// A message with only a device AVP lacks the required set.
	msg := []byte{avpMsgMagic[0], avpMsgMagic[1], avpMsgVersion, 0, 0, 0, 0, 0}
	msg = appendRawAVP(msg, avpDeviceID, avpFlagMandatory, make([]byte, 8))
	patchLength(msg)
	var got Transaction
	if _, err := DecodeAVPMessage(msg, &got); !errors.Is(err, ErrAVPMissing) {
		t.Fatalf("err = %v, want ErrAVPMissing", err)
	}
}

func TestAVPMalformedInputs(t *testing.T) {
	var got Transaction
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("XX\x01\x00\x00\x00\x00\x10--------------"),
		"bad version": []byte("WA\x09\x00\x00\x00\x00\x10--------------"),
	}
	for name, in := range cases {
		if _, err := DecodeAVPMessage(in, &got); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Truncated body: declare more than present.
	tx := sampleTx(0)
	msg := AppendAVPMessage(nil, &tx)
	binary.BigEndian.PutUint32(msg[4:8], 256) // claim 256 bytes
	if _, err := DecodeAVPMessage(msg, &got); err == nil {
		t.Error("truncated message accepted")
	}
	// AVP with absurd internal length.
	msg = AppendAVPMessage(nil, &tx)
	msg[msgHeaderLen+7] = 0xff // first AVP length byte
	if _, err := DecodeAVPMessage(msg, &got); !errors.Is(err, ErrAVPBadLength) {
		t.Errorf("bad AVP length: %v", err)
	}
}

func TestAVPReaderTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewAVPWriter(&buf)
	tx := sampleTx(0)
	if err := w.Write(&tx); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-4]
	r := NewAVPReader(bytes.NewReader(cut))
	var got Transaction
	if err := r.Read(&got); !errors.Is(err, ErrAVPTruncated) {
		t.Fatalf("err = %v, want ErrAVPTruncated", err)
	}
}

func BenchmarkAVPEncode(b *testing.B) {
	tx := sampleTx(0)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendAVPMessage(buf[:0], &tx)
	}
}

func BenchmarkAVPDecode(b *testing.B) {
	tx := sampleTx(0)
	msg := AppendAVPMessage(nil, &tx)
	var got Transaction
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAVPMessage(msg, &got); err != nil {
			b.Fatal(err)
		}
	}
}
