package signaling

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

// AVP wire format
//
// The platform's probes sit on Diameter S6a links (the
// Authentication / Update-Location / Cancel-Location procedures of
// §3.1 are S6a commands), so this package also speaks an AVP-framed
// encoding: each transaction is a message of attribute-value pairs
// in the Diameter layout — 4-byte code, 1-byte flags, 3-byte length,
// payload padded to 4 bytes. Unknown AVPs without the mandatory flag
// are skipped, which is what lets the format evolve; unknown
// mandatory AVPs reject the message, per RFC 6733 semantics.
//
//	message := msgHeader AVP*
//	msgHeader := "WA" version(1) reserved(1) length(4, incl. header)
//	AVP := code(4) flags(1) length(3, incl. 8-byte AVP header) data pad
//
// AVP codes used (vendor-private numbering):
const (
	avpDeviceID  = 1 // 8-byte device hash
	avpTimestamp = 2 // 8-byte Unix nanoseconds
	avpSIM       = 3 // 5-byte PLMN (MCC,MNC,len)
	avpVisited   = 4 // 5-byte PLMN
	avpProcedure = 5 // 1 byte
	avpResult    = 6 // 1 byte
	avpRAT       = 7 // 1 byte
)

// avpFlagMandatory mirrors Diameter's M-bit: a receiver that does not
// understand a mandatory AVP must reject the message.
const avpFlagMandatory = 0x40

const (
	avpMsgMagic   = "WA"
	avpMsgVersion = 1
	avpHeaderLen  = 8
	msgHeaderLen  = 8
)

// AVP wire errors.
var (
	ErrAVPBadMagic   = errors.New("signaling: avp: bad message magic")
	ErrAVPBadVersion = errors.New("signaling: avp: unsupported version")
	ErrAVPTruncated  = errors.New("signaling: avp: truncated message")
	ErrAVPMandatory  = errors.New("signaling: avp: unknown mandatory AVP")
	ErrAVPMissing    = errors.New("signaling: avp: required AVP missing")
	ErrAVPBadLength  = errors.New("signaling: avp: AVP length out of bounds")
	ErrAVPOversize   = errors.New("signaling: avp: message too large")
)

// maxAVPMessage bounds a single message (a transaction encodes to
// well under 100 bytes; anything larger is corruption).
const maxAVPMessage = 512

// AppendAVPMessage appends the AVP encoding of tx to dst and returns
// the extended slice.
func AppendAVPMessage(dst []byte, tx *Transaction) []byte {
	start := len(dst)
	// Message header placeholder; length patched at the end.
	dst = append(dst, avpMsgMagic[0], avpMsgMagic[1], avpMsgVersion, 0, 0, 0, 0, 0)

	appendAVP := func(dst []byte, code uint32, data ...byte) []byte {
		ln := avpHeaderLen + len(data)
		var hdr [avpHeaderLen]byte
		binary.BigEndian.PutUint32(hdr[0:4], code)
		hdr[4] = avpFlagMandatory
		hdr[5] = byte(ln >> 16)
		hdr[6] = byte(ln >> 8)
		hdr[7] = byte(ln)
		dst = append(dst, hdr[:]...)
		dst = append(dst, data...)
		for len(data)%4 != 0 {
			dst = append(dst, 0)
			data = append(data, 0) // track padding length only
		}
		return dst
	}
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(tx.Device))
	dst = appendAVP(dst, avpDeviceID, u64[:]...)
	binary.BigEndian.PutUint64(u64[:], uint64(tx.Time.UnixNano()))
	dst = appendAVP(dst, avpTimestamp, u64[:]...)
	dst = appendAVP(dst, avpSIM, plmnBytes(tx.SIM)...)
	dst = appendAVP(dst, avpVisited, plmnBytes(tx.Visited)...)
	dst = appendAVP(dst, avpProcedure, byte(tx.Procedure))
	dst = appendAVP(dst, avpResult, byte(tx.Result))
	dst = appendAVP(dst, avpRAT, byte(tx.RAT))

	total := len(dst) - start
	binary.BigEndian.PutUint32(dst[start+4:start+8], uint32(total))
	return dst
}

func plmnBytes(p mccmnc.PLMN) []byte {
	var b [5]byte
	binary.BigEndian.PutUint16(b[0:2], p.MCC)
	binary.BigEndian.PutUint16(b[2:4], p.MNC)
	b[4] = p.MNCLen
	return b[:]
}

// DecodeAVPMessage decodes one message from buf into tx and returns
// the number of bytes consumed. Unknown non-mandatory AVPs are
// skipped; unknown mandatory AVPs reject the message.
func DecodeAVPMessage(buf []byte, tx *Transaction) (int, error) {
	if len(buf) < msgHeaderLen {
		return 0, ErrAVPTruncated
	}
	if buf[0] != avpMsgMagic[0] || buf[1] != avpMsgMagic[1] {
		return 0, ErrAVPBadMagic
	}
	if buf[2] != avpMsgVersion {
		return 0, fmt.Errorf("%w: %d", ErrAVPBadVersion, buf[2])
	}
	total := int(binary.BigEndian.Uint32(buf[4:8]))
	if total < msgHeaderLen || total > maxAVPMessage {
		return 0, ErrAVPOversize
	}
	if len(buf) < total {
		return 0, ErrAVPTruncated
	}
	var have uint8
	const (
		needDevice = 1 << iota
		needTime
		needSIM
		needVisited
		needProc
	)
	body := buf[msgHeaderLen:total]
	for len(body) > 0 {
		if len(body) < avpHeaderLen {
			return 0, ErrAVPTruncated
		}
		code := binary.BigEndian.Uint32(body[0:4])
		flags := body[4]
		ln := int(body[5])<<16 | int(body[6])<<8 | int(body[7])
		if ln < avpHeaderLen || ln > len(body) {
			return 0, ErrAVPBadLength
		}
		data := body[avpHeaderLen:ln]
		switch code {
		case avpDeviceID:
			if len(data) < 8 {
				return 0, ErrAVPBadLength
			}
			tx.Device = identity.DeviceID(binary.BigEndian.Uint64(data[:8]))
			have |= needDevice
		case avpTimestamp:
			if len(data) < 8 {
				return 0, ErrAVPBadLength
			}
			tx.Time = time.Unix(0, int64(binary.BigEndian.Uint64(data[:8]))).UTC()
			have |= needTime
		case avpSIM:
			if len(data) < 5 {
				return 0, ErrAVPBadLength
			}
			tx.SIM = plmnFromBytes(data)
			have |= needSIM
		case avpVisited:
			if len(data) < 5 {
				return 0, ErrAVPBadLength
			}
			tx.Visited = plmnFromBytes(data)
			have |= needVisited
		case avpProcedure:
			if len(data) < 1 {
				return 0, ErrAVPBadLength
			}
			tx.Procedure = Procedure(data[0])
			have |= needProc
		case avpResult:
			if len(data) < 1 {
				return 0, ErrAVPBadLength
			}
			tx.Result = Result(data[0])
		case avpRAT:
			if len(data) < 1 {
				return 0, ErrAVPBadLength
			}
			tx.RAT = radio.RAT(data[0])
		default:
			if flags&avpFlagMandatory != 0 {
				return 0, fmt.Errorf("%w: code %d", ErrAVPMandatory, code)
			}
			// Non-mandatory unknown AVP: skip.
		}
		// Advance over the AVP plus its padding.
		adv := ln
		for adv%4 != 0 {
			adv++
		}
		if adv > len(body) {
			adv = len(body)
		}
		body = body[adv:]
	}
	const needAll = needDevice | needTime | needSIM | needVisited | needProc
	if have&needAll != needAll {
		return 0, ErrAVPMissing
	}
	return total, nil
}

func plmnFromBytes(b []byte) mccmnc.PLMN {
	return mccmnc.PLMN{
		MCC:    binary.BigEndian.Uint16(b[0:2]),
		MNC:    binary.BigEndian.Uint16(b[2:4]),
		MNCLen: b[4],
	}
}

// AVPWriter streams transactions as back-to-back AVP messages.
type AVPWriter struct {
	w     io.Writer
	buf   []byte
	wrote int
}

// NewAVPWriter returns an AVPWriter targeting w.
func NewAVPWriter(w io.Writer) *AVPWriter { return &AVPWriter{w: w} }

// Write appends one transaction.
func (w *AVPWriter) Write(tx *Transaction) error {
	w.buf = AppendAVPMessage(w.buf[:0], tx)
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("signaling: avp: writing message %d: %w", w.wrote, err)
	}
	w.wrote++
	return nil
}

// Count returns the number of messages written.
func (w *AVPWriter) Count() int { return w.wrote }

// AVPReader streams transactions from back-to-back AVP messages.
type AVPReader struct {
	r    io.Reader
	buf  []byte
	n    int // valid bytes in buf
	read int
}

// NewAVPReader returns an AVPReader consuming from r.
func NewAVPReader(r io.Reader) *AVPReader {
	return &AVPReader{r: r, buf: make([]byte, 4*maxAVPMessage)}
}

// Read decodes the next message into tx; io.EOF marks a clean end.
func (r *AVPReader) Read(tx *Transaction) error {
	for {
		if r.n >= msgHeaderLen {
			total := int(binary.BigEndian.Uint32(r.buf[4:8]))
			if total >= msgHeaderLen && total <= maxAVPMessage && r.n >= total {
				consumed, err := DecodeAVPMessage(r.buf[:r.n], tx)
				if err != nil {
					return fmt.Errorf("message %d: %w", r.read, err)
				}
				copy(r.buf, r.buf[consumed:r.n])
				r.n -= consumed
				r.read++
				return nil
			}
			if total < msgHeaderLen || total > maxAVPMessage {
				return fmt.Errorf("message %d: %w", r.read, ErrAVPOversize)
			}
		}
		m, err := r.r.Read(r.buf[r.n:])
		r.n += m
		if err == io.EOF {
			if r.n == 0 {
				return io.EOF
			}
			if r.n < msgHeaderLen {
				return ErrAVPTruncated
			}
			total := int(binary.BigEndian.Uint32(r.buf[4:8]))
			if r.n < total {
				return ErrAVPTruncated
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("signaling: avp: reading: %w", err)
		}
	}
}

// Count returns the number of messages successfully read.
func (r *AVPReader) Count() int { return r.read }
