package signaling

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

// csvHeader is the column layout of the CSV interchange form,
// mirroring the field list of §3.1.
var csvHeader = []string{"time", "device", "sim", "visited", "rat", "procedure", "result"}

// CSVWriter streams transactions as CSV with a header row.
type CSVWriter struct {
	w      *csv.Writer
	header bool
	row    [7]string
}

// NewCSVWriter returns a CSVWriter targeting w.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: csv.NewWriter(w)}
}

// Write appends one transaction.
func (c *CSVWriter) Write(tx *Transaction) error {
	if !c.header {
		if err := c.w.Write(csvHeader); err != nil {
			return fmt.Errorf("signaling: csv header: %w", err)
		}
		c.header = true
	}
	c.row[0] = tx.Time.UTC().Format(time.RFC3339Nano)
	c.row[1] = tx.Device.String()
	c.row[2] = tx.SIM.Concat()
	c.row[3] = tx.Visited.Concat()
	c.row[4] = strconv.Itoa(int(tx.RAT))
	c.row[5] = tx.Procedure.String()
	c.row[6] = tx.Result.String()
	return c.w.Write(c.row[:])
}

// Flush drains buffered rows and reports any write error.
func (c *CSVWriter) Flush() error {
	c.w.Flush()
	return c.w.Error()
}

// CSVReader streams transactions from the CSV interchange form.
type CSVReader struct {
	r      *csv.Reader
	header bool
	line   int
}

// NewCSVReader returns a CSVReader consuming from r.
func NewCSVReader(r io.Reader) *CSVReader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	cr.ReuseRecord = true
	return &CSVReader{r: cr}
}

// Read decodes the next row into tx; io.EOF marks the end.
func (c *CSVReader) Read(tx *Transaction) error {
	if !c.header {
		if _, err := c.r.Read(); err != nil {
			return err
		}
		c.header = true
	}
	rec, err := c.r.Read()
	if err != nil {
		return err
	}
	c.line++
	ts, err := time.Parse(time.RFC3339Nano, rec[0])
	if err != nil {
		return fmt.Errorf("signaling: csv line %d: time: %w", c.line, err)
	}
	dev, err := identity.ParseDeviceID(rec[1])
	if err != nil {
		return fmt.Errorf("signaling: csv line %d: %w", c.line, err)
	}
	sim, err := mccmnc.Parse(rec[2])
	if err != nil {
		return fmt.Errorf("signaling: csv line %d: sim: %w", c.line, err)
	}
	visited, err := mccmnc.Parse(rec[3])
	if err != nil {
		return fmt.Errorf("signaling: csv line %d: visited: %w", c.line, err)
	}
	rat, err := strconv.Atoi(rec[4])
	if err != nil || rat < 0 || rat > int(radio.RATNB) {
		return fmt.Errorf("signaling: csv line %d: rat %q", c.line, rec[4])
	}
	proc, err := ParseProcedure(rec[5])
	if err != nil {
		return fmt.Errorf("signaling: csv line %d: %w", c.line, err)
	}
	res, err := ParseResult(rec[6])
	if err != nil {
		return fmt.Errorf("signaling: csv line %d: %w", c.line, err)
	}
	tx.Time = ts
	tx.Device = dev
	tx.SIM = sim
	tx.Visited = visited
	tx.RAT = radio.RAT(rat)
	tx.Procedure = proc
	tx.Result = res
	return nil
}
