package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"whereroam/internal/apn"
	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
)

// sitePLMNs are the per-site observers of the synthetic federation
// feeds below.
var sitePLMNs = []mccmnc.PLMN{
	mccmnc.MustParse("23410"),
	mccmnc.MustParse("26201"),
	mccmnc.MustParse("20404"),
}

// siteFeeds synthesizes per-site tap-order CDR feeds with the
// federation's presence-exclusivity shape: each device is at exactly
// one site per day, records appended device-major per site (so site
// archives are NOT time-ordered — the tap order compaction exists to
// fix), while each device's own records stay in time order within its
// site. Event times carry seeded jitter so different seeds exercise
// different orders and tie patterns.
func siteFeeds(t *testing.T, seed, devices, days, sites int) [][]cdrs.Record {
	t.Helper()
	if sites > len(sitePLMNs) {
		t.Fatalf("at most %d sites", len(sitePLMNs))
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	a := apn.MustParse("smhp.centricaplc.com")
	feeds := make([][]cdrs.Record, sites)
	for d := 0; d < devices; d++ {
		dev := identity.DeviceID(rng.Uint64())
		offset := time.Duration(rng.Intn(86400)) * time.Second
		for day := 0; day < days; day++ {
			site := (d + day*seed) % sites
			feeds[site] = append(feeds[site], cdrs.Record{
				Device: dev,
				Time:   testStart.Add(time.Duration(day)*24*time.Hour + offset),
				SIM:    testHome, Visited: sitePLMNs[site], Kind: cdrs.KindData,
				RAT: 1, Duration: 30 * time.Second, Bytes: uint64(64 + d), APN: a,
			})
		}
	}
	return feeds
}

// writeSiteStores archives each feed into its own site store and
// returns the input dirs in site order.
func writeSiteStores(t *testing.T, root string, days, segRecords int, feeds [][]cdrs.Record) []string {
	t.Helper()
	dirs := make([]string, len(feeds))
	for s, feed := range feeds {
		dir := filepath.Join(root, fmt.Sprintf("site-%s", sitePLMNs[s].Concat()))
		w, err := NewWriter(dir, Meta{Host: sitePLMNs[s], Start: testStart, Days: days}, segRecords)
		if err != nil {
			t.Fatal(err)
		}
		for i := range feed {
			if err := w.Append(feed[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		dirs[s] = dir
	}
	return dirs
}

// inputReplayReference replays every input store in order into one
// shared builder created with the compacted store's metadata — the
// "replaying the inputs" side of the replay-equivalence contract.
func inputReplayReference(t *testing.T, dirs []string, host mccmnc.PLMN, days int, q Query) *catalog.Catalog {
	t.Helper()
	b := catalog.NewBuilder(host, testStart, days, nil)
	for _, dir := range dirs {
		r, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.ReplayRecords(q, func(rec cdrs.Record) { b.AddRecord(rec) }); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// Compacting a multi-site federation must produce a time-ordered
// store whose replay is bit-identical to replaying the inputs, at
// every worker count, across seeds — the tentpole determinism
// contract.
func TestCompactMultiSiteReplayIdentical(t *testing.T) {
	const (
		devices = 40
		days    = 5
		sites   = 3
	)
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for seed := 1; seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			root := t.TempDir()
			feeds := siteFeeds(t, seed, devices, days, sites)
			dirs := writeSiteStores(t, root, days, 32, feeds)
			out := filepath.Join(root, "compacted")
			stats, err := Compact(out, dirs, CompactOptions{SegmentRecords: 32})
			if err != nil {
				t.Fatal(err)
			}
			if stats.RecordsOut != int64(devices*days) {
				t.Fatalf("compacted %d records, want %d", stats.RecordsOut, devices*days)
			}

			r, err := Open(out)
			if err != nil {
				t.Fatal(err)
			}
			if rep := r.Verify(); !rep.OK() {
				t.Fatalf("compacted store fails verification:\n%s", rep)
			}
			// Mixed hosts: the merged store has no single observer.
			if r.Manifest().Host != "" {
				t.Fatalf("multi-site compaction kept host %q", r.Manifest().Host)
			}

			// The output stream is sorted by (time, device).
			var prev cdrs.Record
			n := 0
			if _, err := r.ReplayRecords(Query{}, func(rec cdrs.Record) {
				if n > 0 && (rec.Time.Before(prev.Time) ||
					(rec.Time.Equal(prev.Time) && uint64(rec.Device) < uint64(prev.Device))) {
					t.Fatalf("record %d out of order: %v/%x after %v/%x",
						n, rec.Time, rec.Device, prev.Time, prev.Device)
				}
				prev = rec
				n++
			}); err != nil {
				t.Fatal(err)
			}

			want := inputReplayReference(t, dirs, mccmnc.PLMN{}, days, Query{})
			for _, workers := range workerCounts {
				got, _, err := r.Replay(Query{}, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("workers=%d: compacted replay differs from input replay", workers)
				}
			}
		})
	}
}

// The compacted output must be byte-identical at any merge fan-in:
// multi-pass external merges through temp run files reproduce the
// single-pass order exactly.
func TestCompactFanInInvariant(t *testing.T) {
	const days = 5
	root := t.TempDir()
	feeds := siteFeeds(t, 2, 50, days, 3)
	dirs := writeSiteStores(t, root, days, 16, feeds)

	outA := filepath.Join(root, "out-default")
	outB := filepath.Join(root, "out-fanin2")
	statsA, err := Compact(outA, dirs, CompactOptions{SegmentRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	statsB, err := Compact(outB, dirs, CompactOptions{SegmentRecords: 16, MaxFanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	if statsB.Passes <= statsA.Passes {
		t.Fatalf("fan-in 2 ran %d passes, default ran %d — fixture must force multi-pass", statsB.Passes, statsA.Passes)
	}

	ra, err := Open(outA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Open(outB)
	if err != nil {
		t.Fatal(err)
	}
	segsA, segsB := ra.Manifest().Segments, rb.Manifest().Segments
	if !reflect.DeepEqual(segsA, segsB) {
		t.Fatal("fan-in changed the segment index")
	}
	for i := range segsA {
		ba, err := os.ReadFile(filepath.Join(outA, segsA[i].Name))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(outB, segsB[i].Name))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ba, bb) {
			t.Fatalf("segment %s differs between fan-ins", segsA[i].Name)
		}
	}
}

// Compacting one tap-order store must make day pruning bite: the
// input's segments all span the whole window, the output's segments
// cover tight day ranges — and replay equality holds with the host
// preserved (single input, single observer).
func TestCompactSingleStoreTightensDayPruning(t *testing.T) {
	const days = 6
	root := t.TempDir()
	// Device-major feed: one device's whole window, then the next —
	// the worst case for day pruning.
	var recs []cdrs.Record
	a := apn.MustParse("smhp.centricaplc.com")
	for d := 0; d < 30; d++ {
		dev := identity.DeviceID(0x9000 + uint64(d)*257)
		for day := 0; day < days; day++ {
			recs = append(recs, cdrs.Record{
				Device: dev, Time: testStart.Add(time.Duration(day)*24*time.Hour + time.Duration(d)*time.Minute),
				SIM: testHome, Visited: testHost, Kind: cdrs.KindData, RAT: 1,
				Duration: 10 * time.Second, Bytes: 99, APN: a,
			})
		}
	}
	in := filepath.Join(root, "tap")
	writeStore(t, in, days, 16, recs)
	out := filepath.Join(root, "mediation")
	if _, err := Compact(out, []string{in}, CompactOptions{SegmentRecords: 16}); err != nil {
		t.Fatal(err)
	}

	rIn, err := Open(in)
	if err != nil {
		t.Fatal(err)
	}
	rOut, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rOut.Manifest().Host, testHost.Concat(); got != want {
		t.Fatalf("single-input compaction host %q, want %q", got, want)
	}
	q := Query{}.Days(2, 2)
	planIn, planOut := rIn.Plan(q), rOut.Plan(q)
	if planIn.PrunedRange != 0 {
		t.Fatalf("tap-order fixture pruned %d segments — not tap-ordered enough", planIn.PrunedRange)
	}
	if planOut.PrunedRange == 0 {
		t.Fatal("day pruning does not bite on the compacted store")
	}
	if len(planOut.Selected) >= len(planIn.Selected) {
		t.Fatalf("compaction did not shrink the day-query read set: %d vs %d",
			len(planOut.Selected), len(planIn.Selected))
	}

	want := inputReplayReference(t, []string{in}, testHost, days, Query{})
	got, _, err := rOut.Replay(Query{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("compacted replay differs from input replay")
	}
}

// A query-narrowed compaction extracts exactly the window: equal to
// replaying the inputs with the same query.
func TestCompactFiltered(t *testing.T) {
	const days = 5
	root := t.TempDir()
	feeds := siteFeeds(t, 3, 30, days, 2)
	dirs := writeSiteStores(t, root, days, 16, feeds)
	q := Query{}.Days(1, 3)

	out := filepath.Join(root, "window")
	stats, err := Compact(out, dirs, CompactOptions{SegmentRecords: 16, Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecordsOut >= stats.RecordsIn && stats.SegmentsPruned == 0 {
		t.Fatalf("query dropped nothing: %+v", stats)
	}
	r, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}
	want := inputReplayReference(t, dirs, mccmnc.PLMN{}, days, q)
	got, _, err := r.Replay(Query{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("filtered compaction replay differs from filtered input replay")
	}
}

// Compaction refuses mismatched inputs: different observation windows
// or mixed record planes cannot merge.
func TestCompactRejectsMismatchedInputs(t *testing.T) {
	root := t.TempDir()
	a := filepath.Join(root, "a")
	writeStore(t, a, 3, 16, feedRecords(4, 3))
	b := filepath.Join(root, "b")
	writeStore(t, b, 4, 16, feedRecords(4, 4))
	if _, err := Compact(filepath.Join(root, "out1"), []string{a, b}, CompactOptions{}); err == nil {
		t.Fatal("window mismatch not rejected")
	}

	sig := filepath.Join(root, "sig")
	w, err := NewSignalingWriter(sig, testMeta(3), 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(filepath.Join(root, "out2"), []string{a, sig}, CompactOptions{}); err == nil {
		t.Fatal("kind mismatch not rejected")
	}
	if _, err := Compact(filepath.Join(root, "out3"), nil, CompactOptions{}); err == nil {
		t.Fatal("empty input list not rejected")
	}
}

// PlanCompact agrees with what Compact then does, and the dry run
// reads no segment bodies (it must work even when bodies are gone).
func TestPlanCompactMatchesExecution(t *testing.T) {
	const days = 4
	root := t.TempDir()
	feeds := siteFeeds(t, 1, 20, days, 2)
	dirs := writeSiteStores(t, root, days, 16, feeds)

	opts := CompactOptions{SegmentRecords: 16, MaxFanIn: 2}
	plan, err := PlanCompact(dirs, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(root, "out")
	stats, err := Compact(out, dirs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Runs != stats.SegmentsIn {
		t.Fatalf("plan %d runs, compact merged %d segments", plan.Runs, stats.SegmentsIn)
	}
	if plan.Passes != stats.Passes {
		t.Fatalf("plan %d passes, compact ran %d", plan.Passes, stats.Passes)
	}
	if plan.Records != stats.RecordsIn {
		t.Fatalf("plan %d records, compact decoded %d", plan.Records, stats.RecordsIn)
	}
	if plan.Kind != KindCDR || len(plan.Inputs) != 2 {
		t.Fatalf("bad plan: %+v", plan)
	}
}

// An empty compaction (all inputs empty) still yields a valid,
// replayable empty store.
func TestCompactEmptyInputs(t *testing.T) {
	root := t.TempDir()
	a := filepath.Join(root, "a")
	w, err := NewWriter(a, testMeta(3), 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(root, "out")
	stats, err := Compact(out, []string{a}, CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecordsOut != 0 || stats.SegmentsOut != 0 {
		t.Fatalf("empty compaction produced %+v", stats)
	}
	r, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep := r.Verify(); !rep.OK() {
		t.Fatalf("empty compacted store fails verification:\n%s", rep)
	}
}
