package store

import (
	"strconv"

	"whereroam/internal/obs"
)

// Metrics bundles the store's instrumentation handles: segment
// planner counters (selected vs range-pruned vs Bloom-pruned), read
// and write volume counters, seal/checkpoint latency histograms,
// per-shard replay timing, and compaction spans. A nil *Metrics is a
// complete no-op — every hook checks the receiver, and the handles
// themselves are nil-safe obs types — so the store's deterministic
// results and benchmarked hot paths are untouched unless a caller
// explicitly attaches metrics via [Reader.Observe],
// [SegmentWriter.Observe] or [CompactOptions.Metrics].
type Metrics struct {
	segSelected    *obs.Counter
	segPrunedRange *obs.Counter
	segPrunedBloom *obs.Counter
	segRead        *obs.Counter
	bytesRead      *obs.Counter
	recordsRead    *obs.Counter
	segSealed      *obs.Counter
	bytesWritten   *obs.Counter
	recordsWritten *obs.Counter
	sealSeconds    *obs.Histogram
	ckptSeconds    *obs.Histogram
	shardSeconds   *obs.Histogram
	tracer         *obs.Tracer
}

// NewMetrics registers the store's series on reg (nil-tolerated) and
// routes compaction spans to tracer (nil-tolerated). With both nil it
// returns nil, the no-op Metrics.
func NewMetrics(reg *obs.Registry, tracer *obs.Tracer) *Metrics {
	if reg == nil && tracer == nil {
		return nil
	}
	return &Metrics{
		segSelected:    reg.Counter("store_segments_selected_total", "segments admitted by the query planner"),
		segPrunedRange: reg.Counter("store_segments_range_pruned_total", "segments skipped unread by day/device/visited range indexes"),
		segPrunedBloom: reg.Counter("store_segments_bloom_pruned_total", "segments skipped unread by the device-hash bloom filter alone"),
		segRead:        reg.Counter("store_segments_read_total", "segments decoded end to end"),
		bytesRead:      reg.Counter("store_bytes_read_total", "segment body bytes decoded"),
		recordsRead:    reg.Counter("store_records_read_total", "records decoded from segment bodies"),
		segSealed:      reg.Counter("store_segments_sealed_total", "segments sealed with bloom filter and footer"),
		bytesWritten:   reg.Counter("store_bytes_written_total", "sealed segment bytes written (body, bloom, footer)"),
		recordsWritten: reg.Counter("store_records_written_total", "records sealed into segments"),
		sealSeconds:    reg.Histogram("store_seal_seconds", "segment seal latency (flush, bloom, footer, fsyncs, log append)", nil),
		ckptSeconds:    reg.Histogram("store_checkpoint_seconds", "manifest checkpoint write latency", nil),
		shardSeconds:   reg.Histogram("store_replay_shard_seconds", "per-shard wall time of concurrent replays", nil),
		tracer:         tracer,
	}
}

// notePlan records one query-planning outcome.
func (m *Metrics) notePlan(selected, prunedRange, prunedBloom int) {
	if m == nil {
		return
	}
	m.segSelected.Add(int64(selected))
	m.segPrunedRange.Add(int64(prunedRange))
	m.segPrunedBloom.Add(int64(prunedBloom))
}

// noteRead records the read volume of a finished replay.
func (m *Metrics) noteRead(st *ReplayStats) {
	if m == nil {
		return
	}
	m.segRead.Add(int64(st.SegmentsRead))
	m.bytesRead.Add(st.BytesRead)
	m.recordsRead.Add(st.RecordsRead)
}

// noteSeal records one sealed segment's volume.
func (m *Metrics) noteSeal(bytes int64, records int) {
	if m == nil {
		return
	}
	m.segSealed.Inc()
	m.bytesWritten.Add(bytes)
	m.recordsWritten.Add(int64(records))
}

// sealTimer starts the seal-latency stopwatch (inert when detached).
func (m *Metrics) sealTimer() obs.Stopwatch {
	if m == nil {
		return obs.Stopwatch{}
	}
	return m.sealSeconds.Start()
}

// ckptTimer starts the checkpoint-latency stopwatch.
func (m *Metrics) ckptTimer() obs.Stopwatch {
	if m == nil {
		return obs.Stopwatch{}
	}
	return m.ckptSeconds.Start()
}

// shardHist exposes the replay-shard histogram for pipeline.MapTimed
// (nil when detached, which MapTimed treats as plain Map).
func (m *Metrics) shardHist() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.shardSeconds
}

// span opens a tracer span (nil-safe at every link of the chain).
func (m *Metrics) span(name string) *obs.Span {
	if m == nil {
		return nil
	}
	return m.tracer.Start(name)
}

// itoa is strconv.Itoa under a name that keeps span-label call sites
// compact.
func itoa(n int) string { return strconv.Itoa(n) }

// Observe attaches metrics to the reader: subsequent replays count
// planner decisions, read volume and per-shard timing against m.
// Pass nil to detach.
func (r *Reader) Observe(m *Metrics) { r.met = m }

// Observe attaches metrics to the writer: subsequent seals and
// checkpoints count volume and latency against m. Pass nil to
// detach. Safe to call concurrently with producers.
func (w *SegmentWriter[T]) Observe(m *Metrics) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.met = m
}
