package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"whereroam/internal/cdrs"
	"whereroam/internal/mccmnc"
)

// FuzzSegmentFooter fuzzes the fixed-size footer decoder: arbitrary
// bytes must come back as a clean error or a bounded SegmentInfo,
// never a panic or an over-read.
func FuzzSegmentFooter(f *testing.F) {
	si := SegmentInfo{
		Name: "seg-000000.wrseg", Records: 128, BodyBytes: 4096, BodyCRC: 0xdeadbeef,
		MinDay: 0, MaxDay: 5, MinDevice: 0x1000, MaxDevice: 0x2000,
	}
	valid := encodeFooter(0, &si, []mccmnc.PLMN{mccmnc.MustParse("23410"), mccmnc.MustParse("26201")})
	f.Add(valid[:])
	overflow := si
	overflow.VisitedOverflow = true
	validOv := encodeFooter(1, &overflow, nil)
	f.Add(validOv[:])
	f.Add([]byte("WRSF"))
	f.Add(make([]byte, footerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeFooter(data)
		if err != nil {
			return
		}
		if len(got.Visited) > maxFooterVisited {
			t.Fatalf("decoded %d visited networks, footer indexes at most %d",
				len(got.Visited), maxFooterVisited)
		}
		if got.Records < 0 {
			t.Fatalf("decoded negative record count %d", got.Records)
		}
	})
}

// FuzzManifest fuzzes the store-open path with arbitrary manifest
// bytes: Open must reject garbage with an error (and confine segment
// names to the store directory), never panic; when it succeeds,
// Verify and Replay must also stay panic-free.
func FuzzManifest(f *testing.F) {
	// Seed with the manifest of a real store.
	dir := f.TempDir()
	w, err := NewWriter(dir, Meta{Host: mccmnc.MustParse("23410"), Days: 3}, 4)
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range feedRecords(4, 3) {
		if err := w.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	validMan, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(validMan)
	f.Add([]byte(`{"version":1,"kind":"cdr","days":3,"segments":[{"name":"../x.wrseg","records":1}]}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version":1,"kind":"cdr","segments":[{"name":"seg-000000.wrseg","records":-1,"bytes":-5}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Reject obviously huge inputs to keep iterations fast.
		if len(data) > 1<<16 {
			return
		}
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, ManifestName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(fdir)
		if err != nil {
			return
		}
		// Whatever Open accepted must stay panic-free downstream.
		var man Manifest
		if err := json.Unmarshal(data, &man); err != nil {
			t.Fatalf("Open accepted a manifest json.Unmarshal rejects: %v", err)
		}
		r.Verify()
		if man.Kind == KindCDR {
			_, _, _ = r.Replay(Filter{}, 2)
		}
		_, _ = r.ReplayRecords(Filter{}.Days(0, 1), func(cdrs.Record) {})
	})
}
