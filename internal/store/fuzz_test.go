package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"whereroam/internal/cdrs"
	"whereroam/internal/mccmnc"
)

// FuzzSegmentFooter fuzzes the fixed-size footer decoder: arbitrary
// bytes must come back as a clean error or a bounded SegmentInfo,
// never a panic or an over-read — for both footer versions.
func FuzzSegmentFooter(f *testing.F) {
	si := SegmentInfo{
		Name: "seg-000000.wrseg", Records: 128, BodyBytes: 4096, BodyCRC: 0xdeadbeef,
		MinDay: 0, MaxDay: 5, MinDevice: 0x1000, MaxDevice: 0x2000,
		Bloom: make([]byte, bloomMinBytes), BloomHashes: bloomHashCount,
	}
	valid := encodeFooter(0, &si, []mccmnc.PLMN{mccmnc.MustParse("23410"), mccmnc.MustParse("26201")})
	f.Add(valid[:])
	overflow := si
	overflow.VisitedOverflow = true
	validOv := encodeFooter(1, &overflow, nil)
	f.Add(validOv[:])
	v1 := si
	v1.Bloom, v1.BloomHashes = nil, 0
	validV1 := encodeFooterV1(0, &v1, []mccmnc.PLMN{mccmnc.MustParse("23410")})
	f.Add(validV1[:])
	f.Add([]byte("WRSF"))
	f.Add(make([]byte, footerV1Size))
	f.Add(make([]byte, footerV2Size))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, _, err := decodeFooter(data)
		if err != nil {
			return
		}
		if len(got.Visited) > maxFooterVisited {
			t.Fatalf("decoded %d visited networks, footer indexes at most %d",
				len(got.Visited), maxFooterVisited)
		}
		if got.Records < 0 {
			t.Fatalf("decoded negative record count %d", got.Records)
		}
	})
}

// FuzzManifest fuzzes the v1 store-open fallback path with arbitrary
// MANIFEST.json bytes: Open must reject garbage with an error (and
// confine segment names to the store directory), never panic; when it
// succeeds, Verify and Replay must also stay panic-free.
func FuzzManifest(f *testing.F) {
	// Seed with a v1 rendering of a real store's manifest.
	dir := f.TempDir()
	w, err := NewWriter(dir, Meta{Host: mccmnc.MustParse("23410"), Days: 3}, 4)
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range feedRecords(4, 3) {
		if err := w.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	v1man := *r.Manifest()
	v1man.Version = manifestVersionV1
	validMan, err := json.Marshal(&v1man)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(validMan)
	f.Add([]byte(`{"version":1,"kind":"cdr","days":3,"segments":[{"name":"../x.wrseg","records":1}]}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version":1,"kind":"cdr","segments":[{"name":"seg-000000.wrseg","records":-1,"bytes":-5}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Reject obviously huge inputs to keep iterations fast.
		if len(data) > 1<<16 {
			return
		}
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, ManifestName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(fdir)
		if err != nil {
			return
		}
		// Whatever Open accepted must stay panic-free downstream.
		var man Manifest
		if err := json.Unmarshal(data, &man); err != nil {
			t.Fatalf("Open accepted a manifest json.Unmarshal rejects: %v", err)
		}
		r.Verify()
		if man.Kind == KindCDR {
			_, _, _ = r.Replay(Query{}, 2)
		}
		_, _ = r.ReplayRecords(Query{}.Days(0, 1), func(cdrs.Record) {})
	})
}

// FuzzManifestLog fuzzes the MANIFEST.log entry decoder: arbitrary
// bytes must decode to a (possibly empty) entry prefix plus a torn
// flag, never panic — and what decodes must round-trip through the
// encoder.
func FuzzManifestLog(f *testing.F) {
	// Seed with real log images: whole, truncated mid-entry, and with
	// trailing garbage.
	var buf bytes.Buffer
	for i, si := range []SegmentInfo{
		{Name: "seg-000000.wrseg", Records: 4, Bytes: 400, BodyBytes: 200, BodyCRC: 1,
			MinDay: 0, MaxDay: 1, MinDevice: 10, MaxDevice: 20,
			Visited: []string{"23410"}, Bloom: make([]byte, bloomMinBytes), BloomHashes: bloomHashCount},
		{Name: "seg-000001.wrseg", Records: 4, Bytes: 410, BodyBytes: 210, BodyCRC: 2,
			MinDay: 1, MaxDay: 2, MinDevice: 5, MaxDevice: 400, VisitedOverflow: true},
	} {
		if err := appendLogEntry(&buf, &si); err != nil {
			f.Fatalf("seed entry %d: %v", i, err)
		}
	}
	whole := append([]byte(nil), buf.Bytes()...)
	f.Add(whole)
	f.Add(whole[:len(whole)-7])
	f.Add(append(append([]byte(nil), whole...), "WRML???"...))
	f.Add([]byte("WRML"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		entries, torn := decodeLogEntries(data)
		var re bytes.Buffer
		for i := range entries {
			if err := appendLogEntry(&re, &entries[i]); err != nil {
				t.Fatalf("re-encoding decoded entry %d: %v", i, err)
			}
		}
		got, gotTorn := decodeLogEntries(re.Bytes())
		if gotTorn {
			t.Fatal("re-encoded log decodes as torn")
		}
		if len(got) != len(entries) || (len(entries) > 0 && !reflect.DeepEqual(got, entries)) {
			t.Fatalf("log entries do not round-trip: %d in, %d out", len(entries), len(got))
		}
		_ = torn
	})
}
