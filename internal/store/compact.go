package store

// Compaction: merge N stores into one time-ordered store.
//
// Site archives are written in tap order — whatever order the live
// pipeline produced records — so their segments span wide day ranges
// and day pruning rarely skips anything. Compact rewrites one or more
// stores into a single mediation-shape store sorted by (event time,
// device hash), re-rolled into fresh segments with tight footers, so
// that day pruning bites everywhere and each device's records cluster
// into few segments (which is what makes the per-segment Bloom
// filters effective).
//
// # Determinism
//
// The output is a pure function of the input record streams and the
// options — independent of fan-in, pass structure and machine. The
// global output order is the total order
//
//	(event time, device hash, input index, input ordinal)
//
// where "input index" is the store's position in the inputs argument
// and "input ordinal" the record's position within its input. It is
// produced by external merge sort: every selected sealed segment
// becomes one run, loaded and stably sorted by (time, device) —
// stability preserves input ordinals within a segment, and a
// segment's records precede the next segment's, so a run is exactly
// sorted by the total order. Runs are then merged with bounded
// fan-in, ties between runs broken by run position. Because runs are
// kept contiguous in (input index, segment index) order at every
// level, a merge node's branch position orders its runs exactly as
// the total order's (input index, input ordinal) tail does, so every
// pass — and therefore any pass structure — emits the same sequence.
//
// # Replay equivalence
//
// Replaying the compacted store rebuilds the same catalog as
// replaying the inputs and folding the builders in input order,
// because per-(device, day) aggregation is associative and
// commutative across rows and order-sensitive only within one
// device's record sequence — which compaction preserves: a device's
// records stay in time order, ties in their original input order.
// The compacted store's Host is the inputs' common host, or the zero
// PLMN when they differ (a merged multi-site store has no single
// observer); replay equivalence then holds against builders created
// with that same host.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"

	"whereroam/internal/cdrs"
	"whereroam/internal/signaling"
)

// DefaultCompactFanIn is the merge fan-in used when CompactOptions
// leaves MaxFanIn unset: how many runs merge at once, and so how many
// segment-sized run buffers compaction holds in memory at a time.
const DefaultCompactFanIn = 64

// CompactOptions tunes a compaction. The zero value is a full
// compaction with default segment size and fan-in.
type CompactOptions struct {
	// SegmentRecords is the output store's roll threshold
	// (non-positive means DefaultSegmentRecords).
	SegmentRecords int
	// Query narrows the compaction: input segments prune against it
	// unread and surviving records filter through it, so a day-ranged
	// compaction extracts a window. The zero Query keeps everything.
	Query Query
	// MaxFanIn bounds how many runs merge at once (non-positive
	// means DefaultCompactFanIn; the floor is 2). The output is
	// byte-identical at any fan-in.
	MaxFanIn int
	// TempDir hosts the intermediate run files of multi-pass merges
	// (empty means the system temp dir). Nothing is left behind.
	TempDir string
	// Metrics attaches observability: pass/run spans on its tracer,
	// seal volume and latency on the output writer's counters. Nil
	// (the zero value) keeps compaction unobserved; the output is
	// byte-identical either way.
	Metrics *Metrics
}

// fanIn resolves the effective merge fan-in.
func (o *CompactOptions) fanIn() int {
	f := o.MaxFanIn
	if f <= 0 {
		f = DefaultCompactFanIn
	}
	if f < 2 {
		f = 2
	}
	return f
}

// CompactInput describes one input store's contribution to a
// compaction plan.
type CompactInput struct {
	// Dir is the input store directory.
	Dir string
	// Segments is the input's sealed-segment count.
	Segments int
	// Selected counts the segments the plan's query admits — each
	// becomes one merge run.
	Selected int
	// Records sums the records of the selected segments (an upper
	// bound on the input's contribution; record-level filtering may
	// drop more).
	Records int64
}

// CompactPlan is the dry-run view of a compaction: what would merge,
// from where, in how many passes.
type CompactPlan struct {
	// Kind is the record plane of every input (they must agree).
	Kind string
	// Meta is the output store's stream metadata: the inputs' shared
	// window, and their common host or the zero PLMN when they
	// differ.
	Meta Meta
	// SegmentRecords is the output roll threshold.
	SegmentRecords int
	// MaxFanIn is the effective merge fan-in.
	MaxFanIn int
	// Inputs describes each input store, in merge order.
	Inputs []CompactInput
	// Runs is the total number of initial merge runs (selected
	// segments across all inputs).
	Runs int
	// Passes is the number of merge passes, including the final pass
	// into the output store.
	Passes int
	// Records is the planned record volume (sum of Inputs' Records).
	Records int64
}

// CompactStats reports what a compaction actually did.
type CompactStats struct {
	// SegmentsIn counts the input segments merged.
	SegmentsIn int
	// SegmentsPruned counts the input segments the query skipped
	// unread.
	SegmentsPruned int
	// RecordsIn counts the records decoded from the merged segments.
	RecordsIn int64
	// RecordsOut counts the records written to the output store.
	RecordsOut int64
	// SegmentsOut counts the output store's sealed segments.
	SegmentsOut int
	// Passes counts the merge passes run, including the final pass.
	Passes int
}

// PlanCompact validates the inputs and returns the merge plan Compact
// would execute, without reading any segment body.
func PlanCompact(inputs []string, opts CompactOptions) (*CompactPlan, error) {
	readers, err := openInputs(inputs)
	if err != nil {
		return nil, err
	}
	return planCompact(readers, &opts)
}

// Compact merges the input stores into a new time-ordered store at
// dst (created; must not already hold a store). Inputs must share a
// record plane and observation window; the output's host is their
// common host, or the zero PLMN when they differ. See the package
// comment and docs/ARCHITECTURE.md for the determinism and
// replay-equivalence contracts.
func Compact(dst string, inputs []string, opts CompactOptions) (*CompactStats, error) {
	readers, err := openInputs(inputs)
	if err != nil {
		return nil, err
	}
	plan, err := planCompact(readers, &opts)
	if err != nil {
		return nil, err
	}
	if plan.Kind == KindSignaling {
		return compactStores(dst, readers, plan, &opts,
			func(w io.Writer) wireEncoder[signaling.Transaction] { return signaling.NewWriter(w) },
			func(rd io.Reader) wireDecoder[signaling.Transaction] { return signaling.NewReader(rd) },
			txInfo,
			func(dir string, meta Meta, segRecords int) (*SegmentWriter[signaling.Transaction], error) {
				return NewSignalingWriter(dir, meta, segRecords)
			})
	}
	return compactStores(dst, readers, plan, &opts,
		func(w io.Writer) wireEncoder[cdrs.Record] { return cdrs.NewWriter(w) },
		func(rd io.Reader) wireDecoder[cdrs.Record] { return cdrs.NewReader(rd) },
		cdrInfo,
		func(dir string, meta Meta, segRecords int) (*SegmentWriter[cdrs.Record], error) {
			return NewWriter(dir, meta, segRecords)
		})
}

// openInputs opens every input store, in merge order.
func openInputs(inputs []string) ([]*Reader, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("store: compact needs at least one input store")
	}
	readers := make([]*Reader, len(inputs))
	for i, dir := range inputs {
		r, err := Open(dir)
		if err != nil {
			return nil, fmt.Errorf("store: compact input %s: %w", dir, err)
		}
		readers[i] = r
	}
	return readers, nil
}

// planCompact validates that the inputs share a plane and window,
// resolves the output metadata and counts runs and passes.
func planCompact(readers []*Reader, opts *CompactOptions) (*CompactPlan, error) {
	first := readers[0].Manifest()
	meta := first.Meta()
	sameHost := true
	plan := &CompactPlan{
		Kind:           first.Kind,
		SegmentRecords: opts.SegmentRecords,
		MaxFanIn:       opts.fanIn(),
	}
	if plan.SegmentRecords < 1 {
		plan.SegmentRecords = DefaultSegmentRecords
	}
	for _, r := range readers {
		man := r.Manifest()
		if man.Kind != plan.Kind {
			return nil, fmt.Errorf("store: compact inputs mix kinds %q and %q (%s)", plan.Kind, man.Kind, r.Dir())
		}
		m := man.Meta()
		if !m.Start.Equal(meta.Start) || m.Days != meta.Days {
			return nil, fmt.Errorf("store: compact inputs disagree on the observation window (%s)", r.Dir())
		}
		if m.Host != meta.Host {
			sameHost = false
		}
		in := CompactInput{Dir: r.Dir(), Segments: len(man.Segments)}
		for i := range man.Segments {
			si := &man.Segments[i]
			if opts.Query.judgeSegment(si) == segKeep {
				in.Selected++
				in.Records += int64(si.Records)
			}
		}
		plan.Inputs = append(plan.Inputs, in)
		plan.Runs += in.Selected
		plan.Records += in.Records
	}
	plan.Meta = Meta{Start: meta.Start, Days: meta.Days}
	if sameHost {
		plan.Meta.Host = meta.Host
	}
	plan.Passes = 1
	for n := plan.Runs; n > plan.MaxFanIn; {
		n = (n + plan.MaxFanIn - 1) / plan.MaxFanIn
		plan.Passes++
	}
	return plan, nil
}

// openRun is one live merge run: a cursor over a sorted record
// sequence plus the cached comparison key of the current record.
type openRun[T any] struct {
	cur   T
	timeN int64
	dev   uint64
	ok    bool
	next  func() (T, bool, error)
	done  func() error
	info  func(*T) RecordInfo
}

// advance steps the cursor and refreshes the key cache.
func (r *openRun[T]) advance() error {
	rec, ok, err := r.next()
	if err != nil {
		return err
	}
	r.ok = ok
	if ok {
		r.cur = rec
		inf := r.info(&rec)
		r.timeN = inf.Time.UnixNano()
		r.dev = inf.Device
	}
	return nil
}

// runSrc is a not-yet-open run; merging opens runs lazily, one merge
// group at a time, so memory is bounded by fan-in × run size.
type runSrc[T any] struct {
	open func() (*openRun[T], error)
}

// segmentRun builds the runSrc for one sealed segment: load it (the
// query's record filter applied), stably sort by (time, device) —
// stability preserves input ordinals on ties — and cursor over the
// slice.
func segmentRun[T any](r *Reader, si *SegmentInfo, q Query,
	newDec func(io.Reader) wireDecoder[T], info func(*T) RecordInfo,
	recordsIn *int64) runSrc[T] {
	dir, start := r.dir, r.man.Start
	return runSrc[T]{open: func() (*openRun[T], error) {
		type keyed struct {
			timeN int64
			dev   uint64
			rec   T
		}
		recs := make([]keyed, 0, si.Records)
		err := scanSegment(dir, si, newDec, func(rec *T) {
			*recordsIn++
			inf := info(rec)
			if !q.keepRecord(dayOf(inf.Time, start), inf) {
				return
			}
			recs = append(recs, keyed{timeN: inf.Time.UnixNano(), dev: inf.Device, rec: *rec})
		})
		if err != nil {
			return nil, err
		}
		sort.SliceStable(recs, func(i, j int) bool {
			if recs[i].timeN != recs[j].timeN {
				return recs[i].timeN < recs[j].timeN
			}
			return recs[i].dev < recs[j].dev
		})
		i := 0
		run := &openRun[T]{info: info, done: func() error { return nil }}
		run.next = func() (T, bool, error) {
			if i >= len(recs) {
				var zero T
				return zero, false, nil
			}
			rec := recs[i].rec
			i++
			return rec, true, nil
		}
		return run, run.advance()
	}}
}

// fileRun builds the runSrc for an intermediate run file: a plain
// codec stream already in merged order.
func fileRun[T any](path string, newDec func(io.Reader) wireDecoder[T],
	info func(*T) RecordInfo) runSrc[T] {
	return runSrc[T]{open: func() (*openRun[T], error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("store: opening run file: %w", err)
		}
		dec := newDec(bufio.NewReaderSize(f, 1<<16))
		run := &openRun[T]{info: info, done: f.Close}
		run.next = func() (T, bool, error) {
			var rec T
			err := dec.Read(&rec)
			if err == io.EOF {
				return rec, false, nil
			}
			if err != nil {
				return rec, false, fmt.Errorf("store: decoding run file %s: %w", path, err)
			}
			return rec, true, nil
		}
		return run, run.advance()
	}}
}

// mergeGroup opens a contiguous group of runs and merges them into
// emit in (time, device, run position) order. Run position breaks
// ties: with runs grouped contiguously in (input index, segment
// index) order, that reproduces the global total order's (input
// index, input ordinal) tail — the determinism argument in the
// package comment.
func mergeGroup[T any](srcs []runSrc[T], emit func(*T) error) (err error) {
	runs := make([]*openRun[T], len(srcs))
	defer func() {
		for _, r := range runs {
			if r != nil {
				if cerr := r.done(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
	}()
	for i, src := range srcs {
		r, oerr := src.open()
		if oerr != nil {
			return oerr
		}
		runs[i] = r
	}
	less := func(a, b int) bool {
		ra, rb := runs[a], runs[b]
		if ra.timeN != rb.timeN {
			return ra.timeN < rb.timeN
		}
		if ra.dev != rb.dev {
			return ra.dev < rb.dev
		}
		return a < b
	}
	// A small binary min-heap of run positions; fan-in is bounded,
	// so this stays cache-resident.
	h := make([]int, 0, len(runs))
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h) && less(h[l], h[small]) {
				small = l
			}
			if r < len(h) && less(h[r], h[small]) {
				small = r
			}
			if small == i {
				return
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
	}
	for i := range runs {
		if runs[i].ok {
			h = append(h, i)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		r := runs[h[0]]
		if err := emit(&r.cur); err != nil {
			return err
		}
		if err := r.advance(); err != nil {
			return err
		}
		if !r.ok {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
	}
	return nil
}

// compactStores is the kind-generic compaction body: build the
// initial segment runs, reduce them with bounded-fan-in merge passes
// through temp run files, and run the final pass into the output
// store's writer.
func compactStores[T any](dst string, readers []*Reader, plan *CompactPlan, opts *CompactOptions,
	newEnc func(io.Writer) wireEncoder[T], newDec func(io.Reader) wireDecoder[T],
	info func(*T) RecordInfo,
	newWriter func(string, Meta, int) (*SegmentWriter[T], error)) (*CompactStats, error) {
	stats := &CompactStats{}
	total := opts.Metrics.span("compact").
		Label("inputs", itoa(len(readers))).Label("fan_in", itoa(plan.MaxFanIn))
	var srcs []runSrc[T]
	for _, r := range readers {
		for i := range r.man.Segments {
			si := &r.man.Segments[i]
			if opts.Query.judgeSegment(si) != segKeep {
				stats.SegmentsPruned++
				continue
			}
			stats.SegmentsIn++
			srcs = append(srcs, segmentRun(r, si, opts.Query, newDec, info, &stats.RecordsIn))
		}
	}

	fan := plan.MaxFanIn
	var tmpDir string
	defer func() {
		if tmpDir != "" {
			os.RemoveAll(tmpDir)
		}
	}()
	level := 0
	for len(srcs) > fan {
		if tmpDir == "" {
			var err error
			tmpDir, err = os.MkdirTemp(opts.TempDir, "wrcompact-")
			if err != nil {
				return nil, fmt.Errorf("store: creating compaction temp dir: %w", err)
			}
		}
		pass := opts.Metrics.span("compact_pass").
			Label("level", itoa(level)).Label("runs", itoa(len(srcs)))
		next := make([]runSrc[T], 0, (len(srcs)+fan-1)/fan)
		for g := 0; g < len(srcs); g += fan {
			hi := g + fan
			if hi > len(srcs) {
				hi = len(srcs)
			}
			path := fmt.Sprintf("%s/run-%d-%06d", tmpDir, level, g/fan)
			run := opts.Metrics.span("compact_run").
				Label("level", itoa(level)).Label("group", itoa(g/fan))
			if err := writeRunFile(path, srcs[g:hi], newEnc); err != nil {
				return nil, err
			}
			run.Finish()
			next = append(next, fileRun(path, newDec, info))
		}
		srcs = next
		level++
		stats.Passes++
		pass.Finish()
	}

	w, err := newWriter(dst, plan.Meta, plan.SegmentRecords)
	if err != nil {
		return nil, err
	}
	w.Observe(opts.Metrics)
	final := opts.Metrics.span("compact_final").Label("runs", itoa(len(srcs)))
	if err := mergeGroup(srcs, func(rec *T) error {
		stats.RecordsOut++
		return w.Append(*rec)
	}); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	final.Finish()
	stats.SegmentsOut = w.Segments()
	stats.Passes++
	total.Label("records_out", fmt.Sprint(stats.RecordsOut)).Finish()
	return stats, nil
}

// writeRunFile merges a run group into one intermediate codec-stream
// file at path.
func writeRunFile[T any](path string, srcs []runSrc[T], newEnc func(io.Writer) wireEncoder[T]) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: creating run file: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	enc := newEnc(bw)
	if err := mergeGroup(srcs, func(rec *T) error { return enc.Write(rec) }); err != nil {
		f.Close()
		return err
	}
	if err := enc.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("store: flushing run file %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("store: flushing run file %s: %w", path, err)
	}
	return f.Close()
}
