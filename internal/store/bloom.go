package store

// Per-segment device-hash Bloom filters.
//
// Every sealed segment carries a small Bloom filter over the device
// hashes that appear in it, stored in the segment file between the
// codec body and the footer and mirrored into the manifest entry.
// Exact-device queries (Query.Device) probe the filter during
// planning and skip segments that provably do not contain the device
// — pruning that the min/max device-hash range in the footer cannot
// provide once a segment holds a broad hash mix, which is the common
// case because device IDs are uniform 64-bit hashes.
//
// The filter is classic Bloom with double hashing: k probe positions
// are derived from two mixes of the device hash as h1 + i*h2 (h2
// forced odd) over a power-of-two bit count, so membership tests are
// false-positive-only — a set bit pattern can lie "maybe present",
// never "absent" for an inserted hash. Sizing targets ~10 bits per
// distinct device with k=4 probes, giving a false-positive rate
// around 1-2%.

const (
	// bloomBitsPerDevice is the sizing target: bits allocated per
	// distinct device hash inserted into a segment's filter.
	bloomBitsPerDevice = 10
	// bloomHashCount is the number of probe positions (k) derived
	// per device hash.
	bloomHashCount = 4
	// bloomMinBytes floors the filter size so tiny segments still
	// get a usable bit array.
	bloomMinBytes = 64
	// bloomMaxBytes caps the filter size accepted from disk; a
	// larger length in a footer is treated as corruption.
	bloomMaxBytes = 1 << 22
)

// bloomSize returns the filter size in bytes for n distinct devices:
// the smallest power of two holding bloomBitsPerDevice*n bits, floored
// at bloomMinBytes.
func bloomSize(n int) int {
	bits := n * bloomBitsPerDevice
	size := bloomMinBytes
	for size*8 < bits && size < bloomMaxBytes {
		size *= 2
	}
	return size
}

// bloomMix is a splitmix64-style finalizer spreading the device hash
// bits before probe derivation, so clustered inputs still probe
// uniformly.
func bloomMix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// bloomProbes derives the two double-hashing streams for h. h2 is
// forced odd so successive probes cover the whole power-of-two table.
func bloomProbes(h uint64) (h1, h2 uint64) {
	h1 = bloomMix(h)
	h2 = bloomMix(h^0x9e3779b97f4a7c15) | 1
	return h1, h2
}

// bloomAdd sets the k probe bits for device hash h in bits. The bit
// array length must be a power of two.
func bloomAdd(bits []byte, k int, h uint64) {
	mask := uint64(len(bits)*8 - 1)
	h1, h2 := bloomProbes(h)
	for i := 0; i < k; i++ {
		idx := (h1 + uint64(i)*h2) & mask
		bits[idx>>3] |= 1 << (idx & 7)
	}
}

// bloomMaybe reports whether device hash h may be present in the
// filter. False means definitely absent; true means present or a
// false positive. A nil/empty filter or non-positive k reports true
// (no pruning information).
func bloomMaybe(bits []byte, k int, h uint64) bool {
	if len(bits) == 0 || k <= 0 || len(bits)&(len(bits)-1) != 0 {
		return true
	}
	mask := uint64(len(bits)*8 - 1)
	h1, h2 := bloomProbes(h)
	for i := 0; i < k; i++ {
		idx := (h1 + uint64(i)*h2) & mask
		if bits[idx>>3]&(1<<(idx&7)) == 0 {
			return false
		}
	}
	return true
}
