package store

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

// TestReplaySnapshotDuringConcurrentAppend pins the snapshot
// invariant the serving layer depends on: a Replayer opened while a
// SegmentWriter keeps appending to the same directory sees exactly
// the segments sealed at Open time, replays them bit-identically on
// every call, and never observes later seals.
func TestReplaySnapshotDuringConcurrentAppend(t *testing.T) {
	const days = 6
	recs := feedRecords(48, days)
	dir := t.TempDir()

	w, err := NewWriter(dir, testMeta(days), 64)
	if err != nil {
		t.Fatal(err)
	}
	half := len(recs) / 2
	for i := 0; i < half; i++ {
		if err := w.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Snapshot the half-written store. Its manifest covers a sealed
	// prefix of the appended records.
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sealed := int(r.Manifest().TotalRecords)
	if sealed == 0 || sealed > half {
		t.Fatalf("snapshot covers %d records, want a non-empty prefix of %d", sealed, half)
	}
	want := buildCatalog(days, recs[:sealed], nil)

	// Keep appending (and sealing) behind the snapshot's back while
	// replaying it from several goroutines; every replay must
	// reproduce the sealed-prefix catalog exactly.
	var wg sync.WaitGroup
	wg.Add(1)
	appendErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := half; i < len(recs); i++ {
			if err := w.Append(recs[i]); err != nil {
				appendErr <- err
				return
			}
		}
		appendErr <- nil
	}()
	const readers = 4
	results := make([]*ReplayStats, readers)
	errs := make([]error, readers)
	wg.Add(readers)
	for g := 0; g < readers; g++ {
		go func(g int) {
			defer wg.Done()
			cat, stats, err := r.Replay(Filter{}, 1+g%3)
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(want.Records, cat.Records) {
				errs[g] = errors.New("replay diverged from sealed-prefix catalog")
				return
			}
			results[g] = stats
		}(g)
	}
	wg.Wait()
	if err := <-appendErr; err != nil {
		t.Fatal(err)
	}
	for g, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", g, err)
		}
	}
	for g := 1; g < readers; g++ {
		if results[g].RecordsKept != results[0].RecordsKept {
			t.Fatalf("reader %d kept %d records, reader 0 kept %d",
				g, results[g].RecordsKept, results[0].RecordsKept)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// After the writer closes, a fresh Open sees everything.
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat, _, err := r2.Replay(Filter{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if full := buildCatalog(days, recs, nil); !reflect.DeepEqual(full.Records, cat.Records) {
		t.Fatal("post-close replay does not match the full feed")
	}
}

// TestOpenTornDuringLiveWriter pins Open's listing-before-manifest
// ordering: fresh Opens racing a live writer may see at most the one
// in-progress segment as torn, never a freshly sealed segment.
func TestOpenTornDuringLiveWriter(t *testing.T) {
	const days = 4
	recs := feedRecords(64, days)
	dir := t.TempDir()

	w, err := NewWriter(dir, testMeta(days), 16)
	if err != nil {
		t.Fatal(err)
	}
	// Seal the first segment so Open always finds a manifest.
	for i := 0; i < 16; i++ {
		if err := w.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	openErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				openErr <- nil
				return
			default:
			}
			r, err := Open(dir)
			if err != nil {
				openErr <- err
				return
			}
			if torn := r.Torn(); len(torn) > 1 {
				openErr <- errors.New("live store reported >1 torn segment: " + torn[0] + " " + torn[1])
				return
			}
		}
	}()
	for i := 16; i < len(recs); i++ {
		if err := w.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := <-openErr; err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if torn := r.Torn(); len(torn) != 0 {
		t.Fatalf("closed store reports torn segments: %v", torn)
	}
}

// TestOpenRejectsEscapingSegmentName pins the manifest hardening: a
// crafted manifest whose segment name points outside the store
// directory must fail Open with ErrCorrupt instead of reading the
// named path.
func TestOpenRejectsEscapingSegmentName(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 3, 64, feedRecords(8, 3))

	man := reloadManifest(t, dir)
	for _, evil := range []string{"../seg-000000.wrseg", "sub/seg-000000.wrseg", "MANIFEST.json", ""} {
		man.Segments[0].Name = evil
		rewriteManifest(t, dir, man)
		if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open with segment name %q: got %v, want ErrCorrupt", evil, err)
		}
	}
}
