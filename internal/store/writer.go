package store

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"whereroam/internal/cdrs"
	"whereroam/internal/mccmnc"
	"whereroam/internal/signaling"
)

// checkpointMinTail is the smallest log tail that triggers a manifest
// checkpoint. Combined with the tail ≥ covered-segments rule this
// makes checkpointing geometric (roughly every doubling of the
// store), so the amortized manifest cost per seal stays O(1) while
// Open never parses more than about half the store from the log.
const checkpointMinTail = 16

// SegmentWriter archives a record stream into a store directory:
// records append to the current segment through the plane's binary
// wire codec, segments seal with a Bloom filter and footer every
// SegmentRecords records, and each seal appends one entry to the
// manifest log — O(1) in segment count, with a geometric checkpoint
// snapshotting the index. All methods are safe for concurrent
// producers (appends serialize on an internal mutex, so each
// producer's record order is preserved — the per-device order
// contract replay rests on). Errors are sticky: the first I/O failure
// fails every later append and is returned by Close.
//
// [Writer] and [SignalingWriter] are its two instantiations; build
// them with [NewWriter] and [NewSignalingWriter].
type SegmentWriter[T any] struct {
	dir        string
	kind       string
	meta       Meta
	segRecords int
	newEnc     func(io.Writer) wireEncoder[T]
	info       func(*T) RecordInfo

	mu       sync.Mutex
	err      error
	closed   bool
	f        *os.File
	body     *crcCountWriter
	enc      wireEncoder[T]
	cur      SegmentInfo
	visited  []mccmnc.PLMN
	devs     map[uint64]struct{}
	logF     *os.File
	ckptSegs int
	man      Manifest
	met      *Metrics
}

// Writer archives a CDR/xDR record stream (the internal/cdrs wire
// codec) — the store kind [Reader.Replay] rebuilds devices-catalogs
// from.
type Writer = SegmentWriter[cdrs.Record]

// SignalingWriter archives a signaling-transaction stream (the
// internal/signaling wire codec).
type SignalingWriter = SegmentWriter[signaling.Transaction]

// NewWriter creates a CDR/xDR store at dir (created if absent; must
// not already hold a store) rolling segments every segmentRecords
// records (non-positive means [DefaultSegmentRecords]).
func NewWriter(dir string, meta Meta, segmentRecords int) (*Writer, error) {
	return newSegmentWriter(dir, KindCDR, meta, segmentRecords,
		func(w io.Writer) wireEncoder[cdrs.Record] { return cdrs.NewWriter(w) }, cdrInfo)
}

// NewSignalingWriter creates a signaling-transaction store at dir;
// same directory and segment-roll contract as [NewWriter].
func NewSignalingWriter(dir string, meta Meta, segmentRecords int) (*SignalingWriter, error) {
	return newSegmentWriter(dir, KindSignaling, meta, segmentRecords,
		func(w io.Writer) wireEncoder[signaling.Transaction] { return signaling.NewWriter(w) }, txInfo)
}

func newSegmentWriter[T any](dir, kind string, meta Meta, segmentRecords int,
	newEnc func(io.Writer) wireEncoder[T], info func(*T) RecordInfo) (*SegmentWriter[T], error) {
	if segmentRecords < 1 {
		segmentRecords = DefaultSegmentRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	if storeExists(dir) {
		return nil, fmt.Errorf("store: %s already holds a store manifest", dir)
	}
	w := &SegmentWriter[T]{
		dir:        dir,
		kind:       kind,
		meta:       meta,
		segRecords: segmentRecords,
		newEnc:     newEnc,
		info:       info,
		man: Manifest{
			Version:        manifestVersionV2,
			Kind:           kind,
			Start:          meta.Start,
			Days:           meta.Days,
			SegmentRecords: segmentRecords,
		},
	}
	if meta.Host != (mccmnc.PLMN{}) {
		w.man.Host = meta.Host.Concat()
	}
	logF, err := os.OpenFile(filepath.Join(dir, ManifestLogName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating manifest log: %w", err)
	}
	w.logF = logF
	// An empty store is still a store: write the initial checkpoint
	// up front so a feed that produces no records leaves a valid,
	// replayable (empty) archive rather than a bare directory. The
	// checkpoint's dir sync also makes the log file's entry durable.
	if err := w.checkpoint(); err != nil {
		logF.Close()
		return nil, err
	}
	return w, nil
}

// Append archives one record, sealing the current segment when it
// reaches the roll threshold. Safe for concurrent producers.
func (w *SegmentWriter[T]) Append(rec T) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		// Not sticky: a straggler producer offering after a clean Close
		// is the caller's bug to see, but it must not retroactively
		// mark a fully sealed, valid archive as failed through Err()
		// or a repeated Close().
		return ErrClosed
	}
	if w.f == nil {
		if err := w.openSegment(); err != nil {
			w.err = err
			return err
		}
	}
	if err := w.enc.Write(&rec); err != nil {
		w.err = err
		return err
	}
	inf := w.info(&rec)
	day := dayOf(inf.Time, w.meta.Start)
	if day < w.cur.MinDay {
		w.cur.MinDay = day
	}
	if day > w.cur.MaxDay {
		w.cur.MaxDay = day
	}
	if inf.Device < w.cur.MinDevice {
		w.cur.MinDevice = inf.Device
	}
	if inf.Device > w.cur.MaxDevice {
		w.cur.MaxDevice = inf.Device
	}
	w.devs[inf.Device] = struct{}{}
	w.noteVisited(inf.Visited)
	w.cur.Records++
	if w.cur.Records >= w.segRecords {
		if err := w.seal(); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// Sink adapts the writer to a probe tap / fanout sink: errors stick
// inside the writer and surface from [SegmentWriter.Err] and
// [SegmentWriter.Close].
func (w *SegmentWriter[T]) Sink() func(T) {
	return func(rec T) { _ = w.Append(rec) }
}

// Count returns how many records have been appended (sealed or not).
func (w *SegmentWriter[T]) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.man.TotalRecords + int64(w.cur.Records)
}

// Segments returns how many segments have been sealed.
func (w *SegmentWriter[T]) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.man.Segments)
}

// Err returns the writer's sticky error, if any.
func (w *SegmentWriter[T]) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Dir returns the store directory.
func (w *SegmentWriter[T]) Dir() string { return w.dir }

// Close seals the in-progress segment (if it holds records) and
// releases the writer. The manifest needs no final rewrite — every
// sealed segment is already durable in the log — so a closed and a
// crashed-after-seal store open identically. It returns the writer's
// first error. Idempotent.
func (w *SegmentWriter[T]) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		if w.f != nil {
			w.f.Close()
		}
		if w.logF != nil {
			w.logF.Close()
		}
		return w.err
	}
	if w.f != nil {
		if err := w.seal(); err != nil {
			w.err = err
		}
	}
	if w.logF != nil {
		if err := w.logF.Close(); err != nil && w.err == nil {
			w.err = fmt.Errorf("store: closing manifest log: %w", err)
		}
		w.logF = nil
	}
	return w.err
}

// openSegment starts a fresh segment file and resets the footer
// accumulators.
func (w *SegmentWriter[T]) openSegment() error {
	name := fmt.Sprintf("seg-%06d.wrseg", len(w.man.Segments))
	f, err := os.Create(filepath.Join(w.dir, name))
	if err != nil {
		return fmt.Errorf("store: creating segment %s: %w", name, err)
	}
	w.f = f
	w.body = &crcCountWriter{w: f}
	w.enc = w.newEnc(w.body)
	w.cur = SegmentInfo{
		Name:      name,
		MinDay:    math.MaxInt32,
		MaxDay:    math.MinInt32,
		MinDevice: math.MaxUint64,
	}
	w.visited = w.visited[:0]
	w.devs = make(map[uint64]struct{})
	return nil
}

// noteVisited indexes a record's visited network in the footer
// accumulator, flipping the overflow flag once the footer is full.
func (w *SegmentWriter[T]) noteVisited(p mccmnc.PLMN) {
	for _, v := range w.visited {
		if v == p {
			return
		}
	}
	if len(w.visited) >= maxFooterVisited {
		w.cur.VisitedOverflow = true
		return
	}
	w.visited = append(w.visited, p)
}

// seal flushes the codec stream, appends the segment's Bloom filter
// and footer, closes the segment file, appends the manifest-log entry
// and checkpoints when the log tail has grown enough. Every exit path
// leaves w.f nil so a later Close cannot double-close the descriptor.
func (w *SegmentWriter[T]) seal() error {
	sw := w.met.sealTimer()
	if err := w.enc.Flush(); err != nil {
		w.f.Close()
		w.f = nil
		return fmt.Errorf("store: flushing %s: %w", w.cur.Name, err)
	}
	w.cur.BodyBytes = w.body.n
	w.cur.BodyCRC = w.body.crc
	bloom := make([]byte, bloomSize(len(w.devs)))
	// Bloom construction ORs one bit set per device into the filter;
	// the result is independent of insertion order.
	//roamvet:maporder-ok bit-OR accumulation is commutative
	for dev := range w.devs {
		bloomAdd(bloom, bloomHashCount, dev)
	}
	w.cur.Bloom = bloom
	w.cur.BloomHashes = bloomHashCount
	w.cur.Bytes = w.body.n + int64(len(bloom)) + footerV2Size
	footer := encodeFooter(kindByte(w.kind), &w.cur, w.visited)
	if _, err := w.f.Write(bloom); err != nil {
		w.f.Close()
		w.f = nil
		return fmt.Errorf("store: writing %s bloom filter: %w", w.cur.Name, err)
	}
	if _, err := w.f.Write(footer[:]); err != nil {
		w.f.Close()
		w.f = nil
		return fmt.Errorf("store: writing %s footer: %w", w.cur.Name, err)
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		w.f = nil
		return fmt.Errorf("store: syncing %s: %w", w.cur.Name, err)
	}
	if err := w.f.Close(); err != nil {
		w.f = nil
		return fmt.Errorf("store: closing %s: %w", w.cur.Name, err)
	}
	// The segment's directory entry must be durable before the log
	// entry that references it, or a crash could persist the entry
	// but not the file.
	if err := syncDir(w.dir); err != nil {
		w.f = nil
		return fmt.Errorf("store: syncing %s: %w", w.dir, err)
	}
	w.cur.Visited = make([]string, len(w.visited))
	for i, p := range w.visited {
		w.cur.Visited[i] = p.Concat()
	}
	if err := appendLogEntry(w.logF, &w.cur); err != nil {
		w.f = nil
		return err
	}
	if err := w.logF.Sync(); err != nil {
		w.f = nil
		return fmt.Errorf("store: syncing manifest log: %w", err)
	}
	w.man.Segments = append(w.man.Segments, w.cur)
	w.man.TotalRecords += int64(w.cur.Records)
	sw.Stop()
	w.met.noteSeal(w.cur.Bytes, w.cur.Records)
	w.f, w.body, w.enc = nil, nil, nil
	w.cur = SegmentInfo{}
	w.devs = nil
	tail := len(w.man.Segments) - w.ckptSegs
	if tail >= checkpointMinTail && tail >= w.ckptSegs {
		return w.checkpoint()
	}
	return nil
}

// checkpoint snapshots the manifest into MANIFEST.ckpt, recording how
// many log entries (= sealed segments, one entry each) it covers.
func (w *SegmentWriter[T]) checkpoint() error {
	defer w.met.ckptTimer().Stop()
	man := w.man
	man.LogEntries = len(w.man.Segments)
	if err := writeCheckpoint(w.dir, &man); err != nil {
		return fmt.Errorf("store: writing checkpoint: %w", err)
	}
	w.ckptSegs = len(w.man.Segments)
	return nil
}
