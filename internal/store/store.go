// Package store implements the segmented, indexed, append-only
// archive the paper's "national feed archived once, analyzed many
// times" workflow needs (§2–3): a durable on-disk form of the CDR/xDR
// and signaling record streams that internal/ingest aggregates live.
//
// A store is a directory of fixed-record-count segment files plus a
// manifest. Each segment body is a standalone stream of the
// repository's binary wire codecs (internal/cdrs for CDRs/xDRs,
// internal/signaling for transactions), sealed by a fixed-size footer
// that records the segment's record count, event-day range, device-ID
// range, visited-network set, a device-hash Bloom filter and a CRC of
// the body. The manifest mirrors every sealed footer, so a reader can
// plan a replay — and prune whole segments against a day / device /
// visited predicate — without touching segment bodies. A crash
// mid-segment leaves a file the manifest does not cover ("torn");
// verification reports it and replay skips it, while every sealed
// segment stays readable.
//
// The manifest itself is an append-only log plus a checkpoint
// (manifest v2): each seal appends one CRC-framed [SegmentInfo] entry
// to MANIFEST.log and periodically snapshots the whole index into
// MANIFEST.ckpt, so seal cost is O(1) in segment count instead of the
// v1 full rewrite of MANIFEST.json. [Open] reads the checkpoint plus
// the log tail, tolerates a torn final log entry, and still reads v1
// (MANIFEST.json) stores.
//
// Writing is a [probe.Fanout] sink away from the live pipeline: point
// [SegmentWriter.Sink] at the same records a
// [whereroam/internal/ingest.CatalogIngester] is aggregating and the
// feed is persisted and ingested in one pass. Reading back, a
// [Reader] plans segment selection from a [Query] ([Reader.Plan]) and
// [Reader.Replay] rebuilds the CDR-plane devices-catalog from the
// archive concurrently — one builder per segment shard, merged in
// shard order — bit-identical to a live build at any worker count
// (docs/ARCHITECTURE.md derives the argument; the root
// determinism tests pin it). [Compact] merges N tap-order stores into
// one time-ordered store whose replay is bit-identical to replaying
// the inputs.
//
// # Snapshot invariant
//
// A [Reader] is a point-in-time snapshot: Open fixes the segment
// set from the manifest, sealed segments are immutable, and the
// manifest checkpoint is only ever replaced atomically while the log
// is append-only. A reader holding a Reader (or a catalog built from
// one) therefore observes a frozen store even while a [SegmentWriter]
// keeps appending to the same directory — concurrent seals become
// visible only to a later Open. The serving layer (internal/serve)
// leans on this: cached catalog slices never need locking against the
// archiver.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"whereroam/internal/cdrs"
	"whereroam/internal/mccmnc"
	"whereroam/internal/signaling"
)

// Store kinds: the record plane a store archives. A store holds
// exactly one kind; the manifest records it.
const (
	// KindCDR marks a store of CDR/xDR records (the internal/cdrs
	// wire codec) — the plane [Replayer.Replay] rebuilds catalogs
	// from.
	KindCDR = "cdr"
	// KindSignaling marks a store of signaling transactions (the
	// internal/signaling wire codec).
	KindSignaling = "signaling"
)

// DefaultSegmentRecords is the records-per-segment roll threshold
// used when a writer is configured with a non-positive value: large
// enough that footer and manifest overhead is noise, small enough
// that day- and device-range pruning has segments to skip.
const DefaultSegmentRecords = 8192

// ManifestName is the v1 store-level manifest file inside a store
// directory. v2 writers no longer produce it; Open falls back to it
// when no checkpoint is present so v1 stores stay readable.
const ManifestName = "MANIFEST.json"

// ManifestLogName is the v2 append-only manifest log: one CRC-framed
// SegmentInfo entry per sealed segment, appended (never rewritten) at
// each seal.
const ManifestLogName = "MANIFEST.log"

// ManifestCheckpointName is the v2 manifest checkpoint: an atomically
// replaced JSON snapshot of the manifest covering a prefix of the
// log, so Open parses the checkpoint plus only the log tail.
const ManifestCheckpointName = "MANIFEST.ckpt"

// Manifest schema versions. v1 is the full-rewrite MANIFEST.json; v2
// is the MANIFEST.log + MANIFEST.ckpt pair.
const (
	manifestVersionV1 = 1
	manifestVersionV2 = 2
)

// Store errors.
var (
	// ErrCorrupt marks a sealed segment whose body no longer matches
	// its footer/manifest: a CRC mismatch, a record-count mismatch, a
	// resized file, or an undecodable record.
	ErrCorrupt = errors.New("store: segment corrupt")
	// ErrClosed is returned by appends after Close.
	ErrClosed = errors.New("store: writer closed")
)

// Meta is the stream-level metadata a store carries for its readers:
// the observing host and the observation window the records belong
// to. Replay uses it to rebuild catalogs with the same window the
// live build used; the event-day index in segment footers is relative
// to Start.
type Meta struct {
	// Host is the observing MNO (zero for planes without a single
	// observer, e.g. a signaling store).
	Host mccmnc.PLMN
	// Start is the window start; segment day ranges count from it.
	Start time.Time
	// Days is the window length in days.
	Days int
}

// Manifest is the store-level index: one entry per sealed segment,
// mirroring that segment's footer, plus the stream metadata. In v2 it
// is materialized at Open from the checkpoint plus the log tail; each
// seal appends one log entry, so after a crash the manifest covers
// exactly the sealed prefix of the store (a torn final log entry is
// discarded and its segment file reported as torn). v1 stores carry
// the same structure as a full MANIFEST.json rewritten atomically at
// every seal.
type Manifest struct {
	// Version is the manifest schema version.
	Version int `json:"version"`
	// Kind is the store's record plane (KindCDR or KindSignaling).
	Kind string `json:"kind"`
	// Host is the observing MNO as a concatenated PLMN ("23410"), or
	// empty when the store has none.
	Host string `json:"host,omitempty"`
	// Start is the observation-window start.
	Start time.Time `json:"start"`
	// Days is the observation-window length.
	Days int `json:"days"`
	// SegmentRecords is the configured records-per-segment roll
	// threshold.
	SegmentRecords int `json:"segment_records"`
	// TotalRecords counts the records across all sealed segments.
	TotalRecords int64 `json:"total_records"`
	// LogEntries is, in a v2 checkpoint, the number of MANIFEST.log
	// entries the checkpoint covers: Open takes Segments as the
	// decoded state of that log prefix and appends only entries past
	// it. Zero in v1 manifests and in materialized manifests returned
	// by readers.
	LogEntries int `json:"log_entries,omitempty"`
	// Segments lists the sealed segments in write order.
	Segments []SegmentInfo `json:"segments"`
}

// Meta returns the manifest's stream metadata. The host is the zero
// PLMN when the manifest carries none or it fails to parse.
func (m *Manifest) Meta() Meta {
	meta := Meta{Start: m.Start, Days: m.Days}
	if m.Host != "" {
		if p, err := mccmnc.Parse(m.Host); err == nil {
			meta.Host = p
		}
	}
	return meta
}

// SegmentInfo is the manifest's (and footer's) index entry for one
// sealed segment: everything pruning needs without reading the body.
type SegmentInfo struct {
	// Name is the segment file name inside the store directory.
	Name string `json:"name"`
	// Records is the number of records in the segment.
	Records int `json:"records"`
	// Bytes is the full file size, body plus footer.
	Bytes int64 `json:"bytes"`
	// BodyBytes is the codec-stream length the CRC covers.
	BodyBytes int64 `json:"body_bytes"`
	// BodyCRC is the CRC-32C of the body bytes.
	BodyCRC uint32 `json:"body_crc"`
	// MinDay and MaxDay bound the records' event days relative to the
	// store's Start (the same truncation the catalog builder uses).
	MinDay int `json:"min_day"`
	// MaxDay is the inclusive upper event-day bound.
	MaxDay int `json:"max_day"`
	// MinDevice and MaxDevice bound the records' device-ID hashes.
	MinDevice uint64 `json:"min_device"`
	// MaxDevice is the inclusive upper device-hash bound.
	MaxDevice uint64 `json:"max_device"`
	// Visited lists the distinct visited networks seen in the
	// segment (concatenated PLMNs), complete only when
	// VisitedOverflow is false.
	Visited []string `json:"visited,omitempty"`
	// VisitedOverflow marks a segment with more distinct visited
	// networks than the footer indexes; visited-based pruning must
	// then keep the segment.
	VisitedOverflow bool `json:"visited_overflow,omitempty"`
	// Bloom is the segment's device-hash Bloom filter (power-of-two
	// length), mirrored from the bytes stored between the segment
	// body and the footer. Empty for v1 segments; planning then
	// falls back to the min/max device range alone.
	Bloom []byte `json:"bloom,omitempty"`
	// BloomHashes is the probe count (k) the filter was built with.
	BloomHashes int `json:"bloom_hashes,omitempty"`
}

// Segment footer binary layout (fixed size, appended after the codec
// stream; in v2, after the Bloom filter bytes that follow the codec
// stream):
//
//	offset  size  field
//	0       4     magic "WRSF"
//	4       1     footer version (1 or 2)
//	5       1     kind (0 = cdr, 1 = signaling)
//	6       4     record count (big endian)
//	10      4     min day (big endian, two's complement)
//	14      4     max day
//	18      8     min device hash
//	26      8     max device hash
//	34      4     CRC-32C of the body bytes
//	38      1     visited-network count (≤ maxFooterVisited)
//	39      1     visited overflow flag
//	40      80    16 × (MCC uint16, MNC uint16, MNC length byte)
//
// A v1 footer closes with a CRC-32C of bytes [0, 120) at offset 120
// (124 bytes total). A v2 footer extends the shared prefix with the
// Bloom-filter frame before its closing CRC:
//
//	120     4     Bloom filter length in bytes (0 = none)
//	124     1     Bloom probe count (k)
//	125     4     CRC-32C of the Bloom filter bytes
//	129     4     CRC-32C of footer bytes [0, 129)
//
// The Bloom filter itself is stored between the codec body and the
// footer, so a v2 segment file is BodyBytes + bloom length +
// footerV2Size bytes long.
const (
	footerMagic      = "WRSF"
	footerVersionV1  = 1
	footerVersionV2  = 2
	footerV1Size     = 124
	footerV2Size     = 133
	maxFooterVisited = 16
)

// footerTail carries the footer fields that are not part of
// SegmentInfo's index view: the store kind byte, the footer version,
// and the v2 Bloom frame the seal/verify paths cross-check against
// the on-disk filter bytes.
type footerTail struct {
	kind     byte
	version  int
	bloomLen uint32
	bloomK   byte
	bloomCRC uint32
}

// crcTable is the Castagnoli polynomial both body and footer CRCs
// use.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// kindByte maps a store kind to its footer encoding.
func kindByte(kind string) byte {
	if kind == KindSignaling {
		return 1
	}
	return 0
}

// dayOf maps an event time to its window day index with the same
// integer truncation the catalog builder's day() uses, so pruning and
// replay agree with the live build about which day a record belongs
// to.
func dayOf(t, start time.Time) int {
	return int(t.Sub(start) / (24 * time.Hour))
}

// encodeFooterPrefix renders the 120-byte field prefix shared by both
// footer versions into b.
func encodeFooterPrefix(b []byte, version, kind byte, si *SegmentInfo, visited []mccmnc.PLMN) {
	copy(b[0:4], footerMagic)
	b[4] = version
	b[5] = kind
	binary.BigEndian.PutUint32(b[6:10], uint32(si.Records))
	binary.BigEndian.PutUint32(b[10:14], uint32(int32(si.MinDay)))
	binary.BigEndian.PutUint32(b[14:18], uint32(int32(si.MaxDay)))
	binary.BigEndian.PutUint64(b[18:26], si.MinDevice)
	binary.BigEndian.PutUint64(b[26:34], si.MaxDevice)
	binary.BigEndian.PutUint32(b[34:38], si.BodyCRC)
	n := len(visited)
	if n > maxFooterVisited {
		n = maxFooterVisited
	}
	b[38] = byte(n)
	if si.VisitedOverflow {
		b[39] = 1
	}
	for i := 0; i < n; i++ {
		off := 40 + 5*i
		binary.BigEndian.PutUint16(b[off:off+2], visited[i].MCC)
		binary.BigEndian.PutUint16(b[off+2:off+4], visited[i].MNC)
		b[off+4] = visited[i].MNCLen
	}
}

// encodeFooter renders a segment's v2 footer. The Bloom frame is
// derived from si.Bloom/si.BloomHashes; the filter bytes themselves
// are written by the caller, before the footer.
func encodeFooter(kind byte, si *SegmentInfo, visited []mccmnc.PLMN) [footerV2Size]byte {
	var b [footerV2Size]byte
	encodeFooterPrefix(b[:], footerVersionV2, kind, si, visited)
	binary.BigEndian.PutUint32(b[120:124], uint32(len(si.Bloom)))
	b[124] = byte(si.BloomHashes)
	if len(si.Bloom) > 0 {
		binary.BigEndian.PutUint32(b[125:129], crc32.Checksum(si.Bloom, crcTable))
	}
	binary.BigEndian.PutUint32(b[129:133], crc32.Checksum(b[:129], crcTable))
	return b
}

// encodeFooterV1 renders a segment's v1 footer — kept for the v1
// read-compat round trip (tests write v1 stores with it).
func encodeFooterV1(kind byte, si *SegmentInfo, visited []mccmnc.PLMN) [footerV1Size]byte {
	var b [footerV1Size]byte
	encodeFooterPrefix(b[:], footerVersionV1, kind, si, visited)
	binary.BigEndian.PutUint32(b[120:124], crc32.Checksum(b[:120], crcTable))
	return b
}

// decodeFooter parses and validates a segment footer of either
// version, dispatching on length (124 bytes = v1, 133 = v2), and
// returns the index entry it encodes plus the non-index tail fields.
// Name, Bytes, BodyBytes and the Bloom filter bytes are the caller's
// to fill — the footer stores only the filter's length and CRC.
func decodeFooter(b []byte) (SegmentInfo, footerTail, error) {
	var si SegmentInfo
	var ft footerTail
	switch len(b) {
	case footerV1Size, footerV2Size:
	default:
		return si, ft, fmt.Errorf("%w: footer is %d bytes, want %d or %d", ErrCorrupt, len(b), footerV1Size, footerV2Size)
	}
	if string(b[0:4]) != footerMagic {
		return si, ft, fmt.Errorf("%w: bad footer magic", ErrCorrupt)
	}
	ft.version = int(b[4])
	switch {
	case len(b) == footerV1Size && ft.version == footerVersionV1:
		if crc32.Checksum(b[:120], crcTable) != binary.BigEndian.Uint32(b[120:124]) {
			return si, ft, fmt.Errorf("%w: footer checksum mismatch", ErrCorrupt)
		}
	case len(b) == footerV2Size && ft.version == footerVersionV2:
		if crc32.Checksum(b[:129], crcTable) != binary.BigEndian.Uint32(b[129:133]) {
			return si, ft, fmt.Errorf("%w: footer checksum mismatch", ErrCorrupt)
		}
		ft.bloomLen = binary.BigEndian.Uint32(b[120:124])
		ft.bloomK = b[124]
		ft.bloomCRC = binary.BigEndian.Uint32(b[125:129])
		if ft.bloomLen > bloomMaxBytes {
			return si, ft, fmt.Errorf("%w: footer names a %d-byte bloom filter", ErrCorrupt, ft.bloomLen)
		}
	default:
		return si, ft, fmt.Errorf("%w: unsupported footer version %d", ErrCorrupt, b[4])
	}
	ft.kind = b[5]
	si.Records = int(binary.BigEndian.Uint32(b[6:10]))
	si.MinDay = int(int32(binary.BigEndian.Uint32(b[10:14])))
	si.MaxDay = int(int32(binary.BigEndian.Uint32(b[14:18])))
	si.MinDevice = binary.BigEndian.Uint64(b[18:26])
	si.MaxDevice = binary.BigEndian.Uint64(b[26:34])
	si.BodyCRC = binary.BigEndian.Uint32(b[34:38])
	nVisited := int(b[38])
	if nVisited > maxFooterVisited {
		return si, ft, fmt.Errorf("%w: footer names %d visited networks", ErrCorrupt, nVisited)
	}
	si.VisitedOverflow = b[39] != 0
	for i := 0; i < nVisited; i++ {
		off := 40 + 5*i
		p := mccmnc.PLMN{
			MCC:    binary.BigEndian.Uint16(b[off : off+2]),
			MNC:    binary.BigEndian.Uint16(b[off+2 : off+4]),
			MNCLen: b[off+4],
		}
		si.Visited = append(si.Visited, p.Concat())
	}
	return si, ft, nil
}

// wireEncoder is the streaming-writer shape both binary codecs share
// (cdrs.Writer and signaling.Writer).
type wireEncoder[T any] interface {
	Write(*T) error
	Flush() error
}

// wireDecoder is the streaming-reader shape both binary codecs share.
type wireDecoder[T any] interface {
	Read(*T) error
}

// RecordInfo is the index-relevant view of one archived record: the
// fields segment footers summarize and pruning predicates match.
type RecordInfo struct {
	// Device is the record's device-ID hash.
	Device uint64
	// Time is the record's event time.
	Time time.Time
	// Visited is the network the record was generated on.
	Visited mccmnc.PLMN
}

// cdrInfo extracts the index fields of a CDR/xDR.
func cdrInfo(r *cdrs.Record) RecordInfo {
	return RecordInfo{Device: uint64(r.Device), Time: r.Time, Visited: r.Visited}
}

// txInfo extracts the index fields of a signaling transaction.
func txInfo(tx *signaling.Transaction) RecordInfo {
	return RecordInfo{Device: uint64(tx.Device), Time: tx.Time, Visited: tx.Visited}
}

// crcCountReader tracks the CRC-32C and length of everything read
// through it — the replay-side verification of a segment body.
type crcCountReader struct {
	r   io.Reader
	crc uint32
	n   int64
}

func (c *crcCountReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.crc = crc32.Update(c.crc, crcTable, p[:n])
		c.n += int64(n)
	}
	return n, err
}

// crcCountWriter tracks the CRC-32C and length of everything written
// through it — the seal-side footer fields.
type crcCountWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcCountWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if n > 0 {
		c.crc = crc32.Update(c.crc, crcTable, p[:n])
		c.n += int64(n)
	}
	return n, err
}
