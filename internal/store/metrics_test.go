package store

import (
	"strings"
	"testing"

	"whereroam/internal/cdrs"
	"whereroam/internal/identity"
	"whereroam/internal/obs"
)

// TestMetricsWriteAndReplay runs a store end to end with metrics
// attached and checks every counter against the ground truth the
// writer and ReplayStats already expose.
func TestMetricsWriteAndReplay(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(32, 0, nil)
	m := NewMetrics(reg, tracer)

	// 320 records at 16 per segment = 20 seals, enough to cross the
	// geometric checkpoint threshold after metrics attach (the
	// constructor's initial checkpoint predates Observe).
	recs := feedRecords(40, 4)
	w, err := NewWriter(dir, testMeta(4), 16)
	if err != nil {
		t.Fatal(err)
	}
	w.Observe(m)
	for i := range recs {
		if err := w.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sealed := int64(len(r.Manifest().Segments))
	if got := reg.Counter("store_segments_sealed_total", "").Value(); got != sealed {
		t.Errorf("segments sealed counter = %d, want %d", got, sealed)
	}
	if got := reg.Counter("store_records_written_total", "").Value(); got != int64(len(recs)) {
		t.Errorf("records written counter = %d, want %d", got, len(recs))
	}
	if reg.Counter("store_bytes_written_total", "").Value() <= 0 {
		t.Error("bytes written counter did not move")
	}
	if got := reg.Histogram("store_seal_seconds", "", nil).Count(); got != sealed {
		t.Errorf("seal histogram count = %d, want %d", got, sealed)
	}
	if reg.Histogram("store_checkpoint_seconds", "", nil).Count() == 0 {
		t.Error("checkpoint histogram never observed (20 seals must cross the geometric threshold)")
	}

	// An absent device inside the stored ID range: every segment the
	// range indexes admit must be pruned by the bloom filter (modulo
	// false positives), so the bloom counter is guaranteed to move.
	r.Observe(m)
	_, stats, err := r.Replay(Query{}.Device(identity.DeviceID(0x1001)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsPrunedBloom == 0 {
		t.Fatal("fixture too weak: absent-device query pruned nothing via bloom")
	}
	prunedRange := int64(stats.SegmentsPruned - stats.SegmentsPrunedBloom)
	if got := reg.Counter("store_segments_bloom_pruned_total", "").Value(); got != int64(stats.SegmentsPrunedBloom) {
		t.Errorf("bloom pruned counter = %d, want %d", got, stats.SegmentsPrunedBloom)
	}
	if got := reg.Counter("store_segments_range_pruned_total", "").Value(); got != prunedRange {
		t.Errorf("range pruned counter = %d, want %d", got, prunedRange)
	}
	selected := sealed - int64(stats.SegmentsPruned)
	if got := reg.Counter("store_segments_selected_total", "").Value(); got != selected {
		t.Errorf("selected counter = %d, want %d", got, selected)
	}
	if got := reg.Counter("store_bytes_read_total", "").Value(); got != stats.BytesRead {
		t.Errorf("bytes read counter = %d, want %d", got, stats.BytesRead)
	}
	if got := reg.Counter("store_records_read_total", "").Value(); got != stats.RecordsRead {
		t.Errorf("records read counter = %d, want %d", got, stats.RecordsRead)
	}

	// The sequential replay path notes reads through the same hooks.
	before := reg.Counter("store_records_read_total", "").Value()
	if _, err := r.ReplayRecords(Query{}, func(cdrs.Record) {}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("store_records_read_total", "").Value(); got != before+int64(len(recs)) {
		t.Errorf("sequential replay records counter = %d, want %d", got, before+int64(len(recs)))
	}
}

// TestCompactSpans checks the compaction tracer spans and that the
// output writer's seals land in the metrics.
func TestCompactSpans(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir+"/in", 3, 16, feedRecords(20, 3))
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(64, 0, nil)
	m := NewMetrics(reg, tracer)
	if _, err := Compact(dir+"/out", []string{dir + "/in"}, CompactOptions{SegmentRecords: 16, MaxFanIn: 2, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range tracer.Recent() {
		names[sp.Name] = true
	}
	for _, want := range []string{"compact", "compact_pass", "compact_run", "compact_final"} {
		if !names[want] {
			t.Errorf("missing span %q in %v", want, names)
		}
	}
	if reg.Counter("store_segments_sealed_total", "").Value() == 0 {
		t.Error("compaction output seals not counted")
	}
}

// TestNilMetricsInert pins the no-op contract: a nil *Metrics on
// every hook, and a store run with one attached, produce identical
// results.
func TestNilMetricsInert(t *testing.T) {
	var m *Metrics
	m.notePlan(1, 2, 3)
	m.noteRead(&ReplayStats{})
	m.noteSeal(1, 2)
	m.sealTimer().Stop()
	m.ckptTimer().Stop()
	m.span("x").Label("k", "v").Finish()
	if m.shardHist() != nil {
		t.Error("nil metrics shardHist must be nil")
	}
	if NewMetrics(nil, nil) != nil {
		t.Error("NewMetrics(nil, nil) must be nil (fully detached)")
	}
}

// TestMetricsExposition smoke-checks that the store series render in
// the exposition (the CI smoke job greps for the bloom series).
func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	NewMetrics(reg, nil)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "store_segments_bloom_pruned_total 0") {
		t.Errorf("exposition missing bloom series:\n%s", sb.String())
	}
}
