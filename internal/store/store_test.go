package store

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"whereroam/internal/apn"
	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/identity"
	"whereroam/internal/ingest"
	"whereroam/internal/mccmnc"
	"whereroam/internal/signaling"
)

var (
	testHost  = mccmnc.MustParse("23410")
	testHome  = mccmnc.MustParse("20404")
	testStart = time.Date(2019, 10, 1, 0, 0, 0, 0, time.UTC)
)

func testMeta(days int) Meta { return Meta{Host: testHost, Start: testStart, Days: days} }

// feedRecords synthesizes a deterministic time-ordered CDR feed: one
// data and one voice record per (device, day), devices cycling
// through a few visited networks.
func feedRecords(devices, days int) []cdrs.Record {
	a := apn.MustParse("smhp.centricaplc.com")
	visited := []mccmnc.PLMN{testHost, mccmnc.MustParse("26201")}
	var out []cdrs.Record
	for day := 0; day < days; day++ {
		base := testStart.Add(time.Duration(day) * 24 * time.Hour)
		for d := 0; d < devices; d++ {
			dev := identity.DeviceID(0x1000 + uint64(d)*17)
			v := visited[d%len(visited)]
			out = append(out, cdrs.Record{
				Device: dev, Time: base.Add(time.Duration(d) * time.Second),
				SIM: testHome, Visited: v, Kind: cdrs.KindData, RAT: 1,
				Duration: 45 * time.Second, Bytes: uint64(100 + d), APN: a,
			})
			out = append(out, cdrs.Record{
				Device: dev, Time: base.Add(time.Duration(d)*time.Second + 12*time.Hour),
				SIM: testHome, Visited: v, Kind: cdrs.KindVoice, RAT: 1,
				Duration: time.Duration(10+d%50) * time.Second,
			})
		}
	}
	return out
}

// writeStore archives recs into a fresh store under dir.
func writeStore(t *testing.T, dir string, days, segRecords int, recs []cdrs.Record) {
	t.Helper()
	w, err := NewWriter(dir, testMeta(days), segRecords)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// reloadManifest materializes a store's manifest off disk for
// tamper-style tests.
func reloadManifest(t *testing.T, dir string) Manifest {
	t.Helper()
	man, _, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	return man
}

// rewriteManifest publishes man as a v2 checkpoint covering the whole
// MANIFEST.log, so a following Open materializes exactly man — the
// tamper hook for tests that lie in the manifest index.
func rewriteManifest(t *testing.T, dir string, man Manifest) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, ManifestLogName))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		t.Fatal(err)
	}
	entries, _ := decodeLogEntries(raw)
	man.Version = manifestVersionV2
	man.LogEntries = len(entries)
	if err := writeCheckpoint(dir, &man); err != nil {
		t.Fatal(err)
	}
}

// buildCatalog aggregates records serially — the live-build reference
// replay must match bit for bit.
func buildCatalog(days int, recs []cdrs.Record, keep func(*cdrs.Record) bool) *catalog.Catalog {
	b := catalog.NewBuilder(testHost, testStart, days, nil)
	for i := range recs {
		if keep == nil || keep(&recs[i]) {
			b.AddRecord(recs[i])
		}
	}
	return b.Build()
}

func TestWriteReplayRoundTrip(t *testing.T) {
	const days = 6
	recs := feedRecords(40, days)
	dir := t.TempDir()
	writeStore(t, dir, days, 64, recs)

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man := r.Manifest()
	if man.Kind != KindCDR || man.TotalRecords != int64(len(recs)) {
		t.Fatalf("manifest kind=%q total=%d, want cdr/%d", man.Kind, man.TotalRecords, len(recs))
	}
	if len(man.Segments) < 3 {
		t.Fatalf("expected several segments, got %d", len(man.Segments))
	}
	if rep := r.Verify(); !rep.OK() {
		t.Fatalf("fresh store fails verification:\n%s", rep)
	}

	// Sequential replay reproduces the archived stream byte for byte.
	var got []cdrs.Record
	stats, err := r.ReplayRecords(Filter{}, func(rec cdrs.Record) { got = append(got, rec) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatal("sequential replay differs from the archived feed")
	}
	if stats.RecordsRead != int64(len(recs)) || stats.RecordsKept != stats.RecordsRead {
		t.Fatalf("stats read/kept = %d/%d, want %d", stats.RecordsRead, stats.RecordsKept, len(recs))
	}
	if stats.SegmentsPruned != 0 || stats.SegmentsRead != len(man.Segments) {
		t.Fatalf("unfiltered replay pruned %d / read %d of %d segments",
			stats.SegmentsPruned, stats.SegmentsRead, len(man.Segments))
	}

	// Catalog replay matches a serial live build at every worker count.
	live := buildCatalog(days, recs, nil)
	for _, workers := range []int{1, 3, 0} {
		cat, _, err := r.Replay(Filter{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live.Records, cat.Records) {
			t.Fatalf("workers=%d: replayed catalog differs from the live build", workers)
		}
		if cat.Host != testHost || cat.Days != days {
			t.Fatalf("workers=%d: replayed catalog window %v/%d", workers, cat.Host, cat.Days)
		}
	}

	// The ingester bridge builds the same catalog.
	sb := catalog.NewShardedBuilder(testHost, testStart, days, nil, 4)
	in := ingest.NewCatalogIngester(sb, 0)
	if _, err := r.ReplayInto(Filter{}, in); err != nil {
		t.Fatal(err)
	}
	if cat := in.Build(2); !reflect.DeepEqual(live.Records, cat.Records) {
		t.Fatal("ReplayInto catalog differs from the live build")
	}
}

// A time-ordered feed gives day-correlated segments, so a day filter
// must skip whole segments — reading provably fewer bytes — while
// producing exactly the day-sliced catalog.
func TestPrunedReplayDayRange(t *testing.T) {
	const days = 8
	recs := feedRecords(30, days)
	dir := t.TempDir()
	writeStore(t, dir, days, 50, recs)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	_, full, err := r.Replay(Filter{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := Filter{}.Days(3, 4)
	cat, pruned, err := r.Replay(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.SegmentsPruned == 0 {
		t.Fatal("day filter over a time-ordered archive pruned no segments")
	}
	if pruned.BytesRead >= full.BytesRead {
		t.Fatalf("pruned replay read %d bytes, full read %d", pruned.BytesRead, full.BytesRead)
	}
	want := buildCatalog(days, recs, func(rec *cdrs.Record) bool {
		day := int(rec.Time.Sub(testStart) / (24 * time.Hour))
		return day >= 3 && day <= 4
	})
	if !reflect.DeepEqual(want.Records, cat.Records) {
		t.Fatal("day-pruned replay differs from the day-sliced live build")
	}
}

// A device-clustered feed prunes on the device-hash index the same
// way.
func TestPrunedReplayDeviceRange(t *testing.T) {
	const days = 3
	var recs []cdrs.Record
	for d := 0; d < 60; d++ {
		dev := identity.DeviceID(uint64(d) << 32)
		for day := 0; day < days; day++ {
			recs = append(recs, cdrs.Record{
				Device: dev, Time: testStart.Add(time.Duration(day)*24*time.Hour + time.Duration(d)*time.Minute),
				SIM: testHome, Visited: testHost, Kind: cdrs.KindData, RAT: 1,
				Duration: 30 * time.Second, Bytes: 64,
			})
		}
	}
	// Cluster by device so segment device ranges are narrow.
	dir := t.TempDir()
	writeStore(t, dir, days, 9, recs)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := identity.DeviceID(uint64(10)<<32), identity.DeviceID(uint64(20)<<32)
	cat, stats, err := r.Replay(Filter{}.Devices(lo, hi), 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsPruned == 0 {
		t.Fatal("device filter over a device-clustered archive pruned no segments")
	}
	want := buildCatalog(days, recs, func(rec *cdrs.Record) bool {
		return rec.Device >= lo && rec.Device <= hi
	})
	if !reflect.DeepEqual(want.Records, cat.Records) {
		t.Fatal("device-pruned replay differs from the device-sliced live build")
	}
}

// Visited-network pruning skips segments whose complete footer set
// lacks the host.
func TestPrunedReplayVisitedHost(t *testing.T) {
	const days = 2
	other := mccmnc.MustParse("26201")
	var recs []cdrs.Record
	for d := 0; d < 40; d++ {
		v := testHost
		if d >= 20 {
			v = other
		}
		recs = append(recs, cdrs.Record{
			Device: identity.DeviceID(100 + uint64(d)), Time: testStart.Add(time.Duration(d) * time.Minute),
			SIM: testHome, Visited: v, Kind: cdrs.KindData, RAT: 1,
			Duration: 30 * time.Second, Bytes: 1,
		})
	}
	dir := t.TempDir()
	writeStore(t, dir, days, 10, recs)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat, stats, err := r.Replay(Filter{}.VisitedHost(other), 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsPruned == 0 {
		t.Fatal("visited filter pruned no segments")
	}
	want := buildCatalog(days, recs, func(rec *cdrs.Record) bool { return rec.Visited == other })
	if !reflect.DeepEqual(want.Records, cat.Records) {
		t.Fatal("visited-pruned replay differs from the sliced live build")
	}
}

// A crash mid-write leaves a segment file the manifest never sealed:
// verification must report it torn and replay must skip it with a
// report while every sealed segment still replays.
func TestTornFinalSegment(t *testing.T) {
	const days = 4
	recs := feedRecords(20, days)
	dir := t.TempDir()
	writeStore(t, dir, days, 32, recs)

	// Simulate the crash: a partial next segment, never sealed.
	torn := filepath.Join(dir, "seg-999999.wrseg")
	if err := os.WriteFile(torn, []byte("WRDR\x01\x00partial-record-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Torn(); len(got) != 1 || got[0] != "seg-999999.wrseg" {
		t.Fatalf("torn = %v, want the unsealed segment", got)
	}
	rep := r.Verify()
	if rep.OK() || len(rep.Torn) != 1 || len(rep.Corrupt) != 0 {
		t.Fatalf("verify should report exactly the torn file:\n%s", rep)
	}

	cat, stats, err := r.Replay(Filter{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsTorn != 1 {
		t.Fatalf("replay reported %d torn segments, want 1", stats.SegmentsTorn)
	}
	live := buildCatalog(days, recs, nil)
	if !reflect.DeepEqual(live.Records, cat.Records) {
		t.Fatal("replay over a store with a torn tail lost sealed records")
	}
}

// A bit flip in a sealed segment body must fail that segment's CRC:
// verification pins the segment and replay refuses the store.
func TestBitFlipFailsCRC(t *testing.T) {
	const days = 3
	recs := feedRecords(15, days)
	dir := t.TempDir()
	writeStore(t, dir, days, 24, recs)

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := r.Manifest().Segments[1]
	path := filepath.Join(dir, victim.Name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[victim.BodyBytes/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep := r.Verify()
	if rep.OK() || len(rep.Corrupt) != 1 || rep.Corrupt[0].Name != victim.Name {
		t.Fatalf("verify should pin the flipped segment:\n%s", rep)
	}
	if _, _, err := r.Replay(Filter{}, 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay of a corrupt store returned %v, want ErrCorrupt", err)
	}
	// Pruning the corrupt segment away replays the rest cleanly.
	f := Filter{}.Days(0, victim.MinDay-1)
	if _, _, err := r.Replay(f, 1); err != nil {
		t.Fatalf("replay pruned past the corrupt segment still failed: %v", err)
	}
}

// An empty store (a feed that produced nothing) replays to an empty
// catalog, not an error.
func TestEmptyStore(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, testMeta(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep := r.Verify(); !rep.OK() || rep.Segments != 0 {
		t.Fatalf("empty store verification:\n%s", rep)
	}
	cat, stats, err := r.Replay(Filter{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Records) != 0 || stats.RecordsRead != 0 {
		t.Fatalf("empty store replayed %d records / %d catalog rows", stats.RecordsRead, len(cat.Records))
	}
	if cat.Host != testHost || cat.Days != 5 {
		t.Fatalf("empty replayed catalog window %v/%d", cat.Host, cat.Days)
	}
}

// A writer refuses to open over an existing store rather than
// clobbering it.
func TestWriterRefusesExistingStore(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 2, 0, feedRecords(2, 2))
	if _, err := NewWriter(dir, testMeta(2), 0); err == nil {
		t.Fatal("NewWriter over an existing store did not fail")
	}
}

// Concurrent producers (the shape of the emission-shard fanout tap)
// must archive every record exactly once, and the replayed catalog
// must match a serial build — per-producer order is per-device order.
func TestConcurrentAppendsReplayDeterministic(t *testing.T) {
	const days = 4
	perDev := feedRecords(24, days)
	// Partition the feed by device: one producer per device group.
	byDev := map[identity.DeviceID][]cdrs.Record{}
	for _, rec := range perDev {
		byDev[rec.Device] = append(byDev[rec.Device], rec)
	}
	dir := t.TempDir()
	w, err := NewWriter(dir, testMeta(days), 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, seq := range byDev {
		wg.Add(1)
		go func(seq []cdrs.Record) {
			defer wg.Done()
			for i := range seq {
				if err := w.Append(seq[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(seq)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	live := buildCatalog(days, perDev, nil)
	for _, workers := range []int{1, 4} {
		cat, _, err := r.Replay(Filter{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live.Records, cat.Records) {
			t.Fatalf("workers=%d: concurrently archived feed replays differently from the live build", workers)
		}
	}
}

// The signaling plane shares the archive/replay path: a transaction
// stream round-trips bit for bit through a signaling store.
func TestSignalingStoreRoundTrip(t *testing.T) {
	var txs []signaling.Transaction
	for i := 0; i < 300; i++ {
		txs = append(txs, signaling.Transaction{
			Device:    identity.DeviceID(10 + i%40),
			Time:      testStart.Add(time.Duration(i) * time.Minute),
			SIM:       testHome,
			Visited:   testHost,
			Procedure: signaling.ProcUpdateLocation,
			Result:    signaling.ResultOK,
			RAT:       1,
		})
	}
	dir := t.TempDir()
	w, err := NewSignalingWriter(dir, Meta{Start: testStart, Days: 2}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range txs {
		if err := w.Append(txs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Manifest().Kind != KindSignaling {
		t.Fatalf("manifest kind %q", r.Manifest().Kind)
	}
	if rep := r.Verify(); !rep.OK() {
		t.Fatalf("signaling store verification:\n%s", rep)
	}
	var got []signaling.Transaction
	if _, err := r.ReplayTransactions(Filter{}, func(tx signaling.Transaction) { got = append(got, tx) }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(txs, got) {
		t.Fatal("signaling replay differs from the archived stream")
	}
	// Cross-plane misuse errors instead of misdecoding.
	if _, _, err := r.Replay(Filter{}, 1); err == nil {
		t.Fatal("catalog replay of a signaling store did not fail")
	}
	if _, err := r.ReplayRecords(Filter{}, func(cdrs.Record) {}); err == nil {
		t.Fatal("CDR replay of a signaling store did not fail")
	}
}

// A straggler producer offering after a clean Close gets ErrClosed
// but must not retroactively poison the writer: Err() stays nil and a
// repeated Close still reports success for the sealed archive.
func TestAppendAfterCloseDoesNotPoison(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, testMeta(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	recs := feedRecords(3, 2)
	for i := range recs {
		if err := w.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close returned %v, want ErrClosed", err)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("straggler append poisoned the writer: Err() = %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("repeated close after straggler append returned %v", err)
	}
	if r, err := Open(dir); err != nil {
		t.Fatal(err)
	} else if rep := r.Verify(); !rep.OK() {
		t.Fatalf("archive no longer verifies:\n%s", rep)
	}
}

// Verification must cross-check every index field pruning trusts: a
// manifest whose visited set was tampered with (while body and CRC
// stay intact) must fail verify, not silently mis-prune later.
func TestVerifyCatchesManifestIndexTamper(t *testing.T) {
	const days = 2
	recs := feedRecords(10, days)
	dir := t.TempDir()
	writeStore(t, dir, days, 8, recs)

	man := reloadManifest(t, dir)
	man.Segments[0].Visited = man.Segments[0].Visited[:1]
	rewriteManifest(t, dir, man)

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Verify()
	if rep.OK() || len(rep.Corrupt) == 0 || rep.Corrupt[0].Name != man.Segments[0].Name {
		t.Fatalf("tampered manifest visited set passed verification:\n%s", rep)
	}
}

// Records outside the store's declared day window never reach the
// catalog builder; the stats must say so instead of counting them
// kept.
func TestReplayCountsOutOfWindowRecords(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, testMeta(2), 8) // window: days 0..1
	if err != nil {
		t.Fatal(err)
	}
	recs := feedRecords(4, 4) // emits days 0..3
	for i := range recs {
		if err := w.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat, stats, err := r.Replay(Filter{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecordsOutsideWindow != int64(len(recs))/2 {
		t.Fatalf("RecordsOutsideWindow = %d, want %d", stats.RecordsOutsideWindow, len(recs)/2)
	}
	if stats.RecordsKept != int64(len(recs))/2 {
		t.Fatalf("RecordsKept = %d, want %d", stats.RecordsKept, len(recs)/2)
	}
	want := buildCatalog(2, recs, nil)
	if !reflect.DeepEqual(want.Records, cat.Records) {
		t.Fatal("windowed replay differs from the windowed live build")
	}
}
