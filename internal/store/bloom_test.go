package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"whereroam/internal/identity"
)

// Per-segment device filters promise no false negatives — a present
// device always tests positive — and a bounded false-positive rate at
// the sized 10 bits/device budget. Both halves of that promise are
// what makes bloom pruning a pure optimization.
func TestBloomFalsePositiveOnly(t *testing.T) {
	for _, n := range []int{1, 7, 100, 5000} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(n)))
			bits := make([]byte, bloomSize(n))
			present := make(map[uint64]struct{}, n)
			for len(present) < n {
				present[rng.Uint64()] = struct{}{}
			}
			for h := range present {
				bloomAdd(bits, bloomHashCount, h)
			}
			for h := range present {
				if !bloomMaybe(bits, bloomHashCount, h) {
					t.Fatalf("false negative for %#x", h)
				}
			}
			const trials = 20000
			fp := 0
			for i := 0; i < trials; i++ {
				h := rng.Uint64()
				if _, ok := present[h]; ok {
					continue
				}
				if bloomMaybe(bits, bloomHashCount, h) {
					fp++
				}
			}
			// 10 bits/device with 4 hashes gives ~1.2% theoretical FP;
			// 5% leaves slack for the power-of-two floor and rounding.
			// The minimum-size floor (64B) makes tiny filters far
			// sparser than sized, so the bound holds there too.
			if rate := float64(fp) / trials; rate > 0.05 {
				t.Fatalf("false-positive rate %.3f exceeds 5%%", rate)
			}
		})
	}
}

// Degenerate filters must answer "maybe" — never pruning what they
// cannot rule out.
func TestBloomDegenerateIsMaybe(t *testing.T) {
	if !bloomMaybe(nil, bloomHashCount, 42) {
		t.Fatal("nil filter pruned")
	}
	if !bloomMaybe([]byte{}, bloomHashCount, 42) {
		t.Fatal("empty filter pruned")
	}
	if !bloomMaybe(make([]byte, 64), 0, 42) {
		t.Fatal("k=0 filter pruned")
	}
	if !bloomMaybe(make([]byte, 65), bloomHashCount, 42) {
		t.Fatal("non-power-of-two filter pruned")
	}
}

// Store-level property test: for any device — present or absent —
// a bloom-pruned replay equals the same replay with bloom pruning
// disabled; the filters only ever skip segments that truly lack the
// device. Run against a compacted multi-site store so segments hold
// disjoint device subsets and pruning actually bites.
func TestBloomPruningIsFalsePositiveOnly(t *testing.T) {
	const (
		devices = 60
		days    = 4
	)
	root := t.TempDir()
	feeds := siteFeeds(t, 7, devices, days, 3)
	dirs := writeSiteStores(t, root, days, 16, feeds)
	out := filepath.Join(root, "compacted")
	if _, err := Compact(out, dirs, CompactOptions{SegmentRecords: 16}); err != nil {
		t.Fatal(err)
	}
	r, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}

	var present []identity.DeviceID
	seen := make(map[identity.DeviceID]struct{})
	for _, feed := range feeds {
		for i := range feed {
			if _, ok := seen[feed[i].Device]; !ok {
				seen[feed[i].Device] = struct{}{}
				present = append(present, feed[i].Device)
			}
		}
	}
	rng := rand.New(rand.NewSource(99))
	absent := make([]identity.DeviceID, 0, 20)
	for len(absent) < 20 {
		d := identity.DeviceID(rng.Uint64())
		if _, ok := seen[d]; !ok {
			absent = append(absent, d)
		}
	}

	prunedSomething := false
	for _, dev := range append(append([]identity.DeviceID(nil), present...), absent...) {
		q := Query{}.Device(dev)
		withBloom, bStats, err := r.Replay(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		without, wStats, err := r.Replay(q.WithoutBloom(), 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(withBloom, without) {
			t.Fatalf("device %#x: bloom pruning changed the replay", uint64(dev))
		}
		if wStats.SegmentsPrunedBloom != 0 {
			t.Fatal("WithoutBloom still pruned via bloom")
		}
		if bStats.SegmentsPrunedBloom > 0 {
			prunedSomething = true
		}
		if plan := r.Plan(q); plan.PrunedBloom != int(bStats.SegmentsPrunedBloom) {
			t.Fatalf("device %#x: plan says %d bloom-pruned, replay says %d",
				uint64(dev), plan.PrunedBloom, bStats.SegmentsPrunedBloom)
		}
	}
	if !prunedSomething {
		t.Fatal("bloom pruning never fired across 80 device queries — fixture too weak")
	}
}

// Range device queries never consult the bloom (a range cannot be
// tested against a per-device filter) and exact queries via
// Devices(d, d) do.
func TestBloomOnlyForExactDevice(t *testing.T) {
	const days = 3
	root := t.TempDir()
	feeds := siteFeeds(t, 5, 30, days, 2)
	dirs := writeSiteStores(t, root, days, 16, feeds)
	out := filepath.Join(root, "compacted")
	if _, err := Compact(out, dirs, CompactOptions{SegmentRecords: 16}); err != nil {
		t.Fatal(err)
	}
	r, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	d := identity.DeviceID(rng.Uint64()) // absent with overwhelming probability
	if plan := r.Plan(Query{}.Devices(d, d)); plan.PrunedBloom == 0 {
		t.Fatal("exact Devices(d, d) query did not consult the bloom")
	}
	if plan := r.Plan(Query{}.Devices(d, d+1)); plan.PrunedBloom != 0 {
		t.Fatal("range device query consulted the bloom")
	}
}
