package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/identity"
	"whereroam/internal/ingest"
	"whereroam/internal/mccmnc"
	"whereroam/internal/pipeline"
	"whereroam/internal/signaling"
)

// Filter is a replay predicate: the zero Filter keeps everything, and
// the chainable constructors narrow it by event-day range, device-ID
// range or visited network. Filters prune at two levels — whole
// segments are skipped without reading when their footer index proves
// no record can match, and surviving segments are filtered record by
// record.
type Filter struct {
	hasDays    bool
	dayLo      int
	dayHi      int
	hasDevs    bool
	devLo      uint64
	devHi      uint64
	hasVisited bool
	visited    mccmnc.PLMN
}

// Days narrows the filter to records whose event day (relative to the
// store's Start) lies in [lo, hi].
func (f Filter) Days(lo, hi int) Filter {
	f.hasDays, f.dayLo, f.dayHi = true, lo, hi
	return f
}

// Devices narrows the filter to records whose device-ID hash lies in
// [lo, hi].
func (f Filter) Devices(lo, hi identity.DeviceID) Filter {
	f.hasDevs, f.devLo, f.devHi = true, uint64(lo), uint64(hi)
	return f
}

// VisitedHost narrows the filter to records generated on the given
// visited network.
func (f Filter) VisitedHost(p mccmnc.PLMN) Filter {
	f.hasVisited, f.visited = true, p
	return f
}

// keepSegment reports whether the segment's footer index admits any
// matching record; a false verdict skips the segment unread.
func (f Filter) keepSegment(si *SegmentInfo) bool {
	if si.Records == 0 {
		return false
	}
	if f.hasDays && (si.MinDay > f.dayHi || si.MaxDay < f.dayLo) {
		return false
	}
	if f.hasDevs && (si.MinDevice > f.devHi || si.MaxDevice < f.devLo) {
		return false
	}
	if f.hasVisited && !si.VisitedOverflow {
		found := false
		want := f.visited.Concat()
		for _, v := range si.Visited {
			if v == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// keepRecord reports whether one record matches the filter; day is
// the record's event day relative to the store's Start.
func (f Filter) keepRecord(day int, inf RecordInfo) bool {
	if f.hasDays && (day < f.dayLo || day > f.dayHi) {
		return false
	}
	if f.hasDevs && (inf.Device < f.devLo || inf.Device > f.devHi) {
		return false
	}
	if f.hasVisited && inf.Visited != f.visited {
		return false
	}
	return true
}

// ReplayStats instruments one replay: how much of the store was
// actually read versus pruned away, and how many records survived the
// filter. BytesRead counts segment-body bytes only — pruned segments
// contribute nothing, which is what the pruning benchmarks and the
// acceptance tests assert on.
type ReplayStats struct {
	// SegmentsTotal is the number of sealed segments in the store.
	SegmentsTotal int
	// SegmentsRead counts segments whose bodies were decoded.
	SegmentsRead int
	// SegmentsPruned counts segments skipped by the footer index
	// without reading.
	SegmentsPruned int
	// SegmentsTorn counts unsealed segment files skipped with a
	// report (a crash mid-write leaves at most one).
	SegmentsTorn int
	// BytesRead totals the body bytes decoded.
	BytesRead int64
	// RecordsRead counts records decoded from the read segments.
	RecordsRead int64
	// RecordsKept counts records that survived the record-level
	// filter (for a catalog replay: and the store's declared day
	// window — kept means it reached the catalog builder).
	RecordsKept int64
	// RecordsOutsideWindow counts records whose event day falls
	// outside the store's declared [0, Days) window during a catalog
	// replay; the builder would silently drop them, so they are
	// surfaced here instead of inflating RecordsKept. Always zero for
	// the sequential replays, which deliver every matching record to
	// the caller regardless of the window.
	RecordsOutsideWindow int64
}

// add folds another stats block into s.
func (s *ReplayStats) add(o ReplayStats) {
	s.SegmentsRead += o.SegmentsRead
	s.BytesRead += o.BytesRead
	s.RecordsRead += o.RecordsRead
	s.RecordsKept += o.RecordsKept
	s.RecordsOutsideWindow += o.RecordsOutsideWindow
}

// Replayer reads a store back: it loads the manifest once, reports
// torn (unsealed) segment files, and replays sealed segments with
// index-driven pruning — concurrently into a catalog build
// ([Replayer.Replay]) or sequentially into a caller sink.
//
// A Replayer is an immutable snapshot of the store at Open time: it
// replays exactly the segments its manifest lists, and sealed
// segments are never rewritten, so replaying while a SegmentWriter
// keeps appending to the same directory is safe and bit-identical to
// replaying a quiescent store — later seals are simply invisible
// until the store is re-Opened. The one file a live writer does
// rewrite, MANIFEST.json, is replaced atomically and read only at
// Open.
type Replayer struct {
	dir  string
	man  Manifest
	torn []string
}

// Open loads the store manifest at dir and scans the directory for
// torn segment files (present on disk but not covered by the
// manifest — the residue of a crash mid-write). Torn files are
// reported, never read.
//
// The directory is listed before the manifest is read: a segment
// sealed between the two steps is then present in the manifest but
// absent from the listing (harmless), never the reverse, so a healthy
// store with a live writer reports at most its single in-progress
// segment as torn. Listing after reading would race the other way and
// misreport freshly sealed segments.
func Open(dir string) (*Replayer, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	}
	r := &Replayer{dir: dir}
	if err := json.Unmarshal(data, &r.man); err != nil {
		return nil, fmt.Errorf("store: parsing manifest: %w", err)
	}
	if r.man.Version != manifestVersion {
		return nil, fmt.Errorf("store: unsupported manifest version %d", r.man.Version)
	}
	sealed := make(map[string]bool, len(r.man.Segments))
	for i := range r.man.Segments {
		name := r.man.Segments[i].Name
		// Segment names come from an on-disk JSON file; confine them to
		// plain seg-*.wrseg entries inside the store directory so a
		// crafted manifest cannot read arbitrary paths.
		if name != filepath.Base(name) || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wrseg") {
			return nil, fmt.Errorf("store: %w: manifest segment name %q", ErrCorrupt, name)
		}
		sealed[name] = true
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wrseg") && !sealed[name] {
			r.torn = append(r.torn, name)
		}
	}
	sort.Strings(r.torn)
	return r, nil
}

// Manifest returns the store's manifest. Callers must treat it as
// read-only.
func (r *Replayer) Manifest() *Manifest { return &r.man }

// Torn lists the unsealed segment files found at Open time.
func (r *Replayer) Torn() []string { return r.torn }

// Dir returns the store directory.
func (r *Replayer) Dir() string { return r.dir }

// baseStats pre-fills the store-wide counters of a replay.
func (r *Replayer) baseStats() ReplayStats {
	return ReplayStats{SegmentsTotal: len(r.man.Segments), SegmentsTorn: len(r.torn)}
}

// selectSegments applies the segment-level filter, returning the
// indices of segments to read (in store order) and counting the
// pruned remainder.
func (r *Replayer) selectSegments(f Filter, stats *ReplayStats) []int {
	var selected []int
	for i := range r.man.Segments {
		if f.keepSegment(&r.man.Segments[i]) {
			selected = append(selected, i)
		} else {
			stats.SegmentsPruned++
		}
	}
	return selected
}

// Replay rebuilds the CDR-plane devices-catalog from the store on
// workers goroutines (the usual convention: below one means one per
// CPU). Segments prune against the filter's footer index without
// being read; surviving segments decode concurrently — one shard of
// contiguous segments per worker callback, each into its own
// shard-local catalog builder — and the shard builders fold in shard
// order. Shard boundaries depend only on the selected-segment count
// and every per-(device, day) aggregate combines associatively, so
// the catalog is bit-identical at any worker count to a serial build
// over the same records (and to the live build the archive was tapped
// from). Torn segments are skipped and counted; a corrupt sealed
// segment (CRC, length or record-count mismatch) aborts with
// ErrCorrupt.
func (r *Replayer) Replay(f Filter, workers int) (*catalog.Catalog, *ReplayStats, error) {
	if r.man.Kind != KindCDR {
		return nil, nil, fmt.Errorf("store: cannot build a catalog from a %q store", r.man.Kind)
	}
	meta := r.man.Meta()
	stats := r.baseStats()
	selected := r.selectSegments(f, &stats)

	type part struct {
		b     *catalog.Builder
		stats ReplayStats
		err   error
	}
	parts := pipeline.Map(len(selected), workers, func(sh pipeline.Shard) part {
		p := part{b: catalog.NewBuilder(meta.Host, meta.Start, meta.Days, nil)}
		for k := sh.Lo; k < sh.Hi; k++ {
			si := &r.man.Segments[selected[k]]
			err := scanSegment(r.dir, si,
				func(rd io.Reader) wireDecoder[cdrs.Record] { return cdrs.NewReader(rd) },
				func(rec *cdrs.Record) {
					p.stats.RecordsRead++
					inf := cdrInfo(rec)
					day := dayOf(inf.Time, meta.Start)
					if !f.keepRecord(day, inf) {
						return
					}
					// The builder silently drops records outside the
					// declared window; count them apart so RecordsKept
					// always equals what the catalog actually absorbed.
					if day < 0 || day >= meta.Days {
						p.stats.RecordsOutsideWindow++
						return
					}
					p.stats.RecordsKept++
					p.b.AddRecord(*rec)
				})
			if err != nil {
				// An aborted scan is not a read segment: the counters
				// only cover segments decoded end to end.
				p.err = err
				break
			}
			p.stats.SegmentsRead++
			p.stats.BytesRead += si.BodyBytes
		}
		return p
	})
	acc := catalog.NewBuilder(meta.Host, meta.Start, meta.Days, nil)
	for i := range parts {
		if parts[i].err != nil {
			return nil, nil, parts[i].err
		}
		stats.add(parts[i].stats)
		acc.Merge(parts[i].b)
	}
	return acc.Build(), &stats, nil
}

// ReplayInto streams the store's CDR/xDR records (post-filter, in
// store order) into a live catalog ingester — the replay twin of
// [ingest.CatalogIngester.ReadRecords]. The caller still owns the
// ingester's Build/Close.
func (r *Replayer) ReplayInto(f Filter, in *ingest.CatalogIngester) (*ReplayStats, error) {
	if r.man.Kind != KindCDR {
		return nil, fmt.Errorf("store: cannot ingest a %q store as CDRs", r.man.Kind)
	}
	return r.ReplayRecords(f, in.OfferRecord)
}

// ReplayRecords hands every matching CDR/xDR to sink sequentially, in
// store order — each device's records arrive in their original
// archive order, the order contract downstream aggregation rests on.
func (r *Replayer) ReplayRecords(f Filter, sink func(cdrs.Record)) (*ReplayStats, error) {
	if r.man.Kind != KindCDR {
		return nil, fmt.Errorf("store: cannot replay a %q store as CDRs", r.man.Kind)
	}
	return replaySeq(r, f,
		func(rd io.Reader) wireDecoder[cdrs.Record] { return cdrs.NewReader(rd) },
		cdrInfo, sink)
}

// ReplayTransactions hands every matching signaling transaction to
// sink sequentially, in store order.
func (r *Replayer) ReplayTransactions(f Filter, sink func(signaling.Transaction)) (*ReplayStats, error) {
	if r.man.Kind != KindSignaling {
		return nil, fmt.Errorf("store: cannot replay a %q store as signaling", r.man.Kind)
	}
	return replaySeq(r, f,
		func(rd io.Reader) wireDecoder[signaling.Transaction] { return signaling.NewReader(rd) },
		txInfo, sink)
}

// replaySeq is the sequential replay loop shared by both planes.
func replaySeq[T any](r *Replayer, f Filter, newDec func(io.Reader) wireDecoder[T],
	info func(*T) RecordInfo, sink func(T)) (*ReplayStats, error) {
	stats := r.baseStats()
	start := r.man.Start
	for _, i := range r.selectSegments(f, &stats) {
		si := &r.man.Segments[i]
		err := scanSegment(r.dir, si, newDec, func(rec *T) {
			stats.RecordsRead++
			inf := info(rec)
			if f.keepRecord(dayOf(inf.Time, start), inf) {
				stats.RecordsKept++
				sink(*rec)
			}
		})
		if err != nil {
			// Aborted mid-segment: RecordsRead still counts the decoded
			// prefix, but the segment is not "read" and its body bytes
			// were not fully decoded.
			return &stats, err
		}
		stats.SegmentsRead++
		stats.BytesRead += si.BodyBytes
	}
	return &stats, nil
}

// scanSegment decodes one sealed segment body, verifying its length,
// CRC and record count against the manifest entry, and calls visit
// for every record. Any mismatch or decode failure reports the
// segment as corrupt.
func scanSegment[T any](dir string, si *SegmentInfo, newDec func(io.Reader) wireDecoder[T], visit func(*T)) error {
	f, err := os.Open(filepath.Join(dir, si.Name))
	if err != nil {
		return fmt.Errorf("store: opening segment %s: %w", si.Name, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat segment %s: %w", si.Name, err)
	}
	if st.Size() != si.BodyBytes+footerSize {
		return fmt.Errorf("%w: %s is %d bytes, manifest says %d",
			ErrCorrupt, si.Name, st.Size(), si.BodyBytes+footerSize)
	}
	body := &crcCountReader{r: io.LimitReader(f, si.BodyBytes)}
	dec := newDec(body)
	var rec T
	n := 0
	for {
		err := dec.Read(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("%w: %s record %d: %v", ErrCorrupt, si.Name, n, err)
		}
		visit(&rec)
		n++
	}
	if n != si.Records {
		return fmt.Errorf("%w: %s decoded %d records, footer sealed %d", ErrCorrupt, si.Name, n, si.Records)
	}
	if body.crc != si.BodyCRC {
		return fmt.Errorf("%w: %s body CRC %08x, footer sealed %08x", ErrCorrupt, si.Name, body.crc, si.BodyCRC)
	}
	return nil
}

// SegmentError is one segment's verification failure.
type SegmentError struct {
	// Name is the segment file.
	Name string
	// Err describes what failed (CRC, length, footer, decode).
	Err string
}

// VerifyReport is the outcome of a full store verification.
type VerifyReport struct {
	// Dir is the verified store directory.
	Dir string
	// Kind is the store's record plane.
	Kind string
	// Segments counts the sealed segments checked.
	Segments int
	// Records totals the records decoded across sealed segments.
	Records int64
	// Bytes totals the segment bytes checked (bodies plus footers).
	Bytes int64
	// Torn lists unsealed segment files (crash residue): present on
	// disk, absent from the manifest.
	Torn []string
	// Corrupt lists sealed segments that failed verification.
	Corrupt []SegmentError
}

// OK reports whether the store verified clean: no torn files, no
// corrupt segments.
func (v *VerifyReport) OK() bool { return len(v.Torn) == 0 && len(v.Corrupt) == 0 }

// String renders the report, one line per problem.
func (v *VerifyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "store %s: kind=%s segments=%d records=%d bytes=%d\n",
		v.Dir, v.Kind, v.Segments, v.Records, v.Bytes)
	for _, t := range v.Torn {
		fmt.Fprintf(&b, "TORN    %s: not sealed by the manifest (crash mid-write?)\n", t)
	}
	for _, c := range v.Corrupt {
		fmt.Fprintf(&b, "CORRUPT %s: %s\n", c.Name, c.Err)
	}
	if v.OK() {
		b.WriteString("ok\n")
	}
	return b.String()
}

// Verify re-reads every sealed segment end to end: the footer must
// decode, match its manifest entry, and seal the exact body the CRC
// and record count were computed over. Torn files are reported
// without being read. Verification never aborts early — the report
// covers the whole store.
func (r *Replayer) Verify() *VerifyReport {
	rep := &VerifyReport{
		Dir:      r.dir,
		Kind:     r.man.Kind,
		Segments: len(r.man.Segments),
		Torn:     append([]string(nil), r.torn...),
	}
	for i := range r.man.Segments {
		si := &r.man.Segments[i]
		if err := r.verifySegment(si); err != nil {
			rep.Corrupt = append(rep.Corrupt, SegmentError{Name: si.Name, Err: err.Error()})
			continue
		}
		rep.Records += int64(si.Records)
		rep.Bytes += si.Bytes
	}
	return rep
}

// verifySegment checks one sealed segment: footer decode and
// manifest agreement first — every index field pruning trusts,
// including the visited set — then the full body scan.
func (r *Replayer) verifySegment(si *SegmentInfo) error {
	footer, kind, err := r.readFooter(si)
	if err != nil {
		return err
	}
	if kind != kindByte(r.man.Kind) {
		return fmt.Errorf("%w: footer kind %d does not match %q store", ErrCorrupt, kind, r.man.Kind)
	}
	if footer.Records != si.Records || footer.BodyCRC != si.BodyCRC ||
		footer.MinDay != si.MinDay || footer.MaxDay != si.MaxDay ||
		footer.MinDevice != si.MinDevice || footer.MaxDevice != si.MaxDevice ||
		footer.VisitedOverflow != si.VisitedOverflow ||
		!equalVisited(footer.Visited, si.Visited) {
		return fmt.Errorf("%w: footer disagrees with manifest entry", ErrCorrupt)
	}
	if r.man.Kind == KindSignaling {
		return scanSegment(r.dir, si,
			func(rd io.Reader) wireDecoder[signaling.Transaction] { return signaling.NewReader(rd) },
			func(*signaling.Transaction) {})
	}
	return scanSegment(r.dir, si,
		func(rd io.Reader) wireDecoder[cdrs.Record] { return cdrs.NewReader(rd) },
		func(*cdrs.Record) {})
}

// equalVisited compares two visited-network index lists (both are in
// first-seen order by construction; nil and empty compare equal).
func equalVisited(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// readFooter loads and decodes a sealed segment's footer, returning
// the index entry and the footer's kind byte.
func (r *Replayer) readFooter(si *SegmentInfo) (SegmentInfo, byte, error) {
	f, err := os.Open(filepath.Join(r.dir, si.Name))
	if err != nil {
		return SegmentInfo{}, 0, fmt.Errorf("store: opening segment %s: %w", si.Name, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return SegmentInfo{}, 0, fmt.Errorf("store: stat segment %s: %w", si.Name, err)
	}
	if st.Size() < footerSize {
		return SegmentInfo{}, 0, fmt.Errorf("%w: %s too short for a footer", ErrCorrupt, si.Name)
	}
	var buf [footerSize]byte
	if _, err := f.ReadAt(buf[:], st.Size()-footerSize); err != nil {
		return SegmentInfo{}, 0, fmt.Errorf("store: reading %s footer: %w", si.Name, err)
	}
	footer, err := decodeFooter(buf[:])
	if err != nil {
		return SegmentInfo{}, 0, fmt.Errorf("%s: %w", si.Name, err)
	}
	return footer, buf[5], nil
}
