package store

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/ingest"
	"whereroam/internal/pipeline"
	"whereroam/internal/signaling"
)

// ReplayStats instruments one replay: how much of the store was
// actually read versus pruned away, and how many records survived the
// query. BytesRead counts segment-body bytes only — pruned segments
// contribute nothing, which is what the pruning benchmarks and the
// acceptance tests assert on.
type ReplayStats struct {
	// SegmentsTotal is the number of sealed segments in the store.
	SegmentsTotal int
	// SegmentsRead counts segments whose bodies were decoded.
	SegmentsRead int
	// SegmentsPruned counts segments skipped by the footer index
	// without reading, for any reason (range indexes or Bloom
	// filter).
	SegmentsPruned int
	// SegmentsPrunedBloom counts the subset of SegmentsPruned skipped
	// by the device-hash Bloom filter alone — their range indexes
	// admitted the queried device.
	SegmentsPrunedBloom int
	// SegmentsTorn counts unsealed segment files skipped with a
	// report (a crash mid-write leaves at most one).
	SegmentsTorn int
	// BytesRead totals the body bytes decoded.
	BytesRead int64
	// RecordsRead counts records decoded from the read segments.
	RecordsRead int64
	// RecordsKept counts records that survived the record-level
	// query (for a catalog replay: and the store's declared day
	// window — kept means it reached the catalog builder).
	RecordsKept int64
	// RecordsOutsideWindow counts records whose event day falls
	// outside the store's declared [0, Days) window during a catalog
	// replay; the builder would silently drop them, so they are
	// surfaced here instead of inflating RecordsKept. Always zero for
	// the sequential replays, which deliver every matching record to
	// the caller regardless of the window.
	RecordsOutsideWindow int64
}

// add folds another stats block into s.
func (s *ReplayStats) add(o ReplayStats) {
	s.SegmentsRead += o.SegmentsRead
	s.BytesRead += o.BytesRead
	s.RecordsRead += o.RecordsRead
	s.RecordsKept += o.RecordsKept
	s.RecordsOutsideWindow += o.RecordsOutsideWindow
}

// Reader reads a store back: it materializes the manifest once
// (checkpoint + log tail for v2 stores, MANIFEST.json for v1),
// reports torn (unsealed) segment files, and replays sealed segments
// with index-driven pruning — concurrently into a catalog build
// ([Reader.Replay]) or sequentially into a caller sink. [Reader.Plan]
// exposes the segment-selection decision for a [Query] without
// reading anything.
//
// A Reader is an immutable snapshot of the store at Open time: it
// replays exactly the segments its manifest lists, and sealed
// segments are never rewritten, so replaying while a SegmentWriter
// keeps appending to the same directory is safe and bit-identical to
// replaying a quiescent store — later seals are simply invisible
// until the store is re-Opened. The files a live writer does touch —
// the append-only MANIFEST.log and the atomically replaced
// MANIFEST.ckpt — are read only at Open.
type Reader struct {
	dir  string
	man  Manifest
	minf ManifestInfo
	torn []string
	met  *Metrics
}

// Replayer is the v1 name for [Reader].
//
// Deprecated: use Reader. Replayer remains as an alias so existing
// callers compile unchanged.
type Replayer = Reader

// Open loads the store manifest at dir (checkpoint + log tail for v2
// stores, MANIFEST.json for v1) and scans the directory for torn
// segment files (present on disk but not covered by the manifest —
// the residue of a crash mid-write). Torn files are reported, never
// read. A torn final MANIFEST.log entry is tolerated: the entry is
// discarded and its segment file shows up as torn.
//
// The directory is listed before the manifest is read: a segment
// sealed between the two steps is then present in the manifest but
// absent from the listing (harmless), never the reverse, so a healthy
// store with a live writer reports at most its single in-progress
// segment as torn. Listing after reading would race the other way and
// misreport freshly sealed segments.
func Open(dir string) (*Reader, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}
	r := &Reader{dir: dir}
	r.man, r.minf, err = loadManifest(dir)
	if err != nil {
		return nil, err
	}
	sealed := make(map[string]bool, len(r.man.Segments))
	for i := range r.man.Segments {
		name := r.man.Segments[i].Name
		// Segment names come from an on-disk manifest; confine them to
		// plain seg-*.wrseg entries inside the store directory so a
		// crafted manifest cannot read arbitrary paths.
		if name != filepath.Base(name) || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wrseg") {
			return nil, fmt.Errorf("store: %w: manifest segment name %q", ErrCorrupt, name)
		}
		sealed[name] = true
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wrseg") && !sealed[name] {
			r.torn = append(r.torn, name)
		}
	}
	sort.Strings(r.torn)
	return r, nil
}

// Manifest returns the store's materialized manifest. Callers must
// treat it as read-only.
func (r *Reader) Manifest() *Manifest { return &r.man }

// ManifestInfo reports how the manifest was materialized at Open:
// schema version, checkpoint/log-tail split, and whether a torn log
// tail was discarded.
func (r *Reader) ManifestInfo() ManifestInfo { return r.minf }

// Torn lists the unsealed segment files found at Open time.
func (r *Reader) Torn() []string { return r.torn }

// Dir returns the store directory.
func (r *Reader) Dir() string { return r.dir }

// baseStats pre-fills the store-wide counters of a replay.
func (r *Reader) baseStats() ReplayStats {
	return ReplayStats{SegmentsTotal: len(r.man.Segments), SegmentsTorn: len(r.torn)}
}

// selectSegments applies the segment-level planner, returning the
// indices of segments to read (in store order) and counting the
// pruned remainder.
func (r *Reader) selectSegments(q Query, stats *ReplayStats) []int {
	var selected []int
	prunedRange, prunedBloom := 0, 0
	for i := range r.man.Segments {
		switch q.judgeSegment(&r.man.Segments[i]) {
		case segKeep:
			selected = append(selected, i)
		case segPruneBloom:
			prunedBloom++
		default:
			prunedRange++
		}
	}
	stats.SegmentsPruned += prunedRange + prunedBloom
	stats.SegmentsPrunedBloom += prunedBloom
	r.met.notePlan(len(selected), prunedRange, prunedBloom)
	return selected
}

// Replay rebuilds the CDR-plane devices-catalog from the store on
// workers goroutines (the usual convention: below one means one per
// CPU). Segments prune against the query's footer-index plan without
// being read; surviving segments decode concurrently — one shard of
// contiguous segments per worker callback, each into its own
// shard-local catalog builder — and the shard builders fold in shard
// order. Shard boundaries depend only on the selected-segment count
// and every per-(device, day) aggregate combines associatively, so
// the catalog is bit-identical at any worker count to a serial build
// over the same records (and to the live build the archive was tapped
// from). Torn segments are skipped and counted; a corrupt sealed
// segment (CRC, length or record-count mismatch) aborts with
// ErrCorrupt.
func (r *Reader) Replay(q Query, workers int) (*catalog.Catalog, *ReplayStats, error) {
	if r.man.Kind != KindCDR {
		return nil, nil, fmt.Errorf("store: cannot build a catalog from a %q store", r.man.Kind)
	}
	meta := r.man.Meta()
	stats := r.baseStats()
	selected := r.selectSegments(q, &stats)

	type part struct {
		b     *catalog.Builder
		stats ReplayStats
		err   error
	}
	parts := pipeline.MapTimed(len(selected), workers, r.met.shardHist(), func(sh pipeline.Shard) part {
		p := part{b: catalog.NewBuilder(meta.Host, meta.Start, meta.Days, nil)}
		for k := sh.Lo; k < sh.Hi; k++ {
			si := &r.man.Segments[selected[k]]
			err := scanSegment(r.dir, si,
				func(rd io.Reader) wireDecoder[cdrs.Record] { return cdrs.NewReader(rd) },
				func(rec *cdrs.Record) {
					p.stats.RecordsRead++
					inf := cdrInfo(rec)
					day := dayOf(inf.Time, meta.Start)
					if !q.keepRecord(day, inf) {
						return
					}
					// The builder silently drops records outside the
					// declared window; count them apart so RecordsKept
					// always equals what the catalog actually absorbed.
					if day < 0 || day >= meta.Days {
						p.stats.RecordsOutsideWindow++
						return
					}
					p.stats.RecordsKept++
					p.b.AddRecord(*rec)
				})
			if err != nil {
				// An aborted scan is not a read segment: the counters
				// only cover segments decoded end to end.
				p.err = err
				break
			}
			p.stats.SegmentsRead++
			p.stats.BytesRead += si.BodyBytes
		}
		return p
	})
	acc := catalog.NewBuilder(meta.Host, meta.Start, meta.Days, nil)
	for i := range parts {
		if parts[i].err != nil {
			return nil, nil, parts[i].err
		}
		stats.add(parts[i].stats)
		acc.Merge(parts[i].b)
	}
	r.met.noteRead(&stats)
	return acc.Build(), &stats, nil
}

// ReplayInto streams the store's CDR/xDR records (post-query, in
// store order) into a live catalog ingester — the replay twin of
// [ingest.CatalogIngester.ReadRecords]. The caller still owns the
// ingester's Build/Close.
func (r *Reader) ReplayInto(q Query, in *ingest.CatalogIngester) (*ReplayStats, error) {
	if r.man.Kind != KindCDR {
		return nil, fmt.Errorf("store: cannot ingest a %q store as CDRs", r.man.Kind)
	}
	return r.ReplayRecords(q, in.OfferRecord)
}

// ReplayRecords hands every matching CDR/xDR to sink sequentially, in
// store order — each device's records arrive in their original
// archive order, the order contract downstream aggregation rests on.
func (r *Reader) ReplayRecords(q Query, sink func(cdrs.Record)) (*ReplayStats, error) {
	if r.man.Kind != KindCDR {
		return nil, fmt.Errorf("store: cannot replay a %q store as CDRs", r.man.Kind)
	}
	return replaySeq(r, q,
		func(rd io.Reader) wireDecoder[cdrs.Record] { return cdrs.NewReader(rd) },
		cdrInfo, sink)
}

// ReplayTransactions hands every matching signaling transaction to
// sink sequentially, in store order.
func (r *Reader) ReplayTransactions(q Query, sink func(signaling.Transaction)) (*ReplayStats, error) {
	if r.man.Kind != KindSignaling {
		return nil, fmt.Errorf("store: cannot replay a %q store as signaling", r.man.Kind)
	}
	return replaySeq(r, q,
		func(rd io.Reader) wireDecoder[signaling.Transaction] { return signaling.NewReader(rd) },
		txInfo, sink)
}

// replaySeq is the sequential replay loop shared by both planes.
func replaySeq[T any](r *Reader, q Query, newDec func(io.Reader) wireDecoder[T],
	info func(*T) RecordInfo, sink func(T)) (*ReplayStats, error) {
	stats := r.baseStats()
	start := r.man.Start
	for _, i := range r.selectSegments(q, &stats) {
		si := &r.man.Segments[i]
		err := scanSegment(r.dir, si, newDec, func(rec *T) {
			stats.RecordsRead++
			inf := info(rec)
			if q.keepRecord(dayOf(inf.Time, start), inf) {
				stats.RecordsKept++
				sink(*rec)
			}
		})
		if err != nil {
			// Aborted mid-segment: RecordsRead still counts the decoded
			// prefix, but the segment is not "read" and its body bytes
			// were not fully decoded.
			return &stats, err
		}
		stats.SegmentsRead++
		stats.BytesRead += si.BodyBytes
	}
	r.met.noteRead(&stats)
	return &stats, nil
}

// scanSegment decodes one sealed segment body, verifying its length,
// CRC and record count against the manifest entry, and calls visit
// for every record. Any mismatch or decode failure reports the
// segment as corrupt. The manifest's Bytes field covers body, Bloom
// filter and footer for both footer versions, so the size check holds
// without knowing which version sealed the file.
func scanSegment[T any](dir string, si *SegmentInfo, newDec func(io.Reader) wireDecoder[T], visit func(*T)) error {
	f, err := os.Open(filepath.Join(dir, si.Name))
	if err != nil {
		return fmt.Errorf("store: opening segment %s: %w", si.Name, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat segment %s: %w", si.Name, err)
	}
	if st.Size() != si.Bytes || si.Bytes < si.BodyBytes+footerV1Size {
		return fmt.Errorf("%w: %s is %d bytes, manifest says %d",
			ErrCorrupt, si.Name, st.Size(), si.Bytes)
	}
	body := &crcCountReader{r: io.LimitReader(f, si.BodyBytes)}
	dec := newDec(body)
	var rec T
	n := 0
	for {
		err := dec.Read(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("%w: %s record %d: %v", ErrCorrupt, si.Name, n, err)
		}
		visit(&rec)
		n++
	}
	if n != si.Records {
		return fmt.Errorf("%w: %s decoded %d records, footer sealed %d", ErrCorrupt, si.Name, n, si.Records)
	}
	if body.crc != si.BodyCRC {
		return fmt.Errorf("%w: %s body CRC %08x, footer sealed %08x", ErrCorrupt, si.Name, body.crc, si.BodyCRC)
	}
	return nil
}

// SegmentError is one segment's verification failure.
type SegmentError struct {
	// Name is the segment file.
	Name string
	// Err describes what failed (CRC, length, footer, decode).
	Err string
}

// VerifyReport is the outcome of a full store verification.
type VerifyReport struct {
	// Dir is the verified store directory.
	Dir string
	// Kind is the store's record plane.
	Kind string
	// Manifest reports how the manifest was materialized (schema
	// version, checkpoint/log-tail split, torn log tail).
	Manifest ManifestInfo
	// Segments counts the sealed segments checked.
	Segments int
	// Records totals the records decoded across sealed segments.
	Records int64
	// Bytes totals the segment bytes checked (bodies, Bloom filters
	// and footers).
	Bytes int64
	// Torn lists unsealed segment files (crash residue): present on
	// disk, absent from the manifest.
	Torn []string
	// Corrupt lists sealed segments that failed verification.
	Corrupt []SegmentError
}

// OK reports whether the store verified clean: no torn files, no
// corrupt segments.
func (v *VerifyReport) OK() bool { return len(v.Torn) == 0 && len(v.Corrupt) == 0 }

// String renders the report, one line per problem.
func (v *VerifyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "store %s: kind=%s segments=%d records=%d bytes=%d\n",
		v.Dir, v.Kind, v.Segments, v.Records, v.Bytes)
	fmt.Fprintf(&b, "manifest v%d: checkpoint=%d log-tail=%d",
		v.Manifest.Version, v.Manifest.CheckpointSegments, v.Manifest.TailSegments)
	if v.Manifest.TornLogTail {
		b.WriteString(" (torn log tail discarded)")
	}
	b.WriteString("\n")
	for _, t := range v.Torn {
		fmt.Fprintf(&b, "TORN    %s: not sealed by the manifest (crash mid-write?)\n", t)
	}
	for _, c := range v.Corrupt {
		fmt.Fprintf(&b, "CORRUPT %s: %s\n", c.Name, c.Err)
	}
	if v.OK() {
		b.WriteString("ok\n")
	}
	return b.String()
}

// Verify re-reads every sealed segment end to end: the footer must
// decode, match its manifest entry — including the Bloom-filter
// frame, cross-checked against both the manifest copy and the on-disk
// filter bytes — and seal the exact body the CRC and record count
// were computed over. Torn files are reported without being read.
// Verification never aborts early — the report covers the whole
// store.
func (r *Reader) Verify() *VerifyReport {
	rep := &VerifyReport{
		Dir:      r.dir,
		Kind:     r.man.Kind,
		Manifest: r.minf,
		Segments: len(r.man.Segments),
		Torn:     append([]string(nil), r.torn...),
	}
	for i := range r.man.Segments {
		si := &r.man.Segments[i]
		if err := r.verifySegment(si); err != nil {
			rep.Corrupt = append(rep.Corrupt, SegmentError{Name: si.Name, Err: err.Error()})
			continue
		}
		rep.Records += int64(si.Records)
		rep.Bytes += si.Bytes
	}
	return rep
}

// verifySegment checks one sealed segment: footer decode and
// manifest agreement first — every index field pruning trusts,
// including the visited set and the Bloom filter — then the full
// body scan.
func (r *Reader) verifySegment(si *SegmentInfo) error {
	footer, ft, err := r.readFooter(si)
	if err != nil {
		return err
	}
	if ft.kind != kindByte(r.man.Kind) {
		return fmt.Errorf("%w: footer kind %d does not match %q store", ErrCorrupt, ft.kind, r.man.Kind)
	}
	if footer.Records != si.Records || footer.BodyCRC != si.BodyCRC ||
		footer.MinDay != si.MinDay || footer.MaxDay != si.MaxDay ||
		footer.MinDevice != si.MinDevice || footer.MaxDevice != si.MaxDevice ||
		footer.VisitedOverflow != si.VisitedOverflow ||
		!equalVisited(footer.Visited, si.Visited) {
		return fmt.Errorf("%w: footer disagrees with manifest entry", ErrCorrupt)
	}
	if err := r.verifyBloom(si, ft); err != nil {
		return err
	}
	if r.man.Kind == KindSignaling {
		return scanSegment(r.dir, si,
			func(rd io.Reader) wireDecoder[signaling.Transaction] { return signaling.NewReader(rd) },
			func(*signaling.Transaction) {})
	}
	return scanSegment(r.dir, si,
		func(rd io.Reader) wireDecoder[cdrs.Record] { return cdrs.NewReader(rd) },
		func(*cdrs.Record) {})
}

// verifyBloom cross-checks a segment's Bloom filter three ways: the
// footer frame against the manifest copy, and the on-disk filter
// bytes (between body and footer) against the footer's CRC. v1
// footers carry no filter; their manifest entries must not either.
func (r *Reader) verifyBloom(si *SegmentInfo, ft footerTail) error {
	if ft.version == footerVersionV1 {
		if len(si.Bloom) != 0 || si.BloomHashes != 0 {
			return fmt.Errorf("%w: manifest carries a bloom filter a v1 footer cannot seal", ErrCorrupt)
		}
		return nil
	}
	if int(ft.bloomLen) != len(si.Bloom) || int(ft.bloomK) != si.BloomHashes {
		return fmt.Errorf("%w: footer bloom frame disagrees with manifest entry", ErrCorrupt)
	}
	if ft.bloomLen == 0 {
		return nil
	}
	if crc32.Checksum(si.Bloom, crcTable) != ft.bloomCRC {
		return fmt.Errorf("%w: manifest bloom filter fails the footer CRC", ErrCorrupt)
	}
	f, err := os.Open(filepath.Join(r.dir, si.Name))
	if err != nil {
		return fmt.Errorf("store: opening segment %s: %w", si.Name, err)
	}
	defer f.Close()
	disk := make([]byte, ft.bloomLen)
	if _, err := f.ReadAt(disk, si.BodyBytes); err != nil {
		return fmt.Errorf("store: reading %s bloom filter: %w", si.Name, err)
	}
	if crc32.Checksum(disk, crcTable) != ft.bloomCRC {
		return fmt.Errorf("%w: on-disk bloom filter fails the footer CRC", ErrCorrupt)
	}
	return nil
}

// equalVisited compares two visited-network index lists (both are in
// first-seen order by construction; nil and empty compare equal).
func equalVisited(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// readFooter loads and decodes a sealed segment's footer of either
// version (the trailing footerV2Size bytes are tried first, then the
// trailing footerV1Size bytes), returning the index entry and the
// footer's tail fields.
func (r *Reader) readFooter(si *SegmentInfo) (SegmentInfo, footerTail, error) {
	f, err := os.Open(filepath.Join(r.dir, si.Name))
	if err != nil {
		return SegmentInfo{}, footerTail{}, fmt.Errorf("store: opening segment %s: %w", si.Name, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return SegmentInfo{}, footerTail{}, fmt.Errorf("store: stat segment %s: %w", si.Name, err)
	}
	if st.Size() < footerV1Size {
		return SegmentInfo{}, footerTail{}, fmt.Errorf("%w: %s too short for a footer", ErrCorrupt, si.Name)
	}
	if st.Size() >= footerV2Size {
		var buf [footerV2Size]byte
		if _, err := f.ReadAt(buf[:], st.Size()-footerV2Size); err != nil {
			return SegmentInfo{}, footerTail{}, fmt.Errorf("store: reading %s footer: %w", si.Name, err)
		}
		if footer, ft, err := decodeFooter(buf[:]); err == nil {
			return footer, ft, nil
		}
		// Not a valid v2 footer — fall through and try the v1 frame
		// at the file tail.
	}
	var buf [footerV1Size]byte
	if _, err := f.ReadAt(buf[:], st.Size()-footerV1Size); err != nil {
		return SegmentInfo{}, footerTail{}, fmt.Errorf("store: reading %s footer: %w", si.Name, err)
	}
	footer, ft, err := decodeFooter(buf[:])
	if err != nil {
		return SegmentInfo{}, footerTail{}, fmt.Errorf("%s: %w", si.Name, err)
	}
	return footer, ft, nil
}
