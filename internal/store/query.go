package store

import (
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
)

// Query is the store's read predicate and segment planner: the zero
// Query selects everything, and the chainable constructors narrow it
// by event-day range, device-ID range, exact device or visited
// network. A Query prunes at two levels — whole segments are skipped
// without reading when their footer index proves no record can match
// (day range, device-hash range, visited set, and for exact-device
// queries the per-segment device-hash Bloom filter), and surviving
// segments are filtered record by record. [Reader.Plan] exposes the
// segment-selection decision without reading anything.
type Query struct {
	hasDays    bool
	dayLo      int
	dayHi      int
	hasDevs    bool
	devLo      uint64
	devHi      uint64
	exactDev   bool
	hasVisited bool
	visited    mccmnc.PLMN
	noBloom    bool
}

// Filter is the v1 name for [Query].
//
// Deprecated: use Query. Filter remains as an alias so existing
// callers compile unchanged.
type Filter = Query

// Days narrows the query to records whose event day (relative to the
// store's Start) lies in [lo, hi].
func (q Query) Days(lo, hi int) Query {
	q.hasDays, q.dayLo, q.dayHi = true, lo, hi
	return q
}

// Devices narrows the query to records whose device-ID hash lies in
// [lo, hi]. A range query prunes segments by the footer's min/max
// device-hash bounds only; use [Query.Device] for a single device so
// the Bloom filter can prune too.
func (q Query) Devices(lo, hi identity.DeviceID) Query {
	q.hasDevs, q.devLo, q.devHi = true, uint64(lo), uint64(hi)
	q.exactDev = lo == hi
	return q
}

// Device narrows the query to exactly one device. Equivalent to
// Devices(dev, dev); planning additionally probes each segment's
// device-hash Bloom filter, skipping segments that provably do not
// contain the device even when its hash lies inside the segment's
// min/max range.
func (q Query) Device(dev identity.DeviceID) Query {
	return q.Devices(dev, dev)
}

// VisitedHost narrows the query to records generated on the given
// visited network.
func (q Query) VisitedHost(p mccmnc.PLMN) Query {
	q.hasVisited, q.visited = true, p
	return q
}

// WithoutBloom disables Bloom-filter segment pruning for this query,
// leaving only the range indexes. Pruning is false-positive-only, so
// results never change — this exists for benchmarking the filter's
// effect and as an escape hatch.
func (q Query) WithoutBloom() Query {
	q.noBloom = true
	return q
}

// Segment verdicts from the planner.
type segVerdict int

const (
	// segKeep selects the segment for reading.
	segKeep segVerdict = iota
	// segPruneRange skips a segment on the footer's range indexes:
	// empty, day range, device-hash range, or visited set.
	segPruneRange
	// segPruneBloom skips a segment because the device-hash Bloom
	// filter proves the queried device absent.
	segPruneBloom
)

// judgeSegment decides whether the segment's footer index admits any
// matching record, and — when it does not — which index family proved
// it.
func (q Query) judgeSegment(si *SegmentInfo) segVerdict {
	if si.Records == 0 {
		return segPruneRange
	}
	if q.hasDays && (si.MinDay > q.dayHi || si.MaxDay < q.dayLo) {
		return segPruneRange
	}
	if q.hasDevs && (si.MinDevice > q.devHi || si.MaxDevice < q.devLo) {
		return segPruneRange
	}
	if q.hasVisited && !si.VisitedOverflow {
		found := false
		want := q.visited.Concat()
		for _, v := range si.Visited {
			if v == want {
				found = true
				break
			}
		}
		if !found {
			return segPruneRange
		}
	}
	if q.exactDev && !q.noBloom && !bloomMaybe(si.Bloom, si.BloomHashes, q.devLo) {
		return segPruneBloom
	}
	return segKeep
}

// keepRecord reports whether one record matches the query; day is
// the record's event day relative to the store's Start.
func (q Query) keepRecord(day int, inf RecordInfo) bool {
	if q.hasDays && (day < q.dayLo || day > q.dayHi) {
		return false
	}
	if q.hasDevs && (inf.Device < q.devLo || inf.Device > q.devHi) {
		return false
	}
	if q.hasVisited && inf.Visited != q.visited {
		return false
	}
	return true
}

// QueryPlan is the segment-selection decision for one query against
// one store snapshot: which segments a replay would read and why the
// rest were skipped, computed from the manifest alone.
type QueryPlan struct {
	// SegmentsTotal is the number of sealed segments in the store.
	SegmentsTotal int
	// Selected lists the segment file names a replay would read, in
	// store order.
	Selected []string
	// PrunedRange counts segments skipped on the range indexes
	// (empty segment, day range, device-hash range, visited set).
	PrunedRange int
	// PrunedBloom counts segments skipped by the device-hash Bloom
	// filter alone — their range indexes admitted the device.
	PrunedBloom int
}

// Plan runs segment selection for q without reading any segment,
// returning which segments a replay would read and why the rest
// were pruned.
func (r *Reader) Plan(q Query) *QueryPlan {
	plan := &QueryPlan{SegmentsTotal: len(r.man.Segments)}
	for i := range r.man.Segments {
		si := &r.man.Segments[i]
		switch q.judgeSegment(si) {
		case segKeep:
			plan.Selected = append(plan.Selected, si.Name)
		case segPruneRange:
			plan.PrunedRange++
		case segPruneBloom:
			plan.PrunedBloom++
		}
	}
	return plan
}
