package store

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"whereroam/internal/cdrs"
	"whereroam/internal/mccmnc"
)

// writeV1Store archives recs the way a v1 writer did: v1 footers
// (no Bloom filter) and a full MANIFEST.json, no log, no checkpoint.
// It is the fixture for the v1 read-compat round trip.
func writeV1Store(t *testing.T, dir string, meta Meta, segRecords int, recs []cdrs.Record) {
	t.Helper()
	man := Manifest{
		Version:        manifestVersionV1,
		Kind:           KindCDR,
		Start:          meta.Start,
		Days:           meta.Days,
		SegmentRecords: segRecords,
	}
	if meta.Host != (mccmnc.PLMN{}) {
		man.Host = meta.Host.Concat()
	}
	for base := 0; base < len(recs); base += segRecords {
		hi := base + segRecords
		if hi > len(recs) {
			hi = len(recs)
		}
		chunk := recs[base:hi]
		name := fmt.Sprintf("seg-%06d.wrseg", len(man.Segments))
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		cw := &crcCountWriter{w: f}
		enc := cdrs.NewWriter(cw)
		si := SegmentInfo{Name: name, MinDay: math.MaxInt32, MaxDay: math.MinInt32, MinDevice: math.MaxUint64}
		var visited []mccmnc.PLMN
		for i := range chunk {
			if err := enc.Write(&chunk[i]); err != nil {
				t.Fatal(err)
			}
			inf := cdrInfo(&chunk[i])
			day := dayOf(inf.Time, meta.Start)
			if day < si.MinDay {
				si.MinDay = day
			}
			if day > si.MaxDay {
				si.MaxDay = day
			}
			if inf.Device < si.MinDevice {
				si.MinDevice = inf.Device
			}
			if inf.Device > si.MaxDevice {
				si.MaxDevice = inf.Device
			}
			seen := false
			for _, v := range visited {
				if v == inf.Visited {
					seen = true
					break
				}
			}
			if !seen {
				if len(visited) >= maxFooterVisited {
					si.VisitedOverflow = true
				} else {
					visited = append(visited, inf.Visited)
				}
			}
			si.Records++
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		si.BodyBytes, si.BodyCRC = cw.n, cw.crc
		si.Bytes = cw.n + footerV1Size
		footer := encodeFooterV1(kindByte(KindCDR), &si, visited)
		if _, err := f.Write(footer[:]); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		for _, p := range visited {
			si.Visited = append(si.Visited, p.Concat())
		}
		man.Segments = append(man.Segments, si)
		man.TotalRecords += int64(si.Records)
	}
	data, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// A v2 store must tolerate a torn final MANIFEST.log entry: Open
// drops the incomplete entry, its segment file shows up as torn, and
// everything sealed before it replays — the crash-mid-seal contract.
func TestManifestLogTornTailTolerated(t *testing.T) {
	const days = 4
	recs := feedRecords(20, days)
	dir := t.TempDir()
	writeStore(t, dir, days, 16, recs)

	full, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	nSeg := len(full.Manifest().Segments)
	if nSeg < 3 {
		t.Fatalf("fixture too small: %d segments", nSeg)
	}

	logPath := filepath.Join(dir, ManifestLogName)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	// Trailing garbage after the last whole entry: flagged, harmless.
	if err := os.WriteFile(logPath, append(append([]byte(nil), raw...), "WRML\x00\x00"...), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with garbage log tail: %v", err)
	}
	if !r.ManifestInfo().TornLogTail {
		t.Fatal("garbage log tail not reported")
	}
	if got := len(r.Manifest().Segments); got != nSeg {
		t.Fatalf("garbage tail lost segments: %d of %d", got, nSeg)
	}

	// Truncation inside the final entry: that segment drops out of the
	// manifest and is reported as a torn file instead.
	if err := os.WriteFile(logPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err = Open(dir)
	if err != nil {
		t.Fatalf("Open with truncated log: %v", err)
	}
	if got := len(r.Manifest().Segments); got != nSeg-1 {
		t.Fatalf("truncated log kept %d segments, want %d", got, nSeg-1)
	}
	if !r.ManifestInfo().TornLogTail {
		t.Fatal("truncated log tail not reported")
	}
	lastName := full.Manifest().Segments[nSeg-1].Name
	foundTorn := false
	for _, n := range r.Torn() {
		if n == lastName {
			foundTorn = true
		}
	}
	if !foundTorn {
		t.Fatalf("segment %s of the torn entry not reported torn (torn=%v)", lastName, r.Torn())
	}
	var got []cdrs.Record
	if _, err := r.ReplayRecords(Query{}, func(rec cdrs.Record) { got = append(got, rec) }); err != nil {
		t.Fatal(err)
	}
	wantRecs := 0
	for _, si := range full.Manifest().Segments[:nSeg-1] {
		wantRecs += si.Records
	}
	if len(got) != wantRecs {
		t.Fatalf("replay after torn tail: %d records, want %d", len(got), wantRecs)
	}
	if !reflect.DeepEqual(got, recs[:wantRecs]) {
		t.Fatal("replay after torn tail differs from the sealed prefix")
	}
}

// A stale checkpoint plus a longer log must recover every segment the
// log covers — the crash-between-seal-and-checkpoint case — and the
// recovered view must replay identically to the healthy one.
func TestStaleCheckpointLongerLogRecovers(t *testing.T) {
	const days = 6
	// Enough records for > checkpointMinTail segments so a real
	// checkpoint happened mid-write.
	recs := feedRecords(90, days)
	dir := t.TempDir()
	writeStore(t, dir, days, 8, recs)

	healthy, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	minf := healthy.ManifestInfo()
	if minf.CheckpointSegments == 0 || minf.TailSegments == 0 {
		t.Fatalf("fixture must have both checkpoint and log tail, got %+v", minf)
	}
	wantCat, _, err := healthy.Replay(Query{}, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Roll the checkpoint back to a much older prefix.
	stale := *healthy.Manifest()
	stale.Segments = append([]SegmentInfo(nil), stale.Segments[:3]...)
	stale.LogEntries = 3
	stale.Version = manifestVersionV2
	if err := writeCheckpoint(dir, &stale); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(r.Manifest().Segments), len(healthy.Manifest().Segments); got != want {
		t.Fatalf("stale checkpoint recovery found %d segments, want %d", got, want)
	}
	if r.ManifestInfo().CheckpointSegments != 3 {
		t.Fatalf("ManifestInfo checkpoint segments = %d, want 3", r.ManifestInfo().CheckpointSegments)
	}
	if !reflect.DeepEqual(r.Manifest().Segments, healthy.Manifest().Segments) {
		t.Fatal("recovered segment index differs from the healthy one")
	}
	gotCat, _, err := r.Replay(Query{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantCat, gotCat) {
		t.Fatal("replay from recovered manifest differs from healthy replay")
	}
	if rep := r.Verify(); !rep.OK() {
		t.Fatalf("recovered store fails verification:\n%s", rep)
	}
}

// The checkpoint is written atomically: stray .tmp residue (a crash
// mid-checkpoint, before the rename) must not affect Open, and the
// surviving checkpoint must still be the previous complete one.
func TestCheckpointAtomicTmpResidue(t *testing.T) {
	const days = 3
	recs := feedRecords(16, days)
	dir := t.TempDir()
	writeStore(t, dir, days, 8, recs)

	want, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestCheckpointName+".tmp"), []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with checkpoint tmp residue: %v", err)
	}
	if !reflect.DeepEqual(r.Manifest(), want.Manifest()) {
		t.Fatal("checkpoint tmp residue changed the manifest view")
	}
	if rep := r.Verify(); !rep.OK() {
		t.Fatalf("store with tmp residue fails verification:\n%s", rep)
	}
}

// Checkpointing is geometric: a store with well over checkpointMinTail
// segments must have a checkpoint covering a prefix, a bounded log
// tail, and the split must be exactly what ManifestInfo reports.
func TestCheckpointGeometricCoverage(t *testing.T) {
	const days = 6
	recs := feedRecords(90, days) // 1080 records, 135 segments at 8/segment
	dir := t.TempDir()
	writeStore(t, dir, days, 8, recs)

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	minf := r.ManifestInfo()
	if minf.Version != manifestVersionV2 {
		t.Fatalf("manifest version %d, want 2", minf.Version)
	}
	total := len(r.Manifest().Segments)
	if minf.CheckpointSegments+minf.TailSegments != total {
		t.Fatalf("checkpoint %d + tail %d != %d segments", minf.CheckpointSegments, minf.TailSegments, total)
	}
	if minf.CheckpointSegments < checkpointMinTail {
		t.Fatalf("no meaningful checkpoint after %d segments: %+v", total, minf)
	}
	// Geometric rule: the tail never exceeds the covered prefix (plus
	// the threshold before the first checkpoint fires).
	if minf.TailSegments >= minf.CheckpointSegments+checkpointMinTail {
		t.Fatalf("log tail %d outgrew checkpoint %d", minf.TailSegments, minf.CheckpointSegments)
	}
}

// A v1 store (v1 footers, MANIFEST.json, no Bloom filters) must keep
// reading: same replay as a v2 store of the same records, clean
// verify, working day pruning, and device queries that simply lack
// Bloom pruning. Compacting a v1 store must produce a working v2
// store.
func TestV1StoreReadCompat(t *testing.T) {
	const days = 5
	recs := feedRecords(30, days)

	v1dir := t.TempDir()
	writeV1Store(t, v1dir, testMeta(days), 32, recs)
	v2dir := t.TempDir()
	writeStore(t, v2dir, days, 32, recs)

	r1, err := Open(v1dir)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ManifestInfo().Version != manifestVersionV1 {
		t.Fatalf("v1 store read as version %d", r1.ManifestInfo().Version)
	}
	if rep := r1.Verify(); !rep.OK() {
		t.Fatalf("v1 store fails verification:\n%s", rep)
	}
	r2, err := Open(v2dir)
	if err != nil {
		t.Fatal(err)
	}
	cat1, stats1, err := r1.Replay(Query{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cat2, _, err := r2.Replay(Query{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cat1, cat2) {
		t.Fatal("v1 replay differs from v2 replay of the same records")
	}
	if stats1.SegmentsPrunedBloom != 0 {
		t.Fatalf("v1 store cannot bloom-prune, stats say %d", stats1.SegmentsPrunedBloom)
	}

	// Day pruning still works off the v1 footer ranges.
	_, pruned, err := r1.Replay(Query{}.Days(0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.SegmentsPruned == 0 {
		t.Fatal("day-pruned v1 replay pruned nothing")
	}
	// An exact-device query must not mis-prune without filters: the
	// empty Bloom reports "maybe" for everything.
	dev := recs[0].Device
	plan := r1.Plan(Query{}.Device(dev))
	if plan.PrunedBloom != 0 {
		t.Fatalf("v1 plan bloom-pruned %d segments with no filters", plan.PrunedBloom)
	}

	// Compacting the v1 store yields a v2 store with identical replay.
	cdir := t.TempDir() + "/compacted"
	if _, err := Compact(cdir, []string{v1dir}, CompactOptions{SegmentRecords: 32}); err != nil {
		t.Fatal(err)
	}
	rc, err := Open(cdir)
	if err != nil {
		t.Fatal(err)
	}
	if rc.ManifestInfo().Version != manifestVersionV2 {
		t.Fatalf("compacted store read as version %d", rc.ManifestInfo().Version)
	}
	catC, _, err := rc.Replay(Query{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cat1, catC) {
		t.Fatal("compacted v1 store replays differently")
	}
}
