package store

// Manifest v2 persistence: the append-only MANIFEST.log plus the
// MANIFEST.ckpt checkpoint.
//
// Each seal appends exactly one framed entry to the log:
//
//	offset  size  field
//	0       4     magic "WRML"
//	4       4     payload length (big endian)
//	8       n     payload: the SegmentInfo as JSON
//	8+n     4     CRC-32C of the payload
//
// and the log is fsynced, which is the whole durability cost of a
// seal — O(1) in segment count. Periodically (geometrically, so the
// amortized cost stays O(1)) the writer snapshots the full manifest
// into MANIFEST.ckpt with the usual write-tmp → fsync → rename → sync
// dir dance, recording in LogEntries how many log entries the
// snapshot covers. Because the log entry is durable before any
// checkpoint that counts it, a surviving checkpoint always covers a
// prefix of the surviving log.
//
// Open materializes the manifest as checkpoint + log tail. A torn
// final log entry (crash mid-append) is discarded — the segment it
// described is then reported as torn, exactly the v1 crash
// semantics. A log shorter than the checkpoint's coverage adds no
// tail; the checkpoint already carries those segments.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// manifestLogMagic frames each MANIFEST.log entry.
const manifestLogMagic = "WRML"

// manifestLogMaxPayload caps a single log entry's JSON payload; a
// larger length prefix is treated as a torn/corrupt tail.
const manifestLogMaxPayload = 1 << 26

// appendLogEntry writes one framed manifest-log entry for si to w.
func appendLogEntry(w io.Writer, si *SegmentInfo) error {
	payload, err := json.Marshal(si)
	if err != nil {
		return fmt.Errorf("store: encode manifest log entry: %w", err)
	}
	buf := make([]byte, 0, 12+len(payload))
	buf = append(buf, manifestLogMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	_, err = w.Write(buf)
	return err
}

// decodeLogEntries parses a manifest log image, returning every
// complete, CRC-valid entry before the first damage. torn reports
// whether trailing bytes were discarded (a partial frame, a CRC
// mismatch, or garbage after the last whole entry) — tolerated, not
// fatal, because a crash mid-append legitimately leaves one.
func decodeLogEntries(b []byte) (entries []SegmentInfo, torn bool) {
	for len(b) > 0 {
		if len(b) < 8 || string(b[0:4]) != manifestLogMagic {
			return entries, true
		}
		n := binary.BigEndian.Uint32(b[4:8])
		if n > manifestLogMaxPayload || len(b) < 12+int(n) {
			return entries, true
		}
		payload := b[8 : 8+n]
		if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(b[8+n:12+n]) {
			return entries, true
		}
		var si SegmentInfo
		if err := json.Unmarshal(payload, &si); err != nil {
			return entries, true
		}
		entries = append(entries, si)
		b = b[12+n:]
	}
	return entries, false
}

// ManifestInfo describes how a store's manifest was materialized at
// Open: which schema version was found and how the segment index
// split between checkpoint and log tail. roamstore ls/verify surface
// it; it carries no information replay needs.
type ManifestInfo struct {
	// Version is the manifest schema version found on disk (1 =
	// MANIFEST.json, 2 = MANIFEST.ckpt + MANIFEST.log).
	Version int
	// CheckpointSegments counts the segments carried by the
	// checkpoint (always 0 for v1 stores).
	CheckpointSegments int
	// TailSegments counts the segments recovered from the log past
	// the checkpoint's coverage.
	TailSegments int
	// TornLogTail reports that trailing bytes of MANIFEST.log were
	// discarded as incomplete — the normal residue of a crash
	// mid-seal.
	TornLogTail bool
}

// loadManifest reads a store's manifest, preferring the v2
// checkpoint+log pair and falling back to the v1 MANIFEST.json. The
// returned manifest always has TotalRecords recomputed from its
// segment list and LogEntries cleared (it describes a checkpoint
// file, not a materialized manifest).
func loadManifest(dir string) (Manifest, ManifestInfo, error) {
	var man Manifest
	var info ManifestInfo
	ckptRaw, err := os.ReadFile(filepath.Join(dir, ManifestCheckpointName))
	switch {
	case err == nil:
		if err := json.Unmarshal(ckptRaw, &man); err != nil {
			return man, info, fmt.Errorf("store: parse %s: %w", ManifestCheckpointName, err)
		}
		if man.Version != manifestVersionV2 {
			return man, info, fmt.Errorf("store: unsupported manifest version %d in %s", man.Version, ManifestCheckpointName)
		}
		info.Version = manifestVersionV2
		info.CheckpointSegments = len(man.Segments)
		logRaw, err := os.ReadFile(filepath.Join(dir, ManifestLogName))
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return man, info, fmt.Errorf("store: read %s: %w", ManifestLogName, err)
		}
		entries, torn := decodeLogEntries(logRaw)
		info.TornLogTail = torn
		if len(entries) > man.LogEntries {
			tail := entries[man.LogEntries:]
			info.TailSegments = len(tail)
			man.Segments = append(man.Segments, tail...)
		}
	case errors.Is(err, fs.ErrNotExist):
		raw, jerr := os.ReadFile(filepath.Join(dir, ManifestName))
		if jerr != nil {
			return man, info, fmt.Errorf("store: read manifest: %w", jerr)
		}
		if err := json.Unmarshal(raw, &man); err != nil {
			return man, info, fmt.Errorf("store: parse %s: %w", ManifestName, err)
		}
		if man.Version != manifestVersionV1 {
			return man, info, fmt.Errorf("store: unsupported manifest version %d in %s", man.Version, ManifestName)
		}
		info.Version = manifestVersionV1
	default:
		return man, info, fmt.Errorf("store: read manifest: %w", err)
	}
	man.LogEntries = 0
	var total int64
	for i := range man.Segments {
		total += int64(man.Segments[i].Records)
	}
	man.TotalRecords = total
	return man, info, nil
}

// writeCheckpoint atomically replaces the store's MANIFEST.ckpt with
// man: write to a temp file, fsync it, rename into place, then fsync
// the directory so the rename itself is durable. man.LogEntries must
// already state how many log entries the snapshot covers.
func writeCheckpoint(dir string, man *Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode checkpoint: %w", err)
	}
	data = append(data, '\n')
	path := filepath.Join(dir, ManifestCheckpointName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// storeExists reports whether dir already holds a store of any
// manifest version — the refuse-to-overwrite check writers run.
func storeExists(dir string) bool {
	for _, name := range []string{ManifestCheckpointName, ManifestLogName, ManifestName} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// syncDir fsyncs a directory so a just-renamed or just-created entry
// in it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// equalSegmentInfo reports whether two index entries agree field for
// field, including the Bloom filter bytes. Verification uses it to
// cross-check footers against manifest entries.
func equalSegmentInfo(a, b *SegmentInfo) bool {
	return a.Name == b.Name &&
		a.Records == b.Records &&
		a.Bytes == b.Bytes &&
		a.BodyBytes == b.BodyBytes &&
		a.BodyCRC == b.BodyCRC &&
		a.MinDay == b.MinDay &&
		a.MaxDay == b.MaxDay &&
		a.MinDevice == b.MinDevice &&
		a.MaxDevice == b.MaxDevice &&
		a.VisitedOverflow == b.VisitedOverflow &&
		equalVisited(a.Visited, b.Visited) &&
		a.BloomHashes == b.BloomHashes &&
		bytes.Equal(a.Bloom, b.Bloom)
}
