package mccmnc

// countryTable is the curated country registry. MCC values follow the
// ITU E.212 allocation; centroids are rough population centroids used
// only to place simulated radio sectors and to measure home↔visited
// distances. The EU flag marks membership of the EU/EEA "roam like at
// home" regulation zone as of the paper's measurement window (April
// 2019 — the UK is still inside).
var countryTable = []Country{
	// Europe.
	{MCC: 202, ISO: "GR", Name: "Greece", Region: RegionEurope, Lat: 38.0, Lon: 23.7, EU: true},
	{MCC: 204, ISO: "NL", Name: "Netherlands", Region: RegionEurope, Lat: 52.2, Lon: 5.3, EU: true},
	{MCC: 206, ISO: "BE", Name: "Belgium", Region: RegionEurope, Lat: 50.8, Lon: 4.4, EU: true},
	{MCC: 208, ISO: "FR", Name: "France", Region: RegionEurope, Lat: 48.9, Lon: 2.3, EU: true},
	{MCC: 214, ISO: "ES", Name: "Spain", Region: RegionEurope, Lat: 40.4, Lon: -3.7, EU: true},
	{MCC: 216, ISO: "HU", Name: "Hungary", Region: RegionEurope, Lat: 47.5, Lon: 19.0, EU: true},
	{MCC: 219, ISO: "HR", Name: "Croatia", Region: RegionEurope, Lat: 45.8, Lon: 16.0, EU: true},
	{MCC: 220, ISO: "RS", Name: "Serbia", Region: RegionEurope, Lat: 44.8, Lon: 20.5},
	{MCC: 222, ISO: "IT", Name: "Italy", Region: RegionEurope, Lat: 41.9, Lon: 12.5, EU: true},
	{MCC: 226, ISO: "RO", Name: "Romania", Region: RegionEurope, Lat: 44.4, Lon: 26.1, EU: true},
	{MCC: 228, ISO: "CH", Name: "Switzerland", Region: RegionEurope, Lat: 46.9, Lon: 7.5},
	{MCC: 230, ISO: "CZ", Name: "Czechia", Region: RegionEurope, Lat: 50.1, Lon: 14.4, EU: true},
	{MCC: 231, ISO: "SK", Name: "Slovakia", Region: RegionEurope, Lat: 48.1, Lon: 17.1, EU: true},
	{MCC: 232, ISO: "AT", Name: "Austria", Region: RegionEurope, Lat: 48.2, Lon: 16.4, EU: true},
	{MCC: 234, ISO: "GB", Name: "United Kingdom", Region: RegionEurope, Lat: 51.5, Lon: -0.1, EU: true},
	{MCC: 238, ISO: "DK", Name: "Denmark", Region: RegionEurope, Lat: 55.7, Lon: 12.6, EU: true},
	{MCC: 240, ISO: "SE", Name: "Sweden", Region: RegionEurope, Lat: 59.3, Lon: 18.1, EU: true},
	{MCC: 242, ISO: "NO", Name: "Norway", Region: RegionEurope, Lat: 59.9, Lon: 10.8, EU: true},
	{MCC: 244, ISO: "FI", Name: "Finland", Region: RegionEurope, Lat: 60.2, Lon: 24.9, EU: true},
	{MCC: 246, ISO: "LT", Name: "Lithuania", Region: RegionEurope, Lat: 54.7, Lon: 25.3, EU: true},
	{MCC: 247, ISO: "LV", Name: "Latvia", Region: RegionEurope, Lat: 56.9, Lon: 24.1, EU: true},
	{MCC: 248, ISO: "EE", Name: "Estonia", Region: RegionEurope, Lat: 59.4, Lon: 24.8, EU: true},
	{MCC: 255, ISO: "UA", Name: "Ukraine", Region: RegionEurope, Lat: 50.5, Lon: 30.5},
	{MCC: 260, ISO: "PL", Name: "Poland", Region: RegionEurope, Lat: 52.2, Lon: 21.0, EU: true},
	{MCC: 262, ISO: "DE", Name: "Germany", Region: RegionEurope, Lat: 52.5, Lon: 13.4, EU: true},
	{MCC: 268, ISO: "PT", Name: "Portugal", Region: RegionEurope, Lat: 38.7, Lon: -9.1, EU: true},
	{MCC: 270, ISO: "LU", Name: "Luxembourg", Region: RegionEurope, Lat: 49.6, Lon: 6.1, EU: true},
	{MCC: 272, ISO: "IE", Name: "Ireland", Region: RegionEurope, Lat: 53.3, Lon: -6.2, EU: true},
	{MCC: 274, ISO: "IS", Name: "Iceland", Region: RegionEurope, Lat: 64.1, Lon: -21.9, EU: true},
	{MCC: 278, ISO: "MT", Name: "Malta", Region: RegionEurope, Lat: 35.9, Lon: 14.5, EU: true},
	{MCC: 280, ISO: "CY", Name: "Cyprus", Region: RegionEurope, Lat: 35.2, Lon: 33.4, EU: true},
	{MCC: 284, ISO: "BG", Name: "Bulgaria", Region: RegionEurope, Lat: 42.7, Lon: 23.3, EU: true},
	{MCC: 286, ISO: "TR", Name: "Turkey", Region: RegionMEA, Lat: 39.9, Lon: 32.9},
	{MCC: 293, ISO: "SI", Name: "Slovenia", Region: RegionEurope, Lat: 46.1, Lon: 14.5, EU: true},

	// Latin America.
	{MCC: 334, ISO: "MX", Name: "Mexico", Region: RegionLatAm, Lat: 19.4, Lon: -99.1},
	{MCC: 370, ISO: "DO", Name: "Dominican Republic", Region: RegionLatAm, Lat: 18.5, Lon: -69.9},
	{MCC: 704, ISO: "GT", Name: "Guatemala", Region: RegionLatAm, Lat: 14.6, Lon: -90.5},
	{MCC: 706, ISO: "SV", Name: "El Salvador", Region: RegionLatAm, Lat: 13.7, Lon: -89.2},
	{MCC: 708, ISO: "HN", Name: "Honduras", Region: RegionLatAm, Lat: 14.1, Lon: -87.2},
	{MCC: 710, ISO: "NI", Name: "Nicaragua", Region: RegionLatAm, Lat: 12.1, Lon: -86.3},
	{MCC: 712, ISO: "CR", Name: "Costa Rica", Region: RegionLatAm, Lat: 9.9, Lon: -84.1},
	{MCC: 714, ISO: "PA", Name: "Panama", Region: RegionLatAm, Lat: 9.0, Lon: -79.5},
	{MCC: 716, ISO: "PE", Name: "Peru", Region: RegionLatAm, Lat: -12.0, Lon: -77.0},
	{MCC: 722, ISO: "AR", Name: "Argentina", Region: RegionLatAm, Lat: -34.6, Lon: -58.4},
	{MCC: 724, ISO: "BR", Name: "Brazil", Region: RegionLatAm, Lat: -23.6, Lon: -46.6},
	{MCC: 730, ISO: "CL", Name: "Chile", Region: RegionLatAm, Lat: -33.4, Lon: -70.7},
	{MCC: 732, ISO: "CO", Name: "Colombia", Region: RegionLatAm, Lat: 4.6, Lon: -74.1},
	{MCC: 734, ISO: "VE", Name: "Venezuela", Region: RegionLatAm, Lat: 10.5, Lon: -66.9},
	{MCC: 736, ISO: "BO", Name: "Bolivia", Region: RegionLatAm, Lat: -16.5, Lon: -68.1},
	{MCC: 740, ISO: "EC", Name: "Ecuador", Region: RegionLatAm, Lat: -0.2, Lon: -78.5},
	{MCC: 744, ISO: "PY", Name: "Paraguay", Region: RegionLatAm, Lat: -25.3, Lon: -57.6},
	{MCC: 748, ISO: "UY", Name: "Uruguay", Region: RegionLatAm, Lat: -34.9, Lon: -56.2},

	// North America.
	{MCC: 302, ISO: "CA", Name: "Canada", Region: RegionNorthAmerica, Lat: 43.7, Lon: -79.4},
	{MCC: 310, ISO: "US", Name: "United States", Region: RegionNorthAmerica, Lat: 40.7, Lon: -74.0},

	// Asia-Pacific.
	{MCC: 404, ISO: "IN", Name: "India", Region: RegionAPAC, Lat: 28.6, Lon: 77.2},
	{MCC: 440, ISO: "JP", Name: "Japan", Region: RegionAPAC, Lat: 35.7, Lon: 139.7},
	{MCC: 450, ISO: "KR", Name: "South Korea", Region: RegionAPAC, Lat: 37.6, Lon: 127.0},
	{MCC: 452, ISO: "VN", Name: "Vietnam", Region: RegionAPAC, Lat: 21.0, Lon: 105.9},
	{MCC: 454, ISO: "HK", Name: "Hong Kong", Region: RegionAPAC, Lat: 22.3, Lon: 114.2},
	{MCC: 460, ISO: "CN", Name: "China", Region: RegionAPAC, Lat: 39.9, Lon: 116.4},
	{MCC: 466, ISO: "TW", Name: "Taiwan", Region: RegionAPAC, Lat: 25.0, Lon: 121.6},
	{MCC: 502, ISO: "MY", Name: "Malaysia", Region: RegionAPAC, Lat: 3.1, Lon: 101.7},
	{MCC: 505, ISO: "AU", Name: "Australia", Region: RegionAPAC, Lat: -33.9, Lon: 151.2},
	{MCC: 510, ISO: "ID", Name: "Indonesia", Region: RegionAPAC, Lat: -6.2, Lon: 106.8},
	{MCC: 515, ISO: "PH", Name: "Philippines", Region: RegionAPAC, Lat: 14.6, Lon: 121.0},
	{MCC: 520, ISO: "TH", Name: "Thailand", Region: RegionAPAC, Lat: 13.8, Lon: 100.5},
	{MCC: 525, ISO: "SG", Name: "Singapore", Region: RegionAPAC, Lat: 1.3, Lon: 103.9},
	{MCC: 530, ISO: "NZ", Name: "New Zealand", Region: RegionAPAC, Lat: -36.8, Lon: 174.8},

	// Middle East and Africa.
	{MCC: 416, ISO: "JO", Name: "Jordan", Region: RegionMEA, Lat: 32.0, Lon: 35.9},
	{MCC: 419, ISO: "KW", Name: "Kuwait", Region: RegionMEA, Lat: 29.4, Lon: 48.0},
	{MCC: 420, ISO: "SA", Name: "Saudi Arabia", Region: RegionMEA, Lat: 24.7, Lon: 46.7},
	{MCC: 424, ISO: "AE", Name: "United Arab Emirates", Region: RegionMEA, Lat: 25.2, Lon: 55.3},
	{MCC: 425, ISO: "IL", Name: "Israel", Region: RegionMEA, Lat: 32.1, Lon: 34.8},
	{MCC: 427, ISO: "QA", Name: "Qatar", Region: RegionMEA, Lat: 25.3, Lon: 51.5},
	{MCC: 602, ISO: "EG", Name: "Egypt", Region: RegionMEA, Lat: 30.0, Lon: 31.2},
	{MCC: 603, ISO: "DZ", Name: "Algeria", Region: RegionMEA, Lat: 36.8, Lon: 3.1},
	{MCC: 604, ISO: "MA", Name: "Morocco", Region: RegionMEA, Lat: 33.6, Lon: -7.6},
	{MCC: 605, ISO: "TN", Name: "Tunisia", Region: RegionMEA, Lat: 36.8, Lon: 10.2},
	{MCC: 620, ISO: "GH", Name: "Ghana", Region: RegionMEA, Lat: 5.6, Lon: -0.2},
	{MCC: 621, ISO: "NG", Name: "Nigeria", Region: RegionMEA, Lat: 6.5, Lon: 3.4},
	{MCC: 639, ISO: "KE", Name: "Kenya", Region: RegionMEA, Lat: -1.3, Lon: 36.8},
	{MCC: 655, ISO: "ZA", Name: "South Africa", Region: RegionMEA, Lat: -26.2, Lon: 28.0},
}

// secondaryMCC maps additional MCC allocations onto countries already
// registered under their primary MCC.
var secondaryMCC = map[uint16]string{
	235: "GB", // UK secondary allocation
	311: "US",
	312: "US",
	313: "US",
	405: "IN",
	441: "JP",
}
