package mccmnc

// operatorTable is the curated operator registry. PLMNs are written in
// concatenated form: a 5-digit string means a 2-digit MNC, a 6-digit
// string a 3-digit MNC (the NANP-region countries and a few others use
// 3-digit MNCs). Names follow the brands operating during the paper's
// measurement window (late 2018 / early 2019).
var operatorTable = []Operator{
	// Greece.
	{PLMN: MustParse("20201"), Name: "Cosmote", ISO: "GR"},
	{PLMN: MustParse("20205"), Name: "Vodafone GR", ISO: "GR"},
	{PLMN: MustParse("20210"), Name: "Wind Hellas", ISO: "GR"},
	// Netherlands — 204-04 is the operator the paper finds provisioning
	// every roaming UK smart meter.
	{PLMN: MustParse("20404"), Name: "Vodafone NL", ISO: "NL"},
	{PLMN: MustParse("20408"), Name: "KPN", ISO: "NL"},
	{PLMN: MustParse("20416"), Name: "T-Mobile NL", ISO: "NL"},
	// Belgium.
	{PLMN: MustParse("20601"), Name: "Proximus", ISO: "BE"},
	{PLMN: MustParse("20610"), Name: "Orange BE", ISO: "BE"},
	{PLMN: MustParse("20620"), Name: "BASE", ISO: "BE"},
	// France.
	{PLMN: MustParse("20801"), Name: "Orange FR", ISO: "FR"},
	{PLMN: MustParse("20810"), Name: "SFR", ISO: "FR"},
	{PLMN: MustParse("20815"), Name: "Free Mobile", ISO: "FR"},
	{PLMN: MustParse("20820"), Name: "Bouygues", ISO: "FR"},
	// Spain — 214-07 is the paper's anonymized "ES" HMNO issuing 52.3%
	// of the platform's IoT SIMs.
	{PLMN: MustParse("21401"), Name: "Vodafone ES", ISO: "ES"},
	{PLMN: MustParse("21403"), Name: "Orange ES", ISO: "ES"},
	{PLMN: MustParse("21407"), Name: "Movistar", ISO: "ES"},
	// Hungary.
	{PLMN: MustParse("21601"), Name: "Yettel HU", ISO: "HU"},
	{PLMN: MustParse("21630"), Name: "T-Mobile HU", ISO: "HU"},
	{PLMN: MustParse("21670"), Name: "Vodafone HU", ISO: "HU"},
	// Croatia.
	{PLMN: MustParse("21901"), Name: "T-HT", ISO: "HR"},
	{PLMN: MustParse("21910"), Name: "A1 HR", ISO: "HR"},
	// Serbia.
	{PLMN: MustParse("22001"), Name: "Telenor RS", ISO: "RS"},
	{PLMN: MustParse("22003"), Name: "mts", ISO: "RS"},
	// Italy.
	{PLMN: MustParse("22201"), Name: "TIM", ISO: "IT"},
	{PLMN: MustParse("22210"), Name: "Vodafone IT", ISO: "IT"},
	{PLMN: MustParse("22288"), Name: "WindTre", ISO: "IT"},
	// Romania.
	{PLMN: MustParse("22601"), Name: "Vodafone RO", ISO: "RO"},
	{PLMN: MustParse("22603"), Name: "Telekom RO", ISO: "RO"},
	{PLMN: MustParse("22610"), Name: "Orange RO", ISO: "RO"},
	// Switzerland.
	{PLMN: MustParse("22801"), Name: "Swisscom", ISO: "CH"},
	{PLMN: MustParse("22802"), Name: "Sunrise", ISO: "CH"},
	{PLMN: MustParse("22803"), Name: "Salt", ISO: "CH"},
	// Czechia.
	{PLMN: MustParse("23001"), Name: "T-Mobile CZ", ISO: "CZ"},
	{PLMN: MustParse("23002"), Name: "O2 CZ", ISO: "CZ"},
	{PLMN: MustParse("23003"), Name: "Vodafone CZ", ISO: "CZ"},
	// Slovakia.
	{PLMN: MustParse("23101"), Name: "Orange SK", ISO: "SK"},
	{PLMN: MustParse("23102"), Name: "Telekom SK", ISO: "SK"},
	// Austria.
	{PLMN: MustParse("23201"), Name: "A1", ISO: "AT"},
	{PLMN: MustParse("23203"), Name: "Magenta", ISO: "AT"},
	{PLMN: MustParse("23205"), Name: "Drei", ISO: "AT"},
	// United Kingdom — 234-10 models the paper's visited MNO.
	{PLMN: MustParse("23410"), Name: "O2 UK", ISO: "GB"},
	{PLMN: MustParse("23415"), Name: "Vodafone UK", ISO: "GB"},
	{PLMN: MustParse("23420"), Name: "Three UK", ISO: "GB"},
	{PLMN: MustParse("23430"), Name: "EE", ISO: "GB"},
	// Denmark.
	{PLMN: MustParse("23801"), Name: "TDC", ISO: "DK"},
	{PLMN: MustParse("23802"), Name: "Telenor DK", ISO: "DK"},
	{PLMN: MustParse("23820"), Name: "Telia DK", ISO: "DK"},
	// Sweden — home of the paper's second-largest inbound-roamer group.
	{PLMN: MustParse("24001"), Name: "Telia", ISO: "SE"},
	{PLMN: MustParse("24007"), Name: "Tele2", ISO: "SE"},
	{PLMN: MustParse("24008"), Name: "Telenor SE", ISO: "SE"},
	// Norway.
	{PLMN: MustParse("24201"), Name: "Telenor NO", ISO: "NO"},
	{PLMN: MustParse("24202"), Name: "Telia NO", ISO: "NO"},
	// Finland.
	{PLMN: MustParse("24405"), Name: "Elisa", ISO: "FI"},
	{PLMN: MustParse("24412"), Name: "DNA", ISO: "FI"},
	{PLMN: MustParse("24491"), Name: "Telia FI", ISO: "FI"},
	// Lithuania.
	{PLMN: MustParse("24601"), Name: "Telia LT", ISO: "LT"},
	{PLMN: MustParse("24602"), Name: "Bite", ISO: "LT"},
	// Latvia.
	{PLMN: MustParse("24701"), Name: "LMT", ISO: "LV"},
	{PLMN: MustParse("24702"), Name: "Tele2 LV", ISO: "LV"},
	// Estonia.
	{PLMN: MustParse("24801"), Name: "Telia EE", ISO: "EE"},
	{PLMN: MustParse("24802"), Name: "Elisa EE", ISO: "EE"},
	// Ukraine.
	{PLMN: MustParse("25501"), Name: "Vodafone UA", ISO: "UA"},
	{PLMN: MustParse("25503"), Name: "Kyivstar", ISO: "UA"},
	// Poland.
	{PLMN: MustParse("26001"), Name: "Plus", ISO: "PL"},
	{PLMN: MustParse("26002"), Name: "T-Mobile PL", ISO: "PL"},
	{PLMN: MustParse("26003"), Name: "Orange PL", ISO: "PL"},
	{PLMN: MustParse("26006"), Name: "Play", ISO: "PL"},
	// Germany — 262-01 models the paper's anonymized "DE" HMNO.
	{PLMN: MustParse("26201"), Name: "Telekom DE", ISO: "DE"},
	{PLMN: MustParse("26202"), Name: "Vodafone DE", ISO: "DE"},
	{PLMN: MustParse("26203"), Name: "O2 DE", ISO: "DE"},
	// Portugal.
	{PLMN: MustParse("26801"), Name: "Vodafone PT", ISO: "PT"},
	{PLMN: MustParse("26803"), Name: "NOS", ISO: "PT"},
	{PLMN: MustParse("26806"), Name: "MEO", ISO: "PT"},
	// Luxembourg.
	{PLMN: MustParse("27001"), Name: "POST", ISO: "LU"},
	{PLMN: MustParse("27077"), Name: "Tango", ISO: "LU"},
	// Ireland.
	{PLMN: MustParse("27201"), Name: "Vodafone IE", ISO: "IE"},
	{PLMN: MustParse("27202"), Name: "Three IE", ISO: "IE"},
	{PLMN: MustParse("27203"), Name: "Eir", ISO: "IE"},
	// Iceland.
	{PLMN: MustParse("27401"), Name: "Siminn", ISO: "IS"},
	{PLMN: MustParse("27402"), Name: "Vodafone IS", ISO: "IS"},
	// Malta.
	{PLMN: MustParse("27801"), Name: "Epic MT", ISO: "MT"},
	{PLMN: MustParse("27821"), Name: "GO", ISO: "MT"},
	// Cyprus.
	{PLMN: MustParse("28001"), Name: "Cyta", ISO: "CY"},
	{PLMN: MustParse("28010"), Name: "Epic CY", ISO: "CY"},
	// Bulgaria.
	{PLMN: MustParse("28401"), Name: "A1 BG", ISO: "BG"},
	{PLMN: MustParse("28403"), Name: "Vivacom", ISO: "BG"},
	{PLMN: MustParse("28405"), Name: "Telenor BG", ISO: "BG"},
	// Turkey.
	{PLMN: MustParse("28601"), Name: "Turkcell", ISO: "TR"},
	{PLMN: MustParse("28602"), Name: "Vodafone TR", ISO: "TR"},
	{PLMN: MustParse("28603"), Name: "Turk Telekom", ISO: "TR"},
	// Slovenia.
	{PLMN: MustParse("29340"), Name: "A1 SI", ISO: "SI"},
	{PLMN: MustParse("29341"), Name: "Telekom SI", ISO: "SI"},
	// Canada (3-digit MNCs).
	{PLMN: MustParse("302220"), Name: "Telus", ISO: "CA"},
	{PLMN: MustParse("302610"), Name: "Bell", ISO: "CA"},
	{PLMN: MustParse("302720"), Name: "Rogers", ISO: "CA"},
	// United States (3-digit MNCs).
	{PLMN: MustParse("310012"), Name: "Verizon", ISO: "US"},
	{PLMN: MustParse("310260"), Name: "T-Mobile US", ISO: "US"},
	{PLMN: MustParse("310410"), Name: "AT&T", ISO: "US"},
	// Mexico (3-digit MNCs) — 334-020 models the paper's "MX" HMNO.
	{PLMN: MustParse("334020"), Name: "Telcel", ISO: "MX"},
	{PLMN: MustParse("334030"), Name: "Movistar MX", ISO: "MX"},
	{PLMN: MustParse("334050"), Name: "AT&T MX", ISO: "MX"},
	// Dominican Republic.
	{PLMN: MustParse("37001"), Name: "Altice DO", ISO: "DO"},
	{PLMN: MustParse("37002"), Name: "Claro DO", ISO: "DO"},
	// India.
	{PLMN: MustParse("40410"), Name: "Airtel", ISO: "IN"},
	{PLMN: MustParse("40420"), Name: "Vodafone Idea", ISO: "IN"},
	// Jordan.
	{PLMN: MustParse("41601"), Name: "Zain JO", ISO: "JO"},
	{PLMN: MustParse("41677"), Name: "Orange JO", ISO: "JO"},
	// Kuwait.
	{PLMN: MustParse("41902"), Name: "Zain KW", ISO: "KW"},
	{PLMN: MustParse("41903"), Name: "Ooredoo KW", ISO: "KW"},
	// Saudi Arabia.
	{PLMN: MustParse("42001"), Name: "STC", ISO: "SA"},
	{PLMN: MustParse("42003"), Name: "Mobily", ISO: "SA"},
	{PLMN: MustParse("42004"), Name: "Zain SA", ISO: "SA"},
	// United Arab Emirates.
	{PLMN: MustParse("42402"), Name: "Etisalat", ISO: "AE"},
	{PLMN: MustParse("42403"), Name: "du", ISO: "AE"},
	// Israel.
	{PLMN: MustParse("42501"), Name: "Partner", ISO: "IL"},
	{PLMN: MustParse("42502"), Name: "Cellcom IL", ISO: "IL"},
	{PLMN: MustParse("42503"), Name: "Pelephone", ISO: "IL"},
	// Qatar.
	{PLMN: MustParse("42701"), Name: "Ooredoo QA", ISO: "QA"},
	{PLMN: MustParse("42702"), Name: "Vodafone QA", ISO: "QA"},
	// Japan.
	{PLMN: MustParse("44010"), Name: "NTT docomo", ISO: "JP"},
	{PLMN: MustParse("44020"), Name: "SoftBank", ISO: "JP"},
	// South Korea.
	{PLMN: MustParse("45005"), Name: "SK Telecom", ISO: "KR"},
	{PLMN: MustParse("45006"), Name: "LG U+", ISO: "KR"},
	{PLMN: MustParse("45008"), Name: "KT", ISO: "KR"},
	// Vietnam.
	{PLMN: MustParse("45201"), Name: "MobiFone", ISO: "VN"},
	{PLMN: MustParse("45202"), Name: "Vinaphone", ISO: "VN"},
	{PLMN: MustParse("45204"), Name: "Viettel", ISO: "VN"},
	// Hong Kong.
	{PLMN: MustParse("45400"), Name: "CSL", ISO: "HK"},
	{PLMN: MustParse("45403"), Name: "3 HK", ISO: "HK"},
	{PLMN: MustParse("45406"), Name: "SmarTone", ISO: "HK"},
	// China.
	{PLMN: MustParse("46000"), Name: "China Mobile", ISO: "CN"},
	{PLMN: MustParse("46001"), Name: "China Unicom", ISO: "CN"},
	{PLMN: MustParse("46003"), Name: "China Telecom", ISO: "CN"},
	// Taiwan.
	{PLMN: MustParse("46601"), Name: "FarEasTone", ISO: "TW"},
	{PLMN: MustParse("46692"), Name: "Chunghwa", ISO: "TW"},
	{PLMN: MustParse("46697"), Name: "Taiwan Mobile", ISO: "TW"},
	// Malaysia.
	{PLMN: MustParse("50212"), Name: "Maxis", ISO: "MY"},
	{PLMN: MustParse("50213"), Name: "Celcom", ISO: "MY"},
	{PLMN: MustParse("50216"), Name: "Digi", ISO: "MY"},
	// Australia.
	{PLMN: MustParse("50501"), Name: "Telstra", ISO: "AU"},
	{PLMN: MustParse("50502"), Name: "Optus", ISO: "AU"},
	{PLMN: MustParse("50503"), Name: "Vodafone AU", ISO: "AU"},
	// Indonesia.
	{PLMN: MustParse("51001"), Name: "Indosat", ISO: "ID"},
	{PLMN: MustParse("51010"), Name: "Telkomsel", ISO: "ID"},
	{PLMN: MustParse("51011"), Name: "XL Axiata", ISO: "ID"},
	// Philippines.
	{PLMN: MustParse("51502"), Name: "Globe", ISO: "PH"},
	{PLMN: MustParse("51503"), Name: "Smart", ISO: "PH"},
	// Thailand.
	{PLMN: MustParse("52001"), Name: "AIS", ISO: "TH"},
	{PLMN: MustParse("52004"), Name: "TrueMove", ISO: "TH"},
	{PLMN: MustParse("52005"), Name: "dtac", ISO: "TH"},
	// Singapore.
	{PLMN: MustParse("52501"), Name: "Singtel", ISO: "SG"},
	{PLMN: MustParse("52503"), Name: "M1", ISO: "SG"},
	{PLMN: MustParse("52505"), Name: "StarHub", ISO: "SG"},
	// New Zealand.
	{PLMN: MustParse("53001"), Name: "Vodafone NZ", ISO: "NZ"},
	{PLMN: MustParse("53005"), Name: "Spark", ISO: "NZ"},
	// Egypt.
	{PLMN: MustParse("60201"), Name: "Orange EG", ISO: "EG"},
	{PLMN: MustParse("60202"), Name: "Vodafone EG", ISO: "EG"},
	{PLMN: MustParse("60203"), Name: "Etisalat EG", ISO: "EG"},
	// Algeria.
	{PLMN: MustParse("60301"), Name: "Mobilis", ISO: "DZ"},
	{PLMN: MustParse("60302"), Name: "Djezzy", ISO: "DZ"},
	{PLMN: MustParse("60303"), Name: "Ooredoo DZ", ISO: "DZ"},
	// Morocco.
	{PLMN: MustParse("60400"), Name: "Orange MA", ISO: "MA"},
	{PLMN: MustParse("60401"), Name: "Maroc Telecom", ISO: "MA"},
	// Tunisia.
	{PLMN: MustParse("60501"), Name: "Orange TN", ISO: "TN"},
	{PLMN: MustParse("60502"), Name: "Tunisie Telecom", ISO: "TN"},
	{PLMN: MustParse("60503"), Name: "Ooredoo TN", ISO: "TN"},
	// Ghana.
	{PLMN: MustParse("62001"), Name: "MTN GH", ISO: "GH"},
	{PLMN: MustParse("62002"), Name: "Vodafone GH", ISO: "GH"},
	// Nigeria.
	{PLMN: MustParse("62120"), Name: "Airtel NG", ISO: "NG"},
	{PLMN: MustParse("62130"), Name: "MTN NG", ISO: "NG"},
	{PLMN: MustParse("62150"), Name: "Glo", ISO: "NG"},
	// Kenya.
	{PLMN: MustParse("63902"), Name: "Safaricom", ISO: "KE"},
	{PLMN: MustParse("63903"), Name: "Airtel KE", ISO: "KE"},
	// South Africa.
	{PLMN: MustParse("65501"), Name: "Vodacom", ISO: "ZA"},
	{PLMN: MustParse("65507"), Name: "Cell C", ISO: "ZA"},
	{PLMN: MustParse("65510"), Name: "MTN", ISO: "ZA"},
	// Guatemala.
	{PLMN: MustParse("70401"), Name: "Claro GT", ISO: "GT"},
	{PLMN: MustParse("70403"), Name: "Movistar GT", ISO: "GT"},
	// El Salvador.
	{PLMN: MustParse("70601"), Name: "Claro SV", ISO: "SV"},
	{PLMN: MustParse("70603"), Name: "Tigo SV", ISO: "SV"},
	// Honduras.
	{PLMN: MustParse("70802"), Name: "Tigo HN", ISO: "HN"},
	// Nicaragua.
	{PLMN: MustParse("71021"), Name: "Claro NI", ISO: "NI"},
	{PLMN: MustParse("71030"), Name: "Movistar NI", ISO: "NI"},
	// Costa Rica.
	{PLMN: MustParse("71201"), Name: "Kolbi", ISO: "CR"},
	{PLMN: MustParse("71204"), Name: "Movistar CR", ISO: "CR"},
	// Panama.
	{PLMN: MustParse("71401"), Name: "Cable & Wireless PA", ISO: "PA"},
	{PLMN: MustParse("71402"), Name: "Movistar PA", ISO: "PA"},
	// Peru.
	{PLMN: MustParse("71606"), Name: "Movistar PE", ISO: "PE"},
	{PLMN: MustParse("71610"), Name: "Claro PE", ISO: "PE"},
	{PLMN: MustParse("71617"), Name: "Entel PE", ISO: "PE"},
	// Argentina (3-digit MNCs) — 722-070 models the paper's "AR" HMNO.
	{PLMN: MustParse("722070"), Name: "Movistar AR", ISO: "AR"},
	{PLMN: MustParse("722310"), Name: "Claro AR", ISO: "AR"},
	{PLMN: MustParse("722340"), Name: "Personal", ISO: "AR"},
	// Brazil.
	{PLMN: MustParse("72402"), Name: "TIM BR", ISO: "BR"},
	{PLMN: MustParse("72405"), Name: "Claro BR", ISO: "BR"},
	{PLMN: MustParse("72410"), Name: "Vivo", ISO: "BR"},
	// Chile.
	{PLMN: MustParse("73001"), Name: "Entel", ISO: "CL"},
	{PLMN: MustParse("73002"), Name: "Movistar CL", ISO: "CL"},
	{PLMN: MustParse("73003"), Name: "Claro CL", ISO: "CL"},
	// Colombia (3-digit MNCs).
	{PLMN: MustParse("732101"), Name: "Claro CO", ISO: "CO"},
	{PLMN: MustParse("732103"), Name: "Tigo CO", ISO: "CO"},
	{PLMN: MustParse("732123"), Name: "Movistar CO", ISO: "CO"},
	// Venezuela.
	{PLMN: MustParse("73404"), Name: "Movistar VE", ISO: "VE"},
	{PLMN: MustParse("73406"), Name: "Movilnet", ISO: "VE"},
	// Bolivia.
	{PLMN: MustParse("73602"), Name: "Entel BO", ISO: "BO"},
	{PLMN: MustParse("73603"), Name: "Tigo BO", ISO: "BO"},
	// Ecuador.
	{PLMN: MustParse("74000"), Name: "Movistar EC", ISO: "EC"},
	{PLMN: MustParse("74001"), Name: "Claro EC", ISO: "EC"},
	// Paraguay.
	{PLMN: MustParse("74402"), Name: "Claro PY", ISO: "PY"},
	{PLMN: MustParse("74404"), Name: "Tigo PY", ISO: "PY"},
	{PLMN: MustParse("74405"), Name: "Personal PY", ISO: "PY"},
	// Uruguay.
	{PLMN: MustParse("74801"), Name: "Antel", ISO: "UY"},
	{PLMN: MustParse("74807"), Name: "Movistar UY", ISO: "UY"},
	{PLMN: MustParse("74810"), Name: "Claro UY", ISO: "UY"},
}
