package mccmnc

import (
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		in     string
		mcc    uint16
		mnc    uint16
		mncLen uint8
		str    string
	}{
		{"21407", 214, 7, 2, "214-07"},
		{"334020", 334, 20, 3, "334-020"},
		{"23410", 234, 10, 2, "234-10"},
		{"722310", 722, 310, 3, "722-310"},
		{"20404", 204, 4, 2, "204-04"},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if p.MCC != c.mcc || p.MNC != c.mnc || p.MNCLen != c.mncLen {
			t.Errorf("Parse(%q) = %+v", c.in, p)
		}
		if got := p.String(); got != c.str {
			t.Errorf("String(%q) = %q, want %q", c.in, got, c.str)
		}
		if got := p.Concat(); got != c.in {
			t.Errorf("Concat(%q) = %q", c.in, got)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, in := range []string{"", "2140", "2140777", "abcde", "21a07", "19901", "00000"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseConcatRoundTrip(t *testing.T) {
	// Property: for every registered operator, Parse(Concat(p)) == p.
	for _, op := range AllOperators() {
		got, err := Parse(op.PLMN.Concat())
		if err != nil {
			t.Fatalf("round trip %v: %v", op.PLMN, err)
		}
		if got != op.PLMN {
			t.Errorf("round trip %v -> %v", op.PLMN, got)
		}
	}
}

func TestRegistryConsistency(t *testing.T) {
	// Every operator's country must exist, and the operator's MCC must
	// resolve to that same country.
	for _, op := range AllOperators() {
		c, ok := CountryByISO(op.ISO)
		if !ok {
			t.Fatalf("operator %s references unknown country %q", op.Name, op.ISO)
		}
		byMCC, ok := CountryByMCC(op.PLMN.MCC)
		if !ok {
			t.Fatalf("operator %s: MCC %d not registered", op.Name, op.PLMN.MCC)
		}
		if byMCC.ISO != c.ISO {
			t.Errorf("operator %s: MCC %d maps to %s, operator says %s",
				op.Name, op.PLMN.MCC, byMCC.ISO, c.ISO)
		}
	}
}

func TestRegistryNoDuplicatePLMN(t *testing.T) {
	seen := map[PLMN]string{}
	for _, op := range operatorTable {
		if prev, dup := seen[op.PLMN]; dup {
			t.Errorf("duplicate PLMN %v: %s and %s", op.PLMN, prev, op.Name)
		}
		seen[op.PLMN] = op.Name
	}
}

func TestRegistryScale(t *testing.T) {
	// The paper's ES SIMs roam over 76+ countries; our registry must be
	// able to host a footprint of that order.
	if n := len(Countries()); n < 75 {
		t.Errorf("registry has %d countries, want >= 75", n)
	}
	if n := len(AllOperators()); n < 150 {
		t.Errorf("registry has %d operators, want >= 150", n)
	}
}

func TestPaperAnchors(t *testing.T) {
	// The specific networks the paper's narrative depends on.
	anchors := map[string]string{
		"21407":  "ES", // HMNO issuing 52.3% of IoT SIMs
		"334020": "MX",
		"722070": "AR",
		"26201":  "DE",
		"23410":  "GB", // visited MNO
		"20404":  "NL", // smart-meter SIM provisioner
		"24001":  "SE",
	}
	for concat, iso := range anchors {
		op, ok := Lookup(MustParse(concat))
		if !ok {
			t.Fatalf("anchor operator %s missing from registry", concat)
		}
		if op.ISO != iso {
			t.Errorf("anchor %s: country %s, want %s", concat, op.ISO, iso)
		}
	}
}

func TestSecondaryMCC(t *testing.T) {
	for mcc, iso := range map[uint16]string{235: "GB", 311: "US", 405: "IN"} {
		c, ok := CountryByMCC(mcc)
		if !ok || c.ISO != iso {
			t.Errorf("secondary MCC %d: got (%v,%v), want %s", mcc, c.ISO, ok, iso)
		}
	}
}

func TestSameCountry(t *testing.T) {
	gb1 := MustParse("23410")
	gb2 := PLMN{MCC: 235, MNC: 1, MNCLen: 2} // secondary UK MCC
	es := MustParse("21407")
	if !SameCountry(gb1, gb2) {
		t.Error("234-xx and 235-xx should be the same country (UK)")
	}
	if SameCountry(gb1, es) {
		t.Error("GB and ES must differ")
	}
}

func TestOperatorsIn(t *testing.T) {
	gb := OperatorsIn("GB")
	if len(gb) != 4 {
		t.Fatalf("GB operators = %d, want 4", len(gb))
	}
	for i := 1; i < len(gb); i++ {
		if !less(gb[i-1].PLMN, gb[i].PLMN) {
			t.Fatal("OperatorsIn must be sorted by PLMN")
		}
	}
	if len(OperatorsIn("XX")) != 0 {
		t.Error("unknown country should have no operators")
	}
}

func TestLookupToleratesMNCLenMismatch(t *testing.T) {
	// "21407" registered with MNCLen 2; a trace might report it as
	// 3-digit 214-007.
	alt := PLMN{MCC: 214, MNC: 7, MNCLen: 3}
	op, ok := Lookup(alt)
	if !ok || op.Name != "Movistar" {
		t.Errorf("Lookup with padded MNC failed: %+v %v", op, ok)
	}
}

func TestCountriesInRegion(t *testing.T) {
	eu := CountriesInRegion(RegionEurope)
	if len(eu) < 30 {
		t.Errorf("Europe has %d countries, want >= 30", len(eu))
	}
	latam := CountriesInRegion(RegionLatAm)
	if len(latam) < 15 {
		t.Errorf("LatAm has %d countries, want >= 15", len(latam))
	}
	// The carrier's PoP footprint is Europe+LatAm heavy, as in §3.
	if len(eu)+len(latam) <= len(CountriesInRegion(RegionAPAC))+len(CountriesInRegion(RegionMEA)) {
		t.Error("registry should be Europe/LatAm heavy to match the carrier footprint")
	}
}

func TestEUZone(t *testing.T) {
	for _, iso := range []string{"ES", "DE", "NL", "SE", "GB", "FR"} {
		c, _ := CountryByISO(iso)
		if !c.EU {
			t.Errorf("%s should be in the EU roaming zone (April 2019)", iso)
		}
	}
	for _, iso := range []string{"CH", "MX", "US", "AU"} {
		c, _ := CountryByISO(iso)
		if c.EU {
			t.Errorf("%s should not be in the EU roaming zone", iso)
		}
	}
}

func TestStringFormatProperty(t *testing.T) {
	// Property: String always renders MNC with its declared width.
	f := func(mcc uint16, mnc uint16, three bool) bool {
		mcc = 200 + mcc%800
		ln := uint8(2)
		mod := uint16(100)
		if three {
			ln = 3
			mod = 1000
		}
		p := PLMN{MCC: mcc, MNC: mnc % mod, MNCLen: ln}
		s := p.Concat()
		if len(s) != 3+int(ln) {
			return false
		}
		got, err := Parse(s)
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsZero(t *testing.T) {
	if !(PLMN{}).IsZero() {
		t.Error("zero PLMN should report IsZero")
	}
	if MustParse("21407").IsZero() {
		t.Error("non-zero PLMN must not report IsZero")
	}
}
