// Package mccmnc implements the E.212 public land mobile network
// (PLMN) identity plane: Mobile Country Codes, Mobile Network Codes,
// and a registry of countries and operators.
//
// The registry is a curated, real-world-shaped subset of the ITU E.212
// allocation: it covers the ~80 countries and the operators that the
// paper's M2M platform footprint spans (Europe and Latin America
// heavy, matching the carrier's points of presence), plus the home
// operators the paper anonymizes as ES/DE/MX/AR and the UK visited
// MNO with its NL/SE/ES inbound-roamer sources.
package mccmnc

import (
	"fmt"
	"sort"
	"strconv"
)

// PLMN identifies a public land mobile network: an MCC plus an MNC.
// MNCs are 2 or 3 digits and the digit count is significant (E.212
// "214-07" and a hypothetical "214-007" are different networks), so
// the length is carried alongside the value. PLMN is comparable and
// usable as a map key.
type PLMN struct {
	MCC    uint16
	MNC    uint16
	MNCLen uint8 // 2 or 3
}

// Parse parses a concatenated MCC+MNC string such as "21407" (2-digit
// MNC) or "334020" (3-digit MNC). Length decides the MNC width: 5
// characters mean a 2-digit MNC, 6 a 3-digit MNC.
func Parse(s string) (PLMN, error) {
	if len(s) != 5 && len(s) != 6 {
		return PLMN{}, fmt.Errorf("mccmnc: %q: want 5 or 6 digits, have %d", s, len(s))
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return PLMN{}, fmt.Errorf("mccmnc: %q: non-digit at position %d", s, i)
		}
	}
	mcc, _ := strconv.Atoi(s[:3])
	mnc, _ := strconv.Atoi(s[3:])
	if mcc < 200 || mcc > 999 {
		return PLMN{}, fmt.Errorf("mccmnc: %q: MCC %d outside geographic range [200,999]", s, mcc)
	}
	return PLMN{MCC: uint16(mcc), MNC: uint16(mnc), MNCLen: uint8(len(s) - 3)}, nil
}

// MustParse is Parse for static initialization; it panics on error.
func MustParse(s string) PLMN {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the PLMN in the conventional "MCC-MNC" form, e.g.
// "214-07" or "334-020".
func (p PLMN) String() string {
	return fmt.Sprintf("%03d-%0*d", p.MCC, int(p.MNCLen), p.MNC)
}

// Concat renders the PLMN as concatenated digits, e.g. "21407", the
// form used inside IMSIs and APN operator identifiers.
func (p PLMN) Concat() string {
	return fmt.Sprintf("%03d%0*d", p.MCC, int(p.MNCLen), p.MNC)
}

// IsZero reports whether p is the zero PLMN.
func (p PLMN) IsZero() bool { return p == PLMN{} }

// Region is a coarse geographic grouping used to model the carrier's
// point-of-presence footprint (strong in Europe and Latin America).
type Region uint8

// Regions of the world as the carrier footprint model sees them.
const (
	RegionUnknown Region = iota
	RegionEurope
	RegionLatAm
	RegionNorthAmerica
	RegionAPAC
	RegionMEA
)

var regionNames = [...]string{"unknown", "Europe", "LatAm", "NorthAmerica", "APAC", "MEA"}

func (r Region) String() string {
	if int(r) < len(regionNames) {
		return regionNames[r]
	}
	return "region(" + strconv.Itoa(int(r)) + ")"
}

// Country is one row of the country registry.
type Country struct {
	MCC    uint16  // primary MCC (countries with several share the primary here)
	ISO    string  // ISO 3166-1 alpha-2
	Name   string  // English short name
	Region Region  // coarse region
	Lat    float64 // rough population centroid, degrees
	Lon    float64
	EU     bool // member of the EU "roam like at home" regulation zone
}

// Operator is one row of the operator registry.
type Operator struct {
	PLMN PLMN
	Name string
	ISO  string // country of the operator
}

// CountryByMCC returns the country that owns the MCC.
func CountryByMCC(mcc uint16) (Country, bool) {
	c, ok := countryByMCC[mcc]
	return c, ok
}

// CountryByISO returns the country with the ISO 3166 alpha-2 code.
func CountryByISO(iso string) (Country, bool) {
	c, ok := countryByISO[iso]
	return c, ok
}

// ISOByMCC returns the ISO country code for the MCC, or "" if unknown.
func ISOByMCC(mcc uint16) string {
	if c, ok := countryByMCC[mcc]; ok {
		return c.ISO
	}
	return ""
}

// Lookup returns the operator registered under the PLMN. Lookups
// ignore MNCLen mismatches if digits agree, since traces sometimes
// zero-pad MNCs inconsistently.
func Lookup(p PLMN) (Operator, bool) {
	if op, ok := operatorByPLMN[p]; ok {
		return op, true
	}
	alt := p
	if p.MNCLen == 2 {
		alt.MNCLen = 3
	} else {
		alt.MNCLen = 2
	}
	op, ok := operatorByPLMN[alt]
	return op, ok
}

// OperatorsIn returns all registered operators in the ISO country,
// sorted by PLMN for determinism.
func OperatorsIn(iso string) []Operator {
	ops := make([]Operator, len(operatorsByISO[iso]))
	copy(ops, operatorsByISO[iso])
	return ops
}

// Countries returns all registered countries sorted by ISO code.
func Countries() []Country {
	out := make([]Country, len(allCountries))
	copy(out, allCountries)
	return out
}

// CountriesInRegion returns registered countries in the region,
// sorted by ISO code.
func CountriesInRegion(r Region) []Country {
	var out []Country
	for _, c := range allCountries {
		if c.Region == r {
			out = append(out, c)
		}
	}
	return out
}

// AllOperators returns every registered operator sorted by PLMN.
func AllOperators() []Operator {
	out := make([]Operator, len(allOperators))
	copy(out, allOperators)
	return out
}

// SameCountry reports whether two PLMNs belong to the same country.
// It resolves via the registry so that countries with multiple MCCs
// (e.g. the UK's 234/235) compare as equal.
func SameCountry(a, b PLMN) bool {
	ca, oka := countryByMCC[a.MCC]
	cb, okb := countryByMCC[b.MCC]
	if oka && okb {
		return ca.ISO == cb.ISO
	}
	return a.MCC == b.MCC
}

var (
	countryByMCC   = map[uint16]Country{}
	countryByISO   = map[string]Country{}
	operatorByPLMN = map[PLMN]Operator{}
	operatorsByISO = map[string][]Operator{}
	allCountries   []Country
	allOperators   []Operator
)

func init() {
	for _, c := range countryTable {
		countryByMCC[c.MCC] = c
		countryByISO[c.ISO] = c
		allCountries = append(allCountries, c)
	}
	// Secondary MCC allocations that map to an already-registered
	// country (E.212 grants some countries several MCCs).
	for mcc, iso := range secondaryMCC {
		if c, ok := countryByISO[iso]; ok {
			countryByMCC[mcc] = c
		}
	}
	sort.Slice(allCountries, func(i, j int) bool { return allCountries[i].ISO < allCountries[j].ISO })
	for _, op := range operatorTable {
		operatorByPLMN[op.PLMN] = op
		operatorsByISO[op.ISO] = append(operatorsByISO[op.ISO], op)
		allOperators = append(allOperators, op)
	}
	for iso := range operatorsByISO {
		ops := operatorsByISO[iso]
		sort.Slice(ops, func(i, j int) bool { return less(ops[i].PLMN, ops[j].PLMN) })
	}
	sort.Slice(allOperators, func(i, j int) bool { return less(allOperators[i].PLMN, allOperators[j].PLMN) })
}

func less(a, b PLMN) bool {
	if a.MCC != b.MCC {
		return a.MCC < b.MCC
	}
	return a.MNC < b.MNC
}
