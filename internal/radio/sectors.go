package radio

import (
	"fmt"
	"math"

	"whereroam/internal/geo"
	"whereroam/internal/mccmnc"
)

// Sector is one radio cell of an operator's network, with the
// coordinates the MNO's sector catalog provides (§4.1 uses them as a
// proxy for device position).
type Sector struct {
	ID  SectorID
	At  geo.Point
	RAT RATSet // technologies deployed on the sector
}

// Grid is a deterministic square lattice of sectors around a
// country's centroid, standing in for an operator's sector catalog.
// Spacing is uniform so nearest-sector lookup is O(1) index math,
// which keeps the mobility simulation linear in events.
type Grid struct {
	origin  geo.Point // south-west corner
	rows    int
	cols    int
	spacing float64 // degrees between neighbouring sectors
	sectors []Sector
}

// DefaultSpacingDeg is the default sector spacing (~2 km in latitude).
const DefaultSpacingDeg = 0.018

// NewGrid builds a rows×cols sector grid centred on the country's
// centroid. RAT deployment follows a realistic mix: all sectors carry
// 2G, ~85% carry 3G, ~70% carry 4G, assigned deterministically from
// the sector index so grids are reproducible without an RNG.
func NewGrid(c mccmnc.Country, rows, cols int, spacingDeg float64) *Grid {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("radio: NewGrid with non-positive dimensions %dx%d", rows, cols))
	}
	if spacingDeg <= 0 {
		spacingDeg = DefaultSpacingDeg
	}
	g := &Grid{
		origin: geo.Point{
			Lat: c.Lat - spacingDeg*float64(rows-1)/2,
			Lon: c.Lon - spacingDeg*float64(cols-1)/2,
		},
		rows:    rows,
		cols:    cols,
		spacing: spacingDeg,
	}
	g.sectors = make([]Sector, rows*cols)
	for i := range g.sectors {
		r, cl := i/cols, i%cols
		rats := Has2G
		// Deterministic pseudo-pattern: mix the index so deployment
		// does not stripe along rows.
		h := uint32(i)*2654435761 + 12345
		if h%100 < 85 {
			rats |= Has3G
		}
		if h%100 < 70 {
			rats |= Has4G
		}
		g.sectors[i] = Sector{
			ID: SectorID(i),
			At: geo.Point{
				Lat: g.origin.Lat + float64(r)*spacingDeg,
				Lon: g.origin.Lon + float64(cl)*spacingDeg,
			},
			RAT: rats,
		}
	}
	return g
}

// Len returns the number of sectors.
func (g *Grid) Len() int { return len(g.sectors) }

// Sector returns the sector with the given ID.
func (g *Grid) Sector(id SectorID) (Sector, bool) {
	if int(id) >= len(g.sectors) {
		return Sector{}, false
	}
	return g.sectors[id], true
}

// Nearest returns the sector closest to the point, clamping points
// outside the lattice to its border (devices at a country's edge
// attach to the outermost sector).
func (g *Grid) Nearest(p geo.Point) Sector {
	r := int(math.Round((p.Lat - g.origin.Lat) / g.spacing))
	c := int(math.Round((p.Lon - g.origin.Lon) / g.spacing))
	r = clamp(r, 0, g.rows-1)
	c = clamp(c, 0, g.cols-1)
	return g.sectors[r*g.cols+c]
}

// NearestWithRAT returns the closest sector that deploys the RAT,
// searching outward ring by ring. The second return is false when no
// sector in the grid deploys it.
func (g *Grid) NearestWithRAT(p geo.Point, rat RAT) (Sector, bool) {
	base := g.Nearest(p)
	if base.RAT.Has(rat) {
		return base, true
	}
	br, bc := int(base.ID)/g.cols, int(base.ID)%g.cols
	maxRing := g.rows + g.cols
	for ring := 1; ring <= maxRing; ring++ {
		best := Sector{}
		bestD := math.Inf(1)
		for dr := -ring; dr <= ring; dr++ {
			for _, dc := range ringCols(dr, ring) {
				r, c := br+dr, bc+dc
				if r < 0 || r >= g.rows || c < 0 || c >= g.cols {
					continue
				}
				s := g.sectors[r*g.cols+c]
				if !s.RAT.Has(rat) {
					continue
				}
				if d := geo.DistanceKm(p, s.At); d < bestD {
					best, bestD = s, d
				}
			}
		}
		if !math.IsInf(bestD, 1) {
			return best, true
		}
	}
	return Sector{}, false
}

// ringCols returns the column offsets belonging to ring at row offset
// dr: the full edge for the top/bottom rows, just the two sides
// otherwise.
func ringCols(dr, ring int) []int {
	if dr == -ring || dr == ring {
		cols := make([]int, 0, 2*ring+1)
		for dc := -ring; dc <= ring; dc++ {
			cols = append(cols, dc)
		}
		return cols
	}
	return []int{-ring, ring}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
