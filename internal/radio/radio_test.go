package radio

import (
	"testing"
	"testing/quick"
	"time"

	"whereroam/internal/geo"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
)

func TestRATSetWithHas(t *testing.T) {
	var s RATSet
	if !s.Empty() {
		t.Fatal("zero set should be empty")
	}
	s = s.With(RAT2G).With(RAT4G)
	if !s.Has(RAT2G) || !s.Has(RAT4G) || s.Has(RAT3G) {
		t.Errorf("set contents wrong: %v", s)
	}
	if s.String() != "2G+4G" {
		t.Errorf("String = %q", s.String())
	}
	if RATSet(0).String() != "-" {
		t.Error("empty set should render as -")
	}
}

func TestRATSetOnly(t *testing.T) {
	if !RATSet(Has2G).Only(RAT2G) {
		t.Error("2G-only set should report Only(2G)")
	}
	if RATSet(Has2G | Has3G).Only(RAT2G) {
		t.Error("2G+3G set must not report Only(2G)")
	}
	if RATSet(0).Only(RAT2G) {
		t.Error("empty set must not report Only")
	}
}

func TestRATSetWithUnknownNoOp(t *testing.T) {
	s := RATSet(Has3G)
	if s.With(RATUnknown) != s {
		t.Error("adding unknown RAT must be a no-op")
	}
	if s.Has(RATUnknown) {
		t.Error("unknown RAT is never contained")
	}
}

func TestInterfaceRATAndDomain(t *testing.T) {
	cases := []struct {
		i Interface
		r RAT
		d Domain
	}{
		{IfA, RAT2G, DomainCS},
		{IfGb, RAT2G, DomainPS},
		{IfIuCS, RAT3G, DomainCS},
		{IfIuPS, RAT3G, DomainPS},
		{IfS1, RAT4G, DomainPS},
	}
	for _, c := range cases {
		if c.i.RAT() != c.r {
			t.Errorf("%v.RAT() = %v, want %v", c.i, c.i.RAT(), c.r)
		}
		if c.i.Domain() != c.d {
			t.Errorf("%v.Domain() = %v, want %v", c.i, c.i.Domain(), c.d)
		}
	}
}

func TestInterfaceFor(t *testing.T) {
	// Round trip: InterfaceFor(rat, domain) must return an interface
	// whose RAT and Domain match.
	for _, r := range []RAT{RAT2G, RAT3G, RAT4G} {
		for _, d := range []Domain{DomainCS, DomainPS} {
			i, ok := InterfaceFor(r, d)
			if r == RAT4G && d == DomainCS {
				if ok {
					t.Error("4G CS should not exist")
				}
				continue
			}
			if !ok {
				t.Fatalf("InterfaceFor(%v,%v) missing", r, d)
			}
			if i.RAT() != r || i.Domain() != d {
				t.Errorf("InterfaceFor(%v,%v) = %v (rat %v domain %v)", r, d, i, i.RAT(), i.Domain())
			}
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Device:    identity.DeviceID(0xabc),
		Time:      time.Date(2019, 4, 5, 12, 0, 0, 0, time.UTC),
		SIM:       mccmnc.MustParse("20404"),
		TAC:       identity.TAC(35332811),
		Sector:    42,
		Interface: IfGb,
		Result:    ResultOK,
	}
	s := e.String()
	for _, want := range []string{"204-04", "35332811", "sector=42", "if=Gb", "OK"} {
		if !contains(s, want) {
			t.Errorf("Event.String() = %q missing %q", s, want)
		}
	}
	if e.RAT() != RAT2G {
		t.Errorf("event RAT = %v", e.RAT())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func ukGrid(t *testing.T) *Grid {
	t.Helper()
	c, ok := mccmnc.CountryByISO("GB")
	if !ok {
		t.Fatal("GB missing from registry")
	}
	return NewGrid(c, 40, 40, DefaultSpacingDeg)
}

func TestGridDeterministic(t *testing.T) {
	g1, g2 := ukGrid(t), ukGrid(t)
	if g1.Len() != g2.Len() {
		t.Fatal("grid sizes differ")
	}
	for i := 0; i < g1.Len(); i++ {
		s1, _ := g1.Sector(SectorID(i))
		s2, _ := g2.Sector(SectorID(i))
		if s1 != s2 {
			t.Fatalf("sector %d differs between identical grids", i)
		}
	}
}

func TestGridNearestSelf(t *testing.T) {
	g := ukGrid(t)
	// Property: the nearest sector to a sector's own location is that
	// sector.
	for i := 0; i < g.Len(); i += 37 {
		s, _ := g.Sector(SectorID(i))
		if got := g.Nearest(s.At); got.ID != s.ID {
			t.Errorf("Nearest(sector %d location) = %d", s.ID, got.ID)
		}
	}
}

func TestGridNearestClamps(t *testing.T) {
	g := ukGrid(t)
	farNorth := geo.Point{Lat: 89, Lon: 0}
	s := g.Nearest(farNorth)
	if int(s.ID) < 0 || int(s.ID) >= g.Len() {
		t.Fatalf("Nearest out of range: %d", s.ID)
	}
}

func TestGridRATMix(t *testing.T) {
	g := ukGrid(t)
	n2, n3, n4 := 0, 0, 0
	for i := 0; i < g.Len(); i++ {
		s, _ := g.Sector(SectorID(i))
		if !s.RAT.Has(RAT2G) {
			t.Fatalf("sector %d lacks 2G; every sector must carry it", i)
		}
		if s.RAT.Has(RAT2G) {
			n2++
		}
		if s.RAT.Has(RAT3G) {
			n3++
		}
		if s.RAT.Has(RAT4G) {
			n4++
		}
	}
	total := float64(g.Len())
	if f := float64(n3) / total; f < 0.75 || f > 0.95 {
		t.Errorf("3G deployment share = %f, want ~0.85", f)
	}
	if f := float64(n4) / total; f < 0.60 || f > 0.80 {
		t.Errorf("4G deployment share = %f, want ~0.70", f)
	}
}

func TestNearestWithRAT(t *testing.T) {
	g := ukGrid(t)
	p := geo.Point{Lat: 51.5, Lon: -0.1}
	for _, r := range []RAT{RAT2G, RAT3G, RAT4G} {
		s, ok := g.NearestWithRAT(p, r)
		if !ok {
			t.Fatalf("no sector with %v", r)
		}
		if !s.RAT.Has(r) {
			t.Fatalf("NearestWithRAT(%v) returned sector without it", r)
		}
	}
}

func TestNearestWithRATIsNearest(t *testing.T) {
	g := ukGrid(t)
	// Property: no sector with the RAT is strictly closer than the
	// one returned.
	f := func(dLat, dLon uint16) bool {
		p := geo.Point{
			Lat: g.origin.Lat + float64(dLat%500)*0.002,
			Lon: g.origin.Lon + float64(dLon%500)*0.002,
		}
		got, ok := g.NearestWithRAT(p, RAT4G)
		if !ok {
			return false
		}
		gd := geo.DistanceKm(p, got.At)
		for i := 0; i < g.Len(); i++ {
			s, _ := g.Sector(SectorID(i))
			if s.RAT.Has(RAT4G) && geo.DistanceKm(p, s.At) < gd-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNewGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(0,0) should panic")
		}
	}()
	c, _ := mccmnc.CountryByISO("GB")
	NewGrid(c, 0, 0, 0)
}

func BenchmarkGridNearest(b *testing.B) {
	c, _ := mccmnc.CountryByISO("GB")
	g := NewGrid(c, 100, 100, DefaultSpacingDeg)
	p := geo.Point{Lat: 51.6, Lon: -0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Nearest(p)
	}
}
