// Package radio models the radio access side of a cellular network as
// the paper's passive measurement sees it: radio access technologies
// (2G/3G/4G), the monitored radio interfaces (A, Gb, IuCS, IuPS,
// S1-MME), per-event log records, and the per-device "radio-flags"
// summary the devices-catalog carries (§4.1).
package radio

import (
	"fmt"
	"strconv"
	"time"

	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
)

// RAT is a radio access technology generation.
type RAT uint8

// Radio access technologies distinguished by the dataset. The paper's
// M2M dataset covers 4G only; the MNO dataset covers 2G/3G/4G. NB-IoT
// is the §8 extension: the LPWA technology whose roaming support was
// being trialled at publication time, and whose RAT is itself a
// reliable M2M discriminator for the visited network.
const (
	RATUnknown RAT = iota
	RAT2G
	RAT3G
	RAT4G
	RATNB // NB-IoT
)

var ratNames = [...]string{"unknown", "2G", "3G", "4G", "NB-IoT"}

func (r RAT) String() string {
	if int(r) < len(ratNames) {
		return ratNames[r]
	}
	return "rat(" + strconv.Itoa(int(r)) + ")"
}

// RATSet is the radio-flags bitset from the devices-catalog: one bit
// per RAT a device successfully communicated on.
type RATSet uint8

// Bit masks for RATSet.
const (
	Has2G RATSet = 1 << iota
	Has3G
	Has4G
	HasNB
)

func maskOf(r RAT) RATSet {
	switch r {
	case RAT2G:
		return Has2G
	case RAT3G:
		return Has3G
	case RAT4G:
		return Has4G
	case RATNB:
		return HasNB
	}
	return 0
}

// With returns the set with the RAT's flag added.
func (s RATSet) With(r RAT) RATSet { return s | maskOf(r) }

// Has reports whether the RAT's flag is set.
func (s RATSet) Has(r RAT) bool {
	m := maskOf(r)
	return m != 0 && s&m != 0
}

// Only reports whether the set contains exactly the given RAT — the
// form the paper's Fig. 9 buckets use ("2G only").
func (s RATSet) Only(r RAT) bool {
	m := maskOf(r)
	return m != 0 && s == m
}

// Empty reports whether no RAT flag is set.
func (s RATSet) Empty() bool { return s == 0 }

// String renders the set like "2G+4G", or "-" when empty.
func (s RATSet) String() string {
	if s == 0 {
		return "-"
	}
	out := ""
	for _, r := range []RAT{RAT2G, RAT3G, RAT4G, RATNB} {
		if s.Has(r) {
			if out != "" {
				out += "+"
			}
			out += r.String()
		}
	}
	return out
}

// Interface is a monitored radio-side interface. Which interface an
// event arrives on implies the RAT and the domain (circuit-switched
// voice vs packet-switched data).
type Interface uint8

// The monitored interfaces (red pins in the paper's Fig. 4), plus the
// NB-IoT flavour of S1 for the §8 extension.
const (
	IfUnknown Interface = iota
	IfA                 // 2G circuit switched (BSC–MSC)
	IfGb                // 2G packet switched (BSC–SGSN)
	IfIuCS              // 3G circuit switched (RNC–MSC)
	IfIuPS              // 3G packet switched (RNC–SGSN)
	IfS1                // 4G (eNodeB–MME); PS only
	IfNB                // NB-IoT (eNodeB–MME, NB carrier); PS only
)

var ifaceNames = [...]string{"unknown", "A", "Gb", "IuCS", "IuPS", "S1", "NB"}

func (i Interface) String() string {
	if int(i) < len(ifaceNames) {
		return ifaceNames[i]
	}
	return "iface(" + strconv.Itoa(int(i)) + ")"
}

// RAT returns the radio technology the interface belongs to.
func (i Interface) RAT() RAT {
	switch i {
	case IfA, IfGb:
		return RAT2G
	case IfIuCS, IfIuPS:
		return RAT3G
	case IfS1:
		return RAT4G
	case IfNB:
		return RATNB
	}
	return RATUnknown
}

// Domain is the service domain of a radio event.
type Domain uint8

// Domains: circuit-switched (voice/SMS) and packet-switched (data).
const (
	DomainUnknown Domain = iota
	DomainCS             // voice and SMS-like services
	DomainPS             // data
)

func (d Domain) String() string {
	switch d {
	case DomainCS:
		return "CS"
	case DomainPS:
		return "PS"
	}
	return "unknown"
}

// Domain returns the service domain the interface carries.
func (i Interface) Domain() Domain {
	switch i {
	case IfA, IfIuCS:
		return DomainCS
	case IfGb, IfIuPS, IfS1, IfNB:
		return DomainPS
	}
	return DomainUnknown
}

// InterfaceFor returns the interface that carries the domain on the
// RAT. 4G has no CS domain (the simulated networks do not model
// CSFB); requesting it returns IfUnknown and false.
func InterfaceFor(r RAT, d Domain) (Interface, bool) {
	switch r {
	case RAT2G:
		if d == DomainCS {
			return IfA, true
		}
		return IfGb, true
	case RAT3G:
		if d == DomainCS {
			return IfIuCS, true
		}
		return IfIuPS, true
	case RAT4G:
		if d == DomainPS {
			return IfS1, true
		}
	case RATNB:
		if d == DomainPS {
			return IfNB, true
		}
	}
	return IfUnknown, false
}

// Result is the outcome of a radio event.
type Result uint8

// Radio event results.
const (
	ResultOK Result = iota
	ResultFail
)

func (r Result) String() string {
	if r == ResultOK {
		return "OK"
	}
	return "FAIL"
}

// SectorID identifies a radio sector (cell) within one operator.
type SectorID uint32

// Event is one radio-interface log record: a device requesting
// resources for data or voice on a sector (§4.1 "Radio interfaces").
type Event struct {
	Device    identity.DeviceID
	Time      time.Time
	SIM       mccmnc.PLMN // PLMN of the SIM's issuer
	TAC       identity.TAC
	Sector    SectorID
	Interface Interface
	Result    Result
}

// RAT returns the technology the event used.
func (e Event) RAT() RAT { return e.Interface.RAT() }

// String renders a compact single-line debug form.
func (e Event) String() string {
	return fmt.Sprintf("%s %s sim=%s tac=%s sector=%d if=%s %s",
		e.Time.UTC().Format(time.RFC3339), e.Device, e.SIM, e.TAC, e.Sector, e.Interface, e.Result)
}
