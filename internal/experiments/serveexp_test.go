package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"whereroam/internal/serve"
)

// TestFedServeMatchesDaemon is the cross-check the serving layer's
// golden tests lean on: the fed-serve runner's reported values and a
// live roamd-equivalent HTTP server mounted over the same seed-1
// archive must agree exactly (float64 equality, no tolerance),
// because they execute the same serve.Compute* functions over the
// same replayed slices.
func TestFedServeMatchesDaemon(t *testing.T) {
	dir := t.TempDir()
	sess := NewFederation(1, 0.06, 2)
	sess.ArchiveDir = dir

	runner, ok := ByID("fed-serve")
	if !ok {
		t.Fatal("fed-serve runner not registered")
	}
	rep := runner.Run(sess)
	if !rep.Has("served_sites") || rep.Value("served_sites") == 0 {
		t.Fatalf("fed-serve served no sites:\n%s", rep)
	}

	srv := serve.New(serve.Config{Workers: 2})
	names, err := srv.MountSites(dir)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(names)) != rep.Value("served_sites") {
		t.Fatalf("daemon mounts %d sites, runner served %.0f", len(names), rep.Value("served_sites"))
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	getJSON := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: %v in %s", path, err, body)
		}
	}

	for _, name := range names {
		var st serve.SiteStats
		getJSON("/v1/sites/"+name+"/stats", &st)
		key := "site_" + name
		checks := []struct {
			suffix string
			got    float64
		}{
			{"_served_devices", float64(st.Devices)},
			{"_served_records", float64(st.Records)},
			{"_served_events", float64(st.Events)},
			{"_served_bytes", float64(st.Bytes)},
			{"_served_inbound_share", st.InboundShare},
			{"_served_inbound_m2m_share", st.InboundM2MShare},
		}
		for _, c := range checks {
			if !rep.Has(key + c.suffix) {
				t.Errorf("runner has no value %s", key+c.suffix)
				continue
			}
			if want := rep.Value(key + c.suffix); c.got != want {
				t.Errorf("site %s %s: daemon %v, runner %v", name, c.suffix, c.got, want)
			}
		}
	}

	var cv serve.CompareView
	getJSON("/v1/compare", &cv)
	if len(cv.Pairs) == 0 {
		t.Fatal("daemon compare view has no site pairs")
	}
	for _, p := range cv.Pairs {
		key := fmt.Sprintf("shared_%s_%s", p.A, p.B)
		if !rep.Has(key) {
			t.Errorf("runner has no value %s", key)
			continue
		}
		if want := rep.Value(key); float64(p.Shared) != want {
			t.Errorf("pair %s-%s: daemon shares %d, runner %v", p.A, p.B, p.Shared, want)
		}
	}
}
