package experiments

import (
	"fmt"
	"sort"

	"whereroam/internal/analysis"
	"whereroam/internal/catalog"
	"whereroam/internal/core"
	"whereroam/internal/dataset"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/signaling"
)

func init() {
	register("fed-sites", "Federation: per-site population and label breakdown (§5, Table 1)", runFedSites)
	register("fed-agreement", "Federation: cross-site label and class agreement", runFedAgreement)
	register("fed-validation", "Federation: federated vs single-site classifier validation", runFedValidation)
}

// Site is one visited operator's analysis view inside a Federation:
// the site dataset plus the summaries, roaming labels and
// classification its local pipeline derived — everything a
// single-MNO analysis has, per site.
type Site struct {
	// Data is the site's slice of the federation dataset.
	Data *dataset.FederationSite

	sums    []catalog.Summary
	results []core.Result
	classOf map[identity.DeviceID]core.Class
	labelOf map[identity.DeviceID]core.Label
}

// Host returns the site's visited MNO.
func (st *Site) Host() mccmnc.PLMN { return st.Data.Host }

// Summaries returns the site's per-device window aggregates.
func (st *Site) Summaries() []catalog.Summary { return st.sums }

// Results returns the site's classification results, aligned with
// Summaries.
func (st *Site) Results() []core.Result { return st.results }

// Class returns the site's class verdict for a device; ok is false
// when the site never observed it.
func (st *Site) Class(dev identity.DeviceID) (core.Class, bool) {
	c, ok := st.classOf[dev]
	return c, ok
}

// Label returns the site's roaming label for a device; ok is false
// when the site never observed it.
func (st *Site) Label(dev identity.DeviceID) (core.Label, bool) {
	l, ok := st.labelOf[dev]
	return l, ok
}

// FederationData lazily builds the multi-site dataset: one shared
// world, GSMA catalog and roamer fleet, one catalog build per host in
// Hosts (empty = the default three-site footprint). A streaming
// session builds every site catalog through the ingest router; batch
// sessions use per-shard builders folded with catalog.Builder.Merge.
// Both are bit-identical at any worker count.
func (s *Federation) FederationData() *dataset.FederationDataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fed == nil {
		cfg := dataset.DefaultFederationConfig()
		cfg.Seed = s.Seed
		cfg.Hosts = s.Hosts
		cfg.FleetDevices = s.scaled(cfg.FleetDevices)
		cfg.NativePerSite = s.scaled(cfg.NativePerSite)
		cfg.Workers = s.Workers
		cfg.Streaming = s.Streaming
		cfg.BoundedMemory = s.BoundedMemory
		cfg.ArchiveDir = s.ArchiveDir
		cfg.ArchiveSegmentRecords = s.ArchiveSegmentRecords
		s.fed = dataset.GenerateFederation(cfg)
	}
	return s.fed
}

// FederationM2M lazily builds the federated §3/§6 transaction plane:
// the signaling stream the shared fleet's M2M devices generate across
// every site, consistent with the presence schedule. A streaming
// session produces it through the ordered fan-in and materializes the
// result — bit-identical to the batch build.
func (s *Federation) FederationM2M() *dataset.FederationM2M {
	fed := s.FederationData()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fedM2M == nil {
		if s.Streaming {
			var txs []signaling.Transaction
			plane := dataset.StreamFederationM2M(fed, func(tx signaling.Transaction) { txs = append(txs, tx) })
			// Stable: tied timestamps keep serial emission order, the
			// same order the batch build's stable sort preserves.
			sort.SliceStable(txs, func(i, j int) bool { return txs[i].Time.Before(txs[j].Time) })
			plane.Transactions = txs
			s.fedM2M = plane
		} else {
			s.fedM2M = dataset.GenerateFederationM2M(fed)
		}
	}
	return s.fedM2M
}

// FederationSMIP lazily builds the federated §7 smart-meter plane:
// one meters-only dataset per site over the shared fleet's meters
// plus each site's native deployment. The catalogs build batch or
// streaming per the session, bit-identical either way.
func (s *Federation) FederationSMIP() *dataset.FederationSMIP {
	fed := s.FederationData()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fedSMIP == nil {
		s.fedSMIP = dataset.GenerateFederationSMIP(fed)
	}
	return s.fedSMIP
}

// Sites lazily builds the per-site analysis views: each site's
// summaries, labels and classification run locally over its own
// catalog — the same chunked pipeline the single-site analyses use.
func (s *Federation) Sites() []*Site {
	fed := s.FederationData()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sites != nil {
		return s.sites
	}
	sites := make([]*Site, len(fed.Sites))
	for j, data := range fed.Sites {
		st := &Site{
			Data:    data,
			sums:    data.Catalog.SummariesWorkers(fed.GSMA, s.Workers),
			classOf: map[identity.DeviceID]core.Class{},
			labelOf: map[identity.DeviceID]core.Label{},
		}
		labeler := core.NewLabeler(data.Host)
		st.results = core.NewClassifier().ClassifyWorkers(st.sums, s.Workers)
		for i := range st.sums {
			sum := &st.sums[i]
			st.classOf[sum.Device] = st.results[i].Class
			st.labelOf[sum.Device] = labeler.LabelSummary(sum)
		}
		sites[j] = st
	}
	s.sites = sites
	return s.sites
}

func runFedSites(s *Session) *Report {
	fed := s.FederationData()
	fed.EnsureFleet()
	sites := s.Sites()
	r := &Report{
		ID:    "fed-sites",
		Title: "Per-site population and label breakdown",
		Paper: "Table 1/§5: several visited operators each see a large inbound M2M share because the same global fleets roam into all of them",
	}
	tbl := analysis.NewTable("site", "devices", "records", "inbound", "inbound m2m", "fleet seen")
	fleetN := float64(len(fed.Fleet))
	for _, st := range sites {
		inbound, inboundM2M := 0, 0
		for dev, l := range st.labelOf {
			if !l.InboundRoamer() {
				continue
			}
			inbound++
			if st.classOf[dev] == core.ClassM2M || st.classOf[dev] == core.ClassM2MMaybe {
				inboundM2M++
			}
		}
		n := len(st.sums)
		coverage := float64(len(st.Data.Present)) / fleetN
		tbl.AddRow(siteName(st.Host()), n, len(st.Data.Catalog.Records),
			analysis.Pct(float64(inbound)/float64(n)),
			analysis.Pct(float64(inboundM2M)/float64(max(inbound, 1))),
			analysis.Pct(coverage))
		key := "site_" + st.Host().Concat()
		r.setValue(key+"_devices", float64(n))
		r.setValue(key+"_inbound_share", float64(inbound)/float64(n))
		r.setValue(key+"_fleet_coverage", coverage)
	}
	r.Tables = append(r.Tables, tbl)
	r.setValue("sites", float64(len(sites)))
	r.setValue("fleet_devices", fleetN)

	// How federated the fleet really is: the share of devices whose
	// home provisioned them into more than one visited network.
	multi := 0
	for i := range fed.Fleet {
		n := 0
		for _, st := range sites {
			if st.Data.Present[fed.Fleet[i].ID] {
				n++
			}
		}
		if n > 1 {
			multi++
		}
	}
	r.setValue("fleet_multisite_share", float64(multi)/fleetN)
	return r
}

func runFedAgreement(s *Session) *Report {
	fed := s.FederationData()
	fed.EnsureFleet()
	sites := s.Sites()
	r := &Report{
		ID:    "fed-agreement",
		Title: "Cross-site label and class agreement",
		Paper: "§5: a device's roaming label is defined per observing operator; for a fleet SIM every visited operator should independently derive I:H and (mostly) the same class",
	}
	// Pairwise agreement over fleet devices both sites observed.
	labelTbl := analysis.NewTable(append([]string{"label agree"}, siteNames(sites)...)...)
	classTbl := analysis.NewTable(append([]string{"class agree"}, siteNames(sites)...)...)
	minLabel, minClass := 1.0, 1.0
	var classSum float64
	var pairs int
	for a, sa := range sites {
		lRow := []interface{}{siteName(sa.Host())}
		cRow := []interface{}{siteName(sa.Host())}
		for b, sb := range sites {
			if a == b {
				lRow = append(lRow, "—")
				cRow = append(cRow, "—")
				continue
			}
			shared, labelEq, classEq := 0, 0, 0
			for i := range fed.Fleet {
				dev := fed.Fleet[i].ID
				la, okA := sa.Label(dev)
				lb, okB := sb.Label(dev)
				if !okA || !okB {
					continue
				}
				shared++
				if la == lb {
					labelEq++
				}
				ca, _ := sa.Class(dev)
				cb, _ := sb.Class(dev)
				if ca == cb {
					classEq++
				}
			}
			if shared == 0 {
				lRow = append(lRow, "n/a")
				cRow = append(cRow, "n/a")
				continue
			}
			lShare := float64(labelEq) / float64(shared)
			cShare := float64(classEq) / float64(shared)
			lRow = append(lRow, analysis.Pct(lShare))
			cRow = append(cRow, analysis.Pct(cShare))
			if a < b {
				minLabel = min(minLabel, lShare)
				minClass = min(minClass, cShare)
				classSum += cShare
				pairs++
			}
		}
		labelTbl.AddRow(lRow...)
		classTbl.AddRow(cRow...)
	}
	r.Tables = append(r.Tables, labelTbl, classTbl)
	// Only meaningful when at least one site pair shared devices;
	// otherwise the 1.0 initial values would fake perfect agreement.
	if pairs > 0 {
		r.setValue("label_agreement_min", minLabel)
		r.setValue("class_agreement_min", minClass)
		r.setValue("class_agreement_mean", classSum/float64(pairs))
	}

	// Raw label equality across sites is not the invariant — a German
	// fleet SIM is N:H at the German site but I:H abroad. The
	// invariant is grammar consistency: at every site the label must
	// be exactly the one the home/host geography implies.
	consistent, checked := 0, 0
	for i := range fed.Fleet {
		dev := &fed.Fleet[i]
		ok := true
		seen := false
		for _, st := range sites {
			l, present := st.Label(dev.ID)
			if !present {
				continue
			}
			seen = true
			want := core.LabelIH
			if mccmnc.SameCountry(dev.Home, st.Host()) {
				want = core.LabelNH
			}
			if l != want {
				ok = false
			}
		}
		if seen {
			checked++
			if ok {
				consistent++
			}
		}
	}
	if checked > 0 {
		r.setValue("label_consistency", float64(consistent)/float64(checked))
		r.Notes = append(r.Notes,
			fmt.Sprintf("label grammar consistent for %d/%d fleet devices across all observing sites", consistent, checked))
	}

	// Schedule exclusivity: with the shared presence schedule, a fleet
	// device active at one site on a day must be absent from every
	// other site's catalog that day. Checked over the actual catalogs
	// (not the schedule itself), so a regression in either emission
	// path shows up as a violation share above zero.
	type devDay struct {
		dev identity.DeviceID
		day int
	}
	siteOf := map[devDay]int{}
	violations, devDays := 0, 0
	for j, st := range sites {
		for i := range st.Data.Catalog.Records {
			rec := &st.Data.Catalog.Records[i]
			if !st.Data.Present[rec.Device] {
				continue // site-native device, never shared
			}
			devDays++
			key := devDay{rec.Device, rec.Day}
			if prev, ok := siteOf[key]; ok && prev != j {
				violations++
			}
			siteOf[key] = j
		}
	}
	if devDays > 0 {
		r.setValue("presence_exclusivity", 1-float64(violations)/float64(devDays))
		r.Notes = append(r.Notes,
			fmt.Sprintf("presence schedule: %d shared fleet device-days observed, %d at more than one site", devDays, violations))
	}
	return r
}

func runFedValidation(s *Session) *Report {
	fed := s.FederationData()
	fed.EnsureFleet()
	sites := s.Sites()
	r := &Report{
		ID:    "fed-validation",
		Title: "Federated vs single-site classifier validation",
		Paper: "§5/§8: one operator sees a slice of a fleet's behaviour; pooling several operators' verdicts should classify the shared fleet at least as well as any single site",
	}
	// Per-site accuracy on the fleet devices that site observed.
	tbl := analysis.NewTable("site", "fleet seen", "accuracy", "m2m recall")
	var sumAcc, bestAcc float64
	for _, st := range sites {
		var fleetResults []core.Result
		for _, res := range st.results {
			if st.Data.Present[res.Device] {
				fleetResults = append(fleetResults, res)
			}
		}
		val, err := core.Validate(fleetResults, st.Data.Truth)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("site %v validation: %v", st.Host(), err))
			continue
		}
		acc := val.Accuracy()
		sumAcc += acc
		bestAcc = max(bestAcc, acc)
		tbl.AddRow(siteName(st.Host()), len(fleetResults), acc, val.Recall(core.ClassM2M))
		r.setValue("site_"+st.Host().Concat()+"_accuracy", acc)
	}

	// Federated verdicts, two strategies over the sites that saw each
	// device. Vote: majority class; the earliest-observing site's
	// verdict wins ties with it, and ties between two other classes
	// break by the fixed class order below — both deterministic, never
	// map iteration order. Union: any site with hard M2M evidence
	// settles the device as m2m — the paper's §8 point that once one
	// operator identifies a fleet, every partner can benefit — falling
	// back to the vote otherwise. Evaluated over every fleet device at
	// least one site observed.
	voteOrder := []core.Class{core.ClassSmart, core.ClassFeat, core.ClassM2M, core.ClassM2MMaybe}
	var voted, union []core.Result
	for i := range fed.Fleet {
		dev := fed.Fleet[i].ID
		counts := map[core.Class]int{}
		var first core.Class
		seen, anyM2M := 0, false
		for _, st := range sites {
			if c, ok := st.Class(dev); ok {
				if seen == 0 {
					first = c
				}
				counts[c]++
				seen++
				anyM2M = anyM2M || c == core.ClassM2M
			}
		}
		if seen == 0 {
			continue
		}
		best, bestN := first, counts[first]
		for _, c := range voteOrder {
			if counts[c] > bestN {
				best, bestN = c, counts[c]
			}
		}
		voted = append(voted, core.Result{Device: dev, Class: best, Evidence: "federated-vote"})
		u := best
		if anyM2M {
			u = core.ClassM2M
		}
		union = append(union, core.Result{Device: dev, Class: u, Evidence: "federated-union"})
	}
	if val, err := core.Validate(voted, fed.Truth); err == nil {
		tbl.AddRow("federated vote", len(voted), val.Accuracy(), val.Recall(core.ClassM2M))
		r.setValue("federated_accuracy", val.Accuracy())
		r.setValue("federated_m2m_recall", val.Recall(core.ClassM2M))
	}
	if val, err := core.Validate(union, fed.Truth); err == nil {
		tbl.AddRow("federated union", len(union), val.Accuracy(), val.Recall(core.ClassM2M))
		r.setValue("union_accuracy", val.Accuracy())
		r.setValue("union_m2m_recall", val.Recall(core.ClassM2M))
		r.setValue("union_m2m_precision", val.Precision(core.ClassM2M))
	}
	r.Tables = append(r.Tables, tbl)
	if len(sites) > 0 {
		r.setValue("mean_site_accuracy", sumAcc/float64(len(sites)))
		r.setValue("best_site_accuracy", bestAcc)
	}
	r.setValue("fleet_evaluated", float64(len(voted)))

	// The schedule's day-slice effect: presence is mutually exclusive,
	// so a multi-site device's active days partition across its sites —
	// any single operator holds only a slice of the evidence the
	// federation holds together. max_site_day_share is the mean share
	// of a shared device's total active days its best-covered site saw
	// (1.0 would mean single sites see everything; the lower it is, the
	// more the §8-style evidence pooling buys).
	daysAt := map[identity.DeviceID][]int{}
	for _, st := range sites {
		sums := st.Summaries()
		for i := range sums {
			if st.Data.Present[sums[i].Device] {
				daysAt[sums[i].Device] = append(daysAt[sums[i].Device], sums[i].ActiveDays)
			}
		}
	}
	// Iterate in fleet order: float accumulation must not depend on
	// map iteration order, or the report would differ run to run in
	// the last bits.
	var shareSum float64
	multiSite := 0
	for i := range fed.Fleet {
		counts := daysAt[fed.Fleet[i].ID]
		if len(counts) < 2 {
			continue
		}
		maxDays, total := 0, 0
		for _, n := range counts {
			total += n
			maxDays = max(maxDays, n)
		}
		if total == 0 {
			continue
		}
		multiSite++
		shareSum += float64(maxDays) / float64(total)
	}
	if multiSite > 0 {
		r.setValue("max_site_day_share", shareSum/float64(multiSite))
		r.Notes = append(r.Notes, fmt.Sprintf(
			"schedule day slices: %d fleet devices split across 2+ sites; their best-covered site saw %.0f%% of their active days on average",
			multiSite, 100*shareSum/float64(multiSite)))
	}
	return r
}

// siteName renders a site's operator for table rows.
func siteName(p mccmnc.PLMN) string {
	if op, ok := mccmnc.Lookup(p); ok {
		return fmt.Sprintf("%s (%s)", op.Name, p)
	}
	return p.String()
}

func siteNames(sites []*Site) []string {
	out := make([]string, len(sites))
	for i, st := range sites {
		out[i] = siteName(st.Host())
	}
	return out
}
