package experiments

import (
	"reflect"
	"testing"
)

// One shared federation across the fed-* tests (the datasets dominate
// the runtime, exactly like the classic session share).
var fedSess = NewFederation(1, 0.12, 0)

func runFed(t testing.TB, id string) *Report {
	t.Helper()
	r, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	return r.Run(fedSess)
}

func TestFedSitesBreakdown(t *testing.T) {
	rep := runFed(t, "fed-sites")
	within(t, rep, "sites", 3, 3)
	// Every site must see a large slice of the shared fleet, and a
	// substantial part of the fleet must be visible at 2+ sites —
	// the paper's "many operators see the same fleets" observation.
	within(t, rep, "fleet_multisite_share", 0.3, 1.0)
	for _, host := range []string{"23410", "26201", "24001"} {
		within(t, rep, "site_"+host+"_fleet_coverage", 0.3, 1.0)
		// Inbound roamers dominate less than natives overall but must
		// be a large share at every site (Table 1's inbound columns).
		within(t, rep, "site_"+host+"_inbound_share", 0.25, 0.75)
	}
}

func TestFedAgreement(t *testing.T) {
	rep := runFed(t, "fed-agreement")
	// The label grammar invariant: every observing operator derives
	// exactly the label its geography implies, for every fleet device.
	within(t, rep, "label_consistency", 1.0, 1.0)
	// Classes rest on per-site evidence, so agreement is high but not
	// perfect.
	within(t, rep, "class_agreement_min", 0.75, 1.0)
	within(t, rep, "class_agreement_mean", 0.8, 1.0)
	// The presence schedule is mutually exclusive: no shared fleet
	// device may be active at two sites on the same day.
	within(t, rep, "presence_exclusivity", 1.0, 1.0)
}

func TestFedSMIPPlane(t *testing.T) {
	rep := runFed(t, "fed-smip")
	within(t, rep, "smip_sites", 3, 3)
	// §4.4's provenance result must federate: at every site, all
	// roaming meters trace to the single NL home operator and the
	// two-vendor module pool.
	within(t, rep, "nl_home_share", 1.0, 1.0)
	within(t, rep, "vendor_count", 1, 2)
	// Meters are stationary, so the fleet partitions across sites.
	within(t, rep, "meter_single_site_share", 1.0, 1.0)
	for _, host := range []string{"23410", "26201", "24001"} {
		if rep.Value("site_"+host+"_roaming_meters") == 0 {
			t.Errorf("site %s deployed no fleet meters", host)
		}
	}
}

func TestFedM2MPlane(t *testing.T) {
	rep := runFed(t, "fed-m2m")
	if rep.Value("m2m_transactions") == 0 || rep.Value("m2m_devices") == 0 {
		t.Fatalf("fed-m2m plane is empty:\n%s", rep)
	}
	// Every non-cancel transaction must sit on the exact network the
	// shared schedule names for its day — the plane is a view of the
	// same fleet, not an independent draw.
	within(t, rep, "schedule_consistency", 1.0, 1.0)
	// The fleet is mostly deployed abroad, so the plane is
	// roaming-dominated (§3.2's ES profile).
	within(t, rep, "roaming_tx_share", 0.5, 1.0)
	// Schedule moves surface as switch chains.
	if rep.Value("switches_per_device") <= 0 {
		t.Error("no inter-site switches in the federated M2M plane")
	}
}

func TestFedValidation(t *testing.T) {
	rep := runFed(t, "fed-validation")
	if !rep.Has("federated_accuracy") || !rep.Has("union_m2m_recall") {
		t.Fatalf("fed-validation missing headline values:\n%s", rep)
	}
	within(t, rep, "federated_accuracy", 0.9, 1.0)
	within(t, rep, "mean_site_accuracy", 0.9, 1.0)
	// Evidence union can only extend the m2m set, so its recall
	// dominates the majority vote's by construction.
	if rep.Value("union_m2m_recall") < rep.Value("federated_m2m_recall") {
		t.Errorf("union recall %.4f below vote recall %.4f",
			rep.Value("union_m2m_recall"), rep.Value("federated_m2m_recall"))
	}
	if rep.Value("fleet_evaluated") == 0 {
		t.Error("no fleet devices were evaluated")
	}
}

// The classic single-site constructors must keep producing identical
// results through the Federation redesign, and the fed-* runners must
// be bit-identical across worker counts on top of it.
func TestFedRunnersWorkerCountInvariant(t *testing.T) {
	serial := NewFederation(1, 0.06, 1)
	par := NewFederation(1, 0.06, 4)
	for _, id := range []string{"fed-sites", "fed-agreement", "fed-validation", "fed-smip", "fed-m2m"} {
		r, _ := ByID(id)
		a, b := r.Run(serial), r.Run(par)
		if !reflect.DeepEqual(a.Values, b.Values) {
			t.Errorf("%s: values differ between workers 1 and 4\nserial: %v\npar:    %v", id, a.Values, b.Values)
		}
	}
}

// A streaming federation builds the site catalogs through the ingest
// router and the M2M plane through the ordered fan-in; every fed-*
// report must nonetheless be bit-identical to the batch session's.
func TestFedRunnersStreamingMatchesBatch(t *testing.T) {
	batch := NewFederation(3, 0.06, 4)
	stream := NewFederation(3, 0.06, 4)
	stream.Streaming = true
	for _, id := range []string{"fed-sites", "fed-agreement", "fed-validation", "fed-smip", "fed-m2m"} {
		r, _ := ByID(id)
		a, b := r.Run(batch), r.Run(stream)
		if !reflect.DeepEqual(a.Values, b.Values) {
			t.Errorf("%s: values differ between batch and streaming sessions\nbatch:  %v\nstream: %v", id, a.Values, b.Values)
		}
	}
}

// The streaming session materializes the M2M stream through the
// ordered fan-in plus a stable time sort; the result must be the
// batch dataset bit for bit — including tied timestamps.
func TestStreamingSessionM2MMatchesBatch(t *testing.T) {
	batch := NewSessionWorkers(7, 0.05, 1).M2M()
	stream := NewStreamingSession(7, 0.05, 4).M2M()
	if !reflect.DeepEqual(batch.Transactions, stream.Transactions) {
		t.Error("streaming session transactions differ from batch session")
	}
	if !reflect.DeepEqual(batch.Truth, stream.Truth) {
		t.Error("streaming session ground truth differs from batch session")
	}
}

// The runner-side chunked analyses (groupECDF behind fig7/fig8/fig10,
// t2's chunked per-day label join, and the fig5/fig6/fig9 crosstab
// sweeps folded with analysis.Crosstab.Merge) must emit identical
// report values at any worker count.
func TestRunnerAnalysesWorkerCountInvariant(t *testing.T) {
	serial := NewSessionWorkers(1, 0.08, 1)
	par := NewSessionWorkers(1, 0.08, 4)
	for _, id := range []string{"t2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		r, _ := ByID(id)
		a, b := r.Run(serial), r.Run(par)
		if !reflect.DeepEqual(a.Values, b.Values) {
			t.Errorf("%s: values differ between workers 1 and 4\nserial: %v\npar:    %v", id, a.Values, b.Values)
		}
	}
}
