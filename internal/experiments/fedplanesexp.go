package experiments

import (
	"fmt"

	"whereroam/internal/analysis"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/signaling"
)

func init() {
	register("fed-smip", "Federation: per-site SMIP smart-meter plane (§4.4/§7)", runFedSMIP)
	register("fed-m2m", "Federation: schedule-consistent M2M transaction plane (§3/§6)", runFedM2M)
}

func runFedSMIP(s *Session) *Report {
	fed := s.FederationData()
	plane := s.FederationSMIP()
	r := &Report{
		ID:    "fed-smip",
		Title: "Per-site SMIP smart-meter plane",
		Paper: "§4.4/§7: every visited operator's roaming smart meters trace back to one NL home operator and two module vendors; the fleet partitions across sites because meters are stationary",
	}

	nlHome := mccmnc.MustParse("20404")
	tbl := analysis.NewTable("site", "native meters", "roaming meters", "catalog records", "NL-homed", "vendors")
	sitesOf := map[identity.DeviceID]int{}
	totalRoaming, totalNL := 0, 0
	allVendors := map[string]bool{}
	for _, site := range plane.Sites {
		sums := site.Catalog.SummariesWorkers(fed.GSMA, s.Workers)
		native, roaming, nl := 0, 0, 0
		vendors := map[string]bool{}
		for i := range sums {
			sum := &sums[i]
			if site.Native[sum.Device] {
				native++
				continue
			}
			roaming++
			sitesOf[sum.Device]++
			if sum.SIM == nlHome {
				nl++
			}
			if sum.InfoOK {
				vendors[sum.Info.Vendor] = true
				allVendors[sum.Info.Vendor] = true
			}
		}
		totalRoaming += roaming
		totalNL += nl
		tbl.AddRow(siteName(site.Host), native, roaming, len(site.Catalog.Records),
			analysis.Pct(float64(nl)/float64(max(roaming, 1))), len(vendors))
		key := "site_" + site.Host.Concat()
		r.setValue(key+"_native_meters", float64(native))
		r.setValue(key+"_roaming_meters", float64(roaming))
	}
	r.Tables = append(r.Tables, tbl)
	r.setValue("smip_sites", float64(len(plane.Sites)))
	if totalRoaming > 0 {
		r.setValue("nl_home_share", float64(totalNL)/float64(totalRoaming))
	}
	r.setValue("vendor_count", float64(len(allVendors)))

	// The plane-level exclusivity: stationary meters never tour, so
	// every fleet meter the schedule deployed must show up at exactly
	// one site.
	single := 0
	for _, n := range sitesOf {
		if n == 1 {
			single++
		}
	}
	if len(sitesOf) > 0 {
		r.setValue("meter_single_site_share", float64(single)/float64(len(sitesOf)))
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%d fleet meters deployed across %d sites; %d observed at exactly one site",
			len(sitesOf), len(plane.Sites), single))
	}
	return r
}

func runFedM2M(s *Session) *Report {
	fed := s.FederationData()
	plane := s.FederationM2M()
	r := &Report{
		ID:    "fed-m2m",
		Title: "Schedule-consistent M2M transaction plane",
		Paper: "§3/§6: the platform-side signaling stream is a view of the same fleet the catalogs see — a device transacts only on the network the shared schedule puts it on, and inter-site moves surface as cancel-location/attach switch chains",
	}

	idx := make(map[identity.DeviceID]int, len(fed.Fleet))
	for i := range fed.Fleet {
		idx[fed.Fleet[i].ID] = i
	}
	siteIdx := map[mccmnc.PLMN]int{}
	for j, h := range plane.Hosts {
		siteIdx[h] = j
	}

	perSite := make([]int, len(plane.Hosts))
	homeTx, roamTx, switches := 0, 0, 0
	consistent, checked := 0, 0
	devices := map[identity.DeviceID]bool{}
	for i := range plane.Transactions {
		tx := &plane.Transactions[i]
		devices[tx.Device] = true
		if j, ok := siteIdx[tx.Visited]; ok {
			perSite[j]++
		}
		if tx.Roaming() {
			roamTx++
		} else {
			homeTx++
		}
		if tx.Procedure == signaling.ProcCancelLocation {
			switches++
			continue // cancels aim at the previous day's network by design
		}
		day := int(tx.Time.Sub(plane.Start).Hours() / 24)
		fi := idx[tx.Device]
		want := fed.Fleet[fi].Home
		if sidx := fed.ScheduledSite(fi, day); sidx >= 0 {
			want = fed.Hosts[sidx]
		}
		checked++
		if tx.Visited == want {
			consistent++
		}
	}

	n := len(plane.Transactions)
	tbl := analysis.NewTable("network", "transactions", "share")
	for j, h := range plane.Hosts {
		tbl.AddRow(siteName(h), perSite[j], analysis.Pct(float64(perSite[j])/float64(max(n, 1))))
		r.setValue("site_"+h.Concat()+"_tx_share", float64(perSite[j])/float64(max(n, 1)))
	}
	tbl.AddRow("home networks", homeTx, analysis.Pct(float64(homeTx)/float64(max(n, 1))))
	r.Tables = append(r.Tables, tbl)

	r.setValue("m2m_transactions", float64(n))
	r.setValue("m2m_devices", float64(len(devices)))
	r.setValue("roaming_tx_share", float64(roamTx)/float64(max(n, 1)))
	if len(devices) > 0 {
		r.setValue("switches_per_device", float64(switches)/float64(len(devices)))
	}
	if checked > 0 {
		r.setValue("schedule_consistency", float64(consistent)/float64(checked))
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%d/%d non-cancel transactions sit on the exact network the shared schedule names", consistent, checked))
	}
	return r
}
