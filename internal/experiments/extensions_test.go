package experiments

import "testing"

func TestExtRevenue(t *testing.T) {
	rep := run(t, "ext-revenue")
	// The paper's §9 claim, priced: m2m dominates the inbound event
	// load but contributes a small fraction of wholesale revenue.
	m2mEvents := rep.Value("m2m_event_share")
	smartEvents := rep.Value("smart_event_share")
	m2mRev := rep.Value("m2m_revenue_share")
	smartRev := rep.Value("smart_revenue_share")
	if m2mEvents <= smartEvents {
		t.Errorf("m2m event share %.3f should exceed smart %.3f", m2mEvents, smartEvents)
	}
	if m2mRev >= smartRev {
		t.Errorf("m2m revenue share %.3f should trail smart %.3f", m2mRev, smartRev)
	}
	// Per-device value gap of at least an order of magnitude.
	if rep.Value("smart_eur_per_device") < 10*rep.Value("m2m_eur_per_device") {
		t.Errorf("per-device revenue gap too small: smart %.4f vs m2m %.4f EUR",
			rep.Value("smart_eur_per_device"), rep.Value("m2m_eur_per_device"))
	}
	if rep.Value("total_revenue_eur") <= 0 || rep.Value("partners") < 10 {
		t.Errorf("settlement degenerate: %.2f EUR across %.0f partners",
			rep.Value("total_revenue_eur"), rep.Value("partners"))
	}
}

func TestExtTransparency(t *testing.T) {
	rep := run(t, "ext-transparency")
	cov := rep.Value("declaration_coverage")
	if cov <= 0.2 || cov >= 0.95 {
		t.Errorf("declaration coverage = %.3f, want partial (adoption is 0.6)", cov)
	}
	if rep.Value("declaring_operators") < 2 {
		t.Errorf("declaring operators = %.0f", rep.Value("declaring_operators"))
	}
	if rep.Value("combined_m2m_recall") < rep.Value("classifier_m2m_recall") {
		t.Error("declarations must not reduce recall")
	}
}

func TestExtNBIoT(t *testing.T) {
	rep := run(t, "ext-nbiot")
	// RAT-rule recall grows with migration: 0 → ~0.5 → ~1.
	r0 := rep.Value("migration_0_rat_recall")
	r50 := rep.Value("migration_50_rat_recall")
	r100 := rep.Value("migration_100_rat_recall")
	if r0 != 0 {
		t.Errorf("pre-migration RAT recall = %.3f, want 0", r0)
	}
	if r50 < 0.4 || r50 > 0.6 {
		t.Errorf("half-migration RAT recall = %.3f, want ~0.5", r50)
	}
	if r100 < 0.99 {
		t.Errorf("full-migration RAT recall = %.3f, want ~1", r100)
	}
	// NB-IoT's power-save profile slashes the signaling overhead.
	if rep.Value("migration_100_signaling_per_day") >= rep.Value("migration_0_signaling_per_day")/5 {
		t.Errorf("NB-IoT signaling %.1f/day should be far below 2G fleet %.1f/day",
			rep.Value("migration_100_signaling_per_day"), rep.Value("migration_0_signaling_per_day"))
	}
}

func TestExtLatency(t *testing.T) {
	rep := run(t, "ext-latency")
	// HR's tail is the problem; hub breakout cuts it.
	if rep.Value("hr_p95_ms") <= rep.Value("policy_p95_ms") {
		t.Errorf("HR p95 %.0f ms should exceed policy p95 %.0f ms",
			rep.Value("hr_p95_ms"), rep.Value("policy_p95_ms"))
	}
	if rep.Value("hr_max_ms") < 150 {
		t.Errorf("HR worst case = %.0f ms; far destinations should hurt more", rep.Value("hr_max_ms"))
	}
	if rep.Value("policy_max_ms") >= rep.Value("hr_max_ms") {
		t.Error("hub breakout should improve the worst case")
	}
	// Medians stay comparable: most roaming is intra-Europe where HR
	// is cheap (the paper's European focus).
	if rep.Value("hr_median_ms") > 3*rep.Value("policy_p95_ms") {
		t.Error("median HR latency implausibly high for a Europe-centric footprint")
	}
}
