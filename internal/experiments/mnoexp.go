package experiments

import (
	"fmt"
	"sort"

	"whereroam/internal/analysis"
	"whereroam/internal/catalog"
	"whereroam/internal/core"
	"whereroam/internal/dataset"
	"whereroam/internal/devices"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/pipeline"
	"whereroam/internal/radio"
)

func init() {
	register("t2", "Population breakdown: roaming labels and device classes (§4.2/§4.3)", runT2)
	register("fig5", "Home country of inbound roaming devices", runFig5)
	register("fig6", "Device class vs roaming label", runFig6)
	register("fig7", "Days active per device class and roaming status", runFig7)
	register("fig8", "Radius of gyration per device class", runFig8)
	register("fig9", "Device shares with respect to services and RATs", runFig9)
	register("fig10", "Traffic: signaling, calls and data per class and roaming status", runFig10)
	register("fig12", "Connected cars vs smart meters traffic patterns", runFig12)
	register("t3", "SMIP-roaming provenance: home operator and module vendors (§4.4)", runT3)
}

// mnoView bundles the MNO dataset with the derived classification and
// labels every §4–§7 analysis shares.
type mnoView struct {
	ds      *dataset.MNODataset
	sums    []catalog.Summary
	results []core.Result
	labeler *core.Labeler
	classOf map[identity.DeviceID]core.Class
	labelOf map[identity.DeviceID]core.Label
	sumOf   map[identity.DeviceID]*catalog.Summary
	// workers is the session's pipeline pool size, so runner-side
	// analyses (groupECDF) chunk with the same budget the dataset
	// builds used.
	workers int
}

var mnoViews syncifiedViewCache

// sync-free single-session cache: experiments run sequentially per
// session; a tiny map keyed by session keeps reruns cheap.
type syncifiedViewCache struct {
	m map[*Session]*mnoView
}

func (c *syncifiedViewCache) get(s *Session) *mnoView {
	if c.m == nil {
		c.m = map[*Session]*mnoView{}
	}
	if v, ok := c.m[s]; ok {
		return v
	}
	ds := s.MNO()
	v := &mnoView{
		ds:      ds,
		sums:    ds.Catalog.SummariesWorkers(ds.GSMA, s.Workers),
		labeler: core.NewLabeler(ds.Host, dataset.MVNO1, dataset.MVNO2),
		classOf: map[identity.DeviceID]core.Class{},
		labelOf: map[identity.DeviceID]core.Label{},
		sumOf:   map[identity.DeviceID]*catalog.Summary{},
		workers: s.Workers,
	}
	v.results = core.NewClassifier().ClassifyWorkers(v.sums, s.Workers)
	for i := range v.sums {
		sum := &v.sums[i]
		v.classOf[sum.Device] = v.results[i].Class
		v.labelOf[sum.Device] = v.labeler.LabelSummary(sum)
		v.sumOf[sum.Device] = sum
	}
	c.m[s] = v
	return v
}

func runT2(s *Session) *Report {
	v := mnoViews.get(s)
	r := &Report{
		ID:    "t2",
		Title: "Population breakdown",
		Paper: "labels/day: H:H ≈48%, V:H ≈33%, I:H ≈18%; classes: smart 62%, feat 8%, m2m 26%, m2m-maybe 4%",
	}

	// Per-day label shares over daily records (the paper's "per-day"
	// framing), averaged across the window. The label join chunks over
	// internal/pipeline: record chunks accumulate shard-local count
	// maps that fold in shard order. Counts are integers, so the fold
	// is exact and the report is bit-identical to a serial join at any
	// worker count (the same shard-ordered-merge pattern as groupECDF).
	type dayLabelCounts struct {
		perDay   map[int]map[core.Label]int
		dayTotal map[int]int
	}
	parts := pipeline.Map(len(v.ds.Catalog.Records), v.workers, func(sh pipeline.Shard) dayLabelCounts {
		out := dayLabelCounts{perDay: map[int]map[core.Label]int{}, dayTotal: map[int]int{}}
		for i := sh.Lo; i < sh.Hi; i++ {
			rec := &v.ds.Catalog.Records[i]
			l := v.labeler.LabelRecord(rec)
			m := out.perDay[rec.Day]
			if m == nil {
				m = map[core.Label]int{}
				out.perDay[rec.Day] = m
			}
			m[l]++
			out.dayTotal[rec.Day]++
		}
		return out
	})
	perDay := map[int]map[core.Label]int{}
	dayTotal := map[int]int{}
	for _, part := range parts {
		//roamvet:maporder-ok integer fold keyed by (day, label): additions commute and the ensure-exists write is idempotent, so the merged counters are independent of visit order
		for day, m := range part.perDay {
			dst := perDay[day]
			if dst == nil {
				dst = map[core.Label]int{}
				perDay[day] = dst
			}
			for l, n := range m {
				dst[l] += n
			}
		}
		for day, n := range part.dayTotal {
			dayTotal[day] += n
		}
	}
	// Average in day order: float accumulation over map iteration
	// order would wobble in the last bits from run to run.
	labelShare := map[core.Label]float64{}
	for day := 0; day < v.ds.Days; day++ {
		m := perDay[day]
		if m == nil {
			continue
		}
		for _, l := range core.AllLabels {
			if n := m[l]; n > 0 {
				labelShare[l] += float64(n) / float64(dayTotal[day])
			}
		}
	}
	for l := range labelShare {
		labelShare[l] /= float64(len(perDay))
	}
	tbl := analysis.NewTable("label", "avg daily share")
	for _, l := range core.AllLabels {
		tbl.AddRow(l.String(), labelShare[l])
		r.setValue("label_"+l.String(), labelShare[l])
	}
	r.Tables = append(r.Tables, tbl)

	// Class shares over the whole population.
	b := core.Breakdown(v.results)
	n := float64(len(v.results))
	tbl2 := analysis.NewTable("class", "devices", "share")
	for _, c := range []core.Class{core.ClassSmart, core.ClassFeat, core.ClassM2M, core.ClassM2MMaybe} {
		tbl2.AddRow(c.String(), b[c], float64(b[c])/n)
		r.setValue("class_"+c.String(), float64(b[c])/n)
	}
	r.Tables = append(r.Tables, tbl2)

	// Classifier validation against ground truth (the simulator's
	// bonus over the paper).
	val, err := core.Validate(v.results, v.ds.Truth)
	if err == nil {
		r.setValue("classifier_accuracy", val.Accuracy())
		r.setValue("m2m_precision", val.Precision(core.ClassM2M))
		r.setValue("m2m_recall", val.Recall(core.ClassM2M))
		r.Notes = append(r.Notes, val.String())
	}
	return r
}

func runFig5(s *Session) *Report {
	v := mnoViews.get(s)
	r := &Report{
		ID:    "fig5",
		Title: "Home country of inbound roaming devices",
		Paper: "top-20 countries ≈93% of inbound roamers; top-3 (NL, SE, ES) ≈60%; 83% of m2m from top-3 vs 17% smart / 35% feat",
	}
	// The home-country sweep chunks over internal/pipeline: each shard
	// accumulates its own crosstab and the shard tables fold in shard
	// order, reproducing the serial row insertion order exactly (see
	// analysis.Crosstab.Merge) — bit-identical at any worker count.
	parts := pipeline.Map(len(v.sums), v.workers, func(sh pipeline.Shard) *analysis.Crosstab {
		part := analysis.NewCrosstab()
		for i := sh.Lo; i < sh.Hi; i++ {
			sum := &v.sums[i]
			if !v.labelOf[sum.Device].InboundRoamer() {
				continue
			}
			class := v.classOf[sum.Device]
			if class == core.ClassM2MMaybe {
				continue // the paper drops these from the analysis
			}
			iso := mccmnc.ISOByMCC(sum.SIM.MCC)
			part.Add(iso, class.String(), 1)
		}
		return part
	})
	ct := analysis.NewCrosstab()
	for _, part := range parts {
		ct.Merge(part)
	}
	ct.SortRowsByTotal()
	rows := ct.Rows()
	total := ct.Total()

	tbl := analysis.NewTable("home", "share", "smart", "feat", "m2m")
	cum := 0.0
	top3, top20 := 0.0, 0.0
	for i, iso := range rows {
		share := ct.RowTotal(iso) / total
		cum += share
		if i < 3 {
			top3 = cum
		}
		if i < 20 {
			top20 = cum
		}
		if i < 20 {
			tbl.AddRow(iso, share,
				ct.Get(iso, "smart"), ct.Get(iso, "feat"), ct.Get(iso, "m2m"))
		}
	}
	r.Tables = append(r.Tables, tbl)
	r.setValue("top3_share", top3)
	r.setValue("top20_share", top20)
	// Per-class top-3 (NL/SE/ES) shares.
	for _, class := range []string{"smart", "feat", "m2m"} {
		classTotal := ct.ColTotal(class)
		if classTotal == 0 {
			continue
		}
		inTop3 := ct.Get("NL", class) + ct.Get("SE", class) + ct.Get("ES", class)
		r.setValue(class+"_top3_share", inTop3/classTotal)
	}
	return r
}

func runFig6(s *Session) *Report {
	v := mnoViews.get(s)
	r := &Report{
		ID:    "fig6",
		Title: "Device class vs roaming label",
		Paper: "I:H devices: 71.1% m2m, 27.1% smart; m2m devices: 74.7% I:H; smart 12.1% I:H; feat 6.4% I:H",
	}
	// Chunked class-vs-label join: sweeping the summaries (not the
	// class map) gives shards a deterministic order, and the
	// shard-ordered crosstab fold keeps the report bit-identical at
	// any worker count.
	parts := pipeline.Map(len(v.sums), v.workers, func(sh pipeline.Shard) *analysis.Crosstab {
		part := analysis.NewCrosstab()
		for i := sh.Lo; i < sh.Hi; i++ {
			sum := &v.sums[i]
			class := v.classOf[sum.Device]
			if class == core.ClassM2MMaybe {
				continue
			}
			part.Add(class.String(), v.labelOf[sum.Device].String(), 1)
		}
		return part
	})
	ct := analysis.NewCrosstab()
	for _, part := range parts {
		ct.Merge(part)
	}
	// Left heatmap: normalized per class (rows); right: per label.
	left := analysis.NewTable("class \\ label", "H:H", "V:H", "N:H", "I:H", "H:A", "V:A")
	right := analysis.NewTable("label \\ class", "smart", "feat", "m2m")
	for _, class := range []string{"smart", "feat", "m2m"} {
		cells := make([]interface{}, 0, 7)
		cells = append(cells, class)
		for _, l := range core.AllLabels {
			cells = append(cells, analysis.Pct(ct.RowShare(class, l.String())))
		}
		left.AddRow(cells...)
	}
	for _, l := range core.AllLabels {
		right.AddRow(l.String(),
			analysis.Pct(ct.ColShare("smart", l.String())),
			analysis.Pct(ct.ColShare("feat", l.String())),
			analysis.Pct(ct.ColShare("m2m", l.String())))
	}
	r.Tables = append(r.Tables, left, right)
	r.setValue("ih_m2m_share", ct.ColShare("m2m", "I:H"))
	r.setValue("ih_smart_share", ct.ColShare("smart", "I:H"))
	r.setValue("m2m_ih_share", ct.RowShare("m2m", "I:H"))
	r.setValue("smart_ih_share", ct.RowShare("smart", "I:H"))
	r.setValue("feat_ih_share", ct.RowShare("feat", "I:H"))
	return r
}

// groupECDF collects a per-device metric per (class, inbound) group.
// The label join and metric sweep chunk over internal/pipeline:
// summary chunks accumulate shard-local sample maps that concatenate
// in shard order, so every group's sample sequence — and therefore
// every ECDF — is bit-identical to a serial sweep at any worker
// count.
func groupECDF(v *mnoView, metric func(*catalog.Summary) (float64, bool)) map[string]*analysis.ECDF {
	parts := pipeline.Map(len(v.sums), v.workers, func(sh pipeline.Shard) map[string][]float64 {
		samples := map[string][]float64{}
		for i := sh.Lo; i < sh.Hi; i++ {
			sum := &v.sums[i]
			class := v.classOf[sum.Device]
			if class == core.ClassM2MMaybe {
				continue
			}
			label := v.labelOf[sum.Device]
			var roam string
			switch {
			case label.InboundRoamer():
				roam = "inbound"
			case label.Native() || label == core.LabelVH:
				roam = "native"
			default:
				continue
			}
			if val, ok := metric(sum); ok {
				key := class.String() + "/" + roam
				samples[key] = append(samples[key], val)
			}
		}
		return samples
	})
	samples := map[string][]float64{}
	for _, part := range parts {
		for k, vs := range part {
			samples[k] = append(samples[k], vs...)
		}
	}
	out := map[string]*analysis.ECDF{}
	for k, vs := range samples {
		out[k] = analysis.NewECDF(vs)
	}
	return out
}

func runFig7(s *Session) *Report {
	v := mnoViews.get(s)
	r := &Report{
		ID:    "fig7",
		Title: "Days active per device class and roaming status",
		Paper: "inbound m2m median 9 days vs inbound smart 2 days (4.5×); native classes comparable",
	}
	e := groupECDF(v, func(sum *catalog.Summary) (float64, bool) {
		return float64(sum.ActiveDays), true
	})
	tbl := analysis.NewTable("group", "n", "median", "p90")
	for _, k := range []string{"m2m/inbound", "smart/inbound", "m2m/native", "smart/native"} {
		ec := e[k]
		if ec == nil || ec.N() == 0 {
			continue
		}
		tbl.AddRow(k, ec.N(), ec.Median(), ec.Quantile(0.9))
		r.setValue(k+"_median", ec.Median())
	}
	r.Tables = append(r.Tables, tbl)
	if m, sm := e["m2m/inbound"], e["smart/inbound"]; m != nil && sm != nil && sm.Median() > 0 {
		r.setValue("inbound_m2m_smart_ratio", m.Median()/sm.Median())
	}
	return r
}

func runFig8(s *Session) *Report {
	v := mnoViews.get(s)
	r := &Report{
		ID:    "fig8",
		Title: "Radius of gyration per device class",
		Paper: "inbound m2m devices mostly stationary: ~80% below 1 km gyration",
	}
	e := groupECDF(v, func(sum *catalog.Summary) (float64, bool) {
		if !sum.HasLocation {
			return 0, false
		}
		return sum.MeanGyrationKm, true
	})
	tbl := analysis.NewTable("group", "n", "median km", "≤1 km", "p90 km")
	for _, k := range []string{"m2m/inbound", "smart/inbound", "m2m/native", "smart/native", "feat/native"} {
		ec := e[k]
		if ec == nil || ec.N() == 0 {
			continue
		}
		tbl.AddRow(k, ec.N(), ec.Median(), analysis.Pct(ec.At(1)), ec.Quantile(0.9))
		r.setValue(k+"_under_1km", ec.At(1))
		r.setValue(k+"_median_km", ec.Median())
	}
	r.Tables = append(r.Tables, tbl)
	return r
}

// ratBucket names the RATSet the way Fig 9 buckets devices.
func ratBucket(s radio.RATSet) string {
	if s.Empty() {
		return "none"
	}
	return s.String()
}

func runFig9(s *Session) *Report {
	v := mnoViews.get(s)
	r := &Report{
		ID:    "fig9",
		Title: "Device shares wrt services: connectivity, data, voice per RAT",
		Paper: "m2m: 77.4% 2G-only connectivity, 56.7% 2G-only data, 24.5% no data, 27.5% no voice, 60.6% 2G voice; feat: 50.9% 2G-only, 56.8% no data, 7.3% no voice",
	}
	// The three RAT-usage sweeps share one chunked pass: each shard
	// fills a crosstab triple, and the triples fold in shard order —
	// the same shard-ordered-merge pattern as fig5/fig6/groupECDF.
	type ratTables struct {
		conn, data, voice *analysis.Crosstab
	}
	parts := pipeline.Map(len(v.sums), v.workers, func(sh pipeline.Shard) ratTables {
		part := ratTables{analysis.NewCrosstab(), analysis.NewCrosstab(), analysis.NewCrosstab()}
		for i := sh.Lo; i < sh.Hi; i++ {
			sum := &v.sums[i]
			class := v.classOf[sum.Device]
			if class == core.ClassM2MMaybe {
				continue
			}
			part.conn.Add(class.String(), ratBucket(sum.RadioFlags), 1)
			part.data.Add(class.String(), ratBucket(sum.DataRATs), 1)
			part.voice.Add(class.String(), ratBucket(sum.VoiceRATs), 1)
		}
		return part
	})
	conn := analysis.NewCrosstab()
	data := analysis.NewCrosstab()
	voice := analysis.NewCrosstab()
	for _, part := range parts {
		conn.Merge(part.conn)
		data.Merge(part.data)
		voice.Merge(part.voice)
	}
	buckets := []string{"2G", "3G", "4G", "2G+3G", "2G+4G", "3G+4G", "2G+3G+4G", "none"}
	for name, ct := range map[string]*analysis.Crosstab{"connectivity": conn, "data": data, "voice": voice} {
		tbl := analysis.NewTable(append([]string{name}, buckets...)...)
		for _, class := range []string{"m2m", "smart", "feat"} {
			cells := []interface{}{class}
			for _, b := range buckets {
				cells = append(cells, analysis.Pct(ct.RowShare(class, b)))
			}
			tbl.AddRow(cells...)
		}
		r.Tables = append(r.Tables, tbl)
	}
	sort.Slice(r.Tables, func(i, j int) bool { return r.Tables[i].Header[0] < r.Tables[j].Header[0] })
	r.setValue("m2m_2g_only_conn", conn.RowShare("m2m", "2G"))
	r.setValue("m2m_2g_only_data", data.RowShare("m2m", "2G"))
	r.setValue("m2m_no_data", data.RowShare("m2m", "none"))
	r.setValue("m2m_no_voice", voice.RowShare("m2m", "none"))
	r.setValue("feat_2g_only_conn", conn.RowShare("feat", "2G"))
	r.setValue("feat_no_data", data.RowShare("feat", "none"))
	r.setValue("feat_no_voice", voice.RowShare("feat", "none"))
	r.setValue("smart_2g_only_conn", conn.RowShare("smart", "2G"))
	return r
}

func runFig10(s *Session) *Report {
	v := mnoViews.get(s)
	r := &Report{
		ID:    "fig10",
		Title: "Traffic per class and roaming status",
		Paper: "m2m signaling ≪ smartphone signaling; feat lowest; most m2m place no calls; inbound m2m data tiny; inbound smart data < native smart (bill shock)",
	}
	days := float64(v.ds.Days)
	sig := groupECDF(v, func(sum *catalog.Summary) (float64, bool) {
		if sum.ActiveDays == 0 {
			return 0, false
		}
		return float64(sum.Events) / float64(sum.ActiveDays), true
	})
	calls := groupECDF(v, func(sum *catalog.Summary) (float64, bool) {
		return float64(sum.Calls) / days, true
	})
	bytes := groupECDF(v, func(sum *catalog.Summary) (float64, bool) {
		if sum.ActiveDays == 0 {
			return 0, false
		}
		return float64(sum.Bytes) / float64(sum.ActiveDays), true
	})
	groups := []string{"smart/native", "smart/inbound", "m2m/native", "m2m/inbound", "feat/native", "feat/inbound"}
	tbl := analysis.NewTable("group", "signaling/day p50", "calls/day mean", "bytes/day p50")
	for _, g := range groups {
		se, ce, be := sig[g], calls[g], bytes[g]
		if se == nil || se.N() == 0 {
			continue
		}
		var cm, bm float64
		if ce != nil {
			cm = ce.Mean()
		}
		if be != nil {
			bm = be.Median()
		}
		tbl.AddRow(g, se.Median(), cm, bm)
		r.setValue(g+"_signaling_median", se.Median())
		r.setValue(g+"_calls_mean", cm)
		r.setValue(g+"_bytes_median", bm)
	}
	r.Tables = append(r.Tables, tbl)
	// Zero-call m2m share (Fig 10-center: "for the vast majority of
	// M2M devices we do not find any calls").
	zeroCalls, m2mN := 0, 0
	for i := range v.sums {
		sum := &v.sums[i]
		if v.classOf[sum.Device] != core.ClassM2M {
			continue
		}
		m2mN++
		if sum.Calls == 0 {
			zeroCalls++
		}
	}
	if m2mN > 0 {
		r.setValue("m2m_zero_call_share", float64(zeroCalls)/float64(m2mN))
	}
	return r
}

func runFig12(s *Session) *Report {
	v := mnoViews.get(s)
	r := &Report{
		ID:    "fig12",
		Title: "Connected cars vs smart meters",
		Paper: "cars look like roaming smartphones (mobile, heavy signaling and data); meters are stationary and quiet on both",
	}
	type groupStats struct {
		gyr, sig, bytes []float64
	}
	groups := map[string]*groupStats{"cars": {}, "meters": {}, "smartphones": {}}
	for i := range v.sums {
		sum := &v.sums[i]
		if !v.labelOf[sum.Device].InboundRoamer() {
			continue
		}
		var g *groupStats
		switch v.ds.Truth[sum.Device] {
		case devices.ClassConnectedCar:
			g = groups["cars"]
		case devices.ClassSmartMeter:
			g = groups["meters"]
		case devices.ClassSmartphone:
			g = groups["smartphones"]
		default:
			continue
		}
		if sum.HasLocation {
			g.gyr = append(g.gyr, sum.MeanGyrationKm)
		}
		if sum.ActiveDays > 0 {
			g.sig = append(g.sig, float64(sum.Events)/float64(sum.ActiveDays))
			g.bytes = append(g.bytes, float64(sum.Bytes)/float64(sum.ActiveDays))
		}
	}
	tbl := analysis.NewTable("group", "n", "gyration p50 km", "signaling/day p50", "bytes/day p50")
	for _, name := range []string{"cars", "meters", "smartphones"} {
		g := groups[name]
		if len(g.sig) == 0 {
			continue
		}
		ge := analysis.NewECDF(g.gyr)
		se := analysis.NewECDF(g.sig)
		be := analysis.NewECDF(g.bytes)
		tbl.AddRow(name, se.N(), ge.Median(), se.Median(), be.Median())
		r.setValue(name+"_gyration_median", ge.Median())
		r.setValue(name+"_signaling_median", se.Median())
		r.setValue(name+"_bytes_median", be.Median())
	}
	r.Tables = append(r.Tables, tbl)
	return r
}

func runT3(s *Session) *Report {
	v := mnoViews.get(s)
	r := &Report{
		ID:    "t3",
		Title: "SMIP-roaming provenance",
		Paper: "all roaming smart-meter SIMs provisioned by one NL operator; devices map to exactly two M2M module vendors (Gemalto, Telit)",
	}
	// Analyst-side detection: inbound roamers whose APNs match the
	// energy keywords (§4.4's method), then inspect SIM homes and
	// GSMA vendors.
	energy := map[string]bool{"smhp": true, "centricaplc": true, "rwe": true, "npower": true,
		"elster": true, "metering": true, "generalelectric": true, "bglobal": true,
		"smartgrid": true, "edfenergy": true, "amr": true}
	homes := map[mccmnc.PLMN]int{}
	vendors := map[string]int{}
	n := 0
	for i := range v.sums {
		sum := &v.sums[i]
		if !v.labelOf[sum.Device].InboundRoamer() {
			continue
		}
		matched := false
		for _, a := range sum.APNs {
			for _, kw := range a.Keywords() {
				if energy[kw] {
					matched = true
					break
				}
			}
			if matched {
				break
			}
		}
		if !matched {
			continue
		}
		n++
		homes[sum.SIM]++
		if sum.InfoOK {
			vendors[sum.Info.Vendor]++
		}
	}
	tbl := analysis.NewTable("home operator", "devices")
	homeKeys := make([]mccmnc.PLMN, 0, len(homes))
	for p := range homes {
		homeKeys = append(homeKeys, p)
	}
	sort.Slice(homeKeys, func(i, j int) bool { return homeKeys[i].Concat() < homeKeys[j].Concat() })
	for _, p := range homeKeys {
		name := p.String()
		if op, ok := mccmnc.Lookup(p); ok {
			name = fmt.Sprintf("%s (%s)", op.Name, p)
		}
		tbl.AddRow(name, homes[p])
	}
	tbl2 := analysis.NewTable("vendor", "devices")
	vendorKeys := make([]string, 0, len(vendors))
	for vd := range vendors {
		vendorKeys = append(vendorKeys, vd)
	}
	sort.Strings(vendorKeys)
	for _, vd := range vendorKeys {
		tbl2.AddRow(vd, vendors[vd])
	}
	r.Tables = append(r.Tables, tbl, tbl2)
	r.setValue("detected_meters", float64(n))
	r.setValue("home_operators", float64(len(homes)))
	r.setValue("vendors", float64(len(vendors)))
	return r
}
