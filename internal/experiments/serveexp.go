package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"whereroam/internal/analysis"
	"whereroam/internal/catalog"
	"whereroam/internal/serve"
	"whereroam/internal/store"
)

func init() {
	register("fed-serve", "Serving layer: archive-replayed per-site stats (roamd read model)", runFedServe)
}

// runFedServe computes, for every federation site archive, the exact
// statistics the roamd daemon serves over it: the archived CDR/xDR
// feed is replayed back into a catalog and the serving layer's
// stats and comparison views are derived with the same
// serve.ComputeStats / serve.ComputeCompare functions the HTTP
// handlers call. That shared code path is the report's point — a
// golden test can pin roamd's JSON responses bit-identical to these
// values.
//
// The archive persists the CDR/xDR plane only (radio events are
// live-only and the GSMA device database is not archived), so the
// served statistics are derived from archive-visible evidence alone;
// they intentionally differ from fed-sites' live-plane values.
func runFedServe(s *Session) *Report {
	r := &Report{
		ID:    "fed-serve",
		Title: "Archive-served per-site statistics",
		Paper: "§2/§5: operational visibility means querying the archived corpus, not rerunning collection — the serving layer answers from replayed slices",
	}

	dir := s.ArchiveDir
	if dir == "" {
		// The session was not configured to archive; build the same
		// federation into a scratch archive so the runner is
		// self-contained (fedsim -experiment fed-serve without
		// -archive still works).
		td, err := os.MkdirTemp("", "whereroam-fedserve-")
		if err != nil {
			r.Notes = append(r.Notes, "cannot create scratch archive: "+err.Error())
			return r
		}
		defer os.RemoveAll(td)
		scratch := &Federation{
			Seed: s.Seed, Factor: s.Factor, Workers: s.Workers,
			Streaming: s.Streaming, BoundedMemory: s.BoundedMemory,
			Hosts: s.Hosts, ArchiveDir: td,
		}
		scratch.FederationData()
		dir = td
	} else {
		// Ensure the session's generation (and with it the archive
		// write) has happened.
		s.FederationData()
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		r.Notes = append(r.Notes, "cannot list archive root: "+err.Error())
		return r
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), "site-") {
			names = append(names, strings.TrimPrefix(e.Name(), "site-"))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		r.Notes = append(r.Notes, "no site-* archives under "+dir)
		return r
	}

	tbl := analysis.NewTable("site", "devices", "records", "inbound", "inbound m2m", "events")
	cats := make(map[string]*catalog.Catalog, len(names))
	for _, name := range names {
		rp, err := store.Open(filepath.Join(dir, "site-"+name))
		if err != nil {
			r.Notes = append(r.Notes, "site "+name+": "+err.Error())
			continue
		}
		cat, _, err := rp.Replay(store.Query{}, s.Workers)
		if err != nil {
			r.Notes = append(r.Notes, "site "+name+": "+err.Error())
			continue
		}
		cats[name] = cat
		st := serve.ComputeStats(name, rp.Manifest().Days, cat, s.Workers)
		tbl.AddRow(name, st.Devices, st.Records,
			analysis.Pct(st.InboundShare), analysis.Pct(st.InboundM2MShare), st.Events)
		key := "site_" + name
		r.setValue(key+"_served_devices", float64(st.Devices))
		r.setValue(key+"_served_records", float64(st.Records))
		r.setValue(key+"_served_events", float64(st.Events))
		r.setValue(key+"_served_bytes", float64(st.Bytes))
		r.setValue(key+"_served_inbound_share", st.InboundShare)
		r.setValue(key+"_served_inbound_m2m_share", st.InboundM2MShare)
	}
	r.Tables = append(r.Tables, tbl)
	r.setValue("served_sites", float64(len(cats)))

	// The cross-site view roamd's /v1/compare serves: shared-device
	// counts prove the same fleets roam into every site (Table 1's
	// federation observation, now answerable from archives alone).
	cv := serve.ComputeCompare(cats, s.Workers)
	for _, p := range cv.Pairs {
		r.setValue(fmt.Sprintf("shared_%s_%s", p.A, p.B), float64(p.Shared))
	}
	r.Notes = append(r.Notes,
		"served values are derived from the archived CDR/xDR plane only (no radio events, no GSMA join) via the serve package's compute functions — the same code roamd's handlers execute")
	return r
}
