package experiments

import (
	"fmt"

	"whereroam/internal/analysis"
	"whereroam/internal/catalog"
	"whereroam/internal/core"
	"whereroam/internal/dataset"
	"whereroam/internal/identity"
	"whereroam/internal/netsim"
	"whereroam/internal/radio"
	"whereroam/internal/settlement"
)

func init() {
	register("ext-revenue", "Extension: occupancy vs wholesale revenue per class (§6/§9)", runExtRevenue)
	register("ext-transparency", "Extension: IR.88 transparency declarations (§1/§8)", runExtTransparency)
	register("ext-nbiot", "Extension: NB-IoT migration and RAT-based detection (§8)", runExtNBIoT)
	register("ext-latency", "Extension: HR vs IPX-hub-breakout latency (§3.2)", runExtLatency)
}

// runExtRevenue quantifies the paper's economic argument: M2M devices
// "occupy radio resources ... [but] do not generate traffic that
// would allow MNOs to accrue revenue".
func runExtRevenue(s *Session) *Report {
	v := mnoViews.get(s)
	r := &Report{
		ID:    "ext-revenue",
		Title: "Occupancy vs wholesale revenue per class",
		Paper: "§6/§9 argue inbound M2M consumes resources without matching roaming revenue; this extension prices the catalog with 2019 wholesale rates",
	}
	rates := settlement.DefaultRates()
	labelOf := v.labelOf
	classOf := v.classOf
	ecos := settlement.EconomicsByGroup(v.ds.Catalog, rates, func(rec *catalog.DailyRecord) string {
		if !labelOf[rec.Device].InboundRoamer() {
			return ""
		}
		class := classOf[rec.Device]
		if class == core.ClassM2MMaybe {
			return ""
		}
		return class.String()
	})
	tbl := analysis.NewTable("class", "devices", "event share", "revenue share", "EUR/device")
	for _, e := range ecos {
		tbl.AddRow(e.Group, e.Devices, e.EventShare, e.RevenueShare, e.RevenuePerDevice)
		r.setValue(e.Group+"_event_share", e.EventShare)
		r.setValue(e.Group+"_revenue_share", e.RevenueShare)
		r.setValue(e.Group+"_eur_per_device", e.RevenuePerDevice)
	}
	r.Tables = append(r.Tables, tbl)

	st := settlement.Settle(v.ds.Catalog, rates)
	r.setValue("total_revenue_eur", st.TotalRevenue())
	r.setValue("partners", float64(len(st.Lines)))
	r.Notes = append(r.Notes, st.String())
	return r
}

// runExtTransparency measures how far IR.88 declarations alone get a
// visited operator, and what they add on top of the paper's
// classifier.
func runExtTransparency(s *Session) *Report {
	v := mnoViews.get(s)
	r := &Report{
		ID:    "ext-transparency",
		Title: "IR.88 transparency declarations",
		Paper: "§1: GSMA recommends publishing dedicated M2M APNs/IMSI ranges; adoption is partial, so classification remains necessary",
	}
	ds := v.ds
	// Coverage of the declarations alone.
	trueM2M, declared := 0, 0
	for id, class := range ds.Truth {
		if !class.IsM2M() {
			continue
		}
		trueM2M++
		if ds.Declared[id] {
			declared++
		}
	}
	coverage := 0.0
	if trueM2M > 0 {
		coverage = float64(declared) / float64(trueM2M)
	}

	// Classifier with and without the declarations.
	plain := core.NewClassifier()
	withDecl := plain.WithDeclarations(ds.Declared)
	vPlain, _ := core.Validate(plain.ClassifyWorkers(v.sums, s.Workers), ds.Truth)
	vDecl, _ := core.Validate(withDecl.ClassifyWorkers(v.sums, s.Workers), ds.Truth)

	tbl := analysis.NewTable("config", "m2m recall", "m2m precision", "abstained")
	tbl.AddRow("declarations-only(coverage)", coverage, 1.0, 1-coverage)
	tbl.AddRow("classifier", vPlain.Recall(core.ClassM2M), vPlain.Precision(core.ClassM2M), vPlain.Abstained(core.ClassM2M))
	tbl.AddRow("classifier+declarations", vDecl.Recall(core.ClassM2M), vDecl.Precision(core.ClassM2M), vDecl.Abstained(core.ClassM2M))
	r.Tables = append(r.Tables, tbl)
	r.setValue("declaration_coverage", coverage)
	r.setValue("declaring_operators", float64(ds.Transparency.Len()))
	r.setValue("classifier_m2m_recall", vPlain.Recall(core.ClassM2M))
	r.setValue("combined_m2m_recall", vDecl.Recall(core.ClassM2M))
	return r
}

// runExtNBIoT plays the §8 forecast forward: a fraction of the
// roaming meter fleet migrates to NB-IoT, whose RAT identifies IoT
// devices to the visited network without any APN or catalog evidence.
func runExtNBIoT(s *Session) *Report {
	r := &Report{
		ID:    "ext-nbiot",
		Title: "NB-IoT migration and RAT-based detection",
		Paper: "§8: NB-IoT roaming trials were starting; 'NB-IoT will enable visited MNOs to easily detect the inbound roaming IoT devices'",
	}
	tbl := analysis.NewTable("migration", "RAT-rule recall", "signaling/device/day", "vs 2G fleet")
	var baselineSig float64
	for _, migration := range []float64{0, 0.5, 1.0} {
		cfg := dataset.DefaultSMIPConfig()
		cfg.Seed = s.Seed
		cfg.NativeMeters = 0
		cfg.RoamingMeters = s.scaled(6000)
		cfg.NBIoTMigration = migration
		ds := dataset.GenerateSMIP(cfg)

		// RAT-only detection: flag every device with NB-IoT activity.
		perDev := map[identity.DeviceID]radio.RATSet{}
		events := 0
		activeDays := 0
		for i := range ds.Catalog.Records {
			rec := &ds.Catalog.Records[i]
			perDev[rec.Device] |= rec.RadioFlags
			events += rec.Events
			activeDays++
		}
		detected := 0
		for _, flags := range perDev {
			if flags.Has(radio.RATNB) {
				detected++
			}
		}
		recall := 0.0
		if len(perDev) > 0 {
			recall = float64(detected) / float64(len(perDev))
		}
		sigPerDay := float64(events) / float64(activeDays)
		if migration == 0 {
			baselineSig = sigPerDay
		}
		ratio := sigPerDay / baselineSig
		tbl.AddRow(fmt.Sprintf("%.0f%%", migration*100), recall, sigPerDay, ratio)
		key := fmt.Sprintf("migration_%.0f", migration*100)
		r.setValue(key+"_rat_recall", recall)
		r.setValue(key+"_signaling_per_day", sigPerDay)
	}
	r.Tables = append(r.Tables, tbl)
	return r
}

// runExtLatency quantifies the §3.2 remark the paper leaves open: the
// user-plane penalty of home-routed roaming for far destinations, and
// what IPX hub breakout recovers.
func runExtLatency(s *Session) *Report {
	ds := s.M2M()
	r := &Report{
		ID:    "ext-latency",
		Title: "Home-routed vs IPX-hub-breakout user-plane latency",
		Paper: "§3.2: distances like Spain→Australia imply serious HR penalties; the platform uses different configurations for far destinations (analysis left out of scope)",
	}
	world := netsim.NewWorld(netsim.DefaultConfig())
	model := netsim.DefaultLatencyModel()

	// One sample per roaming device: its home and primary visited
	// network.
	aggs := aggregateM2M(ds)
	var hr, policy []float64
	worstHR := 0.0
	var worstPair string
	//roamvet:maporder-ok hr/policy samples feed analysis.NewECDF which sorts them (multisets are visit-order-invariant); the worst-pair argmax tie-breaks lexicographically
	for _, a := range aggs {
		if !a.roaming || a.last.IsZero() {
			continue
		}
		visited := a.last
		h := model.UserPlaneRTT(a.home, visited, netsim.ConfigHR)
		p := model.RTTUnderPolicy(world, a.home, visited)
		hr = append(hr, h)
		policy = append(policy, p)
		// Tie-break equal RTTs on the pair name: distinct pairs tie
		// on RTT routinely (the latency model is distance-bucketed),
		// and without the tie-break the reported pair would follow
		// the map visit order of this loop.
		pair := fmt.Sprintf("%s -> %s", a.home, visited)
		if h > worstHR || (h == worstHR && worstPair != "" && pair < worstPair) {
			worstHR = h
			worstPair = pair
		}
	}
	eHR := analysis.NewECDF(hr)
	ePol := analysis.NewECDF(policy)
	tbl := analysis.NewTable("config", "median ms", "p95 ms", "max ms")
	tbl.AddRow("home-routed", eHR.Median(), eHR.Quantile(0.95), eHR.Max())
	tbl.AddRow("platform policy (HR+IHBO)", ePol.Median(), ePol.Quantile(0.95), ePol.Max())
	r.Tables = append(r.Tables, tbl)
	r.setValue("hr_median_ms", eHR.Median())
	r.setValue("hr_p95_ms", eHR.Quantile(0.95))
	r.setValue("hr_max_ms", eHR.Max())
	r.setValue("policy_p95_ms", ePol.Quantile(0.95))
	r.setValue("policy_max_ms", ePol.Max())
	r.Notes = append(r.Notes, "worst HR pair: "+worstPair)
	return r
}
