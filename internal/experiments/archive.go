package experiments

import (
	"whereroam/internal/catalog"
	"whereroam/internal/dataset"
	"whereroam/internal/store"
)

// ArchiveTo builds the session's SMIP dataset through the streaming
// per-event measurement path while persisting its CDR/xDR feed to a
// segmented archive at dir (see internal/store) — persist-and-ingest
// in one pass. The archived plane is the CDR/xDR feed (radio events
// are live-only), which is exactly what ReplayFrom rebuilds.
//
// On a streaming session the built dataset is cached as the session's
// SMIP dataset (it is the exact dataset SMIP() would build), so later
// runners reuse it. A batch session's SMIP() uses the direct
// aggregate generator — a different dataset family — so there the
// archive build is a side artefact and the cache is left alone:
// archiving never changes a session's experiment outputs.
func (s *Federation) ArchiveTo(dir string) (*dataset.SMIPDataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := dataset.DefaultSMIPConfig()
	cfg.Seed = s.Seed
	cfg.NativeMeters = s.scaled(cfg.NativeMeters)
	cfg.RoamingMeters = s.scaled(cfg.RoamingMeters)
	cfg.Workers = s.Workers
	w, err := store.NewWriter(dir, store.Meta{Host: cfg.Host, Start: cfg.Start, Days: cfg.Days}, 0)
	if err != nil {
		return nil, err
	}
	cfg.ArchiveCDRs = w.Sink()
	ds := dataset.GenerateSMIPStreaming(cfg)
	if err := w.Close(); err != nil {
		return nil, err
	}
	if s.Streaming {
		s.smip = ds
	}
	return ds, nil
}

// ReplayFrom opens the segmented archive at dir and rebuilds its
// CDR-plane devices-catalog on the session's worker budget, with the
// query pruning segments against the store index before any body is
// read. The replayed catalog is bit-identical to the live build over
// the same feed at any worker count.
func (s *Federation) ReplayFrom(dir string, q store.Query) (*catalog.Catalog, *store.ReplayStats, error) {
	r, err := store.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	return r.Replay(q, s.Workers)
}
