package experiments

import (
	"fmt"
	"sort"

	"whereroam/internal/analysis"
	"whereroam/internal/dataset"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/signaling"
)

func init() {
	register("t1", "HMNO shares and platform footprint (§3.2)", runT1)
	register("fig2", "Share of M2M devices per visited country per HMNO", runFig2)
	register("fig3l", "CDF of signaling records per device", runFig3Left)
	register("fig3c", "Number of VMNOs used by roaming devices", runFig3Center)
	register("fig3r", "Inter-VMNO switches per device", runFig3Right)
}

// m2mDeviceAgg is the per-device aggregate the §3 analyses share.
type m2mDeviceAgg struct {
	home      mccmnc.PLMN
	roaming   bool
	total     int
	okCount   int
	visited   map[mccmnc.PLMN]bool
	countries map[string]bool
	switches  int
	last      mccmnc.PLMN
	primary   string // ISO of the most-used visited country
	useCount  map[string]int
}

// aggregateM2M walks the time-sorted transaction stream once and
// produces per-device aggregates.
func aggregateM2M(ds *dataset.M2MDataset) map[identity.DeviceID]*m2mDeviceAgg {
	aggs := make(map[identity.DeviceID]*m2mDeviceAgg, len(ds.Truth))
	for i := range ds.Transactions {
		tx := &ds.Transactions[i]
		a := aggs[tx.Device]
		if a == nil {
			truth := ds.Truth[tx.Device]
			a = &m2mDeviceAgg{
				home:      truth.Home,
				roaming:   truth.Roaming,
				visited:   map[mccmnc.PLMN]bool{},
				countries: map[string]bool{},
				useCount:  map[string]int{},
			}
			aggs[tx.Device] = a
		}
		a.total++
		if tx.Result.OK() {
			a.okCount++
		}
		a.visited[tx.Visited] = true
		iso := mccmnc.ISOByMCC(tx.Visited.MCC)
		a.countries[iso] = true
		a.useCount[iso]++
		// Switch counting: CancelLocation marks the departure from a
		// VMNO; counting visited-network changes across the ordered
		// stream measures the same thing the paper reads from its
		// traces.
		if tx.Procedure != signaling.ProcCancelLocation {
			if !a.last.IsZero() && tx.Visited != a.last {
				a.switches++
			}
			a.last = tx.Visited
		}
	}
	//roamvet:maporder-ok each iteration writes only the ranged entry's own primary field; entries are visited exactly once
	for _, a := range aggs {
		best, bestN := "", -1
		//roamvet:maporder-ok argmax with a lexicographic tie-break ((n, -iso) is a total order), so the winner is visit-order-independent
		for iso, n := range a.useCount {
			if n > bestN || (n == bestN && iso < best) {
				best, bestN = iso, n
			}
		}
		a.primary = best
	}
	return aggs
}

// sortedAggDevices returns the aggregate map's device keys in
// ascending ID order — the pinned iteration order for sweeps whose
// output depends on visit order (crosstab insertion, for one).
func sortedAggDevices(aggs map[identity.DeviceID]*m2mDeviceAgg) []identity.DeviceID {
	devs := make([]identity.DeviceID, 0, len(aggs))
	for dev := range aggs {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	return devs
}

var hmnoNames = map[mccmnc.PLMN]string{
	mccmnc.MustParse("21407"):  "ES",
	mccmnc.MustParse("334020"): "MX",
	mccmnc.MustParse("722070"): "AR",
	mccmnc.MustParse("26201"):  "DE",
}

func runT1(s *Session) *Report {
	ds := s.M2M()
	aggs := aggregateM2M(ds)
	r := &Report{
		ID:    "t1",
		Title: "HMNO shares and platform footprint",
		Paper: "ES 52.3% of devices over 77 countries/127 VMNOs; MX 42.2% (90% at home); AR 4.7%; DE ~1k devices/18 VMNOs; ES generates 81.8% of signaling, 92% of it while roaming",
	}

	type hmnoStat struct {
		devices   int
		signaling int
		roamTx    int
		countries map[string]bool
		vmnos     map[mccmnc.PLMN]bool
	}
	stats := map[string]*hmnoStat{}
	//roamvet:maporder-ok per-HMNO fold of commutative effects only: integer adds and idempotent set-inserts, plus a first-visit ensure-exists — no counter depends on visit order
	for _, a := range aggs {
		name := hmnoNames[a.home]
		st := stats[name]
		if st == nil {
			st = &hmnoStat{countries: map[string]bool{}, vmnos: map[mccmnc.PLMN]bool{}}
			stats[name] = st
		}
		st.devices++
		st.signaling += a.total
		for c := range a.countries {
			st.countries[c] = true
		}
		for v := range a.visited {
			st.vmnos[v] = true
		}
	}
	totalDevices, totalSignaling := 0, 0
	for _, st := range stats {
		totalDevices += st.devices
		totalSignaling += st.signaling
	}
	// ES roaming-signaling share.
	esRoamTx, esTx := 0, 0
	for i := range ds.Transactions {
		tx := &ds.Transactions[i]
		if hmnoNames[tx.SIM] == "ES" {
			esTx++
			if tx.Roaming() {
				esRoamTx++
			}
		}
	}

	tbl := analysis.NewTable("HMNO", "devices", "share", "countries", "VMNOs", "signaling share")
	for _, name := range []string{"ES", "MX", "AR", "DE"} {
		st := stats[name]
		if st == nil {
			continue
		}
		devShare := float64(st.devices) / float64(totalDevices)
		sigShare := float64(st.signaling) / float64(totalSignaling)
		tbl.AddRow(name, st.devices, devShare, len(st.countries), len(st.vmnos), sigShare)
		r.setValue(name+"_share", devShare)
		r.setValue(name+"_countries", float64(len(st.countries)))
		r.setValue(name+"_vmnos", float64(len(st.vmnos)))
		r.setValue(name+"_signaling_share", sigShare)
	}
	r.setValue("es_roaming_signaling_share", float64(esRoamTx)/float64(esTx))
	r.Tables = append(r.Tables, tbl)
	return r
}

func runFig2(s *Session) *Report {
	ds := s.M2M()
	aggs := aggregateM2M(ds)
	r := &Report{
		ID:    "fig2",
		Title: "Share of M2M devices per visited country per HMNO",
		Paper: "ES devices spread over ~77 countries; MX/AR ~90% in their home country; DE spread across many European VMNOs",
	}
	// Crosstab rows and columns keep insertion order, so the Add
	// sweep must visit devices in a pinned order — iterating the
	// aggs map directly would make tied rows land in per-run order
	// after the total sort (and columns in per-run order, full stop).
	ct := analysis.NewCrosstab()
	for _, dev := range sortedAggDevices(aggs) {
		a := aggs[dev]
		ct.Add(a.primary, hmnoNames[a.home], 1)
	}
	ct.SortRowsByTotal()

	tbl := analysis.NewTable("visited", "ES", "MX", "AR", "DE")
	rows := ct.Rows()
	const maxRows = 15
	for i, iso := range rows {
		if i >= maxRows {
			break
		}
		tbl.AddRow(iso,
			analysis.Pct(ct.ColShare(iso, "ES")),
			analysis.Pct(ct.ColShare(iso, "MX")),
			analysis.Pct(ct.ColShare(iso, "AR")),
			analysis.Pct(ct.ColShare(iso, "DE")))
	}
	r.Tables = append(r.Tables, tbl)

	// Countries hosting >= 0.1% of each HMNO's devices (the paper's
	// breakdown threshold).
	for _, hmno := range []string{"ES", "MX", "AR", "DE"} {
		total := ct.ColTotal(hmno)
		if total == 0 {
			continue
		}
		n := 0
		for _, iso := range rows {
			if ct.Get(iso, hmno)/total >= 0.001 {
				n++
			}
		}
		r.setValue(hmno+"_visited_countries", float64(n))
	}
	// Home-country share for MX (the paper's 90%-at-home finding).
	r.setValue("mx_home_share", ct.ColShare("MX", "MX"))
	r.setValue("ar_home_share", ct.ColShare("AR", "AR"))
	return r
}

func runFig3Left(s *Session) *Report {
	ds := s.M2M()
	aggs := aggregateM2M(ds)
	r := &Report{
		ID:    "fig3l",
		Title: "CDF of signaling records per device",
		Paper: "mean ≈267 records; 97% of devices < 2000; max ≈130k (flooders); roaming median ≈10× native median",
	}
	var all, ok4g, roaming, native []float64
	//roamvet:maporder-ok every sample slice feeds analysis.NewECDF, which sorts its input — the collected multisets are visit-order-invariant
	for _, a := range aggs {
		v := float64(a.total)
		all = append(all, v)
		if a.okCount > 0 {
			ok4g = append(ok4g, v)
		}
		if a.roaming {
			roaming = append(roaming, v)
		} else {
			native = append(native, v)
		}
	}
	eAll := analysis.NewECDF(all)
	eRoam := analysis.NewECDF(roaming)
	eNat := analysis.NewECDF(native)
	points := []float64{10, 50, 100, 267, 500, 1000, 2000, 10000, 100000}
	tbl := analysis.NewTable("records ≤", "all", "4G-ok", "roaming", "native")
	eOK := analysis.NewECDF(ok4g)
	for _, p := range points {
		tbl.AddRow(fmt.Sprintf("%.0f", p),
			analysis.Pct(eAll.At(p)), analysis.Pct(eOK.At(p)),
			analysis.Pct(eRoam.At(p)), analysis.Pct(eNat.At(p)))
	}
	r.Tables = append(r.Tables, tbl)
	r.setValue("mean_records", eAll.Mean())
	r.setValue("p_under_2000", eAll.At(2000))
	r.setValue("max_records", eAll.Max())
	r.setValue("roaming_median", eRoam.Median())
	r.setValue("native_median", eNat.Median())
	r.setValue("roaming_native_ratio", eRoam.Median()/eNat.Median())
	r.setValue("ok_device_share", float64(len(ok4g))/float64(len(all)))
	return r
}

func runFig3Center(s *Session) *Report {
	ds := s.M2M()
	aggs := aggregateM2M(ds)
	r := &Report{
		ID:    "fig3c",
		Title: "Number of VMNOs used by roaming devices",
		Paper: "65% of roaming devices use one VMNO; >25% two; 5% three+; failed-only devices attempt up to 19",
	}
	counts := map[int]int{}
	roamers := 0
	maxV := 0
	for _, a := range aggs {
		if !a.roaming {
			continue
		}
		roamers++
		n := len(a.visited)
		counts[n]++
		if n > maxV {
			maxV = n
		}
	}
	tbl := analysis.NewTable("VMNOs", "devices", "share")
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		tbl.AddRow(k, counts[k], float64(counts[k])/float64(roamers))
	}
	r.Tables = append(r.Tables, tbl)
	three := 0
	for k, n := range counts {
		if k >= 3 {
			three += n
		}
	}
	r.setValue("share_1", float64(counts[1])/float64(roamers))
	r.setValue("share_2", float64(counts[2])/float64(roamers))
	r.setValue("share_3plus", float64(three)/float64(roamers))
	r.setValue("max_vmnos", float64(maxV))
	return r
}

func runFig3Right(s *Session) *Report {
	ds := s.M2M()
	aggs := aggregateM2M(ds)
	r := &Report{
		ID:    "fig3r",
		Title: "Inter-VMNO switches per device (devices with ≥2 VMNOs)",
		Paper: "~50% switch at most twice over 11 days; 20% switch at least daily; ~3% switch 100–3000 times",
	}
	var switches []float64
	//roamvet:maporder-ok the switch counts feed analysis.NewECDF, which sorts its input — the collected multiset is visit-order-invariant
	for _, a := range aggs {
		if !a.roaming || len(a.visited) < 2 {
			continue
		}
		switches = append(switches, float64(a.switches))
	}
	e := analysis.NewECDF(switches)
	tbl := analysis.NewTable("switches ≤", "share")
	for _, p := range []float64{1, 2, 5, 10, float64(ds.Days), 50, 100, 1000, 3000} {
		tbl.AddRow(fmt.Sprintf("%.0f", p), analysis.Pct(e.At(p)))
	}
	r.Tables = append(r.Tables, tbl)
	r.setValue("share_le2", e.At(2))
	r.setValue("share_daily_plus", 1-e.At(float64(ds.Days)-1))
	r.setValue("share_100plus", 1-e.At(99))
	r.setValue("max_switches", e.Max())
	return r
}
