package experiments

import (
	"whereroam/internal/analysis"
	"whereroam/internal/catalog"
	"whereroam/internal/identity"
	"whereroam/internal/radio"
)

func init() {
	register("fig11", "SMIP native vs roaming smart meters (§7.1)", runFig11)
}

func runFig11(s *Session) *Report {
	ds := s.SMIP()
	r := &Report{
		ID:    "fig11",
		Title: "SMIP device activity: native vs roaming",
		Paper: "native: 73% active the whole period (83% for the day-1 cohort); roaming: 50% active ≤5 days; roaming signaling ≈10× native per device-day; failures: ~10% of all devices, 35% of roaming; roaming 2G-only, native 2/3 on 3G only",
	}

	type devAgg struct {
		activeDays int
		firstDay   int
		events     int
		failed     int
		flags      radio.RATSet
	}
	aggs := map[identity.DeviceID]*devAgg{}
	for i := range ds.Catalog.Records {
		rec := &ds.Catalog.Records[i]
		a := aggs[rec.Device]
		if a == nil {
			a = &devAgg{firstDay: rec.Day}
			aggs[rec.Device] = a
		}
		a.activeDays++
		if rec.Day < a.firstDay {
			a.firstDay = rec.Day
		}
		a.events += rec.Events
		a.failed += rec.FailedEvents
		a.flags |= rec.RadioFlags
	}

	type cohort struct {
		days, daysDay1      []float64
		events, activeDays  float64
		withFail, n         int
		only2G, only3G, mix int
	}
	var native, roaming cohort
	//roamvet:maporder-ok the day-count slices feed analysis.NewECDF which sorts them; every other cohort field is a commutative integer(-valued) add
	for dev, a := range aggs {
		c := &roaming
		if ds.Native[dev] {
			c = &native
		}
		c.n++
		c.days = append(c.days, float64(a.activeDays))
		if a.firstDay == 0 {
			c.daysDay1 = append(c.daysDay1, float64(a.activeDays))
		}
		//roamvet:floatfold-ok sums of integer-valued float64 terms far below 2^53 are exact, so addition order cannot change the result
		c.events += float64(a.events)
		//roamvet:floatfold-ok sums of integer-valued float64 terms far below 2^53 are exact, so addition order cannot change the result
		c.activeDays += float64(a.activeDays)
		if a.failed > 0 {
			c.withFail++
		}
		switch {
		case a.flags.Only(radio.RAT2G):
			c.only2G++
		case a.flags.Only(radio.RAT3G):
			c.only3G++
		default:
			c.mix++
		}
	}

	render := func(name string, c *cohort) {
		e := analysis.NewECDF(c.days)
		e1 := analysis.NewECDF(c.daysDay1)
		full := float64(ds.Days)
		tbl := analysis.NewTable(name, "value")
		tbl.AddRow("devices", c.n)
		tbl.AddRow("active whole period", analysis.Pct(1-e.At(full-1)))
		tbl.AddRow("day-1 cohort whole period", analysis.Pct(1-e1.At(full-1)))
		tbl.AddRow("active ≤5 days", analysis.Pct(e.At(5)))
		tbl.AddRow("signaling msgs/device/day", c.events/c.activeDays)
		tbl.AddRow("devices with failures", analysis.Pct(float64(c.withFail)/float64(c.n)))
		tbl.AddRow("2G only", analysis.Pct(float64(c.only2G)/float64(c.n)))
		tbl.AddRow("3G only", analysis.Pct(float64(c.only3G)/float64(c.n)))
		r.Tables = append(r.Tables, tbl)
		prefix := name + "_"
		r.setValue(prefix+"full_period_share", 1-e.At(full-1))
		r.setValue(prefix+"day1_full_period_share", 1-e1.At(full-1))
		r.setValue(prefix+"le5_days_share", e.At(5))
		r.setValue(prefix+"signaling_per_day", c.events/c.activeDays)
		r.setValue(prefix+"fail_device_share", float64(c.withFail)/float64(c.n))
		r.setValue(prefix+"only2g_share", float64(c.only2G)/float64(c.n))
		r.setValue(prefix+"only3g_share", float64(c.only3G)/float64(c.n))
	}
	render("native", &native)
	render("roaming", &roaming)
	r.setValue("signaling_ratio",
		(roaming.events/roaming.activeDays)/(native.events/native.activeDays))
	allFail := float64(native.withFail+roaming.withFail) / float64(native.n+roaming.n)
	r.setValue("all_fail_device_share", allFail)
	return r
}

// SMIPCatalog exposes the SMIP dataset's catalog for reuse by
// examples (it is not an experiment itself).
func SMIPCatalog(s *Session) *catalog.Catalog { return s.SMIP().Catalog }
