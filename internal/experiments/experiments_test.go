package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// One shared session across the test binary: experiments share the
// datasets the way cmd/roamrepro would.
var (
	sessOnce sync.Once
	sess     *Session
)

func session(t testing.TB) *Session {
	sessOnce.Do(func() {
		sess = NewSession(1, 0.35) // ~4.2k platform SIMs, ~10.5k MNO devices
	})
	return sess
}

func run(t testing.TB, id string) *Report {
	t.Helper()
	r, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	rep := r.Run(session(t))
	if rep.ID != id {
		t.Fatalf("report ID = %q, want %q", rep.ID, id)
	}
	return rep
}

// within asserts a value sits inside [lo, hi].
func within(t *testing.T, rep *Report, key string, lo, hi float64) {
	t.Helper()
	if !rep.Has(key) {
		t.Fatalf("%s: missing value %q\n%s", rep.ID, key, rep)
	}
	v := rep.Value(key)
	if v < lo || v > hi {
		t.Errorf("%s: %s = %.4f, want [%.3f, %.3f]", rep.ID, key, v, lo, hi)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"t1", "fig2", "fig3l", "fig3c", "fig3r", "t2", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "t3",
		"abl-classifier", "abl-gyration", "abl-policy",
		"ext-revenue", "ext-transparency", "ext-nbiot", "ext-latency",
		"fed-sites", "fed-agreement", "fed-validation"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID should fail for unknown ids")
	}
}

func TestT1HMNOShares(t *testing.T) {
	rep := run(t, "t1")
	within(t, rep, "ES_share", 0.48, 0.57)                  // paper: 52.3%
	within(t, rep, "MX_share", 0.38, 0.47)                  // paper: 42.2%
	within(t, rep, "AR_share", 0.02, 0.08)                  // paper: 4.7%
	within(t, rep, "ES_signaling_share", 0.70, 0.92)        // paper: 81.8%
	within(t, rep, "es_roaming_signaling_share", 0.85, 1.0) // paper: 92%
	// ES coverage: dozens of countries; far beyond any other HMNO.
	within(t, rep, "ES_countries", 40, 85) // paper: 77
	within(t, rep, "MX_countries", 2, 8)   // paper: 7
	if rep.Value("ES_vmnos") <= rep.Value("MX_vmnos") {
		t.Errorf("ES VMNO count %.0f should exceed MX %.0f",
			rep.Value("ES_vmnos"), rep.Value("MX_vmnos"))
	}
}

func TestFig2VisitedCountries(t *testing.T) {
	rep := run(t, "fig2")
	within(t, rep, "mx_home_share", 0.80, 1.0) // paper: ~90% at home
	within(t, rep, "ar_home_share", 0.85, 1.0)
	within(t, rep, "ES_visited_countries", 25, 85)
	if rep.Value("ES_visited_countries") <= rep.Value("MX_visited_countries") {
		t.Error("ES must roam into more countries than MX")
	}
}

func TestFig3LeftSignalingCDF(t *testing.T) {
	rep := run(t, "fig3l")
	within(t, rep, "mean_records", 100, 800)      // paper: 267
	within(t, rep, "p_under_2000", 0.90, 1.0)     // paper: 97%
	within(t, rep, "roaming_native_ratio", 4, 25) // paper: ~10x
	// The long tail must exist: max far beyond the mean.
	if rep.Value("max_records") < 20*rep.Value("mean_records") {
		t.Errorf("tail too short: max %.0f vs mean %.0f",
			rep.Value("max_records"), rep.Value("mean_records"))
	}
	// §3.3: ~60% of devices have at least one successful procedure.
	within(t, rep, "ok_device_share", 0.50, 0.70)
}

func TestFig3CenterVMNOCounts(t *testing.T) {
	rep := run(t, "fig3c")
	within(t, rep, "share_1", 0.53, 0.72)     // paper: 65%
	within(t, rep, "share_2", 0.15, 0.35)     // paper: >25%
	within(t, rep, "share_3plus", 0.02, 0.15) // paper: ~5%
	within(t, rep, "max_vmnos", 8, 19)        // paper: up to 19
}

func TestFig3RightSwitches(t *testing.T) {
	rep := run(t, "fig3r")
	within(t, rep, "share_le2", 0.35, 0.65)        // paper: ~50%
	within(t, rep, "share_daily_plus", 0.10, 0.35) // paper: ~20%
	within(t, rep, "share_100plus", 0.005, 0.08)   // paper: ~3%
	within(t, rep, "max_switches", 100, 3000)
}

func TestT2PopulationBreakdown(t *testing.T) {
	rep := run(t, "t2")
	within(t, rep, "label_H:H", 0.35, 0.60) // paper: ~48%/day
	within(t, rep, "label_V:H", 0.22, 0.45) // paper: ~33%/day
	within(t, rep, "label_I:H", 0.08, 0.28) // paper: ~18%/day
	within(t, rep, "class_smart", 0.55, 0.70)
	within(t, rep, "class_feat", 0.04, 0.12)
	within(t, rep, "class_m2m", 0.20, 0.33)
	within(t, rep, "class_m2m-maybe", 0.0, 0.09)
	within(t, rep, "classifier_accuracy", 0.93, 1.0)
	// Ordering: H:H > V:H > I:H, the paper's ranking.
	if !(rep.Value("label_H:H") > rep.Value("label_V:H") &&
		rep.Value("label_V:H") > rep.Value("label_I:H")) {
		t.Errorf("label ordering broken: %v", rep.Values)
	}
}

func TestFig5HomeCountries(t *testing.T) {
	rep := run(t, "fig5")
	within(t, rep, "top3_share", 0.50, 0.75)       // paper: ~60%
	within(t, rep, "top20_share", 0.90, 1.0)       // paper: >=93%
	within(t, rep, "m2m_top3_share", 0.72, 0.92)   // paper: 83%
	within(t, rep, "smart_top3_share", 0.08, 0.30) // paper: 17%
	within(t, rep, "feat_top3_share", 0.20, 0.55)  // paper: 35%
	// m2m concentration must exceed the people-device classes.
	if rep.Value("m2m_top3_share") <= rep.Value("smart_top3_share") {
		t.Error("m2m home countries must be more concentrated than smartphones")
	}
}

func TestFig6ClassVsLabel(t *testing.T) {
	rep := run(t, "fig6")
	within(t, rep, "ih_m2m_share", 0.55, 0.85)   // paper: 71.1%
	within(t, rep, "ih_smart_share", 0.12, 0.40) // paper: 27.1%
	within(t, rep, "m2m_ih_share", 0.62, 0.85)   // paper: 74.7%
	within(t, rep, "smart_ih_share", 0.06, 0.20) // paper: 12.1%
	within(t, rep, "feat_ih_share", 0.02, 0.15)  // paper: 6.4%
	// The headline: inbound roamers are mostly machines.
	if rep.Value("ih_m2m_share") <= rep.Value("ih_smart_share") {
		t.Error("I:H population must be m2m-dominated")
	}
}

func TestFig7ActiveDays(t *testing.T) {
	rep := run(t, "fig7")
	within(t, rep, "m2m/inbound_median", 5, 16)        // paper: 9
	within(t, rep, "smart/inbound_median", 1, 4)       // paper: 2
	within(t, rep, "inbound_m2m_smart_ratio", 2.5, 10) // paper: 4.5x
	// Native classes behave comparably (both long-lived).
	nm := rep.Value("m2m/native_median")
	ns := rep.Value("smart/native_median")
	if math.Abs(nm-ns) > 6 {
		t.Errorf("native medians diverge: m2m %.0f vs smart %.0f", nm, ns)
	}
}

func TestFig8Gyration(t *testing.T) {
	rep := run(t, "fig8")
	within(t, rep, "m2m/inbound_under_1km", 0.60, 0.95) // paper: ~80%
	// Meters sit still; smartphones move.
	if rep.Value("m2m/inbound_median_km") >= rep.Value("smart/inbound_median_km") {
		t.Error("inbound m2m should be more stationary than inbound smartphones")
	}
}

func TestFig9RATUsage(t *testing.T) {
	rep := run(t, "fig9")
	within(t, rep, "m2m_2g_only_conn", 0.55, 0.90)  // paper: 77.4%
	within(t, rep, "m2m_2g_only_data", 0.40, 0.75)  // paper: 56.7%
	within(t, rep, "m2m_no_data", 0.10, 0.35)       // paper: 24.5%
	within(t, rep, "m2m_no_voice", 0.55, 0.95)      // paper's m2m voice users are a minority in our vertical mix
	within(t, rep, "feat_2g_only_conn", 0.35, 0.65) // paper: 50.9%
	within(t, rep, "feat_no_data", 0.45, 0.70)      // paper: 56.8%
	within(t, rep, "feat_no_voice", 0.02, 0.15)     // paper: 7.3%
	within(t, rep, "smart_2g_only_conn", 0.0, 0.05) // smartphones are 3G/4G
}

func TestFig10Traffic(t *testing.T) {
	rep := run(t, "fig10")
	// Signaling ordering: m2m << smart; feat < smart.
	sm := rep.Value("smart/native_signaling_median")
	m2m := rep.Value("m2m/native_signaling_median")
	feat := rep.Value("feat/native_signaling_median")
	if !(m2m < sm && feat < sm) {
		t.Errorf("signaling ordering broken: m2m=%.0f feat=%.0f smart=%.0f", m2m, feat, sm)
	}
	// Most m2m devices never call.
	within(t, rep, "m2m_zero_call_share", 0.75, 1.0)
	// Bill shock: inbound smartphones move far less data than native.
	if rep.Value("smart/inbound_bytes_median") >= rep.Value("smart/native_bytes_median") {
		t.Error("inbound smartphone data should be below native (bill shock)")
	}
	// Inbound m2m data is tiny next to inbound smartphones.
	if rep.Value("m2m/inbound_bytes_median") >= rep.Value("smart/inbound_bytes_median") {
		t.Error("inbound m2m data should be below inbound smartphones")
	}
}

func TestFig11SMIP(t *testing.T) {
	rep := run(t, "fig11")
	within(t, rep, "native_full_period_share", 0.60, 0.85)      // paper: 73%
	within(t, rep, "native_day1_full_period_share", 0.72, 0.95) // paper: 83%
	within(t, rep, "roaming_le5_days_share", 0.35, 0.70)        // paper: ~50%
	within(t, rep, "signaling_ratio", 5, 16)                    // paper: ~10x
	within(t, rep, "roaming_fail_device_share", 0.25, 0.50)     // paper: 35%
	within(t, rep, "all_fail_device_share", 0.05, 0.30)         // paper: ~10% (of October registrants)
	within(t, rep, "roaming_only2g_share", 0.95, 1.0)           // paper: all 2G
	within(t, rep, "native_only3g_share", 0.55, 0.80)           // paper: 2/3
	// Day-1 cohort effect: restricting to day-1 devices raises the
	// full-period share (§7.1's deployment-in-progress signal).
	if rep.Value("native_day1_full_period_share") <= rep.Value("native_full_period_share") {
		t.Error("day-1 cohort must be more persistent than the full set")
	}
}

func TestFig12Verticals(t *testing.T) {
	rep := run(t, "fig12")
	// Cars ≈ smartphones; meters ≪ both, on every axis.
	carsG, metersG := rep.Value("cars_gyration_median"), rep.Value("meters_gyration_median")
	carsS, metersS := rep.Value("cars_signaling_median"), rep.Value("meters_signaling_median")
	carsB, metersB := rep.Value("cars_bytes_median"), rep.Value("meters_bytes_median")
	smartS := rep.Value("smartphones_signaling_median")
	if metersG >= carsG {
		t.Errorf("meter gyration %.2f should be below cars %.2f", metersG, carsG)
	}
	if metersS >= carsS {
		t.Errorf("meter signaling %.0f should be below cars %.0f", metersS, carsS)
	}
	if metersB >= carsB {
		t.Errorf("meter bytes %.0f should be below cars %.0f", metersB, carsB)
	}
	// Cars within the smartphone order of magnitude (Fig 12's "very
	// similar to normal inbound roaming smartphones").
	if carsS < smartS/4 || carsS > smartS*8 {
		t.Errorf("car signaling %.0f not smartphone-like (%.0f)", carsS, smartS)
	}
}

func TestT3SMIPProvenance(t *testing.T) {
	rep := run(t, "t3")
	if got := rep.Value("home_operators"); got != 1 {
		t.Errorf("home operators = %.0f, want exactly 1 (Vodafone NL)", got)
	}
	if got := rep.Value("vendors"); got != 2 {
		t.Errorf("vendors = %.0f, want exactly 2 (Gemalto, Telit)", got)
	}
	if rep.Value("detected_meters") < 100 {
		t.Errorf("detected meters = %.0f, want a large population", rep.Value("detected_meters"))
	}
}

func TestAblationClassifier(t *testing.T) {
	rep := run(t, "abl-classifier")
	ko := rep.Value("keywords-only_m2m_recall")
	va := rep.Value("validated-apns_m2m_recall")
	full := rep.Value("full-pipeline_m2m_recall")
	if !(ko <= va+1e-9 && va < full) {
		t.Errorf("recall must grow along the pipeline: %.3f -> %.3f -> %.3f", ko, va, full)
	}
	// §4.3: about a fifth of devices have no APN.
	within(t, rep, "no_apn_share", 0.08, 0.35)
}

func TestAblationGyration(t *testing.T) {
	rep := run(t, "abl-gyration")
	w := rep.Value("weighted_under_1km")
	u := rep.Value("unweighted_under_1km")
	if w < 0.97 {
		t.Errorf("weighted metric misreads stationary devices: %.3f under 1 km", w)
	}
	if u > w-0.2 {
		t.Errorf("unweighted metric should inflate mobility: %.3f vs %.3f", u, w)
	}
}

func TestAblationPolicy(t *testing.T) {
	rep := run(t, "abl-policy")
	// Strongest-first concentrates load; rotate/sticky spread it.
	strongest := rep.Value("strongest_top_share")
	sticky := rep.Value("sticky_top_share")
	if strongest <= sticky {
		t.Errorf("strongest policy should concentrate load: %.3f vs sticky %.3f", strongest, sticky)
	}
}

func TestReportRendering(t *testing.T) {
	rep := run(t, "t1")
	s := rep.String()
	for _, want := range []string{"t1", "HMNO", "paper:", "values:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering missing %q", want)
		}
	}
}

func TestAllRunnersProduceReports(t *testing.T) {
	for _, r := range All() {
		rep := r.Run(session(t))
		if rep == nil || len(rep.Values) == 0 {
			t.Errorf("runner %s produced an empty report", r.ID)
		}
		if len(rep.Tables) == 0 {
			t.Errorf("runner %s produced no tables", r.ID)
		}
	}
}
