package experiments

import (
	"math"

	"whereroam/internal/analysis"
	"whereroam/internal/core"
	"whereroam/internal/dataset"
	"whereroam/internal/geo"
	"whereroam/internal/mccmnc"
	"whereroam/internal/netsim"
	"whereroam/internal/rng"
)

func init() {
	register("abl-classifier", "Ablation: classifier pipeline steps", runAblationClassifier)
	register("abl-gyration", "Ablation: time-weighted vs unweighted gyration", runAblationGyration)
	register("abl-policy", "Ablation: VMNO selection policy", runAblationPolicy)
}

// runAblationClassifier measures how much each pipeline stage
// contributes: keywords alone miss the no-APN devices (21% of the
// population per §4.3); the validated-APN step and the property
// closure recover them.
func runAblationClassifier(s *Session) *Report {
	v := mnoViews.get(s)
	r := &Report{
		ID:    "abl-classifier",
		Title: "Classifier steps ablation",
		Paper: "§4.3 argues APNs alone are insufficient (21% of devices carry no APN); the multi-step design is the contribution",
	}
	configs := []struct {
		name  string
		steps core.Steps
	}{
		{"keywords-only", core.Steps{}},
		{"validated-apns", core.Steps{ValidateAPNs: true}},
		{"full-pipeline", core.AllSteps},
	}
	tbl := analysis.NewTable("config", "m2m recall", "m2m precision", "abstained", "accuracy")
	for _, cfgCase := range configs {
		c := core.NewClassifier()
		c.Steps = cfgCase.steps
		res := c.ClassifyWorkers(v.sums, s.Workers)
		val, err := core.Validate(res, v.ds.Truth)
		if err != nil {
			r.Notes = append(r.Notes, "validation failed: "+err.Error())
			continue
		}
		tbl.AddRow(cfgCase.name, val.Recall(core.ClassM2M), val.Precision(core.ClassM2M),
			val.Abstained(core.ClassM2M), val.Accuracy())
		r.setValue(cfgCase.name+"_m2m_recall", val.Recall(core.ClassM2M))
		r.setValue(cfgCase.name+"_accuracy", val.Accuracy())
	}
	r.Tables = append(r.Tables, tbl)
	// The share of devices with no APN at all — the population that
	// motivates the closure step.
	noAPN := 0
	for i := range v.sums {
		if len(v.sums[i].APNs) == 0 {
			noAPN++
		}
	}
	r.setValue("no_apn_share", float64(noAPN)/float64(len(v.sums)))
	return r
}

// runAblationGyration quantifies the §5.3 design choice of weighting
// sector visits by dwell time: without it, cell reselection inflates
// the apparent mobility of stationary devices.
func runAblationGyration(s *Session) *Report {
	r := &Report{
		ID:    "abl-gyration",
		Title: "Gyration weighting ablation",
		Paper: "§5.3 weights centroid and gyration by time per sector; reselection spikes otherwise read as movement",
	}
	// A synthetic stationary fleet with reselection jitter: the
	// weighted metric should keep ~all devices under 1 km; the
	// unweighted one should leak a visible fraction above it.
	host, _ := mccmnc.CountryByISO("GB")
	centre := geo.Point{Lat: host.Lat, Lon: host.Lon}
	var under1kmW, under1kmU int
	const n = 2000
	src := newSrc(s.Seed)
	for i := 0; i < n; i++ {
		visits := stationaryDay(src.SplitN("dev", uint64(i)), centre)
		if geo.Gyration(visits) <= 1 {
			under1kmW++
		}
		if geo.GyrationUnweighted(visits) <= 1 {
			under1kmU++
		}
	}
	tbl := analysis.NewTable("metric", "≤1 km share")
	tbl.AddRow("time-weighted", float64(under1kmW)/n)
	tbl.AddRow("unweighted", float64(under1kmU)/n)
	r.Tables = append(r.Tables, tbl)
	r.setValue("weighted_under_1km", float64(under1kmW)/n)
	r.setValue("unweighted_under_1km", float64(under1kmU)/n)
	return r
}

func newSrc(seed uint64) *rng.Source { return rng.New(seed).Split("ablation") }

// stationaryDay builds one stationary device's daily sector visits: a
// dominant home dwell plus a few brief reselection episodes ~2 km
// away. Weighted by dwell these devices are stationary; counted per
// visit they look mobile.
func stationaryDay(src *rng.Source, centre geo.Point) []geo.Visit {
	home := geo.Point{
		Lat: centre.Lat + (src.Float64()*2-1)*0.5,
		Lon: centre.Lon + (src.Float64()*2-1)*0.5,
	}
	visits := []geo.Visit{{At: home, Weight: 86000}}
	nJitter := 1 + src.Intn(3)
	for j := 0; j < nJitter; j++ {
		ang := 2 * math.Pi * src.Float64()
		d := 1.5 + src.Float64() // km
		visits = append(visits, geo.Visit{
			At: geo.Point{
				Lat: home.Lat + d*math.Sin(ang)/111.2,
				Lon: home.Lon + d*math.Cos(ang)/(111.2*math.Cos(home.Lat*math.Pi/180)),
			},
			Weight: 120, // a two-minute reselection episode
		})
	}
	return visits
}

// runAblationPolicy contrasts VMNO-selection policies by the load
// concentration they induce on visited networks.
func runAblationPolicy(s *Session) *Report {
	r := &Report{
		ID:    "abl-policy",
		Title: "VMNO selection policy ablation",
		Paper: "not a paper experiment: quantifies how the platform's VMNO choice spreads load across partner networks",
	}
	tbl := analysis.NewTable("policy", "distinct VMNOs", "top-VMNO share")
	for _, pol := range []netsim.SelectionPolicy{netsim.PolicyStrongest, netsim.PolicySticky, netsim.PolicyRotate} {
		cfg := dataset.DefaultM2MConfig()
		cfg.Seed = s.Seed
		cfg.Devices = s.scaled(3000)
		cfg.Policy = pol
		ds := dataset.GenerateM2M(cfg)
		load := map[mccmnc.PLMN]int{}
		total := 0
		for i := range ds.Transactions {
			tx := &ds.Transactions[i]
			if tx.Roaming() {
				load[tx.Visited]++
				total++
			}
		}
		top := 0
		for _, n := range load {
			if n > top {
				top = n
			}
		}
		share := 0.0
		if total > 0 {
			share = float64(top) / float64(total)
		}
		tbl.AddRow(pol.String(), len(load), share)
		r.setValue(pol.String()+"_distinct_vmnos", float64(len(load)))
		r.setValue(pol.String()+"_top_share", share)
	}
	r.Tables = append(r.Tables, tbl)
	return r
}
