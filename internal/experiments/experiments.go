// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner builds (or reuses) the scaled
// synthetic dataset it needs, executes the paper's analysis over the
// capture→catalog→classify pipeline, and emits both human-readable
// tables and a machine-checkable map of key values. The integration
// tests in this package assert the paper's shape criteria — who wins,
// by what factor, where the knees sit — against those values.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"whereroam/internal/analysis"
	"whereroam/internal/dataset"
	"whereroam/internal/mccmnc"
	"whereroam/internal/signaling"
)

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	// Paper summarizes what the paper reports for this artefact, so
	// EXPERIMENTS.md can show paper-vs-measured side by side.
	Paper  string
	Tables []*analysis.Table
	// Values holds the headline numbers keyed by stable names; tests
	// and EXPERIMENTS.md read them.
	Values map[string]float64
	// Notes carries free-form observations.
	Notes []string
}

// Value returns a named value (0 when missing; tests use Has first).
func (r *Report) Value(key string) float64 { return r.Values[key] }

// Has reports whether a named value exists.
func (r *Report) Has(key string) bool {
	_, ok := r.Values[key]
	return ok
}

func (r *Report) setValue(key string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[key] = v
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("\nvalues:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-32s %.4f\n", k, r.Values[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Federation drives experiments over one shared cellular world
// observed from any number of visited-operator sites. It is the
// session layer of the repository: it shares the expensive synthetic
// datasets between runners (the MNO dataset alone feeds eight
// experiments), and — when more than one site is configured, or a
// fed-* runner asks — fans the shared GSMA catalog and global roamer
// fleet out to per-site capture pipelines (see Sites).
//
// A single-site Federation is the classic Session; Session is an
// alias so every existing constructor and runner signature keeps
// compiling and produces the same single-site results as before.
type Federation struct {
	// Seed drives every generator.
	Seed uint64
	// Factor scales the default device counts (1.0 ≈ a tenth of
	// paper scale; tests use less, cmd/roamrepro -scale more).
	Factor float64
	// Workers bounds the pipeline worker pools of every generator
	// and analysis stage the session drives; values below one mean
	// one worker per CPU. Results are identical for every worker
	// count.
	Workers int
	// Streaming switches dataset construction to the bounded-memory
	// ingestion paths: the SMIP catalog builds from per-event probe
	// streams through the ingest router (GenerateSMIPStreaming — note
	// this is the raw measurement path, richer than the direct
	// aggregate generator the batch session uses), and the M2M
	// transaction stream flows through the ordered fan-in (StreamM2M)
	// before the runners materialize it — producing a dataset
	// bit-identical to the batch one. The MNO dataset has no
	// per-event form and always builds directly.
	Streaming bool
	// BoundedMemory switches the federation build to the out-of-core
	// generator (dataset.FederationConfig.BoundedMemory): a counting
	// pre-pass allocates IMSI blocks, sites build one at a time, and
	// the shared fleet plane stays unmaterialized until a consumer —
	// the fed-m2m/fed-smip planes, Sites(), or label validation —
	// asks for it via EnsureFleet. Site catalogs, presence and truth
	// are bit-identical to the materialized build.
	BoundedMemory bool
	// Hosts lists the federation's visited-MNO sites. Empty means the
	// default three-site footprint (dataset.DefaultFederationHosts)
	// when a fed-* runner or Sites() forces the federation plane; the
	// classic single-site datasets (MNO/M2M/SMIP) are independent of
	// it and always observe from the paper's UK operator.
	Hosts []mccmnc.PLMN
	// ArchiveDir, when non-empty, persists each federation site's
	// CDR/xDR feed to a segmented archive at ArchiveDir/site-<plmn>
	// while the site catalogs build (dataset.FederationConfig's
	// ArchiveDir, threaded through FederationData).
	ArchiveDir string
	// ArchiveSegmentRecords caps records per archive segment (0 =
	// store.DefaultSegmentRecords); threaded through FederationData
	// like ArchiveDir. Small caps let tiny smoke archives span many
	// segments and exercise the replay pruning paths.
	ArchiveSegmentRecords int

	mu      sync.Mutex
	m2m     *dataset.M2MDataset
	mno     *dataset.MNODataset
	smip    *dataset.SMIPDataset
	fed     *dataset.FederationDataset
	fedM2M  *dataset.FederationM2M
	fedSMIP *dataset.FederationSMIP
	sites   []*Site
}

// Session is the single-site view of a Federation — the historical
// name of the session layer, kept as an alias so existing callers
// compile unchanged.
type Session = Federation

// NewSession returns a session with the given seed and scale factor,
// running its pipelines with one worker per CPU.
func NewSession(seed uint64, factor float64) *Session {
	return NewSessionWorkers(seed, factor, 0)
}

// NewSessionWorkers returns a session with an explicit pipeline
// worker count (below one = one worker per CPU, one = serial).
func NewSessionWorkers(seed uint64, factor float64, workers int) *Session {
	if factor <= 0 {
		factor = 1
	}
	return &Session{Seed: seed, Factor: factor, Workers: workers}
}

// NewStreamingSession returns a session whose datasets build through
// the bounded-memory streaming ingestion paths (see the Streaming
// field).
func NewStreamingSession(seed uint64, factor float64, workers int) *Session {
	s := NewSessionWorkers(seed, factor, workers)
	s.Streaming = true
	return s
}

// NewFederation returns a multi-site session: one shared world and
// global fleet observed by every host in hosts (empty = the default
// three-site footprint). The single-site datasets and every classic
// runner keep working on it unchanged.
func NewFederation(seed uint64, factor float64, workers int, hosts ...mccmnc.PLMN) *Federation {
	f := NewSessionWorkers(seed, factor, workers)
	f.Hosts = hosts
	return f
}

func (s *Session) scaled(n int) int {
	v := int(float64(n) * s.Factor)
	if v < 100 {
		v = 100
	}
	return v
}

// M2M lazily builds the platform dataset. A streaming session
// produces it through the ordered streaming fan-in and materializes
// the result for the runners — bit-identical to the batch build.
func (s *Session) M2M() *dataset.M2MDataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m2m == nil {
		cfg := dataset.DefaultM2MConfig()
		cfg.Seed = s.Seed
		cfg.Devices = s.scaled(cfg.Devices)
		cfg.Workers = s.Workers
		if s.Streaming {
			// The stream arrives in the exact serial emission order, so
			// a stable time sort reproduces GenerateM2M's materialized
			// stream bit for bit even when timestamps tie (both paths
			// break ties by emission order; a non-stable sort could
			// permute tied records differently).
			var txs []signaling.Transaction
			ds := dataset.StreamM2M(cfg, func(tx signaling.Transaction) { txs = append(txs, tx) })
			sort.SliceStable(txs, func(i, j int) bool { return txs[i].Time.Before(txs[j].Time) })
			ds.Transactions = txs
			s.m2m = ds
		} else {
			s.m2m = dataset.GenerateM2M(cfg)
		}
	}
	return s.m2m
}

// MNO lazily builds the visited-MNO dataset.
func (s *Session) MNO() *dataset.MNODataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mno == nil {
		cfg := dataset.DefaultMNOConfig()
		cfg.Seed = s.Seed
		cfg.Devices = s.scaled(cfg.Devices)
		cfg.Workers = s.Workers
		s.mno = dataset.GenerateMNO(cfg)
	}
	return s.mno
}

// SMIP lazily builds the smart-meter dataset. A streaming session
// builds the catalog through the full per-event measurement path —
// probe taps into the ingest router — without ever materializing the
// event streams.
func (s *Session) SMIP() *dataset.SMIPDataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.smip == nil {
		cfg := dataset.DefaultSMIPConfig()
		cfg.Seed = s.Seed
		cfg.NativeMeters = s.scaled(cfg.NativeMeters)
		cfg.RoamingMeters = s.scaled(cfg.RoamingMeters)
		cfg.Workers = s.Workers
		if s.Streaming {
			s.smip = dataset.GenerateSMIPStreaming(cfg)
		} else {
			s.smip = dataset.GenerateSMIP(cfg)
		}
	}
	return s.smip
}

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(*Session) *Report
}

var registry []Runner

// canonicalOrder presents experiments in the paper's order with the
// ablations last, regardless of file-init order.
var canonicalOrder = map[string]int{
	"t1": 0, "fig2": 1, "fig3l": 2, "fig3c": 3, "fig3r": 4,
	"t2": 5, "fig5": 6, "fig6": 7, "fig7": 8, "fig8": 9,
	"fig9": 10, "fig10": 11, "fig11": 12, "fig12": 13, "t3": 14,
	"abl-classifier": 15, "abl-gyration": 16, "abl-policy": 17,
	"ext-revenue": 18, "ext-transparency": 19, "ext-nbiot": 20, "ext-latency": 21,
	"fed-sites": 22, "fed-agreement": 23, "fed-validation": 24,
	"fed-smip": 25, "fed-m2m": 26, "fed-serve": 27,
}

func register(id, title string, run func(*Session) *Report) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// All returns the registered runners in paper order.
func All() []Runner {
	out := make([]Runner, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		oi, oki := canonicalOrder[out[i].ID]
		oj, okj := canonicalOrder[out[j].ID]
		if oki && okj {
			return oi < oj
		}
		if oki != okj {
			return oki // known ids first
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ByID returns the runner with the given experiment id.
func ByID(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs lists the registered experiment ids in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.ID
	}
	return out
}
