package experiments

import (
	"path/filepath"
	"reflect"
	"testing"

	"whereroam/internal/store"
)

// ArchiveTo persists the session's SMIP CDR/xDR feed while the
// catalog builds, caches the dataset for the runners, and ReplayFrom
// rebuilds the CDR plane from the archive — deterministically across
// worker counts.
func TestSessionArchiveReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "feed")
	sess := NewStreamingSession(1, 0.03, 2)
	ds, err := sess.ArchiveTo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Catalog.Records) == 0 {
		t.Fatal("ArchiveTo built an empty catalog")
	}
	if sess.SMIP() != ds {
		t.Error("ArchiveTo did not cache the dataset for the streaming session's runners")
	}

	// On a batch session archiving is a side artefact: the cached SMIP
	// dataset must stay the direct-generator build, bit-identical to a
	// session that never archived.
	batch := NewSessionWorkers(1, 0.03, 2)
	if _, err := batch.ArchiveTo(filepath.Join(t.TempDir(), "batchfeed")); err != nil {
		t.Fatal(err)
	}
	plain := NewSessionWorkers(1, 0.03, 2)
	if !reflect.DeepEqual(batch.SMIP().Catalog.Records, plain.SMIP().Catalog.Records) {
		t.Error("ArchiveTo changed a batch session's SMIP dataset")
	}

	r, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep := r.Verify(); !rep.OK() {
		t.Fatalf("archived session feed fails verification:\n%s", rep)
	}
	cat, stats, err := sess.ReplayFrom(dir, store.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecordsKept == 0 || len(cat.Records) == 0 {
		t.Fatal("ReplayFrom produced no records")
	}
	serial := NewSessionWorkers(1, 0.03, 1)
	cat1, _, err := serial.ReplayFrom(dir, store.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cat1.Records, cat.Records) {
		t.Error("ReplayFrom differs between worker counts")
	}
}
