package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64 // km
		tol  float64
	}{
		{Point{51.5, -0.1}, Point{48.9, 2.3}, 334, 15},       // London–Paris
		{Point{40.4, -3.7}, Point{-33.9, 151.2}, 17680, 200}, // Madrid–Sydney
		{Point{0, 0}, Point{0, 1}, 111.2, 1},                 // 1 degree on equator
		{Point{52.2, 5.3}, Point{52.2, 5.3}, 0, 0.001},       // identical
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("DistanceKm(%v,%v) = %.1f, want %.1f±%.1f", c.a, c.b, got, c.want, c.tol)
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0 && d1 <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clampLat(v float64) float64 { return math.Mod(math.Abs(v), 90) * sign(v) }
func clampLon(v float64) float64 { return math.Mod(math.Abs(v), 180) * sign(v) }
func sign(v float64) float64 {
	if v < 0 || math.Signbit(v) {
		return -1
	}
	return 1
}

func TestCentroidSinglePoint(t *testing.T) {
	p := Point{45, 9}
	c, ok := Centroid([]Visit{{At: p, Weight: 3}})
	if !ok || c != p {
		t.Errorf("Centroid of single visit = %v, %v", c, ok)
	}
}

func TestCentroidWeighting(t *testing.T) {
	// 3:1 weights pull the centroid three quarters of the way over.
	visits := []Visit{
		{At: Point{0, 0}, Weight: 1},
		{At: Point{0, 4}, Weight: 3},
	}
	c, ok := Centroid(visits)
	if !ok {
		t.Fatal("no centroid")
	}
	if math.Abs(c.Lon-3) > 1e-9 || math.Abs(c.Lat) > 1e-9 {
		t.Errorf("Centroid = %v, want (0,3)", c)
	}
}

func TestCentroidNoWeight(t *testing.T) {
	if _, ok := Centroid(nil); ok {
		t.Error("empty visits should have no centroid")
	}
	if _, ok := Centroid([]Visit{{At: Point{1, 1}, Weight: 0}}); ok {
		t.Error("zero-weight visits should have no centroid")
	}
}

func TestCentroidAntimeridian(t *testing.T) {
	// Two points either side of the date line must average near ±180,
	// not near 0.
	visits := []Visit{
		{At: Point{0, 179}, Weight: 1},
		{At: Point{0, -179}, Weight: 1},
	}
	c, ok := Centroid(visits)
	if !ok {
		t.Fatal("no centroid")
	}
	if math.Abs(math.Abs(c.Lon)-180) > 1e-6 {
		t.Errorf("antimeridian centroid lon = %v, want ±180", c.Lon)
	}
}

func TestGyrationInvariants(t *testing.T) {
	// Single point: zero.
	if g := Gyration([]Visit{{At: Point{50, 10}, Weight: 5}}); g != 0 {
		t.Errorf("single-point gyration = %f", g)
	}
	// Repeated identical points: zero.
	same := []Visit{
		{At: Point{50, 10}, Weight: 1},
		{At: Point{50, 10}, Weight: 7},
	}
	if g := Gyration(same); g > 1e-9 {
		t.Errorf("co-located gyration = %f", g)
	}
	// Empty: zero.
	if g := Gyration(nil); g != 0 {
		t.Errorf("empty gyration = %f", g)
	}
}

func TestGyrationTranslationInvariance(t *testing.T) {
	base := []Visit{
		{At: Point{10, 20}, Weight: 2},
		{At: Point{10.01, 20.01}, Weight: 1},
		{At: Point{9.99, 20.02}, Weight: 3},
	}
	shifted := make([]Visit, len(base))
	for i, v := range base {
		shifted[i] = Visit{At: Point{v.At.Lat + 5, v.At.Lon + 5}, Weight: v.Weight}
	}
	g1, g2 := Gyration(base), Gyration(shifted)
	// Spherical geometry means translation is not exactly isometric,
	// but at km scale the change must be tiny.
	if math.Abs(g1-g2)/g1 > 0.02 {
		t.Errorf("gyration not translation-stable: %f vs %f", g1, g2)
	}
}

func TestGyrationScale(t *testing.T) {
	// Two points d apart with equal weight: gyration = d/2.
	a, b := Point{0, 0}, Point{0, 0.02}
	d := DistanceKm(a, b)
	g := Gyration([]Visit{{At: a, Weight: 1}, {At: b, Weight: 1}})
	if math.Abs(g-d/2) > 0.01 {
		t.Errorf("two-point gyration = %f, want %f", g, d/2)
	}
}

func TestGyrationWeightingSuppressesReselection(t *testing.T) {
	// The ablation scenario from DESIGN.md: a stationary smart meter
	// spends 99.9% of its time on its home sector and briefly
	// reselects to a sector 2 km away. Time weighting should keep the
	// gyration far below the unweighted figure.
	home := Point{51.5, -0.1}
	far := Point{51.5, -0.071} // ~2 km east
	visits := []Visit{
		{At: home, Weight: 86400 * 0.999},
		{At: far, Weight: 86400 * 0.001},
	}
	w := Gyration(visits)
	u := GyrationUnweighted(visits)
	if w >= u {
		t.Fatalf("weighted %f should be below unweighted %f", w, u)
	}
	if w > 0.2 {
		t.Errorf("weighted gyration = %f km, want < 0.2 (stationary)", w)
	}
	if u < 0.5 {
		t.Errorf("unweighted gyration = %f km, want ~1 (inflated)", u)
	}
}

func TestGyrationMonotoneInSpread(t *testing.T) {
	f := func(spread uint8) bool {
		s := float64(spread%100) / 1000 // up to 0.1 degrees
		v1 := []Visit{
			{At: Point{40, 0}, Weight: 1},
			{At: Point{40, s}, Weight: 1},
		}
		v2 := []Visit{
			{At: Point{40, 0}, Weight: 1},
			{At: Point{40, 2 * s}, Weight: 1},
		}
		return Gyration(v2) >= Gyration(v1)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGyration(b *testing.B) {
	visits := make([]Visit, 100)
	for i := range visits {
		visits[i] = Visit{At: Point{50 + float64(i)*0.001, float64(i) * 0.001}, Weight: float64(i%7 + 1)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Gyration(visits)
	}
}
