// Package geo provides the small amount of spherical geometry the
// mobility analysis needs: great-circle distances, time-weighted
// centroids and the radius of gyration metric from §5.3 of the paper
// (a weighted RMS distance of a device's cell sectors from its
// centroid, the standard mobility-range measure).
package geo

import "math"

// EarthRadiusKm is the mean Earth radius used for all distances.
const EarthRadiusKm = 6371.0

// Point is a geographic coordinate in degrees.
type Point struct {
	Lat float64
	Lon float64
}

// DistanceKm returns the great-circle (haversine) distance between two
// points in kilometres.
func DistanceKm(a, b Point) float64 {
	const degToRad = math.Pi / 180
	la1, lo1 := a.Lat*degToRad, a.Lon*degToRad
	la2, lo2 := b.Lat*degToRad, b.Lon*degToRad
	dLat := la2 - la1
	dLon := lo2 - lo1
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(la1)*math.Cos(la2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// Visit is a dwell at a location with a weight (the paper weights by
// time spent connected to the sector).
type Visit struct {
	At     Point
	Weight float64 // must be >= 0; zero-weight visits are ignored
}

// Centroid returns the weighted centroid of the visits. For the
// city-to-country scales the analysis works at, the flat weighted
// mean of coordinates is within measurement noise of the true
// spherical centroid; longitudes are unwrapped around the first visit
// so clusters straddling the antimeridian do not average to the wrong
// side of the planet. The second return is false when the visits
// carry no positive weight.
func Centroid(visits []Visit) (Point, bool) {
	var sumLat, sumLon, sumW float64
	first := true
	var ref float64
	for _, v := range visits {
		if v.Weight <= 0 {
			continue
		}
		lon := v.At.Lon
		if first {
			ref = lon
			first = false
		} else {
			for lon-ref > 180 {
				lon -= 360
			}
			for lon-ref < -180 {
				lon += 360
			}
		}
		sumLat += v.At.Lat * v.Weight
		sumLon += lon * v.Weight
		sumW += v.Weight
	}
	if sumW == 0 {
		return Point{}, false
	}
	lon := sumLon / sumW
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return Point{Lat: sumLat / sumW, Lon: lon}, true
}

// Gyration returns the weighted radius of gyration in kilometres: the
// square root of the weighted mean squared distance of each visit
// from the weighted centroid. A stationary device has gyration 0; the
// paper reports that ~80% of inbound-roaming M2M devices stay under
// 1 km (and attributes part of the residual to cell reselection, not
// movement).
func Gyration(visits []Visit) float64 {
	c, ok := Centroid(visits)
	if !ok {
		return 0
	}
	var sum, sumW float64
	for _, v := range visits {
		if v.Weight <= 0 {
			continue
		}
		d := DistanceKm(v.At, c)
		sum += v.Weight * d * d
		sumW += v.Weight
	}
	if sumW == 0 {
		return 0
	}
	return math.Sqrt(sum / sumW)
}

// GyrationUnweighted ignores weights (every visit counts once). Kept
// for the ablation in DESIGN.md §5: without time weighting, brief
// cell reselections inflate the apparent mobility of stationary
// devices.
func GyrationUnweighted(visits []Visit) float64 {
	uw := make([]Visit, 0, len(visits))
	for _, v := range visits {
		if v.Weight > 0 {
			uw = append(uw, Visit{At: v.At, Weight: 1})
		}
	}
	return Gyration(uw)
}
