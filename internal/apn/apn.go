// Package apn implements Access Point Name parsing and construction
// following 3GPP TS 23.003 §9: an APN is a Network Identifier (chosen
// by the service, e.g. "smhp.centricaplc.com") optionally followed by
// an Operator Identifier ("mnc004.mcc204.gprs") naming the home
// network that resolves it.
//
// APN strings are the strongest classification signal the paper has:
// the Network Identifier hints the IoT vertical (energy, automotive,
// global IoT SIM platforms) and the Operator Identifier reveals the
// home operator — the paper's worked example is
// "smhp.centricaplc.com.mnc004.mcc204.gprs", a Centrica (energy) APN
// homed on Vodafone NL.
package apn

import (
	"fmt"
	"strconv"
	"strings"

	"whereroam/internal/mccmnc"
)

// APN is a parsed Access Point Name.
type APN struct {
	// NetworkID is the service-chosen part, lower-case, dot-separated
	// labels ("smhp.centricaplc.com", "payandgo.o2.co.uk").
	NetworkID string
	// Operator is the home network from the Operator Identifier
	// suffix, or the zero PLMN when the APN has no such suffix (the
	// form subscribers usually see).
	Operator mccmnc.PLMN
}

// maxAPNLen bounds the rendered APN per TS 23.003 (100 octets).
const maxAPNLen = 100

// Parse parses an APN string. It accepts both the bare Network
// Identifier form ("internet.provider.com") and the full form with an
// Operator Identifier suffix ("x.y.mncNNN.mccNNN.gprs"). Parsing is
// case-insensitive; the result is normalized to lower case.
func Parse(s string) (APN, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return APN{}, fmt.Errorf("apn: empty string")
	}
	if len(s) > maxAPNLen {
		return APN{}, fmt.Errorf("apn: %q: longer than %d octets", s, maxAPNLen)
	}
	labels := strings.Split(s, ".")
	var out APN
	// Detect the 3-label Operator Identifier suffix.
	if len(labels) >= 3 && labels[len(labels)-1] == "gprs" {
		mncLbl, mccLbl := labels[len(labels)-3], labels[len(labels)-2]
		mnc, okMNC := parseCodeLabel(mncLbl, "mnc")
		mcc, okMCC := parseCodeLabel(mccLbl, "mcc")
		if !okMNC || !okMCC {
			return APN{}, fmt.Errorf("apn: %q: malformed operator identifier", s)
		}
		// The OI always carries a 3-digit, zero-padded MNC; recover
		// the registry's MNC length so the PLMN compares equal to the
		// one in traces.
		plmn := mccmnc.PLMN{MCC: mcc, MNC: mnc, MNCLen: 3}
		if op, ok := mccmnc.Lookup(plmn); ok {
			plmn = op.PLMN
		} else if mnc < 100 {
			// Unregistered network: assume 2-digit for small MNCs,
			// matching common European practice.
			plmn.MNCLen = 2
		}
		out.Operator = plmn
		labels = labels[:len(labels)-3]
	}
	if len(labels) == 0 {
		return APN{}, fmt.Errorf("apn: %q: operator identifier without network identifier", s)
	}
	for _, lbl := range labels {
		if err := checkLabel(lbl); err != nil {
			return APN{}, fmt.Errorf("apn: %q: %w", s, err)
		}
	}
	out.NetworkID = strings.Join(labels, ".")
	// TS 23.003: the NI must not start with reserved prefixes used by
	// network-internal DNS.
	for _, reserved := range []string{"rac", "lac", "sgsn", "rnc"} {
		if strings.HasPrefix(out.NetworkID, reserved+".") || out.NetworkID == reserved {
			return APN{}, fmt.Errorf("apn: %q: network identifier starts with reserved label %q", s, reserved)
		}
	}
	return out, nil
}

// parseCodeLabel parses "mnc004"-style labels and returns the value.
func parseCodeLabel(lbl, prefix string) (uint16, bool) {
	if len(lbl) != len(prefix)+3 || !strings.HasPrefix(lbl, prefix) {
		return 0, false
	}
	v, err := strconv.Atoi(lbl[len(prefix):])
	if err != nil || v < 0 {
		return 0, false
	}
	return uint16(v), true
}

func checkLabel(lbl string) error {
	if lbl == "" {
		return fmt.Errorf("empty label")
	}
	if len(lbl) > 63 {
		return fmt.Errorf("label %q longer than 63 octets", lbl)
	}
	for i := 0; i < len(lbl); i++ {
		c := lbl[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return fmt.Errorf("label %q: invalid character %q", lbl, c)
		}
	}
	if lbl[0] == '-' || lbl[len(lbl)-1] == '-' {
		return fmt.Errorf("label %q: leading or trailing hyphen", lbl)
	}
	return nil
}

// MustParse is Parse for static initialization; it panics on error.
func MustParse(s string) APN {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the APN, appending the Operator Identifier when the
// home network is known. The OI always uses a 3-digit zero-padded MNC
// per TS 23.003.
func (a APN) String() string {
	if a.Operator.IsZero() {
		return a.NetworkID
	}
	return fmt.Sprintf("%s.mnc%03d.mcc%03d.gprs", a.NetworkID, a.Operator.MNC, a.Operator.MCC)
}

// IsZero reports whether the APN is empty.
func (a APN) IsZero() bool { return a.NetworkID == "" && a.Operator.IsZero() }

// HasOperatorID reports whether the APN carries an Operator
// Identifier suffix.
func (a APN) HasOperatorID() bool { return !a.Operator.IsZero() }

// Keywords tokenizes the Network Identifier into the lookup keys the
// classifier matches its keyword table against: dot labels are split
// further on hyphens and underscores, and the generic DNS tails
// ("com", "net", "org", country TLDs of length 2) are dropped.
func (a APN) Keywords() []string {
	var out []string
	for _, lbl := range strings.Split(a.NetworkID, ".") {
		for _, tok := range strings.FieldsFunc(lbl, func(r rune) bool { return r == '-' || r == '_' }) {
			if len(tok) <= 2 || tok == "com" || tok == "net" || tok == "org" || tok == "www" {
				continue
			}
			out = append(out, tok)
		}
	}
	return out
}

// ContainsKeyword reports whether any Network Identifier token equals
// kw, or whether kw (which may itself be dotted, like
// "intelligent.m2m") appears as a dotted substring of the NI.
func (a APN) ContainsKeyword(kw string) bool {
	if strings.Contains(kw, ".") {
		return strings.Contains("."+a.NetworkID+".", "."+kw+".")
	}
	for _, tok := range a.Keywords() {
		if tok == kw {
			return true
		}
	}
	return false
}
