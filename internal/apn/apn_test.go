package apn

import (
	"strings"
	"testing"
	"testing/quick"

	"whereroam/internal/mccmnc"
)

func TestParsePaperExample(t *testing.T) {
	// The worked example from §4.3 of the paper.
	a, err := Parse("smhp.centricaplc.com.mnc004.mcc204.gprs")
	if err != nil {
		t.Fatal(err)
	}
	if a.NetworkID != "smhp.centricaplc.com" {
		t.Errorf("NetworkID = %q", a.NetworkID)
	}
	want := mccmnc.MustParse("20404") // Vodafone NL
	if a.Operator != want {
		t.Errorf("Operator = %v, want %v", a.Operator, want)
	}
	op, ok := mccmnc.Lookup(a.Operator)
	if !ok || op.Name != "Vodafone NL" {
		t.Errorf("operator lookup = %+v, %v", op, ok)
	}
}

func TestParseBareNetworkID(t *testing.T) {
	a, err := Parse("payandgo.o2.co.uk")
	if err != nil {
		t.Fatal(err)
	}
	if a.HasOperatorID() {
		t.Error("bare NI should have no operator")
	}
	if a.String() != "payandgo.o2.co.uk" {
		t.Errorf("String = %q", a.String())
	}
}

func TestParseNormalizesCase(t *testing.T) {
	a, err := Parse("  Internet.Provider.COM ")
	if err != nil {
		t.Fatal(err)
	}
	if a.NetworkID != "internet.provider.com" {
		t.Errorf("NetworkID = %q", a.NetworkID)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"mnc004.mcc204.gprs",                    // OI without NI
		"a..b",                                  // empty label
		"bad char.com",                          // space
		"-lead.com",                             // leading hyphen
		"trail-.com",                            // trailing hyphen
		"a.mncXXX.mcc204.gprs",                  // malformed MNC
		"a.mnc04.mcc204.gprs",                   // MNC label must be 3 digits
		"rac.internal",                          // reserved prefix
		strings.Repeat("a", 101),                // too long
		"x." + strings.Repeat("b", 64) + ".com", // label too long
	}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: Parse(String(a)) == a for valid APNs.
	networks := []string{
		"smhp.centricaplc.com", "scania.fleet", "rwe.meter", "intelligent.m2m",
		"internet", "iot.global-sim.io", "wap.telco", "m2m.tele2.com",
	}
	operators := []mccmnc.PLMN{
		{}, mccmnc.MustParse("20404"), mccmnc.MustParse("23410"), mccmnc.MustParse("334020"),
	}
	for _, ni := range networks {
		for _, op := range operators {
			a := APN{NetworkID: ni, Operator: op}
			got, err := Parse(a.String())
			if err != nil {
				t.Fatalf("Parse(String(%v)) failed: %v", a, err)
			}
			if got != a {
				t.Errorf("round trip %v -> %q -> %v", a, a.String(), got)
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	labels := []string{"smart", "meter", "iot", "m2m", "fleet", "telemetry", "vertical", "global"}
	f := func(i, j, k uint8, withOp bool) bool {
		ni := labels[int(i)%len(labels)] + "." + labels[int(j)%len(labels)] + "-" + labels[int(k)%len(labels)]
		a := APN{NetworkID: ni}
		if withOp {
			a.Operator = mccmnc.MustParse("26201")
		}
		got, err := Parse(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOperatorIDAlwaysThreeDigitMNC(t *testing.T) {
	a := APN{NetworkID: "x", Operator: mccmnc.MustParse("20404")} // MNC 04, 2-digit
	if got := a.String(); got != "x.mnc004.mcc204.gprs" {
		t.Errorf("String = %q, want zero-padded mnc004", got)
	}
}

func TestParseUnregisteredOperator(t *testing.T) {
	// MNC 99 is not registered under MCC 204; the parser should fall
	// back to a 2-digit MNC for small values.
	a, err := Parse("svc.mnc099.mcc204.gprs")
	if err != nil {
		t.Fatal(err)
	}
	if a.Operator.MNC != 99 || a.Operator.MNCLen != 2 {
		t.Errorf("Operator = %+v", a.Operator)
	}
	// Large MNC values stay 3-digit.
	b, err := Parse("svc.mnc740.mcc722.gprs")
	if err != nil {
		t.Fatal(err)
	}
	if b.Operator.MNCLen != 3 {
		t.Errorf("Operator = %+v, want 3-digit MNC", b.Operator)
	}
}

func TestKeywords(t *testing.T) {
	a := MustParse("smhp.centricaplc.com.mnc004.mcc204.gprs")
	kws := a.Keywords()
	want := map[string]bool{"smhp": true, "centricaplc": true}
	if len(kws) != len(want) {
		t.Fatalf("Keywords = %v", kws)
	}
	for _, k := range kws {
		if !want[k] {
			t.Errorf("unexpected keyword %q", k)
		}
	}
	b := MustParse("global-iot_data.scania.net")
	got := strings.Join(b.Keywords(), ",")
	if got != "global,iot,data,scania" {
		t.Errorf("Keywords = %q", got)
	}
}

func TestContainsKeyword(t *testing.T) {
	a := MustParse("device.intelligent.m2m.provider.com")
	if !a.ContainsKeyword("intelligent.m2m") {
		t.Error("dotted keyword should match dotted substring")
	}
	if !a.ContainsKeyword("provider") {
		t.Error("plain keyword should match token")
	}
	if a.ContainsKeyword("intel") {
		t.Error("partial token must not match")
	}
	if a.ContainsKeyword("m2m.device") {
		t.Error("out-of-order dotted keyword must not match")
	}
	b := MustParse("rwe-meter.energy.de")
	if !b.ContainsKeyword("rwe") {
		t.Error("hyphen-split keyword should match")
	}
}

func TestIsZero(t *testing.T) {
	if !(APN{}).IsZero() {
		t.Error("zero APN should be zero")
	}
	if MustParse("internet").IsZero() {
		t.Error("parsed APN must not be zero")
	}
}

func BenchmarkParseFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("smhp.centricaplc.com.mnc004.mcc204.gprs"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeywords(b *testing.B) {
	a := MustParse("device.intelligent.m2m.provider.com")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Keywords()
	}
}
