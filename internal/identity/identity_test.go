package identity

import (
	"strings"
	"testing"
	"testing/quick"

	"whereroam/internal/mccmnc"
)

func TestIMSIRoundTrip(t *testing.T) {
	cases := []IMSI{
		{PLMN: mccmnc.MustParse("21407"), MSIN: 123456789},
		{PLMN: mccmnc.MustParse("334020"), MSIN: 987654321},
		{PLMN: mccmnc.MustParse("20404"), MSIN: 1},
		{PLMN: mccmnc.MustParse("722310"), MSIN: 999999999},
	}
	for _, im := range cases {
		s := im.String()
		if len(s) != 15 {
			t.Fatalf("IMSI %v renders as %q (%d digits)", im, s, len(s))
		}
		got, err := ParseIMSI(s, int(im.PLMN.MNCLen))
		if err != nil {
			t.Fatalf("ParseIMSI(%q): %v", s, err)
		}
		if got != im {
			t.Errorf("round trip %v -> %q -> %v", im, s, got)
		}
	}
}

func TestIMSIRoundTripProperty(t *testing.T) {
	f := func(msin uint64, three bool) bool {
		plmn := mccmnc.MustParse("21407")
		digits := uint64(10_000_000_000)
		if three {
			plmn = mccmnc.MustParse("334020")
			digits = 1_000_000_000
		}
		im := IMSI{PLMN: plmn, MSIN: msin % digits}
		got, err := ParseIMSI(im.String(), int(plmn.MNCLen))
		return err == nil && got == im
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseIMSIErrors(t *testing.T) {
	cases := []struct {
		s      string
		mncLen int
	}{
		{"2140712345678", 2},    // too short
		{"21407123456789x", 2},  // non-digit
		{"214071234567890", 4},  // bad mncLen
		{"199071234567890", 2},  // invalid MCC
		{"2140712345678901", 2}, // too long
	}
	for _, c := range cases {
		if _, err := ParseIMSI(c.s, c.mncLen); err == nil {
			t.Errorf("ParseIMSI(%q,%d) succeeded, want error", c.s, c.mncLen)
		}
	}
}

func TestIMSIRange(t *testing.T) {
	plmn := mccmnc.MustParse("23410")
	r := IMSIRange{PLMN: plmn, Lo: 5_000_000_000, Hi: 5_099_999_999}
	in := IMSI{PLMN: plmn, MSIN: 5_050_000_000}
	below := IMSI{PLMN: plmn, MSIN: 4_999_999_999}
	wrongNet := IMSI{PLMN: mccmnc.MustParse("23415"), MSIN: 5_050_000_000}
	if !r.Contains(in) {
		t.Error("IMSI inside range not matched")
	}
	if r.Contains(below) || r.Contains(wrongNet) {
		t.Error("IMSI outside range matched")
	}
}

func TestIMEIRoundTrip(t *testing.T) {
	im := IMEI{TAC: 35332811, Serial: 123456}
	s := im.String()
	if len(s) != 15 {
		t.Fatalf("IMEI renders as %d digits", len(s))
	}
	got, err := ParseIMEI(s)
	if err != nil {
		t.Fatalf("ParseIMEI(%q): %v", s, err)
	}
	if got != im {
		t.Errorf("round trip %v -> %v", im, got)
	}
}

func TestIMEIRoundTripProperty(t *testing.T) {
	f := func(tac uint32, serial uint32) bool {
		im := IMEI{TAC: TAC(tac % 100_000_000), Serial: serial % 1_000_000}
		got, err := ParseIMEI(im.String())
		return err == nil && got == im
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIMEILuhnRejectsCorruption(t *testing.T) {
	s := IMEI{TAC: 35332811, Serial: 654321}.String()
	// Flipping any single digit must break the Luhn check.
	for i := 0; i < len(s); i++ {
		b := []byte(s)
		b[i] = '0' + (b[i]-'0'+1)%10
		if _, err := ParseIMEI(string(b)); err == nil {
			t.Errorf("corrupted IMEI %q accepted", string(b))
		}
	}
}

func TestLuhnKnownVectors(t *testing.T) {
	// 7992739871 has Luhn check digit 3 (classic example).
	if d := luhnDigit("7992739871"); d != 3 {
		t.Errorf("luhnDigit(7992739871) = %d, want 3", d)
	}
	if !LuhnOK("79927398713") {
		t.Error("79927398713 should validate")
	}
	if LuhnOK("79927398710") {
		t.Error("79927398710 should not validate")
	}
	if LuhnOK("7") || LuhnOK("ab") {
		t.Error("degenerate inputs should not validate")
	}
}

func TestTACParse(t *testing.T) {
	tac, err := ParseTAC("35332811")
	if err != nil || tac != 35332811 {
		t.Fatalf("ParseTAC: %v %v", tac, err)
	}
	if tac.String() != "35332811" {
		t.Errorf("TAC.String() = %q", tac.String())
	}
	if short := TAC(42); short.String() != "00000042" {
		t.Errorf("TAC zero padding broken: %q", short.String())
	}
	for _, bad := range []string{"1234567", "123456789", "1234567x"} {
		if _, err := ParseTAC(bad); err == nil {
			t.Errorf("ParseTAC(%q) succeeded", bad)
		}
	}
}

func TestIMEITACPrefix(t *testing.T) {
	// The paper keys the GSMA catalog on the first 8 IMEI digits.
	im := IMEI{TAC: 86012304, Serial: 42}
	if !strings.HasPrefix(im.String(), "86012304") {
		t.Errorf("IMEI %q does not start with its TAC", im.String())
	}
}

func TestICCIDRoundTrip(t *testing.T) {
	ic := ICCID{CountryCode: 44, Issuer: 10, Account: 123456789012}
	s := ic.String()
	if len(s) != 20 {
		t.Fatalf("ICCID renders as %d digits: %q", len(s), s)
	}
	if !strings.HasPrefix(s, "89") {
		t.Fatalf("ICCID %q lacks telecom prefix", s)
	}
	got, err := ParseICCID(s)
	if err != nil {
		t.Fatalf("ParseICCID(%q): %v", s, err)
	}
	if got != ic {
		t.Errorf("round trip %v -> %v", ic, got)
	}
}

func TestICCIDRoundTripProperty(t *testing.T) {
	f := func(cc uint16, issuer uint16, acct uint64) bool {
		ic := ICCID{CountryCode: cc % 1000, Issuer: issuer % 100, Account: acct % 1_000_000_000_000}
		got, err := ParseICCID(ic.String())
		return err == nil && got == ic
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestICCIDLuhn(t *testing.T) {
	s := ICCID{CountryCode: 34, Issuer: 7, Account: 1}.String()
	b := []byte(s)
	b[len(b)-1] = '0' + (b[len(b)-1]-'0'+5)%10
	if _, err := ParseICCID(string(b)); err == nil {
		t.Error("ICCID with corrupted check digit accepted")
	}
}

func TestMSISDNString(t *testing.T) {
	m := MSISDN{CountryCode: 44, National: 7700900123}
	if got := m.String(); got != "+447700900123" {
		t.Errorf("MSISDN = %q", got)
	}
}

func TestHashDeviceStable(t *testing.T) {
	im := IMSI{PLMN: mccmnc.MustParse("21407"), MSIN: 42}
	a, b := HashDevice(im), HashDevice(im)
	if a != b {
		t.Fatal("HashDevice must be deterministic")
	}
	other := IMSI{PLMN: mccmnc.MustParse("21407"), MSIN: 43}
	if HashDevice(other) == a {
		t.Fatal("adjacent IMSIs must hash differently")
	}
}

func TestHashDeviceCollisionFree(t *testing.T) {
	// 200k sequential MSINs (the adversarial case for weak hashes)
	// must not collide.
	plmn := mccmnc.MustParse("20404")
	seen := make(map[DeviceID]uint64, 200000)
	for msin := uint64(0); msin < 200000; msin++ {
		id := HashDevice(IMSI{PLMN: plmn, MSIN: msin})
		if prev, dup := seen[id]; dup {
			t.Fatalf("collision: MSIN %d and %d -> %v", prev, msin, id)
		}
		seen[id] = msin
	}
}

func TestDeviceIDRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		id := DeviceID(v)
		got, err := ParseDeviceID(id.String())
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDeviceID("xyz"); err == nil {
		t.Error("ParseDeviceID should reject short input")
	}
	if _, err := ParseDeviceID("zzzzzzzzzzzzzzzz"); err == nil {
		t.Error("ParseDeviceID should reject non-hex input")
	}
}

func BenchmarkHashDevice(b *testing.B) {
	im := IMSI{PLMN: mccmnc.MustParse("21407"), MSIN: 123456789}
	for i := 0; i < b.N; i++ {
		_ = HashDevice(im)
	}
}

func BenchmarkIMEIString(b *testing.B) {
	im := IMEI{TAC: 35332811, Serial: 123456}
	for i := 0; i < b.N; i++ {
		_ = im.String()
	}
}
