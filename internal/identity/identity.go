// Package identity implements the subscriber and equipment identifiers
// of the cellular identity plane: IMSI (E.212), IMEI with its TAC
// prefix (3GPP TS 23.003), ICCID (E.118) and MSISDN (E.164), plus the
// one-way hashing used to anonymize device identifiers in traces, as
// both of the paper's datasets do.
package identity

import (
	"fmt"
	"strconv"
	"strings"

	"whereroam/internal/mccmnc"
)

// IMSI is an International Mobile Subscriber Identity: the PLMN of the
// SIM's issuer followed by a Mobile Subscriber Identification Number.
// Total length is at most 15 digits.
type IMSI struct {
	PLMN mccmnc.PLMN
	MSIN uint64 // up to 10 digits (9 when the MNC has 3 digits)
}

// msinDigits returns the MSIN width for the IMSI's MNC length, fixed
// at the maximum allowed so every IMSI renders as 15 digits.
func (im IMSI) msinDigits() int { return 15 - 3 - int(im.PLMN.MNCLen) }

// ParseIMSI parses a 15-digit IMSI string. The MNC length cannot be
// derived from the digits alone (E.212 leaves it to the home registry),
// so the caller supplies mncLen (2 or 3).
func ParseIMSI(s string, mncLen int) (IMSI, error) {
	if len(s) != 15 {
		return IMSI{}, fmt.Errorf("identity: IMSI %q: want 15 digits, have %d", s, len(s))
	}
	if mncLen != 2 && mncLen != 3 {
		return IMSI{}, fmt.Errorf("identity: IMSI MNC length %d: want 2 or 3", mncLen)
	}
	if !allDigits(s) {
		return IMSI{}, fmt.Errorf("identity: IMSI %q: non-digit", s)
	}
	plmn, err := mccmnc.Parse(s[:3+mncLen])
	if err != nil {
		return IMSI{}, fmt.Errorf("identity: IMSI %q: %w", s, err)
	}
	msin, err := strconv.ParseUint(s[3+mncLen:], 10, 64)
	if err != nil {
		return IMSI{}, fmt.Errorf("identity: IMSI %q: MSIN: %w", s, err)
	}
	return IMSI{PLMN: plmn, MSIN: msin}, nil
}

// String renders the IMSI as 15 digits.
func (im IMSI) String() string {
	return im.PLMN.Concat() + fmt.Sprintf("%0*d", im.msinDigits(), im.MSIN)
}

// IsZero reports whether the IMSI is the zero value.
func (im IMSI) IsZero() bool { return im == IMSI{} }

// InRange reports whether the IMSI's MSIN falls inside [lo, hi]. MNOs
// dedicate IMSI ranges to verticals (the paper's UK MNO dedicates one
// to SMIP smart meters); this is the membership test for such ranges.
func (im IMSI) InRange(r IMSIRange) bool {
	return im.PLMN == r.PLMN && im.MSIN >= r.Lo && im.MSIN <= r.Hi
}

// IMSIRange is a dedicated block of MSINs within one PLMN.
type IMSIRange struct {
	PLMN mccmnc.PLMN
	Lo   uint64
	Hi   uint64
}

// Contains reports whether the IMSI falls in the range.
func (r IMSIRange) Contains(im IMSI) bool { return im.InRange(r) }

// TAC is a Type Allocation Code: the first 8 digits of an IMEI,
// statically allocated to a device vendor/model by GSMA.
type TAC uint32

// ParseTAC parses an 8-digit TAC.
func ParseTAC(s string) (TAC, error) {
	if len(s) != 8 || !allDigits(s) {
		return 0, fmt.Errorf("identity: TAC %q: want 8 digits", s)
	}
	v, _ := strconv.ParseUint(s, 10, 32)
	return TAC(v), nil
}

// String renders the TAC as 8 digits.
func (t TAC) String() string { return fmt.Sprintf("%08d", uint32(t)) }

// IMEI is an International Mobile Equipment Identity: 8-digit TAC,
// 6-digit serial number and a Luhn check digit.
type IMEI struct {
	TAC    TAC
	Serial uint32 // 6 digits
}

// ParseIMEI parses a 15-digit IMEI and verifies its Luhn check digit.
func ParseIMEI(s string) (IMEI, error) {
	if len(s) != 15 || !allDigits(s) {
		return IMEI{}, fmt.Errorf("identity: IMEI %q: want 15 digits", s)
	}
	if luhnDigit(s[:14]) != int(s[14]-'0') {
		return IMEI{}, fmt.Errorf("identity: IMEI %q: Luhn check digit mismatch", s)
	}
	tac, _ := ParseTAC(s[:8])
	serial, _ := strconv.ParseUint(s[8:14], 10, 32)
	return IMEI{TAC: tac, Serial: uint32(serial)}, nil
}

// String renders the IMEI as 15 digits including the Luhn check digit.
func (im IMEI) String() string {
	body := fmt.Sprintf("%08d%06d", uint32(im.TAC), im.Serial%1000000)
	return body + strconv.Itoa(luhnDigit(body))
}

// luhnDigit computes the Luhn check digit for a digit string.
func luhnDigit(body string) int {
	sum := 0
	// Walk right to left; double every second digit starting from the
	// rightmost (which precedes the check digit position).
	dbl := true
	for i := len(body) - 1; i >= 0; i-- {
		d := int(body[i] - '0')
		if dbl {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		dbl = !dbl
	}
	return (10 - sum%10) % 10
}

// LuhnOK reports whether the digit string's final digit is a valid
// Luhn check digit for the preceding digits.
func LuhnOK(s string) bool {
	if len(s) < 2 || !allDigits(s) {
		return false
	}
	return luhnDigit(s[:len(s)-1]) == int(s[len(s)-1]-'0')
}

// ICCID is the SIM card serial number (E.118): the "89" telecom
// industry prefix, a country calling code, an issuer identifier, an
// account number and a Luhn check digit — 19 or 20 digits total. Only
// the fields the generators need are modelled.
type ICCID struct {
	CountryCode uint16 // E.164 country calling code, 1-3 digits
	Issuer      uint16 // 2-digit issuer within country
	Account     uint64 // 12-digit individual account number
}

// String renders the ICCID as 19 digits plus the Luhn check digit.
func (ic ICCID) String() string {
	body := fmt.Sprintf("89%03d%02d%012d", ic.CountryCode%1000, ic.Issuer%100, ic.Account%1_000_000_000_000)
	return body + strconv.Itoa(luhnDigit(body))
}

// ParseICCID parses a 20-digit ICCID in the layout produced by String
// and verifies the Luhn check digit.
func ParseICCID(s string) (ICCID, error) {
	if len(s) != 20 || !allDigits(s) {
		return ICCID{}, fmt.Errorf("identity: ICCID %q: want 20 digits", s)
	}
	if !strings.HasPrefix(s, "89") {
		return ICCID{}, fmt.Errorf("identity: ICCID %q: missing telecom prefix 89", s)
	}
	if !LuhnOK(s) {
		return ICCID{}, fmt.Errorf("identity: ICCID %q: Luhn check digit mismatch", s)
	}
	cc, _ := strconv.ParseUint(s[2:5], 10, 16)
	issuer, _ := strconv.ParseUint(s[5:7], 10, 16)
	acct, _ := strconv.ParseUint(s[7:19], 10, 64)
	return ICCID{CountryCode: uint16(cc), Issuer: uint16(issuer), Account: acct}, nil
}

// MSISDN is a subscriber telephone number in E.164 form.
type MSISDN struct {
	CountryCode uint16 // 1-3 digits
	National    uint64 // up to 12 digits
}

// String renders the MSISDN with a leading +.
func (m MSISDN) String() string {
	return fmt.Sprintf("+%d%d", m.CountryCode, m.National)
}

// DeviceID is the one-way-hashed device identifier that appears in
// traces instead of the raw IMSI/IMEI, mirroring the anonymization
// both paper datasets apply.
type DeviceID uint64

// HashDevice derives a DeviceID from an IMSI using the FNV-64a
// construction with a fixed salt. The mapping is stable across runs
// (so multi-day datasets join on it) and not reversible without the
// full identifier space.
func HashDevice(im IMSI) DeviceID {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
		salt     = "whereroam/v1"
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < len(salt); i++ {
		mix(salt[i])
	}
	s := im.String()
	for i := 0; i < len(s); i++ {
		mix(s[i])
	}
	return DeviceID(h)
}

// String renders the DeviceID as fixed-width hex, the form used in
// trace files.
func (d DeviceID) String() string { return fmt.Sprintf("%016x", uint64(d)) }

// ParseDeviceID parses the 16-hex-digit form produced by String.
func ParseDeviceID(s string) (DeviceID, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("identity: device ID %q: want 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("identity: device ID %q: %w", s, err)
	}
	return DeviceID(v), nil
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
