package netsim

import (
	"testing"

	"whereroam/internal/mccmnc"
)

func TestUserPlaneRTTOrdering(t *testing.T) {
	m := DefaultLatencyModel()
	es := mccmnc.MustParse("21407")
	uk := mccmnc.MustParse("23410")
	au := mccmnc.MustParse("50501")

	lbo := m.UserPlaneRTT(es, au, ConfigLBO)
	ihbo := m.UserPlaneRTT(es, au, ConfigIHBO)
	hr := m.UserPlaneRTT(es, au, ConfigHR)
	if !(lbo < ihbo && ihbo < hr) {
		t.Errorf("ES roaming in AU: LBO %.0f < IHBO %.0f < HR %.0f expected", lbo, ihbo, hr)
	}
	// The Spain→Australia case the paper names: HR should cost
	// hundreds of ms.
	if hr < 150 || hr > 350 {
		t.Errorf("ES->AU HR RTT = %.0f ms, want intercontinental scale", hr)
	}
	// Nearby roaming: HR is cheap.
	esUK := m.UserPlaneRTT(es, uk, ConfigHR)
	if esUK > 80 {
		t.Errorf("ES->UK HR RTT = %.0f ms, want cheap intra-European", esUK)
	}
	// LBO is the base cost regardless of distance.
	if lbo != m.BaseMs {
		t.Errorf("LBO RTT = %.0f, want base %.0f", lbo, m.BaseMs)
	}
}

func TestRTTUnderPolicy(t *testing.T) {
	w := NewWorld(DefaultConfig())
	m := DefaultLatencyModel()
	es := mccmnc.MustParse("21407")
	au := mccmnc.MustParse("50501")
	uk := mccmnc.MustParse("23410")
	// Far destination: the platform policy (IHBO) must beat raw HR.
	if got, hr := m.RTTUnderPolicy(w, es, au), m.UserPlaneRTT(es, au, ConfigHR); got >= hr {
		t.Errorf("policy RTT %.0f should beat HR %.0f for ES->AU", got, hr)
	}
	// Near destination: policy is HR, so they agree.
	if got, hr := m.RTTUnderPolicy(w, es, uk), m.UserPlaneRTT(es, uk, ConfigHR); got != hr {
		t.Errorf("policy RTT %.0f should equal HR %.0f for ES->UK", got, hr)
	}
}

func TestUserPlaneRTTUnknownCountry(t *testing.T) {
	m := DefaultLatencyModel()
	bogus := mccmnc.PLMN{MCC: 999, MNC: 1, MNCLen: 2}
	if got := m.UserPlaneRTT(bogus, bogus, ConfigHR); got != m.BaseMs {
		t.Errorf("unknown-country RTT = %.0f, want base", got)
	}
}
