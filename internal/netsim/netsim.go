// Package netsim simulates the inter-operator plane of the cellular
// world the paper measures: operators, the roaming agreements between
// them (bilateral and via an IPX roaming hub, §2.1), the roaming
// architecture used per pair (home-routed / local breakout / IPX hub
// breakout, Fig. 1), home-network admission decisions, and the
// signaling sequences devices trigger when attaching to and switching
// between visited networks.
package netsim

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"whereroam/internal/geo"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
	"whereroam/internal/signaling"
)

// RoamingConfig is the network architecture used for a roaming pair
// (Fig. 1).
type RoamingConfig uint8

// Roaming configurations.
const (
	// ConfigHR routes all user traffic back to the home network's
	// PGW; the default in European MNOs.
	ConfigHR RoamingConfig = iota
	// ConfigLBO breaks out locally at the visited network.
	ConfigLBO
	// ConfigIHBO breaks out at the IPX hub, the compromise M2M
	// platforms use for far destinations (§3.2).
	ConfigIHBO
)

var configNames = [...]string{"HR", "LBO", "IHBO"}

func (c RoamingConfig) String() string {
	if int(c) < len(configNames) {
		return configNames[c]
	}
	return "config(" + strconv.Itoa(int(c)) + ")"
}

// World is the set of operators and the agreements between them. It
// is immutable after construction and safe for concurrent readers.
type World struct {
	operators map[mccmnc.PLMN]mccmnc.Operator
	hub       map[mccmnc.PLMN]bool
	bilateral map[pair]bool
	byISO     map[string][]mccmnc.PLMN
}

type pair struct{ a, b mccmnc.PLMN }

func normPair(a, b mccmnc.PLMN) pair {
	if a.MCC > b.MCC || (a.MCC == b.MCC && a.MNC > b.MNC) {
		a, b = b, a
	}
	return pair{a, b}
}

// Config tunes world construction.
type Config struct {
	// HubShare is the fraction of operators connected to the IPX
	// roaming hub, by region. The carrier under study interconnects
	// predominantly in Europe and Latin America (§3).
	HubShare map[mccmnc.Region]float64
	// BilateralPerOperator is the expected number of extra bilateral
	// agreements each operator holds with random partners.
	BilateralPerOperator int
	// AlwaysHub lists operators guaranteed to sit on the hub
	// regardless of the regional draw — the paper's anchor networks
	// (the four HMNOs, the UK host, and the inbound-roamer homes).
	AlwaysHub []mccmnc.PLMN
	// Seed drives the deterministic agreement draw.
	Seed uint64
}

// DefaultConfig returns the footprint used across the repository: a
// hub strong in Europe/LatAm with thinner reach elsewhere, matching
// the carrier's 19-country/40-PoP core plus interconnects (§3).
func DefaultConfig() Config {
	return Config{
		HubShare: map[mccmnc.Region]float64{
			mccmnc.RegionEurope:       0.95,
			mccmnc.RegionLatAm:        0.90,
			mccmnc.RegionNorthAmerica: 0.60,
			mccmnc.RegionAPAC:         0.60,
			mccmnc.RegionMEA:          0.55,
		},
		BilateralPerOperator: 3,
		AlwaysHub: []mccmnc.PLMN{
			mccmnc.MustParse("21407"),  // ES — the dominant HMNO
			mccmnc.MustParse("334020"), // MX
			mccmnc.MustParse("722070"), // AR
			mccmnc.MustParse("26201"),  // DE
			mccmnc.MustParse("23410"),  // the UK visited MNO
			mccmnc.MustParse("20404"),  // NL — smart-meter SIM home
			mccmnc.MustParse("24001"),  // SE
			mccmnc.MustParse("50501"),  // AU — the paper's far-destination example
		},
		Seed: 1,
	}
}

// NewWorld builds the operator world from the mccmnc registry.
func NewWorld(cfg Config) *World {
	w := &World{
		operators: map[mccmnc.PLMN]mccmnc.Operator{},
		hub:       map[mccmnc.PLMN]bool{},
		bilateral: map[pair]bool{},
		byISO:     map[string][]mccmnc.PLMN{},
	}
	src := rng.New(cfg.Seed).Split("netsim")
	ops := mccmnc.AllOperators()
	for _, op := range ops {
		w.operators[op.PLMN] = op
		w.byISO[op.ISO] = append(w.byISO[op.ISO], op.PLMN)
		c, _ := mccmnc.CountryByISO(op.ISO)
		share := cfg.HubShare[c.Region]
		if src.SplitN("hub", plmnKey(op.PLMN)).Bool(share) {
			w.hub[op.PLMN] = true
		}
	}
	for _, p := range cfg.AlwaysHub {
		w.hub[p] = true
	}
	// Bilateral agreements with random partners (they complement the
	// hub, §2.1).
	for _, op := range ops {
		s := src.SplitN("bilateral", plmnKey(op.PLMN))
		for i := 0; i < cfg.BilateralPerOperator; i++ {
			partner := ops[s.Intn(len(ops))]
			if partner.ISO == op.ISO {
				continue
			}
			w.bilateral[normPair(op.PLMN, partner.PLMN)] = true
		}
	}
	return w
}

func plmnKey(p mccmnc.PLMN) uint64 {
	return uint64(p.MCC)<<32 | uint64(p.MNC)<<8 | uint64(p.MNCLen)
}

// Operator returns the registry row for the PLMN.
func (w *World) Operator(p mccmnc.PLMN) (mccmnc.Operator, bool) {
	op, ok := w.operators[p]
	return op, ok
}

// OperatorsIn returns the PLMNs operating in the ISO country, sorted.
func (w *World) OperatorsIn(iso string) []mccmnc.PLMN {
	out := make([]mccmnc.PLMN, len(w.byISO[iso]))
	copy(out, w.byISO[iso])
	sort.Slice(out, func(i, j int) bool {
		if out[i].MCC != out[j].MCC {
			return out[i].MCC < out[j].MCC
		}
		return out[i].MNC < out[j].MNC
	})
	return out
}

// HubMember reports whether the operator connects to the IPX hub.
func (w *World) HubMember(p mccmnc.PLMN) bool { return w.hub[p] }

// RoamingAllowed reports whether a SIM of home may use visited:
// either the pair holds a bilateral agreement or both sit on the hub.
// Devices are always allowed on their own home network.
func (w *World) RoamingAllowed(home, visited mccmnc.PLMN) bool {
	if home == visited {
		return true
	}
	if w.bilateral[normPair(home, visited)] {
		return true
	}
	return w.hub[home] && w.hub[visited]
}

// PartnersOf returns all networks a home SIM can roam onto in the ISO
// country, sorted by PLMN.
func (w *World) PartnersOf(home mccmnc.PLMN, iso string) []mccmnc.PLMN {
	var out []mccmnc.PLMN
	for _, v := range w.OperatorsIn(iso) {
		if v != home && w.RoamingAllowed(home, v) {
			out = append(out, v)
		}
	}
	return out
}

// ConfigFor returns the roaming architecture used for the pair. Per
// the paper: HR is the European default; the platform switches to IPX
// hub breakout for far destinations to dodge the HR latency penalty
// (§3.2 names Spain→Australia).
func (w *World) ConfigFor(home, visited mccmnc.PLMN) RoamingConfig {
	if mccmnc.SameCountry(home, visited) {
		return ConfigLBO
	}
	hc, okH := mccmnc.CountryByMCC(home.MCC)
	vc, okV := mccmnc.CountryByMCC(visited.MCC)
	if !okH || !okV {
		return ConfigHR
	}
	d := geo.DistanceKm(geo.Point{Lat: hc.Lat, Lon: hc.Lon}, geo.Point{Lat: vc.Lat, Lon: vc.Lon})
	if d > 7000 && w.hub[home] && w.hub[visited] {
		return ConfigIHBO
	}
	return ConfigHR
}

// SelectionPolicy picks the visited network for a roaming device.
type SelectionPolicy uint8

// VMNO selection policies (the DESIGN.md ablation).
const (
	// PolicySticky keeps the previous VMNO until it fails.
	PolicySticky SelectionPolicy = iota
	// PolicyStrongest always picks the first allowed partner
	// (deterministic "best signal" stand-in).
	PolicyStrongest
	// PolicyRotate round-robins across allowed partners.
	PolicyRotate
)

func (p SelectionPolicy) String() string {
	switch p {
	case PolicySticky:
		return "sticky"
	case PolicyStrongest:
		return "strongest"
	case PolicyRotate:
		return "rotate"
	}
	return "policy(" + strconv.Itoa(int(p)) + ")"
}

// SelectVMNO picks the next visited network in the ISO country for a
// home SIM. prev is the current VMNO (zero at first attach); n is a
// per-device monotone counter used by PolicyRotate. The second return
// is false when no partner exists in the country.
func (w *World) SelectVMNO(src *rng.Source, home mccmnc.PLMN, iso string, prev mccmnc.PLMN, policy SelectionPolicy, n int) (mccmnc.PLMN, bool) {
	partners := w.PartnersOf(home, iso)
	if len(partners) == 0 {
		return mccmnc.PLMN{}, false
	}
	switch policy {
	case PolicyStrongest:
		return partners[0], true
	case PolicyRotate:
		return partners[n%len(partners)], true
	default: // PolicySticky
		if !prev.IsZero() {
			for _, p := range partners {
				if p == prev {
					return p, true
				}
			}
		}
		return partners[src.Intn(len(partners))], true
	}
}

// HSS is the home-network subscriber database deciding admission for
// its own SIMs when a visited network asks.
type HSS struct {
	world *World
	home  mccmnc.PLMN
	// barred maps device IDs to the permanent error their
	// subscription returns (UnknownSubscription for retired SIMs,
	// FeatureUnsupported for 4G-incapable subscriptions, ...).
	barred map[identity.DeviceID]signaling.Result
}

// NewHSS returns the HSS of a home operator.
func NewHSS(w *World, home mccmnc.PLMN) *HSS {
	return &HSS{world: w, home: home, barred: map[identity.DeviceID]signaling.Result{}}
}

// Bar registers a permanent per-device failure.
func (h *HSS) Bar(dev identity.DeviceID, res signaling.Result) { h.barred[dev] = res }

// Admit decides an update-location request from visited for dev.
func (h *HSS) Admit(dev identity.DeviceID, visited mccmnc.PLMN) signaling.Result {
	if res, ok := h.barred[dev]; ok {
		return res
	}
	if !h.world.RoamingAllowed(h.home, visited) {
		return signaling.ResultRoamingNotAllowed
	}
	return signaling.ResultOK
}

// AttachSequence produces the transaction pair of a network attach as
// the platform probe records it: Authentication then UpdateLocation.
// result applies to the UpdateLocation; a failed authentication
// (UnknownSubscription) suppresses the UpdateLocation, matching
// procedure order.
func AttachSequence(dev identity.DeviceID, t time.Time, sim, visited mccmnc.PLMN, rat radio.RAT, result signaling.Result) []signaling.Transaction {
	auth := signaling.Transaction{
		Device: dev, Time: t, SIM: sim, Visited: visited,
		Procedure: signaling.ProcAuthentication, RAT: rat, Result: signaling.ResultOK,
	}
	if result == signaling.ResultUnknownSubscription {
		auth.Result = result
		return []signaling.Transaction{auth}
	}
	ul := signaling.Transaction{
		Device: dev, Time: t.Add(200 * time.Millisecond), SIM: sim, Visited: visited,
		Procedure: signaling.ProcUpdateLocation, RAT: rat, Result: result,
	}
	return []signaling.Transaction{auth, ul}
}

// SwitchSequence produces the transactions of an inter-VMNO switch:
// the home network cancels the old location, then the device attaches
// to the new VMNO.
func SwitchSequence(dev identity.DeviceID, t time.Time, sim, oldVMNO, newVMNO mccmnc.PLMN, rat radio.RAT, result signaling.Result) []signaling.Transaction {
	cancel := signaling.Transaction{
		Device: dev, Time: t, SIM: sim, Visited: oldVMNO,
		Procedure: signaling.ProcCancelLocation, RAT: rat, Result: signaling.ResultOK,
	}
	return append([]signaling.Transaction{cancel},
		AttachSequence(dev, t.Add(time.Second), sim, newVMNO, rat, result)...)
}

// String summarizes the world for debugging.
func (w *World) String() string {
	return fmt.Sprintf("world{operators=%d hub=%d bilateral=%d}", len(w.operators), len(w.hub), len(w.bilateral))
}
