package netsim

import (
	"whereroam/internal/geo"
	"whereroam/internal/mccmnc"
)

// Latency estimation for the roaming architectures of Fig. 1. The
// paper observes that home-routed roaming sends every user-plane
// packet back to the home country's PGW — painful when a Spanish SIM
// roams in Australia — and that the M2M platform mitigates far
// destinations with IPX hub breakout (§3.2); quantifying that
// trade-off was left outside the paper's scope, so this module is the
// corresponding extension experiment's substrate.

// LatencyModel parameterizes the user-plane RTT estimate.
type LatencyModel struct {
	// BaseMs is the fixed RAN+core processing RTT.
	BaseMs float64
	// MsPerKm is the round-trip propagation cost per kilometre of
	// backhaul path (fibre ≈ 0.01 ms/km RTT).
	MsPerKm float64
	// HubPoPs are the IPX hub's breakout points; IHBO routes to the
	// nearest one.
	HubPoPs []geo.Point
}

// DefaultLatencyModel returns a model with the carrier's
// Europe/LatAm-centric PoPs (§3: predominant presence in Europe and
// Latin America).
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		BaseMs:  45,
		MsPerKm: 0.01,
		HubPoPs: []geo.Point{
			{Lat: 40.4, Lon: -3.7},   // Madrid
			{Lat: 50.1, Lon: 8.7},    // Frankfurt
			{Lat: -23.6, Lon: -46.6}, // São Paulo
			{Lat: 19.4, Lon: -99.1},  // Mexico City
		},
	}
}

// UserPlaneRTT estimates the round-trip time in milliseconds for a
// device of home roaming on visited under the given architecture.
func (m LatencyModel) UserPlaneRTT(home, visited mccmnc.PLMN, cfg RoamingConfig) float64 {
	vc, okV := mccmnc.CountryByMCC(visited.MCC)
	if !okV {
		return m.BaseMs
	}
	vp := geo.Point{Lat: vc.Lat, Lon: vc.Lon}
	switch cfg {
	case ConfigLBO:
		return m.BaseMs
	case ConfigIHBO:
		best := 0.0
		for i, pop := range m.HubPoPs {
			d := geo.DistanceKm(vp, pop)
			if i == 0 || d < best {
				best = d
			}
		}
		return m.BaseMs + best*m.MsPerKm
	default: // ConfigHR
		hc, okH := mccmnc.CountryByMCC(home.MCC)
		if !okH {
			return m.BaseMs
		}
		hp := geo.Point{Lat: hc.Lat, Lon: hc.Lon}
		return m.BaseMs + geo.DistanceKm(vp, hp)*m.MsPerKm
	}
}

// RTTUnderPolicy estimates the RTT the platform achieves for the pair
// using the world's architecture choice (HR by default, IHBO for far
// destinations when both ends sit on the hub).
func (m LatencyModel) RTTUnderPolicy(w *World, home, visited mccmnc.PLMN) float64 {
	return m.UserPlaneRTT(home, visited, w.ConfigFor(home, visited))
}
