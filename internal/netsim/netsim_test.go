package netsim

import (
	"testing"
	"time"

	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
	"whereroam/internal/signaling"
)

func world(t testing.TB) *World {
	t.Helper()
	return NewWorld(DefaultConfig())
}

var (
	es = mccmnc.MustParse("21407")
	nl = mccmnc.MustParse("20404")
	uk = mccmnc.MustParse("23410")
	au = mccmnc.MustParse("50501")
)

func TestWorldDeterministic(t *testing.T) {
	a, b := world(t), world(t)
	for _, op := range mccmnc.AllOperators() {
		if a.HubMember(op.PLMN) != b.HubMember(op.PLMN) {
			t.Fatalf("hub membership of %v differs between identical worlds", op.PLMN)
		}
	}
	if len(a.bilateral) != len(b.bilateral) {
		t.Fatal("bilateral agreements differ")
	}
}

func TestHubFootprintEuropeHeavy(t *testing.T) {
	w := world(t)
	share := func(r mccmnc.Region) float64 {
		n, members := 0, 0
		for _, op := range mccmnc.AllOperators() {
			c, _ := mccmnc.CountryByISO(op.ISO)
			if c.Region != r {
				continue
			}
			n++
			if w.HubMember(op.PLMN) {
				members++
			}
		}
		if n == 0 {
			return 0
		}
		return float64(members) / float64(n)
	}
	if eu := share(mccmnc.RegionEurope); eu < 0.85 {
		t.Errorf("European hub share = %.2f, want >= 0.85", eu)
	}
	if latam := share(mccmnc.RegionLatAm); latam < 0.75 {
		t.Errorf("LatAm hub share = %.2f, want >= 0.75", latam)
	}
}

func TestRoamingAllowedSelf(t *testing.T) {
	w := world(t)
	if !w.RoamingAllowed(es, es) {
		t.Error("home network must always admit its own SIMs")
	}
}

func TestRoamingViaHub(t *testing.T) {
	w := world(t)
	// ES (Movistar) roams widely: across all countries it should find
	// partners almost everywhere (the paper has ES devices in 77
	// countries).
	countries := 0
	for _, c := range mccmnc.Countries() {
		if c.ISO == "ES" {
			continue
		}
		if len(w.PartnersOf(es, c.ISO)) > 0 {
			countries++
		}
	}
	if countries < 70 {
		t.Errorf("ES SIM can roam in %d countries, want >= 70", countries)
	}
}

func TestPartnersExcludeHome(t *testing.T) {
	w := world(t)
	for _, p := range w.PartnersOf(es, "ES") {
		if p == es {
			t.Fatal("PartnersOf must not include the home network itself")
		}
	}
}

func TestConfigFor(t *testing.T) {
	w := world(t)
	if got := w.ConfigFor(es, uk); got != ConfigHR {
		t.Errorf("ES->UK config = %v, want HR (European default)", got)
	}
	if got := w.ConfigFor(es, au); got != ConfigIHBO {
		t.Errorf("ES->AU config = %v, want IHBO (far destination)", got)
	}
	if got := w.ConfigFor(es, mccmnc.MustParse("21401")); got != ConfigLBO {
		t.Errorf("national roaming config = %v, want LBO", got)
	}
}

func TestSelectVMNOPolicies(t *testing.T) {
	w := world(t)
	src := rng.New(1)
	// Strongest is deterministic.
	a, ok := w.SelectVMNO(src, es, "GB", mccmnc.PLMN{}, PolicyStrongest, 0)
	if !ok {
		t.Fatal("no UK partner for ES SIM")
	}
	b, _ := w.SelectVMNO(src, es, "GB", mccmnc.PLMN{}, PolicyStrongest, 5)
	if a != b {
		t.Error("PolicyStrongest must be deterministic")
	}
	// Sticky keeps the previous choice.
	got, _ := w.SelectVMNO(src, es, "GB", a, PolicySticky, 0)
	if got != a {
		t.Error("PolicySticky must keep the previous VMNO")
	}
	// Rotate cycles through partners.
	partners := w.PartnersOf(es, "GB")
	if len(partners) > 1 {
		r0, _ := w.SelectVMNO(src, es, "GB", a, PolicyRotate, 0)
		r1, _ := w.SelectVMNO(src, es, "GB", a, PolicyRotate, 1)
		if r0 == r1 {
			t.Error("PolicyRotate should move to the next partner")
		}
	}
	// Unknown country yields nothing.
	if _, ok := w.SelectVMNO(src, es, "XX", mccmnc.PLMN{}, PolicySticky, 0); ok {
		t.Error("selection in unknown country should fail")
	}
}

func TestHSSAdmission(t *testing.T) {
	w := world(t)
	h := NewHSS(w, es)
	dev := identity.DeviceID(42)
	if res := h.Admit(dev, uk); res != signaling.ResultOK {
		t.Errorf("admission ES SIM on UK partner = %v", res)
	}
	h.Bar(dev, signaling.ResultUnknownSubscription)
	if res := h.Admit(dev, uk); res != signaling.ResultUnknownSubscription {
		t.Errorf("barred device admitted: %v", res)
	}
	// A network with no agreement at all: build an isolated world.
	w2 := NewWorld(Config{HubShare: map[mccmnc.Region]float64{}, BilateralPerOperator: 0, Seed: 9})
	h2 := NewHSS(w2, es)
	if res := h2.Admit(identity.DeviceID(7), uk); res != signaling.ResultRoamingNotAllowed {
		t.Errorf("agreement-free world admitted roamer: %v", res)
	}
}

func TestAttachSequence(t *testing.T) {
	dev := identity.DeviceID(1)
	ts := time.Date(2018, 11, 19, 10, 0, 0, 0, time.UTC)
	txs := AttachSequence(dev, ts, es, uk, radio.RAT4G, signaling.ResultOK)
	if len(txs) != 2 {
		t.Fatalf("attach = %d transactions, want 2", len(txs))
	}
	if txs[0].Procedure != signaling.ProcAuthentication || txs[1].Procedure != signaling.ProcUpdateLocation {
		t.Errorf("procedures = %v, %v", txs[0].Procedure, txs[1].Procedure)
	}
	if !txs[1].Time.After(txs[0].Time) {
		t.Error("update location must follow authentication")
	}
	for _, tx := range txs {
		if !tx.Roaming() {
			t.Error("ES->UK attach should be roaming")
		}
	}
	// UnknownSubscription fails at authentication and stops there.
	failed := AttachSequence(dev, ts, es, uk, radio.RAT4G, signaling.ResultUnknownSubscription)
	if len(failed) != 1 || failed[0].Result != signaling.ResultUnknownSubscription {
		t.Errorf("unknown subscription sequence = %+v", failed)
	}
	// RoamingNotAllowed authenticates OK then fails the UL.
	rna := AttachSequence(dev, ts, es, uk, radio.RAT4G, signaling.ResultRoamingNotAllowed)
	if len(rna) != 2 || rna[0].Result != signaling.ResultOK || rna[1].Result != signaling.ResultRoamingNotAllowed {
		t.Errorf("roaming-not-allowed sequence = %+v", rna)
	}
}

func TestSwitchSequence(t *testing.T) {
	dev := identity.DeviceID(2)
	ts := time.Date(2018, 11, 20, 0, 0, 0, 0, time.UTC)
	old := uk
	new_ := mccmnc.MustParse("23415")
	txs := SwitchSequence(dev, ts, es, old, new_, radio.RAT4G, signaling.ResultOK)
	if len(txs) != 3 {
		t.Fatalf("switch = %d transactions, want 3", len(txs))
	}
	if txs[0].Procedure != signaling.ProcCancelLocation || txs[0].Visited != old {
		t.Errorf("first tx = %+v, want CancelLocation on old VMNO", txs[0])
	}
	if txs[2].Visited != new_ {
		t.Errorf("attach went to %v, want new VMNO", txs[2].Visited)
	}
	for i := 1; i < len(txs); i++ {
		if txs[i].Time.Before(txs[i-1].Time) {
			t.Fatal("switch transactions out of order")
		}
	}
}

func TestWorldString(t *testing.T) {
	s := world(t).String()
	if s == "" {
		t.Error("String should describe the world")
	}
}

func TestRoamingAllowedSymmetric(t *testing.T) {
	// Property: agreements are undirected — if A's SIMs may use B,
	// B's SIMs may use A (both the hub and bilateral mechanisms are
	// symmetric).
	w := world(t)
	ops := mccmnc.AllOperators()
	for i := 0; i < len(ops); i += 7 {
		for j := 0; j < len(ops); j += 11 {
			a, b := ops[i].PLMN, ops[j].PLMN
			if w.RoamingAllowed(a, b) != w.RoamingAllowed(b, a) {
				t.Fatalf("asymmetric agreement %v <-> %v", a, b)
			}
		}
	}
}

func TestConfigForSymmetricDistance(t *testing.T) {
	// The architecture choice keys on distance, which is symmetric;
	// HR vs IHBO must agree for swapped endpoints (LBO requires same
	// country and is trivially symmetric).
	w := world(t)
	pairs := [][2]mccmnc.PLMN{
		{es, au}, {es, uk}, {nl, au}, {uk, au},
	}
	for _, p := range pairs {
		if mccmnc.SameCountry(p[0], p[1]) {
			continue
		}
		if w.ConfigFor(p[0], p[1]) != w.ConfigFor(p[1], p[0]) {
			t.Errorf("asymmetric config for %v <-> %v", p[0], p[1])
		}
	}
}

func BenchmarkSelectVMNO(b *testing.B) {
	w := world(b)
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		_, _ = w.SelectVMNO(src, es, "GB", uk, PolicySticky, i)
	}
}

func BenchmarkNewWorld(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		_ = NewWorld(cfg)
	}
}
