package obs

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof/, matching what importing net/http/pprof does to the
// default mux — but opt-in, so a daemon only exposes profiling when
// its -pprof flag says so.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
