package obs

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency herds goroutines over one registry: racing
// lookups of the same series, racing increments, racing observes.
// Run under -race this is the registry's thread-safety proof; the
// final values are the correctness proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("herd_total", "herd counter").Inc()
				r.Gauge("herd_gauge", "herd gauge").Add(1)
				r.Gauge("herd_hwm", "herd high water").SetMax(int64(i))
				r.Histogram("herd_seconds", "herd histogram", nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("herd_total", "").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("herd_gauge", "").Value(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("herd_hwm", "").Value(); got != perG-1 {
		t.Errorf("high-water gauge = %d, want %d", got, perG-1)
	}
	if got := r.Histogram("herd_seconds", "", nil).Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestHistogramQuantile checks bucket assignment and quantile
// extraction against a sorted reference: for each q, the histogram
// must return the upper bound of the bucket containing the
// nearest-rank element of the sorted sample.
func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}
	h := newHistogram(bounds)
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 5000)
	for i := range vals {
		// Spread across buckets including the +Inf overflow.
		vals[i] = math.Exp(rng.Float64()*9-7) * 0.01
		h.Observe(vals[i])
	}
	sort.Float64s(vals)
	ref := func(q float64) float64 {
		rank := int(math.Ceil(q * float64(len(vals))))
		v := vals[rank-1]
		i := sort.SearchFloat64s(bounds, v)
		if i == len(bounds) {
			return bounds[len(bounds)-1] // +Inf clamps to largest finite
		}
		return bounds[i]
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1} {
		if got, want := h.Quantile(q), ref(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if got := h.Count(); got != int64(len(vals)) {
		t.Errorf("Count = %d, want %d", got, len(vals))
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if got := h.Sum(); math.Abs(got-sum) > 1e-6*sum {
		t.Errorf("Sum = %v, want ~%v", got, sum)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.99) != 0 || nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Error("nil histogram accessors must return zero")
	}
	h := newHistogram([]float64{1, 2})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	h.Observe(1) // le="1" boundary is inclusive
	if got := h.Quantile(1); got != 1 {
		t.Errorf("boundary observation landed wrong: Quantile(1) = %v, want 1", got)
	}
}

// TestWriteTextGolden pins the exposition format byte for byte:
// sorted series, HELP/TYPE once per base name, label-merged
// cumulative histogram buckets.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(`test_requests_total{route="a"}`, "requests served").Add(2)
	r.Counter(`test_requests_total{route="b"}`, "requests served").Add(3)
	r.Gauge("test_inflight", "in-flight requests").Set(1)
	r.GaugeFunc("test_cache_bytes", "cache resident bytes", func() float64 { return 12345 })
	h := r.Histogram(`test_latency_seconds{route="a"}`, "request latency", []float64{0.1, 1})
	for _, v := range []float64{0.0625, 0.5, 0.75, 5} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_cache_bytes cache resident bytes
# TYPE test_cache_bytes gauge
test_cache_bytes 12345
# HELP test_inflight in-flight requests
# TYPE test_inflight gauge
test_inflight 1
# HELP test_latency_seconds request latency
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{route="a",le="0.1"} 1
test_latency_seconds_bucket{route="a",le="1"} 3
test_latency_seconds_bucket{route="a",le="+Inf"} 4
test_latency_seconds_sum{route="a"} 6.3125
test_latency_seconds_count{route="a"} 4
# HELP test_requests_total requests served
# TYPE test_requests_total counter
test_requests_total{route="a"} 2
test_requests_total{route="b"} 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRegistryKindCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("cross-kind re-registration must panic")
		}
	}()
	r.Gauge(`x_total{route="a"}`, "")
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("c", "").Inc()
	r.Gauge("g", "").Set(9)
	r.GaugeFunc("f", "", func() float64 { return 1 })
	r.Histogram("h", "", nil).Observe(1)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry WriteText = (%q, %v), want empty", sb.String(), err)
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Body.Len() != 0 {
		t.Errorf("nil registry handler body = %q, want empty", rec.Body.String())
	}
}

// TestNilNoOpAllocs is the zero-overhead contract: the full
// instrumentation surface through nil receivers must not allocate.
func TestNilNoOpAllocs(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		tr *Tracer
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(5)
		g.Set(3)
		g.SetMax(7)
		h.Observe(0.1)
		h.Start().Stop()
		tr.Start("op").Label("k", "v").Finish()
	})
	if allocs != 0 {
		t.Errorf("nil no-op path allocated %v allocs/op, want 0", allocs)
	}
}

// BenchmarkNilNoOp is the same contract as a benchmark, so the cost
// of detached instrumentation is a measured number (expected: a few
// ns and 0 B/op).
func BenchmarkNilNoOp(b *testing.B) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		tr *Tracer
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.SetMax(int64(i))
		h.Observe(0.1)
		h.Start().Stop()
		tr.Start("op").Label("k", "v").Finish()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func TestTracerRingAndSlowLog(t *testing.T) {
	var logged []string
	tr := NewTracer(4, time.Nanosecond, func(format string, args ...any) {
		logged = append(logged, format)
	})
	for i := 0; i < 6; i++ {
		sp := tr.Start("op").Label("i", string(rune('a'+i)))
		time.Sleep(time.Millisecond)
		sp.Finish()
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(recent))
	}
	// Most recent first: labels f, e, d, c.
	for i, want := range []string{"i=f", "i=e", "i=d", "i=c"} {
		if recent[i].Labels[0] != want {
			t.Errorf("recent[%d].Labels = %v, want [%s]", i, recent[i].Labels, want)
		}
	}
	if recent[0].DurationNs <= 0 {
		t.Error("span duration not stamped")
	}
	if len(logged) != 6 {
		t.Errorf("slow log fired %d times, want 6 (threshold 1ns, spans sleep 1ms)", len(logged))
	}

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	if !strings.Contains(rec.Body.String(), `"name":"op"`) {
		t.Errorf("spans handler body missing span: %s", rec.Body.String())
	}

	var nilT *Tracer
	nilT.Start("x").Label("a", "b").Finish() // must not panic
	if nilT.Recent() != nil {
		t.Error("nil tracer Recent must be nil")
	}
}

func TestRegisterPprof(t *testing.T) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline status = %d, want 200", rec.Code)
	}
}
