package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): series sorted by name, one `# HELP` and
// `# TYPE` block per base name, histograms as cumulative `_bucket`
// series plus `_sum` and `_count`. A nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	type series struct {
		name  string // full registered name, labels included
		lines func(bw *bufio.Writer)
	}
	r.mu.Lock()
	all := make([]series, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFuncs)+len(r.hists))
	for name, c := range r.counters {
		name, c := name, c
		all = append(all, series{name, func(bw *bufio.Writer) {
			bw.WriteString(name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(c.Value(), 10))
			bw.WriteByte('\n')
		}})
	}
	for name, g := range r.gauges {
		name, g := name, g
		all = append(all, series{name, func(bw *bufio.Writer) {
			bw.WriteString(name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(g.Value(), 10))
			bw.WriteByte('\n')
		}})
	}
	for name, fn := range r.gaugeFuncs {
		name, fn := name, fn
		all = append(all, series{name, func(bw *bufio.Writer) {
			bw.WriteString(name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatFloat(fn(), 'g', -1, 64))
			bw.WriteByte('\n')
		}})
	}
	for name, h := range r.hists {
		name, h := name, h
		all = append(all, series{name, func(bw *bufio.Writer) {
			writeHistogram(bw, name, h)
		}})
	}
	help := make(map[string]string, len(r.help))
	kinds := make(map[string]string, len(r.kinds))
	for k, v := range r.help {
		help[k] = v
	}
	for k, v := range r.kinds {
		kinds[k] = v
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	bw := bufio.NewWriter(w)
	seen := map[string]bool{}
	for _, s := range all {
		base := baseName(s.name)
		if !seen[base] {
			seen[base] = true
			if h := help[base]; h != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(base)
				bw.WriteByte(' ')
				bw.WriteString(h)
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(base)
			bw.WriteByte(' ')
			bw.WriteString(kinds[base])
			bw.WriteByte('\n')
		}
		s.lines(bw)
	}
	return bw.Flush()
}

// writeHistogram renders one histogram as cumulative buckets plus
// _sum/_count. A label block in the registered name is merged with
// the `le` label: `h{route="a"}` yields
// `h_bucket{route="a",le="0.005"}`.
func writeHistogram(bw *bufio.Writer, name string, h *Histogram) {
	base := baseName(name)
	labels := "" // inner label text, no braces
	if len(base) < len(name) {
		labels = name[len(base)+1 : len(name)-1]
	}
	writeName := func(suffix, extra string) {
		bw.WriteString(base)
		bw.WriteString(suffix)
		if labels == "" && extra == "" {
			return
		}
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeName("_bucket", `le="`+strconv.FormatFloat(b, 'g', -1, 64)+`"`)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	writeName("_bucket", `le="+Inf"`)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
	writeName("_sum", "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	bw.WriteByte('\n')
	writeName("_count", "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(h.Count(), 10))
	bw.WriteByte('\n')
}

// Handler serves the registry as a Prometheus scrape endpoint. A nil
// registry serves an empty body.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
