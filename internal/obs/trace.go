package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"time"
)

// SpanRecord is one finished span as kept in the tracer's ring and
// served from /debug/spans.
type SpanRecord struct {
	// Name is the operation name passed to Tracer.Start.
	Name string `json:"name"`
	// Labels holds "key=value" pairs attached via Span.Label, in
	// attachment order.
	Labels []string `json:"labels,omitempty"`
	// Start is the wall-clock start time.
	Start time.Time `json:"start"`
	// DurationNs is the span's wall-clock duration in nanoseconds.
	DurationNs int64 `json:"duration_ns"`
}

// Tracer records lightweight spans: a bounded ring of the most recent
// finished spans, plus a slow-operation log line (through logf) for
// any span exceeding the threshold. All methods are nil-safe no-ops.
type Tracer struct {
	mu   sync.Mutex
	ring []SpanRecord
	next int
	n    int
	slow time.Duration
	logf func(format string, args ...any)
}

// NewTracer returns a tracer keeping the last capacity spans and
// logging spans slower than slow through logf (both optional: a zero
// slow threshold disables the log, a nil logf drops it).
func NewTracer(capacity int, slow time.Duration, logf func(format string, args ...any)) *Tracer {
	if capacity <= 0 {
		capacity = 128
	}
	return &Tracer{ring: make([]SpanRecord, capacity), slow: slow, logf: logf}
}

// Start opens a span. On a nil tracer it returns a nil span whose
// methods are no-ops and no clock is read.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, rec: SpanRecord{Name: name, Start: time.Now()}}
}

// Recent returns the ring's spans, most recent first. Nil tracers
// return nil.
func (t *Tracer) Recent() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.n)
	for i := 0; i < t.n; i++ {
		// next-1 is the most recent write; walk backwards.
		idx := (t.next - 1 - i + len(t.ring)*2) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// Handler serves the recent spans as JSON, most recent first.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(t.Recent())
	})
}

// Span is an in-flight traced operation. All methods are nil-safe,
// so `tracer.Start(...).Label(...).Finish()` chains work unattached.
type Span struct {
	t   *Tracer
	rec SpanRecord
}

// Label attaches a key=value pair and returns the span for chaining.
func (s *Span) Label(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.rec.Labels = append(s.rec.Labels, key+"="+value)
	return s
}

// Finish closes the span: stamps the duration, stores the record in
// the ring, and emits a slow-op log line when over threshold.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	d := time.Since(s.rec.Start)
	s.rec.DurationNs = d.Nanoseconds()
	t := s.t
	t.mu.Lock()
	t.ring[t.next] = s.rec
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	slow := t.slow > 0 && d >= t.slow && t.logf != nil
	t.mu.Unlock()
	if slow {
		t.logf("obs: slow op %s [%s] took %v (threshold %v)", s.rec.Name, strings.Join(s.rec.Labels, " "), d, t.slow)
	}
}
