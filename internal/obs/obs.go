// Package obs is the zero-dependency observability subsystem: a
// concurrent metrics registry (counters, gauges, bounded-bucket
// histograms with quantile extraction), Prometheus text-format
// exposition, lightweight span tracing with a slow-operation log, and
// opt-in net/http/pprof wiring.
//
// Every type in this package is safe to use through a nil pointer:
// methods on a nil *Counter, *Gauge, *Histogram, *Tracer or *Span are
// no-ops that allocate nothing, so instrumented packages hold plain
// pointers and skip all work when no registry is attached. That is
// the mechanism by which instrumentation stays off the library's
// deterministic hot paths — a nil check, nothing else.
//
// obs sits deliberately outside the roamvet deterministic scope (see
// internal/lint.ScopeExemptions): it owns the process's real clock
// (time.Now lives here and in the load generator, nowhere else in the
// serving path) and its outputs — latencies, span timings, scrape
// bodies — describe one concrete execution, not the reproducible
// result surface the determinism contract pins.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named series. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use, and all
// methods on a nil *Registry return nil (which yields no-op metrics).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
	help       map[string]string // base name -> HELP text
	kinds      map[string]string // base name -> exposition TYPE
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() float64{},
		hists:      map[string]*Histogram{},
		help:       map[string]string{},
		kinds:      map[string]string{},
	}
}

// baseName strips the label block from a series name:
// `x_total{route="a"}` has base name `x_total`. HELP and TYPE lines
// are emitted once per base name.
func baseName(series string) string {
	for i := 0; i < len(series); i++ {
		if series[i] == '{' {
			return series[:i]
		}
	}
	return series
}

// register records the base-name kind and help, panicking on a
// cross-kind collision (two series sharing a base name must share a
// type for the exposition to be valid).
func (r *Registry) register(series, kind, help string) {
	base := baseName(series)
	if prev, ok := r.kinds[base]; ok && prev != kind {
		panic(fmt.Sprintf("obs: series %q already registered as %s, now requested as %s", base, prev, kind))
	}
	r.kinds[base] = kind
	if _, ok := r.help[base]; !ok {
		r.help[base] = help
	}
}

// Counter returns the counter registered under name, creating it if
// needed. The name may carry a label block (`x_total{route="a"}`);
// labels are part of the series identity. Returns nil on a nil
// registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, "counter", help)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if
// needed. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, "gauge", help)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers fn as a gauge evaluated at scrape time — the
// idiom for exporting counters a subsystem already maintains (the
// serve cache) without a second source of truth. Re-registering a
// name replaces the function. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, "gauge", help)
	r.gaugeFuncs[name] = fn
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds if needed (nil buckets means
// DefBuckets). Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.register(name, "histogram", help)
	h := newHistogram(buckets)
	r.hists[name] = h
	return h
}

// Counter is a monotonically increasing series. All methods are
// nil-safe no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down. All methods are
// nil-safe no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark idiom (channel depth, in-flight peak).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default histogram bounds, in seconds: a
// log-ish ladder from 100µs to 10s suited to request and segment
// latencies. Observations above the last bound land in the implicit
// +Inf bucket.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram: bounded memory regardless of
// observation count, cumulative bucket exposition, nearest-rank
// quantiles resolved to bucket upper bounds. All methods are nil-safe
// no-ops.
type Histogram struct {
	bounds []float64      // sorted upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. le-bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile returns the q-quantile (0 < q <= 1) resolved to the upper
// bound of the bucket holding the nearest-rank observation — an
// overestimate by at most one bucket width, which is the resolution a
// bounded-bucket histogram can honestly claim. Observations in the
// +Inf bucket clamp to the largest finite bound. Returns 0 when
// empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Start begins timing an operation against the histogram. On a nil
// histogram the returned stopwatch is inert and no clock is read.
func (h *Histogram) Start() Stopwatch {
	if h == nil {
		return Stopwatch{}
	}
	return Stopwatch{h: h, t0: time.Now()}
}

// Stopwatch times one operation into a histogram, in seconds. The
// zero value is inert.
type Stopwatch struct {
	h  *Histogram
	t0 time.Time
}

// Stop observes the elapsed time and returns it; inert stopwatches
// return 0 without reading the clock.
func (s Stopwatch) Stop() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.h.Observe(d.Seconds())
	return d
}
