package analysis

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 4, 5})
	if e.N() != 5 {
		t.Fatalf("N = %d", e.N())
	}
	if got := e.At(3); got != 0.6 {
		t.Errorf("At(3) = %f, want 0.6", got)
	}
	if got := e.At(0); got != 0 {
		t.Errorf("At(0) = %f", got)
	}
	if got := e.At(10); got != 1 {
		t.Errorf("At(10) = %f", got)
	}
	if got := e.Median(); got != 3 {
		t.Errorf("Median = %f", got)
	}
	if e.Min() != 1 || e.Max() != 5 {
		t.Errorf("range = [%f,%f]", e.Min(), e.Max())
	}
	if got := e.Mean(); got != 3 {
		t.Errorf("Mean = %f", got)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			return true
		}
		e := NewECDF(samples)
		prev := 0.0
		for _, q := range []float64{-1e9, -1, 0, 0.5, 1, 100, 1e9} {
			p := e.At(q)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	// Property: for every sample v, At(v) >= q whenever Quantile(q)=v.
	samples := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	e := NewECDF(samples)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		v := e.Quantile(q)
		if e.At(v) < q-1e-9 {
			t.Errorf("At(Quantile(%f)=%f) = %f < q", q, v, e.At(v))
		}
	}
	if e.Quantile(0) != 0 || e.Quantile(1) != 9 {
		t.Error("extreme quantiles wrong")
	}
}

func TestECDFQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewECDF(nil).Quantile(0.5)
}

func TestECDFSeries(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	got := e.Series([]float64{0, 2, 4})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Series[%d] = %f, want %f", i, got[i], want[i])
		}
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	_ = NewECDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("NewECDF mutated its input")
	}
}

func TestCrosstab(t *testing.T) {
	c := NewCrosstab()
	c.Add("m2m", "I:H", 71)
	c.Add("m2m", "H:H", 20)
	c.Add("smart", "I:H", 27)
	c.Add("smart", "H:H", 60)
	if got := c.Get("m2m", "I:H"); got != 71 {
		t.Errorf("Get = %f", got)
	}
	if got := c.RowTotal("m2m"); got != 91 {
		t.Errorf("RowTotal = %f", got)
	}
	if got := c.ColTotal("I:H"); got != 98 {
		t.Errorf("ColTotal = %f", got)
	}
	if got := c.Total(); got != 178 {
		t.Errorf("Total = %f", got)
	}
	if got := c.RowShare("m2m", "I:H"); math.Abs(got-71.0/91) > 1e-12 {
		t.Errorf("RowShare = %f", got)
	}
	if got := c.ColShare("m2m", "I:H"); math.Abs(got-71.0/98) > 1e-12 {
		t.Errorf("ColShare = %f", got)
	}
	if c.Get("nope", "I:H") != 0 || c.RowShare("nope", "x") != 0 {
		t.Error("missing keys should read as zero")
	}
}

func TestCrosstabAccumulates(t *testing.T) {
	c := NewCrosstab()
	c.Add("a", "x", 1)
	c.Add("a", "x", 2)
	if got := c.Get("a", "x"); got != 3 {
		t.Errorf("accumulation = %f", got)
	}
}

func TestCrosstabSortRowsByTotal(t *testing.T) {
	c := NewCrosstab()
	c.Add("small", "x", 1)
	c.Add("big", "x", 10)
	c.Add("mid", "x", 5)
	c.SortRowsByTotal()
	rows := c.Rows()
	if rows[0] != "big" || rows[1] != "mid" || rows[2] != "small" {
		t.Errorf("rows = %v", rows)
	}
	// Values must survive the reindex.
	if c.Get("big", "x") != 10 || c.Get("small", "x") != 1 {
		t.Error("reindex lost cell values")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("class", "share")
	tb.AddRow("smart", 0.62)
	tb.AddRow("m2m", 0.26)
	s := tb.String()
	if !strings.Contains(s, "smart") || !strings.Contains(s, "0.620") {
		t.Errorf("table = %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.523); got != "52.3%" {
		t.Errorf("Pct = %q", got)
	}
}

func BenchmarkECDFAt(b *testing.B) {
	samples := make([]float64, 100000)
	for i := range samples {
		samples[i] = float64(i % 1000)
	}
	e := NewECDF(samples)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.At(float64(i % 1000))
	}
}

// Merge must add cells and reproduce the serial row insertion order
// when shard-local tables fold in shard order — the contract the
// chunked fig5/fig6/fig9 sweeps rest on.
func TestCrosstabMerge(t *testing.T) {
	// Serial sweep over a stream split into two "shards".
	stream := [][2]string{{"NL", "m2m"}, {"SE", "m2m"}, {"NL", "smart"}, {"ES", "feat"}, {"SE", "smart"}}
	serial := NewCrosstab()
	for _, rc := range stream {
		serial.Add(rc[0], rc[1], 1)
	}
	a, b := NewCrosstab(), NewCrosstab()
	for i, rc := range stream {
		part := a
		if i >= 3 {
			part = b
		}
		part.Add(rc[0], rc[1], 1)
	}
	merged := NewCrosstab()
	merged.Merge(a)
	merged.Merge(b)
	if got, want := merged.Rows(), serial.Rows(); !reflect.DeepEqual(got, want) {
		t.Errorf("merged row order %v, serial %v", got, want)
	}
	if got, want := merged.Cols(), serial.Cols(); !reflect.DeepEqual(got, want) {
		t.Errorf("merged column order %v, serial %v", got, want)
	}
	for _, rc := range stream {
		if merged.Get(rc[0], rc[1]) != serial.Get(rc[0], rc[1]) {
			t.Errorf("cell (%s,%s) = %v, serial %v", rc[0], rc[1],
				merged.Get(rc[0], rc[1]), serial.Get(rc[0], rc[1]))
		}
	}
	if merged.Total() != serial.Total() {
		t.Errorf("merged total %v, serial %v", merged.Total(), serial.Total())
	}

	// Column order where row-major cell iteration would diverge from
	// insertion order: C3 first occurs in an earlier row than C2, so a
	// naive merge would emit [C1 C3 C2].
	interleaved := [][2]string{{"R2", "C1"}, {"R3", "C2"}, {"R2", "C3"}}
	serial2, shard := NewCrosstab(), NewCrosstab()
	for _, rc := range interleaved {
		serial2.Add(rc[0], rc[1], 1)
		shard.Add(rc[0], rc[1], 1)
	}
	merged2 := NewCrosstab()
	merged2.Merge(shard)
	if got, want := merged2.Cols(), serial2.Cols(); !reflect.DeepEqual(got, want) {
		t.Errorf("interleaved merged column order %v, serial %v", got, want)
	}
}
