// Package analysis provides the statistical primitives the experiment
// runners share: empirical CDFs (every figure in the paper is a CDF
// or a share breakdown), two-way contingency tables with row/column
// normalization (the Fig 2/5/6 heatmaps), and plain-text table
// rendering for the harness output.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (copied; input order preserved
// for the caller).
func NewECDF(samples []float64) *ECDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method. It panics on an empty ECDF.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		panic("analysis: quantile of empty ECDF")
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// Median returns the 0.5 quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Mean returns the sample mean (0 for empty).
func (e *ECDF) Mean() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range e.sorted {
		s += v
	}
	return s / float64(len(e.sorted))
}

// Max returns the largest sample (0 for empty).
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[len(e.sorted)-1]
}

// Min returns the smallest sample (0 for empty).
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[0]
}

// Series samples the ECDF at the given points, returning P(X <= x)
// for each — the rows a figure plot would consume.
func (e *ECDF) Series(points []float64) []float64 {
	out := make([]float64, len(points))
	for i, x := range points {
		out[i] = e.At(x)
	}
	return out
}

// Crosstab is a two-way contingency table with string-keyed rows and
// columns, preserving insertion order for rendering.
type Crosstab struct {
	rows, cols []string
	rowIdx     map[string]int
	colIdx     map[string]int
	cells      map[[2]int]float64
}

// NewCrosstab returns an empty table.
func NewCrosstab() *Crosstab {
	return &Crosstab{rowIdx: map[string]int{}, colIdx: map[string]int{}, cells: map[[2]int]float64{}}
}

// Add accumulates v into cell (row, col), creating the row/column on
// first use.
func (c *Crosstab) Add(row, col string, v float64) {
	ri, ok := c.rowIdx[row]
	if !ok {
		ri = len(c.rows)
		c.rowIdx[row] = ri
		c.rows = append(c.rows, row)
	}
	ci, ok := c.colIdx[col]
	if !ok {
		ci = len(c.cols)
		c.colIdx[col] = ci
		c.cols = append(c.cols, col)
	}
	c.cells[[2]int{ri, ci}] += v
}

// Merge folds another crosstab into c: cells add, and rows/columns
// absent from c append in o's insertion order (columns are registered
// from o.cols up front — cell iteration is row-major and would
// otherwise order new columns by their first occupied row). Folding
// shard-local tables in shard order therefore reproduces a serial
// sweep's row AND column insertion order exactly (shard 0's
// first-seen keys precede shard 1's new ones, as they do in the
// concatenated stream), which is what lets the experiment runners
// chunk their crosstab sweeps over internal/pipeline and stay
// bit-identical at any worker count.
func (c *Crosstab) Merge(o *Crosstab) {
	for _, col := range o.cols {
		if _, ok := c.colIdx[col]; !ok {
			c.colIdx[col] = len(c.cols)
			c.cols = append(c.cols, col)
		}
	}
	for ri, row := range o.rows {
		for ci, col := range o.cols {
			if v, ok := o.cells[[2]int{ri, ci}]; ok {
				c.Add(row, col, v)
			}
		}
	}
}

// Get returns the cell value (0 when absent).
func (c *Crosstab) Get(row, col string) float64 {
	ri, ok1 := c.rowIdx[row]
	ci, ok2 := c.colIdx[col]
	if !ok1 || !ok2 {
		return 0
	}
	return c.cells[[2]int{ri, ci}]
}

// Rows returns the row keys in insertion order.
func (c *Crosstab) Rows() []string { return append([]string(nil), c.rows...) }

// Cols returns the column keys in insertion order.
func (c *Crosstab) Cols() []string { return append([]string(nil), c.cols...) }

// RowTotal returns the sum of the row.
func (c *Crosstab) RowTotal(row string) float64 {
	ri, ok := c.rowIdx[row]
	if !ok {
		return 0
	}
	t := 0.0
	for ci := range c.cols {
		t += c.cells[[2]int{ri, ci}]
	}
	return t
}

// ColTotal returns the sum of the column.
func (c *Crosstab) ColTotal(col string) float64 {
	ci, ok := c.colIdx[col]
	if !ok {
		return 0
	}
	t := 0.0
	for ri := range c.rows {
		t += c.cells[[2]int{ri, ci}]
	}
	return t
}

// Total returns the grand total. Cells sum in row-major index order
// — never in map-iteration order — so the float accumulation sequence
// is identical on every run even for non-integer weights.
func (c *Crosstab) Total() float64 {
	t := 0.0
	for ri := range c.rows {
		for ci := range c.cols {
			t += c.cells[[2]int{ri, ci}]
		}
	}
	return t
}

// RowShare returns cell / row total — the row-normalized heatmap
// value of Fig 2 and Fig 6-left.
func (c *Crosstab) RowShare(row, col string) float64 {
	t := c.RowTotal(row)
	if t == 0 {
		return 0
	}
	return c.Get(row, col) / t
}

// ColShare returns cell / column total — Fig 6-right's normalization.
func (c *Crosstab) ColShare(row, col string) float64 {
	t := c.ColTotal(col)
	if t == 0 {
		return 0
	}
	return c.Get(row, col) / t
}

// SortRowsByTotal reorders rows by descending total (Fig 5's
// top-countries ordering).
func (c *Crosstab) SortRowsByTotal() {
	sort.SliceStable(c.rows, func(i, j int) bool {
		return c.RowTotal(c.rows[i]) > c.RowTotal(c.rows[j])
	})
	c.reindexRows()
}

func (c *Crosstab) reindexRows() {
	old := make(map[string]int, len(c.rowIdx))
	for k, v := range c.rowIdx {
		old[k] = v
	}
	newCells := make(map[[2]int]float64, len(c.cells))
	for newRI, name := range c.rows {
		oldRI := old[name]
		for ci := range c.cols {
			if v, ok := c.cells[[2]int{oldRI, ci}]; ok {
				newCells[[2]int{newRI, ci}] = v
			}
		}
		c.rowIdx[name] = newRI
	}
	c.cells = newCells
}

// Table renders rows of labelled values as an aligned plain-text
// table — the harness's "figure".
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given header.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends one row; values are formatted with %v-ish rules
// (floats get 3 decimals).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
