// Package settlement models the inter-operator wholesale economics
// behind the paper's revenue argument (§2.1, §6, §9): visited
// operators charge roaming partners per unit of data/voice their
// inbound roamers consume, while signaling ("background traffic",
// §7.1) is not billable. The paper's point — M2M devices occupy radio
// resources without generating the traffic that produces roaming
// revenue — becomes a computable statement here: the share of radio
// events a class causes versus the share of wholesale revenue it
// brings.
package settlement

import (
	"fmt"
	"sort"

	"whereroam/internal/catalog"
	"whereroam/internal/mccmnc"
)

// RateCard is a wholesale inter-operator tariff.
type RateCard struct {
	// DataPerMB is the charge per megabyte of data, in euro.
	DataPerMB float64
	// VoicePerMin is the charge per minute of voice, in euro.
	VoicePerMin float64
}

// Rates selects the tariff per home network. EU regulation caps
// intra-EEA wholesale rates far below rest-of-world bilateral rates
// (the "roam like at home" regime the paper notes ES benefits from).
type Rates struct {
	// EU applies when both the home network's and the host's country
	// are in the EU/EEA regulation zone.
	EU RateCard
	// World applies otherwise.
	World RateCard
}

// DefaultRates returns wholesale caps of the measurement era (2019):
// the EU wholesale data cap was 4.50 EUR/GB (≈0.0045/MB) with voice
// around 0.032 EUR/min; rest-of-world bilateral rates commonly ran
// two orders of magnitude higher.
func DefaultRates() Rates {
	return Rates{
		EU:    RateCard{DataPerMB: 0.0045, VoicePerMin: 0.032},
		World: RateCard{DataPerMB: 0.50, VoicePerMin: 0.25},
	}
}

// For returns the applicable card for a home network observed by
// host.
func (r Rates) For(home, host mccmnc.PLMN) RateCard {
	hc, ok1 := mccmnc.CountryByMCC(home.MCC)
	vc, ok2 := mccmnc.CountryByMCC(host.MCC)
	if ok1 && ok2 && hc.EU && vc.EU {
		return r.EU
	}
	return r.World
}

// PartnerLine is the settlement position against one home operator.
type PartnerLine struct {
	Home    mccmnc.PLMN
	Devices int
	// MB and Minutes are the billable volumes.
	MB      float64
	Minutes float64
	// Events counts the (non-billable) radio events those devices
	// caused.
	Events int
	// Revenue is the wholesale amount owed to the host, in euro.
	Revenue float64
}

// Statement is a settlement run over one observation window.
type Statement struct {
	Host  mccmnc.PLMN
	Days  int
	Lines []PartnerLine
}

// Settle computes the host's inbound-roaming settlement over a
// devices-catalog: every device whose SIM belongs to a foreign
// operator contributes its data/voice volumes at the applicable rate.
// Native and MVNO devices are out of scope (retail, not wholesale).
func Settle(cat *catalog.Catalog, rates Rates) *Statement {
	type acc struct {
		devices map[uint64]bool
		mb      float64
		minutes float64
		events  int
	}
	byHome := map[mccmnc.PLMN]*acc{}
	for i := range cat.Records {
		rec := &cat.Records[i]
		if mccmnc.SameCountry(rec.SIM, cat.Host) {
			continue // not an international inbound roamer
		}
		a := byHome[rec.SIM]
		if a == nil {
			a = &acc{devices: map[uint64]bool{}}
			byHome[rec.SIM] = a
		}
		a.devices[uint64(rec.Device)] = true
		a.mb += float64(rec.Bytes) / 1e6
		a.minutes += rec.CallSeconds / 60
		a.events += rec.Events
	}
	st := &Statement{Host: cat.Host, Days: cat.Days}
	for home, a := range byHome {
		card := rates.For(home, cat.Host)
		st.Lines = append(st.Lines, PartnerLine{
			Home:    home,
			Devices: len(a.devices),
			MB:      a.mb,
			Minutes: a.minutes,
			Events:  a.events,
			Revenue: a.mb*card.DataPerMB + a.minutes*card.VoicePerMin,
		})
	}
	sort.Slice(st.Lines, func(i, j int) bool { return st.Lines[i].Revenue > st.Lines[j].Revenue })
	return st
}

// TotalRevenue sums the statement.
func (s *Statement) TotalRevenue() float64 {
	t := 0.0
	for _, l := range s.Lines {
		t += l.Revenue
	}
	return t
}

// TotalEvents sums the (non-billable) event load.
func (s *Statement) TotalEvents() int {
	t := 0
	for _, l := range s.Lines {
		t += l.Events
	}
	return t
}

// String renders a compact settlement summary.
func (s *Statement) String() string {
	out := fmt.Sprintf("settlement for %s over %d days: %.2f EUR across %d partners\n",
		s.Host, s.Days, s.TotalRevenue(), len(s.Lines))
	for i, l := range s.Lines {
		if i >= 10 {
			out += fmt.Sprintf("  ... %d more partners\n", len(s.Lines)-i)
			break
		}
		name := l.Home.String()
		if op, ok := mccmnc.Lookup(l.Home); ok {
			name = op.Name
		}
		out += fmt.Sprintf("  %-16s %6d devices %12.1f MB %10.1f min %10.2f EUR\n",
			name, l.Devices, l.MB, l.Minutes, l.Revenue)
	}
	return out
}

// ClassEconomics contrasts resource occupancy with revenue per device
// group — the paper's §6/§9 argument in one structure.
type ClassEconomics struct {
	Group        string
	Devices      int
	EventShare   float64 // share of all inbound radio events
	RevenueShare float64 // share of all inbound wholesale revenue
	// RevenuePerDevice is the average wholesale value of one device
	// over the window, in euro.
	RevenuePerDevice float64
}

// EconomicsByGroup computes occupancy-vs-revenue per device group.
// groupOf returns a label per device record ("m2m", "smart", ...);
// records from non-inbound devices must be mapped to "" to be
// skipped.
func EconomicsByGroup(cat *catalog.Catalog, rates Rates, groupOf func(rec *catalog.DailyRecord) string) []ClassEconomics {
	type acc struct {
		devices map[uint64]bool
		events  int
		revenue float64
	}
	groups := map[string]*acc{}
	var totalEvents int
	var totalRevenue float64
	for i := range cat.Records {
		rec := &cat.Records[i]
		g := groupOf(rec)
		if g == "" {
			continue
		}
		card := rates.For(rec.SIM, cat.Host)
		rev := float64(rec.Bytes)/1e6*card.DataPerMB + rec.CallSeconds/60*card.VoicePerMin
		a := groups[g]
		if a == nil {
			a = &acc{devices: map[uint64]bool{}}
			groups[g] = a
		}
		a.devices[uint64(rec.Device)] = true
		a.events += rec.Events
		a.revenue += rev
		totalEvents += rec.Events
		totalRevenue += rev
	}
	out := make([]ClassEconomics, 0, len(groups))
	for g, a := range groups {
		ce := ClassEconomics{Group: g, Devices: len(a.devices)}
		if totalEvents > 0 {
			ce.EventShare = float64(a.events) / float64(totalEvents)
		}
		if totalRevenue > 0 {
			ce.RevenueShare = a.revenue / totalRevenue
		}
		if n := len(a.devices); n > 0 {
			ce.RevenuePerDevice = a.revenue / float64(n)
		}
		out = append(out, ce)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}
