package settlement

import (
	"math"
	"strings"
	"testing"

	"whereroam/internal/catalog"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
)

var (
	host = mccmnc.MustParse("23410")  // UK (EU zone in April 2019)
	nl   = mccmnc.MustParse("20404")  // EU home
	mx   = mccmnc.MustParse("334020") // non-EU home
	ee   = mccmnc.MustParse("23430")  // same-country operator
)

func rec(dev int, sim mccmnc.PLMN, mb float64, minutes float64, events int) catalog.DailyRecord {
	return catalog.DailyRecord{
		Device:      identity.DeviceID(dev),
		SIM:         sim,
		Bytes:       uint64(mb * 1e6),
		CallSeconds: minutes * 60,
		Events:      events,
	}
}

func TestRatesFor(t *testing.T) {
	r := DefaultRates()
	if got := r.For(nl, host); got != r.EU {
		t.Error("NL->UK should be EU-regulated")
	}
	if got := r.For(mx, host); got != r.World {
		t.Error("MX->UK should be world rate")
	}
	if r.World.DataPerMB <= r.EU.DataPerMB {
		t.Error("world data rate must exceed the EU cap")
	}
}

func TestSettleBasics(t *testing.T) {
	cat := &catalog.Catalog{Host: host, Days: 22, Records: []catalog.DailyRecord{
		rec(1, nl, 100, 10, 500),  // EU roamer
		rec(1, nl, 50, 0, 300),    // same device, second day
		rec(2, mx, 100, 10, 200),  // world roamer
		rec(3, host, 9999, 99, 1), // native: out of scope
		rec(4, ee, 500, 5, 50),    // national roamer: not international
	}}
	st := Settle(cat, DefaultRates())
	if len(st.Lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(st.Lines))
	}
	// World-rate partner must outrank the EU one despite smaller
	// volume (rates differ by two orders of magnitude).
	if st.Lines[0].Home != mx {
		t.Errorf("top line = %v, want MX", st.Lines[0].Home)
	}
	var nlLine, mxLine PartnerLine
	for _, l := range st.Lines {
		switch l.Home {
		case nl:
			nlLine = l
		case mx:
			mxLine = l
		}
	}
	if nlLine.Devices != 1 || mxLine.Devices != 1 {
		t.Errorf("device counts: nl=%d mx=%d", nlLine.Devices, mxLine.Devices)
	}
	wantNL := 150*0.0045 + 10*0.032
	if math.Abs(nlLine.Revenue-wantNL) > 1e-9 {
		t.Errorf("NL revenue = %f, want %f", nlLine.Revenue, wantNL)
	}
	wantMX := 100*0.50 + 10*0.25
	if math.Abs(mxLine.Revenue-wantMX) > 1e-9 {
		t.Errorf("MX revenue = %f, want %f", mxLine.Revenue, wantMX)
	}
	if st.TotalEvents() != 1000 {
		t.Errorf("events = %d, want 1000 (native excluded)", st.TotalEvents())
	}
	if math.Abs(st.TotalRevenue()-(wantNL+wantMX)) > 1e-9 {
		t.Errorf("total = %f", st.TotalRevenue())
	}
}

func TestSettleEmptyCatalog(t *testing.T) {
	st := Settle(&catalog.Catalog{Host: host, Days: 22}, DefaultRates())
	if len(st.Lines) != 0 || st.TotalRevenue() != 0 {
		t.Error("empty catalog should settle to zero")
	}
}

func TestStatementString(t *testing.T) {
	cat := &catalog.Catalog{Host: host, Days: 22, Records: []catalog.DailyRecord{
		rec(1, nl, 10, 1, 5),
	}}
	s := Settle(cat, DefaultRates()).String()
	if !strings.Contains(s, "Vodafone NL") || !strings.Contains(s, "EUR") {
		t.Errorf("statement = %q", s)
	}
}

func TestEconomicsByGroup(t *testing.T) {
	cat := &catalog.Catalog{Host: host, Days: 22, Records: []catalog.DailyRecord{
		// An m2m device: heavy signaling, almost no billable volume.
		rec(1, nl, 0.01, 0, 900),
		// A smartphone tourist: light signaling, real volume.
		rec(2, nl, 200, 20, 100),
		// A native device that must be skipped.
		rec(3, host, 1000, 100, 1000),
	}}
	groups := map[identity.DeviceID]string{1: "m2m", 2: "smart"}
	ecos := EconomicsByGroup(cat, DefaultRates(), func(r *catalog.DailyRecord) string {
		return groups[r.Device]
	})
	if len(ecos) != 2 {
		t.Fatalf("groups = %d", len(ecos))
	}
	var m2m, smart ClassEconomics
	for _, e := range ecos {
		switch e.Group {
		case "m2m":
			m2m = e
		case "smart":
			smart = e
		}
	}
	// The paper's §9 statement: m2m dominates occupancy, smartphones
	// dominate revenue.
	if m2m.EventShare <= smart.EventShare {
		t.Errorf("m2m event share %.3f should exceed smart %.3f", m2m.EventShare, smart.EventShare)
	}
	if m2m.RevenueShare >= smart.RevenueShare {
		t.Errorf("m2m revenue share %.3f should trail smart %.3f", m2m.RevenueShare, smart.RevenueShare)
	}
	if m2m.RevenuePerDevice >= smart.RevenuePerDevice {
		t.Error("per-device revenue ordering broken")
	}
	// Shares must sum to 1 across groups.
	if math.Abs(m2m.EventShare+smart.EventShare-1) > 1e-9 {
		t.Error("event shares do not sum to 1")
	}
	if math.Abs(m2m.RevenueShare+smart.RevenueShare-1) > 1e-9 {
		t.Error("revenue shares do not sum to 1")
	}
}
