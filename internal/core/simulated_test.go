package core_test

import (
	"testing"

	"whereroam/internal/core"
	"whereroam/internal/dataset"
)

// These tests live outside package core because they drive the
// simulator (internal/dataset imports core for the transparency
// registry, so an in-package import would cycle).

func TestValidateOnSimulatedPopulation(t *testing.T) {
	cfg := dataset.DefaultMNOConfig()
	cfg.Devices = 6000
	ds := dataset.GenerateMNO(cfg)
	sums := ds.Catalog.Summaries(ds.GSMA)
	res := core.NewClassifier().Classify(sums)
	v, err := core.Validate(res, ds.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if v.Total != len(sums) {
		t.Fatalf("validated %d of %d", v.Total, len(sums))
	}
	// The classifier must be strong on the simulated population: the
	// paper ships it as the practical answer to inbound-roamer
	// triage.
	if acc := v.Accuracy(); acc < 0.93 {
		t.Errorf("accuracy = %.3f, want >= 0.93\n%s", acc, v)
	}
	if p := v.Precision(core.ClassM2M); p < 0.90 {
		t.Errorf("m2m precision = %.3f\n%s", p, v)
	}
	if r := v.Recall(core.ClassM2M); r < 0.75 {
		t.Errorf("m2m recall = %.3f\n%s", r, v)
	}
	if r := v.Recall(core.ClassSmart); r < 0.90 {
		t.Errorf("smart recall = %.3f\n%s", r, v)
	}
}

func TestClassSharesMatchPaper(t *testing.T) {
	// §4.3: smart 62%, feat 8%, m2m 26%, m2m-maybe 4%.
	cfg := dataset.DefaultMNOConfig()
	cfg.Devices = 8000
	ds := dataset.GenerateMNO(cfg)
	sums := ds.Catalog.Summaries(ds.GSMA)
	res := core.NewClassifier().Classify(sums)
	b := core.Breakdown(res)
	n := float64(len(res))
	check := func(c core.Class, want, tol float64) {
		got := float64(b[c]) / n
		if got < want-tol || got > want+tol {
			t.Errorf("%v share = %.3f, want %.2f±%.2f", c, got, want, tol)
		}
	}
	check(core.ClassSmart, 0.62, 0.05)
	check(core.ClassFeat, 0.08, 0.04)
	check(core.ClassM2M, 0.26, 0.06)
	check(core.ClassM2MMaybe, 0.04, 0.04)
}

func TestTransparencyImprovesRecall(t *testing.T) {
	// §1/§8: with IR.88 declarations the visited operator recognizes
	// declared fleets without any traffic evidence. Recall with
	// declarations must be at least as good as without, and declared
	// devices must all be truly m2m (the home operator knows its own
	// fleet).
	cfg := dataset.DefaultMNOConfig()
	cfg.Devices = 6000
	cfg.TransparencyAdoption = 0.6
	ds := dataset.GenerateMNO(cfg)
	if ds.Transparency.Len() == 0 {
		t.Fatal("no home operator adopted transparency")
	}
	for id := range ds.Declared {
		if !ds.Truth[id].IsM2M() {
			t.Fatalf("declared device %v is not m2m ground truth", id)
		}
	}
	sums := ds.Catalog.Summaries(ds.GSMA)
	plain := core.NewClassifier()
	resPlain := plain.Classify(sums)
	withDecl := plain.WithDeclarations(ds.Declared)
	resDecl := withDecl.Classify(sums)

	vPlain, err := core.Validate(resPlain, ds.Truth)
	if err != nil {
		t.Fatal(err)
	}
	vDecl, err := core.Validate(resDecl, ds.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if vDecl.Recall(core.ClassM2M) < vPlain.Recall(core.ClassM2M) {
		t.Errorf("declarations reduced m2m recall: %.3f -> %.3f",
			vPlain.Recall(core.ClassM2M), vDecl.Recall(core.ClassM2M))
	}
	if vDecl.Precision(core.ClassM2M) < 0.95 {
		t.Errorf("m2m precision with declarations = %.3f", vDecl.Precision(core.ClassM2M))
	}
	// Evidence audit: some devices must be decided by the declaration
	// alone.
	declaredEvidence := 0
	for _, r := range resDecl {
		if r.Evidence == "ir88-declared" {
			declaredEvidence++
		}
	}
	if declaredEvidence == 0 {
		t.Error("no device was classified by declaration evidence")
	}
}

func TestTransparencyDisabled(t *testing.T) {
	cfg := dataset.DefaultMNOConfig()
	cfg.Devices = 1000
	cfg.TransparencyAdoption = 0
	ds := dataset.GenerateMNO(cfg)
	if ds.Transparency.Len() != 0 || len(ds.Declared) != 0 {
		t.Error("transparency should be empty when adoption is 0")
	}
}

func BenchmarkClassify(b *testing.B) {
	cfg := dataset.DefaultMNOConfig()
	cfg.Devices = 4000
	ds := dataset.GenerateMNO(cfg)
	sums := ds.Catalog.Summaries(ds.GSMA)
	c := core.NewClassifier()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Classify(sums)
	}
}
