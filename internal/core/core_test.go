package core

import (
	"testing"

	"whereroam/internal/apn"
	"whereroam/internal/catalog"
	"whereroam/internal/devices"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
)

var (
	host  = mccmnc.MustParse("23410")
	esOp  = mccmnc.MustParse("21407")
	nlOp  = mccmnc.MustParse("20404")
	gbEE  = mccmnc.MustParse("23430")
	frOp  = mccmnc.MustParse("20801")
	mvno1 = mccmnc.PLMN{MCC: 234, MNC: 26, MNCLen: 2}
	mvno2 = mccmnc.PLMN{MCC: 234, MNC: 38, MNCLen: 2}
)

func labeler() *Labeler { return NewLabeler(host, mvno1, mvno2) }

func TestLabelGrammar(t *testing.T) {
	lb := labeler()
	cases := []struct {
		sim, visited mccmnc.PLMN
		want         string
	}{
		{host, host, "H:H"},
		{mvno1, host, "V:H"},
		{gbEE, host, "N:H"},
		{nlOp, host, "I:H"},
		{host, frOp, "H:A"},
		{mvno2, esOp, "V:A"},
	}
	for _, c := range cases {
		if got := lb.Label(c.sim, c.visited).String(); got != c.want {
			t.Errorf("Label(%v,%v) = %s, want %s", c.sim, c.visited, got, c.want)
		}
	}
}

func TestLabelClosureProperty(t *testing.T) {
	// Property: every (sim, visited) pair yields one of the six
	// defined labels.
	lb := labeler()
	valid := map[Label]bool{}
	for _, l := range AllLabels {
		valid[l] = true
	}
	sims := []mccmnc.PLMN{host, mvno1, gbEE, nlOp, esOp, frOp}
	visits := []mccmnc.PLMN{host, gbEE, nlOp, esOp, frOp}
	for _, s := range sims {
		for _, v := range visits {
			l := lb.Label(s, v)
			// Observable captures are: anything attached in the
			// host's country, plus the host's own (and MVNO) SIMs
			// abroad via settlement records. N:A / I:A pairs never
			// reach the host's probes, so they are exempt.
			observable := l.Y == AttachHome || l.X == SIMHome || l.X == SIMVirtual
			if observable && !valid[l] {
				t.Errorf("Label(%v,%v) = %v not in the six defined labels", s, v, l)
			}
		}
	}
}

func TestLabelPredicates(t *testing.T) {
	if !LabelIH.InboundRoamer() || LabelHH.InboundRoamer() {
		t.Error("InboundRoamer wrong")
	}
	if !LabelHH.Native() || LabelVH.Native() {
		t.Error("Native wrong")
	}
}

func TestLabelRecordHomeWins(t *testing.T) {
	lb := labeler()
	r := catalog.DailyRecord{SIM: host}
	r.AddVisited(frOp)
	r.AddVisited(host)
	if got := lb.LabelRecord(&r); got != LabelHH {
		t.Errorf("label = %v, want H:H (home-side presence wins)", got)
	}
	r2 := catalog.DailyRecord{SIM: host}
	r2.AddVisited(frOp)
	if got := lb.LabelRecord(&r2); got != LabelHA {
		t.Errorf("label = %v, want H:A", got)
	}
	r3 := catalog.DailyRecord{SIM: nlOp}
	if got := lb.LabelRecord(&r3); got != LabelIH {
		t.Errorf("empty-visited label = %v, want I:H", got)
	}
}

func sum(id int, sim mccmnc.PLMN, tac identity.TAC, info gsma.DeviceInfo, infoOK bool, apns ...apn.APN) catalog.Summary {
	return catalog.Summary{
		Device: identity.DeviceID(id),
		SIM:    sim,
		TAC:    tac,
		Info:   info,
		InfoOK: infoOK,
		APNs:   apns,
	}
}

func TestClassifyByValidatedAPN(t *testing.T) {
	c := NewClassifier()
	meterAPN := apn.MustParse("smhp.centricaplc.com.mnc004.mcc204.gprs")
	sums := []catalog.Summary{
		sum(1, nlOp, 35600000, gsma.DeviceInfo{Type: gsma.TypeModule}, true, meterAPN),
	}
	res := c.Classify(sums)
	if res[0].Class != ClassM2M || res[0].Evidence != "apn-validated" {
		t.Fatalf("result = %+v", res[0])
	}
	if got := c.ValidatedAPNs(sums); len(got) != 1 || got[0] != meterAPN {
		t.Errorf("validated APNs = %v", got)
	}
}

func TestClassifyPropertyClosure(t *testing.T) {
	c := NewClassifier()
	meterAPN := apn.MustParse("meter.rwe-npower.co.uk")
	modInfo := gsma.DeviceInfo{Type: gsma.TypeModule}
	sums := []catalog.Summary{
		// Device 1 uses a validated APN with TAC 123.
		sum(1, nlOp, 123, modInfo, true, meterAPN),
		// Device 2 shares the TAC but has no APN (voice-only): the
		// closure should still classify it m2m.
		sum(2, nlOp, 123, modInfo, true),
		// Device 3 has a different TAC and no APN: m2m-maybe.
		sum(3, nlOp, 456, modInfo, true),
	}
	res := c.Classify(sums)
	if res[1].Class != ClassM2M || res[1].Evidence != "property-closure" {
		t.Errorf("closure result = %+v", res[1])
	}
	if res[2].Class != ClassM2MMaybe {
		t.Errorf("no-evidence result = %+v", res[2])
	}
}

func TestClassifySmartphone(t *testing.T) {
	c := NewClassifier()
	android := gsma.DeviceInfo{OS: gsma.OSAndroid, Type: gsma.TypeSmartphone}
	sums := []catalog.Summary{
		sum(1, host, 35200000, android, true, apn.MustParse("payandgo.telco.co.uk")),
		sum(2, host, 35200001, android, true), // voice-only smartphone
	}
	res := c.Classify(sums)
	for i, r := range res {
		if r.Class != ClassSmart {
			t.Errorf("device %d = %+v, want smart", i+1, r)
		}
	}
}

func TestClassifyFeaturePhone(t *testing.T) {
	c := NewClassifier()
	feat := gsma.DeviceInfo{OS: gsma.OSProprietary, Type: gsma.TypeFeaturePhone}
	unknownInfo := gsma.DeviceInfo{}
	sums := []catalog.Summary{
		sum(1, host, 35400000, feat, true),
		// GSMA-unknown device with a consumer APN only: feat per §4.3.
		sum(2, host, 0, unknownInfo, false, apn.MustParse("wap.provider.net")),
	}
	res := c.Classify(sums)
	if res[0].Class != ClassFeat || res[0].Evidence != "gsma-feature-phone" {
		t.Errorf("result = %+v", res[0])
	}
	if res[1].Class != ClassFeat || res[1].Evidence != "consumer-apn" {
		t.Errorf("result = %+v", res[1])
	}
}

func TestClassifySmartphoneWithM2MAPNIsM2M(t *testing.T) {
	// A smartphone-OS device on a validated M2M APN counts as m2m —
	// APN evidence outranks device properties (it may be a phone SoC
	// embedded in a vertical product).
	c := NewClassifier()
	android := gsma.DeviceInfo{OS: gsma.OSAndroid, Type: gsma.TypeSmartphone}
	sums := []catalog.Summary{
		sum(1, esOp, 35200000, android, true, apn.MustParse("telematics.scania.com")),
	}
	if res := c.Classify(sums); res[0].Class != ClassM2M {
		t.Errorf("result = %+v", res[0])
	}
}

func TestClassifierStepsAblation(t *testing.T) {
	meterAPN := apn.MustParse("meter.rwe-npower.co.uk")
	modInfo := gsma.DeviceInfo{Type: gsma.TypeModule}
	sums := []catalog.Summary{
		sum(1, nlOp, 123, modInfo, true, meterAPN),
		sum(2, nlOp, 123, modInfo, true), // closure-only device
	}
	// Keywords only: no closure, device 2 unresolved.
	c := NewClassifier()
	c.Steps = Steps{ValidateAPNs: false, PropertyClosure: false}
	res := c.Classify(sums)
	if res[0].Class != ClassM2M || res[0].Evidence != "apn-keyword" {
		t.Errorf("keyword-only result = %+v", res[0])
	}
	if res[1].Class != ClassM2MMaybe {
		t.Errorf("keyword-only closure device = %+v", res[1])
	}
	// Validation without closure.
	c.Steps = Steps{ValidateAPNs: true, PropertyClosure: false}
	res = c.Classify(sums)
	if res[1].Class != ClassM2MMaybe {
		t.Errorf("no-closure device = %+v", res[1])
	}
}

func TestValidationErrsOnUnknownDevice(t *testing.T) {
	res := []Result{{Device: identity.DeviceID(99), Class: ClassSmart}}
	if _, err := Validate(res, map[identity.DeviceID]devices.Class{}); err == nil {
		t.Fatal("expected error for missing ground truth")
	}
}

func TestValidationMetricsArithmetic(t *testing.T) {
	v := &Validation{Confusion: map[Class]map[Class]int{
		ClassSmart: {ClassSmart: 90, ClassFeat: 5, ClassM2MMaybe: 5},
		ClassM2M:   {ClassM2M: 70, ClassSmart: 10, ClassM2MMaybe: 20},
	}, Total: 200}
	if p := v.Precision(ClassSmart); p != 0.9 {
		t.Errorf("smart precision = %f, want 0.9", p)
	}
	if r := v.Recall(ClassSmart); r != 0.9 {
		t.Errorf("smart recall = %f, want 0.9", r)
	}
	if a := v.Abstained(ClassM2M); a != 0.2 {
		t.Errorf("m2m abstained = %f, want 0.2", a)
	}
	// decided = 90+5+70+10 = 175, correct = 160.
	if acc := v.Accuracy(); acc < 0.914 || acc > 0.915 {
		t.Errorf("accuracy = %f", acc)
	}
}
