// Package core implements the paper's primary methodological
// contribution: the roaming labels of §4.2 and the multi-step
// M2M/smartphone/feature-phone classifier of §4.3, together with the
// validation harness that measures both against simulator ground
// truth.
package core

import (
	"fmt"

	"whereroam/internal/catalog"
	"whereroam/internal/mccmnc"
)

// SIMOrigin is the X part of a roaming label: whose SIM the device
// carries relative to the observing MNO.
type SIMOrigin byte

// SIM origins (§4.2).
const (
	SIMHome     SIMOrigin = 'H' // the MNO's own SIM
	SIMVirtual  SIMOrigin = 'V' // an MVNO riding the MNO
	SIMNational SIMOrigin = 'N' // another MNO of the same country
	SIMIntl     SIMOrigin = 'I' // a foreign MNO
)

// AttachSide is the Y part of a roaming label: where the device is
// attached relative to the observing MNO's country.
type AttachSide byte

// Attach sides (§4.2).
const (
	AttachHome   AttachSide = 'H' // attached in the MNO's country
	AttachAbroad AttachSide = 'A' // attached to a foreign network
)

// Label is a roaming label <X:Y>. Six combinations are meaningful:
// H:H (native), V:H (MVNO), N:H (national roamer), I:H (international
// inbound roamer), H:A and V:A (outbound roamers).
type Label struct {
	X SIMOrigin
	Y AttachSide
}

// The six roaming labels.
var (
	LabelHH = Label{SIMHome, AttachHome}
	LabelVH = Label{SIMVirtual, AttachHome}
	LabelNH = Label{SIMNational, AttachHome}
	LabelIH = Label{SIMIntl, AttachHome}
	LabelHA = Label{SIMHome, AttachAbroad}
	LabelVA = Label{SIMVirtual, AttachAbroad}
)

// AllLabels lists the six meaningful labels in presentation order.
var AllLabels = []Label{LabelHH, LabelVH, LabelNH, LabelIH, LabelHA, LabelVA}

func (l Label) String() string { return fmt.Sprintf("%c:%c", l.X, l.Y) }

// InboundRoamer reports whether the label marks an international
// inbound roamer (I:H), the population the paper centres on.
func (l Label) InboundRoamer() bool { return l == LabelIH }

// Native reports whether the label marks the MNO's own subscriber at
// home (H:H).
func (l Label) Native() bool { return l == LabelHH }

// Labeler assigns roaming labels given the observing MNO and its
// MVNOs.
type Labeler struct {
	Host  mccmnc.PLMN
	MVNOs map[mccmnc.PLMN]bool
}

// NewLabeler builds a Labeler for host with the given virtual
// operators.
func NewLabeler(host mccmnc.PLMN, mvnos ...mccmnc.PLMN) *Labeler {
	m := make(map[mccmnc.PLMN]bool, len(mvnos))
	for _, p := range mvnos {
		m[p] = true
	}
	return &Labeler{Host: host, MVNOs: m}
}

// Label labels one (SIM, visited network) observation.
func (lb *Labeler) Label(sim, visited mccmnc.PLMN) Label {
	var l Label
	switch {
	case sim == lb.Host:
		l.X = SIMHome
	case lb.MVNOs[sim]:
		l.X = SIMVirtual
	case mccmnc.SameCountry(sim, lb.Host):
		l.X = SIMNational
	default:
		l.X = SIMIntl
	}
	if mccmnc.SameCountry(visited, lb.Host) {
		l.Y = AttachHome
	} else {
		l.Y = AttachAbroad
	}
	return l
}

// LabelRecord labels a devices-catalog daily record. Days with both
// home-side and abroad activity label as home (radio presence on the
// host wins over settlement records from abroad).
func (lb *Labeler) LabelRecord(r *catalog.DailyRecord) Label {
	best := Label{}
	for _, v := range r.Visited {
		l := lb.Label(r.SIM, v)
		if l.Y == AttachHome {
			return l
		}
		best = l
	}
	if best == (Label{}) {
		// No visited networks recorded: assume host-side observation.
		return lb.Label(r.SIM, lb.Host)
	}
	return best
}

// LabelSummary labels a device summary with its dominant label: the
// home-side label if the device was ever seen on the host's country,
// otherwise the abroad label (a device only abroad all window).
func (lb *Labeler) LabelSummary(s *catalog.Summary) Label {
	sawHome := false
	for _, v := range s.Visited {
		if mccmnc.SameCountry(v, lb.Host) {
			sawHome = true
			break
		}
	}
	if sawHome || len(s.Visited) == 0 {
		return lb.Label(s.SIM, lb.Host)
	}
	return lb.Label(s.SIM, s.Visited[0])
}
