package core

import (
	"fmt"

	"whereroam/internal/devices"
	"whereroam/internal/identity"
)

// Validation measures the classifier against simulator ground truth.
// The paper validates on the smart-meter population (§7); with the
// simulator we can validate over every class.
type Validation struct {
	// Confusion[truth][predicted] counts devices. Truth collapses the
	// vertical classes into the paper's three: smart / feat / m2m.
	Confusion map[Class]map[Class]int
	// Total is the number of devices evaluated.
	Total int
}

// truthClass maps a ground-truth vertical to the paper's
// classification target.
func truthClass(c devices.Class) Class {
	switch c {
	case devices.ClassSmartphone:
		return ClassSmart
	case devices.ClassFeaturePhone:
		return ClassFeat
	default:
		return ClassM2M
	}
}

// Validate compares predictions against ground truth.
func Validate(results []Result, truth map[identity.DeviceID]devices.Class) (*Validation, error) {
	v := &Validation{Confusion: map[Class]map[Class]int{}}
	for _, r := range results {
		tc, ok := truth[r.Device]
		if !ok {
			return nil, fmt.Errorf("core: no ground truth for device %v", r.Device)
		}
		t := truthClass(tc)
		m := v.Confusion[t]
		if m == nil {
			m = map[Class]int{}
			v.Confusion[t] = m
		}
		m[r.Class]++
		v.Total++
	}
	return v, nil
}

// Precision returns precision for the class: of the devices predicted
// c (excluding m2m-maybe abstentions), how many truly are c.
func (v *Validation) Precision(c Class) float64 {
	tp, fp := 0, 0
	for truth, preds := range v.Confusion {
		if truth == c {
			tp += preds[c]
		} else {
			fp += preds[c]
		}
	}
	if tp+fp == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fp)
}

// Recall returns recall for the class: of the devices truly c, how
// many were predicted c. m2m-maybe abstentions count against recall,
// matching the paper's decision to exclude them from analysis.
func (v *Validation) Recall(c Class) float64 {
	tp, fn := 0, 0
	for pred, n := range v.Confusion[c] {
		if pred == c {
			tp += n
		} else {
			fn += n
		}
	}
	if tp+fn == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fn)
}

// Abstained returns the fraction of truly-c devices the classifier
// parked in m2m-maybe.
func (v *Validation) Abstained(c Class) float64 {
	total := 0
	for _, n := range v.Confusion[c] {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(v.Confusion[c][ClassM2MMaybe]) / float64(total)
}

// Accuracy returns overall accuracy over non-abstained predictions.
func (v *Validation) Accuracy() float64 {
	correct, decided := 0, 0
	for truth, preds := range v.Confusion {
		for pred, n := range preds {
			if pred == ClassM2MMaybe {
				continue
			}
			decided += n
			if pred == truth {
				correct += n
			}
		}
	}
	if decided == 0 {
		return 0
	}
	return float64(correct) / float64(decided)
}

// String renders a compact report.
func (v *Validation) String() string {
	s := fmt.Sprintf("validation over %d devices: accuracy %.3f\n", v.Total, v.Accuracy())
	for _, c := range []Class{ClassSmart, ClassFeat, ClassM2M} {
		s += fmt.Sprintf("  %-6s precision %.3f recall %.3f abstained %.3f\n",
			c, v.Precision(c), v.Recall(c), v.Abstained(c))
	}
	return s
}
