package core

import (
	"sort"

	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
)

// Transparency models the GSMA IR.88-style disclosure the paper's
// introduction calls for: home networks publish the dedicated IMSI
// ranges (and APNs) their outbound M2M fleets use, so a visited
// operator can recognize an inbound roamer as M2M at attach time —
// when the real IMSI is still visible, before anonymization.
//
// Declarations therefore apply at capture time: the dataset
// generators check device IMSIs against a Registry and hand the
// classifier a per-device "declared" verdict; the classifier uses it
// as step 0, ahead of any APN evidence.

// Declaration is one home operator's published M2M transparency data.
type Declaration struct {
	Home mccmnc.PLMN
	// Ranges are the dedicated IMSI blocks of the operator's M2M
	// fleet.
	Ranges []identity.IMSIRange
}

// Registry is a set of declarations indexed for IMSI lookups.
type Registry struct {
	byHome map[mccmnc.PLMN][]identity.IMSIRange
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byHome: map[mccmnc.PLMN][]identity.IMSIRange{}}
}

// Add registers a declaration. Ranges accumulate per home operator.
func (r *Registry) Add(d Declaration) {
	r.byHome[d.Home] = append(r.byHome[d.Home], d.Ranges...)
}

// MatchIMSI reports whether the IMSI falls inside a declared M2M
// range.
func (r *Registry) MatchIMSI(im identity.IMSI) bool {
	for _, rng := range r.byHome[im.PLMN] {
		if rng.Contains(im) {
			return true
		}
	}
	return false
}

// Homes returns the declaring operators, sorted.
func (r *Registry) Homes() []mccmnc.PLMN {
	out := make([]mccmnc.PLMN, 0, len(r.byHome))
	for p := range r.byHome {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Concat() < out[j].Concat() })
	return out
}

// Len returns the number of declaring operators.
func (r *Registry) Len() int { return len(r.byHome) }

// WithDeclarations returns a copy of the classifier that treats the
// per-device declared verdicts as step 0: a declared device is m2m
// before any APN or property evidence is consulted.
func (c *Classifier) WithDeclarations(declared map[identity.DeviceID]bool) *Classifier {
	clone := *c
	clone.declared = declared
	return &clone
}
