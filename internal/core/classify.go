package core

import (
	"sort"
	"strconv"

	"whereroam/internal/apn"
	"whereroam/internal/catalog"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/pipeline"
)

// Class is the classifier's output (§4.3).
type Class uint8

// Classifier output classes.
const (
	// ClassSmart is a smartphone.
	ClassSmart Class = iota
	// ClassFeat is a feature phone.
	ClassFeat
	// ClassM2M is an IoT/M2M device.
	ClassM2M
	// ClassM2MMaybe is the residue: device properties suggest
	// neither a smartphone nor a feature phone, but with no APN
	// evidence the classification cannot be finalized (§4.3 excludes
	// these from further analysis).
	ClassM2MMaybe
)

var classNames = [...]string{"smart", "feat", "m2m", "m2m-maybe"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class(" + strconv.Itoa(int(c)) + ")"
}

// DefaultM2MKeywords is the keyword table mapping APN tokens to
// M2M/IoT verticals — the analogue of the 26 keywords the paper
// derived by ranking APNs by device count and investigating the top
// strings online (scania → automotive, rwe → energy,
// intelligent.m2m → global IoT SIM provider, ...).
//
// The table is classifier-side knowledge: it deliberately does not
// mirror the generator's APN pools one-for-one (some verticals'
// strings are missed, exactly as a real analyst would miss tail
// services), so the property-closure step has real work to do.
var DefaultM2MKeywords = []string{
	// Energy / smart metering.
	"smhp", "centricaplc", "rwe", "npower", "elster", "metering",
	"generalelectric", "bglobal", "smartgrid", "edfenergy", "smip", "amr",
	// Automotive.
	"scania", "telematics", "connecteddrive", "daimler", "uconnect",
	"volvocars",
	// Global IoT SIM platforms.
	"intelligent.m2m", "m2m",
	// Logistics and tracking.
	"fleet", "asset", "cargotrace",
	// Payments.
	"pos", "payment",
	// Wearables.
	"wearable",
}

// DefaultConsumerKeywords marks the generic operator APNs of
// person-devices (the paper's 2,178 consumer strings, e.g.
// "payandgo").
var DefaultConsumerKeywords = []string{
	"payandgo", "internet", "web", "wap", "mms", "prepay", "contract",
	"broadband", "mobile", "data", "roaming",
}

// Classifier implements the paper's multi-step classification:
// keywords → validated APNs → device-property closure, with
// OS/GSMA-label rules for the phone classes.
type Classifier struct {
	m2mKeywords      []string
	consumerKeywords []string
	// Steps allows disabling the later pipeline stages for the
	// ablation study (DESIGN.md §5).
	Steps Steps
	// declared carries capture-time IR.88 verdicts (see
	// WithDeclarations); nil when no transparency data exists.
	declared map[identity.DeviceID]bool
}

// Steps selects which pipeline stages run.
type Steps struct {
	// ValidateAPNs runs step 2 (mark devices on validated APNs).
	ValidateAPNs bool
	// PropertyClosure runs step 3 (extend m2m to devices sharing the
	// properties of validated-APN devices).
	PropertyClosure bool
}

// AllSteps enables the full pipeline.
var AllSteps = Steps{ValidateAPNs: true, PropertyClosure: true}

// NewClassifier returns the standard classifier.
func NewClassifier() *Classifier {
	return &Classifier{
		m2mKeywords:      DefaultM2MKeywords,
		consumerKeywords: DefaultConsumerKeywords,
		Steps:            AllSteps,
	}
}

// Result is the classification of one device.
type Result struct {
	Device identity.DeviceID
	Class  Class
	// Evidence names the rule that fired, for auditability:
	// "apn-keyword", "apn-validated", "property-closure",
	// "smartphone-os", "gsma-feature-phone", "consumer-apn",
	// "no-evidence".
	Evidence string
}

// Classify runs the pipeline over device summaries. It returns one
// Result per summary, in the same order. Summary chunks are processed
// concurrently with one worker per CPU; see ClassifyWorkers for the
// worker-count contract.
func (c *Classifier) Classify(sums []catalog.Summary) []Result {
	return c.ClassifyWorkers(sums, 0)
}

// ClassifyWorkers is Classify with an explicit worker count (below
// one = one worker per CPU, one = serial). The population-level
// steps are two parallel sweeps separated by barriers: chunk workers
// first collect validated APNs, which merge into one set every
// worker then reads to collect m2m TACs, and only after both sets
// are complete does the per-device pass run. Sets are consulted by
// membership only, so the results are identical for every worker
// count.
func (c *Classifier) ClassifyWorkers(sums []catalog.Summary, workers int) []Result {
	// Step 1 (fan-out + barrier): collect validated APNs — APN
	// strings used in the population that match an M2M vertical
	// keyword.
	validated := mergeSets(pipeline.Map(len(sums), workers, func(sh pipeline.Shard) map[apn.APN]bool {
		part := map[apn.APN]bool{}
		for i := sh.Lo; i < sh.Hi; i++ {
			for _, a := range sums[i].APNs {
				if c.matchesM2M(a) {
					part[a] = true
				}
			}
		}
		return part
	}))

	// Step 2 (fan-out + barrier): devices using validated APNs are
	// m2m; remember their device properties (TAC) for the closure.
	// Needs the complete validated set, hence the second pass.
	m2mTACs := map[identity.TAC]bool{}
	if c.Steps.ValidateAPNs {
		m2mTACs = mergeSets(pipeline.Map(len(sums), workers, func(sh pipeline.Shard) map[identity.TAC]bool {
			part := map[identity.TAC]bool{}
			for i := sh.Lo; i < sh.Hi; i++ {
				if c.usesValidated(&sums[i], validated) && sums[i].TAC != 0 {
					part[sums[i].TAC] = true
				}
			}
			return part
		}))
	}

	out := make([]Result, len(sums))
	pipeline.Run(len(sums), workers, func(sh pipeline.Shard) {
		for i := sh.Lo; i < sh.Hi; i++ {
			out[i] = c.classifyOne(&sums[i], validated, m2mTACs)
		}
	})
	return out
}

// mergeSets unions per-chunk membership sets.
func mergeSets[K comparable](parts []map[K]bool) map[K]bool {
	if len(parts) == 0 {
		return map[K]bool{}
	}
	out := parts[0]
	for _, p := range parts[1:] {
		for k := range p {
			out[k] = true
		}
	}
	return out
}

func (c *Classifier) matchesM2M(a apn.APN) bool {
	for _, kw := range c.m2mKeywords {
		if a.ContainsKeyword(kw) {
			return true
		}
	}
	return false
}

func (c *Classifier) matchesConsumer(a apn.APN) bool {
	for _, kw := range c.consumerKeywords {
		if a.ContainsKeyword(kw) {
			return true
		}
	}
	return false
}

func (c *Classifier) usesValidated(s *catalog.Summary, validated map[apn.APN]bool) bool {
	for _, a := range s.APNs {
		if validated[a] {
			return true
		}
	}
	return false
}

func (c *Classifier) classifyOne(s *catalog.Summary, validated map[apn.APN]bool, m2mTACs map[identity.TAC]bool) Result {
	r := Result{Device: s.Device}

	// Step 0: IR.88 transparency — the home operator itself declared
	// this subscription as M2M (checked at capture time against the
	// published IMSI ranges).
	if c.declared != nil && c.declared[s.Device] {
		r.Class, r.Evidence = ClassM2M, "ir88-declared"
		return r
	}

	// APN evidence first: the strongest signal.
	if c.Steps.ValidateAPNs && c.usesValidated(s, validated) {
		r.Class, r.Evidence = ClassM2M, "apn-validated"
		return r
	}
	if !c.Steps.ValidateAPNs {
		// Ablation: keywords-only, no population-level validation.
		for _, a := range s.APNs {
			if c.matchesM2M(a) {
				r.Class, r.Evidence = ClassM2M, "apn-keyword"
				return r
			}
		}
	}
	// Property closure: same device model as confirmed m2m devices.
	if c.Steps.PropertyClosure && s.TAC != 0 && m2mTACs[s.TAC] {
		r.Class, r.Evidence = ClassM2M, "property-closure"
		return r
	}

	// Phone classes: OS and GSMA label plus consumer APNs (§4.3).
	consumer := false
	for _, a := range s.APNs {
		if c.matchesConsumer(a) {
			consumer = true
			break
		}
	}
	if s.InfoOK && s.Info.OS.IsSmartphoneOS() {
		if consumer || len(s.APNs) == 0 {
			r.Class, r.Evidence = ClassSmart, "smartphone-os"
			return r
		}
	}
	if s.InfoOK && s.Info.Type == gsma.TypeFeaturePhone {
		r.Class, r.Evidence = ClassFeat, "gsma-feature-phone"
		return r
	}
	if consumer {
		// Consumer APN without a smartphone OS: a feature phone.
		r.Class, r.Evidence = ClassFeat, "consumer-apn"
		return r
	}

	// Leftovers: not phone-like, but no APN evidence either — the
	// paper's m2m-maybe bucket.
	r.Class, r.Evidence = ClassM2MMaybe, "no-evidence"
	return r
}

// Breakdown counts results per class.
func Breakdown(results []Result) map[Class]int {
	out := map[Class]int{}
	for _, r := range results {
		out[r.Class]++
	}
	return out
}

// ValidatedAPNs exposes step 1 for inspection: the APN strings of the
// population that match the keyword table, sorted.
func (c *Classifier) ValidatedAPNs(sums []catalog.Summary) []apn.APN {
	set := map[apn.APN]bool{}
	for i := range sums {
		for _, a := range sums[i].APNs {
			if c.matchesM2M(a) {
				set[a] = true
			}
		}
	}
	out := make([]apn.APN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
