package serve

import (
	"net/http"
	"strconv"

	"whereroam/internal/obs"
	"whereroam/internal/store"
)

// routeNames are the instrumented routes, one per Handler pattern.
// Per-route series are pre-registered at construction so the request
// path only touches pre-resolved handles.
var routeNames = []string{
	"healthz", "statsz", "sites", "site_stats", "days",
	"devices", "device", "analysis", "compare",
}

// routeObs is one route's pre-resolved instrumentation handles.
type routeObs struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// serverObs is the server's observability state: nil on an
// uninstrumented server, in which case every hook below is a no-op
// and the request path is exactly the PR-7 code.
type serverObs struct {
	tracer   *obs.Tracer
	inflight *obs.Gauge
	latency  *obs.Histogram
	routes   map[string]*routeObs
	store    *store.Metrics
}

// newServerObs registers the serve-layer series and the cache gauges
// (scrape-time views over the slice cache's own counters — the cache
// stays the one source of truth; see CacheStats).
func newServerObs(s *Server, reg *obs.Registry, tracer *obs.Tracer) *serverObs {
	o := &serverObs{
		tracer:   tracer,
		inflight: reg.Gauge("roamd_http_inflight", "requests currently being served"),
		latency:  reg.Histogram("roamd_http_latency_seconds", "request latency across all routes", nil),
		routes:   make(map[string]*routeObs, len(routeNames)),
		store:    store.NewMetrics(reg, tracer),
	}
	for _, name := range routeNames {
		o.routes[name] = &routeObs{
			requests: reg.Counter(`roamd_http_requests_total{route="`+name+`"}`, "requests served per route"),
			errors:   reg.Counter(`roamd_http_errors_total{route="`+name+`"}`, "4xx/5xx responses per route"),
			latency:  reg.Histogram(`roamd_http_route_latency_seconds{route="`+name+`"}`, "request latency per route", nil),
		}
	}
	if reg != nil {
		cacheGauge := func(name, help string, field func(CacheStats) int64) {
			reg.GaugeFunc(name, help, func() float64 { return float64(field(s.cache.stats())) })
		}
		cacheGauge("roamd_cache_hits", "slice cache hits", func(cs CacheStats) int64 { return cs.Hits })
		cacheGauge("roamd_cache_misses", "slice cache misses", func(cs CacheStats) int64 { return cs.Misses })
		cacheGauge("roamd_cache_waits", "requests coalesced onto an in-flight fill", func(cs CacheStats) int64 { return cs.Waits })
		cacheGauge("roamd_cache_fills", "slice rebuilds executed", func(cs CacheStats) int64 { return cs.Fills })
		cacheGauge("roamd_cache_evictions", "slices evicted to respect the byte bound", func(cs CacheStats) int64 { return cs.Evictions })
		cacheGauge("roamd_cache_entries", "resident cached slices", func(cs CacheStats) int64 { return int64(cs.Entries) })
		cacheGauge("roamd_cache_bytes", "estimated resident bytes of cached slices", func(cs CacheStats) int64 { return cs.Bytes })
		cacheGauge("roamd_cache_max_bytes", "configured cache byte bound", func(cs CacheStats) int64 { return cs.MaxBytes })
	}
	return o
}

// span opens a tracer span; nil-safe end to end.
func (o *serverObs) span(name string) *obs.Span {
	if o == nil {
		return nil
	}
	return o.tracer.Start(name)
}

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// route wraps a handler with the per-route middleware: request and
// error counters, in-flight gauge, overall and per-route latency
// histograms. On an uninstrumented server it returns h unchanged —
// zero overhead, no wrapper in the call path.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	o := s.obs
	if o == nil {
		return h
	}
	ro := o.routes[name]
	return func(w http.ResponseWriter, r *http.Request) {
		o.inflight.Add(1)
		swAll := o.latency.Start()
		swRoute := ro.latency.Start()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		swRoute.Stop()
		swAll.Stop()
		o.inflight.Add(-1)
		ro.requests.Inc()
		if sw.status >= 400 {
			ro.errors.Inc()
		}
	}
}

// buildSlice is the shared cache-fill path: open the mount's store,
// attach the store metrics, replay under q and derive the slice —
// under a slice_build span labeled with the cache key and the built
// slice's cost estimate.
func (s *Server) buildSlice(key string, m *mount, q store.Query) (*slice, error) {
	return s.cache.get(key, func() (*slice, error) {
		sp := s.obs.span("slice_build").Label("key", key)
		r, err := m.open()
		if err != nil {
			return nil, err
		}
		if s.obs != nil {
			r.Observe(s.obs.store)
		}
		cat, _, err := r.Replay(q, s.cfg.Workers)
		if err != nil {
			return nil, err
		}
		sl := newSlice(cat, s.cfg.Workers)
		sp.Label("cost_bytes", strconv.FormatInt(sl.cost, 10)).Finish()
		return sl, nil
	})
}
