package serve

import (
	"testing"
)

// FuzzQueryParams fuzzes the request-decoding surface: arbitrary
// query strings and device path elements must decode to an error or
// a valid result, never panic, and successful decodes must satisfy
// the documented invariants.
func FuzzQueryParams(f *testing.F) {
	f.Add("lo=0&hi=4&limit=10", 5)
	f.Add("lo=2&hi=2", 5)
	f.Add("limit=100", 30)
	f.Add("", 1)
	f.Add("lo=-1&hi=3", 5)
	f.Add("lo=4&hi=1", 5)
	f.Add("lo=0", 5)
	f.Add("lo=0&hi=99999999999999999999", 5)
	f.Add("a=%zz&lo=0&hi=1", 5)
	f.Add("0123456789abcdef", 7)

	f.Fuzz(func(t *testing.T, raw string, days int) {
		opts, err := DecodeQuery(raw, days)
		if err == nil {
			if opts.HasRange {
				if opts.Lo < 0 || opts.Hi < opts.Lo {
					t.Fatalf("DecodeQuery(%q, %d) accepted range [%d, %d]", raw, days, opts.Lo, opts.Hi)
				}
				if days > 0 && opts.Hi >= days {
					t.Fatalf("DecodeQuery(%q, %d) accepted out-of-window hi %d", raw, days, opts.Hi)
				}
			}
			if opts.Limit < 0 {
				t.Fatalf("DecodeQuery(%q, %d) accepted negative limit %d", raw, days, opts.Limit)
			}
		}
		if dev, err := ParseDevice(raw); err == nil {
			if got := dev.String(); len(got) != 16 {
				t.Fatalf("ParseDevice(%q) round-trips to %q", raw, got)
			}
		}
	})
}
