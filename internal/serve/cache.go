package serve

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of the slice cache's
// counters, served by the /v1/statsz endpoint and asserted on by the
// concurrency tests (Fills is the "exactly one replay per slice"
// counter).
type CacheStats struct {
	// Entries is the number of cached slices.
	Entries int `json:"entries"`
	// Bytes is the estimated resident cost of the cached slices.
	Bytes int64 `json:"bytes"`
	// MaxBytes is the configured cache bound.
	MaxBytes int64 `json:"max_bytes"`
	// Hits counts requests answered from the cache.
	Hits int64 `json:"hits"`
	// Misses counts requests that found no cached slice and started a
	// fill.
	Misses int64 `json:"misses"`
	// Waits counts requests that arrived while an identical fill was
	// in flight and waited for it instead of replaying again — the
	// single-flight coalescing counter.
	Waits int64 `json:"waits"`
	// Fills counts slice rebuilds actually executed; with single
	// flight it equals Misses, never Misses+Waits.
	Fills int64 `json:"fills"`
	// Evictions counts slices dropped to respect MaxBytes.
	Evictions int64 `json:"evictions"`
}

// flight is one in-progress slice fill; concurrent requests for the
// same key block on done and share the one result.
type flight struct {
	done chan struct{}
	s    *slice
	err  error
}

// cacheEntry is one resident slice keyed by its request descriptor.
type cacheEntry struct {
	key string
	s   *slice
}

// sliceCache is a size-bounded LRU of read-model slices with
// single-flight fill: at most one goroutine rebuilds a missing slice
// while identical requests wait for that rebuild, so a thundering
// herd of cold requests costs one replay, not N. All methods are safe
// for concurrent use; cached slices are immutable and shared between
// readers.
type sliceCache struct {
	mu       sync.Mutex
	max      int64
	cur      int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight

	hits, misses, waits, fills, evictions int64
}

// newSliceCache returns a cache bounded to maxBytes of estimated
// slice cost (non-positive means an effectively unbounded cache).
func newSliceCache(maxBytes int64) *sliceCache {
	if maxBytes <= 0 {
		maxBytes = 1 << 62
	}
	return &sliceCache{
		max:      maxBytes,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		inflight: map[string]*flight{},
	}
}

// get returns the slice cached under key, or builds it with fill.
// Exactly one caller runs fill per missing key at a time; every
// concurrent caller for the same key receives the identical *slice
// (or the identical error, which is never cached).
func (c *sliceCache) get(key string, fill func() (*slice, error)) (*slice, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		s := el.Value.(*cacheEntry).s
		c.mu.Unlock()
		return s, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.waits++
		c.mu.Unlock()
		<-fl.done
		return fl.s, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.fills++
	c.mu.Unlock()

	fl.s, fl.err = fill()

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.insertLocked(key, fl.s)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.s, fl.err
}

// insertLocked adds a freshly filled slice and evicts from the LRU
// tail until the cache fits its bound again. The newest slice is
// never evicted — a slice bigger than the whole bound still serves
// the requests that are waiting on it and falls out on the next
// insert.
func (c *sliceCache) insertLocked(key string, s *slice) {
	if el, ok := c.items[key]; ok {
		// A concurrent fill for the same key can only happen after an
		// eviction raced the flight map; keep the resident one.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, s: s})
	c.cur += s.cost
	for c.cur > c.max && c.ll.Len() > 1 {
		tail := c.ll.Back()
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ent.key)
		c.cur -= ent.s.cost
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *sliceCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.cur,
		MaxBytes:  c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Waits:     c.waits,
		Fills:     c.fills,
		Evictions: c.evictions,
	}
}
