package serve

import (
	"math"
	"runtime/debug"
	"testing"
)

func TestAutoCacheBytes(t *testing.T) {
	for _, tc := range []struct {
		name  string
		limit int64
		want  int64
	}{
		{"unset sentinel", math.MaxInt64, AutoCacheDefaultBytes},
		{"zero", 0, AutoCacheDefaultBytes},
		{"negative", -1, AutoCacheDefaultBytes},
		{"quarter share", 1 << 30, 256 << 20},
		{"floor clamp", 128 << 20, AutoCacheFloorBytes},
		{"just above floor threshold", 4 * AutoCacheFloorBytes, AutoCacheFloorBytes},
		{"ceiling clamp", 64 << 30, AutoCacheCeilBytes},
		{"huge but below sentinel", noMemLimitSentinel - 1, AutoCacheCeilBytes},
	} {
		if got := AutoCacheBytes(tc.limit); got != tc.want {
			t.Errorf("%s: AutoCacheBytes(%d) = %d, want %d", tc.name, tc.limit, got, tc.want)
		}
	}
}

// TestAutoCacheBytesLiveRead exercises the call shape roamd uses:
// debug.SetMemoryLimit(-1) reads the effective limit without changing
// it, and the derived bound is always inside the documented range.
func TestAutoCacheBytesLiveRead(t *testing.T) {
	got := AutoCacheBytes(debug.SetMemoryLimit(-1))
	if got < AutoCacheFloorBytes || got > AutoCacheCeilBytes {
		t.Errorf("AutoCacheBytes(live limit) = %d, outside [%d, %d]",
			got, int64(AutoCacheFloorBytes), int64(AutoCacheCeilBytes))
	}
}
