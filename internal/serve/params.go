package serve

import (
	"fmt"
	"net/url"
	"strconv"

	"whereroam/internal/identity"
)

// QueryOpts is the decoded form of a request's query string: an
// optional inclusive day range and an optional result limit. Decoding
// is strict — every malformed parameter is a client error (HTTP 400),
// never a silently widened query.
type QueryOpts struct {
	// Lo and Hi bound the day range (inclusive window day indices);
	// meaningful only when HasRange is set.
	Lo int
	// Hi is the inclusive upper day bound.
	Hi int
	// HasRange reports whether the query carried lo/hi parameters.
	HasRange bool
	// Limit caps list responses; 0 means no limit requested.
	Limit int
}

// DecodeQuery parses a raw query string against a store's declared
// window length. It is the serving layer's untrusted-input surface
// and is fuzzed (FuzzQueryParams): it must return an error for
// malformed input, never panic, and on success the invariants
// 0 <= Lo <= Hi < days and Limit >= 0 hold.
func DecodeQuery(rawQuery string, days int) (QueryOpts, error) {
	var o QueryOpts
	vals, err := url.ParseQuery(rawQuery)
	if err != nil {
		return o, fmt.Errorf("serve: bad query string: %v", err)
	}
	loS, hiS := vals.Get("lo"), vals.Get("hi")
	if (loS == "") != (hiS == "") {
		return o, fmt.Errorf("serve: day range needs both lo and hi")
	}
	if loS != "" {
		lo, err := strconv.Atoi(loS)
		if err != nil {
			return o, fmt.Errorf("serve: bad lo %q", loS)
		}
		hi, err := strconv.Atoi(hiS)
		if err != nil {
			return o, fmt.Errorf("serve: bad hi %q", hiS)
		}
		if lo < 0 || hi < lo {
			return o, fmt.Errorf("serve: bad day range [%d, %d]", lo, hi)
		}
		if days > 0 && hi >= days {
			return o, fmt.Errorf("serve: day range [%d, %d] outside %d-day window", lo, hi, days)
		}
		o.Lo, o.Hi, o.HasRange = lo, hi, true
	}
	if limS := vals.Get("limit"); limS != "" {
		lim, err := strconv.Atoi(limS)
		if err != nil || lim < 0 {
			return o, fmt.Errorf("serve: bad limit %q", limS)
		}
		o.Limit = lim
	}
	return o, nil
}

// ParseDevice parses a device path element: the 16-hex-digit
// anonymized hash identity.DeviceID.String prints.
func ParseDevice(s string) (identity.DeviceID, error) {
	dev, err := identity.ParseDeviceID(s)
	if err != nil {
		return 0, fmt.Errorf("serve: bad device %q: %v", s, err)
	}
	return dev, nil
}
