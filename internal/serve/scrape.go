package serve

import (
	"bufio"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ScrapeHistogramQuantile fetches baseURL+"/metrics" and extracts the
// q-quantile of the named histogram series from its cumulative
// buckets — the cross-check roamload runs after a load test, so the
// client-observed p99 can be compared against what the server's own
// histogram recorded. It resolves to the bucket's upper bound, like
// the server-side quantile. The ok result is false — with a nil
// error — when the endpoint is absent (404: metrics disabled), the
// series is missing, or it has no observations; errors are transport
// or parse failures.
func ScrapeHistogramQuantile(client *http.Client, baseURL, series string, q float64) (d time.Duration, ok bool, err error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return 0, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return 0, false, fmt.Errorf("serve: scraping /metrics: status %d", resp.StatusCode)
	}

	type bucket struct {
		le  float64
		cum int64
	}
	var buckets []bucket
	prefix := series + "_bucket{"
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		le, cum, perr := parseBucketLine(line)
		if perr != nil {
			return 0, false, perr
		}
		buckets = append(buckets, bucket{le: le, cum: cum})
	}
	if err := sc.Err(); err != nil {
		return 0, false, fmt.Errorf("serve: reading /metrics: %w", err)
	}
	if len(buckets) == 0 {
		return 0, false, nil
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false, nil
	}
	rank := int64(q*float64(total) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	for _, b := range buckets {
		if b.cum >= rank {
			le := b.le
			// The +Inf bucket clamps to the largest finite bound, the
			// same convention as obs.Histogram.Quantile.
			if le > 1e18 && len(buckets) > 1 {
				le = buckets[len(buckets)-2].le
			}
			return time.Duration(le * float64(time.Second)), true, nil
		}
	}
	return 0, false, nil
}

// parseBucketLine splits one `series_bucket{...,le="X"} N` exposition
// line into its bound and cumulative count.
func parseBucketLine(line string) (le float64, cum int64, err error) {
	li := strings.Index(line, `le="`)
	if li < 0 {
		return 0, 0, fmt.Errorf("serve: bucket line without le label: %q", line)
	}
	rest := line[li+len(`le="`):]
	qi := strings.IndexByte(rest, '"')
	if qi < 0 {
		return 0, 0, fmt.Errorf("serve: malformed bucket line: %q", line)
	}
	leStr := rest[:qi]
	if leStr == "+Inf" {
		le = 1e19
	} else if le, err = strconv.ParseFloat(leStr, 64); err != nil {
		return 0, 0, fmt.Errorf("serve: bad le bound %q: %w", leStr, err)
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return 0, 0, fmt.Errorf("serve: malformed bucket line: %q", line)
	}
	cum, err = strconv.ParseInt(line[sp+1:], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("serve: bad bucket count in %q: %w", line, err)
	}
	return le, cum, nil
}
