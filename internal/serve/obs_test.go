package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"whereroam/internal/obs"
)

// metricValue extracts the value of one exposition line by its full
// series name (including any label block), or -1 when absent.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s has unparsable value %q", series, rest)
			}
			return v
		}
	}
	return -1
}

// TestServeObservability drives an instrumented server end to end and
// checks that the three layers all surface on /metrics: per-route
// request/error counters, cache gauges, and the store's plan/read
// counters populated through the handler's replay path — plus a
// slice_build span in the tracer ring.
func TestServeObservability(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(32, time.Hour, nil)
	s := newTestServer(t, Config{Workers: 2, Metrics: reg, Tracer: tracer})
	h := s.Handler()
	site := firstSite(t, s)

	if st, _ := testGet(t, h, "/v1/sites"); st != http.StatusOK {
		t.Fatalf("/v1/sites: status %d", st)
	}
	for i := 0; i < 3; i++ {
		if st, _ := testGet(t, h, "/v1/sites/"+site+"/stats"); st != http.StatusOK {
			t.Fatalf("stats: status %d", st)
		}
	}
	if st, _ := testGet(t, h, "/v1/sites/99999/stats"); st != http.StatusNotFound {
		t.Fatalf("unknown site: status %d", st)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for series, min := range map[string]float64{
		`roamd_http_requests_total{route="sites"}`:      1,
		`roamd_http_requests_total{route="site_stats"}`: 4, // 3 ok + 1 not-found
		`roamd_http_errors_total{route="site_stats"}`:   1,
		`roamd_http_latency_seconds_count`:              5,
		`roamd_cache_fills`:                             1,
		`roamd_cache_hits`:                              2, // stats repeats hit the slice cache
		`store_segments_selected_total`:                 1,
		`store_segments_read_total`:                     1,
		`store_records_read_total`:                      1,
		`store_bytes_read_total`:                        1,
	} {
		if got := metricValue(t, text, series); got < min {
			t.Errorf("%s = %v, want >= %v", series, got, min)
		}
	}
	if got := metricValue(t, text, "roamd_http_inflight"); got != 0 {
		t.Errorf("roamd_http_inflight = %v after requests drained, want 0", got)
	}

	var sawBuild bool
	for _, sp := range tracer.Recent() {
		if sp.Name == "slice_build" {
			sawBuild = true
			if len(sp.Labels) == 0 || !strings.HasPrefix(sp.Labels[0], "key=") {
				t.Errorf("slice_build span lacks key label: %+v", sp)
			}
		}
	}
	if !sawBuild {
		t.Error("tracer ring has no slice_build span")
	}
}

// TestUninstrumentedServerHasNoWrapper pins the zero-config path:
// without a registry or tracer the middleware is not installed and
// requests still serve.
func TestUninstrumentedServerHasNoWrapper(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if s.obs != nil {
		t.Fatal("obs state created without Metrics or Tracer configured")
	}
	if st, _ := testGet(t, s.Handler(), "/v1/sites"); st != http.StatusOK {
		t.Fatalf("/v1/sites: status %d", st)
	}
}

// TestStatszShape pins the deprecated /v1/statsz JSON contract: the
// endpoint stays a thin view with exactly the historical key set, so
// existing scrapers keep working while /metrics is the successor.
func TestStatszShape(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	st, body := testGet(t, s.Handler(), "/v1/statsz")
	if st != http.StatusOK {
		t.Fatalf("/v1/statsz: status %d", st)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatalf("statsz is not a JSON object: %v", err)
	}
	if want := []string{"cache", "sites"}; !sameKeys(top, want) {
		t.Fatalf("statsz top-level keys = %v, want %v", keys(top), want)
	}
	var cache map[string]json.RawMessage
	if err := json.Unmarshal(top["cache"], &cache); err != nil {
		t.Fatalf("statsz cache is not a JSON object: %v", err)
	}
	want := []string{"bytes", "entries", "evictions", "fills", "hits", "max_bytes", "misses", "waits"}
	if !sameKeys(cache, want) {
		t.Fatalf("statsz cache keys = %v, want %v", keys(cache), want)
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sameKeys(m map[string]json.RawMessage, want []string) bool {
	got := keys(m)
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestScrapeHistogramQuantile covers roamload's server-side p99
// cross-check against a live /metrics endpoint.
func TestScrapeHistogramQuantile(t *testing.T) {
	reg := obs.NewRegistry()
	hist := reg.Histogram("roamd_http_latency_seconds", "t", nil)
	for i := 0; i < 99; i++ {
		hist.Observe(0.0004) // le=0.0005 bucket
	}
	hist.Observe(0.08) // le=0.1 bucket

	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	d, ok, err := ScrapeHistogramQuantile(nil, ts.URL, "roamd_http_latency_seconds", 0.99)
	if err != nil || !ok {
		t.Fatalf("scrape failed: ok=%v err=%v", ok, err)
	}
	// Rank ceil(0.99*100)=99 lands in the le=0.0005 bucket.
	if d != 500*time.Microsecond {
		t.Errorf("p99 = %v, want 500µs", d)
	}
	d, ok, err = ScrapeHistogramQuantile(nil, ts.URL, "roamd_http_latency_seconds", 1)
	if err != nil || !ok {
		t.Fatalf("scrape failed: ok=%v err=%v", ok, err)
	}
	if d != 100*time.Millisecond {
		t.Errorf("p100 = %v, want 100ms", d)
	}

	// Missing series and missing endpoint both report ok=false, nil err.
	if _, ok, err := ScrapeHistogramQuantile(nil, ts.URL, "no_such_series", 0.99); ok || err != nil {
		t.Errorf("missing series: ok=%v err=%v, want false,nil", ok, err)
	}
	bare := httptest.NewServer(http.NewServeMux())
	defer bare.Close()
	if _, ok, err := ScrapeHistogramQuantile(nil, bare.URL, "roamd_http_latency_seconds", 0.99); ok || err != nil {
		t.Errorf("missing endpoint: ok=%v err=%v, want false,nil", ok, err)
	}
}
