package serve

import (
	"sort"

	"whereroam/internal/catalog"
	"whereroam/internal/core"
	"whereroam/internal/identity"
)

// slice is one cached read model: a replayed catalog plus everything
// the handlers derive from it — per-device summaries, classification,
// roaming labels and a device index. A slice is immutable after
// construction, so any number of request goroutines read it without
// synchronization; determinism is inherited from the replay and
// summary pipelines (bit-identical at any worker count).
type slice struct {
	cat     *catalog.Catalog
	sums    []catalog.Summary
	results []core.Result
	labels  []core.Label
	index   map[identity.DeviceID]int // device → position in sums
	cost    int64
}

// Per-element cost estimates for the cache bound. They deliberately
// overshoot the raw struct sizes to cover slice headers, map buckets
// and the strings hanging off summaries; the bound is a residency
// budget, not an accounting exercise.
const (
	costBase    = 4096
	costRecord  = 320
	costSummary = 640
)

// newSlice derives the full read model from a replayed catalog. The
// GSMA database is not part of the archive, so summaries carry no
// device-info join and classification uses the archive-derivable
// evidence only (APN keywords, APN validation, property closure) —
// the same footing the fed-serve experiments runner computes on.
func newSlice(cat *catalog.Catalog, workers int) *slice {
	sums := cat.SummariesWorkers(nil, workers)
	sl := &slice{
		cat:     cat,
		sums:    sums,
		results: core.NewClassifier().ClassifyWorkers(sums, workers),
		labels:  make([]core.Label, len(sums)),
		index:   make(map[identity.DeviceID]int, len(sums)),
	}
	labeler := core.NewLabeler(cat.Host)
	for i := range sums {
		sl.labels[i] = labeler.LabelSummary(&sums[i])
		sl.index[sums[i].Device] = i
	}
	sl.cost = costBase + int64(len(cat.Records))*costRecord + int64(len(sums))*costSummary
	return sl
}

// SiteStats is the per-operator catalog view of one slice: the
// whole-window population, usage totals and label/class mixes —
// roamd's /v1/sites/{site}/stats body and the values the fed-serve
// experiments runner reports.
type SiteStats struct {
	// Site is the mount name (the observing operator's PLMN).
	Site string `json:"site"`
	// Days is the store's declared observation-window length.
	Days int `json:"days"`
	// Devices is the number of distinct devices in the slice.
	Devices int `json:"devices"`
	// Records is the number of device-day aggregates.
	Records int `json:"records"`
	// Events, FailedEvents, Calls, CallSeconds and Bytes total the
	// slice's usage counters.
	Events int `json:"events"`
	// FailedEvents is the failed-event total.
	FailedEvents int `json:"failed_events"`
	// Calls is the voice-call total.
	Calls int `json:"calls"`
	// CallSeconds is the voice-duration total, accumulated in sorted
	// device order so the float sum is deterministic.
	CallSeconds float64 `json:"call_seconds"`
	// Bytes is the data-volume total.
	Bytes uint64 `json:"bytes"`
	// Inbound counts devices labeled I:H (foreign SIM on the home
	// network — the paper's inbound roamers).
	Inbound int `json:"inbound"`
	// InboundShare is Inbound over Devices.
	InboundShare float64 `json:"inbound_share"`
	// InboundM2MShare is the share of inbound devices classified m2m
	// or m2m-maybe (Table 1's headline observation).
	InboundM2MShare float64 `json:"inbound_m2m_share"`
	// Classes counts devices per classifier verdict.
	Classes map[string]int `json:"classes"`
	// Labels counts devices per roaming label.
	Labels map[string]int `json:"labels"`
}

// statsOf computes the SiteStats view of a slice.
func statsOf(site string, days int, sl *slice) *SiteStats {
	st := &SiteStats{
		Site:    site,
		Days:    days,
		Devices: len(sl.sums),
		Records: len(sl.cat.Records),
		Classes: map[string]int{},
		Labels:  map[string]int{},
	}
	inboundM2M := 0
	for i := range sl.sums {
		s := &sl.sums[i]
		st.Events += s.Events
		st.FailedEvents += s.FailedEvents
		st.Calls += s.Calls
		st.CallSeconds += s.CallSeconds
		st.Bytes += s.Bytes
		st.Classes[sl.results[i].Class.String()]++
		st.Labels[sl.labels[i].String()]++
		if sl.labels[i].InboundRoamer() {
			st.Inbound++
			if c := sl.results[i].Class; c == core.ClassM2M || c == core.ClassM2MMaybe {
				inboundM2M++
			}
		}
	}
	if st.Devices > 0 {
		st.InboundShare = float64(st.Inbound) / float64(st.Devices)
	}
	if st.Inbound > 0 {
		st.InboundM2MShare = float64(inboundM2M) / float64(st.Inbound)
	}
	return st
}

// ComputeStats derives the serving layer's per-site stats view
// directly from a replayed catalog — the exact computation roamd's
// stats endpoint serves from its cached slice. The fed-serve
// experiments runner calls this, which is what makes the daemon's
// responses bit-identical to the runner's reported values.
func ComputeStats(site string, days int, cat *catalog.Catalog, workers int) *SiteStats {
	return statsOf(site, days, newSlice(cat, workers))
}

// DayRow is one day's aggregate inside a DaySlice.
type DayRow struct {
	// Day is the window day index.
	Day int `json:"day"`
	// Devices is the number of distinct devices active that day.
	Devices int `json:"devices"`
	// Records is the number of device-day aggregates for the day
	// (equal to Devices in a deduplicated catalog).
	Records int `json:"records"`
	// Events, Calls and Bytes total the day's usage.
	Events int `json:"events"`
	// Calls is the day's voice-call count.
	Calls int `json:"calls"`
	// Bytes is the day's data volume.
	Bytes uint64 `json:"bytes"`
}

// DaySlice is the day-range summary roamd serves for
// /v1/sites/{site}/days?lo=&hi=: per-day aggregate rows over the
// pruned replay of exactly that range.
type DaySlice struct {
	// Site is the mount name.
	Site string `json:"site"`
	// Lo and Hi bound the slice (inclusive window day indices).
	Lo int `json:"lo"`
	// Hi is the inclusive upper day bound.
	Hi int `json:"hi"`
	// Devices counts distinct devices across the range.
	Devices int `json:"devices"`
	// Records counts device-day aggregates across the range.
	Records int `json:"records"`
	// Rows holds one aggregate per day, in day order; days with no
	// activity are omitted.
	Rows []DayRow `json:"rows"`
}

// ComputeDaySlice derives the day-range view from a catalog already
// replayed under a Days(lo, hi) filter.
func ComputeDaySlice(site string, lo, hi int, cat *catalog.Catalog) *DaySlice {
	byDay := map[int]*DayRow{}
	devices := map[identity.DeviceID]bool{}
	for i := range cat.Records {
		r := &cat.Records[i]
		row := byDay[r.Day]
		if row == nil {
			row = &DayRow{Day: r.Day}
			byDay[r.Day] = row
		}
		row.Records++
		row.Events += r.Events
		row.Calls += r.Calls
		row.Bytes += r.Bytes
		devices[r.Device] = true
	}
	ds := &DaySlice{Site: site, Lo: lo, Hi: hi, Devices: len(devices), Records: len(cat.Records)}
	days := make([]int, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	sort.Ints(days)
	for _, d := range days {
		perDay := map[identity.DeviceID]bool{}
		for i := range cat.Records {
			if cat.Records[i].Day == d {
				perDay[cat.Records[i].Device] = true
			}
		}
		row := byDay[d]
		row.Devices = len(perDay)
		ds.Rows = append(ds.Rows, *row)
	}
	return ds
}

// DeviceView is the single-device lookup body: the device's window
// summary joined with its classification and roaming label, rebuilt
// from a device-pruned replay.
type DeviceView struct {
	// Device is the 16-hex-digit anonymized device ID.
	Device string `json:"device"`
	// SIM is the device's home PLMN.
	SIM string `json:"sim"`
	// TAC is the device's GSMA type allocation code.
	TAC string `json:"tac"`
	// ActiveDays counts window days with any activity.
	ActiveDays int `json:"active_days"`
	// FirstDay and LastDay bound the device's observed activity.
	FirstDay int `json:"first_day"`
	// LastDay is the last active window day.
	LastDay int `json:"last_day"`
	// Events, FailedEvents, Calls, CallSeconds and Bytes total the
	// device's usage.
	Events int `json:"events"`
	// FailedEvents is the failed-event total.
	FailedEvents int `json:"failed_events"`
	// Calls is the voice-call total.
	Calls int `json:"calls"`
	// CallSeconds is the voice-duration total.
	CallSeconds float64 `json:"call_seconds"`
	// Bytes is the data-volume total.
	Bytes uint64 `json:"bytes"`
	// Visited lists the networks the device used, first-seen order.
	Visited []string `json:"visited"`
	// APNs lists the distinct access points, first-seen order.
	APNs []string `json:"apns"`
	// Label is the per-operator roaming label (X:Y grammar).
	Label string `json:"label"`
	// Class is the classifier verdict.
	Class string `json:"class"`
	// Evidence names the classifier rule that fired.
	Evidence string `json:"evidence"`
}

// deviceViewAt renders summary position i of a slice.
func deviceViewAt(sl *slice, i int) *DeviceView {
	s := &sl.sums[i]
	v := &DeviceView{
		Device:       s.Device.String(),
		SIM:          s.SIM.Concat(),
		TAC:          s.TAC.String(),
		ActiveDays:   s.ActiveDays,
		FirstDay:     s.FirstDay,
		LastDay:      s.LastDay,
		Events:       s.Events,
		FailedEvents: s.FailedEvents,
		Calls:        s.Calls,
		CallSeconds:  s.CallSeconds,
		Bytes:        s.Bytes,
		Visited:      make([]string, 0, len(s.Visited)),
		APNs:         make([]string, 0, len(s.APNs)),
		Label:        sl.labels[i].String(),
		Class:        sl.results[i].Class.String(),
		Evidence:     sl.results[i].Evidence,
	}
	for _, p := range s.Visited {
		v.Visited = append(v.Visited, p.Concat())
	}
	for _, a := range s.APNs {
		v.APNs = append(v.APNs, a.String())
	}
	return v
}

// ComputeDeviceView derives the device-lookup view from a catalog
// already replayed under a Devices(dev, dev) filter; ok is false when
// the device does not appear in the slice.
func ComputeDeviceView(dev identity.DeviceID, cat *catalog.Catalog, workers int) (*DeviceView, bool) {
	sl := newSlice(cat, workers)
	i, ok := sl.index[dev]
	if !ok {
		return nil, false
	}
	return deviceViewAt(sl, i), true
}

// SeriesPoint is one x/y pair of an analysis series.
type SeriesPoint struct {
	// X is the series coordinate (a day index, an active-day count).
	X float64 `json:"x"`
	// Y is the measured value at X.
	Y float64 `json:"y"`
}

// Series is one on-demand analysis over a site's whole-window slice —
// the archive-derivable counterparts of the paper's figure sweeps
// (activity distributions rather than radio-plane figures, since the
// archive persists the CDR/xDR plane only).
type Series struct {
	// Site is the mount name.
	Site string `json:"site"`
	// Name is the series identifier.
	Name string `json:"name"`
	// Points holds the series in ascending X order.
	Points []SeriesPoint `json:"points"`
}

// Analysis series names.
const (
	// SeriesActiveDays is the distribution of per-device active-day
	// counts (the §5 activity shape: most M2M devices are active on
	// many window days).
	SeriesActiveDays = "active_days"
	// SeriesDailyDevices is the number of distinct active devices per
	// window day.
	SeriesDailyDevices = "daily_devices"
	// SeriesDailyBytes is the total data volume per window day.
	SeriesDailyBytes = "daily_bytes"
)

// SeriesNames lists the analysis series roamd serves.
func SeriesNames() []string {
	return []string{SeriesActiveDays, SeriesDailyDevices, SeriesDailyBytes}
}

// ComputeSeries derives one named analysis series from a
// whole-window slice; ok is false for an unknown name.
func ComputeSeries(site, name string, cat *catalog.Catalog, workers int) (*Series, bool) {
	return seriesOf(site, name, newSlice(cat, workers))
}

// seriesOf computes a named series over a cached slice.
func seriesOf(site, name string, sl *slice) (*Series, bool) {
	se := &Series{Site: site, Name: name}
	switch name {
	case SeriesActiveDays:
		counts := map[int]int{}
		for i := range sl.sums {
			counts[sl.sums[i].ActiveDays]++
		}
		for _, x := range sortedIntKeys(counts) {
			se.Points = append(se.Points, SeriesPoint{X: float64(x), Y: float64(counts[x])})
		}
	case SeriesDailyDevices:
		perDay := map[int]map[identity.DeviceID]bool{}
		for i := range sl.cat.Records {
			r := &sl.cat.Records[i]
			if perDay[r.Day] == nil {
				perDay[r.Day] = map[identity.DeviceID]bool{}
			}
			perDay[r.Day][r.Device] = true
		}
		for _, d := range sortedMapKeys(perDay) {
			se.Points = append(se.Points, SeriesPoint{X: float64(d), Y: float64(len(perDay[d]))})
		}
	case SeriesDailyBytes:
		perDay := map[int]uint64{}
		for i := range sl.cat.Records {
			perDay[sl.cat.Records[i].Day] += sl.cat.Records[i].Bytes
		}
		for _, d := range sortedIntKeys64(perDay) {
			se.Points = append(se.Points, SeriesPoint{X: float64(d), Y: float64(perDay[d])})
		}
	default:
		return nil, false
	}
	return se, true
}

func sortedIntKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedIntKeys64(m map[int]uint64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedMapKeys(m map[int]map[identity.DeviceID]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// SiteBrief is one site's row inside a CompareView.
type SiteBrief struct {
	// Site is the mount name.
	Site string `json:"site"`
	// Devices, Records, Inbound and InboundShare summarize the site's
	// whole-window slice.
	Devices int `json:"devices"`
	// Records is the site's device-day aggregate count.
	Records int `json:"records"`
	// Inbound counts the site's inbound-roamer devices.
	Inbound int `json:"inbound"`
	// InboundShare is Inbound over Devices.
	InboundShare float64 `json:"inbound_share"`
}

// SharedPair counts the devices two mounted sites both observed —
// the serving-layer form of the paper's cross-operator observation
// that the same global fleets roam into many visited networks.
type SharedPair struct {
	// A and B are the two mount names, A < B lexically.
	A string `json:"a"`
	// B is the second mount name.
	B string `json:"b"`
	// Shared counts devices present in both sites' slices.
	Shared int `json:"shared"`
}

// CompareView is the fed-site comparison body: every mounted site's
// brief plus pairwise shared-device counts.
type CompareView struct {
	// Sites lists one brief per mounted site, in mount-name order.
	Sites []SiteBrief `json:"sites"`
	// Pairs lists pairwise shared-device counts, ordered by (A, B).
	Pairs []SharedPair `json:"pairs"`
}
