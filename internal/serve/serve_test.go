package serve

import (
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"whereroam/internal/dataset"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

var (
	archOnce sync.Once
	archDir  string
	archErr  error
)

// testArchive generates (once per test process) the seed-1 federation
// archive every serving test mounts: three site-<plmn> CDR stores at
// a small deterministic scale.
func testArchive(t *testing.T) string {
	t.Helper()
	archOnce.Do(func() {
		dir, err := os.MkdirTemp("", "whereroam-serve-test-")
		if err != nil {
			archErr = err
			return
		}
		cfg := dataset.DefaultFederationConfig()
		cfg.Seed = 1
		cfg.FleetDevices, cfg.NativePerSite, cfg.Days = 150, 80, 5
		cfg.ArchiveDir = dir
		dataset.GenerateFederation(cfg)
		archDir = dir
	})
	if archErr != nil {
		t.Fatal(archErr)
	}
	return archDir
}

func TestMain(m *testing.M) {
	flag.Parse()
	code := m.Run()
	if archDir != "" {
		os.RemoveAll(archDir)
	}
	os.Exit(code)
}

// newTestServer mounts the shared test archive.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	if _, err := s.MountSites(testArchive(t)); err != nil {
		t.Fatal(err)
	}
	return s
}

// get fetches path from the handler and returns status and body.
func testGet(t *testing.T, h http.Handler, path string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, body
}

// firstSite returns the lexically first mounted site name.
func firstSite(t *testing.T, s *Server) string {
	t.Helper()
	sites := s.Sites()
	if len(sites) == 0 {
		t.Fatal("no mounted sites")
	}
	return sites[0].Site
}

// firstDevice returns the first (lowest-hash) device of a site.
func firstDevice(t *testing.T, s *Server, site string) string {
	t.Helper()
	_, body := testGet(t, s.Handler(), "/v1/sites/"+site+"/devices?limit=1")
	start := strings.Index(string(body), `"devices":["`)
	if start < 0 {
		t.Fatalf("no devices in %s", body)
	}
	hex := string(body[start+len(`"devices":["`):])
	return hex[:16]
}

// TestHandlerGoldens pins every endpoint's JSON body at seed 1
// against committed goldens (regenerate with go test -run Golden
// -update). The bodies are produced by the same compute functions the
// fed-serve experiments runner reports, so these goldens pin the
// daemon bit-identical to the runner output.
func TestHandlerGoldens(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	h := s.Handler()
	site := firstSite(t, s)
	dev := firstDevice(t, s, site)

	cases := []struct {
		name string
		path string
	}{
		{"sites", "/v1/sites"},
		{"stats", "/v1/sites/" + site + "/stats"},
		{"days_1_3", "/v1/sites/" + site + "/days?lo=1&hi=3"},
		{"devices_limit5", "/v1/sites/" + site + "/devices?limit=5"},
		{"device_first", "/v1/sites/" + site + "/devices/" + dev},
		{"analysis_active_days", "/v1/sites/" + site + "/analysis/active_days"},
		{"analysis_daily_devices", "/v1/sites/" + site + "/analysis/daily_devices"},
		{"analysis_daily_bytes", "/v1/sites/" + site + "/analysis/daily_bytes"},
		{"compare", "/v1/compare"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := testGet(t, h, tc.path)
			if status != http.StatusOK {
				t.Fatalf("GET %s: status %d: %s", tc.path, status, body)
			}
			golden := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, body, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if string(want) != string(body) {
				t.Fatalf("GET %s diverged from golden %s:\ngot:  %s\nwant: %s",
					tc.path, golden, body, want)
			}
		})
	}
}

// TestHandlerErrors pins the error contract: unknown resources are
// 404, malformed requests 400, and every error body is JSON with an
// "error" key.
func TestHandlerErrors(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	h := s.Handler()
	site := firstSite(t, s)

	cases := []struct {
		name   string
		path   string
		status int
	}{
		{"unknown site", "/v1/sites/99999/stats", http.StatusNotFound},
		{"unknown device", "/v1/sites/" + site + "/devices/ffffffffffffffff", http.StatusNotFound},
		{"malformed device", "/v1/sites/" + site + "/devices/nothex", http.StatusBadRequest},
		{"short device", "/v1/sites/" + site + "/devices/abc", http.StatusBadRequest},
		{"inverted day range", "/v1/sites/" + site + "/days?lo=3&hi=1", http.StatusBadRequest},
		{"negative day", "/v1/sites/" + site + "/days?lo=-2&hi=1", http.StatusBadRequest},
		{"out-of-window day", "/v1/sites/" + site + "/days?lo=0&hi=99", http.StatusBadRequest},
		{"half day range", "/v1/sites/" + site + "/days?lo=1", http.StatusBadRequest},
		{"missing day range", "/v1/sites/" + site + "/days", http.StatusBadRequest},
		{"bad limit", "/v1/sites/" + site + "/devices?limit=-4", http.StatusBadRequest},
		{"unknown series", "/v1/sites/" + site + "/analysis/nope", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := testGet(t, h, tc.path)
			if status != tc.status {
				t.Fatalf("GET %s: status %d, want %d (%s)", tc.path, status, tc.status, body)
			}
			if !strings.Contains(string(body), `"error"`) {
				t.Fatalf("GET %s: error body is not JSON: %s", tc.path, body)
			}
		})
	}
}

// TestStoreGoneMidRequest pins the 503 path: a store that vanishes
// after mount turns cold requests into JSON 503s, never panics or
// empty 200s.
func TestStoreGoneMidRequest(t *testing.T) {
	// Copy one site store into a disposable dir so deleting it does
	// not disturb the shared archive.
	src := testArchive(t)
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	siteDir := filepath.Join(root, ents[0].Name())
	if err := os.MkdirAll(siteDir, 0o755); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(filepath.Join(src, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(src, ents[0].Name(), f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(siteDir, f.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s := New(Config{Workers: 1})
	names, err := s.MountSites(root)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if err := os.RemoveAll(siteDir); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		"/v1/sites/" + names[0] + "/stats",
		"/v1/sites/" + names[0] + "/days?lo=0&hi=1",
		"/v1/sites/" + names[0] + "/devices/0000000000000001",
		"/v1/compare",
	} {
		status, body := testGet(t, h, path)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("GET %s with store gone: status %d (%s)", path, status, body)
		}
		if !strings.Contains(string(body), `"error"`) {
			t.Fatalf("GET %s: 503 body is not JSON: %s", path, body)
		}
	}
}

// TestDecodeQueryInvariants covers the decoder's corners directly.
func TestDecodeQueryInvariants(t *testing.T) {
	cases := []struct {
		raw  string
		days int
		ok   bool
	}{
		{"", 5, true},
		{"lo=0&hi=4", 5, true},
		{"lo=4&hi=4&limit=3", 5, true},
		{"lo=0&hi=5", 5, false},
		{"lo=3&hi=2", 5, false},
		{"lo=-1&hi=2", 5, false},
		{"lo=1", 5, false},
		{"hi=1", 5, false},
		{"limit=-1", 5, false},
		{"limit=x", 5, false},
		{"lo=x&hi=2", 5, false},
		{"lo=0&hi=0", 0, true}, // unknown window length: range unbounded above
		{";bad=%zz", 5, false},
	}
	for _, tc := range cases {
		_, err := DecodeQuery(tc.raw, tc.days)
		if (err == nil) != tc.ok {
			t.Errorf("DecodeQuery(%q, %d): err=%v, want ok=%v", tc.raw, tc.days, err, tc.ok)
		}
	}
}

// TestLoadGenerator drives a live httptest daemon briefly and checks
// the generator's accounting: requests flow, no errors, every op in
// the default mix appears.
func TestLoadGenerator(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := RunLoad(LoadConfig{
		BaseURL:     ts.URL,
		Concurrency: 2,
		Duration:    300 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.QPS <= 0 {
		t.Fatalf("no load generated: %+v", res)
	}
	if res.Errors5xx != 0 || res.Errors4xx != 0 || res.TransportErrors != 0 {
		t.Fatalf("load saw errors: %+v", res)
	}
	for op, st := range res.Ops {
		if st.Count > 0 && (st.P50Ns <= 0 || st.P99Ns < st.P50Ns) {
			t.Fatalf("op %s has inconsistent percentiles: %+v", op, st)
		}
	}
}
