package serve

// Memory-derived cache sizing for roamd's -cache-mb auto default.
//
// The daemon's biggest resident cost is the slice cache, so when the
// operator set a GOMEMLIMIT but no explicit -cache-mb, a quarter of
// the limit is a safe, useful bound: large enough that the cache is
// the majority consumer it is designed to be, small enough that
// replay scratch, response encoding and the runtime's own overhead
// fit in the remainder without pushing the limit into GC thrash.

const (
	// autoCacheDivisor is the share of the memory limit granted to the
	// slice cache (1/4).
	autoCacheDivisor = 4
	// AutoCacheFloorBytes is the smallest auto-derived cache bound:
	// below this the cache thrashes on whole-site slices and the
	// daemon is better off evicting aggressively from a fixed floor.
	AutoCacheFloorBytes = 64 << 20
	// AutoCacheCeilBytes caps the auto-derived bound: past this point
	// a bigger slice cache stops paying (site slices repeat) and the
	// spare memory is better left to the page cache.
	AutoCacheCeilBytes = 4 << 30
	// AutoCacheDefaultBytes is the fallback when no usable memory
	// limit is set — the historical -cache-mb default of 256 MiB.
	AutoCacheDefaultBytes = 256 << 20
	// noMemLimitSentinel detects the "effectively unlimited" value
	// debug.SetMemoryLimit(-1) reports when no GOMEMLIMIT is set
	// (math.MaxInt64): any limit this large is treated as unset.
	noMemLimitSentinel = int64(1) << 60
)

// AutoCacheBytes derives a slice-cache byte bound from the process's
// memory limit (pass debug.SetMemoryLimit(-1), which reads the
// effective GOMEMLIMIT without changing it): a quarter of the limit,
// clamped to [AutoCacheFloorBytes, AutoCacheCeilBytes]. A
// non-positive or effectively-unlimited value yields
// AutoCacheDefaultBytes.
func AutoCacheBytes(memLimit int64) int64 {
	if memLimit <= 0 || memLimit >= noMemLimitSentinel {
		return AutoCacheDefaultBytes
	}
	b := memLimit / autoCacheDivisor
	if b < AutoCacheFloorBytes {
		return AutoCacheFloorBytes
	}
	if b > AutoCacheCeilBytes {
		return AutoCacheCeilBytes
	}
	return b
}
