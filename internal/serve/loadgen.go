package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Mix weights the request types of a load run. Zero weights disable
// the type; an all-zero mix defaults to DefaultMix.
type Mix struct {
	// DeviceLookup weights single-device lookups (zipfian-popular
	// devices).
	DeviceLookup int
	// DaySlice weights day-range summary requests.
	DaySlice int
	// Stats weights whole-window site-stats requests.
	Stats int
	// Analysis weights analysis-series requests.
	Analysis int
	// Compare weights cross-site comparison requests.
	Compare int
}

// DefaultMix is a read-mostly operator workload: lookups dominate,
// with a steady background of slice and analysis queries.
var DefaultMix = Mix{DeviceLookup: 6, DaySlice: 2, Stats: 1, Analysis: 1, Compare: 1}

// total sums the weights.
func (m Mix) total() int {
	return m.DeviceLookup + m.DaySlice + m.Stats + m.Analysis + m.Compare
}

// LoadConfig parameterizes a closed-loop load run against a live
// roamd.
type LoadConfig struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client is the HTTP client to use (http.DefaultClient when nil).
	Client *http.Client
	// Concurrency is the number of closed-loop workers (default 1).
	Concurrency int
	// Duration bounds the run's wall time (default 5s).
	Duration time.Duration
	// Seed seeds the per-worker request streams; runs with the same
	// seed issue the same request sequence per worker.
	Seed int64
	// Mix weights the request types (DefaultMix when all-zero).
	Mix Mix
	// ZipfS is the zipfian skew of device popularity (must exceed 1;
	// default 1.2). Popular devices stay cache-hot, the tail forces
	// pruned replays — the access pattern the LRU is sized for.
	ZipfS float64
	// MaxDevices caps the per-site device population the generator
	// targets (default 512).
	MaxDevices int
}

// OpStats is one request type's latency summary from a load run.
type OpStats struct {
	// Op names the request type.
	Op string `json:"op"`
	// Count is the number of completed requests.
	Count int64 `json:"count"`
	// P50Ns and P99Ns are latency percentiles in nanoseconds.
	P50Ns int64 `json:"p50_ns"`
	// P99Ns is the 99th-percentile latency.
	P99Ns int64 `json:"p99_ns"`
	// MeanNs is the mean latency.
	MeanNs int64 `json:"mean_ns"`
}

// LoadResult is the outcome of a load run.
type LoadResult struct {
	// Requests counts completed requests across all workers.
	Requests int64 `json:"requests"`
	// Errors5xx counts responses with status >= 500 — the smoke
	// gate's "zero 5xx" assertion reads this.
	Errors5xx int64 `json:"errors_5xx"`
	// Errors4xx counts responses with status in [400, 500) — the
	// generator only issues valid requests, so any 4xx is a bug.
	Errors4xx int64 `json:"errors_4xx"`
	// TransportErrors counts requests that failed below HTTP.
	TransportErrors int64 `json:"transport_errors"`
	// Seconds is the measured wall time.
	Seconds float64 `json:"seconds"`
	// QPS is Requests over Seconds.
	QPS float64 `json:"qps"`
	// Ops summarizes latency per request type, keyed by op name.
	Ops map[string]*OpStats `json:"ops"`
}

// target is the discovered surface of one mounted site.
type target struct {
	site    string
	days    int
	devices []string
}

// workerState accumulates one worker's measurements; merged after
// the run so the hot path takes no locks.
type workerState struct {
	lats            map[string][]int64
	requests        int64
	errors5xx       int64
	errors4xx       int64
	transportErrors int64
}

// RunLoad drives a live daemon with a closed-loop mixed workload and
// summarizes latency and throughput. Device popularity is zipfian per
// worker; every issued request is valid, so 4xx/5xx responses are
// scored as errors.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.MaxDevices <= 0 {
		cfg.MaxDevices = 512
	}
	targets, err := discover(client, cfg.BaseURL, cfg.MaxDevices)
	if err != nil {
		return nil, err
	}

	var wg sync.WaitGroup
	states := make([]*workerState, cfg.Concurrency)
	//roamvet:rngpurity-ok the load generator measures live wall-clock latency against a running server; it is outside the reproducibility boundary
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for w := 0; w < cfg.Concurrency; w++ {
		st := &workerState{lats: map[string][]int64{}}
		states[w] = st
		wg.Add(1)
		go func(worker int, st *workerState) {
			defer wg.Done()
			//roamvet:rngpurity-ok seeded per-worker rand only shapes the request mix of a live load test, which is outside the reproducibility boundary
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)*7919))
			//roamvet:rngpurity-ok Zipf skew models device popularity in a live load test, outside the reproducibility boundary
			zipfs := make([]*rand.Zipf, len(targets))
			for i, t := range targets {
				if n := len(t.devices); n > 0 {
					//roamvet:rngpurity-ok Zipf skew models device popularity in a live load test, outside the reproducibility boundary
					zipfs[i] = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(n-1))
				}
			}
			//roamvet:rngpurity-ok the wall-clock deadline bounds a live load test, outside the reproducibility boundary
			for time.Now().Before(deadline) {
				op, url := nextRequest(rng, cfg.Mix, cfg.BaseURL, targets, zipfs)
				//roamvet:rngpurity-ok t0 stamps a live request to measure real latency, outside the reproducibility boundary
				t0 := time.Now()
				status, err := get(client, url)
				lat := time.Since(t0).Nanoseconds()
				st.requests++
				switch {
				case err != nil:
					st.transportErrors++
					continue
				case status >= 500:
					st.errors5xx++
				case status >= 400:
					st.errors4xx++
				}
				st.lats[op] = append(st.lats[op], lat)
			}
		}(w, st)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := &LoadResult{Seconds: elapsed, Ops: map[string]*OpStats{}}
	merged := map[string][]int64{}
	for _, st := range states {
		res.Requests += st.requests
		res.Errors5xx += st.errors5xx
		res.Errors4xx += st.errors4xx
		res.TransportErrors += st.transportErrors
		for op, ls := range st.lats {
			merged[op] = append(merged[op], ls...)
		}
	}
	if elapsed > 0 {
		res.QPS = float64(res.Requests) / elapsed
	}
	for op, ls := range merged {
		res.Ops[op] = summarize(op, ls)
	}
	return res, nil
}

// Op names used in LoadResult.Ops and the bench artefacts.
const (
	// OpDeviceLookup is the single-device lookup request type.
	OpDeviceLookup = "device_lookup"
	// OpDaySlice is the day-range summary request type.
	OpDaySlice = "day_slice"
	// OpStatsReq is the whole-window site-stats request type.
	OpStatsReq = "stats"
	// OpAnalysis is the analysis-series request type.
	OpAnalysis = "analysis"
	// OpCompare is the cross-site comparison request type.
	OpCompare = "compare"
)

// nextRequest draws one request from the mix.
//
//roamvet:rngpurity-ok consumes the load test's seeded per-worker generator, which only shapes live request traffic outside the reproducibility boundary
func nextRequest(rng *rand.Rand, mix Mix, base string, targets []target, zipfs []*rand.Zipf) (string, string) {
	ti := rng.Intn(len(targets))
	t := targets[ti]
	pick := rng.Intn(mix.total())
	if pick -= mix.DeviceLookup; pick < 0 {
		if z := zipfs[ti]; z != nil {
			dev := t.devices[int(z.Uint64())]
			return OpDeviceLookup, fmt.Sprintf("%s/v1/sites/%s/devices/%s", base, t.site, dev)
		}
		return OpStatsReq, fmt.Sprintf("%s/v1/sites/%s/stats", base, t.site)
	}
	if pick -= mix.DaySlice; pick < 0 {
		days := t.days
		if days <= 0 {
			days = 1
		}
		lo := rng.Intn(days)
		hi := lo + rng.Intn(3)
		if hi >= days {
			hi = days - 1
		}
		return OpDaySlice, fmt.Sprintf("%s/v1/sites/%s/days?lo=%d&hi=%d", base, t.site, lo, hi)
	}
	if pick -= mix.Stats; pick < 0 {
		return OpStatsReq, fmt.Sprintf("%s/v1/sites/%s/stats", base, t.site)
	}
	if pick -= mix.Analysis; pick < 0 {
		names := SeriesNames()
		return OpAnalysis, fmt.Sprintf("%s/v1/sites/%s/analysis/%s", base, t.site, names[rng.Intn(len(names))])
	}
	return OpCompare, base + "/v1/compare"
}

// get issues one GET and drains the body.
func get(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// discover fetches the mount table and per-site device populations
// the generator targets.
func discover(client *http.Client, base string, maxDevices int) ([]target, error) {
	var sites []SiteInfo
	if err := getJSON(client, base+"/v1/sites", &sites); err != nil {
		return nil, fmt.Errorf("serve: discovering sites: %w", err)
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("serve: daemon has no mounted sites")
	}
	targets := make([]target, 0, len(sites))
	for _, si := range sites {
		var body struct {
			Devices []string `json:"devices"`
		}
		url := fmt.Sprintf("%s/v1/sites/%s/devices?limit=%d", base, si.Site, maxDevices)
		if err := getJSON(client, url, &body); err != nil {
			return nil, fmt.Errorf("serve: discovering devices of %s: %w", si.Site, err)
		}
		targets = append(targets, target{site: si.Site, days: si.Days, devices: body.Devices})
	}
	return targets, nil
}

// getJSON fetches and decodes one JSON response.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, data)
	}
	return json.Unmarshal(data, v)
}

// summarize computes one op's latency summary (nearest-rank
// percentiles over the sorted sample).
func summarize(op string, ls []int64) *OpStats {
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	st := &OpStats{Op: op, Count: int64(len(ls))}
	if len(ls) == 0 {
		return st
	}
	var sum int64
	for _, l := range ls {
		sum += l
	}
	st.MeanNs = sum / int64(len(ls))
	st.P50Ns = ls[(len(ls)-1)*50/100]
	st.P99Ns = ls[(len(ls)-1)*99/100]
	return st
}
