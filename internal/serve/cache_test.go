package serve

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheSingleFlight pins the coalescing contract: a thundering
// herd of identical cold requests runs the fill exactly once, every
// caller receives the same *slice, and the waiters are counted.
func TestCacheSingleFlight(t *testing.T) {
	c := newSliceCache(0)
	const herd = 32
	var fills atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	want := &slice{cost: 10}

	var wg sync.WaitGroup
	got := make([]*slice, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := c.get("k", func() (*slice, error) {
				if fills.Add(1) == 1 {
					close(started)
				}
				<-release // hold the fill open so the herd piles up
				return want, nil
			})
			if err != nil {
				t.Errorf("get: %v", err)
			}
			got[i] = s
		}(i)
	}
	// Wait until one fill is in flight, then let it finish. The
	// remaining goroutines either wait on the flight or hit the cache
	// after insertion — both must return the identical slice.
	<-started
	close(release)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times for one key, want exactly 1", n)
	}
	for i, s := range got {
		if s != want {
			t.Fatalf("caller %d got a different slice pointer", i)
		}
	}
	st := c.stats()
	if st.Fills != 1 || st.Misses != 1 {
		t.Fatalf("counters after herd: %+v, want Fills=1 Misses=1", st)
	}
	if st.Hits+st.Waits != herd-1 {
		t.Fatalf("counters after herd: %+v, want Hits+Waits=%d", st, herd-1)
	}
}

// TestCacheErrorNotCached pins that fill errors propagate to every
// coalesced waiter but are never cached: the next request retries the
// fill and can succeed.
func TestCacheErrorNotCached(t *testing.T) {
	c := newSliceCache(0)
	boom := errors.New("store gone")
	if _, err := c.get("k", func() (*slice, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first get: err=%v, want %v", err, boom)
	}
	if st := c.stats(); st.Entries != 0 {
		t.Fatalf("error was cached: %+v", st)
	}
	want := &slice{cost: 1}
	s, err := c.get("k", func() (*slice, error) { return want, nil })
	if err != nil || s != want {
		t.Fatalf("retry after error: s=%p err=%v", s, err)
	}
	if st := c.stats(); st.Fills != 2 || st.Hits != 0 {
		t.Fatalf("counters after retry: %+v, want Fills=2 Hits=0", st)
	}
}

// TestCacheEviction pins the LRU accounting: the tail falls out when
// the bound is exceeded, recently-used entries survive, and the
// newest entry is never evicted even when it alone exceeds the bound.
func TestCacheEviction(t *testing.T) {
	c := newSliceCache(100)
	mk := func(key string, cost int64) {
		t.Helper()
		if _, err := c.get(key, func() (*slice, error) { return &slice{cost: cost}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	mk("a", 40)
	mk("b", 40)
	// Touch a so b is the LRU tail.
	if _, err := c.get("a", func() (*slice, error) { t.Fatal("a must be cached"); return nil, nil }); err != nil {
		t.Fatal(err)
	}
	mk("c", 40) // 120 > 100: evicts b, keeps a (recently used) and c
	st := c.stats()
	if st.Entries != 2 || st.Bytes != 80 || st.Evictions != 1 {
		t.Fatalf("after eviction: %+v, want Entries=2 Bytes=80 Evictions=1", st)
	}
	if _, err := c.get("b", func() (*slice, error) { return &slice{cost: 1}, nil }); err != nil {
		t.Fatal(err)
	}
	if st := c.stats(); st.Misses != 4 {
		t.Fatalf("b survived eviction: %+v", st)
	}

	// An oversized entry still gets inserted (its waiters need it) and
	// everything older is evicted around it.
	mk("huge", 500)
	st = c.stats()
	if st.Entries != 1 || st.Bytes != 500 {
		t.Fatalf("after oversized insert: %+v, want Entries=1 Bytes=500", st)
	}
	// The next insert pushes the oversized tail out.
	mk("after", 10)
	st = c.stats()
	if st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("after oversized eviction: %+v, want Entries=1 Bytes=10", st)
	}
}

// TestServerConcurrentRequests is the serving-layer race test: many
// goroutines hammer an overlapping URL set against one server. Every
// response for a URL must be bit-identical to every other, and the
// cache must have run exactly one replay per distinct slice key
// (Fills == distinct slices), proving the LRU + single-flight layer
// never double-builds and never serves torn state. Run under -race.
func TestServerConcurrentRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	h := s.Handler()
	site := firstSite(t, s)
	dev := firstDevice(t, s, site)

	urls := []string{
		"/v1/sites/" + site + "/stats",
		"/v1/sites/" + site + "/days?lo=0&hi=2",
		"/v1/sites/" + site + "/days?lo=1&hi=3",
		"/v1/sites/" + site + "/devices?limit=10",
		"/v1/sites/" + site + "/devices/" + dev,
		"/v1/sites/" + site + "/analysis/active_days",
		"/v1/compare",
	}
	// The distinct slice keys behind those URLs: one whole-window
	// slice per mounted site (stats/devices/analysis/compare all share
	// it), two day slices, one device slice.
	wantFills := int64(len(s.Sites()) + 2 + 1)

	baseline := make(map[string]string, len(urls))
	for _, u := range urls {
		status, body := testGet(t, h, u)
		if status != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", u, status, body)
		}
		baseline[u] = string(body)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				u := urls[(w+i)%len(urls)]
				status, body := testGet(t, h, u)
				if status != http.StatusOK {
					errs <- fmt.Errorf("GET %s: status %d", u, status)
					return
				}
				if string(body) != baseline[u] {
					errs <- fmt.Errorf("GET %s: response diverged under concurrency", u)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.CacheStats()
	if st.Fills != wantFills {
		t.Fatalf("cache ran %d fills for %d distinct slices: %+v", st.Fills, wantFills, st)
	}
	if st.Evictions != 0 {
		t.Fatalf("unbounded test cache evicted: %+v", st)
	}
}
