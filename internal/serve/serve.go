// Package serve is the archive serving layer: a read-only HTTP/JSON
// query daemon over one or more segmented CDR archive stores (the
// site-<plmn> layout the federation's ArchiveDir writes).
//
// The server mounts each store at startup and builds hot read models
// ("slices") on demand: a store.Query-planned replay rebuilds the
// requested catalog slice — segment selection driven by the footer
// indexes, including per-segment device blooms for exact-device
// lookups — then summaries, classification and roaming labels are
// derived once and cached. Slices live in a size-bounded
// LRU with single-flight fill — concurrent requests for the same cold
// slice share one replay — and are immutable, so any number of
// request goroutines read them without locks.
//
// Responses are deterministic given a sealed store: replay is
// bit-identical at any worker count (the store package's contract),
// slice derivation orders every aggregation, and the view types
// marshal with sorted map keys. The same compute functions
// (ComputeStats, ComputeDaySlice, ComputeDeviceView, ComputeSeries)
// back both the HTTP handlers and the fed-serve experiments runner,
// which is what pins the daemon's responses bit-identical to the
// runner's reported values.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"whereroam/internal/catalog"
	"whereroam/internal/obs"
	"whereroam/internal/store"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the replay/summary parallelism per slice fill
	// (0 or 1 means serial; results are bit-identical either way).
	Workers int
	// MaxCacheBytes bounds the slice cache's estimated resident cost;
	// non-positive means effectively unbounded.
	MaxCacheBytes int64
	// Metrics attaches the observability registry: per-route request
	// counters and latency histograms, cache gauges, and the mounted
	// stores' planner/read counters all register against it. Nil (the
	// default) leaves the server uninstrumented — the request path is
	// byte-for-byte the unobserved code, which is what keeps the
	// serving benchmarks and response determinism untouched.
	Metrics *obs.Registry
	// Tracer records slice-build spans (labeled with cache key and
	// slice cost) and the store's compaction spans. Nil disables
	// tracing independently of Metrics.
	Tracer *obs.Tracer
}

// mount is one archived site the server answers queries for.
type mount struct {
	name string
	dir  string
	info SiteInfo
}

// SiteInfo is one mounted store's row in the /v1/sites listing.
type SiteInfo struct {
	// Site is the mount name (for ArchiveDir layouts, the observing
	// operator's PLMN).
	Site string `json:"site"`
	// Host is the store's observing operator, empty when unset.
	Host string `json:"host,omitempty"`
	// Days is the store's observation-window length.
	Days int `json:"days"`
	// Segments is the sealed-segment count at mount time.
	Segments int `json:"segments"`
	// Records is the sealed-record count at mount time.
	Records int64 `json:"records"`
}

// Server answers catalog, classification and analysis queries over
// mounted archive stores. Mount every store before calling Handler;
// the mount table is read-only afterwards, so Server is safe for
// concurrent use by the HTTP stack.
type Server struct {
	cfg    Config
	mounts map[string]*mount
	order  []string
	cache  *sliceCache
	obs    *serverObs
}

// New returns an empty server; mount stores with Mount or MountSites.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	s := &Server{
		cfg:    cfg,
		mounts: map[string]*mount{},
		cache:  newSliceCache(cfg.MaxCacheBytes),
	}
	if cfg.Metrics != nil || cfg.Tracer != nil {
		s.obs = newServerObs(s, cfg.Metrics, cfg.Tracer)
	}
	return s
}

// Mount registers the store at dir under the given site name. The
// manifest is read once to validate the store and record its window;
// segment bodies are only read when a query needs them.
func (s *Server) Mount(name, dir string) error {
	if name == "" || s.mounts[name] != nil {
		return fmt.Errorf("serve: bad or duplicate mount name %q", name)
	}
	r, err := store.Open(dir)
	if err != nil {
		return fmt.Errorf("serve: mounting %s: %w", name, err)
	}
	man := r.Manifest()
	if man.Kind != store.KindCDR {
		return fmt.Errorf("serve: %s is a %q store, not CDR", name, man.Kind)
	}
	s.mounts[name] = &mount{
		name: name,
		dir:  dir,
		info: SiteInfo{
			Site:     name,
			Host:     man.Host,
			Days:     man.Days,
			Segments: len(man.Segments),
			Records:  man.TotalRecords,
		},
	}
	s.order = append(s.order, name)
	sort.Strings(s.order)
	return nil
}

// MountSites mounts every site-<plmn> store directory under root —
// the layout FederationConfig.ArchiveDir writes — using the PLMN as
// the mount name. It returns the mounted names.
func (s *Server) MountSites(root string) ([]string, error) {
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("serve: scanning %s: %w", root, err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "site-") {
			continue
		}
		name := strings.TrimPrefix(e.Name(), "site-")
		if err := s.Mount(name, filepath.Join(root, e.Name())); err != nil {
			return names, err
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("serve: no site-* stores under %s", root)
	}
	return names, nil
}

// Sites lists the mounted sites in name order.
func (s *Server) Sites() []SiteInfo {
	out := make([]SiteInfo, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.mounts[n].info)
	}
	return out
}

// CacheStats snapshots the slice cache's counters.
func (s *Server) CacheStats() CacheStats { return s.cache.stats() }

// open re-opens a mount's store for a fill. Opening per fill keeps
// the server honest about the disk: a store deleted or corrupted
// after mount surfaces as a fill error (HTTP 503), never a stale
// success.
func (m *mount) open() (*store.Reader, error) {
	return store.Open(m.dir)
}

// wholeSlice returns the site's whole-window read model, building it
// through the cache on first use.
func (s *Server) wholeSlice(m *mount) (*slice, error) {
	return s.buildSlice("w|"+m.name, m, store.Query{})
}

// daySlice returns the read model of the site pruned to [lo, hi].
func (s *Server) daySlice(m *mount, lo, hi int) (*slice, error) {
	key := fmt.Sprintf("d|%s|%d-%d", m.name, lo, hi)
	return s.buildSlice(key, m, store.Query{}.Days(lo, hi))
}

// errorBody is the JSON error envelope every non-2xx response
// carries.
type errorBody struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
}

// writeJSON marshals v as the response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeError maps a failure to its JSON error response.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// writeFillError reports a slice-fill failure: the store vanished or
// corrupted under a live server, which is a backend availability
// problem, not a client error.
func writeFillError(w http.ResponseWriter, err error) {
	writeError(w, http.StatusServiceUnavailable, err)
}

// site resolves the {site} path element, answering 404 itself when
// the mount does not exist.
func (s *Server) site(w http.ResponseWriter, r *http.Request) *mount {
	name := r.PathValue("site")
	m := s.mounts[name]
	if m == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown site %q", name))
	}
	return m
}

// Handler returns the server's HTTP API. When Config.Metrics is set,
// every route is wrapped in the per-route middleware (request/error
// counters, in-flight gauge, latency histograms); otherwise the
// handlers mount bare.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.route("healthz", s.handleHealthz))
	mux.HandleFunc("GET /v1/statsz", s.route("statsz", s.handleStatsz))
	mux.HandleFunc("GET /v1/sites", s.route("sites", s.handleSites))
	mux.HandleFunc("GET /v1/sites/{site}/stats", s.route("site_stats", s.handleSiteStats))
	mux.HandleFunc("GET /v1/sites/{site}/days", s.route("days", s.handleDays))
	mux.HandleFunc("GET /v1/sites/{site}/devices", s.route("devices", s.handleDevices))
	mux.HandleFunc("GET /v1/sites/{site}/devices/{device}", s.route("device", s.handleDevice))
	mux.HandleFunc("GET /v1/sites/{site}/analysis/{series}", s.route("analysis", s.handleAnalysis))
	mux.HandleFunc("GET /v1/compare", s.route("compare", s.handleCompare))
	return mux
}

// handleHealthz answers liveness probes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statszBody is the /v1/statsz response.
type statszBody struct {
	// Cache snapshots the slice cache's counters.
	Cache CacheStats `json:"cache"`
	// Sites lists the mounted stores.
	Sites []SiteInfo `json:"sites"`
}

// handleStatsz reports cache counters and the mount table. It is a
// thin view over the same cache counters the /metrics gauges export
// (the sliceCache is the single source of truth for both).
//
// Deprecated: prefer GET /metrics (Prometheus text format, superset
// of these counters plus the serve/store series). statsz remains for
// existing scrapers and keeps its JSON shape pinned by test.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statszBody{Cache: s.cache.stats(), Sites: s.Sites()})
}

// handleSites lists the mounted sites.
func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Sites())
}

// handleSiteStats serves the whole-window per-operator stats view.
func (s *Server) handleSiteStats(w http.ResponseWriter, r *http.Request) {
	m := s.site(w, r)
	if m == nil {
		return
	}
	sl, err := s.wholeSlice(m)
	if err != nil {
		writeFillError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, statsOf(m.name, m.info.Days, sl))
}

// handleDays serves the day-range summary of a site.
func (s *Server) handleDays(w http.ResponseWriter, r *http.Request) {
	m := s.site(w, r)
	if m == nil {
		return
	}
	opts, err := DecodeQuery(r.URL.RawQuery, m.info.Days)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !opts.HasRange {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: days query needs lo and hi"))
		return
	}
	sl, err := s.daySlice(m, opts.Lo, opts.Hi)
	if err != nil {
		writeFillError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ComputeDaySlice(m.name, opts.Lo, opts.Hi, sl.cat))
}

// deviceListBody is the /v1/sites/{site}/devices response.
type deviceListBody struct {
	// Site is the mount name.
	Site string `json:"site"`
	// Total is the site's distinct-device count.
	Total int `json:"total"`
	// Devices lists device hashes in ascending hash order, truncated
	// to the requested limit.
	Devices []string `json:"devices"`
}

// handleDevices lists the site's device hashes.
func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	m := s.site(w, r)
	if m == nil {
		return
	}
	opts, err := DecodeQuery(r.URL.RawQuery, m.info.Days)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sl, err := s.wholeSlice(m)
	if err != nil {
		writeFillError(w, err)
		return
	}
	body := deviceListBody{Site: m.name, Total: len(sl.sums), Devices: []string{}}
	n := len(sl.sums)
	if opts.Limit > 0 && opts.Limit < n {
		n = opts.Limit
	}
	for i := 0; i < n; i++ {
		body.Devices = append(body.Devices, sl.sums[i].Device.String())
	}
	writeJSON(w, http.StatusOK, body)
}

// handleDevice serves the single-device lookup. The fill replays a
// device-pruned slice, so a cold lookup reads only the segments whose
// hash range covers the device — and, on stores with per-segment
// device blooms, only those whose filter says the device may be
// present.
func (s *Server) handleDevice(w http.ResponseWriter, r *http.Request) {
	m := s.site(w, r)
	if m == nil {
		return
	}
	dev, err := ParseDevice(r.PathValue("device"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := fmt.Sprintf("v|%s|%016x", m.name, uint64(dev))
	sl, err := s.buildSlice(key, m, store.Query{}.Device(dev))
	if err != nil {
		writeFillError(w, err)
		return
	}
	i, ok := sl.index[dev]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown device %016x", uint64(dev)))
		return
	}
	writeJSON(w, http.StatusOK, deviceViewAt(sl, i))
}

// handleAnalysis serves one named analysis series over the site's
// whole-window slice.
func (s *Server) handleAnalysis(w http.ResponseWriter, r *http.Request) {
	m := s.site(w, r)
	if m == nil {
		return
	}
	name := r.PathValue("series")
	sl, err := s.wholeSlice(m)
	if err != nil {
		writeFillError(w, err)
		return
	}
	se, ok := seriesOf(m.name, name, sl)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown series %q (have %v)", name, SeriesNames()))
		return
	}
	writeJSON(w, http.StatusOK, se)
}

// handleCompare serves the cross-site comparison over every mount.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	slices := make(map[string]*slice, len(s.order))
	for _, n := range s.order {
		sl, err := s.wholeSlice(s.mounts[n])
		if err != nil {
			writeFillError(w, err)
			return
		}
		slices[n] = sl
	}
	writeJSON(w, http.StatusOK, compareOf(s.order, slices))
}

// compareOf computes the CompareView over whole-window slices keyed
// by mount name; order fixes the site ordering.
func compareOf(order []string, slices map[string]*slice) *CompareView {
	cv := &CompareView{Sites: []SiteBrief{}, Pairs: []SharedPair{}}
	for _, n := range order {
		sl := slices[n]
		b := SiteBrief{Site: n, Devices: len(sl.sums), Records: len(sl.cat.Records)}
		for i := range sl.labels {
			if sl.labels[i].InboundRoamer() {
				b.Inbound++
			}
		}
		if b.Devices > 0 {
			b.InboundShare = float64(b.Inbound) / float64(b.Devices)
		}
		cv.Sites = append(cv.Sites, b)
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			a, b := slices[order[i]], slices[order[j]]
			shared := 0
			// Count over the smaller index.
			small, big := a, b
			if len(b.index) < len(a.index) {
				small, big = b, a
			}
			for dev := range small.index {
				if _, ok := big.index[dev]; ok {
					shared++
				}
			}
			cv.Pairs = append(cv.Pairs, SharedPair{A: order[i], B: order[j], Shared: shared})
		}
	}
	return cv
}

// ComputeCompare derives the fed-site comparison directly from
// whole-window catalogs keyed by site name — the runner-side twin of
// the /v1/compare handler.
func ComputeCompare(cats map[string]*catalog.Catalog, workers int) *CompareView {
	order := make([]string, 0, len(cats))
	for n := range cats {
		order = append(order, n)
	}
	sort.Strings(order)
	slices := make(map[string]*slice, len(cats))
	for n, c := range cats {
		slices[n] = newSlice(c, workers)
	}
	return compareOf(order, slices)
}
