package ingest

import (
	"sync/atomic"

	"whereroam/internal/probe"
)

// Ordered is a deterministic bounded fan-in: each of N producer
// shards owns a private bounded stream, and a single consumer drains
// the streams concatenated in shard order. The output sequence is
// exactly what a serial shard-by-shard run would emit — at any worker
// count — while producers run ahead of the consumer by at most depth
// records per shard. It is the streaming counterpart of collecting
// shard-local slices and concatenating them after a fan-in barrier:
// same order, no materialization.
//
// Pair it with [pipeline.Run]: size the fan-in with
// [pipeline.ShardCount] and hand each shard callback its
// [Ordered.Sink].
type Ordered[T any] struct {
	streams []*probe.Stream[T]
	closed  []atomic.Bool
}

// NewOrdered returns a fan-in over shards producer streams with the
// given per-shard depth (non-positive means [DefaultDepth]).
func NewOrdered[T any](shards, depth int) *Ordered[T] {
	if depth < 1 {
		depth = DefaultDepth
	}
	o := &Ordered[T]{
		streams: make([]*probe.Stream[T], shards),
		closed:  make([]atomic.Bool, shards),
	}
	for i := range o.streams {
		o.streams[i] = probe.NewStream[T](depth)
	}
	return o
}

// Shards returns the number of producer streams.
func (o *Ordered[T]) Shards() int { return len(o.streams) }

// Send delivers one record on shard i's stream, blocking while the
// shard's window is full (backpressure against the consumer). Each
// shard must have a single producer.
func (o *Ordered[T]) Send(i int, rec T) { o.streams[i].Send(rec) }

// Sink returns shard i's send function — a valid probe tap sink.
func (o *Ordered[T]) Sink(i int) func(T) { return o.streams[i].Send }

// CloseShard ends shard i's stream; the consumer moves on to shard
// i+1 once it has drained the remainder. Idempotent.
func (o *Ordered[T]) CloseShard(i int) {
	if o.closed[i].CompareAndSwap(false, true) {
		o.streams[i].Close()
	}
}

// CloseAll closes every shard stream that is still open. It exists
// for failure paths — releasing a blocked consumer after a producer
// panic — and must not race with in-flight Sends.
func (o *Ordered[T]) CloseAll() {
	for i := range o.streams {
		o.CloseShard(i)
	}
}

// Drain consumes every shard stream in shard order into sink,
// blocking until all streams close, and returns how many records it
// delivered. Run it on the consuming goroutine; producers block once
// their window fills, so a stalled consumer stalls the producers
// rather than growing memory.
func (o *Ordered[T]) Drain(sink func(T)) int64 {
	var n int64
	for _, s := range o.streams {
		for rec := range s.C {
			sink(rec)
			n++
		}
	}
	return n
}
