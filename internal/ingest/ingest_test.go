package ingest

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/probe"
	"whereroam/internal/radio"
	"whereroam/internal/signaling"
)

var (
	host  = mccmnc.MustParse("23410")
	nlSIM = mccmnc.MustParse("20404")
	start = time.Date(2019, 4, 5, 0, 0, 0, 0, time.UTC)
)

func ukGrid(t testing.TB) *radio.Grid {
	t.Helper()
	c, _ := mccmnc.CountryByISO("GB")
	return radio.NewGrid(c, 30, 30, radio.DefaultSpacingDeg)
}

// synthStreams builds a deterministic mixed load: per device the
// events are time-ordered, which is the per-device order contract
// every ingestion path preserves.
func synthStreams(devs, hours int) ([]radio.Event, []cdrs.Record) {
	var evs []radio.Event
	var recs []cdrs.Record
	for h := 0; h < hours; h++ {
		at := start.Add(time.Duration(h) * time.Hour)
		for d := 0; d < devs; d++ {
			dev := identity.DeviceID(d)
			res := radio.ResultOK
			if (d+h)%5 == 0 {
				res = radio.ResultFail
			}
			evs = append(evs, radio.Event{
				Device: dev, Time: at.Add(time.Duration(d) * time.Second),
				SIM: nlSIM, TAC: identity.TAC(35600000 + d%3), Sector: radio.SectorID(d % 40),
				Interface: radio.IfGb, Result: res,
			})
			if d%3 == 0 {
				recs = append(recs, cdrs.Record{
					Device: dev, Time: at.Add(time.Duration(d) * time.Second),
					SIM: nlSIM, Visited: host, Kind: cdrs.KindData,
					RAT: radio.RAT2G, Bytes: uint64(100 + d),
				})
			}
		}
	}
	return evs, recs
}

func serialCatalog(t testing.TB, evs []radio.Event, recs []cdrs.Record) *catalog.Catalog {
	t.Helper()
	b := catalog.NewBuilder(host, start, 22, ukGrid(t))
	for i := range evs {
		b.AddRadioEvent(evs[i])
	}
	for i := range recs {
		b.AddRecord(recs[i])
	}
	return b.Build()
}

// A streaming build from concurrent producers must equal a serial
// batch build record for record, for any shard count and depth —
// including depth 1, where every send exercises backpressure.
func TestCatalogIngesterMatchesSerial(t *testing.T) {
	evs, recs := synthStreams(50, 30)
	want := serialCatalog(t, evs, recs)

	for _, tc := range []struct{ shards, depth, producers int }{
		{1, 0, 1},
		{4, 0, 3},
		{8, 1, 4},
		{3, 7, 2},
	} {
		sb := catalog.NewShardedBuilder(host, start, 22, ukGrid(t), tc.shards)
		in := NewCatalogIngester(sb, tc.depth)
		// Partition by device across producers: each device's chain
		// stays with one producer, as the contract requires.
		var wg sync.WaitGroup
		for p := 0; p < tc.producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := range evs {
					if int(evs[i].Device)%tc.producers == p {
						in.OfferRadio(evs[i])
					}
				}
				for i := range recs {
					if int(recs[i].Device)%tc.producers == p {
						in.OfferRecord(recs[i])
					}
				}
			}(p)
		}
		wg.Wait()
		got := in.Build(0)
		if !reflect.DeepEqual(want.Records, got.Records) {
			t.Errorf("shards=%d depth=%d producers=%d: streaming catalog differs from serial",
				tc.shards, tc.depth, tc.producers)
		}
		nr, nc := in.Stats()
		if nr != int64(len(evs)) || nc != int64(len(recs)) {
			t.Errorf("stats = %d/%d, want %d/%d", nr, nc, len(evs), len(recs))
		}
	}
}

// Close is idempotent and Build after Close reuses the drained state.
func TestCatalogIngesterCloseIdempotent(t *testing.T) {
	sb := catalog.NewShardedBuilder(host, start, 22, nil, 2)
	in := NewCatalogIngester(sb, 4)
	in.OfferRadio(radio.Event{Device: 1, Time: start.Add(time.Hour), SIM: nlSIM, Interface: radio.IfGb})
	in.Close()
	in.Close()
	if got := in.Build(1); len(got.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(got.Records))
	}
}

// The probe.Stream bridges drain channel sources into the router.
func TestCatalogIngesterDrainStreams(t *testing.T) {
	evs, recs := synthStreams(20, 10)
	want := serialCatalog(t, evs, recs)

	sb := catalog.NewShardedBuilder(host, start, 22, ukGrid(t), 3)
	in := NewCatalogIngester(sb, 16)
	rs := probe.NewStream[radio.Event](8)
	cs := probe.NewStream[cdrs.Record](8)
	go func() {
		for i := range evs {
			rs.Send(evs[i])
		}
		rs.Close()
	}()
	if n := in.DrainRadio(rs); n != int64(len(evs)) {
		t.Fatalf("drained %d radio events, want %d", n, len(evs))
	}
	go func() {
		for i := range recs {
			cs.Send(recs[i])
		}
		cs.Close()
	}()
	if n := in.DrainRecords(cs); n != int64(len(recs)) {
		t.Fatalf("drained %d records, want %d", n, len(recs))
	}
	if got := in.Build(0); !reflect.DeepEqual(want.Records, got.Records) {
		t.Error("stream-drained catalog differs from serial")
	}
}

// ReadRecords decodes the binary CDR wire format straight into the
// router: the national-feed shape, no slice ever materialized.
func TestCatalogIngesterReadRecords(t *testing.T) {
	_, recs := synthStreams(30, 12)
	var buf bytes.Buffer
	if err := cdrs.WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	want := serialCatalog(t, nil, recs)

	sb := catalog.NewShardedBuilder(host, start, 22, nil, 4)
	in := NewCatalogIngester(sb, 8)
	n, err := in.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("ingested %d records, want %d", n, len(recs))
	}
	if got := in.Build(0); !reflect.DeepEqual(want.Records, got.Records) {
		t.Error("codec-fed catalog differs from serial")
	}
}

// Ordered must deliver the exact shard-order concatenation whatever
// order the producers run in, with depth 1 forcing full backpressure.
func TestOrderedDrainOrder(t *testing.T) {
	const shards, perShard = 7, 50
	for _, depth := range []int{1, 8} {
		o := NewOrdered[int](shards, depth)
		var wg sync.WaitGroup
		// Launch producers in reverse shard order to stress the
		// consumer's ordering, not the launch order.
		for i := shards - 1; i >= 0; i-- {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < perShard; j++ {
					o.Send(i, i*perShard+j)
				}
				o.CloseShard(i)
			}(i)
		}
		var got []int
		if n := o.Drain(func(v int) { got = append(got, v) }); n != shards*perShard {
			t.Fatalf("depth=%d: drained %d, want %d", depth, n, shards*perShard)
		}
		wg.Wait()
		for k, v := range got {
			if v != k {
				t.Fatalf("depth=%d: position %d holds %d; fan-in is not shard-ordered", depth, k, v)
			}
		}
	}
}

// CloseShard and CloseAll tolerate repeated closes, so failure paths
// can release a blocked consumer unconditionally.
func TestOrderedCloseIdempotent(t *testing.T) {
	o := NewOrdered[int](3, 2)
	o.Send(1, 42)
	o.CloseShard(1)
	o.CloseShard(1)
	o.CloseAll()
	o.CloseAll()
	var got []int
	o.Drain(func(v int) { got = append(got, v) })
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("drained %v, want [42]", got)
	}
}

// ReadTransactions streams the signaling wire format into a sink with
// no materialization — the symmetric counterpart of ReadRecords, and
// the bridge that lets archived signaling feeds flow back through the
// same consumer shape as live ones.
func TestReadTransactions(t *testing.T) {
	txs := make([]signaling.Transaction, 500)
	for i := range txs {
		txs[i] = signaling.Transaction{
			Device:    identity.DeviceID(i % 37),
			Time:      start.Add(time.Duration(i) * time.Second),
			SIM:       nlSIM,
			Visited:   host,
			Procedure: signaling.ProcUpdateLocation,
			Result:    signaling.ResultOK,
			RAT:       radio.RAT2G,
		}
	}
	var buf bytes.Buffer
	if err := signaling.WriteAll(&buf, txs); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf.Bytes()...)
	var got []signaling.Transaction
	n, err := ReadTransactions(&buf, func(tx signaling.Transaction) { got = append(got, tx) })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(txs) || !reflect.DeepEqual(txs, got) {
		t.Fatalf("decoded %d transactions; stream equality: %v", n, reflect.DeepEqual(txs, got))
	}

	// A truncated stream surfaces its decode error and the prefix.
	trunc := bytes.NewReader(full[:len(full)-7])
	got = nil
	n, err = ReadTransactions(trunc, func(tx signaling.Transaction) { got = append(got, tx) })
	if err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	if n != len(txs)-1 || len(got) != n {
		t.Fatalf("truncated stream delivered %d transactions, want %d", n, len(txs)-1)
	}
}
