// Package ingest implements bounded-memory streaming ingestion: the
// path from live record streams — probe taps, [probe.Stream] sources,
// or the binary codecs of internal/cdrs — into the sharded
// devices-catalog builder, so a catalog builds while the capture is
// still being generated and no full event slice is ever held.
//
// The core is a device-hash router ([CatalogIngester]): producers
// offer records from any goroutine, each record routes to the
// shard-local [catalog.Builder] owning its device (the
// [catalog.ShardedBuilder.ShardFor] partition), and travels over a
// bounded channel drained by one goroutine per shard. A full channel
// blocks the producer — backpressure, not buffering — so the in-flight
// memory is capped at shards × depth records no matter how large the
// capture grows.
//
// Determinism contract: the catalog builder's output depends only on
// each device's own record order (dwell chains, visited-network and
// APN first-seen orders are all per-device state; cross-device
// interleaving never reaches it). The router preserves per-producer
// send order, and every record of a given device comes from exactly
// one producer, so a streaming build is bit-identical to a batch
// build that ingests the same per-device sequences — at any worker
// count, shard count or channel depth. docs/ARCHITECTURE.md derives
// the full argument; the root determinism tests pin it.
package ingest

import (
	"io"
	"sync"
	"sync/atomic"

	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/obs"
	"whereroam/internal/probe"
	"whereroam/internal/radio"
	"whereroam/internal/signaling"
)

// DefaultDepth is the per-shard channel depth used when a caller
// passes a non-positive depth: deep enough to ride out scheduling
// jitter between producers and shard consumers, shallow enough that
// the in-flight window stays a rounding error next to the builder
// state itself.
const DefaultDepth = 1024

// item is the mixed record type a shard queue carries. Radio events
// and CDRs/xDRs share one queue per shard so that a producer's
// radio-then-records emission order for a device survives end to end;
// separate queues would let the shard consumer interleave the two
// classes nondeterministically.
type item struct {
	ev    radio.Event
	rec   cdrs.Record
	isCDR bool
}

// CatalogIngester streams records into a [catalog.ShardedBuilder]
// under a bounded memory envelope. Construct with
// [NewCatalogIngester], feed it from any number of producer
// goroutines via [CatalogIngester.OfferRadio] and
// [CatalogIngester.OfferRecord] (or the stream and codec bridges),
// then call [CatalogIngester.Build] once every producer is done.
type CatalogIngester struct {
	sb     *catalog.ShardedBuilder
	queues []chan item
	wg     sync.WaitGroup

	radioIn  atomic.Int64
	recordIn atomic.Int64
	met      atomic.Pointer[Metrics]
	closed   bool
}

// NewCatalogIngester starts one consumer goroutine per shard of sb,
// each draining a bounded queue of depth records (non-positive depth
// means [DefaultDepth]) into its shard-local builder. The caller must
// eventually call Close or Build to stop the consumers.
func NewCatalogIngester(sb *catalog.ShardedBuilder, depth int) *CatalogIngester {
	if depth < 1 {
		depth = DefaultDepth
	}
	in := &CatalogIngester{sb: sb, queues: make([]chan item, sb.Shards())}
	for i := range in.queues {
		in.queues[i] = make(chan item, depth)
		in.wg.Add(1)
		go func(i int) {
			defer in.wg.Done()
			b := sb.Builder(i)
			// Drain timing starts at the shard's first item seen after
			// metrics attach and stops when the queue closes — the
			// "per-stage shard time" of this pipeline stage.
			var sw obs.Stopwatch
			timing := false
			for it := range in.queues[i] {
				if !timing {
					if m := in.met.Load(); m != nil {
						sw = m.drainTimer()
						timing = true
					}
				}
				if it.isCDR {
					b.AddRecord(it.rec)
				} else {
					b.AddRadioEvent(it.ev)
				}
			}
			if timing {
				sw.Stop()
			}
		}(i)
	}
	return in
}

// OfferRadio routes one radio event to its device's shard, blocking
// while that shard's queue is full. Safe for concurrent producers; a
// device's events must all come from one producer for its ingestion
// order to be well defined.
func (in *CatalogIngester) OfferRadio(ev radio.Event) {
	in.radioIn.Add(1)
	q := in.queues[in.sb.ShardFor(ev.Device)]
	in.met.Load().noteRadio(len(q))
	q <- item{ev: ev}
}

// OfferRecord routes one CDR/xDR to its device's shard; same blocking
// and concurrency contract as OfferRadio.
func (in *CatalogIngester) OfferRecord(rec cdrs.Record) {
	in.recordIn.Add(1)
	q := in.queues[in.sb.ShardFor(rec.Device)]
	in.met.Load().noteRecord(len(q))
	q <- item{rec: rec, isCDR: true}
}

// DrainRadio consumes a radio-event stream into the ingester until
// the stream closes, returning how many events it forwarded. It
// blocks the calling goroutine; run one drain per stream.
func (in *CatalogIngester) DrainRadio(s *probe.Stream[radio.Event]) int64 {
	var n int64
	for ev := range s.C {
		in.OfferRadio(ev)
		n++
	}
	return n
}

// DrainRecords consumes a CDR/xDR stream into the ingester until the
// stream closes, returning how many records it forwarded.
func (in *CatalogIngester) DrainRecords(s *probe.Stream[cdrs.Record]) int64 {
	var n int64
	for rec := range s.C {
		in.OfferRecord(rec)
		n++
	}
	return n
}

// ReadRecords decodes a binary CDR/xDR wire stream (the internal/cdrs
// codec) straight into the ingester — the shape of a national feed
// arriving from a mediation system: records decode into caller-owned
// memory one at a time and route to their shard, so the stream never
// materializes. It returns the number of records ingested and the
// first decode error, if any.
func (in *CatalogIngester) ReadRecords(r io.Reader) (int, error) {
	rd := cdrs.NewReader(r)
	var rec cdrs.Record
	for {
		err := rd.Read(&rec)
		if err == io.EOF {
			return rd.Count(), nil
		}
		if err != nil {
			return rd.Count(), err
		}
		in.OfferRecord(rec)
	}
}

// ReadTransactions decodes a binary signaling wire stream (the
// internal/signaling codec) and hands each transaction to sink,
// decoding into caller-owned memory one record at a time — the
// signaling counterpart of [CatalogIngester.ReadRecords], so both of
// the repository's wire formats can feed a live consumer (or a
// persist-and-ingest fanout; see internal/store) without the stream
// ever materializing. It returns the number of transactions delivered
// and the first decode error, if any.
func ReadTransactions(r io.Reader, sink func(signaling.Transaction)) (int, error) {
	rd := signaling.NewReader(r)
	var tx signaling.Transaction
	for {
		err := rd.Read(&tx)
		if err == io.EOF {
			return rd.Count(), nil
		}
		if err != nil {
			return rd.Count(), err
		}
		sink(tx)
	}
}

// Stats returns how many radio events and CDRs/xDRs the ingester has
// accepted so far.
func (in *CatalogIngester) Stats() (radioEvents, records int64) {
	return in.radioIn.Load(), in.recordIn.Load()
}

// Close ends ingestion: it closes every shard queue and waits for the
// consumers to drain. Every producer must have finished offering
// before Close is called, and Close itself must come from a single
// goroutine (Build calls it for you). Idempotent.
func (in *CatalogIngester) Close() {
	if in.closed {
		return
	}
	in.closed = true
	for _, q := range in.queues {
		close(q)
	}
	in.wg.Wait()
}

// Build closes the ingester (if still open) and finalizes the sharded
// catalog on workers goroutines, returning records in (device, day)
// order — bit-identical to a batch build over the same per-device
// sequences.
func (in *CatalogIngester) Build(workers int) *catalog.Catalog {
	in.Close()
	return in.sb.Build(workers)
}
