package ingest

import (
	"sync"
	"testing"

	"whereroam/internal/catalog"
	"whereroam/internal/obs"
)

// TestIngesterMetrics streams a mixed load with metrics attached and
// checks the counters against the ingester's own Stats, the depth
// high-water against the channel bound, and that every shard's drain
// got timed.
func TestIngesterMetrics(t *testing.T) {
	evs, recs := synthStreams(40, 20)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)

	const shards, depth = 4, 8
	sb := catalog.NewShardedBuilder(host, start, 22, ukGrid(t), shards)
	in := NewCatalogIngester(sb, depth)
	in.Observe(m)

	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := range evs {
				if int(evs[i].Device)%3 == p {
					in.OfferRadio(evs[i])
				}
			}
			for i := range recs {
				if int(recs[i].Device)%3 == p {
					in.OfferRecord(recs[i])
				}
			}
		}(p)
	}
	wg.Wait()
	in.Build(0)

	if got := reg.Counter("ingest_radio_events_total", "").Value(); got != int64(len(evs)) {
		t.Errorf("radio counter = %d, want %d", got, len(evs))
	}
	if got := reg.Counter("ingest_records_total", "").Value(); got != int64(len(recs)) {
		t.Errorf("records counter = %d, want %d", got, len(recs))
	}
	// The sample is taken before the offered item enqueues, so the
	// mark is bounded by the channel capacity.
	hwm := reg.Gauge("ingest_channel_depth_high_water", "").Value()
	if hwm < 0 || hwm > depth {
		t.Errorf("depth high-water = %d, want within [0, %d]", hwm, depth)
	}
	drained := reg.Histogram("ingest_shard_drain_seconds", "", nil).Count()
	if drained < 1 || drained > shards {
		t.Errorf("drain histogram count = %d, want within [1, %d]", drained, shards)
	}
}

// TestIngesterUnobserved pins that the no-metrics path still works
// and NewMetrics(nil) detaches completely.
func TestIngesterUnobserved(t *testing.T) {
	if NewMetrics(nil) != nil {
		t.Fatal("NewMetrics(nil) must return the nil no-op Metrics")
	}
	evs, recs := synthStreams(10, 5)
	sb := catalog.NewShardedBuilder(host, start, 22, ukGrid(t), 2)
	in := NewCatalogIngester(sb, 4)
	in.Observe(nil)
	for i := range evs {
		in.OfferRadio(evs[i])
	}
	for i := range recs {
		in.OfferRecord(recs[i])
	}
	got := in.Build(1)
	want := serialCatalog(t, evs, recs)
	if len(got.Records) != len(want.Records) {
		t.Fatalf("unobserved ingest records = %d, want %d", len(got.Records), len(want.Records))
	}
}
