package ingest

import "whereroam/internal/obs"

// Metrics bundles the ingestion instrumentation: accepted-volume
// counters (records/sec falls out of the counter rate), the shard
// channel-depth high-water mark, and per-shard drain timing. A nil
// *Metrics is a complete no-op, so an unobserved ingester's hot path
// costs one atomic pointer load per offer and nothing else.
type Metrics struct {
	records  *obs.Counter
	radio    *obs.Counter
	depthHWM *obs.Gauge
	drain    *obs.Histogram
}

// NewMetrics registers the ingest series on reg. Returns nil (the
// no-op Metrics) when reg is nil.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		records:  reg.Counter("ingest_records_total", "CDRs/xDRs accepted by the router"),
		radio:    reg.Counter("ingest_radio_events_total", "radio events accepted by the router"),
		depthHWM: reg.Gauge("ingest_channel_depth_high_water", "deepest shard queue observed at offer time, before the offered item enqueues"),
		drain:    reg.Histogram("ingest_shard_drain_seconds", "per-shard drain wall time, first item to queue close", nil),
	}
}

// noteRecord counts one offered CDR/xDR and samples the queue depth.
func (m *Metrics) noteRecord(depth int) {
	if m == nil {
		return
	}
	m.records.Inc()
	m.depthHWM.SetMax(int64(depth))
}

// noteRadio counts one offered radio event and samples the queue
// depth.
func (m *Metrics) noteRadio(depth int) {
	if m == nil {
		return
	}
	m.radio.Inc()
	m.depthHWM.SetMax(int64(depth))
}

// drainTimer starts one shard's drain stopwatch (inert when
// detached).
func (m *Metrics) drainTimer() obs.Stopwatch {
	if m == nil {
		return obs.Stopwatch{}
	}
	return m.drain.Start()
}

// Observe attaches metrics to the ingester. Attach before producers
// start offering for full coverage: the counters only see offers made
// after the attach, and a shard's drain timer starts at its first
// observed item. Safe to call at any point regardless (the handle is
// swapped atomically); pass nil to detach.
func (in *CatalogIngester) Observe(m *Metrics) {
	in.met.Store(m)
}
