package devices

import (
	"whereroam/internal/apn"
	"whereroam/internal/mccmnc"
	"whereroam/internal/rng"
)

// APN pools per vertical. These are generator-side: they produce the
// strings that appear in xDRs; the classifier in internal/core keeps
// its own keyword table, discovered the way the paper describes
// (ranking APNs by device count), so the two lists overlap but are
// not the same object — preserving the methodological gap the paper
// works across.

// energyAPNs are the smart-meter APNs. The five UK energy players the
// paper identifies (§4.4) appear as Network Identifier patterns on
// SIMs homed at one NL operator.
var energyAPNs = []string{
	"smhp.centricaplc.com",
	"meter.rwe-npower.co.uk",
	"smart.elster-metering.com",
	"amr.generalelectric.com",
	"data.bglobal-services.co.uk",
	"smartgrid.edfenergy.com",
	"telemetry.sse-metering.co.uk",
}

// automotiveAPNs serve connected cars.
var automotiveAPNs = []string{
	"telematics.scania.com",
	"connecteddrive.bmw.de",
	"car.audi-connect.de",
	"fleet.daimler-tss.com",
	"uconnect.psa-groupe.fr",
	"link.volvocars.se",
}

// platformAPNs are global-IoT-SIM platform APNs (the
// "intelligent.m2m" style strings the paper maps to IoT SIM
// providers).
var platformAPNs = []string{
	"intelligent.m2m",
	"global.m2m-platform.net",
	"iot.carrier-hub.com",
	"sim.things-mobile.io",
}

// trackerAPNs serve logistics and asset tracking.
var trackerAPNs = []string{
	"track.logistics-m2m.com",
	"asset.fleetwatch.net",
	"gps.cargotrace.io",
}

// posAPNs serve payment terminals.
var posAPNs = []string{
	"pos.payment-gw.com",
	"terminal.cardservices.net",
}

// wearableAPNs serve SIM-enabled wearables.
var wearableAPNs = []string{
	"wearable.health-link.com",
	"watch.connectivity.io",
}

// consumerAPNs are the generic operator APNs people-devices use; they
// carry no vertical signal (the paper finds 2,178 such strings).
var consumerAPNs = []string{
	"internet", "web", "mobile.data", "payandgo.telco.co.uk",
	"contract.telco.co.uk", "wap.provider.net", "mms.provider.net",
	"broadband.mobile", "prepay.internet", "data.roaming",
}

// pickAPN draws an APN from the pool and homes it on the operator.
func pickAPN(src *rng.Source, pool []string, home mccmnc.PLMN) apn.APN {
	a := apn.MustParse(pool[src.Intn(len(pool))])
	a.Operator = home
	return a
}

// ConsumerAPN draws a generic consumer APN without an operator suffix
// (subscriber-facing form).
func ConsumerAPN(src *rng.Source) apn.APN {
	return apn.MustParse(consumerAPNs[src.Intn(len(consumerAPNs))])
}
