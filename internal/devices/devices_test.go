package devices

import (
	"math"
	"sort"
	"testing"

	"whereroam/internal/gsma"
	"whereroam/internal/mccmnc"
	"whereroam/internal/mobility"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
)

const windowDays = 22

func TestClassIsM2M(t *testing.T) {
	if ClassSmartphone.IsM2M() || ClassFeaturePhone.IsM2M() {
		t.Error("phones are not m2m")
	}
	for _, c := range []Class{ClassSmartMeter, ClassConnectedCar, ClassWearable, ClassPOSTerminal, ClassAssetTracker} {
		if !c.IsM2M() {
			t.Errorf("%v should be m2m", c)
		}
	}
}

func TestIMSIAllocator(t *testing.T) {
	a := NewIMSIAllocator()
	nl := mccmnc.MustParse("20404")
	gb := mccmnc.MustParse("23410")
	i1 := a.Next(nl, 1_000_000_000)
	i2 := a.Next(nl, 1_000_000_000)
	i3 := a.Next(gb, 5_000_000_000)
	if i1 == i2 {
		t.Fatal("allocator produced duplicate IMSI")
	}
	if i2.MSIN != i1.MSIN+1 {
		t.Error("allocation should be sequential")
	}
	if i3.PLMN != gb || i3.MSIN != 5_000_000_000 {
		t.Errorf("cross-network allocation wrong: %v", i3)
	}
	if a.Allocated(nl, 1_000_000_000) != 2 || a.Allocated(gb, 5_000_000_000) != 1 {
		t.Error("allocation counts wrong")
	}
}

func TestAssembleAndValidate(t *testing.T) {
	src := rng.New(1)
	db := gsma.Synthesize(1)
	alloc := NewIMSIAllocator()
	home := mccmnc.MustParse("20404")
	imsi := alloc.Next(home, 3_000_000_000)
	info := db.PickFromVendors(src, gsma.ArchM2MModule, "Gemalto", "Telit")
	prof := SmartMeterRoamingProfile(src, windowDays)
	mob := mobility.NewStationary(src, hostCentre(t), 50)
	d := Assemble(ClassSmartMeter, imsi, info, prof, mob, false)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.HomeISO() != "NL" {
		t.Errorf("HomeISO = %q", d.HomeISO())
	}
	// Corrupt it and confirm Validate notices.
	d.IMEI.TAC++
	if d.Validate() == nil {
		t.Error("Validate should catch TAC mismatch")
	}
}

func hostCentre(t *testing.T) (p struct{ Lat, Lon float64 }) {
	t.Helper()
	c, ok := mccmnc.CountryByISO("GB")
	if !ok {
		t.Fatal("GB missing")
	}
	p.Lat, p.Lon = c.Lat, c.Lon
	return p
}

func medianActiveDays(t *testing.T, mk func(src *rng.Source) Profile, n int) float64 {
	t.Helper()
	src := rng.New(99)
	days := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		p := mk(src.SplitN("dev", uint64(i)))
		active := 0
		dsrc := src.SplitN("act", uint64(i))
		for d := p.PresenceStart; d < p.PresenceStart+p.PresenceDays; d++ {
			if dsrc.Bool(p.DailyActiveProb) {
				active++
			}
		}
		days = append(days, float64(active))
	}
	sort.Float64s(days)
	return days[len(days)/2]
}

func TestInboundSmartphoneStaysBrief(t *testing.T) {
	// Fig 7: inbound-roaming smartphones are active ~2 days median.
	med := medianActiveDays(t, func(s *rng.Source) Profile {
		return SmartphoneProfile(s, windowDays, true)
	}, 3000)
	if med < 1 || med > 4 {
		t.Errorf("inbound smartphone median active days = %v, want ~2", med)
	}
}

func TestNativeSmartphoneStaysLong(t *testing.T) {
	med := medianActiveDays(t, func(s *rng.Source) Profile {
		return SmartphoneProfile(s, windowDays, false)
	}, 1000)
	if med < 18 {
		t.Errorf("native smartphone median active days = %v, want ~20", med)
	}
}

func TestRoamingMeterIntermittent(t *testing.T) {
	// Fig 11: ~50% of roaming SMIP meters are active <= 5 days of 26.
	med := medianActiveDays(t, func(s *rng.Source) Profile {
		return SmartMeterRoamingProfile(s, 26)
	}, 3000)
	if med < 3 || med > 7 {
		t.Errorf("roaming meter median active days = %v, want ~5", med)
	}
}

func TestNativeMeterPersistent(t *testing.T) {
	src := rng.New(5)
	host := mccmnc.MustParse("23410")
	fullPeriod := 0
	const n = 2000
	for i := 0; i < n; i++ {
		p := SmartMeterNativeProfile(src.SplitN("m", uint64(i)), 26, host)
		if p.PresenceStart == 0 && p.PresenceDays == 26 {
			fullPeriod++
		}
		if p.PresenceStart != 0 && p.PresenceStart+p.PresenceDays != 26 {
			t.Fatal("staggered meters must run to the window end")
		}
	}
	frac := float64(fullPeriod) / n
	// 88% full presence × 83% always-on activity reproduces the 73%
	// whole-period share of Fig 11a.
	if math.Abs(frac-0.88) > 0.04 {
		t.Errorf("full-presence native meters = %.3f, want ~0.88", frac)
	}
}

func TestRoamingMeterSignalsTenfold(t *testing.T) {
	// Fig 11b: roaming meters generate ~10x the signaling of native.
	src := rng.New(6)
	host := mccmnc.MustParse("23410")
	meanDaily := func(mk func(s *rng.Source) Profile) float64 {
		sum := 0.0
		const n = 2000
		for i := 0; i < n; i++ {
			p := mk(src.SplitN("x", uint64(i)))
			sum += math.Exp(p.SignalingMu + p.SignalingSigma*p.SignalingSigma/2)
		}
		return sum / n
	}
	native := meanDaily(func(s *rng.Source) Profile { return SmartMeterNativeProfile(s, 26, host) })
	roaming := meanDaily(func(s *rng.Source) Profile { return SmartMeterRoamingProfile(s, 26) })
	ratio := roaming / native
	if ratio < 6 || ratio > 15 {
		t.Errorf("roaming/native signaling ratio = %.1f, want ~10", ratio)
	}
}

func TestRoamingMeterIs2GOnly(t *testing.T) {
	src := rng.New(7)
	for i := 0; i < 500; i++ {
		p := SmartMeterRoamingProfile(src.SplitN("m", uint64(i)), 26)
		if !p.RATs().Only(radio.RAT2G) {
			t.Fatalf("roaming meter uses %v, want 2G only", p.RATs())
		}
		if p.APN.Operator != mccmnc.MustParse("20404") {
			t.Fatalf("roaming meter APN homed at %v, want Vodafone NL", p.APN.Operator)
		}
	}
}

func TestNativeMeterRATSplit(t *testing.T) {
	// §7.1: native SMIP support 2G+3G; 2/3 use only 3G.
	src := rng.New(8)
	host := mccmnc.MustParse("23410")
	only3G, both := 0, 0
	const n = 3000
	for i := 0; i < n; i++ {
		p := SmartMeterNativeProfile(src.SplitN("m", uint64(i)), 26, host)
		switch {
		case p.RATs().Only(radio.RAT3G):
			only3G++
		case p.RATs().Has(radio.RAT2G) && p.RATs().Has(radio.RAT3G):
			both++
		default:
			t.Fatalf("native meter with unexpected RATs %v", p.RATs())
		}
	}
	if f := float64(only3G) / n; math.Abs(f-2.0/3.0) > 0.04 {
		t.Errorf("3G-only native meters = %.3f, want ~0.67", f)
	}
}

func TestMeterFailureHeterogeneity(t *testing.T) {
	// §7.1: ~10% of all SMIP devices see failures; ~35% of roaming.
	src := rng.New(9)
	host := mccmnc.MustParse("23410")
	nFail := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if SmartMeterNativeProfile(src.SplitN("a", uint64(i)), 26, host).FailProb > 0 {
			nFail++
		}
	}
	if f := float64(nFail) / n; math.Abs(f-0.10) > 0.02 {
		t.Errorf("failing native meters = %.3f, want ~0.10", f)
	}
	nFail = 0
	for i := 0; i < n; i++ {
		if SmartMeterRoamingProfile(src.SplitN("b", uint64(i)), 26).FailProb > 0 {
			nFail++
		}
	}
	if f := float64(nFail) / n; math.Abs(f-0.35) > 0.03 {
		t.Errorf("failing roaming meters = %.3f, want ~0.35", f)
	}
}

func TestFeaturePhoneServiceMix(t *testing.T) {
	// Fig 9: 56.8% of feature phones produce no data; only 7.3% no
	// voice.
	src := rng.New(10)
	noData, noVoice := 0, 0
	const n = 5000
	for i := 0; i < n; i++ {
		p := FeaturePhoneProfile(src.SplitN("f", uint64(i)), windowDays, false)
		if !p.UsesData {
			noData++
		}
		if !p.UsesVoice {
			noVoice++
		}
		if !p.UsesData && !p.UsesVoice {
			t.Fatal("feature phone with no services at all")
		}
	}
	if f := float64(noData) / n; math.Abs(f-0.568) > 0.03 {
		t.Errorf("no-data feature phones = %.3f, want ~0.568", f)
	}
	if f := float64(noVoice) / n; f > 0.09 {
		t.Errorf("no-voice feature phones = %.3f, want ~0.073", f)
	}
}

func TestTrackerVoiceOnlyVariant(t *testing.T) {
	// The voice-only m2m population (no APN ever) must exist: it
	// feeds the paper's m2m-maybe ambiguity.
	src := rng.New(11)
	home := mccmnc.MustParse("21407")
	voiceOnly := 0
	const n = 2000
	for i := 0; i < n; i++ {
		p := AssetTrackerProfile(src.SplitN("t", uint64(i)), windowDays, home)
		if !p.UsesData {
			voiceOnly++
			if !p.APN.IsZero() {
				t.Fatal("voice-only tracker must have no APN")
			}
		}
	}
	if f := float64(voiceOnly) / n; math.Abs(f-0.3) > 0.04 {
		t.Errorf("voice-only trackers = %.3f, want ~0.3", f)
	}
}

func TestProfilesSignalingOrdering(t *testing.T) {
	// Fig 10-left: feature phones < m2m meters < smartphones; cars are
	// smartphone-like (Fig 12).
	src := rng.New(12)
	host := mccmnc.MustParse("23410")
	mean := func(p Profile) float64 {
		return math.Exp(p.SignalingMu + p.SignalingSigma*p.SignalingSigma/2)
	}
	feat := mean(FeaturePhoneProfile(src.Split("f"), windowDays, false))
	meter := mean(SmartMeterNativeProfile(src.Split("m"), windowDays, host))
	smart := mean(SmartphoneProfile(src.Split("s"), windowDays, false))
	car := mean(ConnectedCarProfile(src.Split("c"), windowDays))
	if !(meter < feat && feat < smart) {
		t.Errorf("ordering broken: meter=%.0f feat=%.0f smart=%.0f", meter, feat, smart)
	}
	if car < smart*0.5 {
		t.Errorf("car signaling %.0f should be smartphone-like (%.0f)", car, smart)
	}
}

func TestPlatformIoTDistributions(t *testing.T) {
	src := rng.New(13)
	const n = 12000
	const days = 11
	var (
		totalSig  float64
		under2000 int
		failOnly  int
		oneVMNO   int
		twoVMNO   int
		threePlus int
		roamers   int
		maxVMNO   int
	)
	for i := 0; i < n; i++ {
		p := NewPlatformIoT(src.SplitN("iot", uint64(i)), true, days)
		roamers++
		totalSig += float64(p.TotalSignaling)
		if p.TotalSignaling < 2000 {
			under2000++
		}
		if p.FailOnly {
			failOnly++
		}
		switch {
		case p.NumVMNOs == 1:
			oneVMNO++
		case p.NumVMNOs == 2:
			twoVMNO++
		default:
			threePlus++
		}
		if p.NumVMNOs > maxVMNO {
			maxVMNO = p.NumVMNOs
		}
		if p.NumVMNOs >= 2 && p.SwitchesTotal < p.NumVMNOs-1 {
			t.Fatalf("device with %d VMNOs but %d switches", p.NumVMNOs, p.SwitchesTotal)
		}
	}
	// §3.3 calibration points (generous tolerances; it's a simulator).
	if mean := totalSig / float64(n); mean < 150 || mean > 700 {
		t.Errorf("mean signaling = %.0f, want a few hundred", mean)
	}
	if f := float64(under2000) / float64(n); f < 0.93 {
		t.Errorf("fraction under 2000 records = %.3f, want ~0.97", f)
	}
	if f := float64(failOnly) / float64(n); math.Abs(f-0.40) > 0.03 {
		t.Errorf("fail-only devices = %.3f, want ~0.40", f)
	}
	if f := float64(oneVMNO) / float64(roamers); math.Abs(f-0.62) > 0.08 {
		t.Errorf("single-VMNO roamers = %.3f, want ~0.63", f)
	}
	if f := float64(twoVMNO) / float64(roamers); f < 0.18 || f > 0.35 {
		t.Errorf("two-VMNO roamers = %.3f, want ~0.26", f)
	}
	if maxVMNO < 8 || maxVMNO > 19 {
		t.Errorf("max attempted VMNOs = %d, want up to 19", maxVMNO)
	}
}

func TestPlatformNativeSingleVMNO(t *testing.T) {
	src := rng.New(14)
	for i := 0; i < 200; i++ {
		p := NewPlatformIoT(src.SplitN("n", uint64(i)), false, 11)
		if p.NumVMNOs != 1 || p.SwitchesTotal != 0 {
			t.Fatalf("native device with %d VMNOs / %d switches", p.NumVMNOs, p.SwitchesTotal)
		}
	}
}

func TestProfileRATs(t *testing.T) {
	p := Profile{UsesData: true, DataRAT: radio.RAT3G, DataRAT2: radio.RAT2G, UsesVoice: true, VoiceRAT: radio.RAT2G}
	s := p.RATs()
	if !s.Has(radio.RAT2G) || !s.Has(radio.RAT3G) || s.Has(radio.RAT4G) {
		t.Errorf("RATs = %v", s)
	}
}
