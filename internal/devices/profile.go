package devices

import (
	"math"

	"whereroam/internal/apn"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
)

// Profile is the sampled per-device behaviour: when the device is
// present on the observed network, how much it signals, and what
// services it uses. Profiles are drawn once per device; day-to-day
// variation comes from the activity sampler in the dataset generator.
//
// Calibration targets are the paper's reported distributions; the
// comments on each constructor name the figure they serve.
type Profile struct {
	// Presence window within the observation period, in day indices
	// [PresenceStart, PresenceStart+PresenceDays).
	PresenceStart int
	PresenceDays  int
	// DailyActiveProb is the chance the device produces any traffic
	// on a day inside its window (roaming meters rotate across host
	// networks, so theirs is low — §7.1).
	DailyActiveProb float64
	// Diurnal scales activity by human waking hours.
	Diurnal bool

	// SignalingMu/Sigma parameterize the lognormal daily count of
	// radio resource management events.
	SignalingMu    float64
	SignalingSigma float64
	// FailProb is the per-procedure failure probability (devices are
	// heterogeneous: most never fail, a minority fails chronically).
	FailProb float64
	// SwitchVMNOPerDay is the expected visited-network switches per
	// day for inbound roamers (0 for native devices).
	SwitchVMNOPerDay float64

	// Service usage.
	UsesData  bool
	UsesVoice bool
	// DataRAT is the technology used for data; DataRAT2 is a
	// secondary technology for devices that split their data activity
	// (the 1/3 of native SMIP meters on both 2G and 3G — §7.1).
	DataRAT  radio.RAT
	DataRAT2 radio.RAT
	VoiceRAT radio.RAT
	// DataSessionsPerDay is the mean number of data sessions on an
	// active day (Poisson).
	DataSessionsPerDay float64
	// SessionBytesMu/Sigma parameterize lognormal bytes per session.
	SessionBytesMu    float64
	SessionBytesSigma float64
	// CallsPerDay is the mean voice events per active day (Poisson).
	CallsPerDay  float64
	CallDurMeanS float64
	// APN is the access point the device presents on data attach;
	// zero for devices that never use data (the paper's 21%-no-APN
	// population).
	APN apn.APN
}

// RATs returns the set of technologies the profile actually uses.
func (p Profile) RATs() radio.RATSet {
	var s radio.RATSet
	if p.UsesData {
		s = s.With(p.DataRAT)
		if p.DataRAT2 != radio.RATUnknown {
			s = s.With(p.DataRAT2)
		}
	}
	if p.UsesVoice {
		s = s.With(p.VoiceRAT)
	}
	return s
}

func ln(v float64) float64 { return math.Log(v) }

// stayWindow draws a presence window of roughly stayMedian days
// (lognormal) placed uniformly in the period.
func stayWindow(src *rng.Source, days int, stayMedian, sigma float64) (start, n int) {
	stay := int(math.Round(src.LogNormal(ln(stayMedian), sigma)))
	if stay < 1 {
		stay = 1
	}
	if stay > days {
		stay = days
	}
	start = 0
	if days > stay {
		start = src.Intn(days - stay + 1)
	}
	return start, stay
}

// SmartphoneProfile draws a person's smartphone.
//
// Calibration: Fig 7 (inbound smartphones median ~2 active days —
// tourists), Fig 9 (3G/4G usage), Fig 10 (high signaling, high data;
// inbound data suppressed by bill shock — §6.2).
func SmartphoneProfile(src *rng.Source, days int, inbound bool) Profile {
	p := Profile{
		Diurnal:         true,
		DailyActiveProb: 0.92,
		SignalingMu:     ln(150),
		SignalingSigma:  0.7,
		FailProb:        0.005,
		UsesData:        true,
		UsesVoice:       true,
		VoiceRAT:        radio.RAT3G,
		CallsPerDay:     3,
		CallDurMeanS:    110,
		APN:             ConsumerAPN(src),
	}
	if src.Bool(0.85) {
		p.DataRAT = radio.RAT4G
		p.DataRAT2 = radio.RAT3G
	} else {
		p.DataRAT = radio.RAT3G
	}
	p.PresenceStart, p.PresenceDays = 0, days
	p.DataSessionsPerDay = 20
	p.SessionBytesMu, p.SessionBytesSigma = ln(2_000_000), 1.2 // ~40 MB/day
	if inbound {
		p.PresenceStart, p.PresenceDays = stayWindow(src, days, 2, 0.9)
		p.DataSessionsPerDay = 10
		p.SessionBytesMu = ln(300_000) // ~3 MB/day: roaming data fear
		p.CallsPerDay = 1
		p.SwitchVMNOPerDay = 0.02
	}
	return p
}

// FeaturePhoneProfile draws a feature phone.
//
// Calibration: Fig 9 (50.9% 2G-only; 56.8% no data; only 7.3% no
// voice), Fig 10 (lowest signaling of all classes).
func FeaturePhoneProfile(src *rng.Source, days int, inbound bool) Profile {
	p := Profile{
		Diurnal:         true,
		DailyActiveProb: 0.9,
		SignalingMu:     ln(25),
		SignalingSigma:  0.6,
		FailProb:        0.005,
		UsesVoice:       !src.Bool(0.073),
		VoiceRAT:        radio.RAT2G,
		CallsPerDay:     4,
		CallDurMeanS:    90,
	}
	only2G := src.Bool(0.509)
	if !only2G {
		p.VoiceRAT = radio.RAT3G
	}
	if p.UsesVoice {
		// Condition the no-data probability on voice so the marginal
		// stays at the paper's 56.8% despite voiceless phones being
		// forced onto data (a phone with no services never shows up).
		p.UsesData = !src.Bool(0.568 / (1 - 0.073))
	} else {
		p.UsesData = true
	}
	if p.UsesData {
		if only2G {
			p.DataRAT = radio.RAT2G
		} else {
			p.DataRAT = radio.RAT3G
		}
		p.DataSessionsPerDay = 2
		p.SessionBytesMu, p.SessionBytesSigma = ln(50_000), 1.0
		p.APN = ConsumerAPN(src)
	}
	p.PresenceStart, p.PresenceDays = 0, days
	if inbound {
		p.PresenceStart, p.PresenceDays = stayWindow(src, days, 3, 0.9)
		p.SessionBytesMu = ln(20_000)
	}
	return p
}

// SMIPNativeAPN is the dedicated APN of the host MNO's own smart
// metering deployment (§4.4: dedicated IMSI range and GGSN).
var SMIPNativeAPN = apn.MustParse("smip.dcc-network.co.uk")

// SmartMeterNativeProfile draws a SMIP-native meter.
//
// Calibration: Fig 11 — long-lived attachment (73% active the whole
// period, 83% for the day-1 cohort), low signaling, 2/3 on 3G only
// and 1/3 on both 2G and 3G; ~10% of devices see a failure over the
// window.
func SmartMeterNativeProfile(src *rng.Source, days int, host mccmnc.PLMN) Profile {
	p := Profile{
		DailyActiveProb:    0.985,
		SignalingMu:        ln(6),
		SignalingSigma:     0.4,
		UsesData:           true,
		DataSessionsPerDay: 4,
		SessionBytesMu:     ln(8_000),
		SessionBytesSigma:  0.6,
		APN:                SMIPNativeAPN,
	}
	p.APN.Operator = host
	if src.Bool(2.0 / 3.0) {
		p.DataRAT = radio.RAT3G
	} else {
		p.DataRAT = radio.RAT3G
		p.DataRAT2 = radio.RAT2G
	}
	// Ongoing deployment: most meters are installed before the
	// window, the rest come online during it (§7.1). Within the
	// day-one cohort, 83% hold their attachment the whole period and
	// the rest lapse on some days — reproducing Fig 11a's 73% overall
	// / 83% day-one-cohort split.
	if src.Bool(0.88) {
		p.PresenceStart, p.PresenceDays = 0, days
	} else {
		p.PresenceStart = src.Intn(days)
		p.PresenceDays = days - p.PresenceStart
	}
	if src.Bool(0.83) {
		p.DailyActiveProb = 0.9995
	} else {
		p.DailyActiveProb = 0.93
	}
	// Failure heterogeneity: ~10% of devices fail occasionally.
	if src.Bool(0.10) {
		p.FailProb = 0.05
	}
	return p
}

// energyHomeNL is the single NL operator provisioning every roaming
// smart meter the paper finds (§4.4).
var energyHomeNL = mccmnc.MustParse("20404")

// SmartMeterRoamingProfile draws a roaming smart meter on a global
// IoT SIM.
//
// Calibration: Fig 11 — ~50% active ≤5 days of 26 (they rotate over
// host networks), ~10× the native signaling rate, 35% of devices with
// failures, 2G only.
func SmartMeterRoamingProfile(src *rng.Source, days int) Profile {
	p := Profile{
		PresenceStart:      0,
		PresenceDays:       days,
		DailyActiveProb:    0.21,
		SignalingMu:        ln(60),
		SignalingSigma:     0.6,
		SwitchVMNOPerDay:   0.5,
		UsesData:           true,
		DataRAT:            radio.RAT2G,
		DataSessionsPerDay: 2,
		SessionBytesMu:     ln(4_000),
		SessionBytesSigma:  0.6,
		APN:                pickAPN(src, energyAPNs, energyHomeNL),
	}
	if src.Bool(0.35) {
		p.FailProb = 0.12
	}
	return p
}

// NBIoTMeterProfile draws a roaming smart meter migrated to NB-IoT —
// the §8 future: LPWA radio with power-save sleep cycles, so the
// device attaches rarely and holds its registration instead of
// rotating across host networks, and its RAT alone identifies it as a
// "thing" to the visited operator.
func NBIoTMeterProfile(src *rng.Source, days int) Profile {
	p := Profile{
		PresenceStart:      0,
		PresenceDays:       days,
		DailyActiveProb:    0.95,
		SignalingMu:        ln(2.5),
		SignalingSigma:     0.4,
		SwitchVMNOPerDay:   0,
		UsesData:           true,
		DataRAT:            radio.RATNB,
		DataSessionsPerDay: 2,
		SessionBytesMu:     ln(1_200),
		SessionBytesSigma:  0.5,
		APN:                pickAPN(src, energyAPNs, energyHomeNL),
	}
	if src.Bool(0.05) {
		p.FailProb = 0.03
	}
	return p
}

// ConnectedCarProfile draws a connected car on a global IoT SIM
// (homed in DE, matching §3.2's high-mobility HMNO).
//
// Calibration: Fig 12 — smartphone-like signaling and data, high
// mobility; multi-RAT.
func ConnectedCarProfile(src *rng.Source, days int) Profile {
	p := Profile{
		PresenceStart:      0,
		PresenceDays:       days,
		DailyActiveProb:    0.7,
		Diurnal:            true,
		SignalingMu:        ln(180),
		SignalingSigma:     0.8,
		FailProb:           0.01,
		SwitchVMNOPerDay:   0.15,
		UsesData:           true,
		DataSessionsPerDay: 30,
		SessionBytesMu:     ln(80_000),
		SessionBytesSigma:  1.0,
		APN:                pickAPN(src, automotiveAPNs, mccmnc.MustParse("26201")),
	}
	if src.Bool(0.6) {
		p.DataRAT = radio.RAT4G
		p.DataRAT2 = radio.RAT3G
	} else {
		p.DataRAT = radio.RAT3G
	}
	// A minority carries eCall-style voice.
	if src.Bool(0.2) {
		p.UsesVoice = true
		p.VoiceRAT = radio.RAT2G
		p.CallsPerDay = 0.05
		p.CallDurMeanS = 60
	}
	return p
}

// WearableProfile draws a SIM-enabled wearable (inbound roaming via a
// platform SIM or native). A quarter are SMS-only companion watches:
// voice-domain traffic only, no APN ever.
func WearableProfile(src *rng.Source, days int, home mccmnc.PLMN) Profile {
	p := Profile{
		PresenceStart:   0,
		PresenceDays:    days,
		DailyActiveProb: 0.6,
		Diurnal:         true,
		SignalingMu:     ln(40),
		SignalingSigma:  0.7,
		FailProb:        0.01,
	}
	if src.Bool(0.25) {
		p.UsesVoice = true
		p.VoiceRAT = radio.RAT2G
		p.CallsPerDay = 3
		p.CallDurMeanS = 10
		return p
	}
	p.UsesData = true
	p.DataRAT = radio.RAT4G
	p.DataSessionsPerDay = 8
	p.SessionBytesMu, p.SessionBytesSigma = ln(60_000), 0.9
	p.APN = pickAPN(src, wearableAPNs, home)
	if src.Bool(0.3) {
		p.UsesVoice = true
		p.VoiceRAT = radio.RAT3G
		p.CallsPerDay = 0.3
		p.CallDurMeanS = 70
	}
	return p
}

// POSTerminalProfile draws a payment terminal: stationary, bursty
// small transactions, reliability-sensitive (§2.2 mentions payment
// services selecting alternative networks on failure). A meaningful
// minority are legacy circuit-switched dial terminals: they produce
// voice-domain records and never present an APN — part of the
// paper's 24.5% no-data m2m population.
func POSTerminalProfile(src *rng.Source, days int, home mccmnc.PLMN) Profile {
	p := Profile{
		PresenceStart:    0,
		PresenceDays:     days,
		DailyActiveProb:  0.9,
		Diurnal:          true,
		SignalingMu:      ln(30),
		SignalingSigma:   0.5,
		FailProb:         0.005,
		SwitchVMNOPerDay: 0.05,
	}
	if src.Bool(0.30) {
		// Legacy CSD dial-up terminal.
		p.UsesVoice = true
		p.VoiceRAT = radio.RAT2G
		p.CallsPerDay = 12
		p.CallDurMeanS = 15
		return p
	}
	p.UsesData = true
	p.DataRAT = radio.RAT2G
	p.DataSessionsPerDay = 15
	p.SessionBytesMu, p.SessionBytesSigma = ln(3_000), 0.5
	p.APN = pickAPN(src, posAPNs, home)
	return p
}

// AssetTrackerProfile draws a logistics tracker: mobile, periodic
// position reports, voice-only variants exist (the paper's 24.5%
// no-data m2m population includes security/elevator-style devices —
// modelled here as SMS-over-CS reporters with no APN).
func AssetTrackerProfile(src *rng.Source, days int, home mccmnc.PLMN) Profile {
	p := Profile{
		PresenceStart:    0,
		PresenceDays:     days,
		DailyActiveProb:  0.75,
		SignalingMu:      ln(80),
		SignalingSigma:   0.8,
		FailProb:         0.02,
		SwitchVMNOPerDay: 0.3,
		DataRAT:          radio.RAT2G,
	}
	if src.Bool(0.7) {
		p.UsesData = true
		p.DataSessionsPerDay = 6
		p.SessionBytesMu, p.SessionBytesSigma = ln(2_000), 0.6
		p.APN = pickAPN(src, trackerAPNs, home)
	} else {
		// Voice-only (SMS-style CS reporting): no APN ever appears,
		// feeding the paper's m2m-maybe ambiguity.
		p.UsesVoice = true
		p.VoiceRAT = radio.RAT2G
		p.CallsPerDay = 2
		p.CallDurMeanS = 8
	}
	return p
}

// PlatformProfile is the behaviour of a device on the §3 M2M platform
// (signaling-plane only: the platform dataset has no data plane).
type PlatformProfile struct {
	// Roaming marks devices operating outside the SIM's home country.
	Roaming bool
	// FailOnly marks the 40% of devices whose procedures never
	// succeed against 4G (§3.3).
	FailOnly bool
	// TotalSignaling is the device's transaction count across the
	// whole 11-day window (heavy-tailed: mean ≈267, p97 < 2000,
	// max ≈130k at full scale).
	TotalSignaling int
	// NumVMNOs is how many distinct visited networks the device uses
	// (65% one, >25% two, 5% three+; failed-only devices attempt up
	// to 19 — §3.3).
	NumVMNOs int
	// SwitchesTotal is the number of inter-VMNO switches across the
	// window (50% ≤2 total; 20% ≥1/day; ~3% in the hundreds).
	SwitchesTotal int
}

// NewPlatformIoT draws a platform device's behaviour. days is the
// observation window (11 in the paper).
func NewPlatformIoT(src *rng.Source, roaming bool, days int) PlatformProfile {
	p := PlatformProfile{
		Roaming:  roaming,
		FailOnly: src.Bool(0.40),
	}
	// Signaling volume: lognormal body with a Pareto tail splice.
	// Roaming devices generate ~10x the native median (§3.2).
	mu := ln(15.0)
	if roaming {
		mu = ln(150.0)
	}
	v := src.LogNormal(mu, 1.3)
	if roaming && src.Bool(0.005) {
		// Flooders: the roaming coverage-hunters behind the paper's
		// 130k-message tail. Native devices sit on one stable network
		// and have no reason to storm the signaling plane.
		v = src.Pareto(2000, 0.9)
	}
	p.TotalSignaling = 1 + int(v)
	if max := 140000; p.TotalSignaling > max {
		p.TotalSignaling = max
	}

	if !roaming {
		p.NumVMNOs = 1
		return p
	}
	switch {
	case p.FailOnly && src.Bool(0.10):
		// Desperate coverage hunters: many attempted VMNOs.
		p.NumVMNOs = 4 + src.Intn(16) // up to 19
	default:
		w := []float64{0.65, 0.27, 0.05, 0.02, 0.01}
		p.NumVMNOs = 1 + rng.NewWeighted(src, w).DrawFrom(src)
	}
	if p.NumVMNOs >= 2 {
		switch {
		case src.Bool(0.50):
			p.SwitchesTotal = 1 + src.Intn(2) // <= 2 switches
		case src.Bool(0.6):
			p.SwitchesTotal = 3 + src.Intn(8) // occasional
		case src.Bool(0.85):
			p.SwitchesTotal = days + src.Intn(8*days) // >= 1/day
		default:
			// Pathological flappers: 100..3000 switches.
			p.SwitchesTotal = 100 + int(src.Pareto(100, 1.2))
			if p.SwitchesTotal > 3000 {
				p.SwitchesTotal = 3000
			}
		}
		if p.SwitchesTotal < p.NumVMNOs-1 {
			p.SwitchesTotal = p.NumVMNOs - 1
		}
	}
	return p
}
