// Package devices defines the generator-side ground truth of the
// simulated populations: device classes (the IoT verticals and phone
// types the paper contrasts), per-device behaviour profiles, and the
// assembly of concrete devices (IMSI, IMEI, catalog identity).
//
// The package encodes *behaviour*, not *labels*: a smart meter here is
// a thing that reports a few kilobytes nightly over 2G with an energy
// APN, and whether the classifier in internal/core recognizes it as
// m2m is exactly the question the paper's §4.3/§7 evaluate.
package devices

import (
	"fmt"
	"strconv"

	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/mobility"
)

// Class is the ground-truth vertical of a simulated device.
type Class uint8

// Ground-truth classes. The first two are the person-device classes;
// the rest are IoT verticals (the paper's m2m umbrella).
const (
	ClassSmartphone Class = iota
	ClassFeaturePhone
	ClassSmartMeter
	ClassConnectedCar
	ClassWearable
	ClassPOSTerminal
	ClassAssetTracker
	classCount
)

var classNames = [...]string{
	"smartphone", "featurephone", "smartmeter", "connectedcar",
	"wearable", "posterminal", "assettracker",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class(" + strconv.Itoa(int(c)) + ")"
}

// IsM2M reports whether the class belongs to the paper's m2m umbrella
// (everything that is not a personal phone).
func (c Class) IsM2M() bool {
	return c != ClassSmartphone && c != ClassFeaturePhone
}

// Device is one concrete simulated device.
type Device struct {
	ID       identity.DeviceID
	IMSI     identity.IMSI
	IMEI     identity.IMEI
	Info     gsma.DeviceInfo // catalog identity resolved via TAC
	Class    Class
	Profile  Profile
	Mobility mobility.Model
	// Home is the operator that provisioned the SIM.
	Home mccmnc.PLMN
	// MVNO marks SIMs of a virtual operator riding on the host MNO
	// (the V:H roaming label population).
	MVNO bool
}

// HomeISO returns the ISO country of the SIM's home operator.
func (d *Device) HomeISO() string { return mccmnc.ISOByMCC(d.Home.MCC) }

// IMSIAllocator hands out sequential MSINs per (home network, base)
// block so IMSIs are unique and dedicated ranges (the SMIP block) are
// contiguous.
type IMSIAllocator struct {
	next map[imsiBlock]uint64
}

type imsiBlock struct {
	plmn mccmnc.PLMN
	base uint64
}

// NewIMSIAllocator returns an empty allocator.
func NewIMSIAllocator() *IMSIAllocator {
	return &IMSIAllocator{next: map[imsiBlock]uint64{}}
}

// Next allocates the next IMSI in the PLMN's block starting at base.
// Distinct populations on one PLMN should use disjoint, well-spaced
// bases; the allocator does not police overlap.
func (a *IMSIAllocator) Next(plmn mccmnc.PLMN, base uint64) identity.IMSI {
	k := imsiBlock{plmn, base}
	n := a.next[k]
	a.next[k] = n + 1
	return identity.IMSI{PLMN: plmn, MSIN: base + n}
}

// Allocated returns how many IMSIs the block has handed out.
func (a *IMSIAllocator) Allocated(plmn mccmnc.PLMN, base uint64) uint64 {
	return a.next[imsiBlock{plmn, base}]
}

// Assemble builds a Device from its parts, deriving the hashed ID and
// a plausible IMEI serial from the IMSI so that identity is stable.
func Assemble(class Class, imsi identity.IMSI, info gsma.DeviceInfo, prof Profile, mob mobility.Model, mvno bool) Device {
	return Device{
		ID:       identity.HashDevice(imsi),
		IMSI:     imsi,
		IMEI:     identity.IMEI{TAC: info.TAC, Serial: uint32(imsi.MSIN % 1_000_000)},
		Info:     info,
		Class:    class,
		Profile:  prof,
		Mobility: mob,
		Home:     imsi.PLMN,
		MVNO:     mvno,
	}
}

// Validate performs generator-side sanity checks; it is used by tests
// and returns an error describing the first inconsistency.
func (d *Device) Validate() error {
	if d.ID != identity.HashDevice(d.IMSI) {
		return fmt.Errorf("devices: %v: ID does not match IMSI hash", d.ID)
	}
	if d.IMEI.TAC != d.Info.TAC {
		return fmt.Errorf("devices: %v: IMEI TAC %v != catalog TAC %v", d.ID, d.IMEI.TAC, d.Info.TAC)
	}
	if d.Profile.PresenceDays <= 0 {
		return fmt.Errorf("devices: %v: non-positive presence window", d.ID)
	}
	if !d.Profile.UsesData && !d.Profile.UsesVoice {
		return fmt.Errorf("devices: %v: device uses neither data nor voice", d.ID)
	}
	if d.Profile.UsesData && d.Profile.DataSessionsPerDay <= 0 {
		return fmt.Errorf("devices: %v: data user with no sessions", d.ID)
	}
	return nil
}
