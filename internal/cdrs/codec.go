package cdrs

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"whereroam/internal/apn"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

// Binary wire format: a 6-byte header ("WRDR", version, 0) followed by
// length-prefixed records — a fixed 40-byte body plus the APN string.
// Records are variable length because APNs are; the per-record length
// prefix lets a reader resynchronize after a corrupt record by
// skipping it.
const (
	magic       = "WRDR"
	wireVersion = 1
	headerSize  = 6
	bodySize    = 40
)

// Wire errors.
var (
	ErrBadMagic   = errors.New("cdrs: bad stream magic")
	ErrBadVersion = errors.New("cdrs: unsupported wire version")
	ErrTruncated  = errors.New("cdrs: truncated record")
	ErrOversize   = errors.New("cdrs: record length out of range")
)

// Writer streams records in the binary wire format.
type Writer struct {
	w      *bufio.Writer
	buf    []byte
	wrote  int
	header bool
}

// NewWriter returns a Writer targeting w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10), buf: make([]byte, 2+bodySize+128)}
}

// Write appends one record.
func (w *Writer) Write(r *Record) error {
	if !w.header {
		var h [headerSize]byte
		copy(h[:], magic)
		h[4] = wireVersion
		if _, err := w.w.Write(h[:]); err != nil {
			return fmt.Errorf("cdrs: writing header: %w", err)
		}
		w.header = true
	}
	apnStr := ""
	if r.Kind == KindData {
		apnStr = r.APN.String()
	}
	n := 2 + bodySize + len(apnStr)
	if n > len(w.buf) {
		w.buf = make([]byte, n)
	}
	b := w.buf[:n]
	binary.BigEndian.PutUint16(b[0:2], uint16(bodySize+len(apnStr)))
	binary.BigEndian.PutUint64(b[2:10], uint64(r.Device))
	binary.BigEndian.PutUint64(b[10:18], uint64(r.Time.UnixNano()))
	binary.BigEndian.PutUint16(b[18:20], r.SIM.MCC)
	binary.BigEndian.PutUint16(b[20:22], r.SIM.MNC)
	b[22] = r.SIM.MNCLen
	binary.BigEndian.PutUint16(b[23:25], r.Visited.MCC)
	binary.BigEndian.PutUint16(b[25:27], r.Visited.MNC)
	b[27] = r.Visited.MNCLen
	b[28] = byte(r.Kind)
	b[29] = byte(r.RAT)
	binary.BigEndian.PutUint32(b[30:34], uint32(r.Duration/time.Millisecond))
	binary.BigEndian.PutUint64(b[34:42], r.Bytes)
	copy(b[42:], apnStr)
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("cdrs: writing record %d: %w", w.wrote, err)
	}
	w.wrote++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.wrote }

// Flush drains buffered records.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams records from the binary wire format into
// caller-owned memory.
type Reader struct {
	r      *bufio.Reader
	buf    []byte
	lenBuf [2]byte
	read   int
	header bool
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10), buf: make([]byte, bodySize+256)}
}

// Read decodes the next record into rec; io.EOF marks a clean end.
func (rd *Reader) Read(rec *Record) error {
	if !rd.header {
		var h [headerSize]byte
		if _, err := io.ReadFull(rd.r, h[:]); err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("cdrs: reading header: %w", err)
		}
		if string(h[:4]) != magic {
			return ErrBadMagic
		}
		if h[4] != wireVersion {
			return fmt.Errorf("%w: %d", ErrBadVersion, h[4])
		}
		rd.header = true
	}
	if _, err := io.ReadFull(rd.r, rd.lenBuf[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(rd.lenBuf[:]))
	if n < bodySize || n > bodySize+128 {
		return fmt.Errorf("%w: %d", ErrOversize, n)
	}
	if n > len(rd.buf) {
		rd.buf = make([]byte, n)
	}
	b := rd.buf[:n]
	if _, err := io.ReadFull(rd.r, b); err != nil {
		return ErrTruncated
	}
	rec.Device = identity.DeviceID(binary.BigEndian.Uint64(b[0:8]))
	rec.Time = time.Unix(0, int64(binary.BigEndian.Uint64(b[8:16]))).UTC()
	rec.SIM = mccmnc.PLMN{MCC: binary.BigEndian.Uint16(b[16:18]), MNC: binary.BigEndian.Uint16(b[18:20]), MNCLen: b[20]}
	rec.Visited = mccmnc.PLMN{MCC: binary.BigEndian.Uint16(b[21:23]), MNC: binary.BigEndian.Uint16(b[23:25]), MNCLen: b[25]}
	rec.Kind = Kind(b[26])
	rec.RAT = radio.RAT(b[27])
	rec.Duration = time.Duration(binary.BigEndian.Uint32(b[28:32])) * time.Millisecond
	rec.Bytes = binary.BigEndian.Uint64(b[32:40])
	rec.APN = apn.APN{}
	if n > bodySize {
		a, err := apn.Parse(string(b[bodySize:]))
		if err != nil {
			return fmt.Errorf("cdrs: record %d: %w", rd.read, err)
		}
		rec.APN = a
	}
	rd.read++
	return nil
}

// Count returns the number of records successfully read.
func (rd *Reader) Count() int { return rd.read }

// WriteAll encodes all records to w and flushes.
func WriteAll(w io.Writer, recs []Record) error {
	wr := NewWriter(w)
	for i := range recs {
		if err := wr.Write(&recs[i]); err != nil {
			return err
		}
	}
	return wr.Flush()
}

// ReadAll decodes an entire stream.
func ReadAll(r io.Reader) ([]Record, error) {
	rd := NewReader(r)
	var out []Record
	for {
		var rec Record
		err := rd.Read(&rec)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// csvHeader is the CSV interchange layout.
var csvHeader = []string{"time", "device", "sim", "visited", "kind", "rat", "duration_ms", "bytes", "apn"}

// CSVWriter streams records as CSV.
type CSVWriter struct {
	w      *csv.Writer
	header bool
	row    [9]string
}

// NewCSVWriter returns a CSVWriter targeting w.
func NewCSVWriter(w io.Writer) *CSVWriter { return &CSVWriter{w: csv.NewWriter(w)} }

// Write appends one record.
func (c *CSVWriter) Write(r *Record) error {
	if !c.header {
		if err := c.w.Write(csvHeader); err != nil {
			return err
		}
		c.header = true
	}
	c.row[0] = r.Time.UTC().Format(time.RFC3339Nano)
	c.row[1] = r.Device.String()
	c.row[2] = r.SIM.Concat()
	c.row[3] = r.Visited.Concat()
	c.row[4] = r.Kind.String()
	c.row[5] = strconv.Itoa(int(r.RAT))
	c.row[6] = strconv.FormatInt(int64(r.Duration/time.Millisecond), 10)
	c.row[7] = strconv.FormatUint(r.Bytes, 10)
	c.row[8] = ""
	if r.Kind == KindData && !r.APN.IsZero() {
		c.row[8] = r.APN.String()
	}
	return c.w.Write(c.row[:])
}

// Flush drains buffered rows and reports any write error.
func (c *CSVWriter) Flush() error {
	c.w.Flush()
	return c.w.Error()
}

// CSVReader streams records from the CSV form.
type CSVReader struct {
	r      *csv.Reader
	header bool
	line   int
}

// NewCSVReader returns a CSVReader consuming from r.
func NewCSVReader(r io.Reader) *CSVReader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	cr.ReuseRecord = true
	return &CSVReader{r: cr}
}

// Read decodes the next row into rec; io.EOF marks the end.
func (c *CSVReader) Read(rec *Record) error {
	if !c.header {
		if _, err := c.r.Read(); err != nil {
			return err
		}
		c.header = true
	}
	row, err := c.r.Read()
	if err != nil {
		return err
	}
	c.line++
	fail := func(field string, err error) error {
		return fmt.Errorf("cdrs: csv line %d: %s: %w", c.line, field, err)
	}
	if rec.Time, err = time.Parse(time.RFC3339Nano, row[0]); err != nil {
		return fail("time", err)
	}
	if rec.Device, err = identity.ParseDeviceID(row[1]); err != nil {
		return fail("device", err)
	}
	if rec.SIM, err = mccmnc.Parse(row[2]); err != nil {
		return fail("sim", err)
	}
	if rec.Visited, err = mccmnc.Parse(row[3]); err != nil {
		return fail("visited", err)
	}
	if rec.Kind, err = ParseKind(row[4]); err != nil {
		return fail("kind", err)
	}
	rat, err := strconv.Atoi(row[5])
	if err != nil || rat < 0 || rat > int(radio.RATNB) {
		return fail("rat", fmt.Errorf("%q", row[5]))
	}
	rec.RAT = radio.RAT(rat)
	ms, err := strconv.ParseInt(row[6], 10, 64)
	if err != nil || ms < 0 {
		return fail("duration_ms", fmt.Errorf("%q", row[6]))
	}
	rec.Duration = time.Duration(ms) * time.Millisecond
	if rec.Bytes, err = strconv.ParseUint(row[7], 10, 64); err != nil {
		return fail("bytes", err)
	}
	rec.APN = apn.APN{}
	if row[8] != "" {
		if rec.APN, err = apn.Parse(row[8]); err != nil {
			return fail("apn", err)
		}
	}
	return nil
}
