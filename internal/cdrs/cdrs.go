// Package cdrs implements Call Detail Records (voice) and eXtended
// Detail Records (data) as the paper's MNO dataset uses them (§4.1
// "Service usage"): per-activity records carrying the anonymized user
// ID, SIM and visited network codes, timestamp, duration and bytes,
// with APN strings on data records. Unlike radio logs, these records
// exist for outbound roamers too — they drive inter-operator revenue
// settlement (§2.1).
package cdrs

import (
	"fmt"
	"strconv"
	"time"

	"whereroam/internal/apn"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

// Kind distinguishes voice CDRs from data xDRs.
type Kind uint8

// Record kinds. Voice is used in the paper's broad sense: M2M devices
// do not place calls but use SMS-like CS services accounted the same
// way (§6.1 footnote).
const (
	KindVoice Kind = iota
	KindData
)

func (k Kind) String() string {
	if k == KindVoice {
		return "voice"
	}
	return "data"
}

// ParseKind parses the String form.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "voice":
		return KindVoice, nil
	case "data":
		return KindData, nil
	}
	return 0, fmt.Errorf("cdrs: unknown kind %q", s)
}

// Record is one CDR/xDR.
type Record struct {
	Device   identity.DeviceID
	Time     time.Time
	SIM      mccmnc.PLMN
	Visited  mccmnc.PLMN
	Kind     Kind
	RAT      radio.RAT
	Duration time.Duration // voice: call duration; data: session duration
	Bytes    uint64        // data volume; zero for voice
	APN      apn.APN       // data records only; zero for voice
}

// Roaming reports whether the record was generated outside the SIM's
// home country.
func (r Record) Roaming() bool { return !mccmnc.SameCountry(r.SIM, r.Visited) }

// String renders a compact single-line debug form.
func (r Record) String() string {
	base := fmt.Sprintf("%s %s %s->%s %s %s dur=%s",
		r.Time.UTC().Format(time.RFC3339), r.Device, r.SIM, r.Visited, r.RAT, r.Kind, r.Duration)
	if r.Kind == KindData {
		return base + " bytes=" + strconv.FormatUint(r.Bytes, 10) + " apn=" + r.APN.String()
	}
	return base
}
