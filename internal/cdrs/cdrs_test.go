package cdrs

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"whereroam/internal/apn"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

func sampleVoice(i int) Record {
	return Record{
		Device:   identity.DeviceID(0x2000 + i),
		Time:     time.Date(2019, 4, 5, 8, 0, i, 0, time.UTC),
		SIM:      mccmnc.MustParse("23410"),
		Visited:  mccmnc.MustParse("23410"),
		Kind:     KindVoice,
		RAT:      radio.RAT3G,
		Duration: time.Duration(30+i) * time.Second,
	}
}

func sampleData(i int) Record {
	return Record{
		Device:   identity.DeviceID(0x3000 + i),
		Time:     time.Date(2019, 4, 5, 9, 0, i, 0, time.UTC),
		SIM:      mccmnc.MustParse("20404"),
		Visited:  mccmnc.MustParse("23410"),
		Kind:     KindData,
		RAT:      radio.RAT2G,
		Duration: 90 * time.Second,
		Bytes:    uint64(1000 + i),
		APN:      apn.MustParse("smhp.centricaplc.com.mnc004.mcc204.gprs"),
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindVoice, KindData} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("kind %v round trip failed: %v %v", k, got, err)
		}
	}
	if _, err := ParseKind("video"); err == nil {
		t.Error("ParseKind should reject unknown kinds")
	}
}

func TestRoaming(t *testing.T) {
	if sampleVoice(0).Roaming() {
		t.Error("native record misreported as roaming")
	}
	if !sampleData(0).Roaming() {
		t.Error("NL SIM on UK network should be roaming")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := make([]Record, 0, 100)
	for i := 0; i < 50; i++ {
		recs = append(recs, sampleVoice(i), sampleData(i))
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if !got[i].Time.Equal(recs[i].Time) {
			t.Fatalf("record %d time mismatch", i)
		}
		got[i].Time = recs[i].Time
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(dev uint64, bytes_ uint64, durMs uint32, data bool) bool {
		r := Record{
			Device:   identity.DeviceID(dev),
			Time:     time.Date(2019, 4, 10, 0, 0, 0, 0, time.UTC),
			SIM:      mccmnc.MustParse("24001"),
			Visited:  mccmnc.MustParse("23410"),
			Kind:     KindVoice,
			RAT:      radio.RAT2G,
			Duration: time.Duration(durMs) * time.Millisecond,
		}
		if data {
			r.Kind = KindData
			r.Bytes = bytes_
			r.APN = apn.MustParse("m2m.telemetry.net")
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, []Record{r}); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		if !g.Time.Equal(r.Time) {
			return false
		}
		g.Time = r.Time
		return g == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryVoiceDropsAPN(t *testing.T) {
	// Voice records must not serialize an APN even if one is set by
	// mistake: the paper's key observation is that APNs exist only
	// for data service (§4.3: 21% of devices have no APN).
	r := sampleVoice(0)
	r.APN = apn.MustParse("should.not.survive")
	var buf bytes.Buffer
	if err := WriteAll(&buf, []Record{r}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].APN.IsZero() {
		t.Errorf("voice record came back with APN %v", got[0].APN)
	}
}

func TestBinaryTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []Record{sampleData(0)}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	_, err := ReadAll(bytes.NewReader(cut))
	if err != ErrTruncated {
		t.Fatalf("truncation error = %v", err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	var rec Record
	r := NewReader(strings.NewReader("XXXX\x01\x00"))
	if err := r.Read(&rec); err != ErrBadMagic {
		t.Fatalf("bad magic error = %v", err)
	}
}

func TestBinaryOversizeRejected(t *testing.T) {
	// Craft a stream whose record claims an absurd length.
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.WriteByte(wireVersion)
	buf.WriteByte(0)
	buf.Write([]byte{0xff, 0xff})
	var rec Record
	r := NewReader(&buf)
	if err := r.Read(&rec); err == nil || !strings.Contains(err.Error(), "length out of range") {
		t.Fatalf("oversize error = %v", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := []Record{sampleVoice(1), sampleData(2), sampleVoice(3)}
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewCSVReader(&buf)
	for i := range recs {
		var got Record
		if err := r.Read(&got); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !got.Time.Equal(recs[i].Time) {
			t.Fatalf("row %d time mismatch", i)
		}
		got.Time = recs[i].Time
		if got != recs[i] {
			t.Fatalf("row %d: %+v != %+v", i, got, recs[i])
		}
	}
	var tail Record
	if err := r.Read(&tail); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	head := "time,device,sim,visited,kind,rat,duration_ms,bytes,apn\n"
	for _, row := range []string{
		"bad,0000000000000001,23410,23410,voice,1,100,0,",
		"2019-04-05T00:00:00Z,0000000000000001,23410,23410,video,1,100,0,",
		"2019-04-05T00:00:00Z,0000000000000001,23410,23410,voice,9,100,0,",
		"2019-04-05T00:00:00Z,0000000000000001,23410,23410,voice,1,-5,0,",
		"2019-04-05T00:00:00Z,0000000000000001,23410,23410,data,1,100,10,..bad..",
	} {
		r := NewCSVReader(strings.NewReader(head + row))
		var rec Record
		if err := r.Read(&rec); err == nil {
			t.Errorf("malformed row accepted: %q", row)
		}
	}
}

func TestStreamReadNoAllocSteadyState(t *testing.T) {
	// The binary reader should not allocate per voice record once its
	// buffer is warm (data records allocate only for the APN string).
	var buf bytes.Buffer
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = sampleVoice(i)
	}
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	rd := NewReader(bytes.NewReader(data))
	var rec Record
	if err := rd.Read(&rec); err != nil { // warm up header+buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := rd.Read(&rec); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state voice read allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkWriteData(b *testing.B) {
	rec := sampleData(0)
	w := NewWriter(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(&rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadStream(b *testing.B) {
	var buf bytes.Buffer
	recs := make([]Record, 5000)
	for i := range recs {
		if i%2 == 0 {
			recs[i] = sampleVoice(i)
		} else {
			recs[i] = sampleData(i)
		}
	}
	if err := WriteAll(&buf, recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := NewReader(bytes.NewReader(data))
		var rec Record
		for {
			if err := rd.Read(&rec); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
