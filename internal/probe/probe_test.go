package probe

import (
	"math"
	"sync"
	"testing"
)

func TestTapForwardsAll(t *testing.T) {
	var c Collector[int]
	tap := NewTap("all", 1, c.Add)
	for i := 0; i < 100; i++ {
		tap.Offer(i)
	}
	if c.Len() != 100 {
		t.Fatalf("captured %d, want 100", c.Len())
	}
	offered, captured := tap.Stats()
	if offered != 100 || captured != 100 {
		t.Errorf("stats = %d/%d", offered, captured)
	}
}

func TestTapFilter(t *testing.T) {
	var c Collector[int]
	tap := NewTap("even", 1, c.Add)
	tap.Filter = func(v int) bool { return v%2 == 0 }
	for i := 0; i < 100; i++ {
		tap.Offer(i)
	}
	if c.Len() != 50 {
		t.Fatalf("captured %d, want 50", c.Len())
	}
	for _, v := range c.Records() {
		if v%2 != 0 {
			t.Fatalf("odd value %d passed the filter", v)
		}
	}
}

func TestTapSampling(t *testing.T) {
	var c Collector[int]
	tap := NewTap("sampled", 7, c.Add)
	tap.SampleRate = 0.25
	const n = 40000
	for i := 0; i < n; i++ {
		tap.Offer(i)
	}
	got := float64(c.Len()) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("sample rate = %.3f, want ~0.25", got)
	}
}

func TestTapSamplingDeterministic(t *testing.T) {
	run := func() []int {
		var c Collector[int]
		tap := NewTap("s", 42, c.Add)
		tap.SampleRate = 0.5
		for i := 0; i < 1000; i++ {
			tap.Offer(i)
		}
		return c.Records()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("same seed, different capture sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different captures")
		}
	}
}

// Hash-based sampling decides per record identity: the kept set must
// not depend on offer order, on how records are split across several
// taps sharing (name, seed), or on interleaving — the contract the
// parallel sampled-capture paths rely on.
func TestTapHashSamplingOrderInvariant(t *testing.T) {
	const n = 40000
	key := func(v int) uint64 { return uint64(v) }
	sample := func(order func(i int) int, taps int) map[int]bool {
		ts := make([]*Tap[int], taps)
		cols := make([]Collector[int], taps)
		for i := range ts {
			ts[i] = NewTap("hash", 42, cols[i].Add)
			ts[i].SampleRate = 0.25
			ts[i].SampleKey = key
		}
		for i := 0; i < n; i++ {
			v := order(i)
			ts[v%taps].Offer(v)
		}
		kept := map[int]bool{}
		for i := range cols {
			for _, v := range cols[i].Records() {
				kept[v] = true
			}
		}
		return kept
	}

	forward := sample(func(i int) int { return i }, 1)
	reverse := sample(func(i int) int { return n - 1 - i }, 1)
	sharded := sample(func(i int) int { return i }, 4)

	rate := float64(len(forward)) / n
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("hash sample rate = %.3f, want ~0.25", rate)
	}
	if len(forward) != len(reverse) || len(forward) != len(sharded) {
		t.Fatalf("kept sizes diverge: forward %d, reverse %d, sharded %d",
			len(forward), len(reverse), len(sharded))
	}
	for v := range forward {
		if !reverse[v] || !sharded[v] {
			t.Fatalf("record %d kept forward but dropped in reverse/sharded order", v)
		}
	}
}

// Different seeds must keep different sets, or the hash would be a
// constant partition of the key space.
func TestTapHashSamplingSeedSensitivity(t *testing.T) {
	kept := func(seed uint64) int {
		var c Collector[int]
		tap := NewTap("hash", seed, c.Add)
		tap.SampleRate = 0.5
		tap.SampleKey = func(v int) uint64 { return uint64(v) }
		overlap := 0
		for i := 0; i < 1000; i++ {
			tap.Offer(i)
		}
		for _, v := range c.Records() {
			if v < 500 {
				overlap++
			}
		}
		return c.Len() + overlap*100000 // crude fingerprint
	}
	if kept(1) == kept(2) {
		t.Error("seeds 1 and 2 produced identical kept sets")
	}
}

func TestTapZeroValueKeepsAll(t *testing.T) {
	var c Collector[string]
	tap := &Tap[string]{Sink: c.Add}
	tap.Offer("x")
	tap.Offer("y")
	if c.Len() != 2 {
		t.Fatalf("zero-config tap dropped records: %d", c.Len())
	}
}

func TestCollectorConcurrent(t *testing.T) {
	var c Collector[int]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(g*1000 + i)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 8000 {
		t.Fatalf("concurrent adds lost records: %d", c.Len())
	}
}

func TestStream(t *testing.T) {
	s := NewStream[int](8)
	go func() {
		for i := 0; i < 100; i++ {
			s.Send(i)
		}
		s.Close()
	}()
	sum, count := 0, 0
	for v := range s.C {
		sum += v
		count++
	}
	if count != 100 || sum != 4950 {
		t.Fatalf("stream delivered %d records, sum %d", count, sum)
	}
}

func TestStreamAsTapSink(t *testing.T) {
	s := NewStream[int](4)
	tap := NewTap("stream", 1, s.Send)
	done := make(chan int)
	go func() {
		n := 0
		for range s.C {
			n++
		}
		done <- n
	}()
	for i := 0; i < 50; i++ {
		tap.Offer(i)
	}
	s.Close()
	if n := <-done; n != 50 {
		t.Fatalf("stream sink got %d records", n)
	}
}

func TestFanout(t *testing.T) {
	var a, b Collector[int]
	sink := Fanout(a.Add, b.Add)
	tap := NewTap("fan", 1, sink)
	for i := 0; i < 10; i++ {
		tap.Offer(i)
	}
	if a.Len() != 10 || b.Len() != 10 {
		t.Fatalf("fanout delivered %d/%d, want 10/10", a.Len(), b.Len())
	}
}

func BenchmarkTapOffer(b *testing.B) {
	tap := NewTap("bench", 1, func(int) {})
	tap.Filter = func(v int) bool { return v%2 == 0 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tap.Offer(i)
	}
}
