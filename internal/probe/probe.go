// Package probe implements the passive monitoring layer both paper
// datasets come from: taps placed on network elements (the MME, MSC
// and SGSN pins in Fig. 4; the platform-side probes near the HMNOs in
// §3.1) that observe a record stream, filter and optionally sample
// it, and hand it to collectors.
//
// Taps are generic over the record type so the same machinery
// captures signaling transactions, radio events and CDRs. The
// streaming source follows the gopacket PacketSource idiom: a channel
// the consumer ranges over, closed at end of capture.
package probe

import (
	"sync"
	"sync/atomic"

	"whereroam/internal/rng"
)

// Tap observes a stream of records of type T. The zero Tap forwards
// everything; configure Filter and SampleRate to narrow the capture.
// Offer is safe for concurrent producers when the sink is.
type Tap[T any] struct {
	// Name identifies the capture point ("MME", "MSC", "SGSN",
	// "hmno-es", ...).
	Name string
	// Filter, when non-nil, keeps only records it returns true for.
	Filter func(T) bool
	// SampleRate keeps this fraction of post-filter records; 0 and 1
	// both mean "keep all" (zero value is a complete capture).
	SampleRate float64
	// SampleKey, when set alongside a fractional SampleRate, switches
	// the tap from its sequential sampling stream to per-record
	// hash-based thinning: a record is kept iff
	// rng.Hash01(tapSeed, SampleKey(rec)) < SampleRate. The verdict
	// depends only on the record's identity, never on arrival order,
	// so several taps built with the same (name, seed) reach identical
	// decisions — the property that lets sampled captures run on
	// shard-local taps in parallel instead of one sequential stream.
	// Keys should be unique per logical record; colliding keys share a
	// verdict.
	SampleKey func(T) uint64
	// Sink receives accepted records.
	Sink func(T)

	mu       sync.Mutex
	src      *rng.Source
	hashSeed uint64
	offered  atomic.Int64
	captured atomic.Int64
}

// NewTap builds a capturing tap; seed drives the sampling decisions
// (both the sequential stream and the hash-based per-record verdicts
// derive from it, keyed by the tap name).
func NewTap[T any](name string, seed uint64, sink func(T)) *Tap[T] {
	return &Tap[T]{
		Name:     name,
		Sink:     sink,
		src:      rng.New(seed).Split("probe-" + name),
		hashSeed: rng.New(seed).Split("probe-hash-" + name).Uint64(),
	}
}

// Offer presents one record to the tap.
func (t *Tap[T]) Offer(rec T) {
	t.offered.Add(1)
	if t.Filter != nil && !t.Filter(rec) {
		return
	}
	if t.SampleRate > 0 && t.SampleRate < 1 {
		var keep bool
		if t.SampleKey != nil {
			keep = rng.Hash01(t.hashSeed, t.SampleKey(rec)) < t.SampleRate
		} else {
			t.mu.Lock()
			keep = t.src.Bool(t.SampleRate)
			t.mu.Unlock()
		}
		if !keep {
			return
		}
	}
	t.captured.Add(1)
	if t.Sink != nil {
		t.Sink(rec)
	}
}

// Stats returns how many records were offered to and captured by the
// tap.
func (t *Tap[T]) Stats() (offered, captured int64) {
	return t.offered.Load(), t.captured.Load()
}

// Collector accumulates captured records in memory. It is safe for
// concurrent use.
type Collector[T any] struct {
	mu   sync.Mutex
	recs []T
}

// Add appends one record; it is a valid Tap sink.
func (c *Collector[T]) Add(rec T) {
	c.mu.Lock()
	c.recs = append(c.recs, rec)
	c.mu.Unlock()
}

// Records returns the captured records. The returned slice is the
// collector's own; callers must not mutate it while capture is
// ongoing.
func (c *Collector[T]) Records() []T {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recs
}

// Len returns the number of captured records.
func (c *Collector[T]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Stream is a channel-based record source (the PacketSource idiom):
// consumers range over C; the producer closes it at end of capture.
type Stream[T any] struct {
	// C delivers captured records in capture order.
	C <-chan T
	c chan T
}

// NewStream returns a stream with the given buffer depth. Its Send
// method is a valid Tap sink; call Close when capture ends.
func NewStream[T any](buffer int) *Stream[T] {
	ch := make(chan T, buffer)
	return &Stream[T]{C: ch, c: ch}
}

// Send delivers one record to the consumer, blocking when the buffer
// is full (capture back-pressure).
func (s *Stream[T]) Send(rec T) { s.c <- rec }

// Close ends the stream; consumers ranging over C terminate.
func (s *Stream[T]) Close() { close(s.c) }

// Fanout is a sink that forwards each record to several sinks in
// order — e.g. persist to disk and feed the live catalog builder.
func Fanout[T any](sinks ...func(T)) func(T) {
	return func(rec T) {
		for _, s := range sinks {
			s(rec)
		}
	}
}
