package catalog

import (
	"bytes"
	"strings"
	"testing"

	"whereroam/internal/apn"
	"whereroam/internal/geo"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

func sampleCatalog() *Catalog {
	return &Catalog{
		Host: mccmnc.MustParse("23410"),
		Days: 22,
		Records: []DailyRecord{
			{
				Device:       identity.DeviceID(0x01),
				Day:          0,
				SIM:          mccmnc.MustParse("20404"),
				TAC:          identity.TAC(35600001),
				Visited:      []mccmnc.PLMN{mccmnc.MustParse("23410")},
				Events:       42,
				FailedEvents: 3,
				Calls:        1,
				CallSeconds:  30.5,
				Bytes:        12345,
				RadioFlags:   radio.RATSet(radio.Has2G),
				DataRATs:     radio.RATSet(radio.Has2G),
				APNs:         []apn.APN{apn.MustParse("smhp.centricaplc.com.mnc004.mcc204.gprs")},
				Centroid:     geo.Point{Lat: 51.5, Lon: -0.1},
				GyrationKm:   0.25,
				HasLocation:  true,
			},
			{
				Device:  identity.DeviceID(0x02),
				Day:     3,
				SIM:     mccmnc.MustParse("23410"),
				TAC:     identity.TAC(35200001),
				Visited: []mccmnc.PLMN{mccmnc.MustParse("23410"), mccmnc.MustParse("20801")},
				Events:  100,
				Bytes:   999,
			},
		},
	}
}

func TestCatalogCSVRoundTrip(t *testing.T) {
	c := sampleCatalog()
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != c.Host || got.Days != c.Days {
		t.Fatalf("meta: %v/%d", got.Host, got.Days)
	}
	if len(got.Records) != len(c.Records) {
		t.Fatalf("records = %d", len(got.Records))
	}
	for i := range c.Records {
		a, b := c.Records[i], got.Records[i]
		if a.Device != b.Device || a.Day != b.Day || a.SIM != b.SIM || a.TAC != b.TAC {
			t.Fatalf("record %d identity mismatch", i)
		}
		if a.Events != b.Events || a.FailedEvents != b.FailedEvents ||
			a.Calls != b.Calls || a.Bytes != b.Bytes {
			t.Fatalf("record %d counters mismatch", i)
		}
		if a.RadioFlags != b.RadioFlags || a.DataRATs != b.DataRATs || a.VoiceRATs != b.VoiceRATs {
			t.Fatalf("record %d RAT sets mismatch", i)
		}
		if len(a.APNs) != len(b.APNs) || len(a.Visited) != len(b.Visited) {
			t.Fatalf("record %d list lengths mismatch", i)
		}
		for j := range a.APNs {
			if a.APNs[j] != b.APNs[j] {
				t.Fatalf("record %d APN %d mismatch", i, j)
			}
		}
		if a.HasLocation != b.HasLocation || a.GyrationKm != b.GyrationKm {
			t.Fatalf("record %d mobility mismatch", i)
		}
	}
}

func TestCatalogCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing meta": "device,day\n",
		"bad host":     "#host,abc,days,22\n",
		"bad days":     "#host,23410,days,zero\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadCSV succeeded", name)
		}
	}
	// A malformed data row.
	c := sampleCatalog()
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	broken := strings.Replace(buf.String(), "12345", "not-a-number", 1)
	if _, err := ReadCSV(strings.NewReader(broken)); err == nil {
		t.Error("corrupted bytes field accepted")
	}
}
