package catalog

import (
	"sort"
	"time"

	"whereroam/internal/cdrs"
	"whereroam/internal/geo"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

// Builder ingests raw measurement streams (radio events, CDRs/xDRs)
// and aggregates them into the daily devices-catalog. Sector dwell
// times — the weights for centroid and gyration — are estimated from
// inter-event gaps, capped so an idle night does not attribute hours
// to the last sector of the evening.
type Builder struct {
	host  mccmnc.PLMN
	start time.Time
	days  int
	grid  *radio.Grid

	recs map[dayKey]*DailyRecord
	// last event per device for dwell attribution.
	last map[identity.DeviceID]lastSeen
	// visits per device-day for the mobility metrics.
	visits map[dayKey][]geo.Visit
}

type dayKey struct {
	dev identity.DeviceID
	day int
}

type lastSeen struct {
	t      time.Time
	sector radio.SectorID
}

// maxDwell caps the inter-event gap attributed as dwell time on the
// previous sector.
const maxDwell = 2 * time.Hour

// NewBuilder returns a Builder for a window of days starting at
// start, observing from host. grid resolves sector positions and may
// be nil when mobility metrics are not needed.
func NewBuilder(host mccmnc.PLMN, start time.Time, days int, grid *radio.Grid) *Builder {
	return &Builder{
		host:   host,
		start:  start,
		days:   days,
		grid:   grid,
		recs:   map[dayKey]*DailyRecord{},
		last:   map[identity.DeviceID]lastSeen{},
		visits: map[dayKey][]geo.Visit{},
	}
}

// day returns the window day index of t, or -1 when outside.
func (b *Builder) day(t time.Time) int {
	d := int(t.Sub(b.start) / (24 * time.Hour))
	if d < 0 || d >= b.days {
		return -1
	}
	return d
}

func (b *Builder) record(dev identity.DeviceID, day int, sim mccmnc.PLMN, tac identity.TAC) *DailyRecord {
	k := dayKey{dev, day}
	r := b.recs[k]
	if r == nil {
		r = &DailyRecord{Device: dev, Day: day, SIM: sim, TAC: tac}
		b.recs[k] = r
	}
	if r.TAC == 0 && tac != 0 {
		r.TAC = tac
	}
	return r
}

// AddRadioEvent ingests one radio-interface event.
func (b *Builder) AddRadioEvent(ev radio.Event) {
	day := b.day(ev.Time)
	if day < 0 {
		return
	}
	r := b.record(ev.Device, day, ev.SIM, ev.TAC)
	r.Events++
	if ev.Result != radio.ResultOK {
		r.FailedEvents++
	} else {
		r.RadioFlags = r.RadioFlags.With(ev.RAT())
	}
	r.AddVisited(b.host)

	if b.grid == nil {
		return
	}
	// Attribute the gap since the previous event as dwell on the
	// previous sector.
	if prev, ok := b.last[ev.Device]; ok {
		gap := ev.Time.Sub(prev.t)
		if gap > 0 {
			if gap > maxDwell {
				gap = maxDwell
			}
			if s, ok := b.grid.Sector(prev.sector); ok {
				pd := b.day(prev.t)
				if pd >= 0 {
					k := dayKey{ev.Device, pd}
					b.visits[k] = append(b.visits[k], geo.Visit{At: s.At, Weight: gap.Seconds()})
				}
			}
		}
	}
	b.last[ev.Device] = lastSeen{t: ev.Time, sector: ev.Sector}
}

// AddRecord ingests one CDR/xDR.
func (b *Builder) AddRecord(rec cdrs.Record) {
	day := b.day(rec.Time)
	if day < 0 {
		return
	}
	r := b.record(rec.Device, day, rec.SIM, 0)
	r.AddVisited(rec.Visited)
	switch rec.Kind {
	case cdrs.KindVoice:
		r.Calls++
		r.CallSeconds += rec.Duration.Seconds()
		r.VoiceRATs = r.VoiceRATs.With(rec.RAT)
	case cdrs.KindData:
		r.Bytes += rec.Bytes
		r.DataRATs = r.DataRATs.With(rec.RAT)
		r.AddAPN(rec.APN)
	}
	r.RadioFlags = r.RadioFlags.With(rec.RAT)
}

// Build finalizes the catalog: it computes the mobility metrics and
// returns records sorted by (device, day).
func (b *Builder) Build() *Catalog {
	// Flush trailing dwell: the final event of each device gets a
	// nominal one-minute dwell so single-event days still have a
	// location.
	if b.grid != nil {
		for dev, prev := range b.last {
			if s, ok := b.grid.Sector(prev.sector); ok {
				if pd := b.day(prev.t); pd >= 0 {
					k := dayKey{dev, pd}
					b.visits[k] = append(b.visits[k], geo.Visit{At: s.At, Weight: 60})
				}
			}
		}
	}
	out := &Catalog{Host: b.host, Days: b.days, Records: make([]DailyRecord, 0, len(b.recs))}
	for k, r := range b.recs {
		if vs := b.visits[k]; len(vs) > 0 {
			if c, ok := geo.Centroid(vs); ok {
				r.Centroid = c
				r.GyrationKm = geo.Gyration(vs)
				r.HasLocation = true
			}
		}
		out.Records = append(out.Records, *r)
	}
	sort.Slice(out.Records, func(i, j int) bool {
		a, c := &out.Records[i], &out.Records[j]
		if a.Device != c.Device {
			return a.Device < c.Device
		}
		return a.Day < c.Day
	})
	return out
}
