package catalog

import (
	"sort"
	"time"

	"whereroam/internal/cdrs"
	"whereroam/internal/geo"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/pipeline"
	"whereroam/internal/radio"
)

// Builder ingests raw measurement streams (radio events, CDRs/xDRs)
// and aggregates them into the daily devices-catalog. Sector dwell
// times — the weights for centroid and gyration — are estimated from
// inter-event gaps, capped so an idle night does not attribute hours
// to the last sector of the evening.
type Builder struct {
	host  mccmnc.PLMN
	start time.Time
	days  int
	grid  *radio.Grid

	recs map[dayKey]*DailyRecord
	// last event per device for dwell attribution.
	last map[identity.DeviceID]lastSeen
	// visits per device-day for the mobility metrics.
	visits map[dayKey][]geo.Visit
	// callDur accumulates voice duration per device-day as integer
	// nanoseconds; finalize converts it to CallSeconds once. Integer
	// accumulation is associative, so however the records were grouped
	// across builders (shards, merged feeds, archive segments) the
	// final float is bit-identical to a serial single-builder run —
	// float summation would depend on the grouping.
	callDur map[dayKey]time.Duration
}

type dayKey struct {
	dev identity.DeviceID
	day int
}

type lastSeen struct {
	t      time.Time
	sector radio.SectorID
}

// maxDwell caps the inter-event gap attributed as dwell time on the
// previous sector.
const maxDwell = 2 * time.Hour

// NewBuilder returns a Builder for a window of days starting at
// start, observing from host. grid resolves sector positions and may
// be nil when mobility metrics are not needed.
func NewBuilder(host mccmnc.PLMN, start time.Time, days int, grid *radio.Grid) *Builder {
	return &Builder{
		host:    host,
		start:   start,
		days:    days,
		grid:    grid,
		recs:    map[dayKey]*DailyRecord{},
		last:    map[identity.DeviceID]lastSeen{},
		visits:  map[dayKey][]geo.Visit{},
		callDur: map[dayKey]time.Duration{},
	}
}

// day returns the window day index of t, or -1 when outside.
func (b *Builder) day(t time.Time) int {
	d := int(t.Sub(b.start) / (24 * time.Hour))
	if d < 0 || d >= b.days {
		return -1
	}
	return d
}

func (b *Builder) record(dev identity.DeviceID, day int, sim mccmnc.PLMN, tac identity.TAC) *DailyRecord {
	k := dayKey{dev, day}
	r := b.recs[k]
	if r == nil {
		r = &DailyRecord{Device: dev, Day: day, SIM: sim, TAC: tac}
		b.recs[k] = r
	}
	if r.TAC == 0 && tac != 0 {
		r.TAC = tac
	}
	return r
}

// AddRadioEvent ingests one radio-interface event.
func (b *Builder) AddRadioEvent(ev radio.Event) {
	day := b.day(ev.Time)
	if day < 0 {
		return
	}
	r := b.record(ev.Device, day, ev.SIM, ev.TAC)
	r.Events++
	if ev.Result != radio.ResultOK {
		r.FailedEvents++
	} else {
		r.RadioFlags = r.RadioFlags.With(ev.RAT())
	}
	r.AddVisited(b.host)

	if b.grid == nil {
		return
	}
	// Attribute the gap since the previous event as dwell on the
	// previous sector.
	if prev, ok := b.last[ev.Device]; ok {
		gap := ev.Time.Sub(prev.t)
		if gap > 0 {
			if gap > maxDwell {
				gap = maxDwell
			}
			if s, ok := b.grid.Sector(prev.sector); ok {
				pd := b.day(prev.t)
				if pd >= 0 {
					k := dayKey{ev.Device, pd}
					b.visits[k] = append(b.visits[k], geo.Visit{At: s.At, Weight: gap.Seconds()})
				}
			}
		}
	}
	b.last[ev.Device] = lastSeen{t: ev.Time, sector: ev.Sector}
}

// AddRecord ingests one CDR/xDR.
func (b *Builder) AddRecord(rec cdrs.Record) {
	day := b.day(rec.Time)
	if day < 0 {
		return
	}
	r := b.record(rec.Device, day, rec.SIM, 0)
	r.AddVisited(rec.Visited)
	switch rec.Kind {
	case cdrs.KindVoice:
		r.Calls++
		b.callDur[dayKey{rec.Device, day}] += rec.Duration
		r.VoiceRATs = r.VoiceRATs.With(rec.RAT)
	case cdrs.KindData:
		r.Bytes += rec.Bytes
		r.DataRATs = r.DataRATs.With(rec.RAT)
		r.AddAPN(rec.APN)
	}
	r.RadioFlags = r.RadioFlags.With(rec.RAT)
}

// Build finalizes the catalog: it computes the mobility metrics and
// returns records sorted by (device, day).
func (b *Builder) Build() *Catalog {
	out := &Catalog{Host: b.host, Days: b.days, Records: b.finalize()}
	sortRecords(out.Records)
	return out
}

// finalize flushes trailing dwell, computes each record's mobility
// metrics and returns the records unsorted. It is the shard-local
// half of a build; Build and ShardedBuilder.Build add the global
// sort.
func (b *Builder) finalize() []DailyRecord {
	// Flush trailing dwell: the final event of each device gets a
	// nominal one-minute dwell so single-event days still have a
	// location.
	if b.grid != nil {
		//roamvet:maporder-ok one write per ranged device: visits[{dev,day}] is appended by exactly one iteration, so no visit order can interleave
		for dev, prev := range b.last {
			if s, ok := b.grid.Sector(prev.sector); ok {
				if pd := b.day(prev.t); pd >= 0 {
					k := dayKey{dev, pd}
					b.visits[k] = append(b.visits[k], geo.Visit{At: s.At, Weight: 60})
				}
			}
		}
	}
	recs := make([]DailyRecord, 0, len(b.recs))
	//roamvet:maporder-ok finalize returns an unordered batch by documented contract; Build and ShardedBuilder.Build apply sortRecords' (device, day) total order before anything order-sensitive sees it
	for k, r := range b.recs {
		if d := b.callDur[k]; d != 0 {
			r.CallSeconds = d.Seconds()
		}
		if vs := b.visits[k]; len(vs) > 0 {
			if c, ok := geo.Centroid(vs); ok {
				r.Centroid = c
				r.GyrationKm = geo.Gyration(vs)
				r.HasLocation = true
			}
		}
		recs = append(recs, *r)
	}
	return recs
}

// sortRecords orders records by (device, day) — a total order, since
// the pair is unique per record, so the result is deterministic
// whatever permutation the shards delivered.
func sortRecords(recs []DailyRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, c := &recs[i], &recs[j]
		if a.Device != c.Device {
			return a.Device < c.Device
		}
		return a.Day < c.Day
	})
}

// Merge folds another builder's accumulated state into b, combining
// catalogs built from separate capture feeds (e.g. one builder per
// probe site). Per-day records combine field-wise (counts and flags
// add, visited networks and APNs union in b-then-o order, an unknown
// TAC backfills). Dwell state merges by keeping the later last-seen
// event per device; the dwell chain *across* the two builders is not
// reconstructed, so for exact parity with a single builder keep the
// feeds device-disjoint — which is why ShardedBuilder routes events
// by device and merges finalized shard outputs instead.
func (b *Builder) Merge(o *Builder) {
	//roamvet:maporder-ok per-ranged-key fold into b.recs[k]: each (device, day) key is touched by exactly one iteration, and the b-then-o union order within a key is fixed by the merge direction
	for k, ro := range o.recs {
		r := b.recs[k]
		if r == nil {
			b.recs[k] = ro
			continue
		}
		if r.TAC == 0 && ro.TAC != 0 {
			r.TAC = ro.TAC
		}
		r.Events += ro.Events
		r.FailedEvents += ro.FailedEvents
		r.Calls += ro.Calls
		r.Bytes += ro.Bytes
		r.RadioFlags |= ro.RadioFlags
		r.DataRATs |= ro.DataRATs
		r.VoiceRATs |= ro.VoiceRATs
		for _, v := range ro.Visited {
			r.AddVisited(v)
		}
		for _, a := range ro.APNs {
			r.AddAPN(a)
		}
	}
	for k, vs := range o.visits {
		b.visits[k] = append(b.visits[k], vs...)
	}
	for k, d := range o.callDur {
		b.callDur[k] += d
	}
	//roamvet:maporder-ok keyed max-fold: each device keeps its later last-seen event, an extremum that no visit order can change
	for dev, seen := range o.last {
		if prev, ok := b.last[dev]; !ok || seen.t.After(prev.t) {
			b.last[dev] = seen
		}
	}
}

// ShardedBuilder partitions catalog construction by device: events
// route to one of several shard-local Builders (device ID modulo
// shard count), so ingestion can run on one goroutine per shard and
// the build still attributes dwell correctly — every event of a
// device lands in the same shard. The zero worker-count convention
// of internal/pipeline applies throughout.
type ShardedBuilder struct {
	shards []*Builder
}

// NewShardedBuilder returns a builder sharded count ways; count
// values below one collapse to a single shard.
func NewShardedBuilder(host mccmnc.PLMN, start time.Time, days int, grid *radio.Grid, count int) *ShardedBuilder {
	if count < 1 {
		count = 1
	}
	sb := &ShardedBuilder{shards: make([]*Builder, count)}
	for i := range sb.shards {
		sb.shards[i] = NewBuilder(host, start, days, grid)
	}
	return sb
}

// Shards returns the shard count.
func (sb *ShardedBuilder) Shards() int { return len(sb.shards) }

// ShardFor returns the shard index owning the device.
func (sb *ShardedBuilder) ShardFor(dev identity.DeviceID) int {
	return int(uint64(dev) % uint64(len(sb.shards)))
}

// Builder returns the shard-local builder; feed each from at most
// one goroutine at a time.
func (sb *ShardedBuilder) Builder(i int) *Builder { return sb.shards[i] }

// AddRadioEvent routes one radio event to its shard. Not safe for
// concurrent callers; for parallel ingestion partition the stream
// with ShardFor and feed each shard's Builder directly.
func (sb *ShardedBuilder) AddRadioEvent(ev radio.Event) {
	sb.shards[sb.ShardFor(ev.Device)].AddRadioEvent(ev)
}

// AddRecord routes one CDR/xDR to its shard; same concurrency
// contract as AddRadioEvent.
func (sb *ShardedBuilder) AddRecord(rec cdrs.Record) {
	sb.shards[sb.ShardFor(rec.Device)].AddRecord(rec)
}

// Build finalizes every shard concurrently on workers goroutines and
// merges the shard outputs into one sorted catalog. Shards own
// device-disjoint record sets and (device, day) is a total order, so
// the merged catalog is identical to a serial single-builder run for
// any shard or worker count.
func (sb *ShardedBuilder) Build(workers int) *Catalog {
	parts := pipeline.Map(len(sb.shards), workers, func(sh pipeline.Shard) []DailyRecord {
		var recs []DailyRecord
		for i := sh.Lo; i < sh.Hi; i++ {
			recs = append(recs, sb.shards[i].finalize()...)
		}
		return recs
	})
	first := sb.shards[0]
	out := &Catalog{Host: first.host, Days: first.days}
	for _, recs := range parts {
		out.Records = append(out.Records, recs...)
	}
	sortRecords(out.Records)
	return out
}
