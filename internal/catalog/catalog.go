// Package catalog implements the paper's daily devices-catalog
// (§4.1): the per-device, per-day aggregate view an operator builds
// by merging radio-interface logs, CDRs/xDRs and the GSMA device
// database — total events, calls and bytes, SIM and visited network
// codes, APN strings, device properties, radio-flags, and the
// mobility metrics (weighted centroid and radius of gyration).
//
// Everything downstream — the roaming labels, the M2M classifier and
// all population analyses — consumes this catalog, exactly as in the
// paper.
package catalog

import (
	"sort"

	"whereroam/internal/apn"
	"whereroam/internal/geo"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/pipeline"
	"whereroam/internal/radio"
)

// DailyRecord is one device's aggregate for one day.
type DailyRecord struct {
	Device identity.DeviceID
	Day    int // day index within the observation window
	SIM    mccmnc.PLMN
	TAC    identity.TAC

	// Visited lists the networks the device used this day (the host
	// MNO for radio activity; CDRs may add foreign networks for
	// outbound roamers).
	Visited []mccmnc.PLMN

	// Events counts radio resource management events; FailedEvents
	// the subset with failure results.
	Events       int
	FailedEvents int

	// Calls, CallSeconds and Bytes summarize service usage.
	Calls       int
	CallSeconds float64
	Bytes       uint64

	// RadioFlags marks RATs with at least one successful radio
	// communication (the 3×1-bit flags of §4.1); DataRATs/VoiceRATs
	// split them per service domain.
	RadioFlags radio.RATSet
	DataRATs   radio.RATSet
	VoiceRATs  radio.RATSet

	// APNs lists the distinct access points seen in the day's xDRs.
	APNs []apn.APN

	// Centroid and GyrationKm are the day's mobility metrics;
	// HasLocation marks whether any sector position was observed.
	Centroid    geo.Point
	GyrationKm  float64
	HasLocation bool
}

// AddVisited appends the network if not already present.
func (r *DailyRecord) AddVisited(p mccmnc.PLMN) {
	for _, v := range r.Visited {
		if v == p {
			return
		}
	}
	r.Visited = append(r.Visited, p)
}

// AddAPN appends the APN if not already present.
func (r *DailyRecord) AddAPN(a apn.APN) {
	if a.IsZero() {
		return
	}
	for _, x := range r.APNs {
		if x == a {
			return
		}
	}
	r.APNs = append(r.APNs, a)
}

// Catalog is the full observation window.
type Catalog struct {
	// Host is the observing MNO.
	Host mccmnc.PLMN
	// Days is the window length.
	Days int
	// Records holds every device-day aggregate.
	Records []DailyRecord
}

// Summary is a device aggregated across the window — the unit the
// classifier and the population analyses operate on.
type Summary struct {
	Device identity.DeviceID
	SIM    mccmnc.PLMN
	TAC    identity.TAC

	// Info is the GSMA join; InfoOK is false when the TAC is absent
	// from the database.
	Info   gsma.DeviceInfo
	InfoOK bool

	ActiveDays   int
	FirstDay     int
	LastDay      int
	Events       int
	FailedEvents int
	Calls        int
	CallSeconds  float64
	Bytes        uint64

	RadioFlags radio.RATSet
	DataRATs   radio.RATSet
	VoiceRATs  radio.RATSet

	APNs    []apn.APN
	Visited []mccmnc.PLMN

	// MeanGyrationKm averages the daily gyration over days with
	// location data; HasLocation is false when no day had any.
	MeanGyrationKm float64
	HasLocation    bool
}

// UsesData reports whether the device generated any data traffic.
func (s *Summary) UsesData() bool { return !s.DataRATs.Empty() }

// UsesVoice reports whether the device generated any voice traffic.
func (s *Summary) UsesVoice() bool { return !s.VoiceRATs.Empty() }

// Summaries aggregates the catalog per device and joins the GSMA
// database. The result is sorted by device ID for determinism.
// Aggregation is chunk-parallel over the record slice with one worker
// per CPU; see SummariesWorkers for the worker-count contract.
func (c *Catalog) Summaries(db *gsma.DB) []Summary { return c.SummariesWorkers(db, 0) }

// SummariesWorkers is Summaries with an explicit worker count (below
// one = one worker per CPU, one = serial). Record chunks are
// aggregated concurrently into partial per-device summaries and
// merged in chunk order; chunk boundaries depend only on the record
// count, so the result — including float accumulation order — is
// identical for every worker count. (The chunked grouping is the
// reproducibility contract; it regroups float additions relative to
// the pre-chunking single pass, so CallSeconds/MeanGyrationKm may
// differ in the last bits from catalogs summarized by older
// versions.)
func (c *Catalog) SummariesWorkers(db *gsma.DB, workers int) []Summary {
	parts := pipeline.Map(len(c.Records), workers, func(sh pipeline.Shard) *summaryPartial {
		return c.summarizeChunk(sh.Lo, sh.Hi)
	})
	if len(parts) == 0 {
		return nil
	}
	acc := parts[0]
	for _, p := range parts[1:] {
		acc.merge(p)
	}

	out := make([]Summary, 0, len(acc.byDev))
	for id, s := range acc.byDev {
		if n := acc.gyrN[id]; n > 0 {
			s.MeanGyrationKm = acc.gyrSum[id] / float64(n)
			s.HasLocation = true
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	if db != nil {
		pipeline.Run(len(out), workers, func(sh pipeline.Shard) {
			for i := sh.Lo; i < sh.Hi; i++ {
				out[i].Info, out[i].InfoOK = db.Lookup(out[i].TAC)
			}
		})
	}
	return out
}

// summaryPartial is one chunk's per-device aggregation state.
type summaryPartial struct {
	byDev  map[identity.DeviceID]*Summary
	gyrSum map[identity.DeviceID]float64
	gyrN   map[identity.DeviceID]int
}

// summarizeChunk aggregates the record range [lo, hi).
func (c *Catalog) summarizeChunk(lo, hi int) *summaryPartial {
	p := &summaryPartial{
		byDev:  map[identity.DeviceID]*Summary{},
		gyrSum: map[identity.DeviceID]float64{},
		gyrN:   map[identity.DeviceID]int{},
	}
	for i := lo; i < hi; i++ {
		r := &c.Records[i]
		s := p.byDev[r.Device]
		if s == nil {
			s = &Summary{Device: r.Device, SIM: r.SIM, TAC: r.TAC, FirstDay: r.Day, LastDay: r.Day}
			p.byDev[r.Device] = s
		}
		s.ActiveDays++
		if r.Day < s.FirstDay {
			s.FirstDay = r.Day
		}
		if r.Day > s.LastDay {
			s.LastDay = r.Day
		}
		s.Events += r.Events
		s.FailedEvents += r.FailedEvents
		s.Calls += r.Calls
		s.CallSeconds += r.CallSeconds
		s.Bytes += r.Bytes
		s.RadioFlags |= r.RadioFlags
		s.DataRATs |= r.DataRATs
		s.VoiceRATs |= r.VoiceRATs
		for _, a := range r.APNs {
			s.addAPN(a)
		}
		for _, v := range r.Visited {
			s.addVisited(v)
		}
		if r.HasLocation {
			p.gyrSum[r.Device] += r.GyrationKm
			p.gyrN[r.Device]++
		}
	}
	return p
}

// merge folds a later chunk's partials into p. p's chunk precedes
// o's, so p's first-seen fields (SIM, TAC, APN/Visited order) win —
// the same outcome a single pass over the concatenated chunks gives.
func (p *summaryPartial) merge(o *summaryPartial) {
	//roamvet:maporder-ok per-ranged-key fold into p.byDev[id]: each device is touched by exactly one iteration and first-seen fields follow the fixed p-then-o merge direction
	for id, so := range o.byDev {
		s := p.byDev[id]
		if s == nil {
			p.byDev[id] = so
			continue
		}
		s.ActiveDays += so.ActiveDays
		if so.FirstDay < s.FirstDay {
			s.FirstDay = so.FirstDay
		}
		if so.LastDay > s.LastDay {
			s.LastDay = so.LastDay
		}
		s.Events += so.Events
		s.FailedEvents += so.FailedEvents
		s.Calls += so.Calls
		//roamvet:floatfold-ok Summaries folds chunk partials serially in ascending chunk order, so each device's CallSeconds additions happen in one pinned sequence
		s.CallSeconds += so.CallSeconds
		s.Bytes += so.Bytes
		s.RadioFlags |= so.RadioFlags
		s.DataRATs |= so.DataRATs
		s.VoiceRATs |= so.VoiceRATs
		for _, a := range so.APNs {
			s.addAPN(a)
		}
		for _, v := range so.Visited {
			s.addVisited(v)
		}
	}
	for id, g := range o.gyrSum {
		//roamvet:floatfold-ok per-ranged-key single addition, and chunk partials fold serially in ascending chunk order — the gyration sum sequence per device is pinned
		p.gyrSum[id] += g
	}
	for id, n := range o.gyrN {
		p.gyrN[id] += n
	}
}

func (s *Summary) addAPN(a apn.APN) {
	for _, x := range s.APNs {
		if x == a {
			return
		}
	}
	s.APNs = append(s.APNs, a)
}

func (s *Summary) addVisited(p mccmnc.PLMN) {
	for _, x := range s.Visited {
		if x == p {
			return
		}
	}
	s.Visited = append(s.Visited, p)
}
