// Package catalog implements the paper's daily devices-catalog
// (§4.1): the per-device, per-day aggregate view an operator builds
// by merging radio-interface logs, CDRs/xDRs and the GSMA device
// database — total events, calls and bytes, SIM and visited network
// codes, APN strings, device properties, radio-flags, and the
// mobility metrics (weighted centroid and radius of gyration).
//
// Everything downstream — the roaming labels, the M2M classifier and
// all population analyses — consumes this catalog, exactly as in the
// paper.
package catalog

import (
	"sort"

	"whereroam/internal/apn"
	"whereroam/internal/geo"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

// DailyRecord is one device's aggregate for one day.
type DailyRecord struct {
	Device identity.DeviceID
	Day    int // day index within the observation window
	SIM    mccmnc.PLMN
	TAC    identity.TAC

	// Visited lists the networks the device used this day (the host
	// MNO for radio activity; CDRs may add foreign networks for
	// outbound roamers).
	Visited []mccmnc.PLMN

	// Events counts radio resource management events; FailedEvents
	// the subset with failure results.
	Events       int
	FailedEvents int

	// Calls, CallSeconds and Bytes summarize service usage.
	Calls       int
	CallSeconds float64
	Bytes       uint64

	// RadioFlags marks RATs with at least one successful radio
	// communication (the 3×1-bit flags of §4.1); DataRATs/VoiceRATs
	// split them per service domain.
	RadioFlags radio.RATSet
	DataRATs   radio.RATSet
	VoiceRATs  radio.RATSet

	// APNs lists the distinct access points seen in the day's xDRs.
	APNs []apn.APN

	// Centroid and GyrationKm are the day's mobility metrics;
	// HasLocation marks whether any sector position was observed.
	Centroid    geo.Point
	GyrationKm  float64
	HasLocation bool
}

// AddVisited appends the network if not already present.
func (r *DailyRecord) AddVisited(p mccmnc.PLMN) {
	for _, v := range r.Visited {
		if v == p {
			return
		}
	}
	r.Visited = append(r.Visited, p)
}

// AddAPN appends the APN if not already present.
func (r *DailyRecord) AddAPN(a apn.APN) {
	if a.IsZero() {
		return
	}
	for _, x := range r.APNs {
		if x == a {
			return
		}
	}
	r.APNs = append(r.APNs, a)
}

// Catalog is the full observation window.
type Catalog struct {
	// Host is the observing MNO.
	Host mccmnc.PLMN
	// Days is the window length.
	Days int
	// Records holds every device-day aggregate.
	Records []DailyRecord
}

// Summary is a device aggregated across the window — the unit the
// classifier and the population analyses operate on.
type Summary struct {
	Device identity.DeviceID
	SIM    mccmnc.PLMN
	TAC    identity.TAC

	// Info is the GSMA join; InfoOK is false when the TAC is absent
	// from the database.
	Info   gsma.DeviceInfo
	InfoOK bool

	ActiveDays   int
	FirstDay     int
	LastDay      int
	Events       int
	FailedEvents int
	Calls        int
	CallSeconds  float64
	Bytes        uint64

	RadioFlags radio.RATSet
	DataRATs   radio.RATSet
	VoiceRATs  radio.RATSet

	APNs    []apn.APN
	Visited []mccmnc.PLMN

	// MeanGyrationKm averages the daily gyration over days with
	// location data; HasLocation is false when no day had any.
	MeanGyrationKm float64
	HasLocation    bool
}

// UsesData reports whether the device generated any data traffic.
func (s *Summary) UsesData() bool { return !s.DataRATs.Empty() }

// UsesVoice reports whether the device generated any voice traffic.
func (s *Summary) UsesVoice() bool { return !s.VoiceRATs.Empty() }

// Summaries aggregates the catalog per device and joins the GSMA
// database. The result is sorted by device ID for determinism.
func (c *Catalog) Summaries(db *gsma.DB) []Summary {
	byDev := map[identity.DeviceID]*Summary{}
	gyrSum := map[identity.DeviceID]float64{}
	gyrN := map[identity.DeviceID]int{}
	for i := range c.Records {
		r := &c.Records[i]
		s := byDev[r.Device]
		if s == nil {
			s = &Summary{Device: r.Device, SIM: r.SIM, TAC: r.TAC, FirstDay: r.Day, LastDay: r.Day}
			byDev[r.Device] = s
		}
		s.ActiveDays++
		if r.Day < s.FirstDay {
			s.FirstDay = r.Day
		}
		if r.Day > s.LastDay {
			s.LastDay = r.Day
		}
		s.Events += r.Events
		s.FailedEvents += r.FailedEvents
		s.Calls += r.Calls
		s.CallSeconds += r.CallSeconds
		s.Bytes += r.Bytes
		s.RadioFlags |= r.RadioFlags
		s.DataRATs |= r.DataRATs
		s.VoiceRATs |= r.VoiceRATs
		for _, a := range r.APNs {
			s.addAPN(a)
		}
		for _, v := range r.Visited {
			s.addVisited(v)
		}
		if r.HasLocation {
			gyrSum[r.Device] += r.GyrationKm
			gyrN[r.Device]++
		}
	}
	out := make([]Summary, 0, len(byDev))
	for id, s := range byDev {
		if n := gyrN[id]; n > 0 {
			s.MeanGyrationKm = gyrSum[id] / float64(n)
			s.HasLocation = true
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	if db != nil {
		for i := range out {
			out[i].Info, out[i].InfoOK = db.Lookup(out[i].TAC)
		}
	}
	return out
}

func (s *Summary) addAPN(a apn.APN) {
	for _, x := range s.APNs {
		if x == a {
			return
		}
	}
	s.APNs = append(s.APNs, a)
}

func (s *Summary) addVisited(p mccmnc.PLMN) {
	for _, x := range s.Visited {
		if x == p {
			return
		}
	}
	s.Visited = append(s.Visited, p)
}
