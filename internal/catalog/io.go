package catalog

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"whereroam/internal/apn"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

// csvHeader is the CSV layout of the devices-catalog interchange
// form. Multi-valued fields (visited networks, APNs) are
// semicolon-joined inside one CSV cell.
var csvHeader = []string{
	"device", "day", "sim", "tac", "visited", "events", "failed",
	"calls", "call_seconds", "bytes", "radio_flags", "data_rats",
	"voice_rats", "apns", "lat", "lon", "gyration_km", "has_location",
}

// CSVWriter emits catalog records in the WriteCSV interchange layout
// one record at a time — the out-of-core counterpart of
// Catalog.WriteCSV for producers (StreamMNO sinks, replay tools) that
// never materialize a Catalog. The meta and header rows are written by
// NewCSVWriter; the caller streams records through Write and must
// Flush once at the end.
type CSVWriter struct {
	cw  *csv.Writer
	row []string
}

// NewCSVWriter starts a catalog CSV stream on w, writing the
// comment-style meta row (host, days) and the column header
// immediately.
func NewCSVWriter(w io.Writer, host mccmnc.PLMN, days int) (*CSVWriter, error) {
	cw := csv.NewWriter(w)
	meta := []string{"#host", host.Concat(), "days", strconv.Itoa(days)}
	if err := cw.Write(meta); err != nil {
		return nil, err
	}
	if err := cw.Write(csvHeader); err != nil {
		return nil, err
	}
	return &CSVWriter{cw: cw, row: make([]string, len(csvHeader))}, nil
}

// Write appends one record row.
func (w *CSVWriter) Write(r *DailyRecord) error {
	visited := make([]string, len(r.Visited))
	for j, v := range r.Visited {
		visited[j] = v.Concat()
	}
	apns := make([]string, len(r.APNs))
	for j, a := range r.APNs {
		apns[j] = a.String()
	}
	row := w.row
	row[0] = r.Device.String()
	row[1] = strconv.Itoa(r.Day)
	row[2] = r.SIM.Concat()
	row[3] = r.TAC.String()
	row[4] = strings.Join(visited, ";")
	row[5] = strconv.Itoa(r.Events)
	row[6] = strconv.Itoa(r.FailedEvents)
	row[7] = strconv.Itoa(r.Calls)
	row[8] = strconv.FormatFloat(r.CallSeconds, 'f', 1, 64)
	row[9] = strconv.FormatUint(r.Bytes, 10)
	row[10] = strconv.Itoa(int(r.RadioFlags))
	row[11] = strconv.Itoa(int(r.DataRATs))
	row[12] = strconv.Itoa(int(r.VoiceRATs))
	row[13] = strings.Join(apns, ";")
	row[14] = strconv.FormatFloat(r.Centroid.Lat, 'f', 6, 64)
	row[15] = strconv.FormatFloat(r.Centroid.Lon, 'f', 6, 64)
	row[16] = strconv.FormatFloat(r.GyrationKm, 'f', 4, 64)
	row[17] = strconv.FormatBool(r.HasLocation)
	return w.cw.Write(row)
}

// Flush drains the underlying csv.Writer and reports any deferred
// write error. Call it once after the last Write.
func (w *CSVWriter) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}

// WriteCSV writes the catalog (header line carries host and days as a
// comment-style first record). The output is byte-identical to
// streaming the same records through a CSVWriter.
func (c *Catalog) WriteCSV(w io.Writer) error {
	cw, err := NewCSVWriter(w, c.Host, c.Days)
	if err != nil {
		return err
	}
	for i := range c.Records {
		if err := cw.Write(&c.Records[i]); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// ReadCSV reads a catalog in the WriteCSV layout.
func ReadCSV(r io.Reader) (*Catalog, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	meta, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("catalog: reading meta row: %w", err)
	}
	if len(meta) != 4 || meta[0] != "#host" {
		return nil, fmt.Errorf("catalog: missing #host meta row")
	}
	host, err := mccmnc.Parse(meta[1])
	if err != nil {
		return nil, fmt.Errorf("catalog: meta host: %w", err)
	}
	days, err := strconv.Atoi(meta[3])
	if err != nil || days <= 0 {
		return nil, fmt.Errorf("catalog: meta days %q", meta[3])
	}
	if _, err := cr.Read(); err != nil { // header row
		return nil, fmt.Errorf("catalog: reading header: %w", err)
	}
	out := &Catalog{Host: host, Days: days}
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("catalog: line %d: %w", line, err)
		}
		line++
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("catalog: line %d: %d fields, want %d", line, len(row), len(csvHeader))
		}
		rec, err := parseCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("catalog: line %d: %w", line, err)
		}
		out.Records = append(out.Records, rec)
	}
}

func parseCSVRow(row []string) (DailyRecord, error) {
	var r DailyRecord
	dev, err := identity.ParseDeviceID(row[0])
	if err != nil {
		return r, err
	}
	r.Device = dev
	if r.Day, err = strconv.Atoi(row[1]); err != nil {
		return r, fmt.Errorf("day: %w", err)
	}
	if r.SIM, err = mccmnc.Parse(row[2]); err != nil {
		return r, err
	}
	if r.TAC, err = identity.ParseTAC(row[3]); err != nil {
		return r, err
	}
	if row[4] != "" {
		for _, v := range strings.Split(row[4], ";") {
			p, err := mccmnc.Parse(v)
			if err != nil {
				return r, err
			}
			r.Visited = append(r.Visited, p)
		}
	}
	if r.Events, err = strconv.Atoi(row[5]); err != nil {
		return r, fmt.Errorf("events: %w", err)
	}
	if r.FailedEvents, err = strconv.Atoi(row[6]); err != nil {
		return r, fmt.Errorf("failed: %w", err)
	}
	if r.Calls, err = strconv.Atoi(row[7]); err != nil {
		return r, fmt.Errorf("calls: %w", err)
	}
	if r.CallSeconds, err = strconv.ParseFloat(row[8], 64); err != nil {
		return r, fmt.Errorf("call_seconds: %w", err)
	}
	if r.Bytes, err = strconv.ParseUint(row[9], 10, 64); err != nil {
		return r, fmt.Errorf("bytes: %w", err)
	}
	flags, err := strconv.Atoi(row[10])
	if err != nil {
		return r, fmt.Errorf("radio_flags: %w", err)
	}
	r.RadioFlags = radio.RATSet(flags)
	if flags, err = strconv.Atoi(row[11]); err != nil {
		return r, fmt.Errorf("data_rats: %w", err)
	}
	r.DataRATs = radio.RATSet(flags)
	if flags, err = strconv.Atoi(row[12]); err != nil {
		return r, fmt.Errorf("voice_rats: %w", err)
	}
	r.VoiceRATs = radio.RATSet(flags)
	if row[13] != "" {
		for _, s := range strings.Split(row[13], ";") {
			a, err := apn.Parse(s)
			if err != nil {
				return r, err
			}
			r.APNs = append(r.APNs, a)
		}
	}
	if r.Centroid.Lat, err = strconv.ParseFloat(row[14], 64); err != nil {
		return r, fmt.Errorf("lat: %w", err)
	}
	if r.Centroid.Lon, err = strconv.ParseFloat(row[15], 64); err != nil {
		return r, fmt.Errorf("lon: %w", err)
	}
	if r.GyrationKm, err = strconv.ParseFloat(row[16], 64); err != nil {
		return r, fmt.Errorf("gyration: %w", err)
	}
	if r.HasLocation, err = strconv.ParseBool(row[17]); err != nil {
		return r, fmt.Errorf("has_location: %w", err)
	}
	return r, nil
}

// StartOfDay returns the UTC timestamp of a day index given the
// window start — a convenience for tools replaying catalogs.
func StartOfDay(start time.Time, day int) time.Time {
	return start.Add(time.Duration(day) * 24 * time.Hour)
}
