package catalog

import (
	"reflect"
	"testing"
	"time"

	"whereroam/internal/cdrs"
	"whereroam/internal/identity"
	"whereroam/internal/radio"
)

// synthStreams builds a deterministic mixed event load over many
// devices, returning the streams in time order.
func synthStreams(devs, hours int) ([]radio.Event, []cdrs.Record) {
	var evs []radio.Event
	var recs []cdrs.Record
	for h := 0; h < hours; h++ {
		at := start.Add(time.Duration(h) * time.Hour)
		for d := 0; d < devs; d++ {
			dev := identity.DeviceID(d)
			res := radio.ResultOK
			if (d+h)%7 == 0 {
				res = radio.ResultFail
			}
			evs = append(evs, radio.Event{
				Device: dev, Time: at.Add(time.Duration(d) * time.Second),
				SIM: nlSIM, TAC: identity.TAC(35600000 + d%3), Sector: radio.SectorID(d % 40),
				Interface: radio.IfGb, Result: res,
			})
			if d%2 == 0 {
				recs = append(recs, cdrs.Record{
					Device: dev, Time: at.Add(time.Duration(d) * time.Second),
					SIM: nlSIM, Visited: host, Kind: cdrs.KindData,
					RAT: radio.RAT2G, Bytes: uint64(100 + d),
				})
			}
		}
	}
	return evs, recs
}

func ingestAll(b *Builder, evs []radio.Event, recs []cdrs.Record) {
	for i := range evs {
		b.AddRadioEvent(evs[i])
	}
	for i := range recs {
		b.AddRecord(recs[i])
	}
}

// A sharded build over device-routed streams must equal a serial
// single-builder build record for record.
func TestShardedBuilderMatchesSerial(t *testing.T) {
	grid := ukGrid(t)
	evs, recs := synthStreams(60, 30)

	serial := NewBuilder(host, start, 22, grid)
	ingestAll(serial, evs, recs)
	want := serial.Build()

	for _, shards := range []int{1, 3, 8} {
		sb := NewShardedBuilder(host, start, 22, grid, shards)
		for i := range evs {
			sb.AddRadioEvent(evs[i])
		}
		for i := range recs {
			sb.AddRecord(recs[i])
		}
		got := sb.Build(0)
		if !reflect.DeepEqual(want.Records, got.Records) {
			t.Errorf("shards=%d: sharded build differs from serial", shards)
		}
	}
}

// Merging device-disjoint builders must equal one builder that saw
// both streams.
func TestBuilderMergeDeviceDisjoint(t *testing.T) {
	grid := ukGrid(t)
	evs, recs := synthStreams(40, 20)

	serial := NewBuilder(host, start, 22, grid)
	ingestAll(serial, evs, recs)
	want := serial.Build()

	a := NewBuilder(host, start, 22, grid)
	b := NewBuilder(host, start, 22, grid)
	for i := range evs {
		if evs[i].Device%2 == 0 {
			a.AddRadioEvent(evs[i])
		} else {
			b.AddRadioEvent(evs[i])
		}
	}
	for i := range recs {
		if recs[i].Device%2 == 0 {
			a.AddRecord(recs[i])
		} else {
			b.AddRecord(recs[i])
		}
	}
	a.Merge(b)
	got := a.Build()
	if !reflect.DeepEqual(want.Records, got.Records) {
		t.Error("merged device-disjoint builders differ from a single builder")
	}
}

// Merge on overlapping devices combines field-wise: counts add,
// visited networks union.
func TestBuilderMergeOverlappingDevice(t *testing.T) {
	dev := identity.DeviceID(7)
	at := start.Add(2 * time.Hour)
	a := NewBuilder(host, start, 22, nil)
	b := NewBuilder(host, start, 22, nil)
	a.AddRadioEvent(radio.Event{Device: dev, Time: at, SIM: nlSIM, Interface: radio.IfGb, Result: radio.ResultOK})
	b.AddRadioEvent(radio.Event{Device: dev, Time: at.Add(time.Hour), SIM: nlSIM, Interface: radio.IfGb, Result: radio.ResultFail})
	b.AddRecord(cdrs.Record{Device: dev, Time: at, SIM: nlSIM, Visited: nlSIM, Kind: cdrs.KindData, RAT: radio.RAT2G, Bytes: 42})
	a.Merge(b)
	cat := a.Build()
	if len(cat.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(cat.Records))
	}
	r := cat.Records[0]
	if r.Events != 2 || r.FailedEvents != 1 {
		t.Errorf("events = %d/%d, want 2/1", r.Events, r.FailedEvents)
	}
	if r.Bytes != 42 {
		t.Errorf("bytes = %d, want 42", r.Bytes)
	}
	if len(r.Visited) != 2 {
		t.Errorf("visited = %v, want host and NL", r.Visited)
	}
}

// SummariesWorkers must return identical summaries — ordering, APN
// first-seen order and float accumulations included — at any worker
// count.
func TestSummariesWorkerInvariance(t *testing.T) {
	grid := ukGrid(t)
	evs, recs := synthStreams(80, 40)
	b := NewBuilder(host, start, 22, grid)
	ingestAll(b, evs, recs)
	cat := b.Build()

	want := cat.SummariesWorkers(nil, 1)
	if len(want) != 80 {
		t.Fatalf("summaries = %d, want 80", len(want))
	}
	for _, workers := range []int{2, 5, 0} {
		got := cat.SummariesWorkers(nil, workers)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: summaries differ from serial", workers)
		}
	}
}
