package catalog

import (
	"reflect"
	"testing"
	"time"

	"whereroam/internal/apn"
	"whereroam/internal/cdrs"
	"whereroam/internal/identity"
	"whereroam/internal/radio"
)

// Merging several device-disjoint probe-site feeds — the multi-feed
// deployment Merge exists for — must equal one builder that saw every
// stream, for any number of sites and any merge order.
func TestBuilderMergeManyDisjointFeeds(t *testing.T) {
	grid := ukGrid(t)
	evs, recs := synthStreams(60, 25)

	serial := NewBuilder(host, start, 22, grid)
	ingestAll(serial, evs, recs)
	want := serial.Build()

	for _, sites := range []int{2, 3, 5} {
		feeds := make([]*Builder, sites)
		for i := range feeds {
			feeds[i] = NewBuilder(host, start, 22, grid)
		}
		for i := range evs {
			feeds[int(evs[i].Device)%sites].AddRadioEvent(evs[i])
		}
		for i := range recs {
			feeds[int(recs[i].Device)%sites].AddRecord(recs[i])
		}
		// Merge back-to-front so the accumulating builder is never the
		// one that saw the lowest devices first.
		acc := feeds[sites-1]
		for i := sites - 2; i >= 0; i-- {
			acc.Merge(feeds[i])
		}
		got := acc.Build()
		if !reflect.DeepEqual(want.Records, got.Records) {
			t.Errorf("sites=%d: merged feeds differ from a single builder", sites)
		}
	}
}

// Merge into a fresh builder adopts the other builder's records
// wholesale — the degenerate overlap where every key is new.
func TestBuilderMergeIntoEmpty(t *testing.T) {
	grid := ukGrid(t)
	evs, recs := synthStreams(30, 15)
	full := NewBuilder(host, start, 22, grid)
	ingestAll(full, evs, recs)
	want := full.Build()

	fed := NewBuilder(host, start, 22, grid)
	ingestAll(fed, evs, recs)
	empty := NewBuilder(host, start, 22, grid)
	empty.Merge(fed)
	if got := empty.Build(); !reflect.DeepEqual(want.Records, got.Records) {
		t.Error("merge into an empty builder differs from the fed builder")
	}
}

// Overlapping feeds combine field-wise. This pins each rule of the
// combination: counts and bytes add, RAT flags and visited networks
// union, APNs union in b-then-o first-seen order, an unknown TAC
// backfills from the other feed, and the later last-seen event wins
// the dwell state.
func TestBuilderMergeOverlappingFieldRules(t *testing.T) {
	dev := identity.DeviceID(11)
	at := start.Add(3 * time.Hour)
	mustAPN := func(s string) apn.APN {
		a, err := apn.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	a := NewBuilder(host, start, 22, nil)
	b := NewBuilder(host, start, 22, nil)

	// Feed a: one OK radio event without TAC knowledge, one data xDR.
	a.AddRadioEvent(radio.Event{Device: dev, Time: at, SIM: nlSIM, Interface: radio.IfGb, Result: radio.ResultOK})
	a.AddRecord(cdrs.Record{Device: dev, Time: at, SIM: nlSIM, Visited: host, Kind: cdrs.KindData,
		RAT: radio.RAT2G, Bytes: 100, APN: mustAPN("smip.gb")})
	// Feed b: a failed event carrying the TAC, a voice CDR from a
	// foreign visited network, and a second APN.
	b.AddRadioEvent(radio.Event{Device: dev, Time: at.Add(time.Hour), SIM: nlSIM, TAC: 35600001,
		Interface: radio.IfGb, Result: radio.ResultFail})
	b.AddRecord(cdrs.Record{Device: dev, Time: at.Add(time.Hour), SIM: nlSIM, Visited: nlSIM,
		Kind: cdrs.KindVoice, RAT: radio.RAT2G, Duration: 30 * time.Second})
	b.AddRecord(cdrs.Record{Device: dev, Time: at.Add(2 * time.Hour), SIM: nlSIM, Visited: host,
		Kind: cdrs.KindData, RAT: radio.RAT3G, Bytes: 50, APN: mustAPN("iot.nl")})

	a.Merge(b)
	cat := a.Build()
	if len(cat.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(cat.Records))
	}
	r := cat.Records[0]
	if r.Events != 2 || r.FailedEvents != 1 {
		t.Errorf("events = %d/%d, want 2/1", r.Events, r.FailedEvents)
	}
	if r.Bytes != 150 || r.Calls != 1 || r.CallSeconds != 30 {
		t.Errorf("usage = %d bytes / %d calls / %.0fs, want 150/1/30", r.Bytes, r.Calls, r.CallSeconds)
	}
	if r.TAC != 35600001 {
		t.Errorf("TAC = %d, want backfilled 35600001", r.TAC)
	}
	if len(r.Visited) != 2 {
		t.Errorf("visited = %v, want host and NL", r.Visited)
	}
	if !r.DataRATs.Has(radio.RAT2G) || !r.DataRATs.Has(radio.RAT3G) || !r.VoiceRATs.Has(radio.RAT2G) {
		t.Errorf("RAT sets data=%v voice=%v, want unioned", r.DataRATs, r.VoiceRATs)
	}
	if len(r.APNs) != 2 || r.APNs[0].String() != "smip.gb" || r.APNs[1].String() != "iot.nl" {
		t.Errorf("APNs = %v, want [smip.gb iot.nl] in b-then-o order", r.APNs)
	}
}

// Merge keeps the later last-seen event per device, so trailing-dwell
// flush after a merge attributes the nominal final visit to the
// chronologically last sector across both feeds.
func TestBuilderMergeLastSeenKeepsLater(t *testing.T) {
	grid := ukGrid(t)
	dev := identity.DeviceID(3)
	early := start.Add(2 * time.Hour)
	late := start.Add(5 * time.Hour)

	build := func(aFirst bool) *Catalog {
		a := NewBuilder(host, start, 22, grid)
		b := NewBuilder(host, start, 22, grid)
		a.AddRadioEvent(radio.Event{Device: dev, Time: early, SIM: nlSIM, Sector: 1, Interface: radio.IfGb, Result: radio.ResultOK})
		b.AddRadioEvent(radio.Event{Device: dev, Time: late, SIM: nlSIM, Sector: 700, Interface: radio.IfGb, Result: radio.ResultOK})
		if aFirst {
			a.Merge(b)
			return a.Build()
		}
		b.Merge(a)
		return b.Build()
	}
	want := build(true)
	got := build(false)
	if len(want.Records) != 1 || len(got.Records) != 1 {
		t.Fatalf("records = %d/%d, want 1/1", len(want.Records), len(got.Records))
	}
	// Whichever direction the merge ran, the surviving last-seen event
	// is the later one, so the flushed centroid must agree.
	if want.Records[0].Centroid != got.Records[0].Centroid {
		t.Errorf("merge direction changed the flushed centroid: %v vs %v",
			want.Records[0].Centroid, got.Records[0].Centroid)
	}
	if !want.Records[0].HasLocation {
		t.Error("merged record lost its location")
	}
}

// Overlapping feeds that cover disjoint day ranges of the same device
// merge per (device, day): no cross-day bleeding, every day present.
func TestBuilderMergeOverlappingDeviceDisjointDays(t *testing.T) {
	dev := identity.DeviceID(9)
	a := NewBuilder(host, start, 22, nil)
	b := NewBuilder(host, start, 22, nil)
	for day := 0; day < 4; day++ {
		ev := radio.Event{Device: dev, Time: start.Add(time.Duration(day*24+1) * time.Hour),
			SIM: nlSIM, Interface: radio.IfGb, Result: radio.ResultOK}
		if day < 2 {
			a.AddRadioEvent(ev)
		} else {
			b.AddRadioEvent(ev)
		}
	}
	a.Merge(b)
	cat := a.Build()
	if len(cat.Records) != 4 {
		t.Fatalf("records = %d, want 4 device-days", len(cat.Records))
	}
	for i, r := range cat.Records {
		if r.Day != i || r.Events != 1 {
			t.Errorf("record %d: day %d events %d, want day %d events 1", i, r.Day, r.Events, i)
		}
	}
}
