package catalog

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"whereroam/internal/apn"
	"whereroam/internal/cdrs"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

// Merging several device-disjoint probe-site feeds — the multi-feed
// deployment Merge exists for — must equal one builder that saw every
// stream, for any number of sites and any merge order.
func TestBuilderMergeManyDisjointFeeds(t *testing.T) {
	grid := ukGrid(t)
	evs, recs := synthStreams(60, 25)

	serial := NewBuilder(host, start, 22, grid)
	ingestAll(serial, evs, recs)
	want := serial.Build()

	for _, sites := range []int{2, 3, 5} {
		feeds := make([]*Builder, sites)
		for i := range feeds {
			feeds[i] = NewBuilder(host, start, 22, grid)
		}
		for i := range evs {
			feeds[int(evs[i].Device)%sites].AddRadioEvent(evs[i])
		}
		for i := range recs {
			feeds[int(recs[i].Device)%sites].AddRecord(recs[i])
		}
		// Merge back-to-front so the accumulating builder is never the
		// one that saw the lowest devices first.
		acc := feeds[sites-1]
		for i := sites - 2; i >= 0; i-- {
			acc.Merge(feeds[i])
		}
		got := acc.Build()
		if !reflect.DeepEqual(want.Records, got.Records) {
			t.Errorf("sites=%d: merged feeds differ from a single builder", sites)
		}
	}
}

// Merge into a fresh builder adopts the other builder's records
// wholesale — the degenerate overlap where every key is new.
func TestBuilderMergeIntoEmpty(t *testing.T) {
	grid := ukGrid(t)
	evs, recs := synthStreams(30, 15)
	full := NewBuilder(host, start, 22, grid)
	ingestAll(full, evs, recs)
	want := full.Build()

	fed := NewBuilder(host, start, 22, grid)
	ingestAll(fed, evs, recs)
	empty := NewBuilder(host, start, 22, grid)
	empty.Merge(fed)
	if got := empty.Build(); !reflect.DeepEqual(want.Records, got.Records) {
		t.Error("merge into an empty builder differs from the fed builder")
	}
}

// Overlapping feeds combine field-wise. This pins each rule of the
// combination: counts and bytes add, RAT flags and visited networks
// union, APNs union in b-then-o first-seen order, an unknown TAC
// backfills from the other feed, and the later last-seen event wins
// the dwell state.
func TestBuilderMergeOverlappingFieldRules(t *testing.T) {
	dev := identity.DeviceID(11)
	at := start.Add(3 * time.Hour)
	mustAPN := func(s string) apn.APN {
		a, err := apn.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	a := NewBuilder(host, start, 22, nil)
	b := NewBuilder(host, start, 22, nil)

	// Feed a: one OK radio event without TAC knowledge, one data xDR.
	a.AddRadioEvent(radio.Event{Device: dev, Time: at, SIM: nlSIM, Interface: radio.IfGb, Result: radio.ResultOK})
	a.AddRecord(cdrs.Record{Device: dev, Time: at, SIM: nlSIM, Visited: host, Kind: cdrs.KindData,
		RAT: radio.RAT2G, Bytes: 100, APN: mustAPN("smip.gb")})
	// Feed b: a failed event carrying the TAC, a voice CDR from a
	// foreign visited network, and a second APN.
	b.AddRadioEvent(radio.Event{Device: dev, Time: at.Add(time.Hour), SIM: nlSIM, TAC: 35600001,
		Interface: radio.IfGb, Result: radio.ResultFail})
	b.AddRecord(cdrs.Record{Device: dev, Time: at.Add(time.Hour), SIM: nlSIM, Visited: nlSIM,
		Kind: cdrs.KindVoice, RAT: radio.RAT2G, Duration: 30 * time.Second})
	b.AddRecord(cdrs.Record{Device: dev, Time: at.Add(2 * time.Hour), SIM: nlSIM, Visited: host,
		Kind: cdrs.KindData, RAT: radio.RAT3G, Bytes: 50, APN: mustAPN("iot.nl")})

	a.Merge(b)
	cat := a.Build()
	if len(cat.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(cat.Records))
	}
	r := cat.Records[0]
	if r.Events != 2 || r.FailedEvents != 1 {
		t.Errorf("events = %d/%d, want 2/1", r.Events, r.FailedEvents)
	}
	if r.Bytes != 150 || r.Calls != 1 || r.CallSeconds != 30 {
		t.Errorf("usage = %d bytes / %d calls / %.0fs, want 150/1/30", r.Bytes, r.Calls, r.CallSeconds)
	}
	if r.TAC != 35600001 {
		t.Errorf("TAC = %d, want backfilled 35600001", r.TAC)
	}
	if len(r.Visited) != 2 {
		t.Errorf("visited = %v, want host and NL", r.Visited)
	}
	if !r.DataRATs.Has(radio.RAT2G) || !r.DataRATs.Has(radio.RAT3G) || !r.VoiceRATs.Has(radio.RAT2G) {
		t.Errorf("RAT sets data=%v voice=%v, want unioned", r.DataRATs, r.VoiceRATs)
	}
	if len(r.APNs) != 2 || r.APNs[0].String() != "smip.gb" || r.APNs[1].String() != "iot.nl" {
		t.Errorf("APNs = %v, want [smip.gb iot.nl] in b-then-o order", r.APNs)
	}
}

// Merge keeps the later last-seen event per device, so trailing-dwell
// flush after a merge attributes the nominal final visit to the
// chronologically last sector across both feeds.
func TestBuilderMergeLastSeenKeepsLater(t *testing.T) {
	grid := ukGrid(t)
	dev := identity.DeviceID(3)
	early := start.Add(2 * time.Hour)
	late := start.Add(5 * time.Hour)

	build := func(aFirst bool) *Catalog {
		a := NewBuilder(host, start, 22, grid)
		b := NewBuilder(host, start, 22, grid)
		a.AddRadioEvent(radio.Event{Device: dev, Time: early, SIM: nlSIM, Sector: 1, Interface: radio.IfGb, Result: radio.ResultOK})
		b.AddRadioEvent(radio.Event{Device: dev, Time: late, SIM: nlSIM, Sector: 700, Interface: radio.IfGb, Result: radio.ResultOK})
		if aFirst {
			a.Merge(b)
			return a.Build()
		}
		b.Merge(a)
		return b.Build()
	}
	want := build(true)
	got := build(false)
	if len(want.Records) != 1 || len(got.Records) != 1 {
		t.Fatalf("records = %d/%d, want 1/1", len(want.Records), len(got.Records))
	}
	// Whichever direction the merge ran, the surviving last-seen event
	// is the later one, so the flushed centroid must agree.
	if want.Records[0].Centroid != got.Records[0].Centroid {
		t.Errorf("merge direction changed the flushed centroid: %v vs %v",
			want.Records[0].Centroid, got.Records[0].Centroid)
	}
	if !want.Records[0].HasLocation {
		t.Error("merged record lost its location")
	}
}

// Overlapping feeds that cover disjoint day ranges of the same device
// merge per (device, day): no cross-day bleeding, every day present.
func TestBuilderMergeOverlappingDeviceDisjointDays(t *testing.T) {
	dev := identity.DeviceID(9)
	a := NewBuilder(host, start, 22, nil)
	b := NewBuilder(host, start, 22, nil)
	for day := 0; day < 4; day++ {
		ev := radio.Event{Device: dev, Time: start.Add(time.Duration(day*24+1) * time.Hour),
			SIM: nlSIM, Interface: radio.IfGb, Result: radio.ResultOK}
		if day < 2 {
			a.AddRadioEvent(ev)
		} else {
			b.AddRadioEvent(ev)
		}
	}
	a.Merge(b)
	cat := a.Build()
	if len(cat.Records) != 4 {
		t.Fatalf("records = %d, want 4 device-days", len(cat.Records))
	}
	for i, r := range cat.Records {
		if r.Day != i || r.Events != 1 {
			t.Errorf("record %d: day %d events %d, want day %d events 1", i, r.Day, r.Events, i)
		}
	}
}

// federationFeeds builds n builders that all observed the same device
// on the same day with conflicting partial views — the federation
// situation where several probe sites each capture a slice of a
// roaming device's activity. Feed i contributes i+1 OK radio events,
// 10*(i+1) bytes on its own APN, and a distinct foreign visited
// network; only the middle feed knows the TAC.
func federationFeeds(t *testing.T, n int) []*Builder {
	t.Helper()
	at := start.Add(6 * time.Hour)
	feeds := make([]*Builder, n)
	for i := range feeds {
		b := NewBuilder(host, start, 22, nil)
		dev := identity.DeviceID(77)
		var tac identity.TAC
		if i == n/2 {
			tac = 35600042
		}
		for e := 0; e <= i; e++ {
			b.AddRadioEvent(radio.Event{Device: dev, Time: at.Add(time.Duration(e) * time.Minute),
				SIM: nlSIM, TAC: tac, Interface: radio.IfGb, Result: radio.ResultOK})
		}
		a, err := apn.Parse(fmt.Sprintf("feed%d.example", i))
		if err != nil {
			t.Fatal(err)
		}
		visited := mccmnc.PLMN{MCC: 262, MNC: uint16(i + 1), MNCLen: 2}
		b.AddRecord(cdrs.Record{Device: dev, Time: at, SIM: nlSIM, Visited: visited,
			Kind: cdrs.KindData, RAT: radio.RAT2G, Bytes: uint64(10 * (i + 1)), APN: a})
		feeds[i] = b
	}
	return feeds
}

// Merging 3+ feeds of the same device must apply every field rule
// across the whole chain: counts and bytes accumulate over all feeds,
// the single TAC-bearing feed backfills the rest, and visited
// networks and APNs union with first-seen order following the merge
// chain.
func TestBuilderMergeSameDeviceManyFeeds(t *testing.T) {
	for _, n := range []int{3, 5} {
		feeds := federationFeeds(t, n)
		acc := feeds[0]
		for _, f := range feeds[1:] {
			acc.Merge(f)
		}
		cat := acc.Build()
		if len(cat.Records) != 1 {
			t.Fatalf("n=%d: records = %d, want 1", n, len(cat.Records))
		}
		r := cat.Records[0]
		wantEvents := n * (n + 1) / 2 // 1+2+...+n
		if r.Events != wantEvents {
			t.Errorf("n=%d: events = %d, want %d", n, r.Events, wantEvents)
		}
		wantBytes := uint64(10 * n * (n + 1) / 2)
		if r.Bytes != wantBytes {
			t.Errorf("n=%d: bytes = %d, want %d", n, r.Bytes, wantBytes)
		}
		if r.TAC != 35600042 {
			t.Errorf("n=%d: TAC = %d, want backfilled from the one knowing feed", n, r.TAC)
		}
		// host (radio) + one foreign network per feed.
		if len(r.Visited) != n+1 {
			t.Errorf("n=%d: visited = %v, want %d networks", n, r.Visited, n+1)
		}
		if len(r.APNs) != n {
			t.Errorf("n=%d: APNs = %v, want %d", n, r.APNs, n)
		}
		for i, a := range r.APNs {
			if want := fmt.Sprintf("feed%d.example", i); a.String() != want {
				t.Errorf("n=%d: APN[%d] = %s, want %s (merge-chain first-seen order)", n, i, a, want)
			}
		}
	}
}

// The aggregate fields of a same-device merge must not depend on the
// merge order: every permutation of the feed chain yields the same
// counts, usage, flags, TAC and membership sets (only the recorded
// first-seen *order* of Visited/APNs follows the chain).
func TestBuilderMergeSameDeviceOrderIndependent(t *testing.T) {
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	var want *DailyRecord
	for _, perm := range perms {
		feeds := federationFeeds(t, 3)
		acc := feeds[perm[0]]
		acc.Merge(feeds[perm[1]])
		acc.Merge(feeds[perm[2]])
		cat := acc.Build()
		if len(cat.Records) != 1 {
			t.Fatalf("perm %v: records = %d, want 1", perm, len(cat.Records))
		}
		r := cat.Records[0]
		sort.Slice(r.Visited, func(i, j int) bool { return r.Visited[i].Concat() < r.Visited[j].Concat() })
		sort.Slice(r.APNs, func(i, j int) bool { return r.APNs[i].String() < r.APNs[j].String() })
		if want == nil {
			want = &r
			continue
		}
		if !reflect.DeepEqual(*want, r) {
			t.Errorf("perm %v: merged record differs:\nwant %+v\ngot  %+v", perm, *want, r)
		}
	}
}
