package catalog

import (
	"testing"
	"time"

	"whereroam/internal/apn"
	"whereroam/internal/cdrs"
	"whereroam/internal/geo"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
)

var (
	host  = mccmnc.MustParse("23410")
	nlSIM = mccmnc.MustParse("20404")
	start = time.Date(2019, 4, 5, 0, 0, 0, 0, time.UTC)
)

func ukGrid(t testing.TB) *radio.Grid {
	t.Helper()
	c, _ := mccmnc.CountryByISO("GB")
	return radio.NewGrid(c, 30, 30, radio.DefaultSpacingDeg)
}

func TestBuilderRadioAggregation(t *testing.T) {
	b := NewBuilder(host, start, 22, ukGrid(t))
	dev := identity.DeviceID(0xaa)
	for h := 0; h < 10; h++ {
		b.AddRadioEvent(radio.Event{
			Device: dev, Time: start.Add(time.Duration(h) * time.Hour),
			SIM: nlSIM, TAC: 35600000, Sector: 5, Interface: radio.IfGb,
			Result: radio.ResultOK,
		})
	}
	b.AddRadioEvent(radio.Event{
		Device: dev, Time: start.Add(11 * time.Hour),
		SIM: nlSIM, TAC: 35600000, Sector: 5, Interface: radio.IfGb,
		Result: radio.ResultFail,
	})
	cat := b.Build()
	if len(cat.Records) != 1 {
		t.Fatalf("records = %d, want 1 (single device-day)", len(cat.Records))
	}
	r := cat.Records[0]
	if r.Events != 11 || r.FailedEvents != 1 {
		t.Errorf("events = %d/%d, want 11/1", r.Events, r.FailedEvents)
	}
	if !r.RadioFlags.Only(radio.RAT2G) {
		t.Errorf("radio flags = %v, want 2G only", r.RadioFlags)
	}
	if !r.HasLocation {
		t.Fatal("stationary device should have a location")
	}
	if r.GyrationKm > 0.001 {
		t.Errorf("single-sector gyration = %f, want ~0", r.GyrationKm)
	}
	if len(r.Visited) != 1 || r.Visited[0] != host {
		t.Errorf("visited = %v", r.Visited)
	}
}

func TestBuilderFailedEventsDontSetFlags(t *testing.T) {
	b := NewBuilder(host, start, 22, nil)
	dev := identity.DeviceID(0xbb)
	b.AddRadioEvent(radio.Event{
		Device: dev, Time: start, SIM: nlSIM, Interface: radio.IfS1,
		Result: radio.ResultFail,
	})
	cat := b.Build()
	if got := cat.Records[0].RadioFlags; !got.Empty() {
		t.Errorf("failed-only device has radio flags %v", got)
	}
}

func TestBuilderCDRAggregation(t *testing.T) {
	b := NewBuilder(host, start, 22, nil)
	dev := identity.DeviceID(0xcc)
	a := apn.MustParse("smhp.centricaplc.com.mnc004.mcc204.gprs")
	for i := 0; i < 3; i++ {
		b.AddRecord(cdrs.Record{
			Device: dev, Time: start.Add(time.Duration(i) * time.Hour),
			SIM: nlSIM, Visited: host, Kind: cdrs.KindData,
			RAT: radio.RAT2G, Bytes: 1000, APN: a,
		})
	}
	b.AddRecord(cdrs.Record{
		Device: dev, Time: start.Add(4 * time.Hour),
		SIM: nlSIM, Visited: host, Kind: cdrs.KindVoice,
		RAT: radio.RAT2G, Duration: 30 * time.Second,
	})
	cat := b.Build()
	r := cat.Records[0]
	if r.Bytes != 3000 {
		t.Errorf("bytes = %d", r.Bytes)
	}
	if r.Calls != 1 || r.CallSeconds != 30 {
		t.Errorf("calls = %d/%.0fs", r.Calls, r.CallSeconds)
	}
	if len(r.APNs) != 1 {
		t.Errorf("APNs = %v (should dedup)", r.APNs)
	}
	if !r.DataRATs.Only(radio.RAT2G) || !r.VoiceRATs.Only(radio.RAT2G) {
		t.Errorf("service RATs = %v/%v", r.DataRATs, r.VoiceRATs)
	}
}

func TestBuilderDayBoundaries(t *testing.T) {
	b := NewBuilder(host, start, 2, nil)
	dev := identity.DeviceID(0xdd)
	times := []time.Time{
		start.Add(-time.Hour),     // before window: dropped
		start,                     // day 0
		start.Add(25 * time.Hour), // day 1
		start.Add(49 * time.Hour), // past window: dropped
	}
	for _, ts := range times {
		b.AddRadioEvent(radio.Event{Device: dev, Time: ts, SIM: nlSIM, Interface: radio.IfGb, Result: radio.ResultOK})
	}
	cat := b.Build()
	if len(cat.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(cat.Records))
	}
	if cat.Records[0].Day != 0 || cat.Records[1].Day != 1 {
		t.Errorf("days = %d,%d", cat.Records[0].Day, cat.Records[1].Day)
	}
}

func TestBuilderMobilityFromDwell(t *testing.T) {
	grid := ukGrid(t)
	b := NewBuilder(host, start, 22, grid)
	dev := identity.DeviceID(0xee)
	// A device alternating between two far-apart sectors with equal
	// dwell should show gyration about half the sector distance.
	s1, _ := grid.Sector(0)
	s2, _ := grid.Sector(radio.SectorID(grid.Len() - 1))
	for h := 0; h < 12; h++ {
		sec := s1.ID
		if h%2 == 1 {
			sec = s2.ID
		}
		b.AddRadioEvent(radio.Event{
			Device: dev, Time: start.Add(time.Duration(h) * time.Hour),
			SIM: nlSIM, Sector: sec, Interface: radio.IfGb, Result: radio.ResultOK,
		})
	}
	cat := b.Build()
	r := cat.Records[0]
	want := geo.DistanceKm(s1.At, s2.At) / 2
	if !r.HasLocation || r.GyrationKm < want*0.7 || r.GyrationKm > want*1.3 {
		t.Errorf("gyration = %.1f km, want ~%.1f", r.GyrationKm, want)
	}
}

func TestSummaries(t *testing.T) {
	db := gsma.Synthesize(1)
	b := NewBuilder(host, start, 22, nil)
	dev := identity.DeviceID(0xff)
	tac := identity.TAC(35600000) // in the M2M block of the synthetic catalog
	for d := 0; d < 5; d++ {
		b.AddRadioEvent(radio.Event{
			Device: dev, Time: start.Add(time.Duration(d) * 24 * time.Hour),
			SIM: nlSIM, TAC: tac, Interface: radio.IfGb, Result: radio.ResultOK,
		})
		b.AddRecord(cdrs.Record{
			Device: dev, Time: start.Add(time.Duration(d)*24*time.Hour + time.Hour),
			SIM: nlSIM, Visited: host, Kind: cdrs.KindData, RAT: radio.RAT2G,
			Bytes: 500, APN: apn.MustParse("meter.rwe-npower.co.uk"),
		})
	}
	cat := b.Build()
	sums := cat.Summaries(db)
	if len(sums) != 1 {
		t.Fatalf("summaries = %d", len(sums))
	}
	s := sums[0]
	if s.ActiveDays != 5 || s.FirstDay != 0 || s.LastDay != 4 {
		t.Errorf("activity = %d days [%d,%d]", s.ActiveDays, s.FirstDay, s.LastDay)
	}
	if s.Bytes != 2500 || s.Events != 5 {
		t.Errorf("bytes=%d events=%d", s.Bytes, s.Events)
	}
	if !s.InfoOK {
		t.Fatal("TAC should resolve against the synthetic GSMA catalog")
	}
	if !s.UsesData() || s.UsesVoice() {
		t.Error("service flags wrong")
	}
	if len(s.APNs) != 1 {
		t.Errorf("APNs = %v", s.APNs)
	}
}

func TestSummariesUnknownTAC(t *testing.T) {
	db := gsma.Synthesize(1)
	b := NewBuilder(host, start, 22, nil)
	b.AddRadioEvent(radio.Event{
		Device: identity.DeviceID(1), Time: start, SIM: nlSIM,
		TAC: 99999999, Interface: radio.IfGb, Result: radio.ResultOK,
	})
	sums := b.Build().Summaries(db)
	if sums[0].InfoOK {
		t.Error("unknown TAC should not resolve")
	}
}

func TestSummariesSortedAndMultiDevice(t *testing.T) {
	b := NewBuilder(host, start, 22, nil)
	for i := 10; i > 0; i-- {
		b.AddRadioEvent(radio.Event{
			Device: identity.DeviceID(i), Time: start.Add(time.Hour),
			SIM: nlSIM, Interface: radio.IfGb, Result: radio.ResultOK,
		})
	}
	sums := b.Build().Summaries(nil)
	if len(sums) != 10 {
		t.Fatalf("summaries = %d", len(sums))
	}
	for i := 1; i < len(sums); i++ {
		if sums[i-1].Device >= sums[i].Device {
			t.Fatal("summaries must be sorted by device ID")
		}
	}
}

func TestDailyRecordDedup(t *testing.T) {
	var r DailyRecord
	a := apn.MustParse("internet")
	r.AddAPN(a)
	r.AddAPN(a)
	r.AddAPN(apn.APN{}) // zero APN must be ignored
	if len(r.APNs) != 1 {
		t.Errorf("APNs = %v", r.APNs)
	}
	r.AddVisited(host)
	r.AddVisited(host)
	if len(r.Visited) != 1 {
		t.Errorf("Visited = %v", r.Visited)
	}
}

func BenchmarkBuilderIngest(b *testing.B) {
	grid := ukGrid(b)
	bl := NewBuilder(host, start, 22, grid)
	ev := radio.Event{
		Device: identity.DeviceID(1), SIM: nlSIM, Sector: 12,
		Interface: radio.IfGb, Result: radio.ResultOK,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Time = start.Add(time.Duration(i) * time.Second)
		ev.Device = identity.DeviceID(i % 1000)
		bl.AddRadioEvent(ev)
	}
}
