// Package gsma models the commercial GSMA TAC device catalog the
// paper joins against (§4.1 "Device properties"): a mapping from the
// 8-digit Type Allocation Code to vendor, model, operating system,
// radio capability and a coarse device-type label.
//
// The real catalog is licensed; this package synthesizes one with the
// same shape, including the properties the paper leans on:
//
//   - scale: ~2,400 vendors and ~25,000 models (the paper observes
//     2,436 and 24,991 across 22 days), far too many for the manual
//     classification of prior work;
//   - concentration: Gemalto, Telit and Sierra Wireless dominate the
//     M2M module space (≈75% of inbound-roaming devices);
//   - ambiguity: non-phone devices carry generic "Modem"/"Module"
//     labels that do not by themselves imply an IoT application.
package gsma

import (
	"fmt"
	"sort"
	"strconv"

	"whereroam/internal/identity"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
)

// DeviceType is the coarse GSMA device-type label.
type DeviceType uint8

// GSMA device-type labels. Only Smartphone and FeaturePhone are
// directly actionable for classification; Modem/Module are the
// ambiguous labels §4.3 calls out.
const (
	TypeUnknown DeviceType = iota
	TypeSmartphone
	TypeFeaturePhone
	TypeModem
	TypeModule
	TypeTablet
	TypeWearable
	TypeVehicle
	TypeRouter
)

var typeNames = [...]string{
	"Unknown", "Smartphone", "Feature Phone", "Modem", "Module",
	"Tablet", "Wearable", "Vehicle", "WLAN Router",
}

func (t DeviceType) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "type(" + strconv.Itoa(int(t)) + ")"
}

// OS identifies the device operating system as catalogued by GSMA.
// The paper treats Android/iOS/BlackBerry/Windows Mobile as "major
// smartphone OS" for the smart class.
type OS string

// Operating systems appearing in the catalog.
const (
	OSAndroid     OS = "Android"
	OSiOS         OS = "iOS"
	OSBlackBerry  OS = "BlackBerry"
	OSWindows     OS = "Windows Mobile"
	OSKaiOS       OS = "KaiOS"
	OSRTOS        OS = "RTOS"
	OSLinux       OS = "Linux"
	OSProprietary OS = "Proprietary"
	OSNone        OS = ""
)

// IsSmartphoneOS reports whether the OS is one of the four the paper
// accepts as evidence for the smart class.
func (o OS) IsSmartphoneOS() bool {
	switch o {
	case OSAndroid, OSiOS, OSBlackBerry, OSWindows:
		return true
	}
	return false
}

// DeviceInfo is one catalog row.
type DeviceInfo struct {
	TAC    identity.TAC
	Vendor string
	Model  string
	OS     OS
	Type   DeviceType
	Bands  radio.RATSet // radio capability of the model
}

// Archetype selects a market segment when drawing devices from the
// catalog. It is generator-side knowledge: the catalog rows themselves
// carry only the ambiguous GSMA labels.
type Archetype uint8

// Market segments used by the population generators.
const (
	ArchSmartphone Archetype = iota
	ArchFeaturePhone
	ArchM2MModule
	ArchVehicle
	ArchWearable
	archCount
)

var archNames = [...]string{"smartphone", "featurephone", "m2mmodule", "vehicle", "wearable"}

func (a Archetype) String() string {
	if int(a) < len(archNames) {
		return archNames[a]
	}
	return "arch(" + strconv.Itoa(int(a)) + ")"
}

// DB is an immutable synthesized catalog. All lookups are safe for
// concurrent use.
type DB struct {
	byTAC   map[identity.TAC]DeviceInfo
	byArch  [archCount][]DeviceInfo // models per archetype, popularity-ordered
	pick    [archCount]*rng.Weighted
	vendors map[string]bool
}

// Lookup returns the catalog row for the TAC.
func (db *DB) Lookup(tac identity.TAC) (DeviceInfo, bool) {
	di, ok := db.byTAC[tac]
	return di, ok
}

// Vendors returns the number of distinct vendors in the catalog.
func (db *DB) Vendors() int { return len(db.vendors) }

// Models returns the number of distinct models (TACs) in the catalog.
func (db *DB) Models() int { return len(db.byTAC) }

// Pick draws a model of the archetype with the market's popularity
// skew (Zipf over models, with the M2M module segment additionally
// concentrated on its three dominant vendors). src provides the
// randomness so callers control determinism.
func (db *DB) Pick(src *rng.Source, a Archetype) DeviceInfo {
	models := db.byArch[a]
	return models[db.pick[a].DrawFrom(src)]
}

// PickFromVendors draws a model of the archetype restricted to the
// listed vendors, preserving relative popularity. It panics if no
// model matches, which indicates generator misconfiguration.
func (db *DB) PickFromVendors(src *rng.Source, a Archetype, vendors ...string) DeviceInfo {
	allowed := map[string]bool{}
	for _, v := range vendors {
		allowed[v] = true
	}
	var filtered []DeviceInfo
	var weights []float64
	for rank, di := range db.byArch[a] {
		if allowed[di.Vendor] {
			filtered = append(filtered, di)
			weights = append(weights, 1/float64(rank+1))
		}
	}
	if len(filtered) == 0 {
		panic(fmt.Sprintf("gsma: no %v models from vendors %v", a, vendors))
	}
	return filtered[rng.NewWeighted(src, weights).DrawFrom(src)]
}

// PickWithBands draws a model of the archetype whose radio capability
// includes every RAT in want. Panics if no model qualifies.
func (db *DB) PickWithBands(src *rng.Source, a Archetype, want radio.RATSet) DeviceInfo {
	// Bounded rejection sampling first (cheap, usually succeeds)...
	for i := 0; i < 32; i++ {
		di := db.Pick(src, a)
		if di.Bands&want == want {
			return di
		}
	}
	// ...then exhaustive fallback.
	for _, di := range db.byArch[a] {
		if di.Bands&want == want {
			return di
		}
	}
	panic(fmt.Sprintf("gsma: no %v model with bands %v", a, want))
}

// ModelsOf returns the catalog rows of one vendor, sorted by TAC.
func (db *DB) ModelsOf(vendor string) []DeviceInfo {
	var out []DeviceInfo
	for _, di := range db.byTAC {
		if di.Vendor == vendor {
			out = append(out, di)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TAC < out[j].TAC })
	return out
}
