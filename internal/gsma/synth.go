package gsma

import (
	"fmt"

	"whereroam/internal/identity"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
)

// segment describes how one archetype's corner of the catalog is
// synthesized.
type segment struct {
	arch        Archetype
	named       []string // named vendors, most popular first
	tailVendors int      // synthetic long-tail vendors
	models      int      // total models in the segment
	tacBase     uint32   // first TAC of the segment's allocation block
	osFor       func(src *rng.Source, vendorRank int) OS
	typeFor     func(src *rng.Source) DeviceType
	bandsFor    func(src *rng.Source) radio.RATSet
	// vendorShare, when non-nil, fixes the total popularity mass of
	// the first len(vendorShare) named vendors; the remaining mass is
	// spread Zipf-like over all other models. Used to pin
	// Gemalto/Telit/Sierra to the ≈75% share the paper reports.
	vendorShare []float64
}

// Synthesize builds the standard catalog. The composition follows the
// scale the paper reports: ~2,400 vendors, ~25,000 models.
func Synthesize(seed uint64) *DB {
	src := rng.New(seed).Split("gsma")
	segments := []segment{
		{
			arch: ArchSmartphone,
			named: []string{
				"Samsung", "Apple", "Huawei", "Xiaomi", "LG", "Sony", "Motorola",
				"OnePlus", "Oppo", "Vivo", "Nokia Mobile", "Google", "HTC", "Honor",
				"Realme", "Asus", "Lenovo", "BlackBerry Ltd", "Wiko", "Fairphone",
			},
			tailVendors: 380,
			models:      12000,
			tacBase:     35200000,
			osFor: func(src *rng.Source, vendorRank int) OS {
				switch {
				case vendorRank == 1: // Apple
					return OSiOS
				case vendorRank == 17: // BlackBerry Ltd
					return OSBlackBerry
				default:
					if src.Bool(0.015) {
						return OSWindows
					}
					return OSAndroid
				}
			},
			typeFor: func(src *rng.Source) DeviceType {
				if src.Bool(0.06) {
					return TypeTablet
				}
				return TypeSmartphone
			},
			bandsFor: func(src *rng.Source) radio.RATSet {
				if src.Bool(0.85) {
					return radio.Has2G | radio.Has3G | radio.Has4G
				}
				return radio.Has2G | radio.Has3G
			},
		},
		{
			arch: ArchFeaturePhone,
			named: []string{
				"Nokia", "Alcatel", "ZTE", "Samsung Basic", "Doro", "Emporia",
				"Kyocera", "Philips", "Energizer", "CAT",
			},
			tailVendors: 290,
			models:      4000,
			tacBase:     35400000,
			osFor: func(src *rng.Source, vendorRank int) OS {
				if src.Bool(0.2) {
					return OSKaiOS
				}
				return OSProprietary
			},
			typeFor: func(src *rng.Source) DeviceType { return TypeFeaturePhone },
			bandsFor: func(src *rng.Source) radio.RATSet {
				if src.Bool(0.55) {
					return radio.Has2G
				}
				return radio.Has2G | radio.Has3G
			},
		},
		{
			arch: ArchM2MModule,
			named: []string{
				"Gemalto", "Telit", "Sierra Wireless", "Quectel", "SIMCom",
				"u-blox", "Fibocom", "Cinterion", "Neoway", "MultiTech",
				"Digi International", "Nimbelink", "Thales IoT", "Sequans",
				"Murata", "Wistron NeWeb", "LongSung", "Meiglink", "Cavli", "GosuncnWelink",
			},
			// Pin the three dominant vendors to their combined ≈75%
			// share of the M2M market (§4.3).
			vendorShare: []float64{0.34, 0.24, 0.17},
			tailVendors: 1380,
			models:      7000,
			tacBase:     35600000,
			osFor: func(src *rng.Source, vendorRank int) OS {
				switch {
				case src.Bool(0.5):
					return OSRTOS
				case src.Bool(0.5):
					return OSLinux
				default:
					return OSNone
				}
			},
			typeFor: func(src *rng.Source) DeviceType {
				if src.Bool(0.55) {
					return TypeModule
				}
				if src.Bool(0.8) {
					return TypeModem
				}
				return TypeRouter
			},
			bandsFor: func(src *rng.Source) radio.RATSet {
				// The installed M2M base is 2G heavy (§6.1: 77.4% of
				// M2M devices are active on 2G only).
				switch {
				case src.Bool(0.55):
					return radio.Has2G
				case src.Bool(0.5):
					return radio.Has2G | radio.Has3G
				default:
					return radio.Has2G | radio.Has3G | radio.Has4G
				}
			},
		},
		{
			arch: ArchVehicle,
			named: []string{
				"Scania Telematics", "BMW Connected", "Audi Connect", "Daimler TSS",
				"Volvo Cars", "Tesla", "Renault Connect", "PSA Groupe", "Ford Telematics",
				"Toyota Connected", "Continental AG", "Bosch Automotive", "Harman",
				"LG Vehicle", "Panasonic Automotive", "Valeo",
			},
			tailVendors: 20,
			models:      1000,
			tacBase:     35800000,
			osFor: func(src *rng.Source, vendorRank int) OS {
				if src.Bool(0.6) {
					return OSLinux
				}
				return OSRTOS
			},
			typeFor: func(src *rng.Source) DeviceType {
				if src.Bool(0.7) {
					return TypeVehicle
				}
				return TypeModule
			},
			bandsFor: func(src *rng.Source) radio.RATSet {
				// Connected cars need seamless wide-area coverage and
				// ship multi-RAT modems (§3.2 on the DE HMNO).
				if src.Bool(0.8) {
					return radio.Has2G | radio.Has3G | radio.Has4G
				}
				return radio.Has2G | radio.Has3G
			},
		},
		{
			arch: ArchWearable,
			named: []string{
				"Apple Watch", "Samsung Gear", "Fitbit", "Garmin", "Huami",
				"Fossil", "TicWatch", "Withings", "Polar", "Suunto",
			},
			tailVendors: 290,
			models:      1000,
			tacBase:     35900000,
			osFor: func(src *rng.Source, vendorRank int) OS {
				if src.Bool(0.5) {
					return OSRTOS
				}
				return OSProprietary
			},
			typeFor: func(src *rng.Source) DeviceType { return TypeWearable },
			bandsFor: func(src *rng.Source) radio.RATSet {
				if src.Bool(0.7) {
					return radio.Has2G | radio.Has3G | radio.Has4G
				}
				return radio.Has2G | radio.Has3G
			},
		},
	}

	db := &DB{
		byTAC:   make(map[identity.TAC]DeviceInfo, 26000),
		vendors: map[string]bool{},
	}
	for _, seg := range segments {
		models, weights := synthSegment(db, src.Split(seg.arch.String()), seg)
		db.byArch[seg.arch] = models
		db.pick[seg.arch] = rng.NewWeighted(src.Split("pick-"+seg.arch.String()), weights)
	}
	return db
}

// synthSegment generates one archetype's models plus their popularity
// weights (in the order of the returned slice).
func synthSegment(db *DB, src *rng.Source, seg segment) ([]DeviceInfo, []float64) {
	vendors := make([]string, 0, len(seg.named)+seg.tailVendors)
	vendors = append(vendors, seg.named...)
	for i := 0; i < seg.tailVendors; i++ {
		vendors = append(vendors, fmt.Sprintf("%s-oem-%04d", seg.arch, i))
	}
	// Split the model budget: vendors earlier in the list get more
	// models (popular vendors maintain bigger portfolios). Every
	// vendor gets at least one model.
	counts := make([]int, len(vendors))
	remaining := seg.models - len(vendors)
	if remaining < 0 {
		panic("gsma: segment has fewer models than vendors")
	}
	weightTotal := 0.0
	for i := range vendors {
		weightTotal += 1 / float64(i+1)
	}
	for i := range vendors {
		counts[i] = 1 + int(float64(remaining)*(1/float64(i+1))/weightTotal)
	}

	tac := seg.tacBase
	models := make([]DeviceInfo, 0, seg.models)
	vendorOf := make([]int, 0, seg.models) // vendor index per model
	for vi, vendor := range vendors {
		db.vendors[vendor] = true
		for m := 0; m < counts[vi]; m++ {
			di := DeviceInfo{
				TAC:    identity.TAC(tac),
				Vendor: vendor,
				Model:  fmt.Sprintf("%s %s-%d", vendor, modelSeries(seg.arch), m+1),
				OS:     seg.osFor(src, vi),
				Type:   seg.typeFor(src),
				Bands:  seg.bandsFor(src),
			}
			tac++
			db.byTAC[di.TAC] = di
			models = append(models, di)
			vendorOf = append(vendorOf, vi)
		}
	}

	// Popularity weights. Default: Zipf over the vendor-major model
	// order. With vendorShare set: each pinned vendor's models share
	// exactly that vendor's mass (Zipf within the vendor); all other
	// models split the remaining mass Zipf-like.
	weights := make([]float64, len(models))
	if seg.vendorShare == nil {
		for i := range weights {
			weights[i] = 1 / float64(i+1)
		}
		return models, weights
	}
	pinnedMass := 0.0
	for _, s := range seg.vendorShare {
		pinnedMass += s
	}
	// Per-vendor normalizers.
	harmonic := func(n int) float64 {
		h := 0.0
		for k := 1; k <= n; k++ {
			h += 1 / float64(k)
		}
		return h
	}
	// Rank counters per pinned vendor and for the tail.
	pinnedRank := make([]int, len(seg.vendorShare))
	tailRank := 0
	tailCount := 0
	for _, vi := range vendorOf {
		if vi >= len(seg.vendorShare) {
			tailCount++
		}
	}
	tailNorm := harmonic(tailCount)
	for i, vi := range vendorOf {
		if vi < len(seg.vendorShare) {
			pinnedRank[vi]++
			weights[i] = seg.vendorShare[vi] / harmonic(counts[vi]) / float64(pinnedRank[vi])
		} else {
			tailRank++
			weights[i] = (1 - pinnedMass) / tailNorm / float64(tailRank)
		}
	}
	return models, weights
}

func modelSeries(a Archetype) string {
	switch a {
	case ArchSmartphone:
		return "Galaxy"
	case ArchFeaturePhone:
		return "Classic"
	case ArchM2MModule:
		return "MOD"
	case ArchVehicle:
		return "TCU"
	case ArchWearable:
		return "Band"
	}
	return "X"
}
