package gsma

import (
	"testing"

	"whereroam/internal/radio"
	"whereroam/internal/rng"
)

func testDB(t testing.TB) *DB {
	t.Helper()
	return Synthesize(1)
}

func TestCatalogScale(t *testing.T) {
	db := testDB(t)
	// The paper observes 2,436 vendors and 24,991 models; ours must
	// be of the same order.
	if v := db.Vendors(); v < 2200 || v > 2700 {
		t.Errorf("vendors = %d, want ~2400", v)
	}
	if m := db.Models(); m < 22000 || m > 28000 {
		t.Errorf("models = %d, want ~25000", m)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, b := Synthesize(7), Synthesize(7)
	if a.Models() != b.Models() || a.Vendors() != b.Vendors() {
		t.Fatal("same seed produced different catalogs")
	}
	for tac, di := range a.byTAC {
		if other, ok := b.byTAC[tac]; !ok || other != di {
			t.Fatalf("TAC %v differs between identical seeds", tac)
		}
	}
}

func TestLookupRoundTrip(t *testing.T) {
	db := testDB(t)
	src := rng.New(2)
	for i := 0; i < 100; i++ {
		di := db.Pick(src, ArchM2MModule)
		got, ok := db.Lookup(di.TAC)
		if !ok || got != di {
			t.Fatalf("Lookup(%v) = %+v, %v", di.TAC, got, ok)
		}
	}
	if _, ok := db.Lookup(99999999); ok {
		t.Error("lookup of unallocated TAC succeeded")
	}
}

func TestM2MVendorConcentration(t *testing.T) {
	db := testDB(t)
	src := rng.New(3)
	const n = 20000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[db.Pick(src, ArchM2MModule).Vendor]++
	}
	top3 := counts["Gemalto"] + counts["Telit"] + counts["Sierra Wireless"]
	share := float64(top3) / n
	// §4.3: the three big vendors are ~75% of inbound-roaming devices.
	if share < 0.70 || share > 0.80 {
		t.Errorf("Gemalto+Telit+Sierra share = %.3f, want ~0.75", share)
	}
	if counts["Gemalto"] <= counts["Telit"] {
		t.Errorf("Gemalto (%d) should outdraw Telit (%d)", counts["Gemalto"], counts["Telit"])
	}
}

func TestSmartphoneOS(t *testing.T) {
	db := testDB(t)
	src := rng.New(4)
	smart, total := 0, 5000
	for i := 0; i < total; i++ {
		di := db.Pick(src, ArchSmartphone)
		if di.OS.IsSmartphoneOS() {
			smart++
		}
	}
	if frac := float64(smart) / float64(total); frac < 0.99 {
		t.Errorf("smartphone OS share = %.3f, want ~1", frac)
	}
	// Feature phones must not carry a smartphone OS.
	for i := 0; i < 1000; i++ {
		di := db.Pick(src, ArchFeaturePhone)
		if di.OS.IsSmartphoneOS() {
			t.Fatalf("feature phone %q has smartphone OS %q", di.Model, di.OS)
		}
	}
}

func TestM2MLabelsAreAmbiguous(t *testing.T) {
	db := testDB(t)
	src := rng.New(5)
	labels := map[DeviceType]int{}
	for i := 0; i < 2000; i++ {
		labels[db.Pick(src, ArchM2MModule).Type]++
	}
	// §4.3: GSMA marks most non-phones as "modem" or "module" — no
	// M2M-specific label exists.
	if labels[TypeModule]+labels[TypeModem] < 1600 {
		t.Errorf("module+modem labels = %d/2000, want dominant", labels[TypeModule]+labels[TypeModem])
	}
	if labels[TypeSmartphone] != 0 {
		t.Error("an M2M module must never be labelled Smartphone")
	}
}

func TestPickFromVendors(t *testing.T) {
	db := testDB(t)
	src := rng.New(6)
	// The SMIP-roaming scenario: meters built exclusively on Gemalto
	// and Telit modules (§4.4).
	for i := 0; i < 500; i++ {
		di := db.PickFromVendors(src, ArchM2MModule, "Gemalto", "Telit")
		if di.Vendor != "Gemalto" && di.Vendor != "Telit" {
			t.Fatalf("vendor %q outside restriction", di.Vendor)
		}
	}
}

func TestPickFromVendorsPanicsOnUnknown(t *testing.T) {
	db := testDB(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown vendor")
		}
	}()
	db.PickFromVendors(rng.New(1), ArchM2MModule, "NoSuchVendor")
}

func TestPickWithBands(t *testing.T) {
	db := testDB(t)
	src := rng.New(7)
	for i := 0; i < 200; i++ {
		di := db.PickWithBands(src, ArchM2MModule, radio.Has4G)
		if !di.Bands.Has(radio.RAT4G) {
			t.Fatalf("model %q lacks requested 4G band", di.Model)
		}
	}
	for i := 0; i < 200; i++ {
		di := db.PickWithBands(src, ArchFeaturePhone, radio.Has2G)
		if !di.Bands.Has(radio.RAT2G) {
			t.Fatalf("model %q lacks 2G", di.Model)
		}
	}
}

func TestM2MBandMix(t *testing.T) {
	db := testDB(t)
	src := rng.New(8)
	only2G, total := 0, 5000
	for i := 0; i < total; i++ {
		if db.Pick(src, ArchM2MModule).Bands.Only(radio.RAT2G) {
			only2G++
		}
	}
	// The installed base should be 2G-heavy (not exact: behaviour
	// profiles choose what devices do with their bands).
	if frac := float64(only2G) / float64(total); frac < 0.35 || frac > 0.70 {
		t.Errorf("2G-only module share = %.3f, want ~0.55", frac)
	}
}

func TestVehicleSegment(t *testing.T) {
	db := testDB(t)
	src := rng.New(9)
	multiRAT := 0
	for i := 0; i < 1000; i++ {
		di := db.Pick(src, ArchVehicle)
		if di.Bands.Has(radio.RAT4G) {
			multiRAT++
		}
	}
	if multiRAT < 700 {
		t.Errorf("4G-capable vehicles = %d/1000, want ~800", multiRAT)
	}
}

func TestModelsOf(t *testing.T) {
	db := testDB(t)
	ms := db.ModelsOf("Gemalto")
	if len(ms) < 50 {
		t.Fatalf("Gemalto has %d models, want many (portfolio leader)", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].TAC >= ms[i].TAC {
			t.Fatal("ModelsOf must be TAC-sorted")
		}
	}
}

func TestDistinctTACBlocks(t *testing.T) {
	db := testDB(t)
	// Every TAC maps to exactly one archetype's block; verify no
	// overlap by re-deriving membership.
	for a := Archetype(0); a < archCount; a++ {
		for _, di := range db.byArch[a] {
			got, ok := db.Lookup(di.TAC)
			if !ok || got.Vendor != di.Vendor {
				t.Fatalf("TAC %v: block overlap or missing", di.TAC)
			}
		}
	}
}

func BenchmarkSynthesize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Synthesize(uint64(i))
	}
}

func BenchmarkPick(b *testing.B) {
	db := Synthesize(1)
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.Pick(src, ArchM2MModule)
	}
}
