package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("devices")
	c2 := parent.Split("sectors")
	c1b := parent.Split("devices")
	if c1.Uint64() != c1b.Uint64() {
		t.Fatal("same label must give identical child streams")
	}
	if c1.state == c2.state {
		t.Fatal("different labels must give different child streams")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	a.Split("x")
	a.SplitN("y", 3)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split must not consume parent state")
	}
}

func TestSplitNDistinct(t *testing.T) {
	p := New(3)
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		c := p.SplitN("dev", i)
		if seen[c.state] {
			t.Fatalf("SplitN collision at %d", i)
		}
		seen[c.state] = true
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", k, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %f, want ~1", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(17)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormal(2, 0.5)
	}
	// The median of LogNormal(mu, sigma) is exp(mu).
	below := 0
	want := math.Exp(2)
	for _, v := range vals {
		if v < want {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below exp(mu) = %f, want ~0.5", frac)
	}
}

func TestParetoTail(t *testing.T) {
	s := New(19)
	const n = 100000
	min := math.Inf(1)
	over := 0
	for i := 0; i < n; i++ {
		v := s.Pareto(1, 2)
		if v < min {
			min = v
		}
		if v > 10 {
			over++
		}
	}
	if min < 1 {
		t.Errorf("Pareto(1,2) produced value below xm: %f", min)
	}
	// P(X > 10) = (1/10)^2 = 0.01.
	frac := float64(over) / n
	if math.Abs(frac-0.01) > 0.005 {
		t.Errorf("Pareto tail P(X>10) = %f, want ~0.01", frac)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(23)
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%f) mean = %f", lambda, mean)
		}
	}
}

func TestPoissonZeroForNonPositive(t *testing.T) {
	s := New(1)
	if s.Poisson(0) != 0 || s.Poisson(-5) != 0 {
		t.Fatal("Poisson of non-positive lambda must be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(29)
	z := NewZipf(s, 100, 1.0)
	const n = 100000
	counts := make([]int, 101)
	for i := 0; i < n; i++ {
		r := z.Draw()
		if r < 1 || r > 100 {
			t.Fatalf("Zipf rank %d out of [1,100]", r)
		}
		counts[r]++
	}
	if counts[1] < counts[2] || counts[2] < counts[10] {
		t.Errorf("Zipf not skewed: c1=%d c2=%d c10=%d", counts[1], counts[2], counts[10])
	}
	// Rank 1 should hold about 1/H(100) ~= 19% of the mass.
	frac := float64(counts[1]) / n
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("Zipf rank-1 share = %f, want ~0.19", frac)
	}
}

func TestWeightedShares(t *testing.T) {
	s := New(31)
	w := NewWeighted(s, []float64{1, 2, 7})
	const n = 100000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[w.Draw()]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		frac := float64(counts[i]) / n
		if math.Abs(frac-want) > 0.01 {
			t.Errorf("weight %d share = %f want %f", i, frac, want)
		}
	}
}

func TestWeightedPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"zero":     {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWeighted(%s) should panic", name)
				}
			}()
			NewWeighted(New(1), weights)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		p := s.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	s := New(37)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(4)
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Errorf("Exp(4) mean = %f", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	s := New(1)
	z := NewZipf(s, 10000, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw()
	}
}
