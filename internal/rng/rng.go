// Package rng provides a deterministic, splittable random number
// generator and the handful of distributions the simulators are built
// on (Zipf, lognormal, Pareto, Poisson, weighted choice).
//
// Every generator in this repository derives its randomness from a
// single user-supplied seed so that experiments are reproducible
// bit-for-bit. Streams are split by label (see [Source.Split]) so that
// adding a new consumer of randomness does not perturb existing ones.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a SplitMix64 pseudo random number generator.
//
// SplitMix64 passes BigCrush, has a period of 2^64 and — crucially for
// this repository — supports O(1) stream splitting: deriving an
// independent child stream from a parent stream and a string label.
// The zero value is a valid source seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child stream identified by label.
// Splitting does not advance the parent stream: two calls with the same
// label return identical streams, calls with different labels return
// streams that are statistically independent of each other and of the
// parent.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	h.Write([]byte(label))
	// Mix the label hash with the parent state through one SplitMix64
	// round so that (seed, label) pairs map to well-spread child seeds.
	return &Source{state: mix64(s.state ^ h.Sum64())}
}

// SplitN derives an independent child stream identified by label and an
// index, for per-entity streams ("device", i).
func (s *Source) SplitN(label string, n uint64) *Source {
	c := s.Split(label)
	c.state = mix64(c.state ^ (n * 0x9e3779b97f4a7c15))
	return c
}

func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash01 maps a (seed, key) pair to a uniform value in [0, 1). It is
// the stateless counterpart of [Source.Bool] for per-record decisions:
// the result depends only on the pair — never on draw order — so
// concurrent producers reach identical sampling verdicts without
// sharing a sequential stream. Two SplitMix64 finalizer rounds give
// full avalanche even for structured keys (sequential IDs,
// nanosecond timestamps).
func Hash01(seed, key uint64) float64 {
	return float64(mix64(mix64(seed^key))>>11) / (1 << 53)
}

// Uint64 returns the next value of the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := s.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-int64(n)) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	for {
		v := int64(s.Uint64() >> 1)
		if r := v % n; v-r <= math.MaxInt64-n+1 {
			return r
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box–Muller transform;
// spare value cached would complicate Split semantics, so both values
// of the pair are derived fresh — simplicity over the last nanosecond).
func (s *Source) NormFloat64() float64 {
	// Marsaglia polar method avoids trig calls.
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// LogNormal returns exp(N(mu, sigma)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Pareto returns a Pareto(xm, alpha) variate: xm * U^(-1/alpha).
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm * math.Pow(u, -1/alpha)
}

// Exp returns an exponential variate with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Poisson returns a Poisson(lambda) variate. For small lambda it uses
// Knuth's product method; for large lambda the normal approximation
// with continuity correction, which is ample for workload synthesis.
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := lambda + math.Sqrt(lambda)*s.NormFloat64() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Zipf draws ranks in [1, n] with P(k) proportional to 1/k^alpha using
// inverse-CDF over a precomputed table. Build once with NewZipf, draw
// many times.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent alpha > 0.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), alpha)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Draw returns a rank in [1, n] using the sampler's own stream.
func (z *Zipf) Draw() int { return z.DrawFrom(z.src) }

// DrawFrom returns a rank in [1, n] consuming randomness from src,
// so callers can keep per-entity streams deterministic.
func (z *Zipf) DrawFrom(src *Source) int {
	u := src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Weighted draws indices with probability proportional to the supplied
// weights. Build once, draw many times.
type Weighted struct {
	cdf []float64
	src *Source
}

// NewWeighted builds a sampler over len(weights) outcomes. Weights must
// be non-negative with a positive sum.
func NewWeighted(src *Source, weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("rng: NewWeighted with no weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: NewWeighted with negative or NaN weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("rng: NewWeighted with zero total weight")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Weighted{cdf: cdf, src: src}
}

// Draw returns an index in [0, len(weights)) using the sampler's own
// stream.
func (w *Weighted) Draw() int { return w.DrawFrom(w.src) }

// DrawFrom returns an index in [0, len(weights)) consuming randomness
// from src, so callers can keep per-entity streams deterministic.
func (w *Weighted) DrawFrom(src *Source) int {
	u := src.Float64()
	lo, hi := 0, len(w.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
