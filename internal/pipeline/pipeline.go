// Package pipeline is the sharded fan-out/fan-in engine the hot
// layers of the reproduction run on: dataset synthesis, catalog
// aggregation and classification all partition their item space into
// contiguous shards, process shards on a bounded worker pool, and
// merge shard-local results in shard order.
//
// The engine is built for determinism, not just speed. Shard
// boundaries depend only on the item count — never on the worker
// count — so shard-local accumulators, shard-ordered merges and
// per-shard RNG substreams (see [Shard.Sub]) are bit-identical
// whether one worker drains the shard queue or sixteen do. A caller
// that (a) derives randomness per shard or per item from
// [whereroam/internal/rng] substreams and (b) combines shard results
// in shard order gets the same output at every parallelism level by
// construction.
package pipeline

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"whereroam/internal/rng"
)

// Workers normalizes a requested worker count: values below one mean
// "one worker per available CPU" (runtime.GOMAXPROCS). Every -workers
// flag and Workers config field in the repository follows this rule.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// maxShards bounds the number of shards per run. It is deliberately
// larger than any plausible worker count so the shard queue keeps
// every worker busy even when shards are uneven, while staying small
// enough that shard bookkeeping is negligible.
const maxShards = 256

// Shard is one contiguous index range [Lo, Hi) of a partitioned item
// space — the unit of work handed to a worker.
type Shard struct {
	Index int // shard number in [0, Count)
	Count int // total shards in the partition
	Lo    int // first item index (inclusive)
	Hi    int // one past the last item index (exclusive)
}

// Len returns the number of items in the shard.
func (s Shard) Len() int { return s.Hi - s.Lo }

// Sub derives the shard's deterministic RNG substream: the same
// (root, label, shard index) always yields the same stream. Because
// shard boundaries are independent of the worker count, a shard's
// randomness does not depend on which worker runs it or when.
func (s Shard) Sub(root *rng.Source, label string) *rng.Source {
	return root.SplitN(label, uint64(s.Index))
}

// Shards partitions n items into count contiguous near-equal ranges
// (the first n%count shards are one item longer). It returns fewer
// than count shards only when n < count; zero items yield no shards.
func Shards(n, count int) []Shard {
	if n <= 0 || count <= 0 {
		return nil
	}
	if count > n {
		count = n
	}
	size, rem := n/count, n%count
	out := make([]Shard, count)
	lo := 0
	for i := range out {
		hi := lo + size
		if i < rem {
			hi++
		}
		out[i] = Shard{Index: i, Count: count, Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}

// numShards is the canonical shard count for n items: enough shards
// to load-balance any realistic pool, capped so bookkeeping stays
// cheap, and — crucially — a function of n alone.
func numShards(n int) int {
	if n < maxShards {
		return n
	}
	return maxShards
}

// ShardCount returns the canonical shard count Run and Map use for n
// items. It is a function of the item count alone — never of the
// worker count — which is what keeps shard-indexed artefacts (ordered
// fan-in streams, per-shard accumulators) worker-count-invariant.
// Callers that pre-size per-shard structures for Run/Map must use
// this count.
func ShardCount(n int) int { return numShards(n) }

// Run partitions n items into the canonical shards and fans them out
// over a pool of Workers(workers) goroutines, blocking until every
// shard completed (the fan-in barrier). fn is called once per shard;
// with workers == 1 the shards run on the caller's goroutine, in
// order, over the exact same boundaries, which is what makes the
// serial and parallel paths comparable in benchmarks and tests. A
// panic in any shard is re-raised on the caller's goroutine.
func Run(n, workers int, fn func(Shard)) {
	runShards(Shards(n, numShards(n)), workers, fn)
}

// Map runs fn over every canonical shard of n items and returns the
// per-shard results in shard order, ready for a deterministic
// shard-ordered merge.
func Map[T any](n, workers int, fn func(Shard) T) []T {
	shards := Shards(n, numShards(n))
	out := make([]T, len(shards))
	runShards(shards, workers, func(s Shard) { out[s.Index] = fn(s) })
	return out
}

func runShards(shards []Shard, workers int, fn func(Shard)) {
	if len(shards) == 0 {
		return
	}
	w := Workers(workers)
	if w > len(shards) {
		w = len(shards)
	}
	if w <= 1 {
		for _, s := range shards {
			fn(s)
		}
		return
	}

	// Bounded fan-out: a small shard queue keeps memory flat while
	// idle workers always find work, and the WaitGroup is the fan-in.
	work := make(chan Shard, w)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked *ShardPanic
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				func() {
					defer func() {
						if r := recover(); r != nil {
							stack := debug.Stack()
							mu.Lock()
							if panicked == nil {
								panicked = &ShardPanic{Shard: s, Value: r, Stack: stack}
							}
							mu.Unlock()
						}
					}()
					fn(s)
				}()
			}
		}()
	}
	for _, s := range shards {
		work <- s
	}
	close(work)
	wg.Wait()
	if panicked != nil {
		panic(*panicked)
	}
}

// ShardPanic is the panic value Run re-raises on the caller's
// goroutine when a shard worker panicked: it carries the original
// panic value and the worker's stack trace, which would otherwise be
// lost across the fan-in (the first panicking shard wins).
type ShardPanic struct {
	Shard Shard
	Value any
	Stack []byte
}

// String renders the shard, panic value and captured worker stack.
func (p ShardPanic) String() string {
	return fmt.Sprintf("pipeline: shard %d [%d,%d) worker panicked: %v\n\nworker stack:\n%s",
		p.Shard.Index, p.Shard.Lo, p.Shard.Hi, p.Value, p.Stack)
}
