package pipeline

import (
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"whereroam/internal/rng"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-3); got != Workers(0) {
		t.Errorf("Workers(-3) = %d, want %d", got, Workers(0))
	}
}

func TestShardsPartition(t *testing.T) {
	for _, tc := range []struct{ n, count int }{
		{0, 8}, {1, 8}, {7, 3}, {8, 3}, {9, 3}, {100, 16}, {maxShards + 10, maxShards},
	} {
		shards := Shards(tc.n, tc.count)
		covered := 0
		prevHi := 0
		for i, s := range shards {
			if s.Index != i {
				t.Fatalf("n=%d count=%d: shard %d has Index %d", tc.n, tc.count, i, s.Index)
			}
			if s.Count != len(shards) {
				t.Fatalf("n=%d count=%d: shard %d has Count %d, want %d", tc.n, tc.count, i, s.Count, len(shards))
			}
			if s.Lo != prevHi {
				t.Fatalf("n=%d count=%d: shard %d not contiguous (Lo=%d, want %d)", tc.n, tc.count, i, s.Lo, prevHi)
			}
			if s.Len() <= 0 {
				t.Fatalf("n=%d count=%d: empty shard %d", tc.n, tc.count, i)
			}
			covered += s.Len()
			prevHi = s.Hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d count=%d: shards cover %d items", tc.n, tc.count, covered)
		}
	}
}

// Shard boundaries must depend only on the item count, never on the
// worker count — that independence is what makes shard-local state
// reproducible under any parallelism.
func TestShardBoundariesIndependentOfWorkers(t *testing.T) {
	for _, n := range []int{1, 5, 1000, 40000} {
		var ref []Shard
		for _, workers := range []int{1, 2, 7, 16} {
			var got []Shard
			gotCh := make(chan Shard, n)
			Run(n, workers, func(s Shard) { gotCh <- s })
			close(gotCh)
			for s := range gotCh {
				got = append(got, s)
			}
			byIndex := make([]Shard, len(got))
			for _, s := range got {
				byIndex[s.Index] = s
			}
			if ref == nil {
				ref = byIndex
				continue
			}
			if !reflect.DeepEqual(ref, byIndex) {
				t.Fatalf("n=%d: shard layout differs between worker counts", n)
			}
		}
	}
}

func TestRunCoversEveryItemOnce(t *testing.T) {
	const n = 10_000
	var hits [n]atomic.Int32
	Run(n, 8, func(s Shard) {
		for i := s.Lo; i < s.Hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("item %d processed %d times", i, got)
		}
	}
}

func TestMapReturnsShardOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got := Map(1000, workers, func(s Shard) int { return s.Lo })
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("workers=%d: results not in shard order at %d: %v > %v", workers, i, got[i-1], got[i])
			}
		}
	}
}

func TestSubDeterministic(t *testing.T) {
	root := rng.New(42)
	shards := Shards(100, 10)
	a := shards[3].Sub(root, "x").Uint64()
	b := shards[3].Sub(root, "x").Uint64()
	if a != b {
		t.Fatalf("Sub not deterministic: %d != %d", a, b)
	}
	if c := shards[4].Sub(root, "x").Uint64(); c == a {
		t.Fatalf("distinct shards share a substream")
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		sp, ok := r.(ShardPanic)
		if !ok {
			t.Fatalf("panic value is %T, want ShardPanic", r)
		}
		if sp.Value != "boom" {
			t.Fatalf("panic value %v does not carry the original cause", sp.Value)
		}
		if sp.Shard.Index != 2 {
			t.Fatalf("panic names shard %d, want 2", sp.Shard.Index)
		}
		if !strings.Contains(string(sp.Stack), "pipeline") {
			t.Fatal("panic does not carry the worker stack")
		}
	}()
	Run(100, 4, func(s Shard) {
		if s.Index == 2 {
			panic("boom")
		}
	})
}

// Two shards must be in flight at once under workers=2: each of the
// first two shards blocks until the other arrives, so the test only
// completes if Run dispatches shards to concurrently scheduled
// workers (true even on a single CPU — goroutines interleave on the
// channel), and would time out under serial dispatch.
func TestRunDispatchesShardsConcurrently(t *testing.T) {
	rendezvous := make(chan struct{}, 2)
	done := make(chan struct{})
	go func() {
		Run(100, 2, func(s Shard) {
			if s.Index >= 2 {
				return
			}
			rendezvous <- struct{}{}
			for len(rendezvous) < 2 { // both arrived?
				select {
				case <-done:
					return
				default:
					runtime.Gosched()
				}
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shards 0 and 1 never ran concurrently: serial dispatch under workers=2")
	}
}

func TestRunZeroItems(t *testing.T) {
	called := false
	Run(0, 4, func(Shard) { called = true })
	if called {
		t.Fatal("fn called for zero items")
	}
	if got := Map(0, 4, func(Shard) int { return 1 }); len(got) != 0 {
		t.Fatalf("Map over zero items returned %d results", len(got))
	}
}
