package pipeline

import "whereroam/internal/obs"

// RunTimed is [Run] with per-shard wall-time observation: each
// shard's execution time is observed into h. A nil histogram means
// plain Run — no clock is read, so the deterministic unobserved path
// is untouched. Timing never changes shard boundaries or merge
// order; only the observed durations differ run to run.
func RunTimed(n, workers int, h *obs.Histogram, fn func(Shard)) {
	if h == nil {
		Run(n, workers, fn)
		return
	}
	Run(n, workers, func(s Shard) {
		defer h.Start().Stop()
		fn(s)
	})
}

// MapTimed is [Map] with per-shard wall-time observation; same
// contract as [RunTimed].
func MapTimed[T any](n, workers int, h *obs.Histogram, fn func(Shard) T) []T {
	if h == nil {
		return Map(n, workers, fn)
	}
	return Map(n, workers, func(s Shard) T {
		defer h.Start().Stop()
		return fn(s)
	})
}
