package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

// report builds a two-artefact baseline the tests perturb.
func report(procs int, serialNs, parallelNs, heap int64) *Report {
	return &Report{
		GoMaxProcs: procs,
		NumCPU:     procs,
		Scale:      0.16,
		Artefacts: map[string]Artefact{
			"pipeline_serial":   {NsPerOp: serialNs, Workers: 1, HeapPeakBytes: heap},
			"pipeline_parallel": {NsPerOp: parallelNs, Workers: procs, HeapPeakBytes: heap},
		},
		Speedups: map[string]float64{
			"pipeline": float64(serialNs) / float64(parallelNs),
		},
	}
}

// The CI gate's core promise: an injected slowdown beyond tolerance
// fails the comparison.
func TestCompareFailsOnInjectedRegression(t *testing.T) {
	base := report(4, 1_000_000, 300_000, 64<<20)
	cand := report(4, 1_600_000, 300_000, 64<<20) // +60% serial ns/op vs 30% tolerance
	d := Compare(base, cand, DefaultTolerance())
	regs := d.Regressions()
	if len(regs) == 0 {
		t.Fatalf("injected +60%% ns/op regression not flagged:\n%s", d)
	}
	found := false
	for _, f := range regs {
		if f.Name == "pipeline_serial ns/op" {
			found = true
		}
	}
	if !found {
		t.Errorf("regression list misses pipeline_serial ns/op: %v", regs)
	}
}

func TestCompareWithinToleranceIsClean(t *testing.T) {
	base := report(4, 1_000_000, 300_000, 64<<20)
	cand := report(4, 1_200_000, 320_000, 70<<20) // +20% / +9%: inside 30%/40%
	d := Compare(base, cand, DefaultTolerance())
	if regs := d.Regressions(); len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged as regression:\n%v", regs)
	}
	if len(d.Findings) == 0 {
		t.Fatal("no comparisons executed")
	}
}

func TestCompareFlagsHeapGrowth(t *testing.T) {
	base := report(4, 1_000_000, 300_000, 64<<20)
	cand := report(4, 1_000_000, 300_000, 160<<20) // 2.5x peak, +96 MiB
	d := Compare(base, cand, DefaultTolerance())
	regs := d.Regressions()
	if len(regs) == 0 {
		t.Fatal("2.5x heap-peak growth not flagged")
	}
	for _, f := range regs {
		if !strings.HasSuffix(f.Name, "heap_peak") {
			t.Errorf("unexpected non-heap regression %v", f)
		}
	}
}

// Small absolute heap drift on tiny configurations is sampling noise,
// not a leak: the MinHeapDeltaBytes floor suppresses it even when the
// relative growth is large.
func TestCompareHeapFloorSuppressesNoise(t *testing.T) {
	base := report(4, 1_000_000, 300_000, 2<<20)
	cand := report(4, 1_000_000, 300_000, 6<<20) // 3x relative but only +4 MiB
	d := Compare(base, cand, DefaultTolerance())
	if regs := d.Regressions(); len(regs) != 0 {
		t.Fatalf("sub-floor heap drift flagged: %v", regs)
	}
}

// A baseline recorded on a different core count must not gate speedup
// ratios or parallel artefacts — only serial ns/op and heap peaks
// stay comparable.
func TestCompareSkipsAcrossGoMaxProcs(t *testing.T) {
	base := report(1, 1_000_000, 1_000_000, 64<<20)
	cand := report(8, 1_050_000, 200_000, 64<<20)
	cand.Speedups["pipeline"] = 0.1 // would be a huge "regression" if compared
	d := Compare(base, cand, DefaultTolerance())
	for _, f := range d.Findings {
		if strings.HasPrefix(f.Name, "speedup") {
			t.Errorf("speedup compared across GOMAXPROCS mismatch: %v", f)
		}
		if strings.HasPrefix(f.Name, "pipeline_parallel") {
			t.Errorf("parallel artefact compared across GOMAXPROCS mismatch: %v", f)
		}
	}
	if len(d.Skipped) == 0 {
		t.Error("GOMAXPROCS mismatch not surfaced in Skipped")
	}
	if regs := d.Regressions(); len(regs) != 0 {
		t.Errorf("cross-machine comparison produced regressions: %v", regs)
	}
	// The serial artefact must still be gated.
	serialCompared := false
	for _, f := range d.Findings {
		if f.Name == "pipeline_serial ns/op" {
			serialCompared = true
		}
	}
	if !serialCompared {
		t.Error("serial artefact skipped despite being comparable")
	}
}

func TestCompareSkipsMissingArtefacts(t *testing.T) {
	base := report(4, 1_000_000, 300_000, 64<<20)
	base.Artefacts["vanished"] = Artefact{NsPerOp: 1, Workers: 1}
	cand := report(4, 1_000_000, 300_000, 64<<20)
	cand.Artefacts["appeared"] = Artefact{NsPerOp: 1, Workers: 1}
	cand.Speedups["appeared"] = 1.0
	d := Compare(base, cand, DefaultTolerance())
	if regs := d.Regressions(); len(regs) != 0 {
		t.Fatalf("missing artefact treated as regression: %v", regs)
	}
	// Both directions must surface: a baseline-only entry (renamed or
	// dropped benchmark) and a candidate-only entry (new benchmark not
	// yet in the committed baseline, hence ungated).
	for _, want := range []string{"vanished", "appeared"} {
		found := false
		for _, s := range d.Skipped {
			if strings.Contains(s, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("one-sided entry %q not noted in Skipped: %v", want, d.Skipped)
		}
	}
}

// Runs at different -scale values measure different workloads; the
// comparison must refuse outright instead of gating on the flag.
func TestCompareRefusesScaleMismatch(t *testing.T) {
	base := report(4, 1_000_000, 300_000, 64<<20)
	cand := report(4, 8_000_000, 2_400_000, 512<<20)
	cand.Scale = 1.28
	d := Compare(base, cand, DefaultTolerance())
	if len(d.Findings) != 0 {
		t.Fatalf("scale mismatch still compared: %v", d.Findings)
	}
	if len(d.Skipped) == 0 || !strings.Contains(d.Skipped[0], "scale") {
		t.Errorf("scale mismatch not surfaced: %v", d.Skipped)
	}
}

func TestReportRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	base := report(4, 1_000_000, 300_000, 64<<20)
	if err := base.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GoMaxProcs != base.GoMaxProcs || len(got.Artefacts) != len(base.Artefacts) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, base)
	}
	if got.Artefacts["pipeline_serial"].NsPerOp != 1_000_000 {
		t.Errorf("serial ns/op lost in roundtrip: %+v", got.Artefacts["pipeline_serial"])
	}
}

// A zero heap-peak baseline (the sampler caught no peak for a short
// configuration) is not comparable: any candidate sample a few MiB
// above it would otherwise regress with no code change.
func TestCompareSkipsZeroHeapBaseline(t *testing.T) {
	base := report(4, 1_000_000, 300_000, 0)
	cand := report(4, 1_000_000, 300_000, 20<<20) // would trip both heap thresholds
	d := Compare(base, cand, DefaultTolerance())
	if regs := d.Regressions(); len(regs) != 0 {
		t.Fatalf("zero heap baseline produced regressions: %v", regs)
	}
	found := false
	for _, s := range d.Skipped {
		if strings.Contains(s, "heap_peak") && strings.Contains(s, "zero") {
			found = true
		}
	}
	if !found {
		t.Fatalf("zero heap baseline was not skipped with a note; skips: %v", d.Skipped)
	}
	for _, f := range d.Findings {
		if strings.Contains(f.Name, "heap_peak") {
			t.Fatalf("zero-baseline heap finding still emitted: %v", f)
		}
	}
}

// Machine-independent ratios stay gated even when the baseline's
// GOMAXPROCS differs from the candidate's — unlike speedups, they do
// not measure core count — and a shrink beyond tolerance regresses.
func TestCompareGatesRatiosAcrossGoMaxProcs(t *testing.T) {
	base := report(1, 1_000_000, 1_000_000, 64<<20)
	base.Ratios = map[string]float64{"store_prune": 10.0}
	cand := report(4, 1_000_000, 300_000, 64<<20)
	cand.Ratios = map[string]float64{"store_prune": 9.5}
	d := Compare(base, cand, DefaultTolerance())
	found := false
	for _, f := range d.Findings {
		if f.Name == "ratio store_prune" {
			found = true
			if f.Regression {
				t.Fatalf("ratio within tolerance flagged: %v", f)
			}
		}
	}
	if !found {
		t.Fatalf("ratio was not gated across the GOMAXPROCS mismatch; findings: %v", d.Findings)
	}

	cand.Ratios["store_prune"] = 2.0 // -80% vs 30% tolerance
	d = Compare(base, cand, DefaultTolerance())
	regressed := false
	for _, f := range d.Regressions() {
		if f.Name == "ratio store_prune" {
			regressed = true
		}
	}
	if !regressed {
		t.Fatalf("collapsed prune ratio not flagged; diff:\n%s", d)
	}
}

// serveReport builds a one-artefact serving baseline carrying the
// latency/throughput fields.
func serveReport(p99 int64, qps float64) *Report {
	return &Report{
		GoMaxProcs: 1, NumCPU: 1, Scale: 0.16,
		Artefacts: map[string]Artefact{
			"serve_device_lookup": {NsPerOp: 5_000, P50Ns: 4_000, P99Ns: p99, QPS: qps, Workers: 1},
		},
	}
}

// Serving artefacts' latency tail and throughput are gated: a p99
// blow-up or a qps collapse beyond tolerance fails even when the mean
// ns/op holds steady.
func TestCompareGatesServingLatencyAndThroughput(t *testing.T) {
	base := serveReport(20_000, 200_000)

	d := Compare(base, serveReport(40_000, 200_000), DefaultTolerance()) // p99 2x
	found := false
	for _, f := range d.Regressions() {
		if f.Name == "serve_device_lookup p99_ns" {
			found = true
		}
	}
	if !found {
		t.Fatalf("doubled p99 not flagged:\n%s", d)
	}

	d = Compare(base, serveReport(20_000, 100_000), DefaultTolerance()) // qps halved
	found = false
	for _, f := range d.Regressions() {
		if f.Name == "serve_device_lookup qps" {
			found = true
		}
	}
	if !found {
		t.Fatalf("halved qps not flagged:\n%s", d)
	}

	// A throughput-only artefact (zero percentiles on either side)
	// never grows latency findings.
	blank := serveReport(0, 0)
	d = Compare(blank, serveReport(40_000, 1), DefaultTolerance())
	for _, f := range d.Findings {
		if strings.Contains(f.Name, "p99") || strings.Contains(f.Name, "qps") {
			t.Fatalf("latency finding on throughput-only baseline: %v", f)
		}
	}
}
