// Package benchfmt defines the BENCH_pipeline.json performance
// artefact schema shared by cmd/benchpipe (which writes it) and
// cmd/benchdiff (which gates CI on it), plus the comparison logic
// that decides whether a fresh run regressed against a committed
// baseline.
//
// Comparisons are environment-aware: a baseline recorded at one
// GOMAXPROCS is not blindly compared against a run at another —
// speedup ratios and parallel artefacts are skipped on a core-count
// mismatch, because "4-core parallel vs 1-core parallel" measures the
// machine, not the code. Serial artefacts and heap high-water marks
// remain comparable (within generous tolerances) across machines.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// StartHeapWatch begins sampling the live heap and returns a stop
// function that ends the sampling and reports the peak heap growth in
// bytes: the maximum HeapAlloc sample observed since the call, minus a
// pre-call baseline taken after a forced GC. A millisecond sampler
// undershoots very short spikes, but the structures the repo's gates
// care about — materialized populations versus bounded stream windows
// — live for most of a run. cmd/benchpipe records artefact heap peaks
// with it, and the sim CLIs use it to self-assert -max-heap-mib
// budgets.
func StartHeapWatch() func() int64 {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	var peak atomic.Uint64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak.Load() {
					peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()
	return func() int64 {
		close(stop)
		<-sampled
		p := int64(peak.Load()) - int64(base.HeapAlloc)
		if p < 0 {
			p = 0
		}
		return p
	}
}

// Artefact is one measured benchmark configuration.
type Artefact struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	Seconds     float64 `json:"seconds_per_op"`
	// HeapPeakBytes is the heap high-water mark of one run: the
	// maximum live-heap sample observed while the configuration
	// executed once, minus the pre-run baseline.
	HeapPeakBytes int64 `json:"heap_peak_bytes"`
	// P50Ns and P99Ns are request-latency percentiles for serving
	// artefacts (zero for throughput-only artefacts, which omits the
	// latency comparisons).
	P50Ns int64 `json:"p50_ns,omitempty"`
	// P99Ns is the 99th-percentile request latency.
	P99Ns int64 `json:"p99_ns,omitempty"`
	// QPS is the measured request throughput for serving artefacts.
	QPS float64 `json:"qps,omitempty"`
}

// Report is the BENCH_pipeline.json schema.
type Report struct {
	GoMaxProcs int                 `json:"go_maxprocs"`
	NumCPU     int                 `json:"num_cpu"`
	Scale      float64             `json:"scale"`
	Artefacts  map[string]Artefact `json:"artefacts"`
	// Speedups maps pair names to parallel-over-serial throughput
	// ratios (1.0 = parity; > 1 means the sharded path wins).
	Speedups map[string]float64 `json:"speedups"`
	// MemRatios maps comparison names to peak-heap ratios; for
	// "raw_capture_stream_vs_batch" a value below 1 means the
	// streaming ingest path peaked below the materialized capture.
	MemRatios map[string]float64 `json:"mem_ratios"`
	// Ratios maps names to machine-independent within-run ratios
	// ("bigger is better", like Speedups) — e.g. "store_prune", the
	// serial full-replay / pruned-replay throughput ratio. Unlike
	// Speedups they do not measure core count, so Compare gates them
	// even when the baseline's GOMAXPROCS differs from the
	// candidate's.
	Ratios map[string]float64 `json:"ratios,omitempty"`
}

// NewReport returns an empty report stamped with this process's
// parallelism and the given scale, every map allocated.
func NewReport(scale float64) *Report {
	return &Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      scale,
		Artefacts:  map[string]Artefact{},
		Speedups:   map[string]float64{},
		MemRatios:  map[string]float64{},
		Ratios:     map[string]float64{},
	}
}

// Load reads a Report from a JSON file.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: parsing %s: %w", path, err)
	}
	return &r, nil
}

// Write stores the report as indented JSON at path.
func (r *Report) Write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Tolerance bounds how much a candidate run may degrade before the
// comparison reports a regression. Fractions are relative: 0.30 means
// "30% slower / bigger than the baseline fails".
type Tolerance struct {
	// NsFrac is the allowed relative ns/op growth per artefact (and
	// the allowed relative speedup-ratio shrink when speedups are
	// comparable).
	NsFrac float64
	// MemFrac is the allowed relative heap-peak growth per artefact.
	MemFrac float64
	// MinHeapDeltaBytes suppresses heap-peak findings whose absolute
	// growth is below this floor: small configurations' peaks are
	// sampling-noisy, and a few MiB of drift on a 10 MiB peak is not
	// a leak signal.
	MinHeapDeltaBytes int64
}

// DefaultTolerance is a gate loose enough for cross-machine noise but
// tight enough to catch an accidental O(n) → O(n log n) hot path or a
// materialized buffer on the streaming path.
func DefaultTolerance() Tolerance {
	return Tolerance{NsFrac: 0.30, MemFrac: 0.40, MinHeapDeltaBytes: 8 << 20}
}

// Finding is one baseline-vs-candidate comparison outcome.
type Finding struct {
	// Name identifies the compared quantity, e.g.
	// "pipeline_serial ns/op" or "speedup pipeline".
	Name string
	// Base and Cand are the compared values (ns, bytes, or a ratio).
	Base, Cand float64
	// Regression marks findings outside the tolerance.
	Regression bool
}

// String renders the finding with its relative change.
func (f Finding) String() string {
	verdict := "ok"
	if f.Regression {
		verdict = "REGRESSION"
	}
	change := 0.0
	if f.Base != 0 {
		change = (f.Cand - f.Base) / f.Base * 100
	}
	return fmt.Sprintf("%-42s base %14.0f  cand %14.0f  %+6.1f%%  %s",
		f.Name, f.Base, f.Cand, change, verdict)
}

// Diff is the outcome of comparing a candidate report against a
// baseline.
type Diff struct {
	// Findings lists every executed comparison in a deterministic
	// (sorted) order.
	Findings []Finding
	// Skipped explains comparisons that were not executed (e.g. the
	// GOMAXPROCS mismatch rules).
	Skipped []string
}

// Regressions returns the findings outside tolerance.
func (d *Diff) Regressions() []Finding {
	var out []Finding
	for _, f := range d.Findings {
		if f.Regression {
			out = append(out, f)
		}
	}
	return out
}

// String renders the full diff, findings then skips.
func (d *Diff) String() string {
	var b strings.Builder
	for _, f := range d.Findings {
		fmt.Fprintln(&b, f)
	}
	for _, s := range d.Skipped {
		fmt.Fprintf(&b, "skipped: %s\n", s)
	}
	return b.String()
}

// Compare checks a candidate report against a baseline under the
// given tolerance.
//
// When the two reports ran at the same GOMAXPROCS, every shared
// artefact's ns/op and heap peak is compared, and every shared
// speedup ratio must not shrink beyond tolerance. When the core
// counts differ, speedup ratios and parallel artefacts (workers > 1)
// are skipped — they measure the machine — while serial artefacts and
// heap peaks stay gated. Artefacts present on only one side are
// skipped with a note (schema drift is the operator's call, not a
// failure).
func Compare(base, cand *Report, tol Tolerance) *Diff {
	d := &Diff{}
	if base.Scale != cand.Scale {
		// ns/op and heap peaks scale with the population; comparing
		// runs at different -scale values would gate on the flag, not
		// the code. Refuse the whole comparison loudly rather than
		// failing (or passing) on nonsense numbers.
		d.Skipped = append(d.Skipped, fmt.Sprintf(
			"everything: baseline scale %g, candidate scale %g — regenerate the candidate at the baseline's scale",
			base.Scale, cand.Scale))
		return d
	}
	sameProcs := base.GoMaxProcs == cand.GoMaxProcs
	if !sameProcs {
		d.Skipped = append(d.Skipped, fmt.Sprintf(
			"speedup ratios and parallel artefacts: baseline GOMAXPROCS=%d, candidate GOMAXPROCS=%d",
			base.GoMaxProcs, cand.GoMaxProcs))
	}

	for _, name := range sortedKeys(base.Artefacts) {
		b := base.Artefacts[name]
		c, ok := cand.Artefacts[name]
		if !ok {
			d.Skipped = append(d.Skipped, fmt.Sprintf("artefact %s: missing from candidate", name))
			continue
		}
		if !sameProcs && (b.Workers != 1 || c.Workers != 1) {
			// A "parallel" artefact ran with one pool size on the
			// baseline machine and another on the candidate's; covered
			// by the blanket GOMAXPROCS skip note.
			continue
		}
		d.Findings = append(d.Findings, Finding{
			Name:       name + " ns/op",
			Base:       float64(b.NsPerOp),
			Cand:       float64(c.NsPerOp),
			Regression: float64(c.NsPerOp) > float64(b.NsPerOp)*(1+tol.NsFrac),
		})
		// Serving artefacts additionally carry latency percentiles and
		// throughput; gate them only when both sides measured them, so
		// throughput-only artefacts are unaffected.
		if b.P99Ns > 0 && c.P99Ns > 0 {
			d.Findings = append(d.Findings, Finding{
				Name:       name + " p99_ns",
				Base:       float64(b.P99Ns),
				Cand:       float64(c.P99Ns),
				Regression: float64(c.P99Ns) > float64(b.P99Ns)*(1+tol.NsFrac),
			})
		}
		if b.QPS > 0 && c.QPS > 0 {
			d.Findings = append(d.Findings, Finding{
				Name:       name + " qps",
				Base:       b.QPS,
				Cand:       c.QPS,
				Regression: c.QPS < b.QPS*(1-tol.NsFrac),
			})
		}
		if b.HeapPeakBytes == 0 {
			// A zero baseline means the sampler caught no peak above
			// the pre-run heap (short configurations routinely sample
			// to zero). The relative tolerance is meaningless against
			// it and the noise floor cannot protect it — any machine
			// whose single sample lands a few MiB higher would "regress"
			// with no code change — so the quantity is not comparable.
			d.Skipped = append(d.Skipped, fmt.Sprintf(
				"artefact %s heap_peak: baseline sampled zero — not comparable", name))
		} else {
			memRegressed := float64(c.HeapPeakBytes) > float64(b.HeapPeakBytes)*(1+tol.MemFrac) &&
				c.HeapPeakBytes-b.HeapPeakBytes > tol.MinHeapDeltaBytes
			d.Findings = append(d.Findings, Finding{
				Name:       name + " heap_peak",
				Base:       float64(b.HeapPeakBytes),
				Cand:       float64(c.HeapPeakBytes),
				Regression: memRegressed,
			})
		}
	}

	for _, name := range sortedKeys(cand.Artefacts) {
		if _, ok := base.Artefacts[name]; !ok {
			d.Skipped = append(d.Skipped, fmt.Sprintf(
				"artefact %s: missing from baseline — ungated until the baseline is refreshed", name))
		}
	}

	// Machine-independent ratios are gated unconditionally: they
	// compare two configurations of the same run, not the machine.
	for _, name := range sortedKeys(base.Ratios) {
		b := base.Ratios[name]
		c, ok := cand.Ratios[name]
		if !ok {
			d.Skipped = append(d.Skipped, fmt.Sprintf("ratio %s: missing from candidate", name))
			continue
		}
		d.Findings = append(d.Findings, Finding{
			Name:       "ratio " + name,
			Base:       b,
			Cand:       c,
			Regression: c < b*(1-tol.NsFrac),
		})
	}
	for _, name := range sortedKeys(cand.Ratios) {
		if _, ok := base.Ratios[name]; !ok {
			d.Skipped = append(d.Skipped, fmt.Sprintf(
				"ratio %s: missing from baseline — ungated until the baseline is refreshed", name))
		}
	}

	if sameProcs {
		for _, name := range sortedKeys(base.Speedups) {
			b := base.Speedups[name]
			c, ok := cand.Speedups[name]
			if !ok {
				d.Skipped = append(d.Skipped, fmt.Sprintf("speedup %s: missing from candidate", name))
				continue
			}
			d.Findings = append(d.Findings, Finding{
				Name:       "speedup " + name,
				Base:       b,
				Cand:       c,
				Regression: c < b*(1-tol.NsFrac),
			})
		}
		for _, name := range sortedKeys(cand.Speedups) {
			if _, ok := base.Speedups[name]; !ok {
				d.Skipped = append(d.Skipped, fmt.Sprintf(
					"speedup %s: missing from baseline — ungated until the baseline is refreshed", name))
			}
		}
	}
	return d
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
