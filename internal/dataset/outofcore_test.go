package dataset

import (
	"reflect"
	"testing"

	"whereroam/internal/catalog"
	"whereroam/internal/pipeline"
	"whereroam/internal/rng"
)

// A residency budget must actually bound how many devices are alive at
// once inside StreamMNO — the clamped worker pool is the mechanism, so
// the observed peak can never exceed the budget — and the budgeted run
// must still emit exactly the unbudgeted output.
func TestStreamMNOBudgetRespected(t *testing.T) {
	cfg := DefaultMNOConfig()
	cfg.Seed = 7
	cfg.Devices = 1200
	cfg.Workers = 4

	var free []catalog.DailyRecord
	unbudgeted := StreamMNO(cfg, MNOSink{
		Record: func(rec catalog.DailyRecord) { free = append(free, rec) },
	})
	if unbudgeted.ResidentPeak < 1 || unbudgeted.ResidentPeak > 4 {
		t.Fatalf("unbudgeted resident peak %d outside worker pool [1,4]", unbudgeted.ResidentPeak)
	}

	cfg.MaxResidentDevices = 2
	var capped []catalog.DailyRecord
	budgeted := StreamMNO(cfg, MNOSink{
		Record: func(rec catalog.DailyRecord) { capped = append(capped, rec) },
	})
	if budgeted.ResidentPeak > 2 {
		t.Fatalf("resident peak %d exceeds budget 2", budgeted.ResidentPeak)
	}
	if budgeted.ResidentPeak < 1 {
		t.Fatalf("resident peak %d implausible: at least one device must be resident", budgeted.ResidentPeak)
	}
	if !reflect.DeepEqual(free, capped) {
		t.Fatalf("budgeted run emitted different records than unbudgeted run")
	}
	if budgeted.Devices != cfg.Devices || unbudgeted.Devices != cfg.Devices {
		t.Fatalf("device counts %d/%d, want %d", budgeted.Devices, unbudgeted.Devices, cfg.Devices)
	}
}

// The counting pre-pass must agree with the serial IMSI allocator: for
// every shard layout, base + shard offset + within-shard rank has to
// equal what a single ordered pass over all devices would allocate.
func TestCountBlocksMatchesSerialAllocation(t *testing.T) {
	root := rng.New(11).Split("mno")
	cfg := DefaultMNOConfig()
	classPick, m2mPick := mnoPicks(root)

	const n = 700
	keys := make([]blockKey, n)
	for i := 0; i < n; i++ {
		d := drawMNODraft(root, i, cfg, classPick, m2mPick)
		keys[i] = blockKey{home: d.home, base: d.base}
	}

	for _, workers := range []int{1, 3, 8, 0} {
		counts := countBlocks(n, workers, func(i int) blockKey { return keys[i] })
		serial := map[blockKey]uint64{}
		for _, sh := range pipeline.Shards(n, pipeline.ShardCount(n)) {
			off := counts.shardOffsets(sh.Index)
			for i := sh.Lo; i < sh.Hi; i++ {
				got := keys[i].base + off[keys[i]]
				off[keys[i]]++
				want := keys[i].base + serial[keys[i]]
				serial[keys[i]]++
				if got != want {
					t.Fatalf("workers=%d device %d: offset allocation %d, serial allocator %d", workers, i, got, want)
				}
			}
		}
		for k, total := range serial {
			if counts.totals[k] != total {
				t.Fatalf("workers=%d block %v: total %d, want %d", workers, k, counts.totals[k], total)
			}
		}
	}
}
