package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"whereroam/internal/devices"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/signaling"
	"whereroam/internal/store"
)

// Small configs keep unit tests fast; experiment-level shape checks
// run at larger scale in internal/experiments.
func smallM2M() M2MConfig {
	cfg := DefaultM2MConfig()
	cfg.Devices = 1500
	return cfg
}

func smallMNO() MNOConfig {
	cfg := DefaultMNOConfig()
	cfg.Devices = 4000
	return cfg
}

func smallSMIP() SMIPConfig {
	cfg := DefaultSMIPConfig()
	cfg.NativeMeters = 1500
	cfg.RoamingMeters = 1000
	return cfg
}

func TestGenerateM2MDeterministic(t *testing.T) {
	a := GenerateM2M(smallM2M())
	b := GenerateM2M(smallM2M())
	if len(a.Transactions) != len(b.Transactions) {
		t.Fatalf("tx counts differ: %d vs %d", len(a.Transactions), len(b.Transactions))
	}
	for i := range a.Transactions {
		x, y := a.Transactions[i], b.Transactions[i]
		if x.Device != y.Device || !x.Time.Equal(y.Time) || x.Procedure != y.Procedure {
			t.Fatalf("tx %d differs", i)
		}
	}
}

func TestGenerateM2MShape(t *testing.T) {
	ds := GenerateM2M(smallM2M())
	if len(ds.Truth) != 1500 {
		t.Fatalf("devices = %d", len(ds.Truth))
	}
	// Transactions are time-sorted and inside the window.
	end := ds.Start.AddDate(0, 0, ds.Days)
	for i := range ds.Transactions {
		tx := &ds.Transactions[i]
		if i > 0 && tx.Time.Before(ds.Transactions[i-1].Time) {
			t.Fatal("transactions not time-sorted")
		}
		if tx.Time.Before(ds.Start) || !tx.Time.Before(end.Add(3e9)) {
			t.Fatalf("tx outside window: %v", tx.Time)
		}
	}
	// HMNO shares (§3.2).
	byHome := map[mccmnc.PLMN]int{}
	roamers := 0
	for _, truth := range ds.Truth {
		byHome[truth.Home]++
		if truth.Roaming {
			roamers++
		}
	}
	es := float64(byHome[mccmnc.MustParse("21407")]) / float64(len(ds.Truth))
	mx := float64(byHome[mccmnc.MustParse("334020")]) / float64(len(ds.Truth))
	if math.Abs(es-0.523) > 0.04 {
		t.Errorf("ES share = %.3f, want ~0.523", es)
	}
	if math.Abs(mx-0.422) > 0.04 {
		t.Errorf("MX share = %.3f, want ~0.422", mx)
	}
	// Every truth device with roaming=true must have roaming
	// transactions; spot-check consistency.
	for i := range ds.Transactions {
		tx := &ds.Transactions[i]
		truth, ok := ds.Truth[tx.Device]
		if !ok {
			t.Fatal("transaction from unknown device")
		}
		if !truth.Roaming && tx.Roaming() {
			t.Fatalf("native device %v produced roaming tx to %v", tx.Device, tx.Visited)
		}
	}
}

func TestGenerateM2MESSignalingDominance(t *testing.T) {
	// §3.2: ES devices produce ~81.8% of all signaling, and >90% of
	// ES signaling happens while roaming.
	ds := GenerateM2M(smallM2M())
	es := mccmnc.MustParse("21407")
	total, fromES, esRoaming := 0, 0, 0
	for i := range ds.Transactions {
		tx := &ds.Transactions[i]
		total++
		if tx.SIM == es {
			fromES++
			if tx.Roaming() {
				esRoaming++
			}
		}
	}
	esShare := float64(fromES) / float64(total)
	if esShare < 0.70 || esShare > 0.92 {
		t.Errorf("ES signaling share = %.3f, want ~0.82", esShare)
	}
	roamShare := float64(esRoaming) / float64(fromES)
	if roamShare < 0.85 {
		t.Errorf("ES roaming-signaling share = %.3f, want >= 0.9", roamShare)
	}
}

func TestGenerateM2MSampling(t *testing.T) {
	full := GenerateM2M(smallM2M())
	cfg := smallM2M()
	cfg.SampleRate = 0.5
	half := GenerateM2M(cfg)
	ratio := float64(len(half.Transactions)) / float64(len(full.Transactions))
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("sampled/full = %.3f, want ~0.5", ratio)
	}
}

func TestM2MSaveLoadRoundTrip(t *testing.T) {
	cfg := smallM2M()
	cfg.Devices = 200
	ds := GenerateM2M(cfg)
	var buf bytes.Buffer
	if err := ds.SaveTransactions(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTransactions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Transactions) != len(ds.Transactions) {
		t.Fatalf("loaded %d txs, saved %d", len(got.Transactions), len(ds.Transactions))
	}
	for i := range got.Transactions {
		if got.Transactions[i].Device != ds.Transactions[i].Device {
			t.Fatal("loaded transaction differs")
		}
	}
	if got.Days < ds.Days-1 || got.Days > ds.Days {
		t.Errorf("inferred days = %d, want ~%d", got.Days, ds.Days)
	}
}

func TestM2MCSVExport(t *testing.T) {
	cfg := smallM2M()
	cfg.Devices = 50
	ds := GenerateM2M(cfg)
	var buf bytes.Buffer
	if err := ds.SaveTransactionsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := signaling.NewCSVReader(&buf)
	n := 0
	var tx signaling.Transaction
	for r.Read(&tx) == nil {
		n++
	}
	if n != len(ds.Transactions) {
		t.Errorf("CSV rows = %d, want %d", n, len(ds.Transactions))
	}
}

func TestGenerateMNOComposition(t *testing.T) {
	ds := GenerateMNO(smallMNO())
	if len(ds.Devices) != 4000 {
		t.Fatalf("devices = %d", len(ds.Devices))
	}
	classes := map[devices.Class]int{}
	m2mInbound, m2mTotal := 0, 0
	for _, d := range ds.Devices {
		classes[d.Class]++
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if d.Class.IsM2M() {
			m2mTotal++
			if !mccmnc.SameCountry(d.Home, ds.Host) {
				m2mInbound++
			}
		}
	}
	n := float64(len(ds.Devices))
	smart := float64(classes[devices.ClassSmartphone]) / n
	feat := float64(classes[devices.ClassFeaturePhone]) / n
	m2m := float64(m2mTotal) / n
	if math.Abs(smart-0.62) > 0.03 {
		t.Errorf("smartphone share = %.3f, want ~0.62", smart)
	}
	if math.Abs(feat-0.08) > 0.02 {
		t.Errorf("feature phone share = %.3f, want ~0.08", feat)
	}
	if math.Abs(m2m-0.30) > 0.03 {
		t.Errorf("m2m share = %.3f, want ~0.30", m2m)
	}
	// Fig 6: ~74.7% of m2m devices are inbound roamers.
	if f := float64(m2mInbound) / float64(m2mTotal); math.Abs(f-0.747) > 0.05 {
		t.Errorf("inbound m2m = %.3f, want ~0.747", f)
	}
}

func TestGenerateMNOHomeCountries(t *testing.T) {
	ds := GenerateMNO(smallMNO())
	top3 := map[string]bool{"NL": true, "SE": true, "ES": true}
	inbound, inTop3 := 0, 0
	meterHomes := map[mccmnc.PLMN]int{}
	for _, d := range ds.Devices {
		if mccmnc.SameCountry(d.Home, ds.Host) {
			continue
		}
		if d.MVNO {
			t.Fatal("MVNO device marked as foreign")
		}
		inbound++
		if top3[d.HomeISO()] {
			inTop3++
		}
		if d.Class == devices.ClassSmartMeter {
			meterHomes[d.Home]++
		}
	}
	// Fig 5: top-3 home countries hold ~60% of inbound roamers.
	f := float64(inTop3) / float64(inbound)
	if f < 0.50 || f > 0.75 {
		t.Errorf("top-3 inbound share = %.3f, want ~0.60", f)
	}
	// §4.4: every roaming meter is provisioned by the one NL operator.
	if len(meterHomes) != 1 {
		t.Fatalf("roaming meter homes = %v, want exactly Vodafone NL", meterHomes)
	}
	for plmn := range meterHomes {
		if plmn != mccmnc.MustParse("20404") {
			t.Errorf("roaming meters homed at %v", plmn)
		}
	}
}

func TestGenerateMNOCatalogConsistency(t *testing.T) {
	ds := GenerateMNO(smallMNO())
	if len(ds.Catalog.Records) == 0 {
		t.Fatal("empty catalog")
	}
	ids := map[identity.DeviceID]bool{}
	for _, d := range ds.Devices {
		ids[d.ID] = true
	}
	for i := range ds.Catalog.Records {
		r := &ds.Catalog.Records[i]
		if !ids[r.Device] {
			t.Fatal("catalog record for unknown device")
		}
		if r.Day < 0 || r.Day >= ds.Days {
			t.Fatalf("record day %d outside window", r.Day)
		}
		if r.Events < 0 || r.FailedEvents > r.Events {
			t.Fatalf("event counts inconsistent: %d/%d", r.Events, r.FailedEvents)
		}
		if len(r.Visited) == 0 {
			t.Fatal("record without visited network")
		}
	}
	// Summaries must join the GSMA catalog for every device.
	sums := ds.Catalog.Summaries(ds.GSMA)
	joined := 0
	for _, s := range sums {
		if s.InfoOK {
			joined++
		}
	}
	if f := float64(joined) / float64(len(sums)); f < 0.999 {
		t.Errorf("GSMA join rate = %.4f, want ~1", f)
	}
}

func TestGenerateMNOSMIPRange(t *testing.T) {
	ds := GenerateMNO(smallMNO())
	// Native meters sit inside the dedicated IMSI range; nothing else
	// does.
	for _, d := range ds.Devices {
		inRange := d.IMSI.PLMN == ds.Host && d.IMSI.MSIN >= SMIPNativeBase
		isNativeMeter := d.Class == devices.ClassSmartMeter && d.Home == ds.Host
		if inRange != isNativeMeter {
			t.Fatalf("IMSI range mismatch: class=%v home=%v imsi=%v", d.Class, d.Home, d.IMSI)
		}
	}
}

func TestGenerateSMIPCohorts(t *testing.T) {
	ds := GenerateSMIP(smallSMIP())
	if len(ds.Devices) != 2500 {
		t.Fatalf("devices = %d", len(ds.Devices))
	}
	native, roaming := 0, 0
	for _, d := range ds.Devices {
		if ds.Native[d.ID] {
			native++
			if !d.IMSI.InRange(ds.NativeRange) {
				t.Fatal("native meter outside dedicated IMSI range")
			}
		} else {
			roaming++
			if d.Home != mccmnc.MustParse("20404") {
				t.Fatalf("roaming meter homed at %v", d.Home)
			}
			if v := d.Info.Vendor; v != "Gemalto" && v != "Telit" {
				t.Fatalf("roaming meter vendor %q", v)
			}
		}
	}
	if native != 1500 || roaming != 1000 {
		t.Errorf("cohorts = %d/%d", native, roaming)
	}
}

func TestGenerateSMIPActivityContrast(t *testing.T) {
	ds := GenerateSMIP(smallSMIP())
	activeDays := map[identity.DeviceID]int{}
	events := map[identity.DeviceID]int{}
	for i := range ds.Catalog.Records {
		r := &ds.Catalog.Records[i]
		activeDays[r.Device]++
		events[r.Device] += r.Events
	}
	var natDays, roamDays []float64
	var natEv, roamEv, natN, roamN float64
	for _, d := range ds.Devices {
		if ds.Native[d.ID] {
			natDays = append(natDays, float64(activeDays[d.ID]))
			natEv += float64(events[d.ID])
			natN++
		} else {
			roamDays = append(roamDays, float64(activeDays[d.ID]))
			roamEv += float64(events[d.ID])
			roamN++
		}
	}
	sort.Float64s(natDays)
	sort.Float64s(roamDays)
	if med := natDays[len(natDays)/2]; med < 22 {
		t.Errorf("native median active days = %.0f, want ~26", med)
	}
	if med := roamDays[len(roamDays)/2]; med > 8 {
		t.Errorf("roaming median active days = %.0f, want ~5", med)
	}
	// Fig 11b: per-active-day signaling of roaming meters ~10x native.
	natPerDay := natEv / sum(natDays)
	roamPerDay := roamEv / sum(roamDays)
	if ratio := roamPerDay / natPerDay; ratio < 5 || ratio > 16 {
		t.Errorf("roaming/native signaling per day = %.1f, want ~10", ratio)
	}
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func TestGenerateMNODeterministic(t *testing.T) {
	cfg := smallMNO()
	cfg.Devices = 500
	a, b := GenerateMNO(cfg), GenerateMNO(cfg)
	if len(a.Catalog.Records) != len(b.Catalog.Records) {
		t.Fatal("catalog sizes differ")
	}
	for i := range a.Catalog.Records {
		x, y := a.Catalog.Records[i], b.Catalog.Records[i]
		if x.Device != y.Device || x.Day != y.Day || x.Events != y.Events || x.Bytes != y.Bytes {
			t.Fatalf("record %d differs", i)
		}
	}
}

func BenchmarkGenerateM2M(b *testing.B) {
	cfg := smallM2M()
	for i := 0; i < b.N; i++ {
		_ = GenerateM2M(cfg)
	}
}

func BenchmarkGenerateMNO(b *testing.B) {
	cfg := smallMNO()
	for i := 0; i < b.N; i++ {
		_ = GenerateMNO(cfg)
	}
}

// A federation with ArchiveDir set persists one verifiable store per
// site while the catalogs build, and each store replays the site's
// CDR plane deterministically across worker counts.
func TestFederationArchiveSites(t *testing.T) {
	cfg := DefaultFederationConfig()
	cfg.FleetDevices, cfg.NativePerSite, cfg.Days = 150, 80, 5
	cfg.ArchiveDir = t.TempDir()
	fed := GenerateFederation(cfg)

	for _, site := range fed.Sites {
		dir := filepath.Join(cfg.ArchiveDir, "site-"+site.Host.Concat())
		r, err := store.Open(dir)
		if err != nil {
			t.Fatalf("site %v: %v", site.Host, err)
		}
		if rep := r.Verify(); !rep.OK() {
			t.Fatalf("site %v store fails verification:\n%s", site.Host, rep)
		}
		if r.Manifest().TotalRecords == 0 {
			t.Fatalf("site %v archived no records", site.Host)
		}
		cat1, _, err := r.Replay(store.Filter{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		cat4, _, err := r.Replay(store.Filter{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cat1.Records, cat4.Records) {
			t.Fatalf("site %v: replay differs between worker counts", site.Host)
		}
		if len(cat1.Records) == 0 {
			t.Fatalf("site %v: replayed catalog is empty", site.Host)
		}
	}
}
