package dataset

import (
	"fmt"
	"io"
	"os"

	"whereroam/internal/signaling"
)

// SaveTransactions writes the M2M dataset's transaction stream in the
// binary wire format.
func (ds *M2MDataset) SaveTransactions(w io.Writer) error {
	return signaling.WriteAll(w, ds.Transactions)
}

// SaveTransactionsFile writes the transaction stream to a file.
func (ds *M2MDataset) SaveTransactionsFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return ds.SaveTransactions(f)
}

// SaveTransactionsCSV writes the transaction stream as CSV.
func (ds *M2MDataset) SaveTransactionsCSV(w io.Writer) error {
	cw := signaling.NewCSVWriter(w)
	for i := range ds.Transactions {
		if err := cw.Write(&ds.Transactions[i]); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// LoadTransactions reads a binary transaction stream into a dataset
// shell (ground truth is not persisted; analyses that need it must
// regenerate).
func LoadTransactions(r io.Reader) (*M2MDataset, error) {
	txs, err := signaling.ReadAll(r)
	if err != nil {
		return nil, err
	}
	ds := &M2MDataset{Transactions: txs}
	if len(txs) > 0 {
		first := txs[0].Time
		last := txs[len(txs)-1].Time
		ds.Start = first.Truncate(24 * 3600e9)
		ds.Days = int(last.Sub(ds.Start).Hours()/24) + 1
	}
	return ds, nil
}
