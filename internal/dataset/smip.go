package dataset

import (
	"time"

	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/devices"
	"whereroam/internal/geo"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/mobility"
	"whereroam/internal/rng"
)

// SMIPConfig parameterizes the smart-meter dataset generator (§7,
// Fig 11: 1–26 October 2019).
type SMIPConfig struct {
	Seed          uint64
	NativeMeters  int // host-MNO SIMs in the dedicated IMSI range
	RoamingMeters int // global IoT SIMs homed at the NL operator
	Days          int
	Start         time.Time
	Host          mccmnc.PLMN
	GSMASeed      uint64
	// NBIoTMigration is the fraction of roaming meters migrated to
	// NB-IoT (the §8 scenario). Zero reproduces the paper's 2G fleet.
	NBIoTMigration float64
	// Workers bounds the raw-capture worker pool (GenerateSMIPRaw);
	// values below one mean one worker per CPU. The capture and the
	// built catalog are identical for every worker count.
	Workers int
	// ArchiveCDRs, when non-nil, additionally receives every CDR/xDR
	// the streaming measurement path (GenerateSMIPStreaming) offers
	// the ingest router — the probe.Fanout persist-and-ingest hook.
	// Point it at a store.Writer.Sink to archive the live feed while
	// the catalog builds in the same pass. It is called concurrently
	// from the emission shards; each device's records arrive in
	// per-device time order, the order contract an archived feed's
	// replay rests on (see internal/store).
	ArchiveCDRs func(cdrs.Record)
}

// DefaultSMIPConfig returns the standard scaled-down configuration
// (the paper studies 3.2M meters; 1/100 scale keeps runs instant).
func DefaultSMIPConfig() SMIPConfig {
	return SMIPConfig{
		Seed:          1,
		NativeMeters:  20000,
		RoamingMeters: 12000,
		Days:          26,
		Start:         time.Date(2019, 10, 1, 0, 0, 0, 0, time.UTC),
		Host:          mccmnc.MustParse("23410"),
		GSMASeed:      1,
	}
}

// SMIPDataset is the §7 dataset.
type SMIPDataset struct {
	Host    mccmnc.PLMN
	Start   time.Time
	Days    int
	GSMA    *gsma.DB
	Devices []devices.Device
	Catalog *catalog.Catalog
	// Native marks the SMIP-native cohort (false = roaming meter).
	Native map[identity.DeviceID]bool
	// NBIoT marks the roaming meters migrated to NB-IoT (empty when
	// NBIoTMigration is zero).
	NBIoT map[identity.DeviceID]bool
	// NativeRange is the dedicated IMSI block of the native cohort.
	NativeRange identity.IMSIRange
}

// GenerateSMIP synthesizes the smart-meter dataset.
func GenerateSMIP(cfg SMIPConfig) *SMIPDataset {
	if cfg.NativeMeters < 0 || cfg.RoamingMeters < 0 || cfg.Days <= 0 {
		panic("dataset: SMIP config needs non-negative cohorts and positive Days")
	}
	db := gsma.Synthesize(cfg.GSMASeed)
	root := rng.New(cfg.Seed).Split("smip")
	hostCountry, _ := mccmnc.CountryByMCC(cfg.Host.MCC)
	centre := geo.Point{Lat: hostCountry.Lat, Lon: hostCountry.Lon}
	alloc := devices.NewIMSIAllocator()
	nlHome := mccmnc.MustParse("20404")

	ds := &SMIPDataset{
		Host:   cfg.Host,
		Start:  cfg.Start,
		Days:   cfg.Days,
		GSMA:   db,
		Native: make(map[identity.DeviceID]bool, cfg.NativeMeters+cfg.RoamingMeters),
		NBIoT:  map[identity.DeviceID]bool{},
	}
	cat := &catalog.Catalog{Host: cfg.Host, Days: cfg.Days}
	appendRec := func(rec catalog.DailyRecord) { cat.Records = append(cat.Records, rec) }
	var visits []geo.Visit

	for i := 0; i < cfg.NativeMeters; i++ {
		src := root.SplitN("native", uint64(i))
		imsi := alloc.Next(cfg.Host, SMIPNativeBase)
		prof := devices.SmartMeterNativeProfile(src.Split("profile"), cfg.Days, cfg.Host)
		info := db.Pick(src.Split("tac"), gsma.ArchM2MModule)
		mob := mobility.NewStationary(src.Split("mob"), centre, 150)
		dev := devices.Assemble(devices.ClassSmartMeter, imsi, info, prof, mob, false)
		ds.Devices = append(ds.Devices, dev)
		ds.Native[dev.ID] = true
		emitDeviceDays(src.Split("days"), cfg.Host, cfg.Start, cfg.Days, appendRec, &dev, &visits)
	}
	for i := 0; i < cfg.RoamingMeters; i++ {
		src := root.SplitN("roaming", uint64(i))
		imsi := alloc.Next(nlHome, 4_000_000_000)
		migrated := cfg.NBIoTMigration > 0 && src.Bool(cfg.NBIoTMigration)
		var prof devices.Profile
		if migrated {
			prof = devices.NBIoTMeterProfile(src.Split("profile"), cfg.Days)
		} else {
			prof = devices.SmartMeterRoamingProfile(src.Split("profile"), cfg.Days)
		}
		// §4.4: every roaming meter maps to a Gemalto or Telit module.
		info := db.PickFromVendors(src.Split("tac"), gsma.ArchM2MModule, "Gemalto", "Telit")
		mob := mobility.NewStationary(src.Split("mob"), centre, 150)
		dev := devices.Assemble(devices.ClassSmartMeter, imsi, info, prof, mob, false)
		ds.Devices = append(ds.Devices, dev)
		ds.Native[dev.ID] = false
		if migrated {
			ds.NBIoT[dev.ID] = true
		}
		emitDeviceDays(src.Split("days"), cfg.Host, cfg.Start, cfg.Days, appendRec, &dev, &visits)
	}
	ds.Catalog = cat
	ds.NativeRange = SMIPNativeRange(cfg.Host, alloc.Allocated(cfg.Host, SMIPNativeBase))
	return ds
}
