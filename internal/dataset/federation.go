package dataset

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/devices"
	"whereroam/internal/geo"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/ingest"
	"whereroam/internal/mccmnc"
	"whereroam/internal/netsim"
	"whereroam/internal/pipeline"
	"whereroam/internal/probe"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
	"whereroam/internal/store"
)

// FederationConfig parameterizes the multi-operator federation
// generator: one shared world, GSMA catalog and global roamer fleet,
// observed independently by every visited operator in Hosts.
type FederationConfig struct {
	Seed uint64
	// Hosts lists the visited MNOs ("sites"); every site observes the
	// shared fleet through its own capture pipeline. Empty means
	// DefaultFederationHosts.
	Hosts []mccmnc.PLMN
	// FleetDevices is the size of the shared global fleet — the
	// inbound-roaming population (mostly M2M, per Fig 6) that appears
	// in several sites' catalogs.
	FleetDevices int
	// NativePerSite is each site's local background population
	// (smartphones, feature phones and a thin M2M tail, all homed at
	// the site operator).
	NativePerSite int
	Days          int
	Start         time.Time
	// GSMASeed seeds the shared synthetic TAC catalog (every site
	// joins against the same database, as in the real world).
	GSMASeed uint64
	// AttachProb is the chance a fleet device also roams into each
	// allowed site beyond its anchor site; it controls how much the
	// sites' fleet views overlap.
	AttachProb float64
	// Workers bounds every worker pool of the build — fleet synthesis,
	// per-site emission and catalog aggregation. The usual contract
	// holds: values below one mean one worker per CPU and the dataset
	// is bit-identical for every worker count.
	Workers int
	// Streaming builds each site's catalog through the bounded-memory
	// ingest router (probe taps → ingest.CatalogIngester) instead of
	// the batch per-shard builders merged with catalog.Builder.Merge.
	// Both paths produce bit-identical catalogs.
	Streaming bool
	// ArchiveDir, when non-empty, persists every site's CDR/xDR feed
	// to a segmented archive at ArchiveDir/site-<plmn> while that
	// site's catalog builds (batch and streaming alike) — the
	// persist-and-ingest fanout of internal/store, one store per
	// visited operator. The build panics on archive I/O errors,
	// mirroring the config-validation panics.
	ArchiveDir string
	// ArchiveSegmentRecords caps records per archive segment; 0 means
	// store.DefaultSegmentRecords. Smaller segments mean more pruning
	// opportunities per query — CI's smoke job uses a small cap so even
	// a tiny archive exercises range and bloom pruning. The archived
	// bytes are identical either way; only the segment boundaries move.
	ArchiveSegmentRecords int
	// BoundedMemory switches the build to the out-of-core pipeline: a
	// counting pre-pass turns the fleet's serial IMSI allocation into
	// per-shard block offsets, and sites are then built one at a time
	// by re-drafting each device from its RNG substream and streaming
	// its records straight into the site's catalog ingester — the full
	// fleet, the native populations and the per-site observation lists
	// are never materialized. The catalogs, Present/Truth sets and
	// archives are bit-identical to the materialized build at every
	// worker count. Fleet, Schedule, the dataset-level Truth map and
	// each site's Natives slice start unmaterialized; call
	// FederationDataset.EnsureFleet to fill the fleet-plane views on
	// demand (the sites' catalogs stay as built).
	BoundedMemory bool
}

// DefaultFederationHosts is the standard three-site footprint: the
// paper's UK visited MNO plus the German and Swedish anchor networks
// of the world's IPX hub — three operators that all see the same
// global fleets.
func DefaultFederationHosts() []mccmnc.PLMN {
	return []mccmnc.PLMN{
		mccmnc.MustParse("23410"), // GB — the paper's visited MNO
		mccmnc.MustParse("26201"), // DE
		mccmnc.MustParse("24001"), // SE
	}
}

// DefaultFederationConfig returns the standard scaled-down
// three-site configuration.
func DefaultFederationConfig() FederationConfig {
	return FederationConfig{
		Seed:          1,
		Hosts:         DefaultFederationHosts(),
		FleetDevices:  3000,
		NativePerSite: 1500,
		Days:          10,
		Start:         time.Date(2019, 4, 5, 0, 0, 0, 0, time.UTC),
		GSMASeed:      1,
		AttachProb:    0.45,
	}
}

// ScheduleHome marks a day on which a fleet device is at its home
// network (or offline) in a presence schedule: it emits at no
// federation site that day.
const ScheduleHome = int8(-1)

// FederationDataset is the multi-operator dataset: the shared plane
// (world, GSMA catalog, fleet ground truth, presence schedule) plus
// one FederationSite per visited operator.
type FederationDataset struct {
	Hosts []mccmnc.PLMN
	Start time.Time
	Days  int
	GSMA  *gsma.DB
	World *netsim.World
	// Fleet is the shared global roamer population; the same devices
	// (same IMSI, IMEI, class, home operator) appear in every site
	// catalog they roam into.
	Fleet []devices.Device
	// Truth maps fleet device IDs to ground-truth classes.
	Truth map[identity.DeviceID]devices.Class
	// Schedule is the shared per-day presence schedule, aligned with
	// Fleet: Schedule[i][day] is the index into Hosts of the one site
	// device i is present at on that day, or ScheduleHome. Presence is
	// mutually exclusive by construction — a device abroad at one site
	// on a day emits nothing at every other site that day — and every
	// site's emission path (batch and streaming) consults it.
	Schedule [][]int8
	// Sites holds one per-visited-MNO view, in Hosts order.
	Sites []*FederationSite

	// members retains the fleet's RNG substreams and schedules so the
	// federated SMIP/M2M plane generators can derive further
	// per-(device, plane) streams without rebuilding the fleet.
	members []fleetMember
	// cfg is the build configuration, retained for the plane
	// generators (scale, streaming switch, worker budget).
	cfg FederationConfig
	// fleetOnce guards the lazy fleet materialization of a
	// bounded-memory build (see EnsureFleet).
	fleetOnce sync.Once
}

// EnsureFleet materializes Fleet, Schedule and the dataset-level Truth
// map on a bounded-memory dataset, rebuilding the fleet from the
// retained configuration (the per-device RNG substreams make the
// rebuild bit-identical to what a materialized GenerateFederation
// would have produced). It is a no-op when the fleet is already
// resident, and safe for concurrent callers.
func (fed *FederationDataset) EnsureFleet() {
	fed.fleetOnce.Do(func() {
		if fed.members != nil {
			return
		}
		root := rng.New(fed.cfg.Seed).Split("federation")
		fed.adoptFleet(generateFleet(fed.cfg, root, fed.GSMA, fed.World))
	})
}

// adoptFleet installs the materialized fleet into the dataset's
// exported fleet-plane views.
func (fed *FederationDataset) adoptFleet(fleet []fleetMember) {
	fed.members = fleet
	fed.Fleet = make([]devices.Device, len(fleet))
	fed.Schedule = make([][]int8, len(fleet))
	if fed.Truth == nil {
		fed.Truth = make(map[identity.DeviceID]devices.Class, len(fleet))
	}
	for i := range fleet {
		fed.Fleet[i] = fleet[i].dev
		fed.Schedule[i] = fleet[i].sched
		fed.Truth[fleet[i].dev.ID] = fleet[i].dev.Class
	}
}

// ScheduledSite returns the site index device i (in Fleet order) is
// present at on day, or ScheduleHome when it is at home or offline.
func (fed *FederationDataset) ScheduledSite(i, day int) int8 {
	return fed.Schedule[i][day]
}

// FederationSite is one visited operator's view of the shared world:
// its local population, the subset of the fleet that roamed in, and
// the devices-catalog its own capture pipeline built.
type FederationSite struct {
	// Index is the site's position in FederationConfig.Hosts.
	Index int
	// Host is the site's visited MNO.
	Host mccmnc.PLMN
	// Natives is the site's local population (homed at Host).
	Natives []devices.Device
	// Present marks the fleet devices that roamed into this site.
	Present map[identity.DeviceID]bool
	// Truth maps every locally observed device — natives and present
	// fleet — to its ground-truth class.
	Truth map[identity.DeviceID]devices.Class
	// Catalog is the devices-catalog the site's pipeline built.
	Catalog *catalog.Catalog
}

// fleetMember carries a fleet device plus the finalized RNG substream
// its per-site derivations split from, its provisioned-site mask and
// its per-day presence schedule.
type fleetMember struct {
	dev devices.Device
	src *rng.Source
	// sites marks the sites the device's home operator provisioned it
	// into (anchor + AttachProb extras); the schedule allocates days
	// among them.
	sites []bool
	// sched maps each window day to the one site index the device is
	// present at, or ScheduleHome.
	sched []int8
}

// daysAt counts the device's scheduled days at site j. A provisioned
// site can end up with zero days (the schedule never toured it); the
// device is then absent from that site's catalog entirely.
func (m *fleetMember) daysAt(j int) int {
	n := 0
	for _, s := range m.sched {
		if int(s) == j {
			n++
		}
	}
	return n
}

// fleet composition: the inbound-roamer mix of Fig 6 — dominated by
// M2M, with a travelling-smartphone and feature-phone tail.
const (
	fleetShareSmart = 0.20
	fleetShareFeat  = 0.05
	fleetShareM2M   = 0.75
)

// native composition per site: the H:H background population.
var nativeMix = []struct {
	class devices.Class
	share float64
}{
	{devices.ClassSmartphone, 0.80},
	{devices.ClassFeaturePhone, 0.10},
	{devices.ClassPOSTerminal, 0.04},
	{devices.ClassWearable, 0.03},
	{devices.ClassConnectedCar, 0.03},
}

// nativeBase is the MSIN base of site operators' consumer blocks.
const nativeBase = 1_000_000_000

// fleetPhoneBase is the MSIN base of the fleet's travelling phones.
// It is disjoint from nativeBase so a fleet phone homed at a site
// operator can never alias one of that site's own subscribers (the
// M2M fleet already lives in M2MBlockBase).
const fleetPhoneBase = 2_000_000_000

// siteKey folds a PLMN into the substream index of its site, so a
// site's native population and per-device emission streams depend
// only on (seed, host) — never on the host's list position. Note the
// fleet's site-presence draw is the one place the whole Hosts set
// matters: the anchor guarantees each device at least one allowed
// site, so changing the set re-draws presence (see generateFleet).
func siteKey(p mccmnc.PLMN) uint64 {
	return uint64(p.MCC)<<32 | uint64(p.MNC)<<8 | uint64(p.MNCLen)
}

// GenerateFederation synthesizes the multi-operator dataset.
//
// The build has two planes. The shared plane runs once: the world and
// GSMA catalog, then the fleet in the usual three passes (parallel
// class/home draft, serial IMSI allocation, parallel profile finish) —
// ending with each device's site-presence draw: an anchor site chosen
// among the sites its home operator can roam onto, plus each further
// allowed site with probability AttachProb.
//
// The site plane then fans out over internal/pipeline: every site
// independently drafts its native population and walks all locally
// present devices — natives first, then the present fleet in fleet
// order — through the per-event measurement path (radio events and
// CDRs/xDRs through probe taps) into its own catalog build. Batch
// sites aggregate one catalog.Builder per emission shard and combine
// them with Builder.Merge (feeds are device-disjoint, so the merge is
// exact); streaming sites route the same events through an
// ingest.CatalogIngester. Every random draw comes from a per-device
// or per-(device, site) substream, so the dataset is bit-identical
// across worker counts and across the batch/streaming switch.
func GenerateFederation(cfg FederationConfig) *FederationDataset {
	cfg = validateFederationConfig(cfg)

	db := gsma.Synthesize(cfg.GSMASeed)
	world := netsim.NewWorld(netsim.DefaultConfig())
	root := rng.New(cfg.Seed).Split("federation")

	fed := &FederationDataset{
		Hosts: append([]mccmnc.PLMN(nil), cfg.Hosts...),
		Start: cfg.Start,
		Days:  cfg.Days,
		GSMA:  db,
		World: world,
		cfg:   cfg,
	}

	if cfg.BoundedMemory {
		generateFederationBounded(cfg, fed, root)
		return fed
	}

	fed.Truth = make(map[identity.DeviceID]devices.Class, cfg.FleetDevices)
	fleet := generateFleet(cfg, root, db, world)
	fed.adoptFleet(fleet)

	// Site plane: every site generates independently from its own
	// host-keyed substream, so the fan-out is free to run sites
	// concurrently on the shared worker budget.
	fed.Sites = make([]*FederationSite, len(cfg.Hosts))
	pipeline.Run(len(cfg.Hosts), cfg.Workers, func(sh pipeline.Shard) {
		for j := sh.Lo; j < sh.Hi; j++ {
			fed.Sites[j] = generateSite(cfg, j, root, db, fleet)
		}
	})
	return fed
}

// validateFederationConfig normalizes the defaults and panics on the
// configurations the generator cannot honour, so the materialized and
// bounded builds reject identically.
func validateFederationConfig(cfg FederationConfig) FederationConfig {
	if len(cfg.Hosts) == 0 {
		cfg.Hosts = DefaultFederationHosts()
	}
	if cfg.FleetDevices <= 0 || cfg.Days <= 0 {
		panic("dataset: federation config needs positive FleetDevices and Days")
	}
	if cfg.NativePerSite < 0 {
		panic("dataset: federation config needs non-negative NativePerSite")
	}
	if cfg.AttachProb <= 0 {
		cfg.AttachProb = DefaultFederationConfig().AttachProb
	}
	if len(cfg.Hosts) > 127 {
		panic("dataset: federation supports at most 127 sites (the presence schedule stores site indices as int8)")
	}
	for i, h := range cfg.Hosts {
		for _, o := range cfg.Hosts[:i] {
			if h == o {
				panic(fmt.Sprintf("dataset: federation host %v listed twice", h))
			}
		}
	}
	return cfg
}

// fleetDraft is the pass-1 outcome for one fleet device.
type fleetDraft struct {
	class devices.Class
	home  mccmnc.PLMN
	base  uint64
	src   *rng.Source
}

// fleetPicks builds the fleet's shared class samplers (stateless per
// draw, like mnoPicks) from the fleet substream root.
func fleetPicks(froot *rng.Source) (classPick, m2mPick *rng.Weighted) {
	classPick = rng.NewWeighted(froot.Split("class"),
		[]float64{fleetShareSmart, fleetShareFeat, fleetShareM2M})
	m2mWeights := make([]float64, len(m2mMix))
	for i, m := range m2mMix {
		m2mWeights[i] = m.share
	}
	m2mPick = rng.NewWeighted(froot.Split("m2m"), m2mWeights)
	return classPick, m2mPick
}

// drawFleetDraft replays fleet device i's pass-1 draws (class, home
// operator, IMSI block) from the fleet root. Both the materialized
// draft pass and the out-of-core counting/emission walks go through
// this helper, so they see bit-identical draws.
func drawFleetDraft(froot *rng.Source, i int, classPick, m2mPick *rng.Weighted) fleetDraft {
	src := froot.SplitN("device", uint64(i))
	var class devices.Class
	switch classPick.DrawFrom(src) {
	case 0:
		class = devices.ClassSmartphone
	case 1:
		class = devices.ClassFeaturePhone
	default:
		class = m2mMix[m2mPick.DrawFrom(src)].class
	}
	var home mccmnc.PLMN
	switch class {
	case devices.ClassSmartphone:
		home = drawHome(src.Split("home"), smartHomes)
	case devices.ClassFeaturePhone:
		home = drawHome(src.Split("home"), featHomes)
	default:
		home = drawHome(src.Split("home"), m2mHomes[class])
	}
	base := uint64(fleetPhoneBase)
	if class.IsM2M() {
		base = M2MBlockBase
	}
	return fleetDraft{class: class, home: home, base: base, src: src}
}

// finishFleetMember runs one drafted fleet device through pass 3:
// profile, identity, site presence and the per-day schedule. The
// device's substream is not advanced past this point: per-site
// emission derives from it with read-only splits, which is what lets
// sites generate concurrently (and, out-of-core, lets any site rebuild
// the member independently).
func finishFleetMember(d *fleetDraft, imsi identity.IMSI, cfg FederationConfig, db *gsma.DB, world *netsim.World) fleetMember {
	psrc := d.src.Split("profile")
	prof, info := classProfile(psrc, d.class, cfg.Days, mccmnc.PLMN{}, d.home, true, db)
	homeCountry, _ := mccmnc.CountryByMCC(d.home.MCC)
	mob := classMobility(d.src.Split("mobility"), d.class,
		geo.Point{Lat: homeCountry.Lat, Lon: homeCountry.Lon})
	dev := devices.Assemble(d.class, imsi, info, prof, mob, false)

	// Site presence: an anchor among the allowed sites plus each
	// further allowed site with probability AttachProb.
	ssrc := d.src.Split("sites")
	sites := make([]bool, len(cfg.Hosts))
	anchor := -1
	var allowed []int
	for j, host := range cfg.Hosts {
		if host != d.home && world.RoamingAllowed(d.home, host) {
			allowed = append(allowed, j)
		}
	}
	if len(allowed) > 0 {
		anchor = allowed[ssrc.Intn(len(allowed))]
		for _, j := range allowed {
			sites[j] = j == anchor || ssrc.Bool(cfg.AttachProb)
		}
	}
	sched := drawSchedule(d.src.Split("schedule"), d.class, sites, anchor, cfg.Days)
	return fleetMember{dev: dev, src: d.src, sites: sites, sched: sched}
}

// generateFleet runs the shared fleet's three passes and the
// site-presence draw.
func generateFleet(cfg FederationConfig, root *rng.Source, db *gsma.DB, world *netsim.World) []fleetMember {
	froot := root.Split("fleet")
	classPick, m2mPick := fleetPicks(froot)

	// Pass 1 (parallel): class and home-operator draws.
	drafts := make([]fleetDraft, cfg.FleetDevices)
	pipeline.Run(cfg.FleetDevices, cfg.Workers, func(sh pipeline.Shard) {
		for i := sh.Lo; i < sh.Hi; i++ {
			drafts[i] = drawFleetDraft(froot, i, classPick, m2mPick)
		}
	})

	// Pass 2 (serial): IMSI allocation in device order.
	alloc := devices.NewIMSIAllocator()
	imsis := make([]identity.IMSI, cfg.FleetDevices)
	for i := range drafts {
		imsis[i] = alloc.Next(drafts[i].home, drafts[i].base)
	}

	// Pass 3 (parallel): profiles, identity and site presence.
	fleet := make([]fleetMember, cfg.FleetDevices)
	pipeline.Run(cfg.FleetDevices, cfg.Workers, func(sh pipeline.Shard) {
		for i := sh.Lo; i < sh.Hi; i++ {
			fleet[i] = finishFleetMember(&drafts[i], imsis[i], cfg, db, world)
		}
	})
	return fleet
}

// home-recall probabilities of the presence schedule: the chance a
// mobile fleet device spends a given day at home (or offline) instead
// of at its scheduled site. Phones travel in trips and are home-heavy;
// deployed M2M devices rarely leave the field; stationary verticals
// (meters, POS terminals) never move at all.
const (
	homeDayProbPhone = 0.20
	homeDayProbM2M   = 0.05
)

// scheduleStationary reports whether a class never relocates once
// deployed: its schedule is its anchor site every day, and the
// AttachProb extras its home provisioned are never toured.
func scheduleStationary(class devices.Class) bool {
	return class == devices.ClassSmartMeter || class == devices.ClassPOSTerminal
}

// drawSchedule allocates one fleet device's window days among its
// provisioned sites and home — the mutually exclusive replacement for
// independent per-site activity: each day maps to exactly one site
// index, or ScheduleHome.
//
// Stationary classes camp on their anchor for the whole window.
// Mobile classes tour their provisioned sites: the window splits into
// one contiguous sojourn per site, in a random order with random cut
// points (every provisioned site gets at least one day whenever the
// window is long enough), and each day carries a class-dependent
// home-recall probability. Every draw comes from the device's own
// substream, so the schedule is worker-count invariant and sites can
// consult it concurrently through read-only access.
func drawSchedule(src *rng.Source, class devices.Class, sites []bool, anchor, days int) []int8 {
	sched := make([]int8, days)
	for d := range sched {
		sched[d] = ScheduleHome
	}
	if anchor < 0 {
		return sched // no allowed site: the device never roams in
	}
	if scheduleStationary(class) {
		for d := range sched {
			sched[d] = int8(anchor)
		}
		return sched
	}

	var present []int
	for j, ok := range sites {
		if ok {
			present = append(present, j)
		}
	}
	order := src.Perm(len(present))

	homeProb := homeDayProbM2M
	if !class.IsM2M() {
		homeProb = homeDayProbPhone
	}

	if len(present) >= days {
		// Degenerate short window: one day per site until days run out.
		for d := range sched {
			sched[d] = int8(present[order[d]])
		}
		return sched
	}

	// Random composition of the window into len(present) sojourns,
	// each at least one day: cut points are a sorted sample of the
	// interior day boundaries.
	cuts := src.Perm(days - 1)[:len(present)-1]
	sort.Ints(cuts)
	seg := 0
	for d := 0; d < days; d++ {
		sched[d] = int8(present[order[seg]])
		// Cut c ends its sojourn after day c; distinct sorted cuts in
		// [0, days-2] keep every sojourn at least one day long.
		if seg < len(cuts) && d == cuts[seg] {
			seg++
		}
	}
	for d := range sched {
		if src.Bool(homeProb) {
			sched[d] = ScheduleHome
		}
	}
	return sched
}

// localDevice is one device a site observes, with the substream its
// emission draws from, the mobility model it moves by while in the
// site's country, and — for fleet devices — the shared presence
// schedule's per-day gate at this site (nil = present every day).
type localDevice struct {
	dev  devices.Device
	emit *rng.Source
	// presentDay gates emission days; nil means every window day.
	presentDay func(day int) bool
}

// generateSite builds one visited operator's population and catalog.
func generateSite(cfg FederationConfig, j int, root *rng.Source, db *gsma.DB, fleet []fleetMember) *FederationSite {
	host := cfg.Hosts[j]
	sroot := root.SplitN("site", siteKey(host))
	hostCountry, _ := mccmnc.CountryByMCC(host.MCC)
	centre := geo.Point{Lat: hostCountry.Lat, Lon: hostCountry.Lon}
	grid := radio.NewGrid(hostCountry, 60, 60, radio.DefaultSpacingDeg)

	site := &FederationSite{
		Index:   j,
		Host:    host,
		Present: make(map[identity.DeviceID]bool),
		Truth:   make(map[identity.DeviceID]devices.Class, cfg.NativePerSite),
	}

	// Native population: class draft (parallel), IMSI allocation
	// (serial, index order), profile finish (parallel).
	nativeWeights := make([]float64, len(nativeMix))
	for i, m := range nativeMix {
		nativeWeights[i] = m.share
	}
	nativePick := rng.NewWeighted(sroot.Split("nativeclass"), nativeWeights)
	classes := make([]devices.Class, cfg.NativePerSite)
	srcs := make([]*rng.Source, cfg.NativePerSite)
	pipeline.Run(cfg.NativePerSite, cfg.Workers, func(sh pipeline.Shard) {
		for i := sh.Lo; i < sh.Hi; i++ {
			srcs[i] = sroot.SplitN("native", uint64(i))
			classes[i] = nativeMix[nativePick.DrawFrom(srcs[i])].class
		}
	})
	alloc := devices.NewIMSIAllocator()
	imsis := make([]identity.IMSI, cfg.NativePerSite)
	for i := range imsis {
		imsis[i] = alloc.Next(host, nativeBase)
	}
	natives := make([]devices.Device, cfg.NativePerSite)
	pipeline.Run(cfg.NativePerSite, cfg.Workers, func(sh pipeline.Shard) {
		for i := sh.Lo; i < sh.Hi; i++ {
			prof, info := classProfile(srcs[i].Split("profile"), classes[i], cfg.Days, host, host, false, db)
			mob := classMobility(srcs[i].Split("mobility"), classes[i], centre)
			natives[i] = devices.Assemble(classes[i], imsis[i], info, prof, mob, false)
		}
	})
	site.Natives = natives
	for i := range natives {
		site.Truth[natives[i].ID] = natives[i].Class
	}

	// Local observation set: natives first, then the present fleet in
	// fleet order — a deterministic list whose shard boundaries depend
	// only on its length. A fleet device joins the site only when the
	// shared presence schedule gives it at least one day here, and its
	// emission is gated to exactly those days — so a device abroad at
	// another site on day d contributes nothing to this catalog that
	// day. Fleet devices move by a site-local mobility model drawn
	// from their per-(device, site) substream.
	locals := make([]localDevice, 0, cfg.NativePerSite+len(fleet)/2)
	for i := range natives {
		locals = append(locals, localDevice{dev: natives[i], emit: srcs[i].Split("days")})
	}
	for i := range fleet {
		if fleet[i].daysAt(j) == 0 {
			continue
		}
		vsrc := fleet[i].src.SplitN("visit", siteKey(host))
		dev := fleet[i].dev
		dev.Mobility = classMobility(vsrc.Split("mobility"), dev.Class, centre)
		sched := fleet[i].sched
		locals = append(locals, localDevice{
			dev:        dev,
			emit:       vsrc.Split("days"),
			presentDay: func(day int) bool { return int(sched[day]) == j },
		})
		site.Present[dev.ID] = true
		site.Truth[dev.ID] = dev.Class
	}

	site.Catalog = buildSiteCatalog(cfg, host, grid, locals)
	return site
}

// buildSiteCatalog walks the site's local devices through the
// per-event measurement path and aggregates the devices-catalog,
// batch or streaming per cfg.Streaming. Taps are created once per
// emission shard; every device's events flow through exactly one tap
// pair in per-device time-sorted order, so the two paths (and every
// worker count) build the same catalog bit for bit. With
// cfg.ArchiveDir set, the site's CDR/xDR feed additionally fans out
// to a per-site segmented archive in the same pass.
func buildSiteCatalog(cfg FederationConfig, host mccmnc.PLMN, grid *radio.Grid, locals []localDevice) *catalog.Catalog {
	wrapCDR := func(sink func(cdrs.Record)) func(cdrs.Record) { return sink }
	if cfg.ArchiveDir != "" {
		dir := filepath.Join(cfg.ArchiveDir, "site-"+host.Concat())
		w, err := store.NewWriter(dir, store.Meta{Host: host, Start: cfg.Start, Days: cfg.Days}, cfg.ArchiveSegmentRecords)
		if err != nil {
			panic(fmt.Sprintf("dataset: federation archive: %v", err))
		}
		defer func() {
			if err := w.Close(); err != nil {
				panic(fmt.Sprintf("dataset: federation archive: %v", err))
			}
		}()
		wrapCDR = func(sink func(cdrs.Record)) func(cdrs.Record) {
			return probe.Fanout(w.Sink(), sink)
		}
	}

	emit := func(taps func(sh pipeline.Shard) (*probe.Tap[radio.Event], *probe.Tap[cdrs.Record])) {
		pipeline.Run(len(locals), cfg.Workers, func(sh pipeline.Shard) {
			radioTap, cdrTap := taps(sh)
			var bufs emitBufs
			for i := sh.Lo; i < sh.Hi; i++ {
				emitDeviceDaysSched(locals[i].emit, host, cfg.Start, cfg.Days, grid, radioTap, cdrTap, &locals[i].dev, locals[i].presentDay, &bufs)
			}
		})
	}

	if cfg.Streaming {
		sb := catalog.NewShardedBuilder(host, cfg.Start, cfg.Days, grid, pipeline.Workers(cfg.Workers))
		in := ingest.NewCatalogIngester(sb, 0)
		defer in.Close()
		cdrSink := wrapCDR(in.OfferRecord)
		emit(func(pipeline.Shard) (*probe.Tap[radio.Event], *probe.Tap[cdrs.Record]) {
			return probe.NewTap("site-probe", cfg.Seed, in.OfferRadio),
				probe.NewTap("site-mediation", cfg.Seed, cdrSink)
		})
		return in.Build(cfg.Workers)
	}

	// Batch: one builder per emission shard — feeds are
	// device-disjoint (each device lives in exactly one shard), so
	// folding them together with Builder.Merge reproduces a single
	// builder that saw every stream.
	builders := make([]*catalog.Builder, pipeline.ShardCount(len(locals)))
	emit(func(sh pipeline.Shard) (*probe.Tap[radio.Event], *probe.Tap[cdrs.Record]) {
		b := catalog.NewBuilder(host, cfg.Start, cfg.Days, grid)
		builders[sh.Index] = b
		return probe.NewTap("site-probe", cfg.Seed, b.AddRadioEvent),
			probe.NewTap("site-mediation", cfg.Seed, wrapCDR(b.AddRecord))
	})
	acc := catalog.NewBuilder(host, cfg.Start, cfg.Days, grid)
	for _, b := range builders {
		if b != nil {
			acc.Merge(b)
		}
	}
	return acc.Build()
}
