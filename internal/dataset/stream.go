package dataset

import (
	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/devices"
	"whereroam/internal/identity"
	"whereroam/internal/ingest"
	"whereroam/internal/pipeline"
	"whereroam/internal/probe"
	"whereroam/internal/radio"
	"whereroam/internal/signaling"
)

// GenerateSMIPStreaming is the bounded-memory twin of
// GenerateSMIPRaw: the same population, the same per-event synthesis
// through probe taps, but the radio events and CDRs/xDRs flow
// straight from the taps into an ingest.CatalogIngester — the
// device-hash router over shard-local catalog builders — while the
// capture is still being generated. No event slice is ever
// materialized; in-flight memory is capped at the router's channel
// windows, so peak allocation stays flat where the batch path grows
// linearly with the capture.
//
// The built catalog is bit-identical to GenerateSMIPRaw's at any
// worker count: both paths deliver each device's records in the same
// per-device time-sorted order, which is the only order the builder's
// output depends on (see internal/ingest and docs/ARCHITECTURE.md).
//
// With cfg.ArchiveCDRs set, every CDR/xDR additionally fans out to
// the archive sink before it reaches the router — persist-and-ingest
// in one pass, the feed never materialized.
func GenerateSMIPStreaming(cfg SMIPConfig) *SMIPDataset {
	g := newSMIPEmission(cfg)
	workers := pipeline.Workers(cfg.Workers)
	sb := catalog.NewShardedBuilder(cfg.Host, cfg.Start, cfg.Days, g.grid, workers)
	in := ingest.NewCatalogIngester(sb, 0)
	// Build closes on the happy path (Close is idempotent); the defer
	// covers an emission panic, so a caller that recovers it does not
	// leak the per-shard consumer goroutines and their channel windows.
	defer in.Close()
	recSink := in.OfferRecord
	if cfg.ArchiveCDRs != nil {
		recSink = probe.Fanout(cfg.ArchiveCDRs, in.OfferRecord)
	}
	g.emitCohorts(func(label string, sh pipeline.Shard) (*probe.Tap[radio.Event], *probe.Tap[cdrs.Record]) {
		return probe.NewTap("mme-msc-sgsn", cfg.Seed, in.OfferRadio),
			probe.NewTap("mediation", cfg.Seed, recSink)
	})
	g.ds.Catalog = in.Build(cfg.Workers)
	return g.ds
}

// StreamM2M generates the same platform dataset as GenerateM2M but
// delivers the transaction stream to sink record by record instead of
// materializing it: emission shards run ahead of the consumer on a
// bounded per-shard window (ingest.Ordered), and the sink observes
// the exact serial emission order at any worker count. The returned
// dataset carries the ground truth with a nil Transactions slice;
// stable-sorting the streamed records by time (sort.SliceStable)
// reproduces GenerateM2M's Transactions bit for bit — stability
// matters because tied timestamps keep their emission order on both
// paths. Sampled captures
// (0 < SampleRate < 1) thin by per-record hash, exactly as
// GenerateM2M does.
//
// sink runs on the calling goroutine and blocks the producers through
// the windows when it stalls — backpressure, not buffering.
func StreamM2M(cfg M2MConfig, sink func(signaling.Transaction)) *M2MDataset {
	ds, specs, drafts, devIDs := m2mPopulation(cfg)

	truths := make([]M2MDeviceTruth, cfg.Devices)
	ord := ingest.NewOrdered[signaling.Transaction](pipeline.ShardCount(cfg.Devices), 0)
	world := ds.world

	// The emission fan-out runs beside the drain; a shard's stream
	// closes as its producer finishes, and a producer panic closes
	// every stream so the drain unblocks before the panic is
	// re-raised on the caller.
	done := make(chan any, 1)
	go func() {
		defer func() {
			p := recover()
			ord.CloseAll()
			done <- p
		}()
		pipeline.Run(cfg.Devices, cfg.Workers, func(sh pipeline.Shard) {
			// Close in a defer: a shard that panics mid-emission must
			// still end its stream, or the drain would block on it
			// forever while sibling producers sit on full windows and
			// the panic never surfaces.
			defer ord.CloseShard(sh.Index)
			tap := newM2MTap(cfg, ord.Sink(sh.Index))
			for i := sh.Lo; i < sh.Hi; i++ {
				src := drafts[i].src
				spec := specs[drafts[i].spec]
				roaming := src.Bool(spec.roamShare)
				prof := devices.NewPlatformIoT(src.Split("profile"), roaming, cfg.Days)
				truths[i] = M2MDeviceTruth{Home: spec.plmn, Roaming: roaming, FailOnly: prof.FailOnly, Profile: prof}
				emitPlatformDevice(tap, world, src, cfg, spec, devIDs[i], prof)
			}
		})
	}()
	ord.Drain(sink)
	if p := <-done; p != nil {
		panic(p)
	}

	ds.Truth = make(map[identity.DeviceID]M2MDeviceTruth, cfg.Devices)
	for i := range truths {
		ds.Truth[devIDs[i]] = truths[i]
	}
	return ds.M2MDataset
}
