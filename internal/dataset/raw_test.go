package dataset

import (
	"sort"
	"testing"

	"whereroam/internal/radio"
)

func rawSMIP() SMIPConfig {
	cfg := DefaultSMIPConfig()
	cfg.NativeMeters = 400
	cfg.RoamingMeters = 300
	return cfg
}

func TestGenerateSMIPRawPipeline(t *testing.T) {
	ds, raw := GenerateSMIPRaw(rawSMIP())
	if len(raw.Radio) == 0 || len(raw.Records) == 0 {
		t.Fatal("raw streams empty")
	}
	// Streams are time-ordered after capture.
	for i := 1; i < len(raw.Radio); i++ {
		if raw.Radio[i].Time.Before(raw.Radio[i-1].Time) {
			t.Fatal("radio stream not time-ordered")
		}
	}
	// The builder's catalog covers the devices that were active.
	if len(ds.Catalog.Records) == 0 {
		t.Fatal("builder produced no catalog records")
	}
	seen := map[uint64]bool{}
	for i := range ds.Catalog.Records {
		r := &ds.Catalog.Records[i]
		seen[uint64(r.Device)] = true
		if r.FailedEvents > r.Events {
			t.Fatal("failed > events")
		}
	}
	if len(seen) < 650 {
		t.Errorf("catalog covers %d devices of 700", len(seen))
	}
}

func TestRawMatchesDirectGeneratorShape(t *testing.T) {
	// The per-event path and the direct aggregate path must agree on
	// the §7.1 shape criteria: native persistence, roaming
	// intermittence, the ~10x signaling ratio, and RAT usage.
	cfg := rawSMIP()
	direct := GenerateSMIP(cfg)
	rawDS, _ := GenerateSMIPRaw(cfg)

	summarize := func(ds *SMIPDataset) (natMed, roamMed, ratio float64) {
		activeDays := map[uint64]int{}
		events := map[uint64]int{}
		for i := range ds.Catalog.Records {
			r := &ds.Catalog.Records[i]
			activeDays[uint64(r.Device)]++
			events[uint64(r.Device)] += r.Events
		}
		var nat, roam []float64
		var natEv, natDays, roamEv, roamDays float64
		for _, d := range ds.Devices {
			id := uint64(d.ID)
			if ds.Native[d.ID] {
				nat = append(nat, float64(activeDays[id]))
				natEv += float64(events[id])
				natDays += float64(activeDays[id])
			} else {
				roam = append(roam, float64(activeDays[id]))
				roamEv += float64(events[id])
				roamDays += float64(activeDays[id])
			}
		}
		sort.Float64s(nat)
		sort.Float64s(roam)
		return nat[len(nat)/2], roam[len(roam)/2], (roamEv / roamDays) / (natEv / natDays)
	}
	dn, dr, dratio := summarize(direct)
	rn, rr, rratio := summarize(rawDS)
	if dn < 22 || rn < 22 {
		t.Errorf("native medians: direct %.0f raw %.0f, want ~26", dn, rn)
	}
	if dr > 8 || rr > 8 {
		t.Errorf("roaming medians: direct %.0f raw %.0f, want ~5", dr, rr)
	}
	if rratio < dratio/2 || rratio > dratio*2 {
		t.Errorf("signaling ratios diverge: direct %.1f raw %.1f", dratio, rratio)
	}
}

func TestRawMobilityIsStationary(t *testing.T) {
	ds, _ := GenerateSMIPRaw(rawSMIP())
	// Meters are stationary; the dwell-weighted gyration computed by
	// the builder from raw sector visits must say so.
	located, under1km := 0, 0
	for i := range ds.Catalog.Records {
		r := &ds.Catalog.Records[i]
		if !r.HasLocation {
			continue
		}
		located++
		if r.GyrationKm <= 1 {
			under1km++
		}
	}
	if located == 0 {
		t.Fatal("no located records")
	}
	if frac := float64(under1km) / float64(located); frac < 0.9 {
		t.Errorf("stationary share via raw pipeline = %.3f, want >= 0.9", frac)
	}
}

func TestRawRATConsistency(t *testing.T) {
	ds, raw := GenerateSMIPRaw(rawSMIP())
	// Roaming meters are 2G-only: every radio event from a roaming
	// device must ride a 2G interface.
	for i := range raw.Radio {
		ev := &raw.Radio[i]
		native := ds.Native[ev.Device]
		if !native && ev.RAT() != radio.RAT2G {
			t.Fatalf("roaming meter event on %v", ev.RAT())
		}
	}
}

func BenchmarkGenerateSMIPRaw(b *testing.B) {
	cfg := rawSMIP()
	cfg.NativeMeters, cfg.RoamingMeters = 150, 100
	for i := 0; i < b.N; i++ {
		_, _ = GenerateSMIPRaw(cfg)
	}
}
