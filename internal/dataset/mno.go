package dataset

import (
	"sort"
	"time"

	"whereroam/internal/catalog"
	"whereroam/internal/core"
	"whereroam/internal/devices"
	"whereroam/internal/geo"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/mobility"
	"whereroam/internal/pipeline"
	"whereroam/internal/rng"
)

// MNOConfig parameterizes the visited-MNO dataset generator.
type MNOConfig struct {
	Seed    uint64
	Devices int       // distinct devices across the window (paper: 39.6M)
	Days    int       // observation window (paper: 22)
	Start   time.Time // window start (paper: 2019-04-05)
	Host    mccmnc.PLMN
	// GSMASeed seeds the synthetic TAC catalog (kept separate so the
	// same catalog can be shared across datasets).
	GSMASeed uint64
	// Workers bounds the synthesis worker pool; values below one mean
	// one worker per CPU. The generated dataset is bit-identical for
	// every worker count (per-device RNG substreams, shard-ordered
	// merge).
	Workers int
	// TransparencyAdoption is the probability that a home operator
	// publishes IR.88 declarations for its M2M IMSI ranges (§1: the
	// GSMA PRD is binding but adoption in the wild is partial). Zero
	// disables transparency.
	TransparencyAdoption float64
	// MaxResidentDevices caps how many devices the out-of-core
	// generator (StreamMNO) materializes concurrently: it clamps the
	// emission worker pool to at most this many workers, so at no point
	// are more than MaxResidentDevices device structs alive in the
	// producers. Zero means one resident device per worker. The
	// materialized generator (GenerateMNO) ignores it.
	MaxResidentDevices int
}

// DefaultMNOConfig returns the standard scaled-down configuration.
func DefaultMNOConfig() MNOConfig {
	return MNOConfig{
		Seed:                 1,
		Devices:              30000,
		Days:                 22,
		Start:                time.Date(2019, 4, 5, 0, 0, 0, 0, time.UTC),
		Host:                 mccmnc.MustParse("23410"),
		GSMASeed:             1,
		TransparencyAdoption: 0.6,
	}
}

// MVNO PLMNs: virtual operators riding the host's radio network.
// They hold their own network codes but appear in no sector grid —
// which is why they are not in the mccmnc operator registry.
var (
	MVNO1 = mccmnc.PLMN{MCC: 234, MNC: 26, MNCLen: 2}
	MVNO2 = mccmnc.PLMN{MCC: 234, MNC: 38, MNCLen: 2}
)

// MNODataset is the §4 dataset: ground-truth devices plus the daily
// devices-catalog the operator-side pipeline would have built.
type MNODataset struct {
	Host    mccmnc.PLMN
	Start   time.Time
	Days    int
	GSMA    *gsma.DB
	Devices []devices.Device
	Catalog *catalog.Catalog
	// Truth maps device IDs to ground-truth classes.
	Truth map[identity.DeviceID]devices.Class
	// Transparency is the IR.88 registry the declaring home operators
	// published; Declared holds the capture-time verdict per device
	// (IMSIs are visible at attach, before anonymization).
	Transparency *core.Registry
	Declared     map[identity.DeviceID]bool
}

// MVNOs returns the virtual operators riding the host network —
// the set a Labeler needs to tell V:H from N:H.
func (ds *MNODataset) MVNOs() []mccmnc.PLMN {
	return []mccmnc.PLMN{MVNO1, MVNO2}
}

// population composition (§4.2/§4.3/§5): cumulative shares over the
// window.
const (
	shareSmart = 0.62
	shareFeat  = 0.08
	shareM2M   = 0.30 // classifier splits this into m2m and m2m-maybe

	inboundSmart = 0.121 // Fig 6: share of each class that roams in
	inboundFeat  = 0.064
	inboundM2M   = 0.747

	nativeMNOShare = 0.59 // H vs V split of native devices (≈48:33)

	nationalShare = 0.005 // N:H national roamers
	outboundProb  = 0.03  // native smartphones traveling abroad
)

// m2m subclass mix within the m2m umbrella.
var m2mMix = []struct {
	class devices.Class
	share float64
}{
	{devices.ClassSmartMeter, 0.45},
	{devices.ClassAssetTracker, 0.18},
	{devices.ClassPOSTerminal, 0.17},
	{devices.ClassWearable, 0.14},
	{devices.ClassConnectedCar, 0.06},
}

// homeCountryTable gives inbound-roamer home countries per class
// (Fig 5: top-3 NL/SE/ES ≈60% overall, ≈83% for m2m, 17% for
// smartphones, 35% for feature phones).
type countryWeight struct {
	iso string
	w   float64
}

var smartHomes = []countryWeight{
	{"FR", 0.09}, {"DE", 0.08}, {"ES", 0.07}, {"IE", 0.07}, {"US", 0.07},
	{"IT", 0.07}, {"PL", 0.06}, {"NL", 0.06}, {"RO", 0.05}, {"SE", 0.04},
	{"PT", 0.04}, {"AU", 0.03}, {"IN", 0.03}, {"CN", 0.03}, {"CA", 0.03},
	{"DK", 0.03}, {"NO", 0.03}, {"BE", 0.03}, {"CH", 0.03}, {"GR", 0.02},
	{"JP", 0.02}, {"BR", 0.02},
}

var featHomes = []countryWeight{
	{"ES", 0.15}, {"NL", 0.12}, {"RO", 0.12}, {"PL", 0.10}, {"SE", 0.08},
	{"IN", 0.08}, {"TR", 0.07}, {"EG", 0.05}, {"MA", 0.05}, {"UA", 0.05},
	{"NG", 0.04}, {"PK", 0.0}, {"FR", 0.04}, {"DE", 0.03}, {"IT", 0.02},
}

// m2m homes are per subclass: meters all come from NL (§4.4), the
// platform verticals from ES/SE, cars from DE.
var m2mHomes = map[devices.Class][]countryWeight{
	devices.ClassSmartMeter:   {{"NL", 1.0}},
	devices.ClassPOSTerminal:  {{"SE", 0.50}, {"ES", 0.30}, {"DE", 0.05}, {"FR", 0.05}, {"IT", 0.05}, {"BE", 0.05}},
	devices.ClassAssetTracker: {{"ES", 0.50}, {"SE", 0.30}, {"NL", 0.05}, {"FR", 0.05}, {"PL", 0.05}, {"CZ", 0.05}},
	devices.ClassWearable:     {{"ES", 0.40}, {"SE", 0.30}, {"NL", 0.10}, {"US", 0.05}, {"FR", 0.05}, {"DE", 0.05}, {"IE", 0.05}},
	devices.ClassConnectedCar: {{"DE", 0.60}, {"SE", 0.10}, {"ES", 0.10}, {"FR", 0.05}, {"IT", 0.05}, {"AT", 0.05}, {"CZ", 0.05}},
}

func drawHome(src *rng.Source, table []countryWeight) mccmnc.PLMN {
	weights := make([]float64, len(table))
	for i, cw := range table {
		weights[i] = cw.w
	}
	iso := table[rng.NewWeighted(src, weights).DrawFrom(src)].iso
	ops := mccmnc.OperatorsIn(iso)
	if len(ops) == 0 {
		// Unregistered tail entries fall back to NL (harmless: only
		// reachable via zero-weight rows).
		ops = mccmnc.OperatorsIn("NL")
	}
	// Smart meters concentrate on one specific NL operator (§4.4).
	if iso == "NL" {
		return mccmnc.MustParse("20404")
	}
	return ops[src.Intn(len(ops))].PLMN
}

// GenerateMNO synthesizes the visited-MNO dataset.
//
// Synthesis is sharded over cfg.Workers goroutines in three passes:
// a parallel draft pass draws each device's class and home network
// from its own RNG substream, a serial pass allocates IMSIs in device
// order (MSIN blocks hand out sequential numbers, the one inherently
// order-dependent step), and a parallel finish pass builds profiles
// and emits the daily catalog records into shard-local slices that
// are concatenated in shard order. Because every random draw comes
// from a per-device substream and all merges are shard-ordered, the
// output is bit-identical for any worker count.
func GenerateMNO(cfg MNOConfig) *MNODataset {
	if cfg.Devices <= 0 || cfg.Days <= 0 {
		panic("dataset: MNO config needs positive Devices and Days")
	}
	db := gsma.Synthesize(cfg.GSMASeed)
	root := rng.New(cfg.Seed).Split("mno")
	hostCountry, _ := mccmnc.CountryByMCC(cfg.Host.MCC)
	centre := geo.Point{Lat: hostCountry.Lat, Lon: hostCountry.Lon}

	ds := &MNODataset{
		Host:  cfg.Host,
		Start: cfg.Start,
		Days:  cfg.Days,
		GSMA:  db,
		Truth: make(map[identity.DeviceID]devices.Class, cfg.Devices),
	}
	cat := &catalog.Catalog{Host: cfg.Host, Days: cfg.Days}
	alloc := devices.NewIMSIAllocator()
	classPick, m2mPick := mnoPicks(root)

	// Pass 1 (parallel): class and home draws per device.
	drafts := make([]deviceDraft, cfg.Devices)
	pipeline.Run(cfg.Devices, cfg.Workers, func(sh pipeline.Shard) {
		for i := sh.Lo; i < sh.Hi; i++ {
			drafts[i] = drawMNODraft(root, i, cfg, classPick, m2mPick)
		}
	})

	// Pass 2 (serial): IMSI allocation in device order.
	imsis := make([]identity.IMSI, cfg.Devices)
	for i := range drafts {
		imsis[i] = alloc.Next(drafts[i].home, drafts[i].base)
	}

	// Pass 3 (parallel): profiles, mobility and daily activity. Each
	// device's substream resumes exactly where pass 1 left it.
	type shardOut struct {
		devs []devices.Device
		recs []catalog.DailyRecord
	}
	outs := pipeline.Map(cfg.Devices, cfg.Workers, func(sh pipeline.Shard) shardOut {
		out := shardOut{devs: make([]devices.Device, 0, sh.Len())}
		var visits []geo.Visit
		appendRec := func(rec catalog.DailyRecord) { out.recs = append(out.recs, rec) }
		for i := sh.Lo; i < sh.Hi; i++ {
			dev := finishDevice(&drafts[i], imsis[i], cfg, db, centre)
			out.devs = append(out.devs, dev)
			emitDeviceDays(drafts[i].src.Split("days"), cfg.Host, cfg.Start, cfg.Days, appendRec, &dev, &visits)
		}
		return out
	})
	for _, o := range outs {
		ds.Devices = append(ds.Devices, o.devs...)
		cat.Records = append(cat.Records, o.recs...)
	}
	for i := range ds.Devices {
		ds.Truth[ds.Devices[i].ID] = ds.Devices[i].Class
	}
	ds.Catalog = cat
	ds.buildTransparency(cfg, alloc, root.Split("ir88"))
	return ds
}

// M2MBlockBase is the MSIN base of foreign operators' dedicated M2M
// IMSI blocks.
const M2MBlockBase = 6_000_000_000

// buildTransparency publishes IR.88 declarations for the adopting
// subset of home operators and computes the capture-time verdicts.
func (ds *MNODataset) buildTransparency(cfg MNOConfig, alloc *devices.IMSIAllocator, src *rng.Source) {
	// Collect the home operators with M2M blocks and their block sizes.
	m2mTotals := map[mccmnc.PLMN]uint64{}
	for _, d := range ds.Devices {
		if d.IMSI.MSIN >= M2MBlockBase && d.IMSI.MSIN < SMIPNativeBase {
			m2mTotals[d.Home] = alloc.Allocated(d.Home, M2MBlockBase)
		}
	}
	ds.Transparency = transparencyRegistry(cfg.TransparencyAdoption, src, m2mTotals)
	ds.Declared = map[identity.DeviceID]bool{}
	for _, d := range ds.Devices {
		if ds.Transparency.MatchIMSI(d.IMSI) {
			ds.Declared[d.ID] = true
		}
	}
}

// transparencyRegistry builds the IR.88 registry from the per-home M2M
// block sizes: each home with a non-empty dedicated block adopts with
// the given probability (a per-home draw keyed by its PLMN, so the
// verdict never depends on iteration order) and declares exactly the
// range it allocated. Both generation paths — materialized and
// out-of-core — publish through here, which is what keeps their
// capture-time verdicts identical.
func transparencyRegistry(adoption float64, src *rng.Source, m2mTotals map[mccmnc.PLMN]uint64) *core.Registry {
	reg := core.NewRegistry()
	if adoption <= 0 {
		return reg
	}
	homes := make([]mccmnc.PLMN, 0, len(m2mTotals))
	for home := range m2mTotals {
		homes = append(homes, home)
	}
	sort.Slice(homes, func(i, j int) bool {
		return siteKey(homes[i]) < siteKey(homes[j])
	})
	for _, home := range homes {
		n := m2mTotals[home]
		if n == 0 {
			continue
		}
		key := uint64(home.MCC)<<16 | uint64(home.MNC)
		if !src.SplitN("adopt", key).Bool(adoption) {
			continue
		}
		reg.Add(core.Declaration{
			Home:   home,
			Ranges: []identity.IMSIRange{{PLMN: home, Lo: M2MBlockBase, Hi: M2MBlockBase + n - 1}},
		})
	}
	return reg
}

// mnoPicks builds the shared class samplers every MNO generation pass
// draws from. The samplers are stateless per draw (DrawFrom consumes
// the device's stream, not their own), so the counting pre-pass, the
// draft pass and the emission pass can all share one pair.
func mnoPicks(root *rng.Source) (classPick, m2mPick *rng.Weighted) {
	classPick = rng.NewWeighted(root.Split("class"), []float64{shareSmart, shareFeat, shareM2M})
	m2mWeights := make([]float64, len(m2mMix))
	for i, m := range m2mMix {
		m2mWeights[i] = m.share
	}
	m2mPick = rng.NewWeighted(root.Split("m2m"), m2mWeights)
	return classPick, m2mPick
}

// drawMNODraft replays device i's draft draws from the root stream:
// the class pick followed by draftDevice. Every pass that needs the
// draft — GenerateMNO's pass 1, the out-of-core counting pre-pass and
// the out-of-core emission walk — goes through this one helper, which
// is what guarantees they all see bit-identical draws.
func drawMNODraft(root *rng.Source, i int, cfg MNOConfig, classPick, m2mPick *rng.Weighted) deviceDraft {
	src := root.SplitN("device", uint64(i))
	var class devices.Class
	switch classPick.DrawFrom(src) {
	case 0:
		class = devices.ClassSmartphone
	case 1:
		class = devices.ClassFeaturePhone
	default:
		class = m2mMix[m2mPick.DrawFrom(src)].class
	}
	return draftDevice(src, cfg, class)
}

// deviceDraft is the outcome of the parallel draft pass: everything
// needed to allocate the device's IMSI, plus its RNG substream
// positioned after the home-network draws so the finish pass resumes
// the exact draw sequence of a serial build.
type deviceDraft struct {
	class   devices.Class
	inbound bool
	home    mccmnc.PLMN
	mvno    bool
	base    uint64
	src     *rng.Source
}

// draftDevice draws one device's roaming status, home network and
// IMSI block — the slice of device construction that precedes the
// order-dependent IMSI allocation.
func draftDevice(src *rng.Source, cfg MNOConfig, class devices.Class) deviceDraft {
	inboundShare := inboundM2M
	switch class {
	case devices.ClassSmartphone:
		inboundShare = inboundSmart
	case devices.ClassFeaturePhone:
		inboundShare = inboundFeat
	}
	inbound := src.Bool(inboundShare)
	national := !inbound && src.Bool(nationalShare/(1-inboundShare))

	// Home network.
	var home mccmnc.PLMN
	mvno := false
	switch {
	case inbound:
		switch class {
		case devices.ClassSmartphone:
			home = drawHome(src.Split("home"), smartHomes)
		case devices.ClassFeaturePhone:
			home = drawHome(src.Split("home"), featHomes)
		default:
			home = drawHome(src.Split("home"), m2mHomes[class])
		}
	case national:
		// Another operator of the host country.
		ops := mccmnc.OperatorsIn(mccmnc.ISOByMCC(cfg.Host.MCC))
		home = ops[src.Intn(len(ops))].PLMN
		if home == cfg.Host {
			home = ops[(src.Intn(len(ops)-1)+1)%len(ops)].PLMN
		}
	default:
		if src.Bool(nativeMNOShare) {
			home = cfg.Host
		} else {
			mvno = true
			home = MVNO1
			if src.Bool(0.4) {
				home = MVNO2
			}
		}
	}

	// Identity: IMSI bases segregate populations. SMIP-native meters
	// get the host's dedicated range (§4.4); foreign M2M fleets sit
	// in their home operators' dedicated M2M blocks — the ranges an
	// IR.88 declaration would publish.
	base := uint64(1_000_000_000)
	switch {
	case class == devices.ClassSmartMeter && home == cfg.Host:
		base = SMIPNativeBase
	case class.IsM2M() && inbound:
		base = M2MBlockBase
	}
	return deviceDraft{class: class, inbound: inbound, home: home, mvno: mvno, base: base, src: src}
}

// finishDevice builds the drafted device's profile, catalog identity
// and mobility model once its IMSI is known.
func finishDevice(d *deviceDraft, imsi identity.IMSI, cfg MNOConfig, db *gsma.DB, centre geo.Point) devices.Device {
	psrc := d.src.Split("profile")
	msrc := d.src.Split("mobility")
	prof, info := classProfile(psrc, d.class, cfg.Days, cfg.Host, d.home, d.inbound, db)
	mob := classMobility(msrc, d.class, centre)
	return devices.Assemble(d.class, imsi, info, prof, mob, d.mvno)
}

// classProfile draws a device's activity profile and GSMA catalog
// identity for its class, consuming psrc exactly as a serial build
// would. host only matters for native smart meters (their profile is
// pinned to the host's SMIP deployment); home only for the platform
// verticals whose APN carries the home operator.
func classProfile(psrc *rng.Source, class devices.Class, days int, host, home mccmnc.PLMN, inbound bool, db *gsma.DB) (devices.Profile, gsma.DeviceInfo) {
	switch class {
	case devices.ClassSmartphone:
		return devices.SmartphoneProfile(psrc, days, inbound), db.Pick(psrc, gsma.ArchSmartphone)
	case devices.ClassFeaturePhone:
		return devices.FeaturePhoneProfile(psrc, days, inbound), db.Pick(psrc, gsma.ArchFeaturePhone)
	case devices.ClassSmartMeter:
		if inbound {
			return devices.SmartMeterRoamingProfile(psrc, days),
				db.PickFromVendors(psrc, gsma.ArchM2MModule, "Gemalto", "Telit")
		}
		return devices.SmartMeterNativeProfile(psrc, days, host), db.Pick(psrc, gsma.ArchM2MModule)
	case devices.ClassConnectedCar:
		return devices.ConnectedCarProfile(psrc, days), db.Pick(psrc, gsma.ArchVehicle)
	case devices.ClassWearable:
		return devices.WearableProfile(psrc, days, home), db.Pick(psrc, gsma.ArchWearable)
	case devices.ClassPOSTerminal:
		return devices.POSTerminalProfile(psrc, days, home), db.Pick(psrc, gsma.ArchM2MModule)
	default: // ClassAssetTracker
		return devices.AssetTrackerProfile(psrc, days, home), db.Pick(psrc, gsma.ArchM2MModule)
	}
}

// classMobility draws the class's mobility model anchored at centre,
// consuming msrc exactly as a serial build would. The radii mirror
// the paper's observations: meters and POS terminals are stationary,
// cars and trackers vehicular, phones and wearables commute.
func classMobility(msrc *rng.Source, class devices.Class, centre geo.Point) mobility.Model {
	switch class {
	case devices.ClassSmartphone:
		return mobility.NewCommuter(msrc, centre, 120)
	case devices.ClassFeaturePhone:
		return mobility.NewWaypoint(msrc, centre, 15)
	case devices.ClassSmartMeter:
		return mobility.NewStationary(msrc, centre, 150)
	case devices.ClassConnectedCar:
		return mobility.NewVehicular(msrc, centre, 120)
	case devices.ClassWearable:
		return mobility.NewCommuter(msrc, centre, 120)
	case devices.ClassPOSTerminal:
		return mobility.NewStationary(msrc, centre, 150)
	default: // ClassAssetTracker
		return mobility.NewVehicular(msrc, centre, 150)
	}
}

// SMIPNativeBase is the dedicated MSIN base of the host's smart-meter
// IMSI range.
const SMIPNativeBase = 9_000_000_000

// SMIPNativeRange returns the host's dedicated smart-meter IMSI range
// given how many meters were allocated.
func SMIPNativeRange(host mccmnc.PLMN, count uint64) identity.IMSIRange {
	return identity.IMSIRange{PLMN: host, Lo: SMIPNativeBase, Hi: SMIPNativeBase + count}
}

// emitDeviceDays samples the device's daily activity and hands each
// resulting catalog record to emit, in day order. The parallel
// generators pass a shard-local append; the out-of-core generator
// passes its fan-in sink. visits is a per-shard scratch buffer reused
// across devices so the per-day mobility sampling allocates nothing on
// the steady state; pass a pointer to a nil slice to start one.
func emitDeviceDays(src *rng.Source, host mccmnc.PLMN, start time.Time, days int, emit func(catalog.DailyRecord), dev *devices.Device, visits *[]geo.Visit) {
	p := dev.Profile
	// Native smartphones occasionally travel abroad (H:A days,
	// captured via CDRs only — no radio events). The map is allocated
	// only for the travelling few; lookups on the nil map are fine.
	var outboundDays map[int]mccmnc.PLMN
	if dev.Class == devices.ClassSmartphone && dev.Home == host && src.Bool(outboundProb) {
		tripLen := 1 + src.Intn(3)
		tripStart := src.Intn(days)
		dest := drawHome(src.Split("trip"), smartHomes)
		outboundDays = make(map[int]mccmnc.PLMN, tripLen)
		for d := tripStart; d < tripStart+tripLen && d < days; d++ {
			outboundDays[d] = dest
		}
	}

	for day := p.PresenceStart; day < p.PresenceStart+p.PresenceDays && day < days; day++ {
		if !src.Bool(p.DailyActiveProb) {
			continue
		}
		rec := catalog.DailyRecord{
			Device: dev.ID,
			Day:    day,
			SIM:    dev.Home,
			TAC:    dev.IMEI.TAC,
		}
		abroad, isAbroad := outboundDays[day]
		if isAbroad {
			rec.AddVisited(abroad)
		} else {
			rec.AddVisited(host)
		}

		// Signaling events (radio logs exist only on the host
		// network: outbound days carry no radio activity, §4.1).
		if !isAbroad {
			events := int(src.LogNormal(p.SignalingMu, p.SignalingSigma))
			if events < 1 {
				events = 1
			}
			rec.Events = events
			if p.FailProb > 0 {
				rec.FailedEvents = src.Poisson(float64(events) * p.FailProb)
				if rec.FailedEvents > events {
					rec.FailedEvents = events
				}
			}
		}

		// Service usage.
		if p.UsesData {
			sessions := src.Poisson(p.DataSessionsPerDay)
			if sessions == 0 && src.Bool(0.5) {
				sessions = 1
			}
			var bytes uint64
			for s := 0; s < sessions; s++ {
				bytes += uint64(src.LogNormal(p.SessionBytesMu, p.SessionBytesSigma))
			}
			if sessions > 0 {
				rec.Bytes = bytes
				rec.DataRATs = rec.DataRATs.With(p.DataRAT)
				if p.DataRAT2 != 0 && src.Bool(0.5) {
					rec.DataRATs = rec.DataRATs.With(p.DataRAT2)
				}
				rec.AddAPN(p.APN)
			}
		}
		if p.UsesVoice {
			calls := src.Poisson(p.CallsPerDay)
			if calls > 0 {
				rec.Calls = calls
				rec.CallSeconds = float64(calls) * src.Exp(p.CallDurMeanS)
				rec.VoiceRATs = rec.VoiceRATs.With(p.VoiceRAT)
			}
		}
		rec.RadioFlags = rec.DataRATs | rec.VoiceRATs
		if rec.RadioFlags.Empty() {
			// Signaling-only day: flags come from the profile's
			// primary technology.
			rec.RadioFlags = p.RATs()
		}

		// Mobility: sample the position over the day and compute the
		// daily metrics (outbound days have no host-side location).
		if !isAbroad {
			dayStart := start.Add(time.Duration(day) * 24 * time.Hour)
			vs := (*visits)[:0]
			for h := 0; h < 24; h += 3 {
				vs = append(vs, geo.Visit{
					At:     dev.Mobility.Position(dayStart.Add(time.Duration(h) * time.Hour)),
					Weight: 3,
				})
			}
			*visits = vs
			if c, ok := geo.Centroid(vs); ok {
				rec.Centroid = c
				rec.GyrationKm = geo.Gyration(vs)
				rec.HasLocation = true
			}
		}
		emit(rec)
	}
}
