package dataset

import (
	"math"
	"sort"
	"time"

	"whereroam/internal/devices"
	"whereroam/internal/geo"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/ingest"
	"whereroam/internal/mccmnc"
	"whereroam/internal/mobility"
	"whereroam/internal/netsim"
	"whereroam/internal/pipeline"
	"whereroam/internal/probe"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
	"whereroam/internal/signaling"
)

// FederationM2M is the federated §3/§6 transaction plane: the
// control-plane signaling the fleet's M2M devices generate across the
// whole federation, consistent with the shared presence schedule —
// every transaction's visited network is the one site the device is
// scheduled at that day (or its home network on home days), and
// inter-site moves surface as the paper's cancel-location/attach
// switch sequences.
type FederationM2M struct {
	// Hosts mirrors the federation's visited-MNO list; Visited fields
	// outside it are home-network transactions.
	Hosts []mccmnc.PLMN
	// Start and Days frame the observation window.
	Start time.Time
	Days  int
	// Transactions is the time-sorted signaling stream (nil when the
	// dataset came from StreamFederationM2M; the sink saw the stream).
	Transactions []signaling.Transaction
	// Truth maps the plane's device IDs (the fleet's M2M subset) to
	// ground-truth classes.
	Truth map[identity.DeviceID]devices.Class
}

// fedM2MDevice is one fleet member participating in the M2M plane,
// with its plane-local RNG substream.
type fedM2MDevice struct {
	member *fleetMember
	src    *rng.Source
}

// fedM2MPopulation selects the fleet's M2M subset in fleet order and
// derives each device's plane substream — a read-only split off the
// member stream, so the plane never perturbs the catalog plane's
// draws (nor vice versa).
func fedM2MPopulation(fed *FederationDataset) []fedM2MDevice {
	fed.EnsureFleet()
	devs := make([]fedM2MDevice, 0, len(fed.members))
	for i := range fed.members {
		m := &fed.members[i]
		if !m.dev.Class.IsM2M() {
			continue
		}
		devs = append(devs, fedM2MDevice{member: m, src: m.src.Split("m2mplane")})
	}
	return devs
}

// emitFedM2MDevice walks one device's schedule and offers every
// transaction to the tap in day order (stable time-sorted within each
// day). The device attaches where the schedule first places it,
// re-attaches through a switch sequence whenever the scheduled
// network changes between consecutive days, and keeps a lognormal
// per-day keepalive budget of update-location/authentication
// procedures on whichever network the day's schedule names.
func emitFedM2MDevice(tap *probe.Tap[signaling.Transaction], fed *FederationDataset, d fedM2MDevice) {
	m, src := d.member, d.src
	home := m.dev.Home
	visitedAt := func(day int) mccmnc.PLMN {
		if s := m.sched[day]; s >= 0 {
			return fed.Hosts[s]
		}
		return home
	}
	result := func() signaling.Result {
		if src.Bool(0.02) { // sporadic transient failures (§3.3 tail)
			return signaling.ResultNetworkFailure
		}
		return signaling.ResultOK
	}
	// Per-device keepalive intensity, heavy-tailed like the platform
	// profiles (§3.2).
	lam := src.LogNormal(math.Log(6), 0.9)

	var dayTxs []signaling.Transaction
	prev := mccmnc.PLMN{}
	for day := 0; day < fed.Days; day++ {
		dayTxs = dayTxs[:0]
		dayStart := fed.Start.Add(time.Duration(day) * 24 * time.Hour)
		visited := visitedAt(day)

		// Attach on the first day, switch whenever the schedule moved
		// the device overnight — both inside the first hour, so the
		// session precedes the bulk of the day's keepalives.
		if day == 0 || visited != prev {
			t := dayStart.Add(time.Duration(src.Int63n(3600)) * time.Second)
			if day == 0 {
				dayTxs = append(dayTxs, netsim.AttachSequence(m.dev.ID, t, home, visited, radio.RAT4G, result())...)
			} else {
				dayTxs = append(dayTxs, netsim.SwitchSequence(m.dev.ID, t, home, prev, visited, radio.RAT4G, result())...)
			}
		}
		prev = visited

		for n := src.Poisson(lam); n > 0; n-- {
			t := dayStart.Add(time.Duration(src.Int63n(24*3600)) * time.Second)
			proc := signaling.ProcUpdateLocation
			if !src.Bool(0.55) {
				proc = signaling.ProcAuthentication
			}
			dayTxs = append(dayTxs, signaling.Transaction{
				Device: m.dev.ID, Time: t, SIM: home, Visited: visited,
				Procedure: proc, RAT: radio.RAT4G, Result: result(),
			})
		}
		sort.SliceStable(dayTxs, func(i, j int) bool { return dayTxs[i].Time.Before(dayTxs[j].Time) })
		for i := range dayTxs {
			tap.Offer(dayTxs[i])
		}
	}
}

// GenerateFederationM2M synthesizes the federated M2M transaction
// plane from an already-built federation dataset: the same shared
// fleet, the same presence schedule, viewed as the §3/§6 signaling
// stream. Emission fans out over internal/pipeline with shard-local
// collectors concatenated in shard order and a final stable time
// sort, so the stream is bit-identical at every worker count — and
// identical to StreamFederationM2M's delivery after a stable time
// sort.
func GenerateFederationM2M(fed *FederationDataset) *FederationM2M {
	devs := fedM2MPopulation(fed)
	plane := newFederationM2M(fed, devs)

	outs := pipeline.Map(len(devs), fed.cfg.Workers, func(sh pipeline.Shard) *probe.Collector[signaling.Transaction] {
		var col probe.Collector[signaling.Transaction]
		tap := probe.NewTap("fed-hmno-probe", fed.cfg.Seed, col.Add)
		for i := sh.Lo; i < sh.Hi; i++ {
			emitFedM2MDevice(tap, fed, devs[i])
		}
		return &col
	})
	for _, col := range outs {
		plane.Transactions = append(plane.Transactions, col.Records()...)
	}
	// Stable: tied timestamps keep serial emission order, the order
	// StreamFederationM2M delivers.
	sort.SliceStable(plane.Transactions, func(i, j int) bool {
		return plane.Transactions[i].Time.Before(plane.Transactions[j].Time)
	})
	return plane
}

// StreamFederationM2M is GenerateFederationM2M's bounded-memory twin:
// the transaction stream goes to sink record by record in the exact
// serial emission order (ingest.Ordered fan-in) instead of being
// materialized. The returned plane carries the ground truth with a
// nil Transactions slice; stable-sorting the streamed records by time
// reproduces GenerateFederationM2M's slice bit for bit. sink runs on
// the calling goroutine and exerts backpressure through the shard
// windows.
func StreamFederationM2M(fed *FederationDataset, sink func(signaling.Transaction)) *FederationM2M {
	devs := fedM2MPopulation(fed)
	plane := newFederationM2M(fed, devs)

	ord := ingest.NewOrdered[signaling.Transaction](pipeline.ShardCount(len(devs)), 0)
	done := make(chan any, 1)
	go func() {
		defer func() {
			p := recover()
			ord.CloseAll()
			done <- p
		}()
		pipeline.Run(len(devs), fed.cfg.Workers, func(sh pipeline.Shard) {
			defer ord.CloseShard(sh.Index)
			tap := probe.NewTap("fed-hmno-probe", fed.cfg.Seed, ord.Sink(sh.Index))
			for i := sh.Lo; i < sh.Hi; i++ {
				emitFedM2MDevice(tap, fed, devs[i])
			}
		})
	}()
	ord.Drain(sink)
	if p := <-done; p != nil {
		panic(p)
	}
	return plane
}

// newFederationM2M builds the plane container and its truth map.
func newFederationM2M(fed *FederationDataset, devs []fedM2MDevice) *FederationM2M {
	plane := &FederationM2M{
		Hosts: fed.Hosts,
		Start: fed.Start,
		Days:  fed.Days,
		Truth: make(map[identity.DeviceID]devices.Class, len(devs)),
	}
	for _, d := range devs {
		plane.Truth[d.member.dev.ID] = d.member.dev.Class
	}
	return plane
}

// FederationSMIP is the federated §7 smart-meter plane: one
// meters-only SMIPDataset per visited operator, all provisioned from
// the same shared fleet. Each site's view combines its own native
// meter deployment (dedicated IMSI range, §4.4) with the fleet's
// smart meters the presence schedule deployed there — stationary
// devices, so each fleet meter appears at exactly one site for the
// whole window.
type FederationSMIP struct {
	// Hosts mirrors the federation's visited-MNO list.
	Hosts []mccmnc.PLMN
	// Sites holds one per-site smart-meter dataset, in Hosts order.
	Sites []*SMIPDataset
}

// GenerateFederationSMIP synthesizes the federated smart-meter plane
// from an already-built federation dataset. Each site's catalog is
// built through the per-event measurement path — batch per-shard
// builders folded with catalog.Builder.Merge, or the streaming
// ingest router when the federation was configured streaming — and is
// bit-identical across worker counts and the batch/streaming switch,
// exactly like the federation's main site catalogs.
func GenerateFederationSMIP(fed *FederationDataset) *FederationSMIP {
	fed.EnsureFleet()
	cfg := fed.cfg
	// Archiving belongs to the main site catalogs: the federation
	// build already wrote one store per site under ArchiveDir, and a
	// second writer over the same directories would refuse to clobber
	// them — the plane is a derived view, not a second feed.
	cfg.ArchiveDir = ""
	// The shared root is a pure function of the seed, so the plane
	// derives its site substreams without the dataset retaining it.
	root := rng.New(cfg.Seed).Split("federation")

	plane := &FederationSMIP{
		Hosts: fed.Hosts,
		Sites: make([]*SMIPDataset, len(fed.Hosts)),
	}
	pipeline.Run(len(fed.Hosts), cfg.Workers, func(sh pipeline.Shard) {
		for j := sh.Lo; j < sh.Hi; j++ {
			plane.Sites[j] = generateSMIPSite(fed, cfg, root, j)
		}
	})
	return plane
}

// generateSMIPSite builds one visited operator's smart-meter view:
// native meters in the host's dedicated IMSI block plus the fleet
// meters scheduled at this site.
func generateSMIPSite(fed *FederationDataset, cfg FederationConfig, root *rng.Source, j int) *SMIPDataset {
	host := cfg.Hosts[j]
	sroot := root.SplitN("site", siteKey(host)).Split("smipplane")
	hostCountry, _ := mccmnc.CountryByMCC(host.MCC)
	centre := geo.Point{Lat: hostCountry.Lat, Lon: hostCountry.Lon}
	grid := radio.NewGrid(hostCountry, 60, 60, radio.DefaultSpacingDeg)

	ds := &SMIPDataset{
		Host:   host,
		Start:  cfg.Start,
		Days:   cfg.Days,
		GSMA:   fed.GSMA,
		Native: make(map[identity.DeviceID]bool, cfg.NativePerSite),
		NBIoT:  map[identity.DeviceID]bool{},
	}

	// Native cohort: per-meter substreams, serial index-order IMSI
	// allocation, parallel profile finish — the usual three-pass
	// shape.
	srcs := make([]*rng.Source, cfg.NativePerSite)
	for i := range srcs {
		srcs[i] = sroot.SplitN("meter", uint64(i))
	}
	alloc := devices.NewIMSIAllocator()
	imsis := make([]identity.IMSI, cfg.NativePerSite)
	for i := range imsis {
		imsis[i] = alloc.Next(host, SMIPNativeBase)
	}
	natives := make([]devices.Device, cfg.NativePerSite)
	pipeline.Run(cfg.NativePerSite, cfg.Workers, func(sh pipeline.Shard) {
		for i := sh.Lo; i < sh.Hi; i++ {
			src := srcs[i]
			prof := devices.SmartMeterNativeProfile(src.Split("profile"), cfg.Days, host)
			info := fed.GSMA.Pick(src.Split("tac"), gsma.ArchM2MModule)
			mob := mobility.NewStationary(src.Split("mob"), centre, 150)
			natives[i] = devices.Assemble(devices.ClassSmartMeter, imsis[i], info, prof, mob, false)
		}
	})

	locals := make([]localDevice, 0, cfg.NativePerSite)
	for i := range natives {
		ds.Devices = append(ds.Devices, natives[i])
		ds.Native[natives[i].ID] = true
		locals = append(locals, localDevice{dev: natives[i], emit: srcs[i].Split("days")})
	}

	// Fleet meters scheduled here, in fleet order. Stationary classes
	// camp on their anchor, so the schedule gate is all-or-nothing per
	// site — but it is still consulted, keeping the plane correct if
	// the schedule model ever grows mobile meters.
	for i := range fed.members {
		m := &fed.members[i]
		if m.dev.Class != devices.ClassSmartMeter || m.daysAt(j) == 0 {
			continue
		}
		vsrc := m.src.SplitN("smipvisit", siteKey(host))
		dev := m.dev
		dev.Mobility = mobility.NewStationary(vsrc.Split("mob"), centre, 150)
		sched := m.sched
		ds.Devices = append(ds.Devices, dev)
		ds.Native[dev.ID] = false
		locals = append(locals, localDevice{
			dev:        dev,
			emit:       vsrc.Split("days"),
			presentDay: func(day int) bool { return int(sched[day]) == j },
		})
	}

	ds.NativeRange = SMIPNativeRange(host, alloc.Allocated(host, SMIPNativeBase))
	ds.Catalog = buildSiteCatalog(cfg, host, grid, locals)
	return ds
}
