package dataset

import (
	"sort"
	"time"

	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/devices"
	"whereroam/internal/geo"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/mobility"
	"whereroam/internal/probe"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
)

// RawStreams is the per-event view of a capture: what the probes at
// the MME/MSC/SGSN hand to the pipeline before any aggregation.
type RawStreams struct {
	Radio   []radio.Event
	Records []cdrs.Record
}

// GenerateSMIPRaw builds the same SMIP population as GenerateSMIP but
// materializes the §4.1 measurement path end to end: it synthesizes
// individual radio events and CDRs/xDRs, runs them through probe
// taps, and aggregates the devices-catalog with catalog.Builder —
// dwell-based mobility metrics included. It is an order of magnitude
// more expensive per device than the direct generator and exists to
// exercise (and cross-validate) the real pipeline; keep cohorts in
// the thousands.
func GenerateSMIPRaw(cfg SMIPConfig) (*SMIPDataset, *RawStreams) {
	if cfg.NativeMeters < 0 || cfg.RoamingMeters < 0 || cfg.Days <= 0 {
		panic("dataset: SMIP config needs non-negative cohorts and positive Days")
	}
	db := gsma.Synthesize(cfg.GSMASeed)
	root := rng.New(cfg.Seed).Split("smipraw")
	hostCountry, _ := mccmnc.CountryByMCC(cfg.Host.MCC)
	grid := radio.NewGrid(hostCountry, 60, 60, radio.DefaultSpacingDeg)
	alloc := devices.NewIMSIAllocator()
	nlHome := mccmnc.MustParse("20404")

	ds := &SMIPDataset{
		Host:   cfg.Host,
		Start:  cfg.Start,
		Days:   cfg.Days,
		GSMA:   db,
		Native: make(map[identity.DeviceID]bool, cfg.NativeMeters+cfg.RoamingMeters),
		NBIoT:  map[identity.DeviceID]bool{},
	}

	// Probe taps into in-memory collectors, exactly the capture
	// arrangement of Fig. 4.
	var radioCol probe.Collector[radio.Event]
	var cdrCol probe.Collector[cdrs.Record]
	radioTap := probe.NewTap("mme-msc-sgsn", cfg.Seed, radioCol.Add)
	cdrTap := probe.NewTap("mediation", cfg.Seed, cdrCol.Add)

	centre := geo.Point{Lat: hostCountry.Lat, Lon: hostCountry.Lon}
	for i := 0; i < cfg.NativeMeters; i++ {
		src := root.SplitN("native", uint64(i))
		imsi := alloc.Next(cfg.Host, SMIPNativeBase)
		prof := devices.SmartMeterNativeProfile(src.Split("profile"), cfg.Days, cfg.Host)
		info := db.Pick(src.Split("tac"), gsma.ArchM2MModule)
		mob := mobility.NewStationary(src.Split("mob"), centre, 40)
		dev := devices.Assemble(devices.ClassSmartMeter, imsi, info, prof, mob, false)
		ds.Devices = append(ds.Devices, dev)
		ds.Native[dev.ID] = true
		emitDeviceDaysRaw(src.Split("days"), cfg, grid, radioTap, cdrTap, &dev)
	}
	for i := 0; i < cfg.RoamingMeters; i++ {
		src := root.SplitN("roaming", uint64(i))
		imsi := alloc.Next(nlHome, 4_000_000_000)
		prof := devices.SmartMeterRoamingProfile(src.Split("profile"), cfg.Days)
		info := db.PickFromVendors(src.Split("tac"), gsma.ArchM2MModule, "Gemalto", "Telit")
		mob := mobility.NewStationary(src.Split("mob"), centre, 40)
		dev := devices.Assemble(devices.ClassSmartMeter, imsi, info, prof, mob, false)
		ds.Devices = append(ds.Devices, dev)
		ds.Native[dev.ID] = false
		emitDeviceDaysRaw(src.Split("days"), cfg, grid, radioTap, cdrTap, &dev)
	}

	// Time-order the streams (probes interleave by capture point) and
	// run the aggregation pipeline.
	raw := &RawStreams{Radio: radioCol.Records(), Records: cdrCol.Records()}
	sort.Slice(raw.Radio, func(i, j int) bool { return raw.Radio[i].Time.Before(raw.Radio[j].Time) })
	sort.Slice(raw.Records, func(i, j int) bool { return raw.Records[i].Time.Before(raw.Records[j].Time) })

	builder := catalog.NewBuilder(cfg.Host, cfg.Start, cfg.Days, grid)
	for i := range raw.Radio {
		builder.AddRadioEvent(raw.Radio[i])
	}
	for i := range raw.Records {
		builder.AddRecord(raw.Records[i])
	}
	ds.Catalog = builder.Build()
	ds.NativeRange = SMIPNativeRange(cfg.Host, alloc.Allocated(cfg.Host, SMIPNativeBase))
	return ds, raw
}

// emitDeviceDaysRaw synthesizes per-event streams for one device.
func emitDeviceDaysRaw(src *rng.Source, cfg SMIPConfig, grid *radio.Grid,
	radioTap *probe.Tap[radio.Event], cdrTap *probe.Tap[cdrs.Record], dev *devices.Device) {

	p := dev.Profile
	daySeconds := int64(24 * 3600)
	for day := p.PresenceStart; day < p.PresenceStart+p.PresenceDays && day < cfg.Days; day++ {
		if !src.Bool(p.DailyActiveProb) {
			continue
		}
		dayStart := cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
		at := func() time.Time {
			return dayStart.Add(time.Duration(src.Int63n(daySeconds)) * time.Second)
		}
		sectorAt := func(t time.Time, rat radio.RAT) radio.SectorID {
			pos := dev.Mobility.Position(t)
			if s, ok := grid.NearestWithRAT(pos, rat); ok {
				return s.ID
			}
			return grid.Nearest(pos).ID
		}

		// Radio events.
		events := int(src.LogNormal(p.SignalingMu, p.SignalingSigma))
		if events < 1 {
			events = 1
		}
		rat := p.DataRAT
		if rat == radio.RATUnknown {
			rat = p.VoiceRAT
		}
		iface, _ := radio.InterfaceFor(rat, radio.DomainPS)
		for e := 0; e < events; e++ {
			t := at()
			evRAT := rat
			evIface := iface
			if p.DataRAT2 != radio.RATUnknown && src.Bool(0.4) {
				evRAT = p.DataRAT2
				evIface, _ = radio.InterfaceFor(evRAT, radio.DomainPS)
			}
			res := radio.ResultOK
			if p.FailProb > 0 && src.Bool(p.FailProb) {
				res = radio.ResultFail
			}
			radioTap.Offer(radio.Event{
				Device:    dev.ID,
				Time:      t,
				SIM:       dev.Home,
				TAC:       dev.IMEI.TAC,
				Sector:    sectorAt(t, evRAT),
				Interface: evIface,
				Result:    res,
			})
		}

		// Data sessions as xDRs.
		if p.UsesData {
			sessions := src.Poisson(p.DataSessionsPerDay)
			for sNum := 0; sNum < sessions; sNum++ {
				cdrTap.Offer(cdrs.Record{
					Device:   dev.ID,
					Time:     at(),
					SIM:      dev.Home,
					Visited:  cfg.Host,
					Kind:     cdrs.KindData,
					RAT:      p.DataRAT,
					Duration: time.Duration(30+src.Intn(300)) * time.Second,
					Bytes:    uint64(src.LogNormal(p.SessionBytesMu, p.SessionBytesSigma)),
					APN:      p.APN,
				})
			}
		}
		// Voice as CDRs.
		if p.UsesVoice {
			calls := src.Poisson(p.CallsPerDay)
			for cNum := 0; cNum < calls; cNum++ {
				cdrTap.Offer(cdrs.Record{
					Device:   dev.ID,
					Time:     at(),
					SIM:      dev.Home,
					Visited:  cfg.Host,
					Kind:     cdrs.KindVoice,
					RAT:      p.VoiceRAT,
					Duration: time.Duration(src.Exp(p.CallDurMeanS)) * time.Second,
				})
			}
		}
	}
}
