package dataset

import (
	"sort"
	"time"

	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/devices"
	"whereroam/internal/geo"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/mobility"
	"whereroam/internal/pipeline"
	"whereroam/internal/probe"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
)

// RawStreams is the per-event view of a capture: what the probes at
// the MME/MSC/SGSN hand to the pipeline before any aggregation.
type RawStreams struct {
	Radio   []radio.Event
	Records []cdrs.Record
}

// smipEmission is the shared synthesis core behind GenerateSMIPRaw
// and GenerateSMIPStreaming: the population setup plus the per-event
// emission walk. The two paths differ only in where the probe taps
// point — shard-local collectors (batch) or the ingest router
// (streaming).
type smipEmission struct {
	cfg    SMIPConfig
	db     *gsma.DB
	root   *rng.Source
	grid   *radio.Grid
	alloc  *devices.IMSIAllocator
	ds     *SMIPDataset
	centre geo.Point
	nlHome mccmnc.PLMN
}

// smipCohort describes one of the two meter cohorts.
type smipCohort struct {
	label  string
	count  int
	native bool
}

func smipCohorts(cfg SMIPConfig) []smipCohort {
	return []smipCohort{
		{label: "native", count: cfg.NativeMeters, native: true},
		{label: "roaming", count: cfg.RoamingMeters, native: false},
	}
}

func newSMIPEmission(cfg SMIPConfig) *smipEmission {
	if cfg.NativeMeters < 0 || cfg.RoamingMeters < 0 || cfg.Days <= 0 {
		panic("dataset: SMIP config needs non-negative cohorts and positive Days")
	}
	hostCountry, _ := mccmnc.CountryByMCC(cfg.Host.MCC)
	return &smipEmission{
		cfg:   cfg,
		db:    gsma.Synthesize(cfg.GSMASeed),
		root:  rng.New(cfg.Seed).Split("smipraw"),
		grid:  radio.NewGrid(hostCountry, 60, 60, radio.DefaultSpacingDeg),
		alloc: devices.NewIMSIAllocator(),
		ds: &SMIPDataset{
			Host:   cfg.Host,
			Start:  cfg.Start,
			Days:   cfg.Days,
			Native: make(map[identity.DeviceID]bool, cfg.NativeMeters+cfg.RoamingMeters),
			NBIoT:  map[identity.DeviceID]bool{},
		},
		centre: geo.Point{Lat: hostCountry.Lat, Lon: hostCountry.Lon},
		nlHome: mccmnc.MustParse("20404"),
	}
}

// emitCohorts walks both cohorts through the §4.1 measurement path.
// Each cohort draws its IMSIs from a dedicated sequential block (a
// serial index-order pass), then the expensive per-event emission
// fans out over pipeline shards: taps is called once per emission
// shard, from worker goroutines, and returns the probe pair that
// shard's devices feed. Shard boundaries depend only on the cohort
// size, and every device's events flow through exactly one tap pair
// in a per-device time-sorted order — the invariants that make the
// batch and streaming captures interchangeable.
func (g *smipEmission) emitCohorts(taps func(label string, sh pipeline.Shard) (*probe.Tap[radio.Event], *probe.Tap[cdrs.Record])) {
	g.ds.GSMA = g.db
	for _, co := range smipCohorts(g.cfg) {
		imsis := make([]identity.IMSI, co.count)
		for i := range imsis {
			if co.native {
				imsis[i] = g.alloc.Next(g.cfg.Host, SMIPNativeBase)
			} else {
				imsis[i] = g.alloc.Next(g.nlHome, 4_000_000_000)
			}
		}
		co := co
		outs := pipeline.Map(co.count, g.cfg.Workers, func(sh pipeline.Shard) []devices.Device {
			radioTap, cdrTap := taps(co.label, sh)
			devs := make([]devices.Device, 0, sh.Len())
			var bufs emitBufs
			for i := sh.Lo; i < sh.Hi; i++ {
				src := g.root.SplitN(co.label, uint64(i))
				var prof devices.Profile
				var info gsma.DeviceInfo
				if co.native {
					prof = devices.SmartMeterNativeProfile(src.Split("profile"), g.cfg.Days, g.cfg.Host)
					info = g.db.Pick(src.Split("tac"), gsma.ArchM2MModule)
				} else {
					prof = devices.SmartMeterRoamingProfile(src.Split("profile"), g.cfg.Days)
					info = g.db.PickFromVendors(src.Split("tac"), gsma.ArchM2MModule, "Gemalto", "Telit")
				}
				mob := mobility.NewStationary(src.Split("mob"), g.centre, 40)
				dev := devices.Assemble(devices.ClassSmartMeter, imsis[i], info, prof, mob, false)
				devs = append(devs, dev)
				emitDeviceDaysRaw(src.Split("days"), g.cfg.Host, g.cfg.Start, g.cfg.Days, g.grid, radioTap, cdrTap, &dev, &bufs)
			}
			return devs
		})
		for _, devs := range outs {
			for i := range devs {
				g.ds.Native[devs[i].ID] = co.native
			}
			g.ds.Devices = append(g.ds.Devices, devs...)
		}
	}
	g.ds.NativeRange = SMIPNativeRange(g.cfg.Host, g.alloc.Allocated(g.cfg.Host, SMIPNativeBase))
}

// GenerateSMIPRaw builds the same SMIP population as GenerateSMIP but
// materializes the §4.1 measurement path end to end: it synthesizes
// individual radio events and CDRs/xDRs, runs them through probe
// taps into shard-local collectors, and aggregates the
// devices-catalog with catalog.ShardedBuilder — dwell-based mobility
// metrics included. It is an order of magnitude more expensive per
// device than the direct generator and exists to exercise (and
// cross-validate) the real pipeline; keep cohorts in the thousands,
// or use GenerateSMIPStreaming when the materialized capture itself
// is the problem.
func GenerateSMIPRaw(cfg SMIPConfig) (*SMIPDataset, *RawStreams) {
	g := newSMIPEmission(cfg)

	// Batch capture: one collector pair per emission shard (the
	// capture arrangement of Fig. 4, one tap pair per shard), gathered
	// in (cohort, shard) order afterwards — the exact emission order
	// of a serial run. Shard counts are a function of the cohort size
	// alone (pipeline.ShardCount), so the slices pre-size up front and
	// the worker callbacks write disjoint indices with no locking.
	type shardCols struct {
		radio probe.Collector[radio.Event]
		cdr   probe.Collector[cdrs.Record]
	}
	byCohort := map[string][]*shardCols{}
	for _, co := range smipCohorts(cfg) {
		byCohort[co.label] = make([]*shardCols, pipeline.ShardCount(co.count))
	}
	g.emitCohorts(func(label string, sh pipeline.Shard) (*probe.Tap[radio.Event], *probe.Tap[cdrs.Record]) {
		cols := &shardCols{}
		byCohort[label][sh.Index] = cols
		return probe.NewTap("mme-msc-sgsn", cfg.Seed, cols.radio.Add),
			probe.NewTap("mediation", cfg.Seed, cols.cdr.Add)
	})

	raw := &RawStreams{}
	for _, co := range smipCohorts(cfg) {
		for _, cols := range byCohort[co.label] {
			raw.Radio = append(raw.Radio, cols.radio.Records()...)
			raw.Records = append(raw.Records, cols.cdr.Records()...)
		}
	}

	// Time-order the streams (probes interleave by capture point) and
	// run the aggregation pipeline: events partition by device onto
	// shard-local builders (so dwell attribution sees each device's
	// full event chain), shards ingest concurrently, and the merge
	// restores the catalog's (device, day) order. The sort is stable:
	// each device's emission is already time-sorted, so stability
	// keeps every device's relative order equal to its emission order
	// — the same per-device sequences the streaming ingest path
	// delivers, which is what makes the two catalogs bit-identical.
	sort.SliceStable(raw.Radio, func(i, j int) bool { return raw.Radio[i].Time.Before(raw.Radio[j].Time) })
	sort.SliceStable(raw.Records, func(i, j int) bool { return raw.Records[i].Time.Before(raw.Records[j].Time) })

	workers := pipeline.Workers(cfg.Workers)
	sb := catalog.NewShardedBuilder(cfg.Host, cfg.Start, cfg.Days, g.grid, workers)
	radioByShard := make([][]radio.Event, sb.Shards())
	for i := range raw.Radio {
		s := sb.ShardFor(raw.Radio[i].Device)
		radioByShard[s] = append(radioByShard[s], raw.Radio[i])
	}
	cdrsByShard := make([][]cdrs.Record, sb.Shards())
	for i := range raw.Records {
		s := sb.ShardFor(raw.Records[i].Device)
		cdrsByShard[s] = append(cdrsByShard[s], raw.Records[i])
	}
	pipeline.Run(sb.Shards(), cfg.Workers, func(sh pipeline.Shard) {
		for s := sh.Lo; s < sh.Hi; s++ {
			b := sb.Builder(s)
			for i := range radioByShard[s] {
				b.AddRadioEvent(radioByShard[s][i])
			}
			for i := range cdrsByShard[s] {
				b.AddRecord(cdrsByShard[s][i])
			}
		}
	})
	g.ds.Catalog = sb.Build(cfg.Workers)
	return g.ds, raw
}

// emitBufs carries the per-day scratch slices the raw emission path
// fills and drains for every emitted day. Allocate one per emission
// shard and pass it to every device in the shard: the backing arrays
// are then reused across devices instead of reallocated per device,
// which is where the steady-state allocation rate of the raw capture
// paths used to come from. Taps and builders copy records by value on
// Offer, so reuse is safe. The zero value is ready to use; nil means
// "allocate locally" (one-shot callers).
type emitBufs struct {
	evs  []radio.Event
	recs []cdrs.Record
}

// emitDeviceDaysRaw synthesizes per-event streams for one device
// observed from host over the [start, start+days) window. A day's
// events are generated first and offered time-sorted (stable, so
// generation order breaks timestamp ties): each device's stream is
// then time-ordered end to end, which both the batch path's stable
// global sort and the streaming ingest router preserve — the
// per-device order contract the catalogs' bit-identity rests on.
func emitDeviceDaysRaw(src *rng.Source, host mccmnc.PLMN, start time.Time, days int, grid *radio.Grid,
	radioTap *probe.Tap[radio.Event], cdrTap *probe.Tap[cdrs.Record], dev *devices.Device, bufs *emitBufs) {
	emitDeviceDaysSched(src, host, start, days, grid, radioTap, cdrTap, dev, nil, bufs)
}

// emitDeviceDaysSched is emitDeviceDaysRaw with a presence gate: when
// presentDay is non-nil, only days it reports true for emit anything —
// and absent days consume no randomness at all, so a device's draws at
// one federation site never depend on how many days it spent at the
// others. The gate is consulted before the daily-activity draw: being
// scheduled elsewhere is not "inactive here", it is "not here".
func emitDeviceDaysSched(src *rng.Source, host mccmnc.PLMN, start time.Time, days int, grid *radio.Grid,
	radioTap *probe.Tap[radio.Event], cdrTap *probe.Tap[cdrs.Record], dev *devices.Device, presentDay func(int) bool, bufs *emitBufs) {

	if bufs == nil {
		bufs = &emitBufs{}
	}
	p := dev.Profile
	daySeconds := int64(24 * 3600)
	dayEvs := bufs.evs
	dayRecs := bufs.recs
	defer func() {
		bufs.evs = dayEvs
		bufs.recs = dayRecs
	}()
	for day := p.PresenceStart; day < p.PresenceStart+p.PresenceDays && day < days; day++ {
		if presentDay != nil && !presentDay(day) {
			continue
		}
		if !src.Bool(p.DailyActiveProb) {
			continue
		}
		dayEvs, dayRecs = dayEvs[:0], dayRecs[:0]
		dayStart := start.Add(time.Duration(day) * 24 * time.Hour)
		at := func() time.Time {
			return dayStart.Add(time.Duration(src.Int63n(daySeconds)) * time.Second)
		}
		sectorAt := func(t time.Time, rat radio.RAT) radio.SectorID {
			pos := dev.Mobility.Position(t)
			if s, ok := grid.NearestWithRAT(pos, rat); ok {
				return s.ID
			}
			return grid.Nearest(pos).ID
		}

		// Radio events.
		events := int(src.LogNormal(p.SignalingMu, p.SignalingSigma))
		if events < 1 {
			events = 1
		}
		rat := p.DataRAT
		if rat == radio.RATUnknown {
			rat = p.VoiceRAT
		}
		iface, _ := radio.InterfaceFor(rat, radio.DomainPS)
		for e := 0; e < events; e++ {
			t := at()
			evRAT := rat
			evIface := iface
			if p.DataRAT2 != radio.RATUnknown && src.Bool(0.4) {
				evRAT = p.DataRAT2
				evIface, _ = radio.InterfaceFor(evRAT, radio.DomainPS)
			}
			res := radio.ResultOK
			if p.FailProb > 0 && src.Bool(p.FailProb) {
				res = radio.ResultFail
			}
			dayEvs = append(dayEvs, radio.Event{
				Device:    dev.ID,
				Time:      t,
				SIM:       dev.Home,
				TAC:       dev.IMEI.TAC,
				Sector:    sectorAt(t, evRAT),
				Interface: evIface,
				Result:    res,
			})
		}

		// Data sessions as xDRs.
		if p.UsesData {
			sessions := src.Poisson(p.DataSessionsPerDay)
			for sNum := 0; sNum < sessions; sNum++ {
				dayRecs = append(dayRecs, cdrs.Record{
					Device:   dev.ID,
					Time:     at(),
					SIM:      dev.Home,
					Visited:  host,
					Kind:     cdrs.KindData,
					RAT:      p.DataRAT,
					Duration: time.Duration(30+src.Intn(300)) * time.Second,
					Bytes:    uint64(src.LogNormal(p.SessionBytesMu, p.SessionBytesSigma)),
					APN:      p.APN,
				})
			}
		}
		// Voice as CDRs.
		if p.UsesVoice {
			calls := src.Poisson(p.CallsPerDay)
			for cNum := 0; cNum < calls; cNum++ {
				dayRecs = append(dayRecs, cdrs.Record{
					Device:   dev.ID,
					Time:     at(),
					SIM:      dev.Home,
					Visited:  host,
					Kind:     cdrs.KindVoice,
					RAT:      p.VoiceRAT,
					Duration: time.Duration(src.Exp(p.CallDurMeanS)) * time.Second,
				})
			}
		}

		sort.SliceStable(dayEvs, func(i, j int) bool { return dayEvs[i].Time.Before(dayEvs[j].Time) })
		for i := range dayEvs {
			radioTap.Offer(dayEvs[i])
		}
		sort.SliceStable(dayRecs, func(i, j int) bool { return dayRecs[i].Time.Before(dayRecs[j].Time) })
		for i := range dayRecs {
			cdrTap.Offer(dayRecs[i])
		}
	}
}
