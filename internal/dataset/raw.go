package dataset

import (
	"sort"
	"time"

	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/devices"
	"whereroam/internal/geo"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/mobility"
	"whereroam/internal/pipeline"
	"whereroam/internal/probe"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
)

// RawStreams is the per-event view of a capture: what the probes at
// the MME/MSC/SGSN hand to the pipeline before any aggregation.
type RawStreams struct {
	Radio   []radio.Event
	Records []cdrs.Record
}

// GenerateSMIPRaw builds the same SMIP population as GenerateSMIP but
// materializes the §4.1 measurement path end to end: it synthesizes
// individual radio events and CDRs/xDRs, runs them through probe
// taps, and aggregates the devices-catalog with catalog.Builder —
// dwell-based mobility metrics included. It is an order of magnitude
// more expensive per device than the direct generator and exists to
// exercise (and cross-validate) the real pipeline; keep cohorts in
// the thousands.
func GenerateSMIPRaw(cfg SMIPConfig) (*SMIPDataset, *RawStreams) {
	if cfg.NativeMeters < 0 || cfg.RoamingMeters < 0 || cfg.Days <= 0 {
		panic("dataset: SMIP config needs non-negative cohorts and positive Days")
	}
	db := gsma.Synthesize(cfg.GSMASeed)
	root := rng.New(cfg.Seed).Split("smipraw")
	hostCountry, _ := mccmnc.CountryByMCC(cfg.Host.MCC)
	grid := radio.NewGrid(hostCountry, 60, 60, radio.DefaultSpacingDeg)
	alloc := devices.NewIMSIAllocator()
	nlHome := mccmnc.MustParse("20404")

	ds := &SMIPDataset{
		Host:   cfg.Host,
		Start:  cfg.Start,
		Days:   cfg.Days,
		GSMA:   db,
		Native: make(map[identity.DeviceID]bool, cfg.NativeMeters+cfg.RoamingMeters),
		NBIoT:  map[identity.DeviceID]bool{},
	}
	centre := geo.Point{Lat: hostCountry.Lat, Lon: hostCountry.Lon}

	// Both cohorts draw their IMSIs from dedicated sequential blocks,
	// so allocation stays a serial index-order pass; the expensive
	// per-event emission then fans out over shard-local probe taps and
	// collectors (the capture arrangement of Fig. 4, one tap pair per
	// shard) whose streams concatenate in shard order — the exact
	// emission order of a serial run.
	type cohort struct {
		label  string
		count  int
		native bool
	}
	emit := func(co cohort, imsis []identity.IMSI) ([]devices.Device, *RawStreams) {
		type shardOut struct {
			devs     []devices.Device
			radioCol probe.Collector[radio.Event]
			cdrCol   probe.Collector[cdrs.Record]
		}
		outs := pipeline.Map(co.count, cfg.Workers, func(sh pipeline.Shard) *shardOut {
			out := &shardOut{devs: make([]devices.Device, 0, sh.Len())}
			radioTap := probe.NewTap("mme-msc-sgsn", cfg.Seed, out.radioCol.Add)
			cdrTap := probe.NewTap("mediation", cfg.Seed, out.cdrCol.Add)
			for i := sh.Lo; i < sh.Hi; i++ {
				src := root.SplitN(co.label, uint64(i))
				var prof devices.Profile
				var info gsma.DeviceInfo
				if co.native {
					prof = devices.SmartMeterNativeProfile(src.Split("profile"), cfg.Days, cfg.Host)
					info = db.Pick(src.Split("tac"), gsma.ArchM2MModule)
				} else {
					prof = devices.SmartMeterRoamingProfile(src.Split("profile"), cfg.Days)
					info = db.PickFromVendors(src.Split("tac"), gsma.ArchM2MModule, "Gemalto", "Telit")
				}
				mob := mobility.NewStationary(src.Split("mob"), centre, 40)
				dev := devices.Assemble(devices.ClassSmartMeter, imsis[i], info, prof, mob, false)
				out.devs = append(out.devs, dev)
				emitDeviceDaysRaw(src.Split("days"), cfg, grid, radioTap, cdrTap, &dev)
			}
			return out
		})
		var devs []devices.Device
		streams := &RawStreams{}
		for _, o := range outs {
			devs = append(devs, o.devs...)
			streams.Radio = append(streams.Radio, o.radioCol.Records()...)
			streams.Records = append(streams.Records, o.cdrCol.Records()...)
		}
		return devs, streams
	}

	raw := &RawStreams{}
	for _, co := range []cohort{
		{label: "native", count: cfg.NativeMeters, native: true},
		{label: "roaming", count: cfg.RoamingMeters, native: false},
	} {
		imsis := make([]identity.IMSI, co.count)
		for i := range imsis {
			if co.native {
				imsis[i] = alloc.Next(cfg.Host, SMIPNativeBase)
			} else {
				imsis[i] = alloc.Next(nlHome, 4_000_000_000)
			}
		}
		devs, streams := emit(co, imsis)
		for i := range devs {
			ds.Native[devs[i].ID] = co.native
		}
		ds.Devices = append(ds.Devices, devs...)
		raw.Radio = append(raw.Radio, streams.Radio...)
		raw.Records = append(raw.Records, streams.Records...)
	}

	// Time-order the streams (probes interleave by capture point) and
	// run the aggregation pipeline: events partition by device onto
	// shard-local builders (so dwell attribution sees each device's
	// full event chain), shards ingest concurrently, and the merge
	// restores the catalog's (device, day) order.
	sort.Slice(raw.Radio, func(i, j int) bool { return raw.Radio[i].Time.Before(raw.Radio[j].Time) })
	sort.Slice(raw.Records, func(i, j int) bool { return raw.Records[i].Time.Before(raw.Records[j].Time) })

	workers := pipeline.Workers(cfg.Workers)
	sb := catalog.NewShardedBuilder(cfg.Host, cfg.Start, cfg.Days, grid, workers)
	radioByShard := make([][]radio.Event, sb.Shards())
	for i := range raw.Radio {
		s := sb.ShardFor(raw.Radio[i].Device)
		radioByShard[s] = append(radioByShard[s], raw.Radio[i])
	}
	cdrsByShard := make([][]cdrs.Record, sb.Shards())
	for i := range raw.Records {
		s := sb.ShardFor(raw.Records[i].Device)
		cdrsByShard[s] = append(cdrsByShard[s], raw.Records[i])
	}
	pipeline.Run(sb.Shards(), cfg.Workers, func(sh pipeline.Shard) {
		for s := sh.Lo; s < sh.Hi; s++ {
			b := sb.Builder(s)
			for i := range radioByShard[s] {
				b.AddRadioEvent(radioByShard[s][i])
			}
			for i := range cdrsByShard[s] {
				b.AddRecord(cdrsByShard[s][i])
			}
		}
	})
	ds.Catalog = sb.Build(cfg.Workers)
	ds.NativeRange = SMIPNativeRange(cfg.Host, alloc.Allocated(cfg.Host, SMIPNativeBase))
	return ds, raw
}

// emitDeviceDaysRaw synthesizes per-event streams for one device.
func emitDeviceDaysRaw(src *rng.Source, cfg SMIPConfig, grid *radio.Grid,
	radioTap *probe.Tap[radio.Event], cdrTap *probe.Tap[cdrs.Record], dev *devices.Device) {

	p := dev.Profile
	daySeconds := int64(24 * 3600)
	for day := p.PresenceStart; day < p.PresenceStart+p.PresenceDays && day < cfg.Days; day++ {
		if !src.Bool(p.DailyActiveProb) {
			continue
		}
		dayStart := cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
		at := func() time.Time {
			return dayStart.Add(time.Duration(src.Int63n(daySeconds)) * time.Second)
		}
		sectorAt := func(t time.Time, rat radio.RAT) radio.SectorID {
			pos := dev.Mobility.Position(t)
			if s, ok := grid.NearestWithRAT(pos, rat); ok {
				return s.ID
			}
			return grid.Nearest(pos).ID
		}

		// Radio events.
		events := int(src.LogNormal(p.SignalingMu, p.SignalingSigma))
		if events < 1 {
			events = 1
		}
		rat := p.DataRAT
		if rat == radio.RATUnknown {
			rat = p.VoiceRAT
		}
		iface, _ := radio.InterfaceFor(rat, radio.DomainPS)
		for e := 0; e < events; e++ {
			t := at()
			evRAT := rat
			evIface := iface
			if p.DataRAT2 != radio.RATUnknown && src.Bool(0.4) {
				evRAT = p.DataRAT2
				evIface, _ = radio.InterfaceFor(evRAT, radio.DomainPS)
			}
			res := radio.ResultOK
			if p.FailProb > 0 && src.Bool(p.FailProb) {
				res = radio.ResultFail
			}
			radioTap.Offer(radio.Event{
				Device:    dev.ID,
				Time:      t,
				SIM:       dev.Home,
				TAC:       dev.IMEI.TAC,
				Sector:    sectorAt(t, evRAT),
				Interface: evIface,
				Result:    res,
			})
		}

		// Data sessions as xDRs.
		if p.UsesData {
			sessions := src.Poisson(p.DataSessionsPerDay)
			for sNum := 0; sNum < sessions; sNum++ {
				cdrTap.Offer(cdrs.Record{
					Device:   dev.ID,
					Time:     at(),
					SIM:      dev.Home,
					Visited:  cfg.Host,
					Kind:     cdrs.KindData,
					RAT:      p.DataRAT,
					Duration: time.Duration(30+src.Intn(300)) * time.Second,
					Bytes:    uint64(src.LogNormal(p.SessionBytesMu, p.SessionBytesSigma)),
					APN:      p.APN,
				})
			}
		}
		// Voice as CDRs.
		if p.UsesVoice {
			calls := src.Poisson(p.CallsPerDay)
			for cNum := 0; cNum < calls; cNum++ {
				cdrTap.Offer(cdrs.Record{
					Device:   dev.ID,
					Time:     at(),
					SIM:      dev.Home,
					Visited:  cfg.Host,
					Kind:     cdrs.KindVoice,
					RAT:      p.VoiceRAT,
					Duration: time.Duration(src.Exp(p.CallDurMeanS)) * time.Second,
				})
			}
		}
	}
}
