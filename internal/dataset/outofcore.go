package dataset

// This file holds the out-of-core generators: the bounded-memory
// twins of the materialized generation paths. The materialized passes
// hold every draft (and then every device) resident because the
// serial IMSI allocation is order-dependent; the out-of-core passes
// replace it with a counting pre-pass — replay the cheap draft draws,
// count allocations per (home, base) block per canonical shard,
// prefix-sum the counts into per-shard starting offsets — after which
// any shard can compute its devices' IMSIs independently, and a
// device can be drafted, finished, emitted and released without its
// neighbours ever being resident. Per-device RNG substreams
// (rng.Source.SplitN is O(1) and never advances the parent) are what
// make the replay free and bit-exact.

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/core"
	"whereroam/internal/devices"
	"whereroam/internal/geo"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/ingest"
	"whereroam/internal/mccmnc"
	"whereroam/internal/netsim"
	"whereroam/internal/pipeline"
	"whereroam/internal/probe"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
	"whereroam/internal/store"
)

// outOfCoreDepth is the per-shard fan-in window of the out-of-core
// generators. It is deliberately much smaller than ingest.DefaultDepth:
// in-flight records are the only per-population state the streaming
// path holds, so shards × depth bounds its working set.
const outOfCoreDepth = 64

// blockKey identifies one IMSI allocation block: the (home operator,
// MSIN base) pair devices.IMSIAllocator keys its sequential counters
// by.
type blockKey struct {
	home mccmnc.PLMN
	base uint64
}

// blockCounts is the outcome of a counting pre-pass over one
// population: per canonical shard, the starting allocation offset of
// every block the shard draws from (the prefix-sum of earlier shards'
// counts), plus the grand totals per block. Device i in shard s with
// block k gets MSIN base + offsets[s][k] + (its rank among the shard's
// earlier k-devices) — exactly the IMSI a serial index-order
// allocation would have handed it.
type blockCounts struct {
	offsets []map[blockKey]uint64
	totals  map[blockKey]uint64
}

// shardOffsets clones shard s's starting offsets so an emission walk
// can advance them in place (a walk per site, out-of-core, revisits
// the same shard several times).
func (c *blockCounts) shardOffsets(s int) map[blockKey]uint64 {
	off := make(map[blockKey]uint64, len(c.offsets[s]))
	for k, v := range c.offsets[s] {
		off[k] = v
	}
	return off
}

// countBlocks runs the counting pre-pass: key replays device i's draft
// draws and returns its allocation block (it must be worker-count
// invariant, which per-device substream replay guarantees). The
// parallel count is O(devices) time and O(shards × blocks) space — the
// whole residue of the serial allocation barrier.
func countBlocks(n, workers int, key func(i int) blockKey) blockCounts {
	perShard := pipeline.Map(n, workers, func(sh pipeline.Shard) map[blockKey]uint64 {
		counts := map[blockKey]uint64{}
		for i := sh.Lo; i < sh.Hi; i++ {
			counts[key(i)]++
		}
		return counts
	})
	running := map[blockKey]uint64{}
	offsets := make([]map[blockKey]uint64, len(perShard))
	for s, counts := range perShard {
		off := make(map[blockKey]uint64, len(counts))
		for k := range counts {
			off[k] = running[k]
		}
		offsets[s] = off
		for k, cnt := range counts {
			running[k] += cnt
		}
	}
	return blockCounts{offsets: offsets, totals: running}
}

// MNOSink receives the out-of-core MNO generator's output. Both
// callbacks are optional (nil skips the plane); they run on the
// calling goroutine, in the exact order the materialized generator
// would have produced: devices in device-index order, each followed by
// its daily catalog records in day order. A sink that stalls blocks
// the producers through the fan-in windows — backpressure, not
// buffering.
type MNOSink struct {
	// Device receives each synthesized device with its capture-time
	// IR.88 verdict (the MNODataset.Declared entry).
	Device func(dev devices.Device, declared bool)
	// Record receives the device's daily catalog records.
	Record func(rec catalog.DailyRecord)
}

// MNOStream summarizes an out-of-core MNO generation run: the
// dataset-level constants of the equivalent MNODataset minus every
// per-device container.
type MNOStream struct {
	Host  mccmnc.PLMN
	Start time.Time
	Days  int
	GSMA  *gsma.DB
	// Transparency is the IR.88 registry the declaring home operators
	// published — identical to the materialized dataset's (it is built
	// from the counting totals before emission starts).
	Transparency *core.Registry
	// Devices and Records count what the sink was offered.
	Devices int
	Records int64
	// ResidentPeak is the high-water mark of concurrently resident
	// devices observed during emission. With MaxResidentDevices set it
	// never exceeds the budget; otherwise it is bounded by the worker
	// count.
	ResidentPeak int
}

// mnoItem is one element of the out-of-core MNO fan-in stream: a
// device announcement or one of its daily records.
type mnoItem struct {
	dev      devices.Device
	declared bool
	rec      catalog.DailyRecord
	isRec    bool
}

// StreamMNO is the out-of-core twin of GenerateMNO: the same
// population, bit for bit, delivered to sink device by device instead
// of materialized into an MNODataset. Memory stays bounded by the
// worker count (or cfg.MaxResidentDevices), the fan-in windows and the
// counting pre-pass's per-shard offset maps — never by cfg.Devices.
//
// The sink observes the exact serial order of the materialized
// generator at any worker count: emission shards run ahead on bounded
// per-shard windows (ingest.Ordered) and the caller drains them in
// shard order. Collecting the sink's devices and records therefore
// reproduces MNODataset.Devices and MNODataset.Catalog.Records
// bit-identically — the equality determinism_test.go pins.
func StreamMNO(cfg MNOConfig, sink MNOSink) *MNOStream {
	if cfg.Devices <= 0 || cfg.Days <= 0 {
		panic("dataset: MNO config needs positive Devices and Days")
	}
	db := gsma.Synthesize(cfg.GSMASeed)
	root := rng.New(cfg.Seed).Split("mno")
	hostCountry, _ := mccmnc.CountryByMCC(cfg.Host.MCC)
	centre := geo.Point{Lat: hostCountry.Lat, Lon: hostCountry.Lon}
	classPick, m2mPick := mnoPicks(root)

	// Counting pre-pass: replay the draft draws, keep only the block
	// counts. This is the entire replacement for the serial IMSI pass —
	// and for the all-drafts-resident barrier it imposed.
	counts := countBlocks(cfg.Devices, cfg.Workers, func(i int) blockKey {
		d := drawMNODraft(root, i, cfg, classPick, m2mPick)
		return blockKey{home: d.home, base: d.base}
	})

	// The IR.88 registry derives from the totals alone, so it can be
	// built before emission and consulted per device on the way out.
	m2mTotals := map[mccmnc.PLMN]uint64{}
	//roamvet:maporder-ok the target key k.home is unique among the k.base == M2MBlockBase entries of the ranged map (one M2M block per home PLMN), so each write lands exactly once
	for k, n := range counts.totals {
		if k.base == M2MBlockBase {
			m2mTotals[k.home] = n
		}
	}
	reg := transparencyRegistry(cfg.TransparencyAdoption, root.Split("ir88"), m2mTotals)

	out := &MNOStream{
		Host:         cfg.Host,
		Start:        cfg.Start,
		Days:         cfg.Days,
		GSMA:         db,
		Transparency: reg,
		Devices:      cfg.Devices,
	}

	// The residency budget clamps the emission pool: at most one
	// device is resident per worker, so capping workers caps residency
	// (output is worker-count invariant, so the clamp is free).
	workers := pipeline.Workers(cfg.Workers)
	if cfg.MaxResidentDevices > 0 && workers > cfg.MaxResidentDevices {
		workers = cfg.MaxResidentDevices
	}

	var resident, peak atomic.Int64
	ord := ingest.NewOrdered[mnoItem](pipeline.ShardCount(cfg.Devices), outOfCoreDepth)
	done := make(chan any, 1)
	go func() {
		defer func() {
			p := recover()
			ord.CloseAll()
			done <- p
		}()
		pipeline.Run(cfg.Devices, workers, func(sh pipeline.Shard) {
			defer ord.CloseShard(sh.Index)
			send := ord.Sink(sh.Index)
			off := counts.shardOffsets(sh.Index)
			var visits []geo.Visit
			emit := func(rec catalog.DailyRecord) { send(mnoItem{rec: rec, isRec: true}) }
			for i := sh.Lo; i < sh.Hi; i++ {
				cur := resident.Add(1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				d := drawMNODraft(root, i, cfg, classPick, m2mPick)
				k := blockKey{home: d.home, base: d.base}
				imsi := identity.IMSI{PLMN: d.home, MSIN: d.base + off[k]}
				off[k]++
				dev := finishDevice(&d, imsi, cfg, db, centre)
				send(mnoItem{dev: dev, declared: reg.MatchIMSI(imsi)})
				emitDeviceDays(d.src.Split("days"), cfg.Host, cfg.Start, cfg.Days, emit, &dev, &visits)
				resident.Add(-1)
			}
		})
	}()
	ord.Drain(func(it mnoItem) {
		if it.isRec {
			out.Records++
			if sink.Record != nil {
				sink.Record(it.rec)
			}
			return
		}
		if sink.Device != nil {
			sink.Device(it.dev, it.declared)
		}
	})
	if p := <-done; p != nil {
		panic(p)
	}
	out.ResidentPeak = int(peak.Load())
	return out
}

// generateFederationBounded is the out-of-core site plane: the fleet's
// serial IMSI allocation becomes a counting pre-pass, and each site is
// then built in turn by re-drafting every device from its RNG
// substream and streaming its records straight into the site's catalog
// ingester. Sites run one at a time so only one grid, one ingester and
// O(workers) devices are ever resident; within a site the walk fans
// out over the usual shard pool (catalog aggregation is insensitive to
// cross-device arrival order, so no fan-in ordering is needed).
func generateFederationBounded(cfg FederationConfig, fed *FederationDataset, root *rng.Source) {
	froot := root.Split("fleet")
	classPick, m2mPick := fleetPicks(froot)
	counts := countBlocks(cfg.FleetDevices, cfg.Workers, func(i int) blockKey {
		d := drawFleetDraft(froot, i, classPick, m2mPick)
		return blockKey{home: d.home, base: d.base}
	})

	fed.Sites = make([]*FederationSite, len(cfg.Hosts))
	for j := range cfg.Hosts {
		fed.Sites[j] = generateSiteBounded(cfg, j, root, froot, fed.GSMA, fed.World, classPick, m2mPick, &counts)
	}
}

// siteTruth is one emission shard's contribution to a bounded site's
// Present/Truth bookkeeping.
type siteTruth struct {
	truth   map[identity.DeviceID]devices.Class
	present []identity.DeviceID
}

// generateSiteBounded builds one visited operator's catalog without
// materializing its population: natives and fleet visitors are
// re-drafted shard by shard and released as soon as their records are
// in the ingest router.
func generateSiteBounded(cfg FederationConfig, j int, root, froot *rng.Source, db *gsma.DB, world *netsim.World,
	classPick, m2mPick *rng.Weighted, counts *blockCounts) *FederationSite {

	host := cfg.Hosts[j]
	sroot := root.SplitN("site", siteKey(host))
	hostCountry, _ := mccmnc.CountryByMCC(host.MCC)
	centre := geo.Point{Lat: hostCountry.Lat, Lon: hostCountry.Lon}
	grid := radio.NewGrid(hostCountry, 60, 60, radio.DefaultSpacingDeg)

	site := &FederationSite{
		Index:   j,
		Host:    host,
		Present: make(map[identity.DeviceID]bool),
		Truth:   make(map[identity.DeviceID]devices.Class, cfg.NativePerSite),
	}

	sb := catalog.NewShardedBuilder(host, cfg.Start, cfg.Days, grid, pipeline.Workers(cfg.Workers))
	in := ingest.NewCatalogIngester(sb, 0)
	defer in.Close()
	cdrSink := in.OfferRecord
	if cfg.ArchiveDir != "" {
		dir := filepath.Join(cfg.ArchiveDir, "site-"+host.Concat())
		w, err := store.NewWriter(dir, store.Meta{Host: host, Start: cfg.Start, Days: cfg.Days}, cfg.ArchiveSegmentRecords)
		if err != nil {
			panic(fmt.Sprintf("dataset: federation archive: %v", err))
		}
		defer func() {
			if err := w.Close(); err != nil {
				panic(fmt.Sprintf("dataset: federation archive: %v", err))
			}
		}()
		cdrSink = probe.Fanout(w.Sink(), in.OfferRecord)
	}
	newTaps := func() (*probe.Tap[radio.Event], *probe.Tap[cdrs.Record]) {
		return probe.NewTap("site-probe", cfg.Seed, in.OfferRadio),
			probe.NewTap("site-mediation", cfg.Seed, cdrSink)
	}

	// Natives: the site's single allocation block hands out sequential
	// MSINs in index order, so device i's IMSI is nativeBase + i — no
	// pre-pass needed.
	nativeWeights := make([]float64, len(nativeMix))
	for i, m := range nativeMix {
		nativeWeights[i] = m.share
	}
	nativePick := rng.NewWeighted(sroot.Split("nativeclass"), nativeWeights)
	nativeTruths := pipeline.Map(cfg.NativePerSite, cfg.Workers, func(sh pipeline.Shard) map[identity.DeviceID]devices.Class {
		radioTap, cdrTap := newTaps()
		var bufs emitBufs
		truth := make(map[identity.DeviceID]devices.Class, sh.Len())
		for i := sh.Lo; i < sh.Hi; i++ {
			src := sroot.SplitN("native", uint64(i))
			class := nativeMix[nativePick.DrawFrom(src)].class
			imsi := identity.IMSI{PLMN: host, MSIN: nativeBase + uint64(i)}
			prof, info := classProfile(src.Split("profile"), class, cfg.Days, host, host, false, db)
			mob := classMobility(src.Split("mobility"), class, centre)
			dev := devices.Assemble(class, imsi, info, prof, mob, false)
			truth[dev.ID] = class
			emitDeviceDaysSched(src.Split("days"), host, cfg.Start, cfg.Days, grid, radioTap, cdrTap, &dev, nil, &bufs)
		}
		return truth
	})
	for _, t := range nativeTruths {
		for id, class := range t {
			site.Truth[id] = class
		}
	}

	// Fleet visitors: re-draft, offset-allocate, finish, gate on the
	// schedule, emit, release. Present/Truth accumulate per shard and
	// merge in shard order.
	fleetTruths := pipeline.Map(cfg.FleetDevices, cfg.Workers, func(sh pipeline.Shard) *siteTruth {
		radioTap, cdrTap := newTaps()
		var bufs emitBufs
		off := counts.shardOffsets(sh.Index)
		st := &siteTruth{truth: map[identity.DeviceID]devices.Class{}}
		for i := sh.Lo; i < sh.Hi; i++ {
			d := drawFleetDraft(froot, i, classPick, m2mPick)
			k := blockKey{home: d.home, base: d.base}
			imsi := identity.IMSI{PLMN: d.home, MSIN: d.base + off[k]}
			off[k]++
			m := finishFleetMember(&d, imsi, cfg, db, world)
			if m.daysAt(j) == 0 {
				continue
			}
			vsrc := m.src.SplitN("visit", siteKey(host))
			dev := m.dev
			dev.Mobility = classMobility(vsrc.Split("mobility"), dev.Class, centre)
			sched := m.sched
			st.truth[dev.ID] = dev.Class
			st.present = append(st.present, dev.ID)
			emitDeviceDaysSched(vsrc.Split("days"), host, cfg.Start, cfg.Days, grid, radioTap, cdrTap, &dev,
				func(day int) bool { return int(sched[day]) == j }, &bufs)
		}
		return st
	})
	for _, st := range fleetTruths {
		for id, class := range st.truth {
			site.Truth[id] = class
		}
		for _, id := range st.present {
			site.Present[id] = true
		}
	}

	site.Catalog = in.Build(cfg.Workers)
	return site
}
