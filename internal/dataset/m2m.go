// Package dataset synthesizes the paper's two datasets at configurable
// scale and holds their in-memory containers: the M2M platform
// signaling dataset (§3.1), the visited-MNO population dataset
// (§4.1), and the SMIP smart-meter dataset (§4.4/§7).
//
// Generators are deterministic in (Seed, Scale); time windows follow
// the paper (11 / 22 / 26 days). Device counts default to roughly a
// tenth of the paper's (which keeps every experiment in seconds) and
// scale linearly.
package dataset

import (
	"sort"
	"time"

	"whereroam/internal/devices"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/netsim"
	"whereroam/internal/pipeline"
	"whereroam/internal/probe"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
	"whereroam/internal/signaling"
)

// M2MConfig parameterizes the platform dataset generator.
type M2MConfig struct {
	Seed    uint64
	Devices int       // IoT SIM population (paper: 120k)
	Days    int       // observation window (paper: 11)
	Start   time.Time // window start (paper: 2018-11-19)
	Policy  netsim.SelectionPolicy
	// SampleRate thins the probe capture (1 = keep everything). A
	// fractional rate samples per record by identity hash — every
	// record's verdict depends only on (seed, record), never on draw
	// order — so sampled captures parallelize like complete ones.
	SampleRate float64
	// Workers bounds the synthesis worker pool; values below one mean
	// one worker per CPU. Captures — complete and sampled alike — are
	// bit-identical for every worker count.
	Workers int
}

// DefaultM2MConfig returns the standard scaled-down configuration.
func DefaultM2MConfig() M2MConfig {
	return M2MConfig{
		Seed:    1,
		Devices: 12000,
		Days:    11,
		Start:   time.Date(2018, 11, 19, 0, 0, 0, 0, time.UTC),
		Policy:  netsim.PolicySticky,
	}
}

// M2MDeviceTruth is the generator-side ground truth for one platform
// device, used to validate the analyses.
type M2MDeviceTruth struct {
	Home     mccmnc.PLMN
	Roaming  bool
	FailOnly bool
	Profile  devices.PlatformProfile
}

// M2MDataset is the §3 dataset: a transaction stream plus ground
// truth.
type M2MDataset struct {
	Start        time.Time
	Days         int
	Transactions []signaling.Transaction
	Truth        map[identity.DeviceID]M2MDeviceTruth
}

// hmnoSpec describes one of the four home operators behind the
// platform (§3.2).
type hmnoSpec struct {
	plmn mccmnc.PLMN
	// share of the device population.
	share float64
	// roamShare is the fraction of its devices operating abroad.
	roamShare float64
	// footprint is the visited-country pool (ISO codes) with Zipf
	// skew: earlier entries attract more devices.
	footprint []string
}

// platformHMNOs encodes the §3.2 numbers: ES 52.3% (82% roaming over
// ~76 countries), MX 42.2% (90% at home, 7 countries), AR 4.7%
// (almost all home), DE ~0.8% (small population, many VMNOs — the
// connected-car profile).
func platformHMNOs() []hmnoSpec {
	// The ES footprint: every registered country except ES, ordered
	// Europe-first so the Zipf head stays in-region.
	var esFootprint []string
	for _, r := range []mccmnc.Region{mccmnc.RegionEurope, mccmnc.RegionLatAm, mccmnc.RegionAPAC, mccmnc.RegionMEA, mccmnc.RegionNorthAmerica} {
		for _, c := range mccmnc.CountriesInRegion(r) {
			if c.ISO != "ES" {
				esFootprint = append(esFootprint, c.ISO)
			}
		}
	}
	return []hmnoSpec{
		{plmn: mccmnc.MustParse("21407"), share: 0.523, roamShare: 0.82, footprint: esFootprint},
		{plmn: mccmnc.MustParse("334020"), share: 0.422, roamShare: 0.10,
			footprint: []string{"US", "GT", "CO", "AR", "CL", "PE"}},
		{plmn: mccmnc.MustParse("722070"), share: 0.047, roamShare: 0.05,
			footprint: []string{"UY", "CL", "PY", "BR", "BO"}},
		{plmn: mccmnc.MustParse("26201"), share: 0.008, roamShare: 0.95,
			footprint: []string{"AT", "CH", "FR", "NL", "BE", "PL", "CZ", "IT", "DK", "GB"}},
	}
}

// m2mSetup carries the population state the emission pass needs,
// shared by the materialized (GenerateM2M) and streaming (StreamM2M)
// paths.
type m2mSetup struct {
	*M2MDataset
	world *netsim.World
}

// m2mDraft is the pass-1 output for one device: its home-operator
// draw plus the per-device RNG substream the later passes resume.
type m2mDraft struct {
	spec int
	src  *rng.Source
}

// m2mPlatformBase is the MSIN base of the platform's per-HMNO IMSI
// blocks.
const m2mPlatformBase = 7_000_000_000

// m2mPopulation runs the population passes every M2M path shares:
// building the world, the parallel per-device home-operator draft
// (pass 1), and the device-identity assignment. Identity used to be a
// serial index-order IMSI allocation; it is now a counting pre-pass —
// pass 1 counts each shard's draws per home operator, a prefix-sum
// turns the counts into per-shard block offsets, and a second parallel
// pass hands device i the IMSI the serial walk would have: base +
// (devices of the same home before it). The expensive schedule walk
// (pass 3) is left to the caller, which chooses where the probe output
// goes.
func m2mPopulation(cfg M2MConfig) (setup m2mSetup, specs []hmnoSpec, drafts []m2mDraft, devIDs []identity.DeviceID) {
	if cfg.Devices <= 0 || cfg.Days <= 0 {
		panic("dataset: M2M config needs positive Devices and Days")
	}
	root := rng.New(cfg.Seed).Split("m2m")
	specs = platformHMNOs()
	setup = m2mSetup{
		M2MDataset: &M2MDataset{Start: cfg.Start, Days: cfg.Days},
		world:      netsim.NewWorld(netsim.DefaultConfig()),
	}

	weights := make([]float64, len(specs))
	for i, s := range specs {
		weights[i] = s.share
	}
	hmnoPick := rng.NewWeighted(root.Split("hmno"), weights)

	drafts = make([]m2mDraft, cfg.Devices)
	specCounts := pipeline.Map(cfg.Devices, cfg.Workers, func(sh pipeline.Shard) []uint64 {
		counts := make([]uint64, len(specs))
		for i := sh.Lo; i < sh.Hi; i++ {
			src := root.SplitN("device", uint64(i))
			drafts[i] = m2mDraft{spec: hmnoPick.DrawFrom(src), src: src}
			counts[drafts[i].spec]++
		}
		return counts
	})

	running := make([]uint64, len(specs))
	shardOffs := make([][]uint64, len(specCounts))
	for s, counts := range specCounts {
		shardOffs[s] = append([]uint64(nil), running...)
		for k, n := range counts {
			running[k] += n
		}
	}

	devIDs = make([]identity.DeviceID, cfg.Devices)
	pipeline.Run(cfg.Devices, cfg.Workers, func(sh pipeline.Shard) {
		off := shardOffs[sh.Index]
		for i := sh.Lo; i < sh.Hi; i++ {
			s := drafts[i].spec
			devIDs[i] = identity.HashDevice(identity.IMSI{PLMN: specs[s].plmn, MSIN: m2mPlatformBase + off[s]})
			off[s]++
		}
	})
	return setup, specs, drafts, devIDs
}

// txSampleKey is the per-record identity a thinning platform probe
// hashes its sampling verdict from. It folds in every field that
// distinguishes transactions of one device at one instant (a switch
// sequence emits three procedures on the same timestamp), so
// distinct records draw independent verdicts while the verdict for a
// given record never depends on arrival order or worker count.
func txSampleKey(tx signaling.Transaction) uint64 {
	k := uint64(tx.Device)*0x9e3779b97f4a7c15 ^ uint64(tx.Time.UnixNano())
	k = k*0x100000001b3 ^ uint64(tx.Procedure)
	return k ^ uint64(tx.Visited.MCC)<<24 ^ uint64(tx.Visited.MNC)<<40
}

// newM2MTap builds the platform-side probe for one emission shard:
// plain for a complete capture, hash-thinning for a sampled one. All
// shard taps share (name, seed), so their per-record verdicts agree.
func newM2MTap(cfg M2MConfig, sink func(signaling.Transaction)) *probe.Tap[signaling.Transaction] {
	tap := probe.NewTap("hmno-probe", cfg.Seed, sink)
	if cfg.SampleRate > 0 && cfg.SampleRate < 1 {
		tap.SampleRate = cfg.SampleRate
		tap.SampleKey = txSampleKey
	}
	return tap
}

// GenerateM2M synthesizes the platform dataset: it builds the world,
// draws the device population, walks each device's attach/switch
// schedule through the roaming machinery and captures the resulting
// transactions with a platform-side probe. StreamM2M is its
// bounded-memory twin for consumers that want the stream itself.
func GenerateM2M(cfg M2MConfig) *M2MDataset {
	setup, specs, drafts, devIDs := m2mPopulation(cfg)
	ds, world := setup.M2MDataset, setup.world
	ds.Truth = make(map[identity.DeviceID]M2MDeviceTruth, cfg.Devices)

	// Pass 3 (parallel): walk each device's schedule through the
	// roaming machinery into a shard-local probe + collector;
	// shard-ordered concatenation reproduces the serial capture order,
	// so the final time sort sees the identical permutation. Sampled
	// captures thin per record by identity hash, so they fan out over
	// the same shard-local taps as complete ones.
	type shardOut struct {
		collector probe.Collector[signaling.Transaction]
		truths    []M2MDeviceTruth
	}
	outs := pipeline.Map(cfg.Devices, cfg.Workers, func(sh pipeline.Shard) *shardOut {
		out := &shardOut{truths: make([]M2MDeviceTruth, 0, sh.Len())}
		tap := newM2MTap(cfg, out.collector.Add)
		for i := sh.Lo; i < sh.Hi; i++ {
			src := drafts[i].src
			spec := specs[drafts[i].spec]
			roaming := src.Bool(spec.roamShare)
			prof := devices.NewPlatformIoT(src.Split("profile"), roaming, cfg.Days)
			out.truths = append(out.truths, M2MDeviceTruth{Home: spec.plmn, Roaming: roaming, FailOnly: prof.FailOnly, Profile: prof})
			emitPlatformDevice(tap, world, src, cfg, spec, devIDs[i], prof)
		}
		return out
	})
	i := 0
	for _, o := range outs {
		for _, truth := range o.truths {
			ds.Truth[devIDs[i]] = truth
			i++
		}
		ds.Transactions = append(ds.Transactions, o.collector.Records()...)
	}
	// Stable: ties keep their serial emission order, the same order
	// StreamM2M delivers — so a streaming consumer that stable-sorts
	// by time reproduces this slice bit for bit even on tied
	// timestamps (second-granularity draws collide routinely).
	sort.SliceStable(ds.Transactions, func(i, j int) bool {
		return ds.Transactions[i].Time.Before(ds.Transactions[j].Time)
	})
	return ds
}

// emitPlatformDevice walks one device's schedule and offers every
// transaction to the probe.
func emitPlatformDevice(tap *probe.Tap[signaling.Transaction], world *netsim.World,
	src *rng.Source, cfg M2MConfig, spec hmnoSpec, dev identity.DeviceID, prof devices.PlatformProfile) {

	windowS := int64(cfg.Days) * 86400
	randTime := func() time.Time {
		return cfg.Start.Add(time.Duration(src.Int63n(windowS)) * time.Second)
	}

	// Pick the device's visited networks.
	vmnos := pickVMNOs(world, src, spec, prof, cfg.Policy)
	// Failure mode for fail-only devices (drawn once: subscriptions
	// fail consistently, §3.3).
	failResult := signaling.ResultOK
	if prof.FailOnly {
		switch {
		case src.Bool(0.5):
			failResult = signaling.ResultRoamingNotAllowed
		case src.Bool(0.6):
			failResult = signaling.ResultUnknownSubscription
		default:
			failResult = signaling.ResultFeatureUnsupported
		}
	}
	result := func() signaling.Result {
		if prof.FailOnly {
			return failResult
		}
		if src.Bool(0.02) { // sporadic transient failures
			return signaling.ResultNetworkFailure
		}
		return signaling.ResultOK
	}
	// offer delivers a transaction; for fail-only devices every
	// procedure in the chain fails (§3.3 splits devices into the 60%
	// with at least one success and the 40% without any).
	offer := func(tx signaling.Transaction) {
		if prof.FailOnly {
			tx.Result = failResult
		}
		tap.Offer(tx)
	}

	// Budget the transaction count: switches cost 3 transactions,
	// the rest are keepalive procedures.
	budget := prof.TotalSignaling
	switches := prof.SwitchesTotal
	if switches*3 > budget {
		switches = budget / 3
	}

	// The device's timeline is segmented by its switch instants: the
	// device camps on vmnos[i mod n] during segment i, so keepalives,
	// switches and the analysis-side switch counting all agree.
	switchTimes := make([]time.Time, switches)
	for s := range switchTimes {
		switchTimes[s] = randTime()
	}
	sort.SliceStable(switchTimes, func(i, j int) bool { return switchTimes[i].Before(switchTimes[j]) })
	vmnoAt := func(t time.Time) mccmnc.PLMN {
		seg := sort.Search(len(switchTimes), func(i int) bool { return switchTimes[i].After(t) })
		return vmnos[seg%len(vmnos)]
	}
	for s, st := range switchTimes {
		old := vmnos[s%len(vmnos)]
		next := vmnos[(s+1)%len(vmnos)]
		for _, tx := range netsim.SwitchSequence(dev, st, spec.plmn, old, next, radio.RAT4G, result()) {
			offer(tx)
		}
		budget -= 3
	}
	// Keepalive procedures on the segment's VMNO.
	for budget > 0 {
		t := randTime()
		visited := vmnoAt(t)
		switch {
		case src.Bool(0.55):
			tx := signaling.Transaction{
				Device: dev, Time: t, SIM: spec.plmn, Visited: visited,
				Procedure: signaling.ProcUpdateLocation, RAT: radio.RAT4G, Result: result(),
			}
			offer(tx)
			budget--
		case src.Bool(0.8):
			tx := signaling.Transaction{
				Device: dev, Time: t, SIM: spec.plmn, Visited: visited,
				Procedure: signaling.ProcAuthentication, RAT: radio.RAT4G, Result: result(),
			}
			offer(tx)
			budget--
		default:
			for _, tx := range netsim.AttachSequence(dev, t, spec.plmn, visited, radio.RAT4G, result()) {
				offer(tx)
			}
			budget -= 2
		}
	}
}

// pickVMNOs selects the device's visited networks: its primary
// country first, spilling to further footprint countries when the
// device uses more VMNOs than the country hosts. policy orders the
// partners within each country (the DESIGN.md ablation): "strongest"
// concentrates every device on the first partner, "rotate" spreads
// deterministically, "sticky" spreads randomly.
func pickVMNOs(world *netsim.World, src *rng.Source, spec hmnoSpec, prof devices.PlatformProfile, policy netsim.SelectionPolicy) []mccmnc.PLMN {
	if !prof.Roaming {
		return []mccmnc.PLMN{spec.plmn}
	}
	z := rng.NewZipf(src, len(spec.footprint), 1.25)
	primary := spec.footprint[z.DrawFrom(src)-1]
	var out []mccmnc.PLMN
	seen := map[mccmnc.PLMN]bool{}
	countryIdx := 0
	country := primary
	for len(out) < prof.NumVMNOs {
		added := false
		partners := world.PartnersOf(spec.plmn, country)
		if n := len(partners); n > 1 {
			var off int
			switch policy {
			case netsim.PolicyStrongest:
				off = 0
			case netsim.PolicyRotate:
				off = prof.NumVMNOs % n
			default: // PolicySticky
				off = src.Intn(n)
			}
			rotated := make([]mccmnc.PLMN, 0, n)
			rotated = append(rotated, partners[off:]...)
			rotated = append(rotated, partners[:off]...)
			partners = rotated
		}
		for _, p := range partners {
			if seen[p] {
				continue
			}
			out = append(out, p)
			seen[p] = true
			added = true
			if len(out) == prof.NumVMNOs {
				break
			}
		}
		if len(out) == prof.NumVMNOs {
			break
		}
		// Spill to the next footprint country.
		countryIdx++
		if countryIdx >= len(spec.footprint) {
			if !added && len(out) == 0 {
				// Nowhere to roam at all: fall back to home.
				return []mccmnc.PLMN{spec.plmn}
			}
			break
		}
		country = spec.footprint[countryIdx]
	}
	if len(out) == 0 {
		return []mccmnc.PLMN{spec.plmn}
	}
	return out
}
