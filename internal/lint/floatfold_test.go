package lint_test

import (
	"testing"

	"whereroam/internal/lint"
	"whereroam/internal/lint/linttest"
)

func TestFloatFold(t *testing.T) {
	linttest.Run(t, "floatfold", lint.FloatFold)
}
