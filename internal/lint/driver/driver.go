// Package driver loads and type-checks Go packages for the roamvet
// analyzers using only the standard library and the go command.
//
// Two load paths converge on the same [Check] + [lint.Run] core:
//
//   - [Load] shells out to `go list -export -json -deps`, which
//     resolves the module graph and hands back compiled export data
//     for every dependency straight from the build cache; the target
//     packages are then parsed from source and type-checked against
//     an export-data importer. This backs the standalone
//     `roamvet ./...` mode and the in-process clean-tree test.
//   - [RunVetCfg] implements the `go vet -vettool` unit protocol
//     (the unitchecker contract of golang.org/x/tools, re-implemented
//     here because this build environment is offline): the go command
//     invokes the tool once per package with a JSON config naming the
//     files, the import map and the dependencies' export files.
//
// Both paths analyze production files only — _test.go files are
// filtered out, because the determinism contract binds the shipped
// pipeline, not its tests (which are free to use wall clocks and
// throwaway maps).
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"

	"whereroam/internal/lint"
)

// A listPackage is the subset of `go list -json` output the driver
// consumes.
type listPackage struct {
	// ImportPath is the canonical package path.
	ImportPath string
	// Dir is the directory holding the package sources.
	Dir string
	// GoFiles lists the non-test Go sources (relative to Dir).
	GoFiles []string
	// CgoFiles lists cgo sources; packages with any are skipped.
	CgoFiles []string
	// Export is the export-data file produced by -export.
	Export string
	// Standard marks standard-library packages.
	Standard bool
	// DepOnly marks packages listed only as dependencies.
	DepOnly bool
	// Module carries module info for main-module membership checks.
	Module *struct{ Path string }
	// Error carries a load error for this package, if any.
	Error *struct{ Err string }
}

// Load lists patterns in dir with the go command and returns one
// type-checked [lint.Unit] per matched package of this module,
// type-checking target sources against the export data of their
// dependencies. Packages listed only as dependencies are not
// analyzed.
func Load(dir string, patterns ...string) ([]*lint.Unit, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var targets []*listPackage
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard || p.Module == nil || p.Module.Path != lint.ModulePath {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			continue
		}
		pkg := p
		targets = append(targets, &pkg)
	}
	var units []*lint.Unit
	for _, p := range targets {
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		fset := token.NewFileSet()
		u, err := Check(p.ImportPath, files, fset, NewImporter(fset, nil, exports))
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		units = append(units, u)
	}
	return units, nil
}

// Exports resolves export-data files for the given packages and all
// their dependencies via `go list -export -json -deps`, keyed by
// import path. Drivers that type-check sources living outside the
// module graph — the linttest fixture runner — use it to satisfy the
// fixtures' (standard-library) imports. dir is the working directory
// for the go command.
func Exports(dir string, pkgs ...string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

// Import implements types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// NewImporter returns a types.Importer that reads gc export data:
// importMap (which may be nil) translates import paths as written to
// canonical package paths, and packageFile maps canonical paths to
// export-data files (compiled package archives from the build cache).
func NewImporter(fset *token.FileSet, importMap, packageFile map[string]string) types.Importer {
	compilerImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
}

// Check parses the given files (skipping _test.go files) into fset —
// which must be the same FileSet the importer was built over — and
// type-checks them as package path using imp to resolve imports,
// returning a unit ready for [lint.Run]. The unit has nil type info —
// still usable by the syntactic analyzers — only if files is empty
// after filtering.
func Check(path string, files []string, fset *token.FileSet, imp types.Importer) (*lint.Unit, error) {
	var parsed []*ast.File
	for _, name := range files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	u := &lint.Unit{Path: path, Fset: fset, Files: parsed}
	if len(parsed) == 0 {
		return u, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, err
	}
	u.Pkg = pkg
	u.Info = info
	return u, nil
}

// vetConfig is the JSON unit description the go command hands a
// -vettool, one file per package (the unitchecker contract).
type vetConfig struct {
	// ID is the package ID ("path" or "path [variant]").
	ID string
	// Compiler names the compiler providing export data ("gc").
	Compiler string
	// Dir is the package directory.
	Dir string
	// ImportPath is the canonical package path.
	ImportPath string
	// GoVersion is the language version to type-check under.
	GoVersion string
	// GoFiles lists the absolute paths of the unit's Go sources.
	GoFiles []string
	// ImportMap maps import paths as written to canonical paths.
	ImportMap map[string]string
	// PackageFile maps canonical paths to export-data files.
	PackageFile map[string]string
	// VetxOnly marks dependency units driven only for facts — the
	// roamvet suite is fact-free, so these are skipped outright.
	VetxOnly bool
	// VetxOutput is the facts file the go command expects the tool
	// to write (an empty placeholder here).
	VetxOutput string
	// SucceedOnTypecheckFailure asks the tool to exit 0 on type
	// errors (the build will report them better).
	SucceedOnTypecheckFailure bool
}

var goMinorVersion = regexp.MustCompile(`^go\d+\.\d+`)

// RunVetCfg analyzes the single package described by the vet config
// file at cfgPath, printing diagnostics to w in the go vet format.
// It returns the number of diagnostics; the caller turns that into
// the exit-2 protocol. Units outside this module, facts-only units
// and pure-test units are no-ops.
func RunVetCfg(cfgPath string, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("%s: %v", cfgPath, err)
	}
	// The go command caches facts via VetxOutput; roamvet has none,
	// but writes the placeholder so downstream cache entries resolve.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("roamvet: no facts\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly || strings.Contains(cfg.ID, ".test") || strings.Contains(cfg.ImportPath, " [") {
		return 0, nil
	}
	if cfg.ImportPath != lint.ModulePath && !strings.HasPrefix(cfg.ImportPath, lint.ModulePath+"/") {
		return 0, nil
	}
	fset := token.NewFileSet()
	u, err := Check(cfg.ImportPath, cfg.GoFiles, fset, NewImporter(fset, cfg.ImportMap, cfg.PackageFile))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	if len(u.Files) == 0 {
		return 0, nil
	}
	diags := lint.Run(u, lint.AnalyzersFor(cfg.ImportPath))
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	return len(diags), nil
}
